(* itrace — offline latency attribution over exported telemetry JSONL.

   Consumes what the rest of the toolbox produces (`imanager --trace`,
   `bench smoke`'s bench_trace.jsonl, flight-recorder dumps, tail-sampler
   capture files), reconstructs the per-request span trees, and reports
   where the wall time of each request went.

     itrace summary [options] FILE...       ("-" reads stdin)

   Options:
     --top N           per-trace rows shown (slowest first; default 10)
     --slow-ms N       flag traces with wall time >= N ms as "slow"
     --strict          exit 1 on unparseable lines or orphaned spans
                       (CI mode: a clean sequential run must produce a
                       perfectly balanced stream)
     --perfetto FILE   also write a Chrome trace-event JSON export
                       (load in https://ui.perfetto.dev)
     --folded FILE     also write flame-graph folded stacks
                       (feed to flamegraph.pl / speedscope / inferno) *)

open Interaction_trace

let usage () =
  prerr_endline
    "usage: itrace summary [--top N] [--slow-ms N] [--strict] [--perfetto FILE] \
     [--folded FILE] FILE...   (FILE \"-\" = stdin)";
  exit 2

let () =
  let top = ref 10 in
  let slow_ms = ref None in
  let strict = ref false in
  let perfetto = ref None in
  let folded = ref None in
  let files = ref [] in
  let rec parse_args = function
    | "--top" :: n :: rest -> (
      match int_of_string_opt n with
      | Some n when n > 0 ->
        top := n;
        parse_args rest
      | Some _ | None -> usage ())
    | "--slow-ms" :: n :: rest -> (
      match float_of_string_opt n with
      | Some n when n >= 0. ->
        slow_ms := Some n;
        parse_args rest
      | Some _ | None -> usage ())
    | "--strict" :: rest ->
      strict := true;
      parse_args rest
    | "--perfetto" :: file :: rest ->
      perfetto := Some file;
      parse_args rest
    | "--folded" :: file :: rest ->
      folded := Some file;
      parse_args rest
    | f :: rest ->
      if String.length f > 2 && String.sub f 0 2 = "--" then usage ();
      files := f :: !files;
      parse_args rest
    | [] -> ()
  in
  (match Array.to_list Sys.argv with
  | _ :: "summary" :: rest -> parse_args rest
  | _ -> usage ());
  let files = List.rev !files in
  if files = [] then usage ();
  let src =
    Source.concat
      (List.map
         (fun f ->
           if f = "-" then Source.of_channel stdin
           else
             try Source.of_file f
             with Sys_error m ->
               prerr_endline ("itrace: " ^ m);
               exit 2)
         files)
  in
  let slow_ns =
    Option.map (fun ms -> int_of_float (ms *. 1e6)) !slow_ms
  in
  print_string (Report.summary ~top:!top ?slow_ns ~files src);
  let forest = Spantree.build src.Source.events in
  Option.iter
    (fun file ->
      Out_channel.with_open_text file (fun oc ->
          output_string oc (Perfetto.to_string forest));
      Printf.printf "perfetto export: %s\n" file)
    !perfetto;
  Option.iter
    (fun file ->
      Out_channel.with_open_text file (fun oc ->
          output_string oc (Folded.to_string forest));
      Printf.printf "folded stacks: %s\n" file)
    !folded;
  if
    !strict
    && (src.Source.bad_lines > 0 || Spantree.orphans forest > 0)
  then begin
    Printf.eprintf "itrace: strict: %d bad line(s), %d orphan(s)\n"
      src.Source.bad_lines (Spantree.orphans forest);
    exit 1
  end
