(* iexpr — command-line front end for interaction expressions.

   Subcommands mirror the paper's artifacts: `word` solves the word problem
   (Fig. 9), `run` the interactive action problem, `classify` evaluates the
   Section 6 complexity criteria, `lang` enumerates the accepted language,
   `trace` shows per-action verdicts and state sizes, and `dot` renders the
   interaction graph for Graphviz. *)

open Interaction
open Cmdliner

let expr_arg =
  let parse s =
    match Syntax.parse s with Ok e -> Ok e | Error m -> Error (`Msg m)
  in
  let print ppf e = Syntax.pp ppf e in
  Arg.conv (parse, print)

let word_arg =
  let parse s =
    match Syntax.parse_word s with Ok w -> Ok w | Error m -> Error (`Msg m)
  in
  let print ppf w =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
      Action.pp_concrete ppf w
  in
  Arg.conv (parse, print)

let expr_pos =
  Arg.(required & pos 0 (some expr_arg) None & info [] ~docv:"EXPR" ~doc:"Interaction expression.")

(* --- word ------------------------------------------------------------- *)

let word_cmd =
  let run e w =
    let v = Engine.word e w in
    Format.printf "%a@." Semantics.pp_verdict v;
    (* Fig. 9's encoding doubles as the exit status *)
    exit (Semantics.verdict_to_int v)
  in
  let word_pos =
    Arg.(required & pos 1 (some word_arg) None & info [] ~docv:"WORD" ~doc:"Sequence of concrete actions.")
  in
  Cmd.v
    (Cmd.info "word" ~doc:"Solve the word problem: is WORD complete, partial or illegal for EXPR?")
    Term.(const run $ expr_pos $ word_pos)

(* --- run (action problem) --------------------------------------------- *)

let run_cmd =
  let run e =
    let session = Engine.create e in
    Format.printf "expression: %a@." Syntax.pp e;
    Format.printf "enter one concrete action per line (EOF to stop)@.";
    (try
       while true do
         let line = String.trim (input_line stdin) in
         if line <> "" then
           match Syntax.parse_action line with
           | Error m -> Format.printf "parse error: %s@." m
           | Ok a ->
             if Engine.try_action session a then
               Format.printf "Accept.%s@." (if Engine.is_final session then " (complete)" else "")
             else Format.printf "Reject.@."
       done
     with End_of_file -> ());
    Format.printf "trace: %a@."
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
         Action.pp_concrete)
      (Engine.trace session)
  in
  (* The action problem straight off a compiled artifact: the walk is
     rows-only (Vm.step_row / Vm.final_row), no state DAG is derived. *)
  let run_program file =
    match Interaction_store.Progfile.read file with
    | Error m ->
      Format.eprintf "iexpr run: %s@." m;
      exit 2
    | Ok p ->
      let t = Bytecode.of_program p in
      let i = Bytecode.info t in
      Format.printf "program: %a (%d states, %d columns)@." Syntax.pp
        (Bytecode.expr p) i.Bytecode.states i.Bytecode.columns;
      Format.printf "enter one concrete action per line (EOF to stop)@.";
      let row = ref Bytecode.Vm.start_row in
      let accepted = ref [] in
      (try
         while true do
           let line = String.trim (input_line stdin) in
           if line <> "" then
             match Syntax.parse_action line with
             | Error m -> Format.printf "parse error: %s@." m
             | Ok a ->
               let r' = Bytecode.Vm.step_row t !row a in
               if r' < 0 then Format.printf "Reject.@."
               else begin
                 row := r';
                 accepted := a :: !accepted;
                 Format.printf "Accept.%s@."
                   (if Bytecode.Vm.final_row t r' then " (complete)" else "")
               end
         done
       with End_of_file -> ());
      Format.printf "trace: %a@."
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
           Action.pp_concrete)
        (List.rev !accepted)
  in
  let expr_opt =
    Arg.(value & pos 0 (some expr_arg) None & info [] ~docv:"EXPR" ~doc:"Interaction expression.")
  in
  let program =
    Arg.(value & opt (some string) None & info [ "program" ] ~docv:"FILE" ~doc:"Execute a compiled program artifact (see $(b,iexpr compile)) instead of EXPR.")
  in
  let run' e_opt program =
    match (e_opt, program) with
    | None, Some file -> run_program file
    | Some e, None -> run e
    | Some _, Some _ ->
      Format.eprintf "iexpr run: give either EXPR or --program, not both@.";
      exit 2
    | None, None ->
      Format.eprintf "iexpr run: an EXPR argument or --program FILE is required@.";
      exit 2
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Solve the action problem interactively: accept or reject actions read from stdin.")
    Term.(const run' $ expr_opt $ program)

(* --- compile ------------------------------------------------------------ *)

let compile_cmd =
  let run e out max_states =
    match Bytecode.compile ?max_states e with
    | None ->
      Format.eprintf
        "iexpr compile: %a does not flatten to a bytecode program@." Syntax.pp e;
      Format.eprintf
        "  (the alphabet must be ground and the reachable state space must close within the row cap; %s)@."
        (Classify.describe e);
      exit 1
    | Some t ->
      let p = Bytecode.program t in
      let i = Bytecode.info t in
      (match out with
      | Some file ->
        Interaction_store.Progfile.write file p;
        Format.printf "wrote %s: %d states, %d columns@." file
          i.Bytecode.states i.Bytecode.columns
      | None ->
        Format.printf "compiled: %d states, %d columns@." i.Bytecode.states
          i.Bytecode.columns)
  in
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the CRC-framed program artifact to FILE.")
  in
  let max_states =
    Arg.(value & opt (some int) None & info [ "max-states" ] ~docv:"N" ~doc:"Row cap for the flattening BFS (default 4096; 512 for potentially-malignant expressions).")
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile EXPR ahead of time to a flat bytecode program; with -o, emit a versioned artifact that $(b,iexpr run --program) executes.")
    Term.(const run $ expr_pos $ out $ max_states)

(* --- classify ---------------------------------------------------------- *)

let classify_cmd =
  let run e explain =
    print_endline (if explain then Classify.explain e else Classify.describe e)
  in
  let explain =
    Arg.(value & flag & info [ "explain" ] ~doc:"Per-subexpression analysis locating benignity violations.")
  in
  Cmd.v
    (Cmd.info "classify" ~doc:"Evaluate the complexity criteria of Section 6 for EXPR.")
    Term.(const run $ expr_pos $ explain)

(* --- lang --------------------------------------------------------------- *)

let lang_cmd =
  let run e max_len values =
    let universe =
      let fills = if values = [] then [ "1"; "2" ] else values in
      let rec inst = function
        | [] -> [ [] ]
        | Alpha.Val v :: rest -> List.map (fun t -> v :: t) (inst rest)
        | (Alpha.Bound _ | Alpha.Free _) :: rest ->
          let tails = inst rest in
          List.concat_map (fun v -> List.map (fun t -> v :: t) tails) fills
      in
      Alpha.of_expr e
      |> List.concat_map (fun (p : Alpha.pattern) ->
             List.map (fun args -> Action.conc p.Alpha.pname args) (inst p.Alpha.pargs))
      |> List.sort_uniq Action.compare_concrete
    in
    let lang = Semantics.language ~max_len ~universe e in
    List.iter
      (fun w ->
        if w = [] then print_endline "<empty word>"
        else
          print_endline
            (String.concat " " (List.map Action.concrete_to_string w)))
      lang;
    Format.printf "-- %d complete word(s) of length <= %d over %d action(s)@."
      (List.length lang) max_len (List.length universe)
  in
  let max_len =
    Arg.(value & opt int 4 & info [ "max-len"; "n" ] ~docv:"N" ~doc:"Maximum word length.")
  in
  let values =
    Arg.(value & opt_all string [] & info [ "value"; "v" ] ~docv:"V" ~doc:"Value used to instantiate parameter positions (repeatable).")
  in
  Cmd.v
    (Cmd.info "lang" ~doc:"Enumerate the complete words of EXPR up to a length bound (exponential; small bounds only).")
    Term.(const run $ expr_pos $ max_len $ values)

(* --- trace -------------------------------------------------------------- *)

let trace_cmd =
  let run e w dump =
    let session = Engine.create e in
    Format.printf "%-28s %-8s %-10s %s@." "action" "verdict" "state-size" (if dump then "state" else "");
    List.iter
      (fun a ->
        let ok = Engine.try_action session a in
        Format.printf "%-28s %-8s %-10d %s@."
          (Action.concrete_to_string a)
          (if ok then "accept" else "reject")
          (Engine.state_size session)
          (if dump then
             match Engine.state session with
             | Some s -> Format.asprintf "%a" State.pp s
             | None -> "null"
           else ""))
      w;
    Format.printf "final: %b@." (Engine.is_final session)
  in
  let word_pos =
    Arg.(required & pos 1 (some word_arg) None & info [] ~docv:"WORD" ~doc:"Sequence of concrete actions.")
  in
  let dump =
    Arg.(value & flag & info [ "dump-states" ] ~doc:"Print the full state after every action.")
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Feed WORD action by action, reporting accept/reject and state growth.")
    Term.(const run $ expr_pos $ word_pos $ dump)

(* --- explain ------------------------------------------------------------ *)

let explain_cmd =
  let run e w =
    match Explain.explain_word e w with
    | Error s ->
      Format.printf "accepted: the whole word is a partial word%s@."
        (if State.final s then " (and complete)" else "");
      exit 0
    | Ok (i, _, x) ->
      Format.printf "%s@." (Explain.to_string x);
      Format.printf "  at position %d of the word@." i;
      exit 1
  in
  let word_pos =
    Arg.(required & pos 1 (some word_arg) None & info [] ~docv:"WORD" ~doc:"Sequence of concrete actions; the first rejected one is explained.")
  in
  Cmd.v
    (Cmd.info "explain" ~doc:"Denial provenance: run WORD against EXPR and attribute the first rejection to the minimal set of blocking subexpressions.")
    Term.(const run $ expr_pos $ word_pos)

(* --- dot ---------------------------------------------------------------- *)

let dot_cmd =
  let run e out =
    let g = Interaction_graph.Graph.of_expr e in
    let dot = Interaction_graph.Dot.render g in
    match out with
    | None -> print_string dot
    | Some file ->
      let oc = open_out file in
      output_string oc dot;
      close_out oc;
      Format.eprintf "wrote %s@." file
  in
  let out =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write DOT to FILE instead of stdout.")
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Render the interaction graph of EXPR as Graphviz DOT.")
    Term.(const run $ expr_pos $ out)

(* --- show --------------------------------------------------------------- *)

let show_cmd =
  let run e =
    print_string (Interaction_graph.Dot.render_tree (Interaction_graph.Graph.of_expr e))
  in
  Cmd.v
    (Cmd.info "show" ~doc:"Render the interaction graph of EXPR as a tree in the terminal.")
    Term.(const run $ expr_pos)

(* --- simplify ----------------------------------------------------------- *)

let simplify_cmd =
  let run e show_rules =
    if show_rules then (
      Format.printf "rewrite rules:@.";
      List.iter
        (fun (lhs, rhs) -> Format.printf "  %-42s ==>  %s@." lhs rhs)
        Rewrite.rules_doc)
    else begin
      let before, after = Rewrite.size_reduction e in
      Format.printf "%a@." Syntax.pp (Rewrite.simplify e);
      Format.eprintf "(%d nodes -> %d nodes)@." before after
    end
  in
  let show_rules =
    Arg.(value & flag & info [ "rules" ] ~doc:"List the rewrite rules instead of simplifying.")
  in
  let expr_opt =
    Arg.(value & pos 0 (some expr_arg) None & info [] ~docv:"EXPR" ~doc:"Interaction expression.")
  in
  let run' e_opt show_rules =
    match (e_opt, show_rules) with
    | _, true -> run (Expr.epsilon) true
    | Some e, false -> run e false
    | None, false ->
      Format.eprintf "iexpr simplify: an EXPR argument is required@.";
      exit 2
  in
  Cmd.v
    (Cmd.info "simplify" ~doc:"Normalize EXPR with the semantics-preserving rewrite rules.")
    Term.(const run' $ expr_opt $ show_rules)

(* --- deadend ------------------------------------------------------------ *)

let deadend_cmd =
  let run e max_states =
    let r = Language.explore ~max_states e in
    Format.printf "exploration: %a@." Language.pp_exploration r;
    match Language.has_dead_end ~max_states e with
    | Some true ->
      Format.printf "DEAD END: some permissible sequence can never be completed@.";
      exit 1
    | Some false -> Format.printf "no dead ends: every partial word can complete@."
    | None ->
      Format.printf "unknown: state bound hit (increase --max-states)@.";
      exit 3
  in
  let max_states =
    Arg.(value & opt int 10_000 & info [ "max-states" ] ~docv:"N" ~doc:"Exploration bound.")
  in
  Cmd.v
    (Cmd.info "deadend" ~doc:"Check EXPR for dead ends (partial words that cannot complete) by state-space exploration.")
    Term.(const run $ expr_pos $ max_states)

(* --- equiv -------------------------------------------------------------- *)

let equiv_cmd =
  let run e1 e2 max_states =
    match Language.equivalent ~max_states e1 e2 with
    | Some true ->
      Format.printf "equivalent (over the explored instantiation)@."
    | Some false ->
      (match Language.separating_word ~max_states e1 e2 with
      | Some w ->
        Format.printf "NOT equivalent; separating word: %s@."
          (if w = [] then "<empty>"
           else String.concat " " (List.map Action.concrete_to_string w))
      | None -> Format.printf "NOT equivalent@.");
      exit 1
    | None ->
      Format.printf "unknown: state bound hit (increase --max-states)@.";
      exit 3
  in
  let expr2_pos =
    Arg.(required & pos 1 (some expr_arg) None & info [] ~docv:"EXPR2" ~doc:"Second expression.")
  in
  let max_states =
    Arg.(value & opt int 10_000 & info [ "max-states" ] ~docv:"N" ~doc:"Exploration bound.")
  in
  Cmd.v
    (Cmd.info "equiv" ~doc:"Decide (bounded) extensional equivalence of two expressions; prints a shortest separating word on failure.")
    Term.(const run $ expr_pos $ expr2_pos $ max_states)

(* --- witness ------------------------------------------------------------ *)

let witness_cmd =
  let run e max_states =
    match Language.shortest_complete ~max_states e with
    | Some [] -> Format.printf "<empty word>@."
    | Some w ->
      Format.printf "%s@." (String.concat " " (List.map Action.concrete_to_string w))
    | None ->
      Format.printf "no complete word found within the bound@.";
      exit 1
  in
  let max_states =
    Arg.(value & opt int 10_000 & info [ "max-states" ] ~docv:"N" ~doc:"Search bound.")
  in
  Cmd.v
    (Cmd.info "witness" ~doc:"Print a shortest complete word of EXPR (over the default value instantiation).")
    Term.(const run $ expr_pos $ max_states)

(* --- audit -------------------------------------------------------------- *)

(* A telemetry JSONL trace replays through the same checker as a plain
   action-per-line log: extract the committed actions and parse each. *)
let log_of_jsonl input =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | a :: rest -> (
      match Syntax.parse_action a with
      | Ok c -> go (c :: acc) rest
      | Error m -> Error (Printf.sprintf "%s (in JSONL action %S)" m a))
  in
  go [] (Telemetry.Jsonl.accepted_actions input)

let audit_cmd =
  let run e logfile strict stop jsonl =
    let input =
      match logfile with
      | Some file ->
        let ic = open_in file in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        s
      | None -> In_channel.input_all stdin
    in
    let parsed = if jsonl then log_of_jsonl input else Audit.parse_log input in
    match parsed with
    | Error m ->
      Format.eprintf "iexpr audit: %s@." m;
      exit 2
    | Ok log ->
      let r = Audit.check ~strict ~stop_at_first:stop e log in
      Format.printf "%a@." Audit.pp_report r;
      if not (Audit.conformant r) then exit 1
  in
  let logfile =
    Arg.(value & opt (some string) None & info [ "log" ] ~docv:"FILE" ~doc:"Event log (one action per line; default stdin).")
  in
  let strict =
    Arg.(value & flag & info [ "strict" ] ~doc:"Also flag events outside the constraint's alphabet.")
  in
  let stop =
    Arg.(value & flag & info [ "stop-at-first" ] ~doc:"Stop the replay at the first issue.")
  in
  let jsonl =
    Arg.(value & flag & info [ "jsonl" ] ~doc:"Treat the log as a telemetry JSONL trace: replay its committed actions.")
  in
  Cmd.v
    (Cmd.info "audit" ~doc:"Check a recorded event log for conformance with EXPR; lists every violating event.")
    Term.(const run $ expr_pos $ logfile $ strict $ stop $ jsonl)

(* --- profile ------------------------------------------------------------ *)

let profile_cmd =
  let run e w jsonl csv =
    let w =
      match (w, jsonl) with
      | Some w, None -> w
      | None, Some file -> (
        let input = In_channel.with_open_text file In_channel.input_all in
        match log_of_jsonl input with
        | Ok log -> log
        | Error m ->
          Format.eprintf "iexpr profile: %s@." m;
          exit 2)
      | Some _, Some _ ->
        Format.eprintf "iexpr profile: give either WORD or --jsonl, not both@.";
        exit 2
      | None, None ->
        Format.eprintf "iexpr profile: a WORD argument or --jsonl FILE is required@.";
        exit 2
    in
    let p = Instrument.profile e w in
    if csv then print_string (Instrument.to_csv p)
    else begin
      Format.printf "accepted actions: %d (rejected %d)@."
        (List.length p.Instrument.samples) p.Instrument.rejected;
      Format.printf "max state size:   %d@." p.Instrument.max_size;
      Format.printf "final state size: %d@." p.Instrument.final_size;
      Format.printf "measured growth:  %a@." Instrument.pp_growth p.Instrument.growth;
      Format.printf "classification:   %s@."
        (Classify.verdict_to_string (Classify.benignity e));
      Format.printf "agreement:        %b@."
        (Instrument.agrees_with_classification p (Classify.benignity e))
    end
  in
  let word_pos =
    Arg.(value & pos 1 (some word_arg) None & info [] ~docv:"WORD" ~doc:"Sequence of concrete actions to profile against.")
  in
  let jsonl =
    Arg.(value & opt (some string) None & info [ "jsonl" ] ~docv:"FILE" ~doc:"Profile the committed actions of a telemetry JSONL trace instead of WORD.")
  in
  let csv = Arg.(value & flag & info [ "csv" ] ~doc:"Emit index,size CSV rows instead of a summary.") in
  Cmd.v
    (Cmd.info "profile" ~doc:"Measure the growth of state sizes along a run and fit a growth model (the empirical side of Section 6).")
    Term.(const run $ expr_pos $ word_pos $ jsonl $ csv)

let main =
  Cmd.group
    (Cmd.info "iexpr" ~version:"1.0.0"
       ~doc:"Interaction expressions and graphs (Heinlein, ICDE 2001) — word/action problems, complexity analysis, language enumeration and graph rendering.")
    [ word_cmd; run_cmd; compile_cmd; classify_cmd; lang_cmd; trace_cmd;
      explain_cmd; dot_cmd; show_cmd; simplify_cmd; deadend_cmd; equiv_cmd;
      audit_cmd; profile_cmd; witness_cmd ]

let () = exit (Cmd.eval main)
