(* ibench — the bench-history tool: load BENCH_pr*.json files across
   schema generations, print a normalized trajectory table, and gate a
   current run against a committed baseline.

     ibench trajectory BENCH_pr2.json ... BENCH_pr10.json
     ibench gate --baseline BENCH_pr9.json --current BENCH_pr10.json \
                 [--tolerance 15%] [--max-lock-p99-us N]

   The gate exits 1 on any regression beyond the tolerance in the pinned
   headline metrics (and, with --max-lock-p99-us, on a contended-lock
   wait p99 above the bound), so CI fails the build the moment a PR
   slows the hot path instead of discovering it one schema later. *)

let usage () =
  prerr_endline
    "usage: ibench trajectory FILE...\n\
    \       ibench gate --baseline FILE --current FILE [--tolerance P%]\n\
    \                   [--max-lock-p99-us N]\n\
    \       ibench metrics";
  exit 2

let () =
  match Array.to_list Sys.argv with
  | _ :: "metrics" :: [] ->
    List.iter
      (fun (m : Interaction_trace.Benchfile.metric) ->
        Printf.printf "%-34s %s %s\n" m.Interaction_trace.Benchfile.mname
          (match m.Interaction_trace.Benchfile.direction with
          | Interaction_trace.Benchfile.Lower_better -> "lower-better "
          | Interaction_trace.Benchfile.Higher_better -> "higher-better")
          m.Interaction_trace.Benchfile.unit_)
      Interaction_trace.Benchfile.metrics
  | _ :: "trajectory" :: files when files <> [] -> (
    match Interaction_trace.Benchfile.load_all files with
    | [] ->
      prerr_endline "ibench: no readable bench files";
      exit 1
    | loaded -> print_string (Interaction_trace.Benchfile.trajectory loaded))
  | _ :: "gate" :: rest ->
    let baseline = ref None and current = ref None in
    let tolerance = ref 15.0 in
    let max_lock_p99_us = ref None in
    let pct s =
      let s =
        if String.length s > 0 && s.[String.length s - 1] = '%' then
          String.sub s 0 (String.length s - 1)
        else s
      in
      match float_of_string_opt s with
      | Some p when p >= 0.0 -> p
      | _ -> usage ()
    in
    let rec parse = function
      | [] -> ()
      | "--baseline" :: f :: rest ->
        baseline := Some f;
        parse rest
      | "--current" :: f :: rest ->
        current := Some f;
        parse rest
      | "--tolerance" :: p :: rest ->
        tolerance := pct p;
        parse rest
      | "--max-lock-p99-us" :: n :: rest -> (
        match float_of_string_opt n with
        | Some v when v > 0.0 ->
          max_lock_p99_us := Some v;
          parse rest
        | _ -> usage ())
      | _ -> usage ()
    in
    parse rest;
    (match (!baseline, !current) with
    | Some b, Some c -> (
      let load name f =
        match Interaction_trace.Benchfile.load f with
        | Some bf -> bf
        | None ->
          Printf.eprintf "ibench: cannot read %s file %s\n" name f;
          exit 1
      in
      let bf = load "baseline" b and cf = load "current" c in
      let report =
        Interaction_trace.Benchfile.gate ~tolerance:!tolerance
          ?max_lock_p99_us:!max_lock_p99_us ~baseline:bf ~current:cf ()
      in
      print_string (Interaction_trace.Benchfile.gate_to_string report);
      match report.Interaction_trace.Benchfile.verdict with
      | Interaction_trace.Benchfile.Pass -> ()
      | Interaction_trace.Benchfile.Fail -> exit 1)
    | _ -> usage ())
  | _ -> usage ()
