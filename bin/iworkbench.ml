(* iworkbench — an interactive workbench for interaction expressions.

   A read-eval loop around the whole toolbox: load a constraint, drive the
   action problem, inspect and persist states, enumerate permitted actions,
   classify, simplify, look for dead ends, profile growth.  `help` lists
   the commands.

     dune exec bin/iworkbench.exe
     dune exec bin/iworkbench.exe -- "mutex(a - b, c)"
     dune exec bin/iworkbench.exe -- --domains 4 "(a - b) @ (c - d)"

   With `--domains N` (N > 1) every loaded expression also gets a
   domain-sharded parallel mirror (`Pengine`): each `do` is cross-checked
   against it, a disagreement prints a warning — the sequential engine is
   the oracle, the mirror is the thing under test.  A coupling the
   alphabet partition cannot split additionally gets a speculative mirror
   (`Speculate`, optimistic cross-shard execution); `state` reports its
   shard count and the process-wide conflict/retry counters.  Commands
   that bypass the action problem (`force`, `restore`) detach both. *)

open Interaction
open Interaction_exec
module Store = Interaction_store.Store

type env = {
  mutable session : Engine.session option;
  pool : Pool.t option;
  mutable mirror : Pengine.t option;
  (* optimistic cross-shard mirror, attached when the loaded expression is
     a coupling the alphabet partition cannot split *)
  mutable spec : Speculate.t option;
  (* durable store attached by `save-store`/`recover`: the snapshot is the
     Engine.save image, and every accepted do/force appends one WAL record,
     so a crashed workbench session replays to where it stopped *)
  mutable store : Store.t option;
  (* tail sampler armed by --slow-ms: each command line runs in its own
     trace and slow/raised chains are retained (`slow` inspects them) *)
  sampler : Sampler.t option;
}

let detach env =
  env.mirror <- None;
  env.spec <- None

let out fmt = Format.printf (fmt ^^ "@.")

let detach_store env reason =
  match env.store with
  | Some st ->
    Store.close st;
    env.store <- None;
    out "(store detached: %s)" reason
  | None -> ()

(* WAL records of a workbench session: accepted actions, tagged by how
   they were executed. *)
let action_record tag a =
  Sexp.to_string (Sexp.List [ Sexp.Atom tag; Action.concrete_to_sexp a ])

let log_action env tag a =
  Option.iter (fun st -> Store.append st (action_record tag a)) env.store

(* Replaying a record re-runs the action the way it originally ran; a
   rejection here means the store does not match the snapshot (it was
   tampered with, or written by a different build). *)
let replay_record s r =
  match Sexp.of_string_exn r with
  | Sexp.List [ Sexp.Atom "do"; a ] ->
    if not (Engine.try_action s (Action.concrete_of_sexp a)) then
      out "WARNING: replayed action rejected (store diverges from snapshot)"
  | Sexp.List [ Sexp.Atom "force"; a ] ->
    ignore (Engine.force s (Action.concrete_of_sexp a))
  | _ -> out "WARNING: unknown store record skipped"
  | exception Invalid_argument m -> out "WARNING: bad store record skipped: %s" m

let help () =
  out
    "commands:@.\
    \  load <expr>        set the constraint expression@.\
    \  do <action>        attempt an action (Fig. 9's action problem)@.\
    \  explain <action>   why would this action be denied right now?@.\
    \  force <action>     execute even if forbidden (may kill the session)@.\
    \  permitted          list currently permitted actions@.\
    \  trace [file]       accepted actions; with a file, export telemetry JSONL@.\
    \  state              state size and finality@.\
    \  dump               structural state dump@.\
    \  reset              back to the initial state@.\
    \  show               tree view of the interaction graph@.\
    \  classify           Section 6 complexity verdicts@.\
    \  simplify           algebraic normal form@.\
    \  deadend            search for dead ends@.\
    \  lang <n>           complete words up to length n@.\
    \  walk <n>           random walk of n permitted actions@.\
    \  save <file>        persist the session@.\
    \  restore <file>     load a persisted session@.\
    \  save-store <dir>   attach a durable store: snapshot now, WAL every action@.\
    \  recover <dir>      rebuild the session from a store (snapshot + replay)@.\
    \  telemetry on|off   collect events into a bounded ring buffer@.\
    \  slow [file]        tail-sampler captures (--slow-ms); export as JSONL@.\
    \  metrics            Prometheus-style counters, caches, watermarks@.\
    \  health             one-screen runtime health: contended locks, GC,@.\
    \                     per-domain utilization, speculation rates@.\
    \  compile            compiled-kernel status: active backend, program or@.\
    \                     automaton shape, step counters@.\
    \  load-program <f>   load a compiled artifact (iexpr compile -o) and@.\
    \                     bind a session to its expression@.\
    \  help, quit"

(* One process-wide ring: `telemetry on` installs it as a sink once, and
   `trace` reads it back.  8192 events is plenty for an interactive
   session; eviction is reported by `trace`. *)
let ring = Telemetry.Ring.create 8192
let ring_installed = ref false

let install_ring () =
  if not !ring_installed then begin
    Telemetry.add_sink (Telemetry.Ring.sink ring);
    ring_installed := true
  end

let with_session env k =
  match env.session with
  | Some s -> k s
  | None -> out "no expression loaded (use: load <expr>)"

let with_action rest k =
  match Syntax.parse_action rest with
  | Ok a -> k a
  | Error m -> out "parse error: %s" m

let command env line =
  let line = String.trim line in
  let cmd, rest =
    match String.index_opt line ' ' with
    | Some i ->
      ( String.sub line 0 i,
        String.trim (String.sub line (i + 1) (String.length line - i - 1)) )
    | None -> (line, "")
  in
  match cmd with
  | "" -> ()
  | "help" -> help ()
  | "load" -> (
    match Syntax.parse rest with
    | Ok e ->
      detach_store env "new expression loaded";
      env.session <- Some (Engine.create e);
      (match env.pool with
      | Some pool ->
        let m = Pengine.create ~pool e in
        env.mirror <- Some m;
        (match Pengine.mode m with
        | Pengine.Sharded k -> out "parallel mirror: %d shards on %d domains" k (Pool.size pool)
        | Pengine.Sequential -> out "parallel mirror: sequential (expression does not decompose)");
        (* an overlapping coupling defeats the partition; mirror it
           speculatively as well so disagreements and conflict rates
           surface interactively *)
        env.spec <-
          (match Pengine.mode m with
          | Pengine.Sharded _ -> None
          | Pengine.Sequential ->
            if List.length (Partition.flatten_sync e) > 1 then begin
              let sp = Speculate.create ~pool e in
              out "speculative mirror: %d shards (%s)" (Speculate.shard_count sp)
                (Speculate.protocol_name (Speculate.protocol sp));
              Some sp
            end
            else None)
      | None -> ());
      out "loaded: %a" Syntax.pp e
    | Error m -> out "parse error: %s" m)
  | "do" ->
    with_session env (fun s ->
        with_action rest (fun a ->
            let ok = Engine.try_action s a in
            (match env.mirror with
            | Some m ->
              let pok = Pengine.try_action m a in
              if pok <> ok then
                out "WARNING: parallel mirror disagrees (sequential %s, parallel %s)"
                  (if ok then "accepts" else "rejects")
                  (if pok then "accepts" else "rejects")
            | None -> ());
            (match env.spec with
            | Some sp ->
              let sok = Speculate.try_action sp a in
              if sok <> ok then
                out "WARNING: speculative mirror disagrees (sequential %s, speculative %s)"
                  (if ok then "accepts" else "rejects")
                  (if sok then "accepts" else "rejects")
            | None -> ());
            if ok then begin
              log_action env "do" a;
              out "Accept.%s" (if Engine.is_final s then " (complete)" else "")
            end
            else out "Reject."))
  | "explain" ->
    with_session env (fun s ->
        with_action rest (fun a ->
            match Engine.explain_denial s a with
            | None -> out "permitted (nothing to explain)"
            | Some x -> out "%s" (Explain.to_string x)))
  | "force" ->
    with_session env (fun s ->
        with_action rest (fun a ->
            if env.mirror <> None then begin
              detach env;
              out "(parallel mirror detached: force bypasses the action problem)"
            end;
            let was_alive = Engine.is_alive s in
            let ok = Engine.force s a in
            if ok || was_alive then log_action env "force" a;
            if ok then out "executed"
            else if was_alive then
              out "executed — the session is now dead (constraint violated)"
            else out "ignored — the session is dead (reset to continue)"))
  | "permitted" ->
    with_session env (fun s ->
        let alphabet = Language.concrete_alphabet (Engine.expr s) in
        let ok = List.filter (Engine.permitted s) alphabet in
        if ok = [] then out "(nothing is permitted)"
        else
          List.iter (fun a -> out "  %s" (Action.concrete_to_string a)) ok)
  | "trace" ->
    if rest <> "" then begin
      (* export the collected telemetry events as JSONL *)
      let evs = Telemetry.Ring.to_list ring in
      Out_channel.with_open_text rest (fun oc ->
          List.iter (fun ev -> output_string oc (Telemetry.event_to_json ev ^ "\n")) evs);
      out "wrote %d event(s) to %s (%d dropped)" (List.length evs) rest
        (Telemetry.Ring.dropped ring)
    end
    else
      with_session env (fun s ->
          match Engine.trace s with
          | [] -> out "(empty trace)"
          | tr -> out "%s" (String.concat " " (List.map Action.concrete_to_string tr)))
  | "state" ->
    with_session env (fun s ->
        if not (Engine.is_alive s) then out "state: dead"
        else
          out "state: %d nodes, %s" (Engine.state_size s)
            (if Engine.is_final s then "final (trace is a complete word)"
             else "not final");
        (match env.mirror with
        | Some m ->
          out "mirror: %d shard(s), %d nodes, %s" (Pengine.shard_count m)
            (Pengine.state_size m)
            (if Pengine.is_final m then "final" else "not final")
        | None -> ());
        match env.spec with
        | Some sp ->
          let st = Speculate.stats () in
          out "speculative: %d shard(s), %s; %d batch(es), %d conflict(s), %d serial action(s)"
            (Speculate.shard_count sp)
            (if Speculate.is_final sp then "final" else "not final")
            st.Speculate.batches st.Speculate.conflicts st.Speculate.serial_actions
        | None -> ())
  | "dump" ->
    with_session env (fun s ->
        match Engine.state s with
        | Some st -> out "%a" State.pp st
        | None -> out "null")
  | "reset" ->
    with_session env (fun s ->
        Engine.reset s;
        Option.iter Pengine.reset env.mirror;
        Option.iter Speculate.reset env.spec;
        (* the store stays attached: a reset is a state change like any
           other, so re-snapshot rather than let the WAL diverge *)
        Option.iter (fun st -> Store.snapshot st (Engine.save s)) env.store;
        out "reset")
  | "show" ->
    with_session env (fun s ->
        print_string
          (Interaction_graph.Dot.render_tree
             (Interaction_graph.Graph.of_expr (Engine.expr s))))
  | "classify" -> with_session env (fun s -> out "%s" (Classify.describe (Engine.expr s)))
  | "simplify" ->
    with_session env (fun s ->
        let e = Engine.expr s in
        let before, after = Rewrite.size_reduction e in
        out "%a  (%d -> %d nodes)" Syntax.pp (Rewrite.simplify e) before after)
  | "deadend" ->
    with_session env (fun s ->
        match Language.has_dead_end ~max_states:20_000 (Engine.expr s) with
        | Some true -> out "DEAD END reachable"
        | Some false -> out "no dead ends"
        | None -> out "unknown (state bound hit)")
  | "lang" ->
    with_session env (fun s ->
        let n = match int_of_string_opt rest with Some n -> n | None -> 4 in
        let e = Engine.expr s in
        let universe = Language.concrete_alphabet e in
        List.iter
          (fun w ->
            out "  %s"
              (if w = [] then "<empty word>"
               else String.concat " " (List.map Action.concrete_to_string w)))
          (Semantics.language ~max_len:n ~universe e))
  | "walk" ->
    with_session env (fun s ->
        let n = match int_of_string_opt rest with Some n -> n | None -> 10 in
        let walk = Simulate.random_trace ~seed:(Engine.state_size s) ~length:n (Engine.expr s) in
        List.iter
          (fun a ->
            if Engine.try_action s a then log_action env "do" a;
            Option.iter (fun m -> ignore (Pengine.try_action m a)) env.mirror)
          walk;
        out "walked %d actions: %s" (List.length walk)
          (String.concat " " (List.map Action.concrete_to_string walk)))
  | "save" ->
    with_session env (fun s ->
        if rest = "" then out "usage: save <file>"
        else begin
          Out_channel.with_open_text rest (fun oc -> output_string oc (Engine.save s));
          out "saved to %s" rest
        end)
  | "restore" -> (
    if rest = "" then out "usage: restore <file>"
    else
      match In_channel.with_open_text rest In_channel.input_all with
      | content -> (
        match Engine.load content with
        | s ->
          detach_store env "restored session replaces the stored one";
          env.session <- Some s;
          if env.mirror <> None then begin
            detach env;
            out "(parallel mirror detached: restored session has foreign history)"
          end;
          out "restored: %a (%d actions in trace)" Syntax.pp (Engine.expr s)
            (List.length (Engine.trace s))
        | exception Invalid_argument m -> out "restore failed: %s" m)
      | exception Sys_error m -> out "restore failed: %s" m)
  | "save-store" ->
    with_session env (fun s ->
        if rest = "" then out "usage: save-store <dir>"
        else begin
          detach_store env "superseded by new store";
          match Store.open_ rest with
          | st, _, _ ->
            Store.snapshot st (Engine.save s);
            env.store <- Some st;
            out "store attached: %s (snapshot written, accepted actions now logged)"
              rest
          | exception Invalid_argument m -> out "save-store failed: %s" m
          | exception Sys_error m -> out "save-store failed: %s" m
        end)
  | "recover" -> (
    if rest = "" then out "usage: recover <dir>"
    else
      match Store.open_ rest with
      | st, Some snap, records -> (
        match Engine.load snap with
        | s ->
          List.iter (replay_record s) records;
          detach_store env "superseded by recovered store";
          env.session <- Some s;
          env.store <- Some st;
          if env.mirror <> None then begin
            detach env;
            out "(parallel mirror detached: recovered session has foreign history)"
          end;
          out "recovered: %a (%d actions in trace, %d WAL record(s) replayed)"
            Syntax.pp (Engine.expr s)
            (List.length (Engine.trace s))
            (List.length records)
        | exception Invalid_argument m ->
          Store.close st;
          out "recover failed: %s" m)
      | st, None, _ ->
        Store.close st;
        out "recover failed: no snapshot in %s (use save-store first)" rest
      | exception Invalid_argument m -> out "recover failed: %s" m
      | exception Sys_error m -> out "recover failed: %s" m)
  | "telemetry" -> (
    match rest with
    | "on" ->
      install_ring ();
      Telemetry.enable ();
      Prof.Gcprof.install ();
      out "telemetry enabled (ring capacity %d)" (Telemetry.Ring.capacity ring)
    | "off" ->
      Telemetry.disable ();
      out "telemetry disabled"
    | _ -> out "usage: telemetry on|off")
  | "slow" -> (
    match env.sampler with
    | None -> out "tail sampler is off (start with --slow-ms N)"
    | Some smp ->
      if rest <> "" then begin
        let n = Sampler.dump_to_file smp rest in
        out "wrote %d event(s) from %d capture(s) to %s (analyze with itrace)" n
          (List.length (Sampler.captures smp))
          rest
      end
      else
        out "considered %d, captured %d, discarded %d (%d event(s) dropped)"
          (Sampler.considered smp) (Sampler.captured smp)
          (Sampler.discarded smp)
          (Sampler.dropped_events smp))
  | "metrics" -> print_string (Telemetry.expose ())
  | "health" ->
    let util = Option.map Pool.utilization env.pool in
    let reps, cross = Scache.replica_stats () in
    let sp = Speculate.stats () in
    let spec_lines =
      if sp.Speculate.batches = 0 then [ "no batches" ]
      else
        [ Printf.sprintf
            "batches %d, speculative %d, conflicts %d, retries %d"
            sp.Speculate.batches sp.Speculate.speculative
            sp.Speculate.conflicts sp.Speculate.retries;
          Printf.sprintf
            "time: sweep %.1f us, validate %.1f us, rollback %.1f us, serial \
             %.1f us"
            (float_of_int sp.Speculate.sweep_ns /. 1e3)
            (float_of_int sp.Speculate.validate_ns /. 1e3)
            (float_of_int sp.Speculate.rollback_ns /. 1e3)
            (float_of_int sp.Speculate.serial_ns /. 1e3) ]
    in
    print_string
      (Prof.health ?util
         ~extra:
           [ ( "scache",
               [ Printf.sprintf "replicas %d (cross-domain %d)" reps cross ] );
             ("speculation", spec_lines) ]
         ())
  | "compile" ->
    out "compilation: %s" (if State.compilation () then "on" else "off");
    (match env.session with
    | Some s -> (
      let e = Engine.expr s in
      match Engine.resolve e with
      | Engine.Vm -> (
        match Bytecode.shared e with
        | Some t ->
          let i = Bytecode.info t in
          out "backend: vm (%d state(s), %d column(s))" i.Bytecode.states
            i.Bytecode.columns
        | None -> out "backend: vm")
      | Engine.Table ->
        out "backend: table";
        if Automaton.active () then begin
          let i = Automaton.info (Automaton.shared e) in
          out "automaton: %s, %d row(s), %d signature(s)"
            (if i.Automaton.eager then "eager" else "lazy")
            i.Automaton.rows i.Automaton.signatures
        end
      | Engine.Interp -> out "backend: interp")
    | None -> ());
    let st = Automaton.stats () in
    out "steps: %d (%d interpreted fallback(s))" st.Automaton.steps
      st.Automaton.fallbacks;
    out "signature cache: %d hit(s), %d miss(es)" st.Automaton.sig_cache_hits
      st.Automaton.sig_cache_misses;
    let bst = Bytecode.stats () in
    out "vm steps: %d (%d fallback(s)); %d program(s), %d compile failure(s)"
      bst.Bytecode.steps bst.Bytecode.fallbacks bst.Bytecode.programs
      bst.Bytecode.failures
  | "load-program" ->
    if rest = "" then out "usage: load-program <file>"
    else (
      match Interaction_store.Progfile.read rest with
      | Error m -> out "%s" m
      | Ok p ->
        let e = Interaction.Bytecode.expr p in
        let t = Interaction.Bytecode.of_program p in
        let i = Interaction.Bytecode.info t in
        detach_store env "new expression loaded";
        env.session <- Some (Engine.create e);
        out "loaded program: %a (%d state(s), %d column(s))" Syntax.pp e
          i.Interaction.Bytecode.states i.Interaction.Bytecode.columns)
  | "quit" | "exit" -> raise Exit
  | other -> out "unknown command %S (try: help)" other

let usage_exit () =
  prerr_endline
    "usage: iworkbench [--domains N] [--no-compile] \
     [--engine interp|table|vm|auto] [--slow-ms N] [\"<expression>\"]";
  exit 2

let () =
  let args = match Array.to_list Sys.argv with [] -> [] | _ :: rest -> rest in
  let no_compile, args = List.partition (String.equal "--no-compile") args in
  if no_compile <> [] then State.set_compilation false;
  let args =
    let rec extract acc = function
      | "--engine" :: name :: rest -> (
        match Engine.backend_of_string name with
        | Ok pref ->
          Engine.set_backend pref;
          List.rev_append acc rest
        | Error m ->
          prerr_endline ("iworkbench: " ^ m);
          usage_exit ())
      | [ "--engine" ] -> usage_exit ()
      | x :: rest -> extract (x :: acc) rest
      | [] -> List.rev acc
    in
    extract [] args
  in
  let slow_ms, args =
    let rec extract acc = function
      | "--slow-ms" :: n :: rest -> (
        match float_of_string_opt n with
        | Some v when v >= 0. -> (Some v, List.rev_append acc rest)
        | Some _ | None -> usage_exit ())
      | [ "--slow-ms" ] -> usage_exit ()
      | x :: rest -> extract (x :: acc) rest
      | [] -> (None, List.rev acc)
    in
    extract [] args
  in
  let domains, initial =
    match args with
    | "--domains" :: n :: rest -> (
      match int_of_string_opt n with
      | Some n when n > 0 -> (n, rest)
      | Some _ | None -> usage_exit ())
    | rest -> (1, rest)
  in
  let pool = if domains > 1 then Some (Pool.create ~domains) else None in
  let sampler =
    Option.map
      (fun ms ->
        let smp = Sampler.create ~slow_ns:(Int64.of_float (ms *. 1e6)) () in
        Telemetry.add_sink (Sampler.sink smp);
        Telemetry.enable ();
        out "tail sampler on: capturing command chains slower than %gms (or raised)"
          ms;
        smp)
      slow_ms
  in
  let env = { session = None; pool; mirror = None; spec = None; store = None; sampler } in
  (match initial with
  | [ expr ] -> command env ("load " ^ expr)
  | _ -> out "iworkbench — type `help` for commands");
  (* with the sampler armed, each command line is one request: its events
     share a fresh trace id and the chain's fate is decided at the end *)
  let run_line line =
    match env.sampler with
    | None -> command env line
    | Some smp ->
      let trace = Telemetry.new_trace () in
      Telemetry.with_trace trace (fun () -> command env line);
      if Sampler.finish smp ~trace () then
        out "(slow-capture: trace %d retained — see `slow`)" trace
  in
  (try
     while true do
       print_string "> ";
       match In_channel.input_line stdin with
       | None -> raise Exit
       | Some line -> run_line line
     done
   with Exit -> out "bye");
  Option.iter Store.close env.store;
  Option.iter Pool.shutdown pool
