(* imanager — an interaction manager as a line-oriented server (Section 7).

   Reads one command per line on stdin and answers on stdout, so any WfMS
   (or a shell script) can participate in the coordination and subscription
   protocols of Fig. 10.  Commands:

     ASK <client> <action>          -> GRANTED | DENIED | BUSY
     CONFIRM <client> <action>      -> OK | ERROR <msg>
     ABORT <client> <action>        -> OK
     EXECUTE <client> <action>      -> EXECUTED | REFUSED
     PERMITTED <action>             -> YES | NO
     SUBSCRIBE <client> <action>    -> OK
     UNSUBSCRIBE <client> <action>  -> OK
     NOTIFICATIONS <client>         -> NOTIFY <action> ENABLED|DISABLED ... OK
     TIMEOUT                        -> OK        (drop an outstanding grant)
     CHECKPOINT <file>              -> OK        (write a checkpoint)
     CRASH                          -> OK        (lose volatile state)
     RECOVER [<file>]               -> OK        (log replay, or from checkpoint)
     LOG                            -> one line per confirmed action, then OK
     STATS                          -> one line of counters
     METRICS                        -> telemetry exposition, then OK
     STATE                          -> STATE <size>
     QUIT

   Start with the constraint expression as the command-line argument:

     dune exec bin/imanager.exe -- "all p: mutex(some x: call(p,x) - perform(p,x))"

   Options (before the expression):
     --stats-every N   dump STATS to stderr every N processed commands
     --trace FILE      append every telemetry event to FILE as JSONL

   Telemetry is enabled at startup: a server wants its counters live, and
   the cost without a sink is a few counter bumps per request. *)

open Interaction
open Interaction_manager

let out fmt = Format.printf (fmt ^^ "@.")

let split_words s =
  String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

let with_action rest k =
  match Syntax.parse_action (String.concat " " rest) with
  | Ok a -> k a
  | Error m -> out "ERROR %s" m

let run ~stats_every mgr =
  let stop = ref false in
  let processed = ref 0 in
  while not !stop do
    match In_channel.input_line stdin with
    | None -> stop := true
    | Some line -> (
      match split_words (String.trim line) with
      | [] -> ()
      | cmd :: args ->
        (
        match (String.uppercase_ascii cmd, args) with
        | "ASK", client :: rest ->
          with_action rest (fun a ->
              match Manager.ask mgr ~client a with
              | Manager.Granted -> out "GRANTED"
              | Manager.Denied -> out "DENIED"
              | Manager.Busy -> out "BUSY")
        | "CONFIRM", client :: rest ->
          with_action rest (fun a ->
              match Manager.confirm mgr ~client a with
              | () -> out "OK"
              | exception Invalid_argument m -> out "ERROR %s" m)
        | "ABORT", client :: rest ->
          with_action rest (fun a ->
              Manager.abort mgr ~client a;
              out "OK")
        | "EXECUTE", client :: rest ->
          with_action rest (fun a ->
              out "%s" (if Manager.execute mgr ~client a then "EXECUTED" else "REFUSED"))
        | "PERMITTED", rest ->
          with_action rest (fun a -> out "%s" (if Manager.permitted mgr a then "YES" else "NO"))
        | "SUBSCRIBE", client :: rest ->
          with_action rest (fun a ->
              Manager.subscribe mgr ~client a;
              out "OK")
        | "UNSUBSCRIBE", client :: rest ->
          with_action rest (fun a ->
              Manager.unsubscribe mgr ~client a;
              out "OK")
        | "NOTIFICATIONS", [ client ] ->
          List.iter
            (fun (n : Manager.notification) ->
              out "NOTIFY %s %s"
                (Action.concrete_to_string n.Manager.action)
                (if n.Manager.now_permitted then "ENABLED" else "DISABLED"))
            (Manager.drain_notifications mgr ~client);
          out "OK"
        | "TIMEOUT", [] ->
          Manager.timeout_outstanding mgr;
          out "OK"
        | "CHECKPOINT", [ file ] -> (
          match Manager.checkpoint mgr with
          | cp ->
            Out_channel.with_open_text file (fun oc -> output_string oc cp);
            out "OK"
          | exception Invalid_argument m -> out "ERROR %s" m)
        | "CRASH", [] ->
          Manager.crash mgr;
          out "OK"
        | "RECOVER", [] -> (
          match Manager.recover mgr with
          | () -> out "OK"
          | exception Invalid_argument m -> out "ERROR %s" m)
        | "RECOVER", [ file ] -> (
          let cp = In_channel.with_open_text file In_channel.input_all in
          match Manager.recover_with mgr ~checkpoint:cp with
          | () -> out "OK"
          | exception Invalid_argument m -> out "ERROR %s" m)
        | "LOG", [] ->
          List.iter
            (fun a -> out "%s" (Action.concrete_to_string a))
            (Manager.confirmed_log mgr);
          out "OK"
        | "STATS", [] -> out "%a" Manager.pp_stats (Manager.stats mgr)
        | "METRICS", [] ->
          print_string (Telemetry.expose ());
          out "OK"
        | "STATE", [] -> out "STATE %d" (Manager.state_size mgr)
        | "QUIT", [] -> stop := true
        | _ -> out "ERROR unknown command %S" line);
        incr processed;
        if stats_every > 0 && !processed mod stats_every = 0 then
          Format.eprintf "STATS %a@." Manager.pp_stats (Manager.stats mgr))
  done

let usage () =
  prerr_endline
    "usage: imanager [--stats-every N] [--trace FILE] \"<interaction expression>\"";
  exit 2

let () =
  let stats_every = ref 0 in
  let trace_file = ref None in
  let rec parse_args = function
    | "--stats-every" :: n :: rest -> (
      match int_of_string_opt n with
      | Some n when n > 0 ->
        stats_every := n;
        parse_args rest
      | Some _ | None -> usage ())
    | "--trace" :: file :: rest ->
      trace_file := Some file;
      parse_args rest
    | [ expr ] -> expr
    | _ -> usage ()
  in
  let expr = parse_args (List.tl (Array.to_list Sys.argv)) in
  match Syntax.parse expr with
  | Error m ->
    prerr_endline ("imanager: " ^ m);
    exit 2
  | Ok e ->
    let trace_oc =
      match !trace_file with
      | None -> None
      | Some file ->
        let oc = Out_channel.open_text file in
        Telemetry.add_sink (Telemetry.jsonl_sink (output_string oc));
        Some oc
    in
    Telemetry.enable ();
    Format.printf "READY %d@." (Expr.size e);
    run ~stats_every:!stats_every (Manager.create e);
    Option.iter Out_channel.close trace_oc
