(* imanager — an interaction manager as a line-oriented server (Section 7).

   Reads one command per line on stdin and answers on stdout, so any WfMS
   (or a shell script) can participate in the coordination and subscription
   protocols of Fig. 10.  Commands:

     ASK <client> <action>          -> GRANTED | DENIED [<reason>] | BUSY
     CONFIRM <client> <action>      -> OK | ERROR <msg>
     ABORT <client> <action>        -> OK
     EXECUTE <client> <action>      -> EXECUTED | REFUSED
     PERMITTED <action>             -> YES | NO
     EXPLAIN <action>               -> PERMITTED | BLAME <locus>: <reason> ... OK
     SUBSCRIBE <client> <action>    -> OK
     UNSUBSCRIBE <client> <action>  -> OK
     NOTIFICATIONS <client>         -> NOTIFY <action> ENABLED|DISABLED ... OK
     TIMEOUT                        -> OK        (drop an outstanding grant)
     CHECKPOINT <file>              -> OK        (write a checkpoint)
     SNAPSHOT                       -> OK        (store snapshot; needs --store)
     CRASH                          -> OK        (lose volatile state)
     RECOVER [<file>]               -> OK        (log replay, or from checkpoint)
     LOG                            -> one line per confirmed action, then OK
     STATS                          -> one line of counters
     METRICS                        -> telemetry exposition, then OK
     HEALTH                         -> one-screen runtime-health snapshot
                                       (top contended locks, GC, per-domain
                                       utilization, speculation rates), then OK
     STATE                          -> STATE <size>
     QUIT

   Start with the constraint expression as the command-line argument:

     dune exec bin/imanager.exe -- "all p: mutex(some x: call(p,x) - perform(p,x))"

   Options (before the expression):
     --stats-every N   dump STATS to stderr every N processed commands
     --trace FILE      append every telemetry event to FILE as JSONL
     --store DIR       durable mode: every protocol operation is written
                       to a write-ahead log in DIR before the reply, and
                       an existing store is recovered at startup (snapshot
                       + WAL replay + requeue of in-flight notifications);
                       a "RECOVERED <records>" line follows READY.  With
                       --domains N, each shard logs to DIR/shard<i>.
     --no-fsync        keep the WAL but skip the per-append fsync (faster,
                       durable only against process crashes)
     --snapshot-every N  automatic snapshot every N WAL records
     --domains N       N > 1: shard the expression across N worker domains
                       (one manager replica per independent component); an
                       extra "SHARDS <k> DOMAINS <n>" line follows READY.
                       Checkpoint-file recovery is per-replica state and is
                       not available in sharded mode.
     --overlap-shards  with --domains N: shard a coupling even when its
                       operands' alphabets overlap (operand groups, round
                       robin); actions owned by several shards coordinate
                       through the two-phase grant across exactly their
                       owners.
     --no-compile      disable the compiled transition kernel (signature
                       classifier + lazy automaton); every step runs the
                       interpreted transition function.
     --engine E        executable backend: interp | table | vm | auto
                       (default auto: the bytecode VM when the expression
                       compiles, the lazy automaton otherwise).
     --slow-ms N       tail sampling: buffer each request's event chain
                       and append it to the slow-trace file when the
                       request was slower than N ms, denied, or raised
                       (fast successful requests are discarded whole)
     --slow-trace FILE where --slow-ms appends captured chains
                       (default slow_traces.jsonl; analyze with itrace)

   Telemetry is enabled at startup: a server wants its counters live, and
   the cost without a sink is a few counter bumps per request.  STATS
   lines carry estimated execute p50/p99 once the latency histogram has
   observations. *)

open Interaction
open Interaction_exec
open Interaction_manager

let out fmt = Format.printf (fmt ^^ "@.")

let split_words s =
  String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

let with_action rest k =
  match Syntax.parse_action (String.concat " " rest) with
  | Ok a -> k a
  | Error m -> out "ERROR %s" m

(* The command loop is backend-agnostic: the sequential manager and the
   domain-sharded one answer the same protocol. *)
type backend = {
  b_ask : client:string -> Action.concrete -> Manager.reply;
  b_confirm : client:string -> Action.concrete -> unit;
  b_abort : client:string -> Action.concrete -> unit;
  b_execute : client:string -> Action.concrete -> bool;
  b_permitted : Action.concrete -> bool;
  b_explain : Action.concrete -> Explain.explanation option;
  b_subscribe : client:string -> Action.concrete -> unit;
  b_unsubscribe : client:string -> Action.concrete -> unit;
  b_drain : client:string -> Manager.notification list;
  b_timeout : unit -> unit;
  b_checkpoint : unit -> string;
  b_crash : unit -> unit;
  b_recover : unit -> unit;
  b_recover_with : checkpoint:string -> unit;
  b_log : unit -> Action.concrete list;
  b_stats : unit -> Manager.stats;
  b_stats_extra : unit -> string;
  b_state_size : unit -> int;
  b_health : unit -> string;
  b_snapshot : (unit -> unit) option;  (* None without a --store *)
}

(* One-screen runtime-health snapshot: Prof's lock/GC core plus the
   layers Prof cannot see from below — scache replica spread, the
   speculation conflict/retry/time breakdown, and (sharded mode) pool
   lane utilization. *)
let health_report ?util () =
  let reps, cross = Scache.replica_stats () in
  let sp = Speculate.stats () in
  let spec_lines =
    if sp.Speculate.batches = 0 then [ "no batches" ]
    else
      [ Printf.sprintf
          "batches %d, speculative %d, conflicts %d (rate %.3f), retries %d"
          sp.Speculate.batches sp.Speculate.speculative sp.Speculate.conflicts
          (if sp.Speculate.speculative = 0 then 0.0
           else
             float_of_int sp.Speculate.conflicts
             /. float_of_int sp.Speculate.speculative)
          sp.Speculate.retries;
        Printf.sprintf
          "conflict actions %d, validation failures %d, serial actions %d"
          sp.Speculate.conflict_actions sp.Speculate.validation_failures
          sp.Speculate.serial_actions;
        Printf.sprintf
          "time: sweep %.1f us, validate %.1f us, rollback %.1f us, serial \
           %.1f us"
          (float_of_int sp.Speculate.sweep_ns /. 1e3)
          (float_of_int sp.Speculate.validate_ns /. 1e3)
          (float_of_int sp.Speculate.rollback_ns /. 1e3)
          (float_of_int sp.Speculate.serial_ns /. 1e3) ]
  in
  Prof.health ?util
    ~extra:
      [ ("scache", [ Printf.sprintf "replicas %d (cross-domain %d)" reps cross ]);
        ("speculation", spec_lines) ]
    ()

let seq_backend mgr =
  { b_ask = Manager.ask mgr;
    b_confirm = Manager.confirm mgr;
    b_abort = Manager.abort mgr;
    b_execute = Manager.execute mgr;
    b_permitted = Manager.permitted mgr;
    b_explain = Manager.explain_denial mgr;
    b_subscribe = Manager.subscribe mgr;
    b_unsubscribe = Manager.unsubscribe mgr;
    b_drain = (fun ~client -> Manager.drain_notifications mgr ~client);
    b_timeout = (fun () -> Manager.timeout_outstanding mgr);
    b_checkpoint = (fun () -> Manager.checkpoint mgr);
    b_crash = (fun () -> Manager.crash mgr);
    b_recover = (fun () -> Manager.recover mgr);
    b_recover_with = (fun ~checkpoint -> Manager.recover_with mgr ~checkpoint);
    b_log = (fun () -> Manager.confirmed_log mgr);
    b_stats = (fun () -> Manager.stats mgr);
    b_stats_extra = (fun () -> "");
    b_state_size = (fun () -> Manager.state_size mgr);
    b_health = (fun () -> health_report ());
    b_snapshot = None }

let durable_backend d =
  let mgr = Durable.manager d in
  { b_ask = Durable.ask d;
    b_confirm = Durable.confirm d;
    b_abort = Durable.abort d;
    b_execute = Durable.execute d;
    b_permitted = Durable.permitted d;
    b_explain = Manager.explain_denial mgr;
    b_subscribe = Durable.subscribe d;
    b_unsubscribe = Durable.unsubscribe d;
    b_drain = (fun ~client -> Durable.drain_notifications d ~client);
    b_timeout = (fun () -> Durable.timeout_outstanding d);
    b_checkpoint = (fun () -> Manager.checkpoint mgr);
    (* CRASH/RECOVER stay the paper's volatile-state simulation on the
       in-memory replica; the WAL recovers real process crashes *)
    b_crash = (fun () -> Manager.crash mgr);
    b_recover = (fun () -> Manager.recover mgr);
    b_recover_with = (fun ~checkpoint -> Manager.recover_with mgr ~checkpoint);
    b_log = (fun () -> Durable.confirmed_log d);
    b_stats = (fun () -> Durable.stats d);
    b_stats_extra = (fun () -> Printf.sprintf " wal_replayed=%d" (Durable.replayed d));
    b_state_size = (fun () -> Manager.state_size mgr);
    b_health = (fun () -> health_report ());
    b_snapshot = Some (fun () -> Durable.snapshot d) }

let sharded_backend sm =
  { b_ask = Sharded.ask sm;
    b_confirm = Sharded.confirm sm;
    b_abort = Sharded.abort sm;
    b_execute = Sharded.execute sm;
    b_permitted = Sharded.permitted sm;
    b_explain = Sharded.explain_denial sm;
    b_subscribe = Sharded.subscribe sm;
    b_unsubscribe = Sharded.unsubscribe sm;
    b_drain = (fun ~client -> Sharded.drain_notifications sm ~client);
    b_timeout = (fun () -> Sharded.timeout_outstanding sm);
    b_checkpoint =
      (fun () -> invalid_arg "checkpoints are per-replica; not available in sharded mode");
    b_crash = (fun () -> Sharded.crash_all sm);
    b_recover = (fun () -> Sharded.recover_all sm);
    b_recover_with =
      (fun ~checkpoint:_ ->
        invalid_arg "checkpoints are per-replica; not available in sharded mode");
    b_log = (fun () -> Sharded.confirmed_log sm);
    b_stats = (fun () -> Sharded.stats sm);
    b_stats_extra =
      (fun () ->
        Printf.sprintf " shards=%d coordinations=%d foreign_grants=%d"
          (Sharded.shard_count sm) (Sharded.coordinations sm)
          (Sharded.foreign_grants sm));
    b_state_size = (fun () -> Sharded.state_size sm);
    b_health =
      (fun () -> health_report ~util:(Pool.utilization (Sharded.pool sm)) ());
    b_snapshot =
      (if Sharded.durable sm then Some (fun () -> Sharded.snapshot_all sm) else None) }

(* find-or-create returns the handle Manager registered at init *)
let exec_hist = Telemetry.histogram "manager_execute_ns"

let latency_suffix () =
  if Telemetry.histogram_count exec_hist = 0 then ""
  else
    Printf.sprintf " execute_p50_ns=%.0f execute_p99_ns=%.0f"
      (Telemetry.histogram_quantile exec_hist 0.5)
      (Telemetry.histogram_quantile exec_hist 0.99)

let run ~stats_every ~sampler b =
  let stop = ref false in
  let processed = ref 0 in
  while not !stop do
    match In_channel.input_line stdin with
    | None -> stop := true
    | Some line -> (
      match split_words (String.trim line) with
      | [] -> ()
      | cmd :: args ->
        (* Each command line is one externally submitted request: it runs in
           its own trace, so the events of its ask/confirm/deny chain share
           one trace id in the --trace export. *)
        let dispatch () =
        match (String.uppercase_ascii cmd, args) with
        | "ASK", client :: rest ->
          with_action rest (fun a ->
              match b.b_ask ~client a with
              | Manager.Granted -> out "GRANTED"
              | Manager.Denied -> (
                match b.b_explain a with
                | Some x -> out "DENIED %s" (Explain.summary x)
                | None -> out "DENIED")
              | Manager.Busy -> out "BUSY")
        | "CONFIRM", client :: rest ->
          with_action rest (fun a ->
              match b.b_confirm ~client a with
              | () -> out "OK"
              | exception Invalid_argument m -> out "ERROR %s" m)
        | "ABORT", client :: rest ->
          with_action rest (fun a ->
              b.b_abort ~client a;
              out "OK")
        | "EXECUTE", client :: rest ->
          with_action rest (fun a ->
              out "%s" (if b.b_execute ~client a then "EXECUTED" else "REFUSED"))
        | "PERMITTED", rest ->
          with_action rest (fun a -> out "%s" (if b.b_permitted a then "YES" else "NO"))
        | "EXPLAIN", rest ->
          with_action rest (fun a ->
              match b.b_explain a with
              | None -> out "PERMITTED"
              | Some x ->
                List.iter
                  (fun bl -> out "BLAME %s" (Explain.blame_to_string bl))
                  x.Explain.blames;
                out "OK")
        | "SUBSCRIBE", client :: rest ->
          with_action rest (fun a ->
              b.b_subscribe ~client a;
              out "OK")
        | "UNSUBSCRIBE", client :: rest ->
          with_action rest (fun a ->
              b.b_unsubscribe ~client a;
              out "OK")
        | "NOTIFICATIONS", [ client ] ->
          List.iter
            (fun (n : Manager.notification) ->
              out "NOTIFY %s %s"
                (Action.concrete_to_string n.Manager.action)
                (if n.Manager.now_permitted then "ENABLED" else "DISABLED"))
            (b.b_drain ~client);
          out "OK"
        | "TIMEOUT", [] ->
          b.b_timeout ();
          out "OK"
        | "SNAPSHOT", [] -> (
          match b.b_snapshot with
          | Some f ->
            f ();
            out "OK"
          | None -> out "ERROR no store attached (start with --store DIR)")
        | "CHECKPOINT", [ file ] -> (
          match b.b_checkpoint () with
          | cp ->
            Out_channel.with_open_text file (fun oc -> output_string oc cp);
            out "OK"
          | exception Invalid_argument m -> out "ERROR %s" m)
        | "CRASH", [] ->
          b.b_crash ();
          out "OK"
        | "RECOVER", [] -> (
          match b.b_recover () with
          | () -> out "OK"
          | exception Invalid_argument m -> out "ERROR %s" m)
        | "RECOVER", [ file ] -> (
          let cp = In_channel.with_open_text file In_channel.input_all in
          match b.b_recover_with ~checkpoint:cp with
          | () -> out "OK"
          | exception Invalid_argument m -> out "ERROR %s" m)
        | "LOG", [] ->
          List.iter
            (fun a -> out "%s" (Action.concrete_to_string a))
            (b.b_log ());
          out "OK"
        | "STATS", [] ->
          out "%a%s%s" Manager.pp_stats (b.b_stats ()) (b.b_stats_extra ())
            (latency_suffix ())
        | "METRICS", [] ->
          print_string (Telemetry.expose ());
          out "OK"
        | "HEALTH", [] ->
          print_string (b.b_health ());
          out "OK"
        | "STATE", [] -> out "STATE %d" (b.b_state_size ())
        | "QUIT", [] -> stop := true
        | _ -> out "ERROR unknown command %S" line
        in
        let trace = if !Telemetry.on then Telemetry.new_trace () else 0 in
        if trace = 0 then dispatch () else Telemetry.with_trace trace dispatch;
        (match sampler with
        | Some (smp, oc) when trace <> 0 ->
          if Sampler.finish smp ~trace () then (
            match Sampler.last_capture smp with
            | Some (t, evs) when t = trace ->
              List.iter
                (fun ev -> output_string oc (Telemetry.event_to_json ev ^ "\n"))
                evs;
              flush oc
            | _ -> ())
        | _ -> ());
        incr processed;
        if stats_every > 0 && !processed mod stats_every = 0 then
          Format.eprintf "STATS %a%s%s@." Manager.pp_stats (b.b_stats ())
            (b.b_stats_extra ()) (latency_suffix ()))
  done

let usage () =
  prerr_endline
    "usage: imanager [--stats-every N] [--trace FILE] [--domains N] \
     [--overlap-shards] [--no-compile] \
     [--engine interp|table|vm|auto] [--store DIR] [--no-fsync] \
     [--snapshot-every N] [--slow-ms N] [--slow-trace FILE] \
     \"<interaction expression>\"";
  exit 2

let () =
  let stats_every = ref 0 in
  let trace_file = ref None in
  let domains = ref 1 in
  let overlap = ref false in
  let store = ref None in
  let fsync = ref true in
  let snapshot_every = ref None in
  let slow_ms = ref None in
  let slow_trace = ref "slow_traces.jsonl" in
  let rec parse_args = function
    | "--stats-every" :: n :: rest -> (
      match int_of_string_opt n with
      | Some n when n > 0 ->
        stats_every := n;
        parse_args rest
      | Some _ | None -> usage ())
    | "--trace" :: file :: rest ->
      trace_file := Some file;
      parse_args rest
    | "--domains" :: n :: rest -> (
      match int_of_string_opt n with
      | Some n when n > 0 ->
        domains := n;
        parse_args rest
      | Some _ | None -> usage ())
    | "--overlap-shards" :: rest ->
      overlap := true;
      parse_args rest
    | "--no-compile" :: rest ->
      State.set_compilation false;
      parse_args rest
    | "--engine" :: name :: rest -> (
      match Engine.backend_of_string name with
      | Ok pref ->
        Engine.set_backend pref;
        parse_args rest
      | Error m ->
        prerr_endline ("imanager: " ^ m);
        usage ())
    | "--store" :: dir :: rest ->
      store := Some dir;
      parse_args rest
    | "--no-fsync" :: rest ->
      fsync := false;
      parse_args rest
    | "--snapshot-every" :: n :: rest -> (
      match int_of_string_opt n with
      | Some n when n > 0 ->
        snapshot_every := Some n;
        parse_args rest
      | Some _ | None -> usage ())
    | "--slow-ms" :: n :: rest -> (
      match float_of_string_opt n with
      | Some v when v >= 0. ->
        slow_ms := Some v;
        parse_args rest
      | Some _ | None -> usage ())
    | "--slow-trace" :: file :: rest ->
      slow_trace := file;
      parse_args rest
    | [ expr ] -> expr
    | _ -> usage ()
  in
  let expr = parse_args (List.tl (Array.to_list Sys.argv)) in
  match Syntax.parse expr with
  | Error m ->
    prerr_endline ("imanager: " ^ m);
    exit 2
  | Ok e ->
    let trace_oc =
      match !trace_file with
      | None -> None
      | Some file ->
        let oc = Out_channel.open_text file in
        Telemetry.add_sink (Telemetry.jsonl_sink (output_string oc));
        Some oc
    in
    let sampler =
      match !slow_ms with
      | None -> None
      | Some ms ->
        let smp = Sampler.create ~slow_ns:(Int64.of_float (ms *. 1e6)) () in
        Telemetry.add_sink (Sampler.sink smp);
        Some (smp, Out_channel.open_text !slow_trace)
    in
    Telemetry.enable ();
    Prof.Gcprof.install ();
    Format.printf "READY %d@." (Expr.size e);
    (try
       if !domains <= 1 then
       match !store with
       | None ->
         run ~stats_every:!stats_every ~sampler (seq_backend (Manager.create e))
       | Some dir ->
         let d =
           Durable.open_ ~fsync:!fsync ?snapshot_every:!snapshot_every ~dir e
         in
         Format.printf "RECOVERED %d@." (Durable.replayed d);
         run ~stats_every:!stats_every ~sampler (durable_backend d);
         Durable.close d
       else
         Pool.with_pool ~domains:!domains (fun pool ->
             let sm =
               Sharded.create ~pool ?store:!store ~fsync:!fsync
                 ?snapshot_every:!snapshot_every ~overlap:!overlap e
             in
             Format.printf "SHARDS %d DOMAINS %d@." (Sharded.shard_count sm)
               (Pool.size pool);
             if Sharded.durable sm then
               Format.printf "RECOVERED %d@." (Sharded.replayed_total sm);
             run ~stats_every:!stats_every ~sampler (sharded_backend sm);
             Sharded.close_stores sm)
     with Invalid_argument m ->
       (* e.g. a store directory written for a different expression *)
       prerr_endline ("imanager: " ^ m);
       exit 1);
    Option.iter Out_channel.close trace_oc;
    Option.iter (fun (_, oc) -> Out_channel.close oc) sampler
