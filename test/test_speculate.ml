(* Differential oracle for the parallel shared-memory execution paths:
   whatever runs across domains — engine sessions on the shared compiled
   kernels, the optimistic cross-shard protocol ({!Speculate}), the
   sharded manager forced over an overlapping coupling — must agree with
   the sequential interpreted τ̂, action by action.  Overlapping-alphabet
   couplings are driven through speculation including forced conflicts
   and serial retries. *)

open Interaction
open Interaction_exec
open Testutil
open QCheck

let t name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)

(* Suite-level pools (spawning domains per qcheck case would dominate the
   runtime; 2 and 4 lanes are the configurations CI stresses). *)
let pool2 = Pool.create ~domains:2
let pool4 = Pool.create ~domains:4
let () = at_exit (fun () -> Pool.shutdown pool2; Pool.shutdown pool4)

(* ------------------------------------------------------------------ *)
(* The sequential interpreted oracle                                   *)
(* ------------------------------------------------------------------ *)

(* Feed semantics over the plain interpreted kernel: a rejected action
   leaves the state unchanged. *)
let oracle_feed e w =
  let rec go st acc = function
    | [] -> List.rev acc
    | c :: cs -> (
      match State.trans st c with
      | Some st' -> go st' acc cs
      | None -> go st (c :: acc) cs)
  in
  go (State.init e) [] w

(* Same walk, the accepted subsequence in order (the trace shape). *)
let oracle_trace e w =
  let rec go st acc = function
    | [] -> List.rev acc
    | c :: cs -> (
      match State.trans st c with
      | Some st' -> go st' (c :: acc) cs
      | None -> go st acc cs)
  in
  go (State.init e) [] w

(* Same walk, per-action verdicts (the manager's execute_batch shape). *)
let oracle_verdicts e w =
  let rec go st acc = function
    | [] -> List.rev acc
    | c :: cs -> (
      match State.trans st c with
      | Some st' -> go st' (true :: acc) cs
      | None -> go st (false :: acc) cs)
  in
  go (State.init e) [] w

(* Chop a word into batches of at most [n] (speculation is per batch, so
   batch boundaries must not be observable). *)
let chunks n w =
  let rec go acc cur k = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | c :: cs ->
      if k = n then go (List.rev cur :: acc) [ c ] 1 cs
      else go acc (c :: cur) (k + 1) cs
  in
  go [] [] 0 w

(* ------------------------------------------------------------------ *)
(* Overlapping couplings: components sharing the action name "s"       *)
(* ------------------------------------------------------------------ *)

let gen_overlap_coupling ?(max_components = 4) ?(depth = 2) () : Expr.t Gen.t =
  let open Gen in
  int_range 2 max_components >>= fun k ->
  let component i =
    gen_expr_depth
      ~names:[ Printf.sprintf "a%d" i; Printf.sprintf "b%d" i; "s" ]
      depth
  in
  let rec build i acc =
    if i >= k then return (Expr.sync_list (List.rev acc))
    else component i >>= fun e -> build (i + 1) (e :: acc)
  in
  build 0 []

let overlap_word_arb ?(max_components = 4) ?(max_len = 10) () =
  let gen =
    let open Gen in
    gen_overlap_coupling ~max_components () >>= fun e ->
    gen_word_with_foreign e ~max_len >>= fun w -> return (e, w)
  in
  let print (e, w) =
    Printf.sprintf "%s  /  %s" (Syntax.to_string e)
      (String.concat " " (List.map Action.concrete_to_string w))
  in
  QCheck.make ~print gen

(* ------------------------------------------------------------------ *)
(* Speculate vs the oracle                                             *)
(* ------------------------------------------------------------------ *)

let spec_feed_matches ~pool ~shards ~batch (e, w) =
  let expected = oracle_feed e w in
  let sp = Speculate.create ~pool ~shards e in
  let got = List.concat_map (Speculate.feed sp) (chunks batch w) in
  got = expected && Speculate.trace sp = oracle_trace e w

let spec_disjoint_2d =
  Test.make ~count:250 ~name:"speculate == interpreted oracle (disjoint, 2 domains)"
    (coupling_word_arb ())
    (fun ew -> spec_feed_matches ~pool:pool2 ~shards:2 ~batch:4 ew)

let spec_overlap_2d =
  Test.make ~count:250 ~name:"speculate == interpreted oracle (overlap, 2 domains)"
    (overlap_word_arb ())
    (fun ew -> spec_feed_matches ~pool:pool2 ~shards:2 ~batch:4 ew)

let spec_overlap_4d =
  Test.make ~count:150 ~name:"speculate == interpreted oracle (overlap, 4 domains)"
    (overlap_word_arb ())
    (fun ew -> spec_feed_matches ~pool:pool4 ~shards:4 ~batch:3 ew)

(* ------------------------------------------------------------------ *)
(* Engine word/feed on the shared kernels, from worker domains         *)
(* ------------------------------------------------------------------ *)

let engine_word_verdict e w =
  match State.trans_word (State.init e) w with
  | None -> Semantics.Illegal
  | Some s -> if State.final s then Semantics.Complete else Semantics.Partial

let engine_parallel_matches ~pool ~domains (e, w) =
  let expected_word = engine_word_verdict e w in
  let expected_rej = oracle_feed e w in
  let verdicts =
    Pool.map_workers pool (List.init domains (fun _ () -> Engine.word e w))
  in
  let rejects =
    Pool.map_workers pool
      (List.init domains (fun _ () ->
           let s = Engine.create e in
           Engine.feed s w))
  in
  List.for_all (fun v -> v = expected_word) verdicts
  && List.for_all (fun r -> r = expected_rej) rejects

let engine_shared_2d =
  Test.make ~count:75 ~name:"engine word/feed == interpreted oracle (2 domains)"
    (expr_word_arb ~max_len:6 ())
    (fun ew -> engine_parallel_matches ~pool:pool2 ~domains:2 ew)

let engine_shared_4d =
  Test.make ~count:75 ~name:"engine word/feed == interpreted oracle (4 domains)"
    (expr_word_arb ~max_len:6 ())
    (fun ew -> engine_parallel_matches ~pool:pool4 ~domains:4 ew)

(* ------------------------------------------------------------------ *)
(* Sharded manager forced over an overlapping coupling                 *)
(* ------------------------------------------------------------------ *)

(* Words restricted to the coupling's routed alphabet: the manager grants
   alphabet-foreign actions open-world — including near-miss pattern
   instantiations like s(2,1) against s(?q,?q) — exactly like the
   sequential manager, while the raw τ̂ rejects them.  That divergence is
   by design and tested in test_sharded; here every offered action must
   reach a replica, so manager verdicts and τ̂ verdicts coincide. *)
let overlap_universe_word_arb () =
  let gen =
    let open Gen in
    gen_overlap_coupling () >>= fun e ->
    gen_word_for e ~max_len:8 >>= fun w ->
    let al = Alpha.of_expr e in
    return (e, List.filter (Alpha.mem al) w)
  in
  let print (e, w) =
    Printf.sprintf "%s  /  %s" (Syntax.to_string e)
      (String.concat " " (List.map Action.concrete_to_string w))
  in
  QCheck.make ~print gen

let sharded_overlap_matches ~pool (e, w) =
  let expected = oracle_verdicts e w in
  let sm = Interaction_manager.Sharded.create ~pool ~overlap:true e in
  let got = Interaction_manager.Sharded.execute_batch sm ~client:"t" w in
  got = expected

let sharded_overlap_2d =
  Test.make ~count:100 ~name:"sharded ~overlap:true == interpreted oracle (2 domains)"
    (overlap_universe_word_arb ())
    (fun ew -> sharded_overlap_matches ~pool:pool2 ew)

(* ------------------------------------------------------------------ *)
(* Forced conflicts: the optimistic bet must lose and recover          *)
(* ------------------------------------------------------------------ *)

(* k operands (a_i - s - b_i)*, sharded round-robin: a tick offered when
   only shard 0's operands are ready splits the owners' verdicts. *)
let conflict_expr k =
  Expr.sync_list
    (List.init k (fun i ->
         Syntax.parse_exn (Printf.sprintf "(a%d - s - b%d)*" (i + 1) (i + 1))))

let conflict_round ~k ~shards =
  let ready, rest = List.partition (fun i -> i mod shards = 0) (List.init k Fun.id) in
  let a i = Action.conc (Printf.sprintf "a%d" (i + 1)) [] in
  let b i = Action.conc (Printf.sprintf "b%d" (i + 1)) [] in
  List.map a ready
  @ [ Action.conc "s" [] ]
  @ List.map a rest
  @ [ Action.conc "s" [] ]
  @ List.map b (List.init k Fun.id)

let forced_conflict_case ~pool ~shards ~domains =
  t (Printf.sprintf "forced conflicts retry serially and match the oracle (%d domains)" domains)
    (fun () ->
      let k = 2 * shards in
      let e = conflict_expr k in
      let round = conflict_round ~k ~shards in
      let rounds = 10 in
      let word = List.concat (List.init rounds (fun _ -> round)) in
      let expected = oracle_feed e word in
      (* sanity: the adversarial tick is really rejected sequentially *)
      check_bool "oracle rejects one tick per round" true
        (List.length expected = rounds);
      Speculate.reset_stats ();
      let sp = Speculate.create ~pool ~shards e in
      let got =
        List.concat (List.init rounds (fun _ -> Speculate.feed sp round))
      in
      check_bool "rejects match the oracle" true (got = expected);
      let st = Speculate.stats () in
      check_bool "conflicts were forced" true (st.Speculate.conflicts > 0);
      check_bool "serial retries ran" true (st.Speculate.retries > 0);
      check_bool "the defensive path executed actions" true
        (st.Speculate.serial_actions > 0);
      (* and the protocol still reports a live, consistent instance *)
      check_bool "alive" true (Speculate.is_alive sp);
      check_bool "trace is the accepted subsequence" true
        (List.length (Speculate.trace sp)
        = List.length word - List.length expected))

let deterministic_cases =
  [ forced_conflict_case ~pool:pool2 ~shards:2 ~domains:2;
    forced_conflict_case ~pool:pool4 ~shards:4 ~domains:4;
    t "permitted asks every owner without committing" (fun () ->
        let k = 4 in
        let e = conflict_expr k in
        let sp = Speculate.create ~pool:pool2 ~shards:2 e in
        let s = Action.conc "s" [] in
        check_bool "tick not permitted before the a's" false
          (Speculate.permitted sp s);
        List.iter
          (fun i ->
            check_bool "a accepted" true
              (Speculate.try_action sp (Action.conc (Printf.sprintf "a%d" i) [])))
          [ 1; 2; 3; 4 ];
        check_bool "tick permitted once every operand is ready" true
          (Speculate.permitted sp s);
        check_bool "permitted did not advance the trace" true
          (List.length (Speculate.trace sp) = 4))
  ]

let qcheck_cases =
  List.map to_alcotest
    [ spec_disjoint_2d; spec_overlap_2d; spec_overlap_4d; engine_shared_2d;
      engine_shared_4d; sharded_overlap_2d ]

let () =
  Alcotest.run "speculate"
    [ ("differential", qcheck_cases); ("conflicts", deterministic_cases) ]
