open Interaction
open Testutil

let t name f = Alcotest.test_case name `Quick f

let parses s shape =
  t ("parse " ^ s) (fun () ->
      Alcotest.(check bool) "shape" true (shape (Syntax.parse_exn s)))

let parse_cases =
  [ parses "a" (function Expr.Atom _ -> true | _ -> false);
    parses "a - b - c" (function
      | Expr.Seq (Expr.Seq _, Expr.Atom _) -> true
      | _ -> false);
    parses "a | b | c" (function Expr.Or (Expr.Or _, _) -> true | _ -> false);
    parses "a || b" (function Expr.Par _ -> true | _ -> false);
    parses "a & b" (function Expr.And _ -> true | _ -> false);
    parses "a @ b" (function Expr.Sync _ -> true | _ -> false);
    parses "a*" (function Expr.SeqIter (Expr.Atom _) -> true | _ -> false);
    parses "a#" (function Expr.ParIter (Expr.Atom _) -> true | _ -> false);
    parses "a?" (function Expr.Opt (Expr.Atom _) -> true | _ -> false);
    parses "[a - b]" (function Expr.Opt (Expr.Seq _) -> true | _ -> false);
    parses "(a - b)*" (function Expr.SeqIter (Expr.Seq _) -> true | _ -> false);
    parses "some p: a(p)" (function
      | Expr.SomeQ ("p", Expr.Atom a) -> Action.params a = [ "p" ]
      | _ -> false);
    parses "all p: a(p)" (function Expr.AllQ _ -> true | _ -> false);
    parses "sync p: a(p)" (function Expr.SyncQ _ -> true | _ -> false);
    parses "conj p: a(p)" (function Expr.AndQ _ -> true | _ -> false);
    (* precedence: @ loosest, then &, |, ||, -, postfix *)
    parses "a - b | c || d & e @ f" (function Expr.Sync (Expr.And _, _) -> true | _ -> false);
    parses "a | b - c" (function
      | Expr.Or (Expr.Atom _, Expr.Seq _) -> true
      | _ -> false);
    (* a bare identifier is a value unless a parameter is in scope *)
    parses "a(x)" (function
      | Expr.Atom a -> Action.is_concrete a
      | _ -> false);
    parses "some x: a(x)" (function
      | Expr.SomeQ (_, Expr.Atom a) -> not (Action.is_concrete a)
      | _ -> false);
    parses "some x: a(\"x\")" (function
      | Expr.SomeQ (_, Expr.Atom a) -> Action.is_concrete a
      | _ -> false);
    parses "a(?p)" (function
      | Expr.Atom a -> Action.params a = [ "p" ]
      | _ -> false);
    parses "eps" (fun e -> Expr.equal e Expr.epsilon);
    (* quantifier keywords stay usable as action names *)
    parses "some - all" (function
      | Expr.Seq (Expr.Atom a, Expr.Atom b) ->
        a.Action.name = "some" && b.Action.name = "all"
      | _ -> false)
  ]

let error_cases =
  let fails s =
    t ("reject " ^ s) (fun () ->
        match Syntax.parse s with
        | Ok _ -> Alcotest.fail "expected a syntax error"
        | Error _ -> ())
  in
  [ fails "a -"; fails "(a"; fails "a)"; fails "some p a"; fails "a b"; fails "";
    fails "a(1"; fails "times(x, a)"; fails "times(-1, a)"; fails "a(?1)";
    fails "mutex()"; fails "a $ b"; fails "\"unterminated"
  ]

let words =
  [ t "parse_word splits on whitespace and separators" (fun () ->
        Alcotest.(check int) "len" 3 (List.length (w "a b(1,2); c(x)")));
    t "parse_word of empty string" (fun () ->
        Alcotest.(check int) "len" 0 (List.length (w "")));
    t "parse_action rejects parameters" (fun () ->
        match Syntax.parse_action "a(?p)" with
        | Ok _ -> Alcotest.fail "expected error"
        | Error _ -> ());
    t "parse_action accepts quoted values" (fun () ->
        Alcotest.(check string) "quoted" "a(x y)"
          (Action.concrete_to_string (a1 {|a("x y")|})))
  ]

let round_trip_unit =
  let rt s =
    t ("round-trip " ^ s) (fun () ->
        let e = Syntax.parse_exn s in
        let e' = Syntax.parse_exn (Syntax.to_string e) in
        Alcotest.(check bool) (Syntax.to_string e) true (Expr.equal e e'))
  in
  [ rt "a - (b | c)* @ d";
    rt "some p: all x: (prepare(p,x) - call(p,x))#";
    rt "times(2, mutex(a, b))";
    rt {|a("quoted value", 1)|};
    rt "conj p: (a(p) & b(?free))";
    rt "[[a]]";
    rt "((a - b) || c)?*#"
  ]

(* Values that collide with in-scope parameter names must be quoted. *)
let capture =
  [ t "printer protects captured values" (fun () ->
        let e = Expr.some_q "v" (Expr.Seq (!"a(?v)", Expr.act "b" [ "v" ])) in
        let e' = Syntax.parse_exn (Syntax.to_string e) in
        Alcotest.(check bool) "rt" true (Expr.equal e e'))
  ]

let round_trip_prop =
  to_alcotest
    (QCheck.Test.make ~count:500 ~name:"parse ∘ print = id (random expressions)"
       (expr_arb ~max_depth:4 ())
       (fun e ->
         let s = Syntax.to_string e in
         match Syntax.parse s with
         | Ok e' ->
           if Expr.equal e e' then true
           else QCheck.Test.fail_reportf "printed %S, re-read differently" s
         | Error m -> QCheck.Test.fail_reportf "printed %S, parse error: %s" s m))

(* User-defined operators (def ... = ... ;). *)
let defs =
  let t name f = Alcotest.test_case name `Quick f in
  let expands src expected =
    t (src ^ " ==> " ^ expected) (fun () ->
        Alcotest.(check string) "expansion" (Syntax.to_string !expected)
          (Syntax.to_string (Syntax.parse_exn src)))
  in
  [ expands "def twice(x) = x - x; twice(a)" "a - a";
    expands "def flash(x,y) = (x | y)*; flash(a, b - c)" "(a | b - c)*";
    expands "def zero = a - b; zero*" "(a - b)*";
    expands "def exam(p) = call(p) - perform(p); exam(k)" "call(k) - perform(k)";
    expands "def exam(p) = call(p) - perform(p); all q: exam(q)"
      "all q: call(q) - perform(q)";
    expands "def d1(x) = x | a; def d2(y) = d1(y) - b; d2(c)" "(c | a) - b";
    expands "def m(x) = x; m(some p: u(p))" "some p: u(p)";
    t "arity mismatch is rejected" (fun () ->
        match Syntax.parse "def f(x,y) = x - y; f(a)" with
        | Ok _ -> Alcotest.fail "expected error"
        | Error _ -> ());
    t "redefinition is rejected" (fun () ->
        match Syntax.parse "def f(x) = x; def f(y) = y; f(a)" with
        | Ok _ -> Alcotest.fail "expected error"
        | Error _ -> ());
    t "built-ins cannot be redefined" (fun () ->
        match Syntax.parse "def mutex(x) = x; mutex(a)" with
        | Ok _ -> Alcotest.fail "expected error"
        | Error _ -> ());
    t "duplicate formals are rejected" (fun () ->
        match Syntax.parse "def f(x,x) = x; f(a)" with
        | Ok _ -> Alcotest.fail "expected error"
        | Error _ -> ());
    t "complex operand in argument position is rejected" (fun () ->
        match Syntax.parse "def f(p) = call(p); f(a - b)" with
        | Ok _ -> Alcotest.fail "expected error"
        | Error _ -> ());
    t "def is still a valid action name inside expressions" (fun () ->
        match Syntax.parse_exn "a - def" with
        | Expr.Seq (_, Expr.Atom b) ->
          Alcotest.(check string) "name" "def" b.Action.name
        | _ -> Alcotest.fail "unexpected shape")
  ]

let () =
  Alcotest.run "syntax"
    [ ("parse", parse_cases); ("errors", error_cases); ("words", words);
      ("round-trip", round_trip_unit @ capture @ [ round_trip_prop ]);
      ("defs", defs)
    ]
