(* The domain pool and the sharded evaluator (lib/exec) against the
   sequential oracle: the plain Engine session on the undecomposed
   expression is the ground truth, Pengine is the thing under test. *)

open Interaction
open Interaction_exec
open Testutil

let t name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* One pool for the whole suite: spawning domains per test case would
   dominate the runtime.  Two lanes is enough to exercise cross-domain
   hand-off even on a single-core host. *)
let pool = Pool.create ~domains:2
let () = at_exit (fun () -> Pool.shutdown pool)

(* ------------------------------------------------------------------ *)
(* Pool                                                                *)
(* ------------------------------------------------------------------ *)

let pool_cases =
  [ t "an inline pool runs tasks on the caller" (fun () ->
        let p = Pool.create ~domains:1 in
        check_bool "inline" true (Pool.is_inline p);
        check_int "size" 1 (Pool.size p);
        let d = Domain.self () in
        check_bool "same domain" true
          (Pool.run p ~worker:0 (fun () -> Domain.self () = d));
        Pool.shutdown p);
    t "domains below one clamp to a single lane" (fun () ->
        let p = Pool.create ~domains:0 in
        check_int "size" 1 (Pool.size p);
        check_int "result" 7 (Pool.run p ~worker:5 (fun () -> 7));
        Pool.shutdown p);
    t "work runs on a worker domain, not the caller" (fun () ->
        let d = Domain.self () in
        check_bool "different domain" true
          (Pool.run pool ~worker:0 (fun () -> Domain.self () <> d)));
    t "map_workers preserves thunk order" (fun () ->
        let results = List.init 7 (fun i () -> i * i) |> Pool.map_workers pool in
        check_bool "ordered" true (results = List.init 7 (fun i -> i * i)));
    t "tasks on one lane run in submission order" (fun () ->
        let m = Mutex.create () in
        let log = Queue.create () in
        let ps =
          List.init 25 (fun i ->
              Pool.submit pool ~worker:0 (fun () ->
                  Mutex.lock m;
                  Queue.push i log;
                  Mutex.unlock m))
        in
        List.iter Pool.await ps;
        check_bool "fifo" true
          (List.of_seq (Queue.to_seq log) = List.init 25 Fun.id));
    t "await re-raises the task's exception; the lane survives" (fun () ->
        (match Pool.run pool ~worker:1 (fun () -> failwith "boom") with
        | () -> Alcotest.fail "expected the exception to propagate"
        | exception Failure m -> Alcotest.(check string) "message" "boom" m);
        check_int "lane alive" 3 (Pool.run pool ~worker:1 (fun () -> 3)));
    t "negative worker indices wrap around" (fun () ->
        check_int "ok" 42 (Pool.run pool ~worker:(-3) (fun () -> 42)));
    t "submitted and completed counters agree after await" (fun () ->
        let p = Pool.create ~domains:2 in
        ignore (Pool.run p ~worker:0 (fun () -> ()));
        ignore (Pool.run p ~worker:1 (fun () -> ()));
        check_int "submitted" 2 (Pool.submitted p);
        check_int "completed" 2 (Pool.completed p);
        Pool.shutdown p);
    t "shutdown is idempotent; later submits run inline" (fun () ->
        let p = Pool.create ~domains:2 in
        check_int "before" 1 (Pool.run p ~worker:1 (fun () -> 1));
        Pool.shutdown p;
        Pool.shutdown p;
        let d = Domain.self () in
        check_bool "inline after shutdown" true
          (Pool.run p ~worker:1 (fun () -> Domain.self () = d)))
  ]

(* ------------------------------------------------------------------ *)
(* Pengine                                                             *)
(* ------------------------------------------------------------------ *)

let pengine_cases =
  [ t "a disjoint coupling shards, one shard per component" (fun () ->
        let p = Pengine.create ~pool !"(a - b) @ (c - d)" in
        check_bool "sharded" true (Pengine.mode p = Pengine.Sharded 2);
        check_int "shards" 2 (Pengine.shard_count p));
    t "an inline pool falls back to the sequential engine" (fun () ->
        Pool.with_pool ~domains:1 (fun p1 ->
            let p = Pengine.create ~pool:p1 !"(a - b) @ (c - d)" in
            check_bool "sequential" true (Pengine.mode p = Pengine.Sequential);
            check_int "one shard" 1 (Pengine.shard_count p)));
    t "an overlapping coupling falls back to the sequential engine" (fun () ->
        let p = Pengine.create ~pool !"(a - b) @ (b - c)" in
        check_bool "sequential" true (Pengine.mode p = Pengine.Sequential));
    t "try_action routes to the owning shard and commits there" (fun () ->
        let p = Pengine.create ~pool !"(a - b) @ (c - d)" in
        check_bool "a accepted" true (Pengine.try_action p (a1 "a"));
        check_bool "b now permitted" true (Pengine.permitted p (a1 "b"));
        check_bool "a again rejected" false (Pengine.try_action p (a1 "a"));
        check_bool "c independent" true (Pengine.try_action p (a1 "c"));
        check_bool "unowned rejected" false (Pengine.try_action p (a1 "zz"));
        check_bool "unowned never permitted" false (Pengine.permitted p (a1 "zz")));
    t "feed returns the rejected actions in offer order" (fun () ->
        let p = Pengine.create ~pool !"(a - b) @ (c - d)" in
        check_bool "rejects" true (Pengine.feed p (w "a a c b d d") = w "a d");
        check_bool "final" true (Pengine.is_final p);
        check_int "trace length" 4 (Pengine.trace_len p));
    t "per-shard traces are the sequential trace's projections" (fun () ->
        let e = !"(a - b)* @ (c - d)" in
        let script = w "a c b a d b" in
        let p = Pengine.create ~pool e in
        let s = Engine.create e in
        ignore (Pengine.feed p script);
        ignore (Engine.feed s script);
        let tr = Engine.trace s in
        let projected =
          List.map (fun (_, al) -> List.filter (Alpha.mem al) tr)
            (Partition.components e)
        in
        check_bool "projections" true (Pengine.traces p = projected));
    t "the sharded word problem agrees with the engine" (fun () ->
        let e = !"(a - b) @ (c - d)" in
        List.iter
          (fun input ->
            Alcotest.check verdict input
              (Engine.word e (w input))
              (Pengine.word ~pool e (w input)))
          [ "a b c d"; "a c"; "b"; "a zz"; "" ]);
    t "reset restores every shard's initial state" (fun () ->
        let p = Pengine.create ~pool !"(a - b) @ (c - d)" in
        ignore (Pengine.feed p (w "a b c d"));
        check_bool "final before reset" true (Pengine.is_final p);
        Pengine.reset p;
        check_bool "not final" false (Pengine.is_final p);
        check_int "trace empty" 0 (Pengine.trace_len p);
        check_bool "a accepted again" true (Pengine.try_action p (a1 "a")))
  ]

(* ------------------------------------------------------------------ *)
(* The oracle property                                                 *)
(* ------------------------------------------------------------------ *)

(* Sharded evaluation must be indistinguishable from the sequential engine
   on the undecomposed expression: same rejects (in offer order), same
   finality, per-shard traces equal to the sequential trace's projections,
   and the same word-problem verdict.  The generator mixes decomposable
   couplings (1–4 disjoint components), components that split further or
   not at all, and occasional actions foreign to every shard. *)
let prop_parallel_eq_sequential =
  QCheck.Test.make ~count:1200 ~long_factor:2
    ~name:"sharded evaluation == sequential oracle"
    (coupling_word_arb ~max_components:4 ~max_len:10 ())
    (fun (e, word) ->
      let s = Engine.create e in
      let p = Pengine.create ~pool e in
      let seq_rejected = Engine.feed s word in
      let par_rejected = Pengine.feed p word in
      let traces_ok =
        match Pengine.mode p with
        | Pengine.Sequential -> Pengine.traces p = [ Engine.trace s ]
        | Pengine.Sharded _ ->
          let tr = Engine.trace s in
          Pengine.traces p
          = List.map (fun (_, al) -> List.filter (Alpha.mem al) tr)
              (Partition.components e)
      in
      seq_rejected = par_rejected
      && Pengine.is_final p = Engine.is_final s
      && traces_ok
      && Pengine.word ~pool e word = Engine.word e word)

let () =
  Alcotest.run "exec"
    [ ("pool", pool_cases);
      ("pengine", pengine_cases);
      ("oracle", [ to_alcotest prop_parallel_eq_sequential ])
    ]
