(* The flight recorder: bounded causal ring, trace grouping, JSONL dumps,
   envelope provenance on the message queues, the end-to-end causal chain
   of a denied medical work item — and the property that recording never
   changes behaviour (no observer effect, sequential and sharded). *)

open Interaction
open Interaction_exec
open Interaction_manager
open Wfms
open Testutil

let t name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let pool = Pool.create ~domains:2
let () = at_exit (fun () -> Pool.shutdown pool)

(* Run [f] with telemetry enabled and a fresh flight recorder installed as
   the only sink; returns [f]'s result and the recorder.  Leaves telemetry
   disabled and the sink list empty regardless of exceptions. *)
let recorded ?(capacity = 4096) f =
  let r = Recorder.create ~capacity () in
  Telemetry.reset ();
  Telemetry.clear_sinks ();
  (* the CI crash-dump recorder, when armed, shadows every observed run *)
  Option.iter Recorder.install (Recorder.global ());
  Recorder.install r;
  Telemetry.enable ();
  let x =
    Fun.protect
      ~finally:(fun () ->
        Telemetry.disable ();
        Telemetry.clear_sinks ();
        (* keep the CI crash-dump recorder armed across tests *)
        Option.iter Recorder.install (Recorder.global ()))
      f
  in
  (x, r)

let names r = List.map (fun (e : Telemetry.event) -> e.name) (Recorder.events r)

(* ------------------------------------------------------------------ *)
(* Ring behaviour                                                      *)
(* ------------------------------------------------------------------ *)

let ring =
  [ t "eviction is oldest-first with a dropped count" (fun () ->
        let (), r =
          recorded ~capacity:4 (fun () ->
              for i = 1 to 6 do
                Telemetry.event (Printf.sprintf "ev%d" i)
              done)
        in
        check_int "capacity" 4 (Recorder.capacity r);
        check_int "length" 4 (Recorder.length r);
        check_int "dropped" 2 (Recorder.dropped r);
        Alcotest.(check (list string))
          "retained tail" [ "ev3"; "ev4"; "ev5"; "ev6" ] (names r);
        Recorder.clear r;
        check_int "cleared" 0 (Recorder.length r);
        check_int "dropped reset" 0 (Recorder.dropped r))
    ; t "events_for groups per trace; trace_ids are distinct and sorted"
        (fun () ->
          let (t1, t2), r =
            recorded (fun () ->
                let t1 =
                  Telemetry.in_new_trace (fun () ->
                      Telemetry.event "x";
                      Telemetry.event "y";
                      Telemetry.current_trace ())
                in
                Telemetry.event "untraced";
                let t2 =
                  Telemetry.in_new_trace (fun () ->
                      Telemetry.event "z";
                      Telemetry.current_trace ())
                in
                (t1, t2))
          in
          check_bool "ids minted" true (t1 > 0 && t2 > t1);
          Alcotest.(check (list int)) "trace ids" [ t1; t2 ] (Recorder.trace_ids r);
          Alcotest.(check (list string))
            "chain of t1" [ "x"; "y" ]
            (List.map
               (fun (e : Telemetry.event) -> e.name)
               (Recorder.events_for r ~trace:t1));
          Alcotest.(check (list string))
            "chain of t2" [ "z" ]
            (List.map
               (fun (e : Telemetry.event) -> e.name)
               (Recorder.events_for r ~trace:t2)))
    ; t "edges link consecutive events of one trace, across interleavings"
        (fun () ->
          let (ta, tb), r =
            recorded (fun () ->
                let ta = Telemetry.new_trace () in
                let tb = Telemetry.new_trace () in
                Telemetry.with_trace ta (fun () -> Telemetry.event "a1");
                Telemetry.with_trace tb (fun () -> Telemetry.event "b1");
                Telemetry.with_trace ta (fun () -> Telemetry.event "a2");
                Telemetry.with_trace tb (fun () -> Telemetry.event "b2");
                Telemetry.with_trace ta (fun () -> Telemetry.event "a3");
                (ta, tb))
          in
          let seqs tr =
            List.map
              (fun (e : Telemetry.event) -> e.seq)
              (Recorder.events_for r ~trace:tr)
          in
          let expected tr =
            let rec pair = function
              | a :: (b :: _ as rest) -> (tr, a, b) :: pair rest
              | _ -> []
            in
            pair (seqs tr)
          in
          Alcotest.(check (list (triple int int int)))
            "parent edges"
            (List.sort compare (expected ta @ expected tb))
            (List.sort compare (Recorder.edges r)))
    ; t "dump_jsonl: one parseable line per event, trace ids round-trip"
        (fun () ->
          let (), r =
            recorded (fun () ->
                ignore
                  (Telemetry.in_new_trace (fun () ->
                       Telemetry.event "one"
                         ~fields:[ ("action", Telemetry.Str "a(1)") ];
                       Telemetry.event "two";
                       0)))
          in
          let back = Telemetry.Jsonl.events_of_string (Recorder.dump_jsonl r) in
          check_int "all lines parse back" (Recorder.length r) (List.length back);
          List.iter2
            (fun (a : Telemetry.event) (b : Telemetry.event) ->
              check_int "seq" a.seq b.seq;
              Alcotest.(check string) "name" a.name b.name;
              check_int "trace survives the round-trip" a.trace b.trace)
            (Recorder.events r) back)
    ; t "dump_to_file writes the ring and reports the count" (fun () ->
        let (), r =
          recorded (fun () ->
              Telemetry.event "e1";
              Telemetry.event "e2")
        in
        let file = Filename.temp_file "recorder" ".jsonl" in
        Fun.protect ~finally:(fun () -> Sys.remove file) @@ fun () ->
        check_int "written" 2 (Recorder.dump_to_file r file);
        let back =
          Telemetry.Jsonl.events_of_string
            (In_channel.with_open_text file In_channel.input_all)
        in
        check_int "file parses back" 2 (List.length back))
  ]

(* ------------------------------------------------------------------ *)
(* No observer effect: behaviour with the recorder off and with the    *)
(* recorder installed + telemetry on is bit-identical.                 *)
(* ------------------------------------------------------------------ *)

let engine_run (e, word) =
  let s = Engine.create e in
  let accepts = List.map (Engine.try_action s) word in
  (accepts, Engine.trace s, Engine.is_final s, Engine.is_alive s)

let manager_run (e, word) =
  let mgr = Manager.create e in
  List.map
    (fun a ->
      Manager.subscribe mgr ~client:"w" a;
      let ok = Manager.execute mgr ~client:"w" a in
      let notes =
        List.map
          (fun (n : Manager.notification) -> (n.Manager.action, n.Manager.now_permitted))
          (Manager.drain_notifications mgr ~client:"w")
      in
      (ok, notes))
    word

let sharded_run (e, word) =
  let sm = Sharded.create ~pool e in
  List.map (fun a -> Sharded.execute sm ~client:"w" a) word

let no_observer_engine =
  to_alcotest
    (QCheck.Test.make ~count:120
       ~name:"recorder off/on: identical engine verdicts and traces"
       (expr_word_arb ~max_depth:3 ~max_len:5 ())
       (fun case ->
         Telemetry.disable ();
         let dark = engine_run case in
         let lit, r = recorded (fun () -> engine_run case) in
         if dark <> lit then QCheck.Test.fail_report "engine behaviour changed";
         if snd case <> [] && Recorder.length r = 0 then
           QCheck.Test.fail_report "recorder captured nothing under telemetry";
         true))

let no_observer_manager =
  to_alcotest
    (QCheck.Test.make ~count:80
       ~name:"recorder off/on: identical manager replies and notifications"
       (expr_word_arb ~max_depth:3 ~max_len:5 ())
       (fun case ->
         Telemetry.disable ();
         let dark = manager_run case in
         let lit, _ = recorded (fun () -> manager_run case) in
         dark = lit))

let no_observer_sharded =
  to_alcotest
    (QCheck.Test.make ~count:30
       ~name:"recorder off/on: identical sharded replies (2 domains)"
       (coupling_word_arb ~max_components:3 ~max_len:8 ())
       (fun case ->
         Telemetry.disable ();
         let dark = sharded_run case in
         let lit, _ = recorded (fun () -> sharded_run case) in
         dark = lit))

(* ------------------------------------------------------------------ *)
(* Message-queue envelopes: provenance and at-least-once delivery      *)
(* ------------------------------------------------------------------ *)

let envelopes =
  [ t "a receiver crash redelivers with a bumped delivery count" (fun () ->
        let q = Mqueue.create ~name:"t" in
        Mqueue.send q "m1";
        Mqueue.send q "m2";
        (match Mqueue.receive_envelope q with
        | Some env ->
          Alcotest.(check string) "payload" "m1" (Mqueue.payload env);
          check_int "first delivery" 1 (Mqueue.deliveries env)
        | None -> Alcotest.fail "expected m1");
        (* the receiver dies before acking: m1 must come back, in front,
           visibly a duplicate *)
        Mqueue.crash_receiver q;
        (match Mqueue.receive_envelope q with
        | Some env ->
          Alcotest.(check string) "redelivered first" "m1" (Mqueue.payload env);
          check_int "delivery count bumped" 2 (Mqueue.deliveries env)
        | None -> Alcotest.fail "expected m1 again");
        check_int "per-queue delivery watermark" 2 (Mqueue.delivery_watermark q);
        check_int "redelivered count" 1 (Mqueue.redelivered_count q);
        (* m2 was never in flight: still a first delivery *)
        match Mqueue.receive_envelope q with
        | Some env -> check_int "m2 unaffected" 1 (Mqueue.deliveries env)
        | None -> Alcotest.fail "expected m2")
    ; t "envelopes capture the ambient trace id at send time" (fun () ->
        let (tid, etrace), _ =
          recorded (fun () ->
              let q = Mqueue.create ~name:"t2" in
              let tid =
                Telemetry.in_new_trace (fun () ->
                    Mqueue.send q "m";
                    Telemetry.current_trace ())
              in
              match Mqueue.receive_envelope q with
              | Some env -> (tid, Mqueue.trace env)
              | None -> Alcotest.fail "message lost")
        in
        check_bool "trace minted" true (tid > 0);
        check_int "origin trace travels in the envelope" tid etrace)
  ]

(* ------------------------------------------------------------------ *)
(* The causal chain of a denied medical work item (Fig. 1 / Fig. 7)    *)
(* ------------------------------------------------------------------ *)

let chain_names =
  [ "workitem.attempt"; "mqueue.enqueue"; "mqueue.dequeue"; "manager.ask";
    "manager.denied"; "workitem.denied"
  ]

let causal_chain =
  [ t "a denied work item's trace spans adapter -> queue -> manager" (fun () ->
        let outcome, r =
          recorded ~capacity:65536 (fun () ->
              Adapter.run
                { Adapter.default_config with max_steps = 400 }
                ~constraints:(Medical.combined_constraint ~capacity:1 ())
                ~cases:(Medical.ensemble ~patients:3))
        in
        check_bool "the tight capacity produced denials" true
          (outcome.Adapter.denials > 0);
        check_int "nothing evicted" 0 (Recorder.dropped r);
        let denied =
          List.filter
            (fun (e : Telemetry.event) -> e.name = "workitem.denied")
            (Recorder.events r)
        in
        check_bool "denied events recorded" true (denied <> []);
        List.iter
          (fun (e : Telemetry.event) ->
            check_bool "every denial is traced" true (e.trace > 0))
          denied;
        (* at least one denial's chain must show the full path across the
           layers, with a non-empty blame set on the work-item event *)
        let full_chain (e : Telemetry.event) =
          let chain = Recorder.events_for r ~trace:e.trace in
          List.for_all
            (fun n -> List.exists (fun (c : Telemetry.event) -> c.name = n) chain)
            chain_names
          &&
          match List.assoc_opt "blame_count" e.fields with
          | Some (Telemetry.Int n) -> n >= 1
          | _ -> false
        in
        check_bool "full cross-layer chain with blame" true
          (List.exists full_chain denied);
        (* the kernel-evaluation link appears in the recording, traced *)
        check_bool "engine.eval recorded in a trace" true
          (List.exists
             (fun (e : Telemetry.event) -> e.name = "engine.eval" && e.trace > 0)
             (Recorder.events r)))
    ; t "the medical denial's blame set is oracle-sound and 1-minimal"
        (fun () ->
          (* capacity 1: while p1's sono call-perform is in progress, p2's
             call for the same examination must be denied *)
          let mgr = Manager.create (Medical.capacity_constraint ~capacity:1 ()) in
          check_bool "p1 enters the slot" true
            (Manager.execute mgr ~client:"w" (a1 "call_s(p1,sono)"));
          (match Manager.ask mgr ~client:"w" (a1 "call_s(p2,sono)") with
          | Manager.Denied -> ()
          | Manager.Granted | Manager.Busy -> Alcotest.fail "expected Denied");
          let st =
            match Manager.current_state mgr with
            | Some s -> s
            | None -> Alcotest.fail "manager has no state"
          in
          let x =
            match Manager.explain_denial mgr (a1 "call_s(p2,sono)") with
            | Some x -> x
            | None -> Alcotest.fail "no explanation for a denied action"
          in
          check_bool "blame set non-empty" true (x.Explain.blames <> []);
          let paths = List.map (fun b -> b.Explain.bpath) x.Explain.blames in
          check_bool "relaxing every blamed node flips the verdict" true
            (Explain.accepts ~relaxed:paths st (a1 "call_s(p2,sono)"));
          List.iteri
            (fun i _ ->
              let dropped = List.filteri (fun j _ -> j <> i) paths in
              check_bool "no blamed node is redundant" false
                (Explain.accepts ~relaxed:dropped st (a1 "call_s(p2,sono)")))
            paths;
          check_bool "summary names the blame" true (Explain.summary x <> ""))
  ]

(* ------------------------------------------------------------------ *)
(* The complexity sentinel                                             *)
(* ------------------------------------------------------------------ *)

let sentinel =
  [ t "harmless envelope: a breach warns, the rate limit holds" (fun () ->
        let w = Sentinel.create ~slack:8 ~warn_every:4 !"a - b" in
        check_bool "statically harmless" true (Sentinel.verdict w = Classify.Harmless);
        Sentinel.sample w ~size:3;
        check_int "within envelope" 0 (Sentinel.warnings w);
        Sentinel.sample w ~size:1000;
        check_int "breach warns" 1 (Sentinel.warnings w);
        Sentinel.sample w ~size:1000;
        check_int "rate-limited" 1 (Sentinel.warnings w);
        Sentinel.sample w ~size:1000;
        Sentinel.sample w ~size:1000;
        Sentinel.sample w ~size:1000;
        check_int "warns again once the window passes" 2 (Sentinel.warnings w);
        check_int "max size tracked" 1000 (Sentinel.max_size w))
    ; t "a malignant verdict warns only on confirmed blowup, naming the offender"
        (fun () ->
          (* the non-uniform quantifier (atom b omits p) is §6-malignant *)
          let w = Sentinel.create !"all p: (a(p) - b - c(p))" in
          check_bool "statically malignant" true
            (Sentinel.verdict w = Classify.Potentially_malignant);
          Sentinel.sample w ~size:4000;
          check_int "below the blowup floor: no cry-wolf" 0 (Sentinel.warnings w);
          Sentinel.sample w ~size:5000;
          check_int "confirmed blowup warns" 1 (Sentinel.warnings w);
          check_bool "the offending quantifier is named" true
            (Sentinel.offender_summary w <> "no static offender identified"))
    ; t "sentinel warnings are traced telemetry events" (fun () ->
        let (), r =
          recorded (fun () ->
              Telemetry.in_new_trace (fun () ->
                  let w = Sentinel.create ~slack:1 ~warn_every:1 !"a" in
                  Sentinel.sample w ~size:100))
        in
        match
          List.filter
            (fun (e : Telemetry.event) -> e.name = "sentinel.warning")
            (Recorder.events r)
        with
        | [ ev ] ->
          check_bool "carries the ambient trace" true (ev.trace > 0);
          check_bool "names the verdict" true (List.mem_assoc "verdict" ev.fields);
          check_bool "reports the envelope" true (List.mem_assoc "envelope" ev.fields)
        | _ -> Alcotest.fail "expected exactly one warning event")
  ]

let () =
  Alcotest.run "recorder"
    [ ("ring", ring);
      ("no-observer-effect",
       [ no_observer_engine; no_observer_manager; no_observer_sharded ]);
      ("envelopes", envelopes); ("causal-chain", causal_chain);
      ("sentinel", sentinel)
    ]
