(* The bytecode VM must be observably identical to the lazy automaton and
   the interpreted τ̂ — on random expressions and words, across mid-word
   engine switches, and on the uniform-reject fast path — and its
   serialized artifacts must reject every corruption (truncation at any
   byte, bit flips, bad magic/version, trailing bytes) with a clear
   [Error], never a crash or a silently wrong program. *)

open Interaction
open Testutil

let t name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let with_compilation b f =
  let was = State.compilation () in
  State.set_compilation b;
  Fun.protect ~finally:(fun () -> State.set_compilation was) f

let with_backend pref f =
  let was = Engine.backend () in
  Engine.set_backend pref;
  Fun.protect ~finally:(fun () -> Engine.set_backend was) f

(* Interpreted oracle: fold τ̂ from σ(e), bypassing every compiled path. *)
let oracle_verdict e word =
  with_compilation false (fun () ->
      match State.trans_word (State.init e) word with
      | None -> Engine.Illegal
      | Some s -> if State.final s then Engine.Complete else Engine.Partial)

(* ------------------------------------------------------------------ *)
(* Differential oracle: vm ≡ table ≡ interp                            *)
(* ------------------------------------------------------------------ *)

(* Engine.word under every backend preference agrees with the interpreted
   fold.  Auto selection compiles the harmless cases; the explicit table
   and interp preferences pin the other two backends. *)
let backend_oracle =
  QCheck.Test.make ~count:700 ~name:"word: auto(vm) ≡ table ≡ interp"
    (expr_word_arb ~max_depth:3 ~max_len:5 ())
    (fun (e, word) ->
      let interp = oracle_verdict e word in
      with_compilation true (fun () ->
          List.iter
            (fun pref ->
              let v = with_backend pref (fun () -> Engine.word e word) in
              if v <> interp then
                QCheck.Test.fail_reportf "backend %s: %a, interpreted %a"
                  (match pref with
                  | None -> "auto"
                  | Some b -> Engine.backend_name b)
                  Semantics.pp_verdict v Semantics.pp_verdict interp)
            [ None; Some Engine.Table; Some Engine.Interp ]);
      true)

(* A forced vm compiles even benign expressions (row cap permitting) and
   must still agree; shallower expressions keep the BFS spaces small. *)
let forced_vm_oracle =
  QCheck.Test.make ~count:300 ~name:"word: forced vm ≡ interp"
    (expr_word_arb ~max_depth:2 ~max_len:5 ())
    (fun (e, word) ->
      let interp = oracle_verdict e word in
      let vm =
        with_compilation true (fun () ->
            with_backend (Some Engine.Vm) (fun () -> Engine.word e word))
      in
      if vm <> interp then
        QCheck.Test.fail_reportf "forced vm %a, interpreted %a"
          Semantics.pp_verdict vm Semantics.pp_verdict interp
      else true)

(* The action problem with the engine switched every step
   (interp → table → vm → auto → …) must accept and reject exactly like a
   session pinned to the interpreter: every backend computes the same τ̂,
   so switching mid-word is invisible. *)
let switch_oracle =
  QCheck.Test.make ~count:300
    ~name:"session: per-step engine switches ≡ pinned interp"
    (expr_word_arb ~max_depth:3 ~max_len:6 ())
    (fun (e, word) ->
      let prefs =
        [| Some Engine.Interp; Some Engine.Table; Some Engine.Vm; None |]
      in
      with_compilation true (fun () ->
          let pinned = with_backend (Some Engine.Interp) (fun () -> Engine.create e) in
          let switched = Engine.create e in
          List.iteri
            (fun i a ->
              let ok_pinned =
                with_backend (Some Engine.Interp) (fun () ->
                    Engine.try_action pinned a)
              in
              let ok_switched =
                with_backend prefs.(i mod Array.length prefs) (fun () ->
                    Engine.try_action switched a)
              in
              if ok_pinned <> ok_switched then
                QCheck.Test.fail_reportf
                  "action %d: pinned interp %b, switched engine %b" i ok_pinned
                  ok_switched)
            word;
          if Engine.is_final pinned <> Engine.is_final switched then
            QCheck.Test.fail_reportf "finality diverged after switches");
      true)

(* The uniform-reject fast path: an action matching no ground column is
   rejected by the VM at every position, exactly like the oracle. *)
let uniform_reject_oracle =
  QCheck.Test.make ~count:200 ~name:"vm uniform reject ≡ interp"
    (expr_word_arb ~max_depth:2 ~max_len:3 ())
    (fun (e, word) ->
      let word = word @ [ a1 "zz" ] in
      let interp = oracle_verdict e word in
      let vm =
        with_compilation true (fun () ->
            with_backend (Some Engine.Vm) (fun () -> Engine.word e word))
      in
      if vm <> interp then
        QCheck.Test.fail_reportf "with foreign action: vm %a, interpreted %a"
          Semantics.pp_verdict vm Semantics.pp_verdict interp
      else true)

(* ------------------------------------------------------------------ *)
(* Program units                                                       *)
(* ------------------------------------------------------------------ *)

let compiled e =
  match Bytecode.compile e with
  | Some t -> t
  | None -> Alcotest.failf "expected %s to compile" (Syntax.to_string e)

let vm_verdict t word =
  match Bytecode.Vm.word t word with
  | None -> Engine.Illegal
  | Some fin -> if fin then Engine.Complete else Engine.Partial

let units =
  [ t "harmless expression compiles; benign alphabet closes on demand"
      (fun () ->
        let i = Bytecode.info (compiled !"(a - b)* | c") in
        check_bool "has states" true i.Bytecode.has_states;
        check_bool "some rows" true (i.Bytecode.states > 0);
        check_int "columns are the ground alphabet" 3 i.Bytecode.columns)
  ; t "non-ground alphabet does not compile" (fun () ->
        check_bool "quantifier binder" true
          (Bytecode.compile !"all p: a(p) - b(p)" = None))
  ; t "row cap returns None, not a partial program" (fun () ->
        check_bool "cap 1" true (Bytecode.compile ~max_states:1 !"a - b - c" = None))
  ; t "vm word agrees on the universe walk" (fun () ->
        let e = !"(a - b)* | c" in
        let tc = compiled e in
        List.iter
          (fun w' ->
            Alcotest.check verdict
              (String.concat " " (List.map Action.concrete_to_string w'))
              (oracle_verdict e w') (vm_verdict tc w'))
          [ []; w "a"; w "a b"; w "a b a"; w "c"; w "c a"; w "a c"; w "b" ])
  ; t "uniform reject leaves the walk intact" (fun () ->
        let tc = compiled !"(a - b)*" in
        check_bool "foreign action illegal" true
          (Bytecode.Vm.word tc (w "a zz b") = None);
        let r = Bytecode.Vm.step_row tc Bytecode.Vm.start_row (a1 "zz") in
        check_int "step_row rejects" (-1) r;
        check_int "dead walk stays dead" (-1)
          (Bytecode.Vm.step_row tc (-1) (a1 "a")))
  ; t "step hands out hash-consed states" (fun () ->
        with_compilation true (fun () ->
            let e = !"(a - b)*" in
            let tc = compiled e in
            match Bytecode.Vm.step tc (State.init e) (a1 "a") with
            | None -> Alcotest.fail "a must be accepted"
            | Some st ->
              check_bool "physically the interpreted successor" true
                (match State.trans (State.init e) (a1 "a") with
                | Some st' -> st == st'
                | None -> false)))
  ; t "step respects the kill switch" (fun () ->
        let e = !"(a - b)*" in
        let tc = compiled e in
        with_compilation false (fun () ->
            let before = (Bytecode.stats ()).Bytecode.steps in
            ignore (Bytecode.Vm.step tc (State.init e) (a1 "a"));
            check_int "no vm steps counted" before
              (Bytecode.stats ()).Bytecode.steps))
  ; t "auto declines benign; forced vm attempts, then degrades" (fun () ->
        with_compilation true (fun () ->
            Bytecode.reset_shared ();
            (* a# is benign (degree 1) with a ground alphabet, but each
               accepted action spawns a fresh parallel branch, so its BFS
               never closes: auto must decline without a BFS, a forced vm
               must attempt one, fail, and degrade to the automaton *)
            let e = !"a#" in
            let f0 = (Bytecode.stats ()).Bytecode.failures in
            check_bool "auto declines" true (Bytecode.shared e = None);
            check_int "auto decline is not a BFS failure" f0
              (Bytecode.stats ()).Bytecode.failures;
            check_bool "forced attempt fails" true (Bytecode.shared_forced e = None);
            check_bool "the attempt ran a BFS" true
              ((Bytecode.stats ()).Bytecode.failures > f0);
            with_backend (Some Engine.Vm) (fun () ->
                check_bool "forced vm degrades to table" true
                  (Engine.resolve e = Engine.Table))))
  ; t "resolve reports the session backend" (fun () ->
        with_compilation true (fun () ->
            check_bool "harmless resolves to vm" true
              (Engine.resolve !"(a - b)*" = Engine.Vm);
            check_bool "quantified resolves to table" true
              (Engine.resolve !"all p: a(p) - b(p)" = Engine.Table);
            with_compilation false (fun () ->
                check_bool "kill switch forces interp" true
                  (Engine.resolve !"(a - b)*" = Engine.Interp))))
  ]

(* ------------------------------------------------------------------ *)
(* Artifact integrity                                                  *)
(* ------------------------------------------------------------------ *)

let artifact () = Bytecode.program (compiled !"(a - b)* | c")

let is_error = function Error _ -> true | Ok _ -> false

let integrity =
  [ t "payload round-trips through encode/decode" (fun () ->
        let p = artifact () in
        match Bytecode.decode (Bytecode.encode p) with
        | Error m -> Alcotest.failf "round-trip failed: %s" m
        | Ok p' ->
          check_bool "expression preserved" true
            (Expr.equal (Bytecode.expr p) (Bytecode.expr p'));
          let tc = Bytecode.of_program p' in
          List.iter
            (fun w' ->
              Alcotest.check verdict "behavior preserved"
                (oracle_verdict !"(a - b)* | c" w') (vm_verdict tc w'))
            [ []; w "a"; w "a b"; w "c"; w "b" ])
  ; t "file round-trips through write/read" (fun () ->
        let p = artifact () in
        let path = Filename.temp_file "iexbytc" ".ixp" in
        Fun.protect
          ~finally:(fun () -> Sys.remove path)
          (fun () ->
            Interaction_store.Progfile.write path p;
            match Interaction_store.Progfile.read path with
            | Error m -> Alcotest.failf "read back failed: %s" m
            | Ok p' ->
              check_bool "expression preserved" true
                (Expr.equal (Bytecode.expr p) (Bytecode.expr p'))))
  ; t "truncation at every byte boundary is an Error" (fun () ->
        let s = Interaction_store.Progfile.to_string (artifact ()) in
        for i = 0 to String.length s - 1 do
          match Interaction_store.Progfile.of_string (String.sub s 0 i) with
          | Error _ -> ()
          | Ok _ -> Alcotest.failf "truncation to %d bytes decoded" i
        done)
  ; t "every single-bit flip is an Error" (fun () ->
        let s = Interaction_store.Progfile.to_string (artifact ()) in
        for i = 0 to String.length s - 1 do
          let b = Bytes.of_string s in
          Bytes.set b i (Char.chr (Char.code s.[i] lxor (1 lsl (i mod 8))));
          match Interaction_store.Progfile.of_string (Bytes.to_string b) with
          | Error _ -> ()
          | Ok _ -> Alcotest.failf "bit flip at byte %d decoded" i
        done)
  ; t "trailing bytes are an Error" (fun () ->
        let s = Interaction_store.Progfile.to_string (artifact ()) in
        check_bool "trailing garbage rejected" true
          (is_error (Interaction_store.Progfile.of_string (s ^ "x"))))
  ; t "bad magic and future version are Errors" (fun () ->
        let s = Interaction_store.Progfile.to_string (artifact ()) in
        let bad_magic = Bytes.of_string s in
        Bytes.set bad_magic 0 'X';
        check_bool "bad magic" true
          (is_error
             (Interaction_store.Progfile.of_string (Bytes.to_string bad_magic)));
        let future = Bytes.of_string s in
        Bytes.set future (String.length Interaction_store.Progfile.magic) '\xff';
        check_bool "future version" true
          (is_error
             (Interaction_store.Progfile.of_string (Bytes.to_string future))))
  ; t "missing file reads as an Error" (fun () ->
        check_bool "no exception" true
          (is_error
             (Interaction_store.Progfile.read "/nonexistent/prog.ixp")))
  ; t "decode validates structure, not just framing" (fun () ->
        check_bool "garbage sexp" true (is_error (Bytecode.decode "(not a program)"));
        check_bool "empty payload" true (is_error (Bytecode.decode "")))
  ]

let () =
  Alcotest.run "bytecode"
    [ ("oracle",
       List.map to_alcotest
         [ backend_oracle; forced_vm_oracle; switch_oracle;
           uniform_reject_oracle ]);
      ("units", units);
      ("integrity", integrity)
    ]
