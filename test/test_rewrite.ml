open Interaction
open Testutil

let t name f = Alcotest.test_case name `Quick f

let simplifies input expected =
  t (input ^ "  ==>  " ^ expected) (fun () ->
      let got = Rewrite.simplify !input in
      Alcotest.(check string) "simplified" (Syntax.to_string !expected)
        (Syntax.to_string got))

let unit_rules =
  [ simplifies "a | a" "a";
    simplifies "a & a" "a";
    simplifies "a @ a" "a";
    simplifies "(a | b) | a" "a | b";
    simplifies "b | a" "a | b" (* canonical operand order *);
    simplifies "a | eps" "[a]";
    simplifies "eps - a - eps" "a";
    simplifies "eps || a" "a";
    simplifies "eps @ a" "a";
    simplifies "[[a]]" "[a]";
    simplifies "[a*]" "a*";
    simplifies "[a#]" "a#";
    simplifies "(a*)*" "a*";
    simplifies "([a])*" "a*";
    simplifies "(a#)#" "a#";
    simplifies "([a])#" "a#";
    simplifies "eps*" "eps";
    simplifies "[eps]" "eps";
    simplifies "some p: a - b" "a - b" (* unused parameter *);
    simplifies "sync p: a" "a";
    simplifies "conj p: a" "a";
    simplifies "all p: [a]" "a#" (* unused parameter, ⟨⟩ ∈ Φ *);
    simplifies "all p: a(p)" "all p: a(p)" (* used parameter: unchanged *);
    simplifies "some p: a(p)" "some p: a(p)";
    (* shadowed inner binder makes the outer parameter unused *)
    simplifies "some p: some p: a(p)" "some p: a(p)";
    (* nesting: flattening lets idempotence fire across levels *)
    simplifies "(a & b) & (b & a)" "a & b";
    simplifies "((a | b) | c) | (b | (a | c))" "a | b | c"
  ]

let structural =
  [ t "all-quantifier dead end is left alone" (fun () ->
        (* Φ(all p: a) = ∅ since ⟨⟩ ∉ Φ(a); collapsing to a# would be wrong *)
        let e = Expr.all_q "p" !"a" in
        Alcotest.(check bool) "unchanged" true (Expr.equal (Rewrite.simplify e) e));
    t "size_reduction reports both sizes" (fun () ->
        let before, after = Rewrite.size_reduction !"(a | a) - (b | b)" in
        Alcotest.(check bool) "reduced" true (after < before));
    t "simplify is idempotent" (fun () ->
        let e = !"((a | b) | a)* @ (eps || c)" in
        let s1 = Rewrite.simplify e in
        Alcotest.(check bool) "fixpoint" true (Expr.equal s1 (Rewrite.simplify s1)));
    t "rules_doc is nonempty" (fun () ->
        Alcotest.(check bool) "rules" true (List.length Rewrite.rules_doc > 5))
  ]

(* The heavyweight guarantee: simplification preserves the word sets, checked
   against both the oracle and the state model. *)
let preservation =
  QCheck.Test.make ~count:300 ~name:"simplify preserves verdicts"
    (expr_word_arb ~max_depth:3 ~max_len:4 ())
    (fun (e, w) ->
      let e' = Rewrite.simplify e in
      let v_orig = Engine.word e w and v_simp = Engine.word e' w in
      let v_sem = Semantics.word e' w in
      if v_orig <> v_simp then
        QCheck.Test.fail_reportf "state model: %a became %a after simplifying to %s"
          Semantics.pp_verdict v_orig Semantics.pp_verdict v_simp (Syntax.to_string e')
      else if v_sem <> v_orig then
        QCheck.Test.fail_reportf "oracle disagrees on simplified expression %s"
          (Syntax.to_string e')
      else true)

let never_grows =
  QCheck.Test.make ~count:300 ~name:"simplify never grows the expression"
    (expr_arb ~max_depth:4 ())
    (fun e -> Expr.size (Rewrite.simplify e) <= Expr.size e)

let () =
  Alcotest.run "rewrite"
    [ ("rules", unit_rules); ("structural", structural);
      ("properties", List.map to_alcotest [ preservation; never_grows ])
    ]
