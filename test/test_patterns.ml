open Interaction
open Sync_patterns
open Testutil

let t name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)

let feed_all e actions =
  let s = Engine.create e in
  List.for_all (fun a -> Engine.try_action s (a1 a)) actions

let semaphore_cases =
  [ t "at most n unmatched acquires" (fun () ->
        let e = Patterns.semaphore 2 in
        let s = Engine.create e in
        check_bool "1st" true (Engine.try_action s (a1 "acquire"));
        check_bool "2nd" true (Engine.try_action s (a1 "acquire"));
        check_bool "3rd blocked" false (Engine.try_action s (a1 "acquire"));
        check_bool "release" true (Engine.try_action s (a1 "release"));
        check_bool "3rd now ok" true (Engine.try_action s (a1 "acquire")));
    t "release before acquire is illegal" (fun () ->
        check_bool "no" false (feed_all (Patterns.semaphore 2) [ "release" ]));
    t "critical section is a binary semaphore" (fun () ->
        let e = Patterns.critical_section () in
        check_bool "strict" true (feed_all e [ "enter"; "leave"; "enter"; "leave" ]);
        check_bool "overlap" false (feed_all e [ "enter"; "enter" ]));
    t "capacity must be positive" (fun () ->
        match Patterns.semaphore 0 with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected rejection")
  ]

let rw_cases =
  [ t "readers overlap freely" (fun () ->
        check_bool "two readers" true
          (feed_all (Patterns.readers_writers ())
             [ "read_s(r1)"; "read_s(r2)"; "read_t(r2)"; "read_t(r1)" ]));
    t "writer excludes readers" (fun () ->
        let e = Patterns.readers_writers () in
        let s = Engine.create e in
        check_bool "writer in" true (Engine.try_action s (a1 "write_s(w1)"));
        check_bool "reader blocked" false (Engine.permitted s (a1 "read_s(r1)"));
        check_bool "second writer blocked" false (Engine.permitted s (a1 "write_s(w2)"));
        check_bool "writer out" true (Engine.try_action s (a1 "write_t(w1)"));
        check_bool "reader again" true (Engine.permitted s (a1 "read_s(r1)")));
    t "readers block a writer until all leave" (fun () ->
        let e = Patterns.readers_writers () in
        let s = Engine.create e in
        check_bool "r1" true (Engine.try_action s (a1 "read_s(r1)"));
        check_bool "r2" true (Engine.try_action s (a1 "read_s(r2)"));
        check_bool "writer blocked" false (Engine.permitted s (a1 "write_s(w)"));
        check_bool "r1 out" true (Engine.try_action s (a1 "read_t(r1)"));
        check_bool "still blocked" false (Engine.permitted s (a1 "write_s(w)"));
        check_bool "r2 out" true (Engine.try_action s (a1 "read_t(r2)"));
        check_bool "writer now" true (Engine.permitted s (a1 "write_s(w)")))
  ]

let buffer_cases =
  [ t "consume only after produce, once" (fun () ->
        let e = Patterns.producers_consumers ~capacity:2 in
        check_bool "ok" true (feed_all e [ "produce(x)"; "consume(x)" ]);
        check_bool "unknown item" false (feed_all e [ "consume(x)" ]);
        check_bool "double consume" false
          (feed_all e [ "produce(x)"; "consume(x)"; "consume(x)" ]));
    t "capacity bounds outstanding items" (fun () ->
        let e = Patterns.producers_consumers ~capacity:2 in
        let s = Engine.create e in
        check_bool "p1" true (Engine.try_action s (a1 "produce(a)"));
        check_bool "p2" true (Engine.try_action s (a1 "produce(b)"));
        check_bool "p3 blocked" false (Engine.permitted s (a1 "produce(c)"));
        check_bool "c1" true (Engine.try_action s (a1 "consume(a)"));
        check_bool "p3 now" true (Engine.try_action s (a1 "produce(c)")));
    t "items can be consumed out of production order (bag)" (fun () ->
        check_bool "ok" true
          (feed_all (Patterns.producers_consumers ~capacity:2)
             [ "produce(a)"; "produce(b)"; "consume(b)"; "consume(a)" ]))
  ]

let barrier_cases =
  [ t "no leave before everyone arrives" (fun () ->
        let e = Patterns.barrier ~parties:3 in
        let s = Engine.create e in
        check_bool "a1" true (Engine.try_action s (a1 "arrive(1)"));
        check_bool "a3" true (Engine.try_action s (a1 "arrive(3)"));
        check_bool "leave blocked" false (Engine.permitted s (a1 "leave(1)"));
        check_bool "a2" true (Engine.try_action s (a1 "arrive(2)"));
        check_bool "leave ok" true (Engine.try_action s (a1 "leave(1)"));
        check_bool "re-arrive blocked until all left" false
          (Engine.permitted s (a1 "arrive(1)")));
    t "rounds repeat" (fun () ->
        check_bool "two rounds" true
          (feed_all (Patterns.barrier ~parties:2)
             [ "arrive(1)"; "arrive(2)"; "leave(2)"; "leave(1)"; "arrive(2)";
               "arrive(1)"; "leave(1)"; "leave(2)" ]))
  ]

let alternation_cases =
  [ t "ping pong" (fun () ->
        let e = Patterns.alternation "ping" "pong" in
        check_bool "ok" true (feed_all e [ "ping"; "pong"; "ping"; "pong" ]);
        check_bool "double ping" false (feed_all e [ "ping"; "ping" ]))
  ]

let philosopher_cases =
  [ t "a philosopher can dine alone if forks free" (fun () ->
        let e = Patterns.philosophers 2 in
        check_bool "full cycle" true
          (feed_all e
             [ "take(0,0)"; "take(0,1)"; "eat(0)"; "put(0,0)"; "put(0,1)" ]));
    t "forks are exclusive" (fun () ->
        let e = Patterns.philosophers 2 in
        let s = Engine.create e in
        check_bool "phil 0 takes fork 0" true (Engine.try_action s (a1 "take(0,0)"));
        check_bool "phil 1 cannot take fork 0" false (Engine.permitted s (a1 "take(1,0)")));
    t "protocol order is enforced" (fun () ->
        let e = Patterns.philosophers 2 in
        check_bool "eat before forks" false (feed_all e [ "eat(0)" ]);
        check_bool "second fork first" false (feed_all e [ "take(0,1)"; "eat(0)" ]));
    t "the symmetric table deadlocks (dead end)" (fun () ->
        Alcotest.(check (option bool)) "dead end" (Some true)
          (Language.has_dead_end ~max_states:5000 (Patterns.philosophers 2)));
    t "one lefty breaks the deadlock" (fun () ->
        Alcotest.(check (option bool)) "no dead end" (Some false)
          (Language.has_dead_end ~max_states:5000
             (Patterns.philosophers ~lefty_first:true 2)));
    t "the deadlocked history is partial but cannot complete" (fun () ->
        let e = Patterns.philosophers 2 in
        let s = Engine.create e in
        check_bool "phil0 first fork" true (Engine.try_action s (a1 "take(0,0)"));
        check_bool "phil1 first fork" true (Engine.try_action s (a1 "take(1,1)"));
        (* now nobody can move *)
        List.iter
          (fun a -> check_bool ("blocked " ^ a) false (Engine.permitted s (a1 a)))
          [ "take(0,1)"; "take(1,0)"; "eat(0)"; "eat(1)"; "put(0,0)"; "put(1,1)" ];
        check_bool "not final" false (Engine.is_final s))
  ]

let philosopher_slow =
  [ Alcotest.test_case "three philosophers: deadlock iff symmetric" `Slow (fun () ->
        Alcotest.(check (option bool)) "symmetric" (Some true)
          (Language.has_dead_end ~max_states:200_000 (Patterns.philosophers 3));
        Alcotest.(check (option bool)) "lefty" (Some false)
          (Language.has_dead_end ~max_states:200_000
             (Patterns.philosophers ~lefty_first:true 3)))
  ]

let classification_cases =
  [ t "patterns classify as benign or harmless" (fun () ->
        let check_not_malignant name e =
          match Classify.benignity e with
          | Classify.Harmless | Classify.Benign _ -> ()
          | Classify.Potentially_malignant ->
            Alcotest.failf "%s classified potentially malignant" name
        in
        check_not_malignant "readers_writers" (Patterns.readers_writers ());
        check_not_malignant "producers_consumers" (Patterns.producers_consumers ~capacity:3);
        check_not_malignant "fork" (Patterns.fork_constraint 0);
        (* semaphore/barrier are parameterless *)
        Alcotest.(check bool) "semaphore harmless" true
          (Classify.benignity (Patterns.semaphore 3) = Classify.Harmless);
        Alcotest.(check bool) "barrier harmless" true
          (Classify.benignity (Patterns.barrier ~parties:4) = Classify.Harmless))
  ]

(* Further classics. *)
let more_patterns =
  let t name f = Alcotest.test_case name `Quick f in
  [ t "token ring: strict round-robin" (fun () ->
        let e = Patterns.token_ring ~stations:3 in
        check_bool "full round" true
          (feed_all e [ "recv(1)"; "work(1)"; "send(1)"; "recv(2)"; "send(2)";
                        "recv(3)"; "work(3)"; "send(3)"; "recv(1)" ]);
        check_bool "out of order" false (feed_all e [ "recv(2)" ]);
        check_bool "work without token" false
          (feed_all e [ "recv(1)"; "send(1)"; "work(1)" ]));
    t "resource pool: independent mutexes" (fun () ->
        let e = Patterns.resource_pool ~resources:[ "db"; "cache" ] in
        let s = Engine.create e in
        check_bool "grab db" true (Engine.try_action s (a1 "grab(alice,db)"));
        check_bool "db busy" false (Engine.permitted s (a1 "grab(bob,db)"));
        check_bool "cache free" true (Engine.try_action s (a1 "grab(bob,cache)"));
        check_bool "drop db" true (Engine.try_action s (a1 "drop(alice,db)"));
        check_bool "db free again" true (Engine.permitted s (a1 "grab(bob,db)")));
    t "resource pool partitions across managers" (fun () ->
        let e = Patterns.resource_pool ~resources:[ "db"; "cache"; "disk" ] in
        Alcotest.(check int) "three managers" 3
          (List.length (Interaction_manager.Federation.partition e)));
    t "pipeline: stage order per item" (fun () ->
        let e = Patterns.pipeline ~stages:2 ~capacity:2 in
        check_bool "happy path" true
          (feed_all e [ "enter(x)"; "stage(x,1)"; "stage(x,2)"; "exit(x)" ]);
        check_bool "skip stage" false (feed_all e [ "enter(x)"; "stage(x,2)" ]);
        check_bool "exit early" false (feed_all e [ "enter(x)"; "exit(x)" ]));
    t "pipeline: stages are exclusive, capacity bounds entry" (fun () ->
        let e = Patterns.pipeline ~stages:2 ~capacity:2 in
        let s = Engine.create e in
        check_bool "x in" true (Engine.try_action s (a1 "enter(x)"));
        check_bool "y in" true (Engine.try_action s (a1 "enter(y)"));
        check_bool "z blocked" false (Engine.permitted s (a1 "enter(z)"));
        check_bool "x stage1" true (Engine.try_action s (a1 "stage(x,1)"));
        (* y cannot use stage 1: x has not moved past it... it has: stage
           occupation is per-action, the mutex iterates — y may now enter *)
        check_bool "y stage1" true (Engine.permitted s (a1 "stage(y,1)"));
        check_bool "x stage2" true (Engine.try_action s (a1 "stage(x,2)"));
        check_bool "x out" true (Engine.try_action s (a1 "exit(x)"));
        check_bool "z now" true (Engine.permitted s (a1 "enter(z)")));
    t "writers priority: a batch of writers runs back to back" (fun () ->
        let e = Patterns.writers_priority () in
        check_bool "batch" true
          (feed_all e
             [ "write_s(w1)"; "write_t(w1)"; "write_s(w2)"; "write_t(w2)";
               "read_s(r)"; "read_t(r)" ]);
        let s = Engine.create e in
        check_bool "w1" true (Engine.try_action s (a1 "write_s(w1)"));
        check_bool "readers blocked" false (Engine.permitted s (a1 "read_s(r)"));
        check_bool "w1 done" true (Engine.try_action s (a1 "write_t(w1)"));
        (* both continuing the batch and closing it are possible *)
        check_bool "next writer ok" true (Engine.permitted s (a1 "write_s(w2)"));
        check_bool "readers ok again" true (Engine.permitted s (a1 "read_s(r)")));
    t "argument validation" (fun () ->
        List.iter
          (fun f -> match f () with
            | exception Invalid_argument _ -> ()
            | _ -> Alcotest.fail "expected rejection")
          [ (fun () -> Patterns.token_ring ~stations:1);
            (fun () -> Patterns.resource_pool ~resources:[]);
            (fun () -> Patterns.pipeline ~stages:0 ~capacity:1) ])
  ]

let () =
  Alcotest.run "patterns"
    [ ("semaphore", semaphore_cases); ("readers-writers", rw_cases);
      ("bounded-buffer", buffer_cases); ("barrier", barrier_cases);
      ("alternation", alternation_cases); ("philosophers", philosopher_cases);
      ("philosophers-slow", philosopher_slow);
      ("classification", classification_cases); ("more", more_patterns)
    ]
