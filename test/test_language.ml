open Interaction
open Testutil

let t name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)

let opt_bool = Alcotest.(option bool)

let alphabet_cases =
  [ t "concrete alphabet of a parameterless expression" (fun () ->
        Alcotest.(check int) "three actions" 3
          (List.length (Language.concrete_alphabet !"a - (b | c(1))")));
    t "parameter positions are instantiated over the value set" (fun () ->
        let al = Language.concrete_alphabet ~values:[ "1"; "2" ] !"some p: a(p)" in
        Alcotest.(check int) "two instantiations" 2 (List.length al));
    t "default values add fresh representatives" (fun () ->
        let al = Language.concrete_alphabet !"some p: a(p, 7)" in
        (* values: 7 plus two fresh = 3 instantiations *)
        Alcotest.(check int) "three" 3 (List.length al))
  ]

let explore_cases =
  [ t "explore counts states of a finite automaton" (fun () ->
        let r = Language.explore !"a - b" in
        check_bool "not truncated" false r.Language.truncated;
        Alcotest.(check int) "no dead states" 0 r.Language.dead_states;
        Alcotest.(check int) "one final" 1 r.Language.final_states;
        Alcotest.(check int) "three states" 3 r.Language.states);
    t "truncation is reported on unbounded spaces" (fun () ->
        let r = Language.explore ~max_states:20 !"(a - b)#" in
        check_bool "truncated" true r.Language.truncated);
    t "pp_exploration prints" (fun () ->
        let r = Language.explore !"a" in
        check_bool "nonempty" true
          (String.length (Format.asprintf "%a" Language.pp_exploration r) > 0))
  ]

let dead_end_cases =
  [ t "healthy expressions have no dead end" (fun () ->
        Alcotest.check opt_bool "seq" (Some false) (Language.has_dead_end !"a - b");
        Alcotest.check opt_bool "iter" (Some false) (Language.has_dead_end !"(a | b - c)*"));
    t "the paper's misused conjunction is a dead end" (fun () ->
        (* (a - b) & (b - a): only ⟨⟩ is partial, nothing completes *)
        Alcotest.check opt_bool "conj" (Some true) (Language.has_dead_end !"(a - b) & (b - a)"));
    t "dead end reachable after progress" (fun () ->
        (* after a, the conjunction can never complete *)
        Alcotest.check opt_bool "late dead end" (Some true)
          (Language.has_dead_end !"a - ((b - c) & (c - b))"));
    t "dead end detection respects quantifier instances" (fun () ->
        Alcotest.check opt_bool "all-quantifier dead end" (Some true)
          (Language.has_dead_end !"all p: a(p)"));
    t "unknown on truncation" (fun () ->
        Alcotest.check opt_bool "unknown" None
          (Language.has_dead_end ~max_states:5 !"(a - b)#"))
  ]

let equiv_cases =
  [ t "identical expressions are equivalent" (fun () ->
        Alcotest.check opt_bool "id" (Some true) (Language.equivalent !"a - b" !"a - b"));
    t "commutativity of disjunction" (fun () ->
        Alcotest.check opt_bool "comm" (Some true) (Language.equivalent !"a | b" !"b | a"));
    t "option vs epsilon-disjunction" (fun () ->
        Alcotest.check opt_bool "opt" (Some true) (Language.equivalent !"[a]" !"a | eps"));
    t "iteration unrolling" (fun () ->
        Alcotest.check opt_bool "unroll" (Some true)
          (Language.equivalent !"a*" !"[a - a*]"));
    t "sequence is not commutative" (fun () ->
        Alcotest.check opt_bool "noncomm" (Some false)
          (Language.equivalent !"a - b" !"b - a"));
    t "separating word is found and shortest" (fun () ->
        match Language.separating_word !"a - b" !"b - a" with
        | Some [ c ] ->
          check_bool "one action" true
            (List.mem (Action.concrete_to_string c) [ "a"; "b" ])
        | other ->
          Alcotest.failf "expected a one-action word, got %s"
            (match other with
            | None -> "none"
            | Some w -> String.concat " " (List.map Action.concrete_to_string w)));
    t "final-vs-partial differences are detected" (fun () ->
        Alcotest.check opt_bool "final" (Some false)
          (Language.equivalent !"a" !"[a]"));
    t "simplification results are equivalent (spot check)" (fun () ->
        let e = !"((a | b) | a)* @ (eps || c)" in
        Alcotest.check opt_bool "simplify" (Some true)
          (Language.equivalent e (Rewrite.simplify e)))
  ]

let equiv_prop =
  QCheck.Test.make ~count:40 ~name:"simplify output is state-space equivalent"
    (expr_arb ~max_depth:2 ())
    (fun e ->
      match Language.equivalent ~max_states:150 ~max_state_size:300 e (Rewrite.simplify e) with
      | Some true | None -> true
      | Some false ->
        QCheck.Test.fail_reportf "simplify changed the language of %s"
          (Syntax.to_string e))

let witness_cases =
  let t name f = Alcotest.test_case name `Quick f in
  [ t "shortest complete word is found and shortest" (fun () ->
        match Language.shortest_complete !"a - (b | c - d)" with
        | Some w -> Alcotest.(check int) "length 2 via b" 2 (List.length w)
        | None -> Alcotest.fail "expected a witness");
    t "empty word witnesses optional expressions" (fun () ->
        Alcotest.(check bool) "empty" true
          (Language.shortest_complete !"[a - b]" = Some []));
    t "dead ends yield no witness" (fun () ->
        Alcotest.(check bool) "none" true
          (Language.shortest_complete !"(a - b) & (b - a)" = None));
    t "witness verdict is complete" (fun () ->
        let e = !"some x: (u(x) - v(x))" in
        match Language.shortest_complete e with
        | Some w -> Alcotest.check Testutil.verdict "complete" Semantics.Complete (Engine.word e w)
        | None -> Alcotest.fail "expected a witness")
  ]

let census_cases =
  let t name f = Alcotest.test_case name `Quick f in
  [ t "census counts operators" (fun () ->
        Alcotest.(check (list (pair string int)))
          "counts"
          [ ("atom", 3); ("iter", 1); ("or", 1); ("seq", 1); ("some-q", 1) ]
          (Expr.census !"some x: (a(x) - b(x) | c)*"))
  ]

let report_cases =
  let t name f = Alcotest.test_case name `Quick f in
  [ t "action_report ranks contended actions" (fun () ->
        let m = Interaction_manager.Manager.create !"mutex(a - b, c)" in
        ignore (Interaction_manager.Manager.execute m ~client:"x" (a1 "a"));
        ignore (Interaction_manager.Manager.execute m ~client:"x" (a1 "c")) (* denied *);
        ignore (Interaction_manager.Manager.execute m ~client:"x" (a1 "c")) (* denied *);
        ignore (Interaction_manager.Manager.execute m ~client:"x" (a1 "b"));
        match Interaction_manager.Manager.action_report m with
        | (top, g, d) :: _ ->
          Alcotest.(check string) "most contended" "c" (Action.concrete_to_string top);
          Alcotest.(check int) "grants" 0 g;
          Alcotest.(check int) "denials" 2 d
        | [] -> Alcotest.fail "expected a report")
  ]

let () =
  Alcotest.run "language"
    [ ("alphabet", alphabet_cases); ("explore", explore_cases);
      ("dead-ends", dead_end_cases); ("equivalence", equiv_cases);
      ("properties", [ to_alcotest equiv_prop ]); ("witness", witness_cases);
      ("census", census_cases); ("action-report", report_cases)
    ]
