open Interaction
open Interaction_manager
open Wfms
open Testutil

let t name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let partition_cases =
  [ t "disjoint coupling operands split" (fun () ->
        check_int "two" 2 (List.length (Federation.partition !"(a - b) @ (c - d)")));
    t "overlapping operands merge" (fun () ->
        check_int "one" 1 (List.length (Federation.partition !"(a - b) @ (b - c)")));
    t "transitive overlap merges across groups" (fun () ->
        (* a~b, c~d disjoint; then b~c bridges them *)
        check_int "one" 1
          (List.length (Federation.partition !"(a - b) @ (c - d) @ (b - c)")));
    t "mixed: one bridge, one island" (fun () ->
        check_int "two" 2
          (List.length (Federation.partition !"(a - b) @ (b - c) @ (x - y)")));
    t "non-coupling expression is one component" (fun () ->
        check_int "one" 1 (List.length (Federation.partition !"(a | b) & c")));
    t "value-distinguished patterns are disjoint" (fun () ->
        let e =
          Expr.sync
            (Medical.department_constraint ~exam:"sono" ~capacity:2)
            (Medical.department_constraint ~exam:"endo" ~capacity:2)
        in
        check_int "two departments" 2 (List.length (Federation.partition e)));
    t "bound-parameter patterns interfere with matching values" (fun () ->
        check_int "one" 1
          (List.length (Federation.partition !"(some p: a(p)) @ a(1)")));
    t "partition preserves the language (spot check)" (fun () ->
        let e = !"(a - b) @ (c - d)" in
        let recoupled = Expr.sync_list (Federation.partition e) in
        Alcotest.(check (option bool)) "equivalent" (Some true)
          (Language.equivalent e recoupled))
  ]

let execution_cases =
  [ t "federation enforces every member" (fun () ->
        let f = Federation.create !"(a - b) @ (c - d)" in
        check_int "two managers" 2 (Federation.size f);
        check_bool "a ok" true (Federation.execute f ~client:"c1" (a1 "a"));
        check_bool "a again denied" false (Federation.execute f ~client:"c1" (a1 "a"));
        check_bool "c independent" true (Federation.execute f ~client:"c2" (a1 "c")));
    t "routing: only relevant managers are asked" (fun () ->
        let f = Federation.create !"(a - b) @ (c - d)" in
        ignore (Federation.execute f ~client:"c1" (a1 "a"));
        let loads = Federation.loads f in
        let asks = List.map fst loads in
        check_bool "load split" true
          (List.sort compare asks = [ 0; 1 ]
          || List.sort compare asks = [ 1; 0 ] || asks = [ 0; 1 ]));
    t "foreign actions bypass all members" (fun () ->
        let f = Federation.create !"(a - b) @ (c - d)" in
        check_bool "foreign" true (Federation.execute f ~client:"c" (a1 "zzz"));
        check_int "no transitions" 0 (Federation.total_transitions f));
    t "two-phase: a shared action needs all owners to agree" (fun () ->
        (* both components mention b *)
        let f = Federation.of_components [ !"a - b"; !"b - c" ] in
        check_int "two" 2 (Federation.size f);
        check_bool "b denied (left wants a first)" false
          (Federation.execute f ~client:"c1" (a1 "b"));
        (* the failed two-phase must not leave a stuck grant behind *)
        check_bool "a still executable" true (Federation.execute f ~client:"c1" (a1 "a"));
        check_bool "b now ok" true (Federation.execute f ~client:"c1" (a1 "b")));
    t "federation equals a single manager on the coupled expression" (fun () ->
        let e = !"(a - b)* @ (c - d)*" in
        let f = Federation.create e in
        let m = Manager.create e in
        let script = w "a c b d a b c d c" in
        List.iter
          (fun action ->
            let vf = Federation.execute f ~client:"x" action in
            let vm = Manager.execute m ~client:"x" action in
            check_bool (Action.concrete_to_string action) vm vf)
          script);
    t "crash and recovery across the federation" (fun () ->
        let f = Federation.create !"(a - b) @ (c - d)" in
        check_bool "a" true (Federation.execute f ~client:"c" (a1 "a"));
        Federation.crash_all f;
        Federation.recover_all f;
        check_bool "b next" true (Federation.execute f ~client:"c" (a1 "b"));
        check_bool "a replayed, so denied" false (Federation.execute f ~client:"c" (a1 "a")))
  ]

let medical_cases =
  [ t "per-department managers share the load" (fun () ->
        let e =
          Expr.sync
            (Medical.department_constraint ~exam:"sono" ~capacity:3)
            (Medical.department_constraint ~exam:"endo" ~capacity:3)
        in
        let f = Federation.create e in
        check_int "two managers" 2 (Federation.size f);
        for i = 1 to 4 do
          let p = Medical.patient i in
          let x = if i mod 2 = 0 then "sono" else "endo" in
          check_bool "call" true
            (Federation.execute f ~client:p (Action.conc "call_s" [ p; x ]))
        done;
        let asks = List.map fst (Federation.loads f) in
        check_bool "balanced" true (List.for_all (fun a -> a = 2) asks))
  ]

let optimistic_cases =
  [ t "optimistic protocol completes with compensations under contention" (fun () ->
        let e = !"mutex(go(1) - done(1), go(2) - done(2))" in
        let scripts =
          [ ("c1", w "go(1) done(1)"); ("c2", w "go(2) done(2)") ]
        in
        let r = Protocol.simulate ~think_rounds:4 Protocol.Optimistic e ~scripts in
        check_bool "completed" true r.Protocol.completed;
        check_bool "compensations occurred" true (r.Protocol.compensations > 0));
    t "optimistic is cheapest without contention" (fun () ->
        let e = !"(go(1) - done(1)) || (go(2) - done(2))" in
        let scripts = [ ("c1", w "go(1) done(1)"); ("c2", w "go(2) done(2)") ] in
        let o = Protocol.simulate Protocol.Optimistic e ~scripts in
        let p = Protocol.simulate Protocol.Polling e ~scripts in
        check_bool "both done" true (o.Protocol.completed && p.Protocol.completed);
        check_int "no compensations" 0 o.Protocol.compensations;
        check_bool
          (Printf.sprintf "fewer messages (%d < %d)" o.Protocol.messages p.Protocol.messages)
          true
          (o.Protocol.messages < p.Protocol.messages))
  ]

(* Property: on any workload drawn from the coupled expression's alphabet,
   the federation and a single manager agree action by action. *)
let federation_equiv =
  QCheck.Test.make ~count:120 ~name:"federation ≡ single manager (random couplings)"
    QCheck.(
      pair
        (pair (Testutil.expr_arb ~max_depth:2 ()) (Testutil.expr_arb ~max_depth:2 ()))
        (small_list small_nat))
    (fun ((e1, e2), picks) ->
      let e = Expr.Sync (e1, e2) in
      let universe = Testutil.universe_of e in
      if universe = [] then true
      else begin
        let fed = Federation.create e in
        let single = Manager.create e in
        List.for_all
          (fun k ->
            let c = List.nth universe (k mod List.length universe) in
            Federation.execute fed ~client:"x" c = Manager.execute single ~client:"x" c)
          picks
      end)

(* Partition components recoupled are equivalent to the original. *)
let partition_preserves =
  QCheck.Test.make ~count:80 ~name:"partition preserves the language"
    (QCheck.pair (Testutil.expr_arb ~max_depth:2 ()) (Testutil.expr_arb ~max_depth:2 ()))
    (fun (e1, e2) ->
      let e = Expr.Sync (e1, e2) in
      let recoupled = Expr.sync_list (Federation.partition e) in
      match Language.equivalent ~max_states:300 ~max_state_size:300 e recoupled with
      | Some true | None -> true
      | Some false ->
        QCheck.Test.fail_reportf "partition changed the language of %s"
          (Syntax.to_string e))

let () =
  Alcotest.run "federation"
    [ ("partition", partition_cases); ("execution", execution_cases);
      ("medical", medical_cases); ("optimistic", optimistic_cases);
      ("properties",
       List.map Testutil.to_alcotest [ federation_equiv; partition_preserves ])
    ]
