(* Hand-computed word-set membership per Table 8 category, checked against
   BOTH the denotational oracle and the operational state model (check_both),
   so every case doubles as a point-check of their agreement. *)

open Interaction
open Testutil

let t name f = Alcotest.test_case name `Quick f
let c = Semantics.Complete
let p = Semantics.Partial
let i = Semantics.Illegal

let case name e specs =
  t name (fun () -> List.iter (fun (input, expected) -> check_both !e input expected) specs)

let basics =
  [ case "atomic expression" "a"
      [ ("", p); ("a", c); ("a a", i); ("b", i) ];
    case "atom with arguments" "a(1,2)"
      [ ("a(1,2)", c); ("a(1)", i); ("a(2,1)", i) ];
    case "free parameter accepts nothing" "a(?p)"
      [ ("", p); ("a(1)", i) ];
    case "option" "[a]"
      [ ("", c); ("a", c); ("a a", i); ("b", i) ];
    case "sequential composition" "a - b"
      [ ("", p); ("a", p); ("a b", c); ("b", i); ("a b b", i) ];
    case "nested sequence" "a - b - c"
      [ ("a b", p); ("a b c", c); ("a c", i) ];
    case "sequence with optional head" "[a] - b"
      [ ("b", c); ("a b", c); ("a", p); ("b a", i) ]
  ]

let iteration =
  [ case "sequential iteration" "(a - b)*"
      [ ("", c); ("a", p); ("a b", c); ("a b a", p); ("a b a b", c); ("a a", i);
        ("b", i) ];
    case "iteration of an option" "[a]*"
      [ ("", c); ("a", c); ("a a", c) ];
    case "parallel iteration allows overlapping instances" "(a - b)#"
      [ ("", c); ("a a", p); ("a a b b", c); ("a b a b", c); ("b", i);
        ("a a a b b b", c); ("a b b", i) ];
    case "sequential iteration forbids overlap" "(a - b)*"
      [ ("a a b b", i) ]
  ]

let parallel =
  [ case "parallel composition shuffles" "(a - b) || (c - d)"
      [ ("a c b d", c); ("c a d b", c); ("a b c d", c); ("b a c d", i); ("a c d b", c) ];
    case "parallel composition of equal operands" "a || a"
      [ ("a", p); ("a a", c); ("a a a", i) ]
  ]

(* Section 3 exhibits an expression whose language Φ(x) = {aⁿbⁿcⁿ} is not
   context-free: the parallel iteration of (a − b − c) in conjunction with
   a sequential ordering constraint, rendered here as
   "(a - b - c)# & (iter a - iter b - iter c)". *)
let anbncn =
  let e = !"(a - b - c)# & (a* - b* - c*)" in
  [ t "Φ(x) = {aⁿbⁿcⁿ}" (fun () ->
        check_both e "" Semantics.Complete;
        check_both e "a b c" Semantics.Complete;
        check_both e "a a b b c c" Semantics.Complete;
        check_both e "a a b c" Semantics.Partial (* can still complete b c *);
        check_both e "a b c a" Semantics.Illegal;
        check_both e "b" Semantics.Illegal);
    t "language enumeration matches" (fun () ->
        let universe = [ a1 "a"; a1 "b"; a1 "c" ] in
        let lang = Semantics.language ~max_len:6 ~universe e in
        let strs =
          List.map (fun w -> String.concat "" (List.map Action.concrete_to_string w)) lang
        in
        Alcotest.(check (list string)) "words" [ ""; "abc"; "aabbcc" ] strs)
  ]

let boolean =
  [ case "disjunction" "(a - b) | (a - c)"
      [ ("a", p); ("a b", c); ("a c", c); ("a b c", i) ];
    case "conjunction is strict" "(a - b) & (a - c)"
      [ ("a", p); ("a b", i); ("a c", i); ("", p) ];
    case "conjunction with common words" "(a | b) & (a | c)"
      [ ("a", c); ("b", i); ("c", i) ];
    case "synchronization relieves foreign actions" "(a - b) @ (c - b)"
      [ ("a c b", c); ("c a b", c); ("a b", i) (* b needs c first in right *);
        ("a c b b", i) ];
    case "synchronization: common actions synchronize" "(a - b) @ (b - c)"
      [ ("a b c", c); ("b", i); ("a b", p) ];
    case "coupling does not constrain unmentioned actions" "a @ b"
      [ ("a b", c); ("b a", c); ("a", p); ("a a", i) ]
  ]

let quantifiers =
  [ case "disjunction quantifier picks one value" "some x: a(x) - b(x)"
      [ ("a(1) b(1)", c); ("a(2) b(2)", c); ("a(1) b(2)", i); ("a(1)", p) ];
    case "disjunction quantifier with shared action" "some x: a - b(x)"
      [ ("a b(7)", c); ("a", p); ("b(7)", i) ];
    case "parallel quantifier runs all values" "all x: [a(x) - b(x)]"
      [ ("", c); ("a(1) a(2) b(2) b(1)", c); ("a(1) b(1) a(2) b(2)", c);
        ("a(1) a(1)", i) (* one instance per value *); ("b(1)", i) ];
    case "parallel quantifier without empty body word is a dead end"
      "all x: a(x) - b(x)"
      [ ("", p); ("a(1)", p); ("a(1) b(1)", p) (* never complete: Φ = ∅ *) ];
    case "synchronization quantifier: per-value mutual exclusion"
      "sync x: mutex(u(x), e(x))"
      [ ("u(1) e(1)", c); ("u(1) u(2)", c); ("u(1) e(2) e(1) u(2)", c) ];
    case "conjunction quantifier: every instance must accept the whole word"
      "conj x: [a(x)]"
      [ ("", c); ("a(1)", i) (* instance 2 rejects a(1) *) ];
    case "conjunction quantifier over shared alphabet" "conj x: (b | a(x))"
      [ ("b", c); ("a(1)", i) ]
  ]

let nested =
  [ case "nested quantifiers" "some p: some x: a(p,x)"
      [ ("a(1,2)", c); ("a(1,2) a(1,2)", i) ];
    case "parallel quantifier of disjunction quantifier"
      "all p: [some x: a(p,x) - b(p,x)]"
      [ ("a(1,9) a(2,8) b(2,8) b(1,9)", c); ("a(1,9) b(1,8)", i) ];
    case "quantifier under iteration materializes repeatedly"
      "(some x: a(x) - b(x))*"
      [ ("a(1) b(1) a(2) b(2)", c); ("a(1) a(2)", i) (* sequential! *);
        ("a(1) b(1) a(1) b(1)", c) ];
    case "parallel quantifier allows interleaving across values, not within"
      "all x: [(a(x) - b(x))*]"
      [ ("a(1) a(2) b(1) b(2)", c); ("a(1) a(1)", i) ]
  ]

let dead_ends =
  [ case "misused coupling creates a dead end" "(a - b) & (b - a)"
      [ ("", p); ("a", i); ("b", i) ];
    t "dead end has partial but no complete words" (fun () ->
        let e = !"(a - b) & (b - a)" in
        Alcotest.(check bool) "partial" true (Semantics.partial e []);
        let universe = [ a1 "a"; a1 "b" ] in
        Alcotest.(check int) "no complete words" 0
          (List.length (Semantics.language ~max_len:4 ~universe e)))
  ]

let fresh =
  [ t "fresh_value avoids word and expression values" (fun () ->
        let e = !"a(1)" in
        let word = w "b(2) c(3)" in
        let v = Semantics.fresh_value e word in
        Alcotest.(check bool) "fresh" true
          (not (List.mem v (Expr.values e)) && not (List.mem v [ "2"; "3" ])))
  ]

let () =
  Alcotest.run "semantics"
    [ ("basics", basics); ("iteration", iteration); ("parallel", parallel);
      ("anbncn", anbncn); ("boolean", boolean); ("quantifiers", quantifiers);
      ("nested", nested); ("dead-ends", dead_ends); ("fresh", fresh)
    ]
