open Interaction
open Testutil

let t name f = Alcotest.test_case name `Quick f

let structure =
  [ t "free_params reports unbound parameters" (fun () ->
        let e = !"some p: a(p, ?x) - b(?y)" in
        Alcotest.(check (list string)) "free" [ "x"; "y" ] (Expr.free_params e));
    t "quantifier binds its parameter" (fun () ->
        let e = !"some p: a(p)" in
        Alcotest.(check (list string)) "free" [] (Expr.free_params e));
    t "shadowing: inner binder hides outer" (fun () ->
        let e = Expr.some_q "p" (Expr.some_q "p" (!"a(?p)")) in
        Alcotest.(check (list string)) "free" [] (Expr.free_params e));
    t "atoms deduplicates" (fun () ->
        let e = !"a - b - a" in
        Alcotest.(check int) "atoms" 2 (List.length (Expr.atoms e)));
    t "values collects concrete args" (fun () ->
        let e = !"a(1) - b(2,1)" in
        Alcotest.(check (list string)) "values" [ "1"; "2" ] (Expr.values e));
    t "size counts nodes" (fun () ->
        Alcotest.(check int) "size" 6 (Expr.size !"a - (b | c)*"))
  ]

let substitution =
  [ t "subst replaces free occurrences" (fun () ->
        let e = Expr.subst "p" "5" !"a(?p) - b(?p, ?q)" in
        Alcotest.(check (list string)) "free" [ "q" ] (Expr.free_params e);
        Alcotest.(check (list string)) "values" [ "5" ] (Expr.values e));
    t "subst stops at shadowing binder" (fun () ->
        let e = Expr.Seq (!"a(?p)", !"some p: b(p)") in
        let e' = Expr.subst "p" "5" e in
        match e' with
        | Expr.Seq (Expr.Atom a, (Expr.SomeQ (_, Expr.Atom b) as q)) ->
          Alcotest.(check bool) "left substituted" true (Action.is_concrete a);
          Alcotest.(check bool) "right untouched" false (Action.is_concrete b);
          Alcotest.(check (list string)) "still closed" [] (Expr.free_params q)
        | _ -> Alcotest.fail "unexpected shape");
    t "subst is idempotent once parameter is gone" (fun () ->
        let e = Expr.subst "p" "5" !"a(?p)" in
        Alcotest.(check bool) "idempotent" true (Expr.equal e (Expr.subst "p" "6" e)))
  ]

let derived =
  [ t "times expands to parallel copies" (fun () ->
        match Expr.times 3 !"a" with
        | Expr.Par (Expr.Par (Expr.Atom _, Expr.Atom _), Expr.Atom _) -> ()
        | _ -> Alcotest.fail "expected nested parallel");
    t "times 1 is the expression itself" (fun () ->
        Alcotest.(check bool) "id" true (Expr.equal (Expr.times 1 !"a") !"a"));
    t "times 0 accepts only the empty word" (fun () ->
        let e = Expr.times 0 !"a" in
        check_both e "" Semantics.Complete;
        check_both e "a" Semantics.Illegal);
    t "times rejects negative multiplicity" (fun () ->
        Alcotest.check_raises "neg" (Invalid_argument "Expr.times: negative multiplicity")
          (fun () -> ignore (Expr.times (-1) !"a")));
    t "mutex allows one branch at a time, repeatedly" (fun () ->
        let e = Expr.mutex [ !"a - b"; !"c - d" ] in
        check_both e "a b c d" Semantics.Complete;
        check_both e "a c" Semantics.Illegal;
        check_both e "a b a b" Semantics.Complete);
    t "epsilon accepts exactly the empty word" (fun () ->
        check_both Expr.epsilon "" Semantics.Complete;
        check_both Expr.epsilon "a" Semantics.Illegal);
    t "activity expands to start/terminate pair" (fun () ->
        let e = Expr.activity "call" [ Action.value "4711" ] in
        check_both e "call_s(4711) call_t(4711)" Semantics.Complete;
        check_both e "call_t(4711)" Semantics.Illegal);
    t "start/term action helpers match activity" (fun () ->
        let e = Expr.activity "call" [ Action.value "1" ] in
        let s = Engine.create e in
        Alcotest.(check bool) "start" true
          (Engine.try_action s (Expr.start_action "call" [ "1" ]));
        Alcotest.(check bool) "term" true
          (Engine.try_action s (Expr.term_action "call" [ "1" ]));
        Alcotest.(check bool) "final" true (Engine.is_final s));
    t "seq_list and alt_list nest" (fun () ->
        let e = Expr.seq_list [ !"a"; !"b"; !"c" ] in
        check_both e "a b c" Semantics.Complete;
        let f = Expr.alt_list [ !"a"; !"b"; !"c" ] in
        check_both f "b" Semantics.Complete;
        check_both f "a b" Semantics.Illegal);
    t "empty operand lists are rejected" (fun () ->
        Alcotest.check_raises "empty" (Invalid_argument "Expr.seq_list: empty operand list")
          (fun () -> ignore (Expr.seq_list [])))
  ]

let () =
  Alcotest.run "expr"
    [ ("structure", structure); ("substitution", substitution); ("derived", derived) ]
