(* The central correctness property of the reproduction: the operational
   state model (Section 4/5) agrees with the formal semantics (Table 8) on
   every word — w ∈ Ψ(x) ⇔ σw(x) valid and w ∈ Φ(x) ⇔ φ(σw(x)).  The paper
   proves this by structural induction; we validate it empirically on
   randomly generated expressions and words. *)

open Interaction
open Testutil

let sem_verdict = Semantics.word
let op_verdict = Engine.word

let agree_on (e, w) =
  let s = sem_verdict e w and o = op_verdict e w in
  if s <> o then
    QCheck.Test.fail_reportf "semantics says %a, state model says %a"
      Semantics.pp_verdict s Semantics.pp_verdict o
  else true

let equivalence =
  QCheck.Test.make ~count:400 ~name:"state model ≡ formal semantics (verdicts)"
    (expr_word_arb ~max_depth:3 ~max_len:4 ())
    agree_on

(* Deeper expressions, shorter words (keeps the exponential oracle feasible). *)
let equivalence_deep =
  QCheck.Test.make ~count:120 ~name:"state model ≡ formal semantics (deeper exprs)"
    (expr_word_arb ~max_depth:4 ~max_len:3 ())
    agree_on

(* Validity along every prefix: the state survives exactly the partial
   prefixes (also checks that Ψ is prefix-closed in the oracle). *)
let prefixes =
  QCheck.Test.make ~count:200 ~name:"per-prefix validity ≡ Ψ membership"
    (expr_word_arb ~max_depth:3 ~max_len:4 ())
    (fun (e, w) ->
      let session = Engine.create e in
      let rec go processed = function
        | [] -> true
        | c :: rest ->
          let accepted = Engine.try_action session c in
          let expected = Semantics.partial e (List.rev (c :: processed)) in
          if accepted <> expected then
            QCheck.Test.fail_reportf "prefix %s: accepted=%b but Ψ-membership=%b"
              (String.concat " "
                 (List.map Action.concrete_to_string (List.rev (c :: processed))))
              accepted expected
          else if accepted then go (c :: processed) rest
          else go processed rest
      in
      go [] w)

(* Φ ⊆ Ψ in both models. *)
let complete_implies_partial =
  QCheck.Test.make ~count:200 ~name:"complete words are partial words"
    (expr_word_arb ~max_depth:3 ~max_len:4 ())
    (fun (e, w) ->
      (not (Semantics.complete e w)) || Semantics.partial e w)

(* The empty word is a partial word of every expression and the initial
   state is always valid. *)
let empty_word =
  QCheck.Test.make ~count:200 ~name:"⟨⟩ ∈ Ψ(x) for every x" (expr_arb ())
    (fun e ->
      Semantics.partial e [] && Engine.word e [] <> Semantics.Illegal)

(* Algebraic laws of Section 3, checked extensionally on sampled words. *)
let law name mk_lhs mk_rhs =
  QCheck.Test.make ~count:150 ~name
    (QCheck.pair (expr_word_arb ~max_depth:2 ~max_len:4 ()) (expr_arb ~max_depth:2 ()))
    (fun (((e, w), f)) ->
      let lhs = mk_lhs e f and rhs = mk_rhs e f in
      (* Words drawn from e's universe only, but that suffices to distinguish
         most non-laws; extend w with f's universe actions for coverage. *)
      let verdict_eq w = op_verdict lhs w = op_verdict rhs w in
      verdict_eq w)

let laws =
  [ law "disjunction commutes" (fun e f -> Expr.Or (e, f)) (fun e f -> Expr.Or (f, e));
    law "conjunction commutes" (fun e f -> Expr.And (e, f)) (fun e f -> Expr.And (f, e));
    law "parallel composition commutes" (fun e f -> Expr.Par (e, f)) (fun e f ->
        Expr.Par (f, e));
    law "synchronization commutes" (fun e f -> Expr.Sync (e, f)) (fun e f ->
        Expr.Sync (f, e));
    law "disjunction idempotent" (fun e _ -> Expr.Or (e, e)) (fun e _ -> e);
    law "conjunction idempotent" (fun e _ -> Expr.And (e, e)) (fun e _ -> e);
    law "synchronization idempotent" (fun e _ -> Expr.Sync (e, e)) (fun e _ -> e);
    law "option absorbs option" (fun e _ -> Expr.Opt (Expr.Opt e)) (fun e _ -> Expr.Opt e);
    law "iteration absorbs iteration"
      (fun e _ -> Expr.SeqIter (Expr.SeqIter e))
      (fun e _ -> Expr.SeqIter e);
    law "epsilon is a unit of sequence"
      (fun e _ -> Expr.Seq (Expr.epsilon, e))
      (fun e _ -> e);
    law "epsilon is a unit of parallel"
      (fun e _ -> Expr.Par (e, Expr.epsilon))
      (fun e _ -> e)
  ]

(* Laws involving quantifiers and distribution, checked on sampled words
   drawn from the LHS's universe. *)
let law2 name mk_lhs mk_rhs =
  QCheck.Test.make ~count:120 ~name
    (QCheck.pair (expr_arb ~max_depth:2 ()) (expr_arb ~max_depth:2 ()))
    (fun (e, f) ->
      let lhs = mk_lhs e f and rhs = mk_rhs e f in
      let universe = universe_of lhs @ universe_of rhs in
      if universe = [] then true
      else begin
        (* deterministic small word sample *)
        let words =
          List.concat_map
            (fun len ->
              List.init 3 (fun k ->
                  List.init len (fun i ->
                      List.nth universe ((k + (i * 7) + len) mod List.length universe))))
            [ 0; 1; 2; 3; 4 ]
        in
        List.for_all (fun w -> op_verdict lhs w = op_verdict rhs w) words
      end)

(* Longer guaranteed-partial traces from random walks, checked against the
   oracle — exercises the accept paths the uniform random words rarely hit. *)
let walk_oracle =
  QCheck.Test.make ~count:120 ~name:"random walks agree with the oracle"
    (QCheck.pair (expr_arb ~max_depth:2 ()) QCheck.small_nat)
    (fun (e, seed) ->
      let trace = Simulate.random_trace ~seed ~length:5 e in
      let o = op_verdict e trace and s = sem_verdict e trace in
      if o <> s then
        QCheck.Test.fail_reportf "on walk %s: state model %a vs oracle %a"
          (String.concat " " (List.map Action.concrete_to_string trace))
          Semantics.pp_verdict o Semantics.pp_verdict s
      else if o = Semantics.Illegal then
        QCheck.Test.fail_reportf "a permitted walk cannot be illegal"
      else true)

let quantifier_laws =
  [ law2 "sequence distributes over disjunction (left)"
      (fun e f -> Expr.Seq (Expr.Or (e, f), Expr.act "zq" []))
      (fun e f ->
        Expr.Or (Expr.Seq (e, Expr.act "zq" []), Expr.Seq (f, Expr.act "zq" [])));
    law2 "sequence distributes over disjunction (right)"
      (fun e f -> Expr.Seq (Expr.act "zq" [], Expr.Or (e, f)))
      (fun e f ->
        Expr.Or (Expr.Seq (Expr.act "zq" [], e), Expr.Seq (Expr.act "zq" [], f)));
    law2 "some-quantifier distributes over disjunction"
      (fun e f -> Expr.SomeQ ("qq", Expr.Or (e, f)))
      (fun e f -> Expr.Or (Expr.SomeQ ("qq", e), Expr.SomeQ ("qq", f)));
    law2 "conjunction equals coupling on equal alphabets"
      (fun e _ -> Expr.And (e, e))
      (fun e _ -> Expr.Sync (e, e));
    law2 "parallel composition associates"
      (fun e f -> Expr.Par (Expr.Par (e, f), Expr.act "zq" []))
      (fun e f -> Expr.Par (e, Expr.Par (f, Expr.act "zq" [])));
    law2 "coupling associates"
      (fun e f -> Expr.Sync (Expr.Sync (e, f), Expr.act "zq" []))
      (fun e f -> Expr.Sync (e, Expr.Sync (f, Expr.act "zq" [])));
    law2 "disjunction associates"
      (fun e f -> Expr.Or (Expr.Or (e, f), Expr.act "zq" []))
      (fun e f -> Expr.Or (e, Expr.Or (f, Expr.act "zq" [])))
  ]

let () =
  Alcotest.run "equivalence"
    [ ("oracle", List.map to_alcotest
         [ equivalence; equivalence_deep; prefixes; complete_implies_partial; empty_word ]);
      ("laws", List.map to_alcotest laws);
      ("laws-2", List.map to_alcotest quantifier_laws);
      ("walks", [ to_alcotest walk_oracle ])
    ]
