open Interaction
open Wfms
open Testutil

let t name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let strs = Alcotest.(check (list string))

let simple =
  Workflow.make "simple" (Workflow.Seq [ Task "a"; Xor [ Task "b"; Task "c" ]; Task "d" ])

let workflow_cases =
  [ t "activities in first-occurrence order" (fun () ->
        strs "acts" [ "a"; "b"; "c"; "d" ] (Workflow.activities simple));
    t "empty structures are rejected" (fun () ->
        Alcotest.check_raises "empty" (Invalid_argument "Workflow.make: empty split or sequence")
          (fun () -> ignore (Workflow.make "bad" (Workflow.Seq []))));
    t "to_expr compiles control flow" (fun () ->
        let e = Workflow.to_expr simple ~args:[ "k" ] in
        check_both e "a_s(k) a_t(k) b_s(k) b_t(k) d_s(k) d_t(k)" Semantics.Complete;
        check_both e "a_s(k) a_t(k) b_s(k) b_t(k) c_s(k)" Semantics.Illegal);
    t "case lifecycle: startable/completable" (fun () ->
        let case = Workflow.start_case simple ~id:"k1" ~args:[ "k" ] in
        strs "initially a" [ "a" ] (Workflow.startable case);
        strs "nothing running" [] (Workflow.completable case);
        check_bool "start a" true (Workflow.start_activity case "a");
        strs "a running" [ "a" ] (Workflow.completable case);
        strs "nothing startable" [] (Workflow.startable case);
        check_bool "finish a" true (Workflow.finish_activity case "a");
        strs "xor choice" [ "b"; "c" ] (Workflow.startable case);
        check_bool "start c" true (Workflow.start_activity case "c");
        check_bool "finish c" true (Workflow.finish_activity case "c");
        strs "then d" [ "d" ] (Workflow.startable case);
        check_bool "not finished" false (Workflow.is_finished case);
        check_bool "start d" true (Workflow.start_activity case "d");
        check_bool "finish d" true (Workflow.finish_activity case "d");
        check_bool "finished" true (Workflow.is_finished case);
        check_int "trace" 6 (List.length (Workflow.trace case)));
    t "and-split interleaves" (fun () ->
        let wf = Workflow.make "par" (Workflow.And [ Task "x"; Task "y" ]) in
        let case = Workflow.start_case wf ~id:"k" ~args:[] in
        check_bool "x" true (Workflow.start_activity case "x");
        check_bool "y concurrently" true (Workflow.start_activity case "y");
        check_bool "finish y" true (Workflow.finish_activity case "y");
        check_bool "finish x" true (Workflow.finish_activity case "x");
        check_bool "done" true (Workflow.is_finished case));
    t "loop repeats" (fun () ->
        let wf = Workflow.make "loop" (Workflow.Loop (Task "x")) in
        let case = Workflow.start_case wf ~id:"k" ~args:[] in
        check_bool "finished at zero iterations" true (Workflow.is_finished case);
        check_bool "x1" true (Workflow.start_activity case "x");
        check_bool "t1" true (Workflow.finish_activity case "x");
        check_bool "x2" true (Workflow.start_activity case "x");
        check_bool "t2" true (Workflow.finish_activity case "x"));
    t "invalid moves are rejected" (fun () ->
        let case = Workflow.start_case simple ~id:"k" ~args:[] in
        check_bool "cannot finish unstarted" false (Workflow.finish_activity case "a");
        check_bool "cannot start later activity" false (Workflow.start_activity case "d"))
  ]

let worklist_cases =
  [ t "refresh offers startable activities of all cases" (fun () ->
        let c1 = Workflow.start_case simple ~id:"k1" ~args:[ "1" ] in
        let c2 = Workflow.start_case simple ~id:"k2" ~args:[ "2" ] in
        ignore (Workflow.start_activity c1 "a");
        ignore (Workflow.finish_activity c1 "a");
        let wl = Worklist.create ~user:"u" in
        let items = Worklist.refresh wl [ c1; c2 ] in
        let labels =
          List.map (fun i -> Format.asprintf "%a" Worklist.pp_item i) items
        in
        strs "items" [ "k1:b"; "k1:c"; "k2:a" ] labels;
        check_int "stored" 3 (List.length (Worklist.items wl)))
  ]

let medical_cases =
  [ t "Fig. 1 workflows have the paper's activities" (fun () ->
        strs "sono"
          [ "order"; "schedule"; "prepare"; "call"; "perform"; "write_report";
            "read_report" ]
          (Workflow.activities Medical.ultrasonography);
        check_bool "endo has inform" true
          (List.mem "inform" (Workflow.activities Medical.endoscopy)));
    t "a full ultrasonography case runs through" (fun () ->
        let case =
          Workflow.start_case Medical.ultrasonography ~id:"c" ~args:[ "p1"; "sono" ]
        in
        List.iter
          (fun a ->
            check_bool ("start " ^ a) true (Workflow.start_activity case a);
            check_bool ("finish " ^ a) true (Workflow.finish_activity case a))
          (Workflow.activities Medical.ultrasonography);
        check_bool "finished" true (Workflow.is_finished case));
    t "patient constraint: call disappears and reappears (intro scenario)"
      (fun () ->
        let s = Engine.create Medical.patient_constraint in
        let ok a = check_bool a true (Engine.try_action s (a1 a)) in
        ok "prepare_s(p1,sono)";
        ok "prepare_s(p1,endo)" (* prepared for both simultaneously *);
        ok "prepare_t(p1,sono)";
        ok "prepare_t(p1,endo)";
        check_bool "both calls offered" true
          (Engine.permitted s (a1 "call_s(p1,sono)")
          && Engine.permitted s (a1 "call_s(p1,endo)"));
        ok "call_s(p1,sono)";
        check_bool "endo call disappears" false (Engine.permitted s (a1 "call_s(p1,endo)"));
        check_bool "other patient unaffected" true (Engine.permitted s (a1 "call_s(p2,endo)"));
        ok "call_t(p1,sono)";
        ok "perform_s(p1,sono)";
        ok "perform_t(p1,sono)";
        check_bool "endo call reappears" true (Engine.permitted s (a1 "call_s(p1,endo)")));
    t "capacity constraint: at most N concurrent examinations per department"
      (fun () ->
        let s = Engine.create (Medical.capacity_constraint ~capacity:2 ()) in
        let ok a = check_bool a true (Engine.try_action s (a1 a)) in
        ok "call_s(p1,endo)";
        ok "call_t(p1,endo)";
        ok "call_s(p2,endo)";
        ok "call_t(p2,endo)";
        check_bool "endo full" false (Engine.permitted s (a1 "call_s(p3,endo)"));
        check_bool "sono free" true (Engine.permitted s (a1 "call_s(p3,sono)"));
        ok "perform_s(p1,endo)";
        ok "perform_t(p1,endo)";
        check_bool "slot freed" true (Engine.permitted s (a1 "call_s(p3,endo)")));
    t "combined constraint enforces both (Fig. 7)" (fun () ->
        let s = Engine.create (Medical.combined_constraint ~capacity:1 ()) in
        let ok a = check_bool a true (Engine.try_action s (a1 a)) in
        ok "call_s(p1,endo)";
        (* patient rule blocks p1's second exam, capacity blocks p2 at endo *)
        check_bool "patient rule" false (Engine.permitted s (a1 "call_s(p1,sono)"));
        check_bool "capacity rule" false (Engine.permitted s (a1 "call_s(p2,endo)"));
        check_bool "p2 sono fine" true (Engine.permitted s (a1 "call_s(p2,sono)"));
        (* prepare is only mentioned by the patient subgraph: coupling lets
           it through as soon as that subgraph permits it *)
        check_bool "prepare other patient" true (Engine.permitted s (a1 "prepare_s(p2,endo)")));
    t "classification: the paper's constraints are benign" (fun () ->
        check_bool "patient benign" true
          (match Classify.benignity Medical.patient_constraint with
          | Classify.Benign _ -> true
          | _ -> false);
        check_bool "combined benign" true
          (match Classify.benignity (Medical.combined_constraint ()) with
          | Classify.Benign _ -> true
          | _ -> false));
    t "ensemble builds two cases per patient" (fun () ->
        check_int "count" 6 (List.length (Medical.ensemble ~patients:3)))
  ]

let adapter_cases =
  let cons = Medical.combined_constraint ~capacity:1 () in
  let cases = Medical.ensemble ~patients:2 in
  let run ?(rogue = false) ?(crash = None) adaptation =
    Adapter.run
      { Adapter.default_config with
        adaptation; rogue_handler = rogue; handler_crash_every = crash;
        max_steps = 4000 }
      ~constraints:cons ~cases
  in
  [ t "unadapted WfMS violates the constraints" (fun () ->
        let o = run Adapter.Unadapted in
        check_bool "violations" true (o.Adapter.violations > 0);
        check_int "no messages" 0 o.Adapter.messages;
        check_int "all cases complete" 4 o.Adapter.completed_cases);
    t "worklist adaptation is correct but chatty" (fun () ->
        let o = run Adapter.Adapted_worklists in
        check_int "no violations" 0 o.Adapter.violations;
        check_bool "heavy traffic" true (o.Adapter.messages > 0);
        check_int "all cases complete" 4 o.Adapter.completed_cases);
    t "worklist adaptation is not waterproof (rogue handler)" (fun () ->
        let o = run ~rogue:true Adapter.Adapted_worklists in
        check_bool "violations leak" true (o.Adapter.violations > 0));
    t "handler crashes stall the manager until timeouts" (fun () ->
        let o = run ~crash:(Some 5) Adapter.Adapted_worklists in
        check_bool "timeouts happened" true (o.Adapter.manager_timeouts > 0);
        check_int "still no violations" 0 o.Adapter.violations);
    t "engine adaptation is waterproof and lean" (fun () ->
        let o = run Adapter.Adapted_engine in
        let ow = run Adapter.Adapted_worklists in
        check_int "no violations" 0 o.Adapter.violations;
        check_bool "fewer messages than worklist adaptation" true
          (o.Adapter.messages < ow.Adapter.messages);
        check_int "all cases complete" 4 o.Adapter.completed_cases);
    t "engine adaptation stays waterproof under rogue requests" (fun () ->
        let o = run ~rogue:true Adapter.Adapted_engine in
        check_int "no violations" 0 o.Adapter.violations);
    t "runs are reproducible (seeded)" (fun () ->
        let o1 = run Adapter.Unadapted and o2 = run Adapter.Unadapted in
        check_int "same violations" o1.Adapter.violations o2.Adapter.violations;
        check_int "same steps" o1.Adapter.steps o2.Adapter.steps)
  ]

let () =
  Alcotest.run "wfms"
    [ ("workflow", workflow_cases); ("worklist", worklist_cases);
      ("medical", medical_cases); ("adapter", adapter_cases)
    ]
