Offline latency attribution.  A checked-in mini trace: one queued request
(300 ns queue wait, a 600 ns manager.execute containing a 200 ns
engine.eval and a 100 ns wal.append) and one fast denied ask.

  $ cat > mini.jsonl <<'EOF'
  > {"seq":1,"ts":100,"ev":"point","name":"mqueue.enqueue","trace":1,"queue":"q","origin_trace":1}
  > {"seq":2,"ts":400,"ev":"point","name":"mqueue.dequeue","trace":1,"queue":"q","origin_trace":1}
  > {"seq":3,"ts":400,"ev":"start","name":"manager.execute","span":1,"trace":1}
  > {"seq":4,"ts":800,"ev":"point","name":"engine.eval","span":1,"trace":1,"dur_ns":200}
  > {"seq":5,"ts":900,"ev":"point","name":"wal.append","span":1,"trace":1,"dur_ns":100}
  > {"seq":6,"ts":1000,"ev":"end","name":"manager.execute","span":1,"trace":1,"dur_ns":600}
  > {"seq":7,"ts":1100,"ev":"start","name":"manager.ask","span":2,"trace":2}
  > {"seq":8,"ts":1150,"ev":"point","name":"engine.eval","span":2,"trace":2,"dur_ns":30}
  > {"seq":9,"ts":1160,"ev":"point","name":"manager.denied","span":2,"trace":2}
  > {"seq":10,"ts":1200,"ev":"end","name":"manager.ask","span":2,"trace":2,"dur_ns":100}
  > EOF

The summary splits each request's wall time into queue wait and per-layer
self time — the numbers are exact because the timestamps are, and the
timed points (dur_ns) are excluded from their parent's self time, so the
columns add up to the wall time minus genuinely unobserved gaps.

  $ ../bin/itrace.exe summary --slow-ms 0.0005 mini.jsonl
  itrace: 1 file(s), 10 event(s), 0 bad line(s)
  spans: 5 closed, 0 orphan start(s), 0 unmatched end(s); traces: 2
  per-operation latency (ns):
    operation                          count        p50        p90        p99        max
    engine.eval                            2         30        200        200        200
    manager.ask                            1        100        100        100        100
    manager.execute                        1        600        600        600        600
    wal.append                             1        100        100        100        100
  per-trace attribution (ns), slowest 2 of 2:
      trace       wall      queue     engine    manager        wal      other  flags
          1        900        300        200        300        100          0  slow
          2        100          0         30         70          0          0  denied
  totals (ns): queue=300 engine=230 manager=370 wal=100 other=0
  critical path of trace 1: manager.execute > engine.eval

The exports: flame-graph folded stacks (self time per path) and a Chrome
trace-event JSON for ui.perfetto.dev — one complete slice per closed span.

  $ ../bin/itrace.exe summary --perfetto p.json --folded f.txt mini.jsonl | grep -E 'perfetto|folded'
  perfetto export: p.json
  folded stacks: f.txt
  $ cat f.txt
  manager.ask 70
  manager.ask;engine.eval 30
  manager.execute 300
  manager.execute;engine.eval 200
  manager.execute;wal.append 100
  $ grep -c '"ph":"X"' p.json
  5
  $ grep -c 'traceEvents' p.json
  1

A truncated log (the process died after opening manager.execute) still
analyzes — the unclosed span is counted as an orphan, and --strict turns
that count into a failing exit for CI.

  $ head -3 mini.jsonl | ../bin/itrace.exe summary - >/dev/null
  $ head -3 mini.jsonl | ../bin/itrace.exe summary --strict - 2>&1 >/dev/null
  itrace: strict: 0 bad line(s), 1 orphan(s)
  [1]

Unparseable lines are counted, never fatal; --strict rejects them too.

  $ printf 'not json\n' | ../bin/itrace.exe summary - | head -1
  itrace: 1 file(s), 0 event(s), 1 bad line(s)
  $ printf 'not json\n' | ../bin/itrace.exe summary --strict - 2>&1 >/dev/null
  itrace: strict: 1 bad line(s), 0 orphan(s)
  [1]
