(* Denial provenance: the acceptance mirror must agree with τ̂, and every
   blame set must be a sound, 1-minimal relaxation cut. *)

open Interaction
open Testutil

let ( ! ) = Testutil.( ! )

(* ------------------------------------------------------------------ *)
(* Mirror agreement: Explain.accepts ⇔ State.trans ≠ None              *)
(* ------------------------------------------------------------------ *)

(* Walk the word through τ̂; at every reached state probe every universe
   action with both the mirror and the real transition. *)
let prop_mirror_agreement =
  QCheck.Test.make ~count:300 ~name:"explain: accepts mirrors τ̂"
    (expr_word_arb ~max_depth:3 ~max_len:4 ())
    (fun (e, word) ->
      let universe = universe_of e in
      let check s =
        List.for_all
          (fun c ->
            let mirror = Explain.accepts s c in
            let real = State.trans s c <> None in
            if mirror <> real then
              QCheck.Test.fail_reportf "mirror=%b real=%b on %s at state:@.%a" mirror
                real
                (Action.concrete_to_string c)
                (fun fmt s -> State.pp fmt s)
                s
            else true)
          universe
      in
      let rec go s = function
        | [] -> check s
        | c :: rest -> (
          check s
          &&
          match State.trans s c with Some s' -> go s' rest | None -> true)
      in
      go (State.init e) word)

(* ------------------------------------------------------------------ *)
(* Oracle: blame sets are sound and 1-minimal                          *)
(* ------------------------------------------------------------------ *)

(* Find the first denial along the word (if any) and check the oracle
   property of its explanation: relaxing all blamed positions flips the
   verdict to acceptance, and dropping any single blame flips it back. *)
let prop_blame_oracle =
  QCheck.Test.make ~count:300 ~name:"explain: blame sets sound and 1-minimal"
    (expr_word_arb ~max_depth:3 ~max_len:5 ())
    (fun (e, word) ->
      let rec first_denial s = function
        | [] -> None
        | c :: rest -> (
          match State.trans s c with
          | Some s' -> first_denial s' rest
          | None -> Some (s, c))
      in
      match first_denial (State.init e) word with
      | None -> true
      | Some (s, c) -> (
        match Explain.explain s c with
        | None -> QCheck.Test.fail_report "denied action but explain returned None"
        | Some x ->
          let paths = List.map (fun (b : Explain.blame) -> b.Explain.bpath) x.blames in
          if x.Explain.blames = [] then
            QCheck.Test.fail_report "empty blame set for a denial"
          else if not (Explain.accepts ~relaxed:paths s c) then
            QCheck.Test.fail_reportf "blame set not sound: relaxing %d blames does not accept"
              (List.length paths)
          else
            List.for_all
              (fun dropped ->
                let rest = List.filter (fun p -> p <> dropped) paths in
                if Explain.accepts ~relaxed:rest s c then
                  QCheck.Test.fail_reportf
                    "blame set not minimal: dropping [%s] still accepts"
                    (String.concat ";" (List.map string_of_int dropped))
                else true)
              paths))

(* ------------------------------------------------------------------ *)
(* Deterministic cases                                                 *)
(* ------------------------------------------------------------------ *)

let blame_ops x = List.map (fun (b : Explain.blame) -> b.Explain.operator) x.Explain.blames

let explain_exn s c =
  match Explain.explain s c with
  | Some x -> x
  | None -> Alcotest.fail "expected a denial explanation"

let test_atom_mismatch () =
  let s = State.init !"a - b" in
  let x = explain_exn s (Action.conc "b" []) in
  Alcotest.(check (list string)) "atom blamed" [ "atom" ] (blame_ops x);
  let b = List.hd x.Explain.blames in
  Alcotest.(check (list string)) "requires a" [ "a" ] b.Explain.requires

let test_and_branch () =
  (* a ∧ (b.a): after nothing, "a" is denied because the right branch
     still requires b first.  The blame must point into the conjunction's
     right branch, not at the root. *)
  let s = State.init !"a & (b - a)" in
  let x = explain_exn s (Action.conc "a" []) in
  Alcotest.(check int) "single blame" 1 (List.length x.Explain.blames);
  let b = List.hd x.Explain.blames in
  Alcotest.(check bool) "blames the right branch"
    true
    (String.length b.Explain.locus >= 3
    && String.sub b.Explain.locus 0 3 = "and");
  Alcotest.(check (list string)) "requires b" [ "b" ] b.Explain.requires

let test_sync_partner () =
  (* (a.c) sync (b.c): c couples both sides; c first is denied because
     neither side has reached it. *)
  let s = State.init !"(a - c) @ (b - c)" in
  let x = explain_exn s (Action.conc "c" []) in
  Alcotest.(check bool) "non-empty" true (x.Explain.blames <> []);
  List.iter
    (fun (b : Explain.blame) ->
      Alcotest.(check bool)
        ("blame inside sync: " ^ b.Explain.locus)
        true
        (String.length b.Explain.locus >= 4
        && String.sub b.Explain.locus 0 4 = "sync"))
    x.Explain.blames

let test_exhausted_iteration () =
  (* an optional action can only be skipped, not taken twice *)
  let s = State.init !"a?" in
  let s = Option.get (State.trans s (Action.conc "a" [])) in
  let x = explain_exn s (Action.conc "a" []) in
  Alcotest.(check bool) "non-empty" true (x.Explain.blames <> [])

let test_accepted_returns_none () =
  let s = State.init !"a - b" in
  Alcotest.(check bool) "None on acceptable" true
    (Explain.explain s (Action.conc "a" []) = None)

let test_explain_word () =
  match Explain.explain_word !"a - b - c" (w "a c") with
  | Ok (i, c, x) ->
    Alcotest.(check int) "denied at index 1" 1 i;
    Alcotest.(check string) "denied action" "c" (Action.concrete_to_string c);
    Alcotest.(check bool) "has blames" true (x.Explain.blames <> [])
  | Error _ -> Alcotest.fail "expected a denial"

let test_rendering () =
  let s = State.init !"a & (b - a)" in
  let x = explain_exn s (Action.conc "a" []) in
  let str = Explain.to_string x in
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "mentions denied action" true (contains str "denied: a");
  let flds = Explain.fields x in
  Alcotest.(check bool) "has blame_count field" true
    (List.mem_assoc "blame_count" flds)

let () =
  Random.self_init ();
  Alcotest.run "explain"
    [ ( "properties",
        [ to_alcotest prop_mirror_agreement; to_alcotest prop_blame_oracle ] );
      ( "cases",
        [ Alcotest.test_case "atom mismatch" `Quick test_atom_mismatch;
          Alcotest.test_case "and branch" `Quick test_and_branch;
          Alcotest.test_case "sync partner" `Quick test_sync_partner;
          Alcotest.test_case "exhausted iteration" `Quick test_exhausted_iteration;
          Alcotest.test_case "accepted => None" `Quick test_accepted_returns_none;
          Alcotest.test_case "explain_word" `Quick test_explain_word;
          Alcotest.test_case "rendering" `Quick test_rendering ] ) ]
