(* End-to-end integration: workflows + work items + interaction manager on
   the paper's medical scenario, driven deterministically.  Asserts the
   global invariants the whole system exists to provide: the constraint is
   never violated, blocked work is suspended (not lost), and everything
   eventually completes. *)

open Interaction
open Wfms

let t name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let role_of = function
  | "order" | "read_report" | "read_short_report" | "read_detailed_report" -> "physician"
  | "schedule" -> "clerk"
  | "write_report" | "write_short_report" | "write_detailed_report" -> "physician"
  | _ -> "assistant" (* prepare, inform, call, perform *)

let users =
  [ ("dr_adams", [ "physician" ]); ("kim", [ "clerk" ]);
    ("lee", [ "assistant" ]); ("sam", [ "assistant" ])
  ]

(* Drive the pool to completion with a deterministic strategy: repeatedly
   pick the first allocatable item (by item id), run its whole lifecycle;
   when only suspended items remain, complete a started one.  Returns the
   number of times an item was observed suspended. *)
let drive pool cases max_steps =
  let suspended_seen = ref 0 in
  let steps = ref 0 in
  let user_for item =
    let role = role_of item.Workitem.activity in
    fst (List.find (fun (_, roles) -> List.mem role roles) users)
  in
  let continue = ref true in
  while !continue && !steps < max_steps do
    incr steps;
    Workitem.refresh pool;
    let offered, suspended =
      List.partition
        (fun i -> i.Workitem.status = Workitem.Offered)
        (List.filter
           (fun i ->
             match i.Workitem.status with
             | Workitem.Offered | Workitem.Suspended -> true
             | _ -> false)
           (Workitem.items pool))
    in
    suspended_seen := !suspended_seen + List.length suspended;
    match offered with
    | item :: _ ->
      let user = user_for item in
      (match Workitem.allocate pool ~user item with
      | Ok () -> (
        match Workitem.start pool ~user item with
        | Ok () -> (
          match Workitem.complete pool ~user item with
          | Ok () -> ()
          | Error m -> Alcotest.failf "complete failed: %s" m)
        | Error _ ->
          (* the manager raced us: the item went back to suspended *)
          ())
      | Error m -> Alcotest.failf "allocate failed: %s" m)
    | [] ->
      if List.for_all Workflow.is_finished cases then continue := false
      else if suspended = [] then continue := false
  done;
  !suspended_seen

let medical_end_to_end =
  [ t "one patient, two examinations, zero violations" (fun () ->
        let constraints = Medical.combined_constraint ~capacity:3 () in
        let mgr = Interaction_manager.Manager.create constraints in
        let monitor = Engine.create constraints in
        let calpha = Alpha.of_expr constraints in
        let cases =
          List.map
            (fun (wf, id, args) -> Workflow.start_case wf ~id ~args)
            (Medical.ensemble ~patients:1)
        in
        let pool = Workitem.create ~manager:mgr ~users ~role_of cases in
        let _ = drive pool cases 400 in
        check_bool "all cases complete" true (List.for_all Workflow.is_finished cases);
        (* replay every confirmed action through an independent monitor *)
        List.iter
          (fun c ->
            if Alpha.mem calpha c then
              check_bool
                ("conformant " ^ Action.concrete_to_string c)
                true
                (Engine.try_action monitor c))
          (Interaction_manager.Manager.confirmed_log mgr);
        (* the ordering constraint is visible in the log: for this patient
           the two perform phases never overlap *)
        let log = Interaction_manager.Manager.confirmed_log mgr in
        let idx name x =
          let rec go i = function
            | [] -> -1
            | c :: rest ->
              if Action.equal_concrete c (Action.conc name [ "p1"; x ]) then i
              else go (i + 1) rest
          in
          go 0 log
        in
        let first_done, second_start =
          if idx "call_s" "sono" < idx "call_s" "endo" then
            (idx "perform_t" "sono", idx "call_s" "endo")
          else (idx "perform_t" "endo", idx "call_s" "sono")
        in
        check_bool "examinations were serialized" true (first_done < second_start));
    t "three patients under capacity 1: heavy suspension, still completes"
      (fun () ->
        let constraints = Medical.combined_constraint ~capacity:1 () in
        let mgr = Interaction_manager.Manager.create constraints in
        let cases =
          List.map
            (fun (wf, id, args) -> Workflow.start_case wf ~id ~args)
            (Medical.ensemble ~patients:3)
        in
        let pool = Workitem.create ~manager:mgr ~users ~role_of cases in
        let _ = drive pool cases 2000 in
        check_int "all six cases complete" 6
          (List.length (List.filter Workflow.is_finished cases));
        let st = Interaction_manager.Manager.stats mgr in
        check_int "manager never violated its own grants" 0
          st.Interaction_manager.Manager.timeouts);
    t "manager crash mid-ensemble, recovery, completion" (fun () ->
        let constraints = Medical.patient_constraint in
        let mgr = Interaction_manager.Manager.create constraints in
        let cases =
          List.map
            (fun (wf, id, args) -> Workflow.start_case wf ~id ~args)
            (Medical.ensemble ~patients:2)
        in
        let pool = Workitem.create ~manager:mgr ~users ~role_of cases in
        let _ = drive pool cases 40 (* partial progress *) in
        let cp = Interaction_manager.Manager.checkpoint mgr in
        Interaction_manager.Manager.crash mgr;
        Interaction_manager.Manager.recover_with mgr ~checkpoint:cp;
        let _ = drive pool cases 2000 in
        check_int "all cases complete after recovery" 4
          (List.length (List.filter Workflow.is_finished cases)))
  ]

(* Robustness: the parsers never raise on arbitrary input. *)
let fuzz =
  let printable =
    QCheck.Gen.(string_size ~gen:(map Char.chr (int_range 32 126)) (int_range 0 60))
  in
  [ Testutil.to_alcotest
      (QCheck.Test.make ~count:2000 ~name:"Syntax.parse never raises"
         (QCheck.make printable)
         (fun s ->
           match Syntax.parse s with Ok _ | Error _ -> true));
    Testutil.to_alcotest
      (QCheck.Test.make ~count:2000 ~name:"parse_word never raises"
         (QCheck.make printable)
         (fun s ->
           match Syntax.parse_word s with Ok _ | Error _ -> true));
    Testutil.to_alcotest
      (QCheck.Test.make ~count:1000 ~name:"Sexp.of_string never raises"
         (QCheck.make printable)
         (fun s -> match Sexp.of_string s with Ok _ | Error _ -> true));
    Testutil.to_alcotest
      (QCheck.Test.make ~count:1000 ~name:"Engine.load rejects garbage gracefully"
         (QCheck.make printable)
         (fun s ->
           match Engine.load s with
           | _ -> true
           | exception Invalid_argument _ -> true));
    Testutil.to_alcotest
      (QCheck.Test.make ~count:1000 ~name:"Workflow.parse never raises"
         (QCheck.make printable)
         (fun s ->
           match Wfms.Workflow.parse ~name:"w" s with Ok _ | Error _ -> true))
  ]

let () =
  Alcotest.run "integration"
    [ ("medical-end-to-end", medical_end_to_end); ("fuzz", fuzz) ]
