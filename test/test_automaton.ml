(* The compiled kernel (signature classifier + lazy automaton) must be
   observably identical to the interpreted transition function: same
   verdicts, same finality, same traces, same states — on random
   expressions including quantifiers, with compilation toggled both ways
   mid-run to exercise the fallback seam. *)

open Interaction
open Testutil

let t name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let with_compilation b f =
  let was = State.compilation () in
  State.set_compilation b;
  Fun.protect ~finally:(fun () -> State.set_compilation was) f

(* Interpreted oracle: fold τ̂ from σ(e), bypassing every compiled path. *)
let oracle_verdict e word =
  with_compilation false (fun () ->
      match State.trans_word (State.init e) word with
      | None -> Engine.Illegal
      | Some s -> if State.final s then Engine.Complete else Engine.Partial)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

(* Engine.word (compiled when active) ≡ interpreted fold. *)
let word_oracle =
  QCheck.Test.make ~count:500 ~name:"compiled word ≡ interpreted word"
    (expr_word_arb ~max_depth:3 ~max_len:5 ())
    (fun (e, word) ->
      let compiled = with_compilation true (fun () -> Engine.word e word) in
      let interp = oracle_verdict e word in
      if compiled <> interp then
        QCheck.Test.fail_reportf "compiled %a, interpreted %a"
          Semantics.pp_verdict compiled Semantics.pp_verdict interp
      else true)

(* A fresh (non-shared) automaton instance agrees too — covers the cold
   tables, eager precompilation, and run_word's off-table tail. *)
let fresh_instance_oracle =
  QCheck.Test.make ~count:300 ~name:"fresh automaton ≡ interpreted word"
    (expr_word_arb ~max_depth:3 ~max_len:5 ())
    (fun (e, word) ->
      with_compilation true (fun () ->
          let a = Automaton.create e in
          let compiled =
            match Automaton.run_word a word with
            | None -> Engine.Illegal
            | Some fin -> if fin then Engine.Complete else Engine.Partial
          in
          let interp = oracle_verdict e word in
          if compiled <> interp then
            QCheck.Test.fail_reportf "fresh automaton %a, interpreted %a"
              Semantics.pp_verdict compiled Semantics.pp_verdict interp
          else true))

(* Tiny row/signature caps force constant fallback; answers must not
   change when every table overflows. *)
let capped_oracle =
  QCheck.Test.make ~count:200 ~name:"capped automaton ≡ interpreted word"
    (expr_word_arb ~max_depth:3 ~max_len:5 ())
    (fun (e, word) ->
      with_compilation true (fun () ->
          let a = Automaton.create ~eager:false ~max_rows:2 ~max_sigs:2 e in
          let compiled =
            match Automaton.run_word a word with
            | None -> Engine.Illegal
            | Some fin -> if fin then Engine.Complete else Engine.Partial
          in
          let interp = oracle_verdict e word in
          if compiled <> interp then
            QCheck.Test.fail_reportf "capped automaton %a, interpreted %a"
              Semantics.pp_verdict compiled Semantics.pp_verdict interp
          else true))

(* Sessions: rejected actions, trace, finality and the reached state must
   be identical with compilation on and off. *)
let session_oracle =
  QCheck.Test.make ~count:300 ~name:"compiled session ≡ interpreted session"
    (expr_word_arb ~max_depth:3 ~max_len:6 ())
    (fun (e, word) ->
      let run compiled =
        with_compilation compiled (fun () ->
            let s = Engine.create e in
            let rejected = Engine.feed s word in
            (rejected, Engine.trace s, Engine.is_final s, Engine.state s))
      in
      let rc, tc, fc, sc = run true in
      let ri, ti, fi, si = run false in
      if not (List.equal Action.equal_concrete rc ri) then
        QCheck.Test.fail_report "rejected lists differ"
      else if not (List.equal Action.equal_concrete tc ti) then
        QCheck.Test.fail_report "traces differ"
      else if fc <> fi then QCheck.Test.fail_report "finality differs"
      else if not (Option.equal State.equal sc si) then
        QCheck.Test.fail_report "states differ"
      else true)

(* The kill switch mid-word: compiled first half, interpreted second half
   (and the reverse) — both must agree with the pure interpreted run.  The
   session crosses the seam with table-produced states. *)
let toggle_oracle =
  QCheck.Test.make ~count:300 ~name:"mid-run compilation toggle preserves verdicts"
    (expr_word_arb ~max_depth:3 ~max_len:6 ())
    (fun (e, word) ->
      let run first_half =
        with_compilation first_half (fun () ->
            let s = Engine.create e in
            let n = List.length word / 2 in
            List.iteri
              (fun i c ->
                if i = n then State.set_compilation (not first_half);
                ignore (Engine.try_action s c))
              word;
            (Engine.trace s, Engine.is_final s, Engine.state s))
      in
      let reference =
        with_compilation false (fun () ->
            let s = Engine.create e in
            ignore (Engine.feed s word);
            (Engine.trace s, Engine.is_final s, Engine.state s))
      in
      let check dir (tr, fin, st) =
        let rt, rf, rs = reference in
        if not (List.equal Action.equal_concrete tr rt) then
          QCheck.Test.fail_reportf "%s: traces differ" dir
        else if fin <> rf then QCheck.Test.fail_reportf "%s: finality differs" dir
        else if not (Option.equal State.equal st rs) then
          QCheck.Test.fail_reportf "%s: states differ" dir
        else true
      in
      check "on->off" (run true) && check "off->on" (run false))

(* ------------------------------------------------------------------ *)
(* Units                                                               *)
(* ------------------------------------------------------------------ *)

let units =
  [ t "harmless expressions compile eagerly" (fun () ->
        let a = Automaton.create !"(a - b)*" in
        let i = Automaton.info a in
        check_bool "eager" true i.Automaton.eager;
        check_bool "rows materialized up front" true (i.Automaton.rows >= 2);
        (* reject column + one per distinct ground atom *)
        check_int "signatures" 3 i.Automaton.signatures)
    ; t "quantified expressions stay lazy" (fun () ->
        let a = Automaton.create !"some p: a(p) - b(p)" in
        let i = Automaton.info a in
        check_bool "lazy" false i.Automaton.eager;
        check_int "only the initial row" 1 i.Automaton.rows)
    ; t "reject short-circuit skips the state DAG" (fun () ->
        with_compilation true (fun () ->
            let a = Automaton.create !"(a - b)*" in
            let st = State.init !"(a - b)*" in
            ignore (Automaton.step a st (a1 "a"));  (* classify once *)
            let before = (Automaton.stats ()).Automaton.fallbacks in
            (* foreign action: all-None signature, answered without τ̂ *)
            check_bool "rejected" true (Automaton.step a st (a1 "zzz") = None);
            check_bool "rejected again" true (Automaton.step a st (a1 "zzz") = None);
            let after = (Automaton.stats ()).Automaton.fallbacks in
            check_int "no interpreted fallback" before after))
    ; t "warm steps still count as kernel transitions" (fun () ->
        with_compilation true (fun () ->
            let a = Automaton.create !"(a - b)*" in
            let st = State.init !"(a - b)*" in
            ignore (Automaton.step a st (a1 "a"));  (* warm the entry *)
            let before = State.transitions () in
            ignore (Automaton.step a st (a1 "a"));
            check_int "one transition" (before + 1) (State.transitions ())))
    ; t "kill switch falls back to the interpreted kernel" (fun () ->
        with_compilation false (fun () ->
            check_bool "inactive" false (Automaton.active ());
            let before = (Automaton.stats ()).Automaton.steps in
            let s = Engine.create !"(a - b)*" in
            check_bool "still accepts" true (Engine.try_action s (a1 "a"));
            let after = (Automaton.stats ()).Automaton.steps in
            check_int "no compiled steps" before after))
    ; t "shared instances are per expression and reused" (fun () ->
        let e = !"(a - b)* || c*" in
        check_bool "same instance" true
          (Automaton.shared e == Automaton.shared e);
        check_bool "expr preserved" true (Expr.equal (Automaton.expr (Automaton.shared e)) e))
    ; t "signature cache hits on repeated actions" (fun () ->
        with_compilation true (fun () ->
            let a = Automaton.create !"some p: a(p) - b(p)" in
            let st = State.init !"some p: a(p) - b(p)" in
            ignore (Automaton.step a st (a1 "a(1)"));
            let h0 = (Automaton.stats ()).Automaton.sig_cache_hits in
            ignore (Automaton.step a st (a1 "a(1)"));
            let h1 = (Automaton.stats ()).Automaton.sig_cache_hits in
            check_bool "hit recorded" true (h1 > h0)))
  ]

let () =
  Alcotest.run "automaton"
    [ ("oracle",
       List.map to_alcotest
         [ word_oracle; fresh_instance_oracle; capped_oracle; session_oracle;
           toggle_oracle ]);
      ("units", units)
    ]
