(* lib/trace: JSONL round-trips, span-tree reconstruction, exact latency
   attribution, the perfetto export, and tolerance of truncated logs. *)


module Src = Interaction_trace.Source
module Tree = Interaction_trace.Spantree
module Attrib = Interaction_trace.Attrib
module Perfetto = Interaction_trace.Perfetto
module Report = Interaction_trace.Report

let t name f = Alcotest.test_case name `Quick f
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Hand-built events, for the synthetic fixtures *)
let ev ?(kind = Telemetry.Point) ?(span = 0) ?(parent = 0) ?(trace = 0)
    ?(dom = 0) ?(fields = []) ~seq ~ts name =
  { Telemetry.seq; ts = Int64.of_int ts; kind; name; span; parent; trace; dom;
    fields }

(* Run [f] with telemetry enabled and every event captured in a fresh
   ring (same discipline as test_telemetry's helper). *)
let observed ?(capacity = 65536) f =
  let ring = Telemetry.Ring.create capacity in
  Telemetry.reset ();
  Telemetry.clear_sinks ();
  Telemetry.add_sink (Telemetry.Ring.sink ring);
  Telemetry.enable ();
  let r =
    Fun.protect
      ~finally:(fun () ->
        Telemetry.disable ();
        Telemetry.clear_sinks ();
        Option.iter Recorder.install (Recorder.global ()))
      f
  in
  (r, Telemetry.Ring.to_list ring)

(* ------------------------------------------------------------------ *)
(* JSONL round-trip: whatever jsonl_sink writes, parse_line reads back *)
(* loss-free.  Integer-valued floats are excluded by construction: the *)
(* writer prints them without a decimal point, so they parse back as   *)
(* Int — a documented asymmetry, not a data loss.                      *)
(* ------------------------------------------------------------------ *)

let value_gen =
  let open QCheck.Gen in
  frequency
    [ (3, map (fun i -> Telemetry.Int i) (int_range (-1_000_000) 1_000_000));
      (2,
       map
         (fun s -> Telemetry.Str s)
         (string_size ~gen:printable (int_range 0 10)));
      (1, map (fun b -> Telemetry.Bool b) bool);
      (* k + 0.5 is exactly representable and short under %g, and never
         integer-valued — the only Float shape the format round-trips *)
      (2,
       map
         (fun k -> Telemetry.Float (float_of_int k +. 0.5))
         (int_range (-1000) 1000)) ]

let event_gen =
  let open QCheck.Gen in
  oneofl [ Telemetry.Span_start; Telemetry.Span_end; Telemetry.Point ]
  >>= fun kind ->
  oneofl [ "engine.eval"; "manager.ask"; "wal.append"; "mqueue.enqueue"; "pt" ]
  >>= fun name ->
  int_range 0 1000 >>= fun seq ->
  int_range 0 1_000_000 >>= fun ts ->
  int_range 0 50 >>= fun span ->
  int_range 0 50 >>= fun parent ->
  int_range 0 20 >>= fun trace ->
  int_range 0 4 >>= fun dom ->
  list_size (int_range 0 5) value_gen >>= fun vals ->
  (* distinct non-builtin keys: an assoc list with duplicates has no
     canonical reading *)
  let fields = List.mapi (fun i v -> (Printf.sprintf "k%d" i, v)) vals in
  return (ev ~kind ~span ~parent ~trace ~dom ~fields ~seq ~ts name)

let event_arb =
  QCheck.make ~print:(fun e -> Telemetry.event_to_json e) event_gen

let jsonl_roundtrip =
  Testutil.to_alcotest
    (QCheck.Test.make ~count:500
       ~name:"event_to_json . parse_line = identity (sink-shaped events)"
       event_arb
       (fun e ->
         match Telemetry.Jsonl.parse_line (Telemetry.event_to_json e) with
         | None -> QCheck.Test.fail_report "did not parse back"
         | Some p ->
           if p <> e then
             QCheck.Test.fail_reportf "parsed to a different event: %s"
               (Telemetry.event_to_json p);
           true))

(* ------------------------------------------------------------------ *)
(* Span trees over real engine/manager runs                            *)
(* ------------------------------------------------------------------ *)

let manager_workload (e, word) =
  let mgr = Interaction_manager.Manager.create e in
  List.iter
    (fun a ->
      Telemetry.in_new_trace (fun () ->
          ignore (Interaction_manager.Manager.execute mgr ~client:"w" a)))
    word

(* every start has its end, children nest inside their parents *)
let balanced_nesting =
  Testutil.to_alcotest
    (QCheck.Test.make ~count:100
       ~name:"captured runs reconstruct with zero orphans, nested children"
       (Testutil.expr_word_arb ~max_depth:3 ~max_len:5 ())
       (fun case ->
         let (), evs = observed (fun () -> manager_workload case) in
         let forest = Tree.build evs in
         if Tree.orphans forest > 0 then
           QCheck.Test.fail_reportf "%d orphan(s) in a complete log"
             (Tree.orphans forest);
         Tree.iter
           (fun n ->
             if not n.Tree.closed then
               QCheck.Test.fail_report "unclosed node in a complete log";
             List.iter
               (fun (c : Tree.node) ->
                 if
                   Int64.compare c.Tree.start_ts n.Tree.start_ts < 0
                   || Int64.compare c.Tree.end_ts n.Tree.end_ts > 0
                 then
                   QCheck.Test.fail_reportf "child %s escapes parent %s"
                     c.Tree.name n.Tree.name)
               n.Tree.children)
           forest;
         true))

(* a log cut at any point still builds — orphans counted, nothing raised *)
let truncation_tolerated =
  Testutil.to_alcotest
    (QCheck.Test.make ~count:50
       ~name:"any prefix of a log builds; the full log has no orphans"
       (Testutil.expr_word_arb ~max_depth:3 ~max_len:4 ())
       (fun case ->
         let (), evs = observed (fun () -> manager_workload case) in
         let lines = List.map Telemetry.event_to_json evs in
         let n = List.length lines in
         for cut = 0 to n do
           let prefix = List.filteri (fun i _ -> i < cut) lines in
           let src = Src.of_lines prefix in
           let forest = Tree.build src.Src.events in
           ignore (Tree.closed_count forest);
           ignore (Attrib.of_events src.Src.events forest)
         done;
         let full = Tree.build (Src.of_lines lines).Src.events in
         Tree.orphans full = 0))

let truncated_log_counts_orphans =
  t "a start without its end is an orphan start, not an error" (fun () ->
      let evs =
        [ ev ~kind:Telemetry.Span_start ~span:1 ~trace:1 ~seq:1 ~ts:100
            "manager.execute";
          ev ~kind:Telemetry.Span_start ~span:2 ~parent:1 ~trace:1 ~seq:2
            ~ts:200 "manager.ask"
          (* log ends here: the process died mid-request *) ]
      in
      let forest = Tree.build evs in
      check_int "orphan starts" 2 forest.Tree.orphan_starts;
      check_int "unmatched ends" 0 forest.Tree.orphan_ends;
      check_int "nothing closed" 0 (Tree.closed_count forest);
      let forest2 =
        Tree.build
          [ ev ~kind:Telemetry.Span_end ~span:9 ~trace:1 ~seq:1 ~ts:50
              "manager.execute" ]
      in
      check_int "end without start" 1 forest2.Tree.orphan_ends)

(* ------------------------------------------------------------------ *)
(* Exact attribution on a synthetic request                            *)
(* ------------------------------------------------------------------ *)

(* One request, fixed timestamps: 300 ns queue wait, then a 600 ns
   manager.execute containing a 200 ns engine.eval and a 100 ns
   wal.append (both timed points -> leaf children).  Nothing may be
   double-counted and nothing may go missing. *)
let synthetic_request =
  [ ev ~seq:1 ~ts:100 ~trace:1 "mqueue.enqueue"
      ~fields:
        [ ("queue", Telemetry.Str "q"); ("origin_trace", Telemetry.Int 1) ];
    ev ~seq:2 ~ts:400 ~trace:1 "mqueue.dequeue"
      ~fields:
        [ ("queue", Telemetry.Str "q"); ("origin_trace", Telemetry.Int 1) ];
    ev ~kind:Telemetry.Span_start ~seq:3 ~ts:400 ~span:1 ~trace:1
      "manager.execute";
    ev ~seq:4 ~ts:800 ~span:1 ~trace:1 "engine.eval"
      ~fields:[ ("dur_ns", Telemetry.Int 200) ];
    ev ~seq:5 ~ts:900 ~span:1 ~trace:1 "wal.append"
      ~fields:[ ("dur_ns", Telemetry.Int 100) ];
    ev ~kind:Telemetry.Span_end ~seq:6 ~ts:1000 ~span:1 ~trace:1
      "manager.execute" ~fields:[ ("dur_ns", Telemetry.Int 600) ]
  ]

let exact_attribution =
  t "queue/engine/manager/wal split exactly, no double counting" (fun () ->
      let forest = Tree.build synthetic_request in
      check_int "orphans" 0 (Tree.orphans forest);
      match Attrib.of_events synthetic_request forest with
      | [ a ] ->
        check_int "trace" 1 a.Attrib.trace;
        check_int "wall = last - first" 900 a.Attrib.wall_ns;
        check_int "queue = dequeue - enqueue" 300 a.Attrib.queue_ns;
        check_int "engine = eval's dur" 200 a.Attrib.engine_ns;
        check_int "wal = append's dur" 100 a.Attrib.wal_ns;
        check_int "manager = execute self time" 300 a.Attrib.manager_ns;
        check_int "other" 0 a.Attrib.other_ns;
        check_bool "not denied" false a.Attrib.denied;
        Alcotest.(check (list string))
          "critical path follows the heaviest child"
          [ "manager.execute"; "engine.eval" ]
          a.Attrib.critical_path
      | l -> Alcotest.failf "expected 1 attribution, got %d" (List.length l))

let denied_flag =
  t "a manager.denied event flags its trace" (fun () ->
      let evs =
        synthetic_request
        @ [ ev ~seq:7 ~ts:1100 ~trace:2 "manager.denied";
            ev ~seq:8 ~ts:1200 ~trace:2 "manager.ask" ]
      in
      let forest = Tree.build evs in
      match Attrib.of_events evs forest with
      | [ a1'; a2 ] ->
        check_bool "trace 1 clean" false a1'.Attrib.denied;
        check_bool "trace 2 denied" true a2.Attrib.denied
      | l -> Alcotest.failf "expected 2 attributions, got %d" (List.length l))

(* ------------------------------------------------------------------ *)
(* Perfetto export is well-formed JSON                                 *)
(* ------------------------------------------------------------------ *)

(* a minimal JSON syntax checker: accepts exactly one value, rejects
   trailing garbage — enough to catch a malformed export *)
let json_valid s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n && (s.[!pos] = ' ' || s.[!pos] = '\n' || s.[!pos] = '\t'
                  || s.[!pos] = '\r')
    do
      incr pos
    done
  in
  let expect c =
    if peek () = Some c then incr pos else raise Exit
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> str ()
    | Some ('t' | 'f' | 'n') -> lit ()
    | Some ('-' | '0' .. '9') -> num ()
    | _ -> raise Exit
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then incr pos
    else begin
      let rec members () =
        skip_ws ();
        str ();
        skip_ws ();
        expect ':';
        value ();
        skip_ws ();
        match peek () with
        | Some ',' ->
          incr pos;
          members ()
        | Some '}' -> incr pos
        | _ -> raise Exit
      in
      members ()
    end
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then incr pos
    else begin
      let rec elems () =
        value ();
        skip_ws ();
        match peek () with
        | Some ',' ->
          incr pos;
          elems ()
        | Some ']' -> incr pos
        | _ -> raise Exit
      in
      elems ()
    end
  and str () =
    expect '"';
    let rec go () =
      if !pos >= n then raise Exit
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
          pos := !pos + 2;
          go ()
        | _ ->
          incr pos;
          go ()
    in
    go ()
  and lit () =
    List.iter (fun c -> expect c)
      (match peek () with
      | Some 't' -> [ 't'; 'r'; 'u'; 'e' ]
      | Some 'f' -> [ 'f'; 'a'; 'l'; 's'; 'e' ]
      | _ -> [ 'n'; 'u'; 'l'; 'l' ])
  and num () =
    if peek () = Some '-' then incr pos;
    let digits () =
      while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do
        incr pos
      done
    in
    digits ();
    if peek () = Some '.' then begin
      incr pos;
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      incr pos;
      (match peek () with Some ('+' | '-') -> incr pos | _ -> ());
      digits ()
    | _ -> ())
  in
  match
    value ();
    skip_ws ();
    !pos = n
  with
  | r -> r
  | exception Exit -> false

let perfetto_valid_synthetic =
  t "perfetto export of the synthetic request is valid JSON" (fun () ->
      let s = Perfetto.to_string (Tree.build synthetic_request) in
      check_bool "parses" true (json_valid s);
      let has needle =
        let m = String.length needle and l = String.length s in
        let rec go i = i + m <= l && (String.sub s i m = needle || go (i + 1)) in
        go 0
      in
      check_bool "has traceEvents" true (has "\"traceEvents\"");
      check_bool "has a complete slice" true (has "\"ph\":\"X\""))

let perfetto_valid_runs =
  Testutil.to_alcotest
    (QCheck.Test.make ~count:30 ~name:"perfetto export of real runs is valid JSON"
       (Testutil.expr_word_arb ~max_depth:3 ~max_len:4 ())
       (fun case ->
         let (), evs = observed (fun () -> manager_workload case) in
         json_valid (Perfetto.to_string (Tree.build evs))))

(* ------------------------------------------------------------------ *)
(* Percentile report + histogram quantile estimator                    *)
(* ------------------------------------------------------------------ *)

let op_stats_exact =
  t "op_stats: exact nearest-rank percentiles over closed spans" (fun () ->
      (* 10 engine.eval leaves of durations 100,200,...,1000 ns *)
      let evs =
        List.concat
          (List.init 10 (fun i ->
               let d = (i + 1) * 100 in
               [ ev ~kind:Telemetry.Span_start ~seq:(2 * i) ~ts:(i * 10_000)
                   ~span:(i + 1) "engine.eval";
                 ev ~kind:Telemetry.Span_end
                   ~seq:((2 * i) + 1)
                   ~ts:((i * 10_000) + d)
                   ~span:(i + 1) "engine.eval" ]))
      in
      match Report.op_stats (Tree.build evs) with
      | [ s ] ->
        check_int "count" 10 s.Report.count;
        check_int "p50 is the 5th of 10" 500 s.Report.p50;
        check_int "p90 is the 9th of 10" 900 s.Report.p90;
        check_int "p99 is the 10th of 10" 1000 s.Report.p99;
        check_int "max" 1000 s.Report.max_ns
      | l -> Alcotest.failf "expected 1 op, got %d" (List.length l))

let quantile_estimator =
  t "histogram_quantile: linear interpolation inside the bucket" (fun () ->
      Telemetry.reset ();
      let h = Telemetry.histogram "test_quantile_ns" in
      Telemetry.enable ();
      Fun.protect ~finally:(fun () -> Telemetry.disable ()) @@ fun () ->
      Alcotest.(check (float 0.))
        "empty histogram -> 0" 0.
        (Telemetry.histogram_quantile h 0.5);
      (* 10 observations land in the (100, 250] bucket: the estimator
         interpolates target/n of the way through it *)
      for _ = 1 to 10 do
        Telemetry.observe h 150L
      done;
      Alcotest.(check (float 0.))
        "p50 = 100 + 150 * 5/10" 175.
        (Telemetry.histogram_quantile h 0.5);
      Alcotest.(check (float 0.))
        "p99 = 100 + 150 * 9.9/10" 248.5
        (Telemetry.histogram_quantile h 0.99);
      Alcotest.(check (float 0.))
        "p0 clamps into the bucket" 100.
        (Telemetry.histogram_quantile h 0.);
      (* overflow observations clamp to the largest finite bound *)
      let h2 = Telemetry.histogram "test_quantile_ovf_ns" in
      Telemetry.observe h2 500_000_000L;
      Alcotest.(check (float 0.))
        "overflow clamps to the largest bound" 100_000_000.
        (Telemetry.histogram_quantile h2 0.5))

let expose_percentiles =
  t "expose prints _p50/_p99 lines for histograms" (fun () ->
      Telemetry.reset ();
      let h = Telemetry.histogram "test_expose_ns" in
      Telemetry.enable ();
      Fun.protect ~finally:(fun () -> Telemetry.disable ()) @@ fun () ->
      for _ = 1 to 10 do
        Telemetry.observe h 150L
      done;
      let text = Telemetry.expose () in
      let has needle =
        let m = String.length needle and l = String.length text in
        let rec go i =
          i + m <= l && (String.sub text i m = needle || go (i + 1))
        in
        go 0
      in
      check_bool "p50 line" true (has "test_expose_ns_p50 175");
      check_bool "p99 line" true (has "test_expose_ns_p99 248.5"))

(* ------------------------------------------------------------------ *)
(* Source counts bad lines without failing                             *)
(* ------------------------------------------------------------------ *)

let source_bad_lines =
  t "unparseable lines are counted, parseable ones kept" (fun () ->
      let src =
        Src.of_string
          (String.concat "\n"
             [ Telemetry.event_to_json (ev ~seq:1 ~ts:10 "a");
               "garbage {not json";
               "";
               Telemetry.event_to_json (ev ~seq:2 ~ts:20 "b");
               "{\"seq\":3}" ])
      in
      check_int "events" 2 (List.length src.Src.events);
      check_int "non-blank lines" 4 src.Src.lines;
      check_int "bad lines" 2 src.Src.bad_lines)

let () =
  Alcotest.run "trace"
    [ ("jsonl", [ jsonl_roundtrip; source_bad_lines ]);
      ("spantree",
       [ balanced_nesting; truncation_tolerated; truncated_log_counts_orphans ]);
      ("attribution", [ exact_attribution; denied_flag ]);
      ("perfetto", [ perfetto_valid_synthetic; perfetto_valid_runs ]);
      ("percentiles", [ op_stats_exact; quantile_estimator; expose_percentiles ])
    ]
