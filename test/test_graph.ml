open Interaction
open Interaction_graph
open Testutil

let t name f = Alcotest.test_case name `Quick f

let compiles g s =
  Alcotest.(check bool)
    ("compiles to " ^ s)
    true
    (Expr.equal (Graph.compile g) (Syntax.parse_exn s))

let compile_cases =
  [ t "action node" (fun () -> compiles (Graph.Act ("a", [])) "a");
    t "activity expands to start/terminate" (fun () ->
        compiles (Graph.activity "call" [ "1" ]) "call_s(1) - call_t(1)");
    t "path is sequential composition" (fun () ->
        compiles (Graph.Path [ Graph.Act ("a", []); Graph.Act ("b", []) ]) "a - b");
    t "either-or is disjunction" (fun () ->
        compiles (Graph.EitherOr [ Graph.Act ("a", []); Graph.Act ("b", []) ]) "a | b");
    t "as-well-as is parallel composition" (fun () ->
        compiles (Graph.AsWellAs [ Graph.Act ("a", []); Graph.Act ("b", []) ]) "a || b");
    t "arbitrarily parallel is parallel iteration" (fun () ->
        compiles (Graph.ArbitrarilyParallel (Graph.Act ("a", []))) "a#");
    t "loop is sequential iteration" (fun () ->
        compiles (Graph.Loop (Graph.Act ("a", []))) "a*");
    t "optional" (fun () -> compiles (Graph.Optional (Graph.Act ("a", []))) "[a]");
    t "multiplier (Fig. 6)" (fun () ->
        compiles (Graph.Multiplier (2, Graph.Act ("a", []))) "a || a");
    t "quantifier regions" (fun () ->
        compiles (Graph.ForSome ("x", Graph.Act ("a", [ Action.param "x" ]))) "some x: a(x)";
        compiles (Graph.ForAll ("x", Graph.Act ("a", [ Action.param "x" ]))) "all x: a(x)";
        compiles (Graph.ForEach ("x", Graph.Act ("a", [ Action.param "x" ]))) "sync x: a(x)";
        compiles (Graph.ForEvery ("x", Graph.Act ("a", [ Action.param "x" ]))) "conj x: a(x)");
    t "coupling and conjunction regions" (fun () ->
        compiles (Graph.Couple [ Graph.Act ("a", []); Graph.Act ("b", []) ]) "a @ b";
        compiles (Graph.Conjoin [ Graph.Act ("a", []); Graph.Act ("b", []) ]) "a & b");
    t "empty branching is rejected" (fun () ->
        Alcotest.check_raises "empty"
          (Invalid_argument "Graph.compile: empty either-or branching") (fun () ->
            ignore (Graph.compile (Graph.EitherOr []))))
  ]

let template_cases =
  [ t "flash is Fig. 5's iterated disjunction" (fun () ->
        compiles
          (Graph.Use ("flash", [ Graph.Act ("a", []); Graph.Act ("b", []) ]))
          "(a | b)*");
    t "mutex is an alias of flash" (fun () ->
        compiles (Graph.Use ("mutex", [ Graph.Act ("a", []) ])) "a*");
    t "handshake alternates strictly" (fun () ->
        compiles
          (Graph.Use ("handshake", [ Graph.Act ("a", []); Graph.Act ("b", []) ]))
          "(a - b)*");
    t "unknown operator is rejected" (fun () ->
        Alcotest.check_raises "unknown"
          (Invalid_argument "Template.expand: unknown operator \"nope\"") (fun () ->
            ignore (Graph.compile (Graph.Use ("nope", [])))));
    t "arity is checked" (fun () ->
        Alcotest.check_raises "arity"
          (Invalid_argument "Template.expand: operator \"handshake\" does not accept 1 operand(s)")
          (fun () -> ignore (Graph.compile (Graph.Use ("handshake", [ Graph.Act ("a", []) ])))));
    t "user-defined operators extend the registry" (fun () ->
        let reg =
          Template.add
            { Template.name = "twice"; arity = Template.Exactly 1;
              expand = (function [ y ] -> Expr.seq y y | _ -> assert false);
              doc = "y - y" }
            Template.predefined
        in
        let g = Graph.Use ("twice", [ Graph.Act ("a", []) ]) in
        Alcotest.(check bool) "expanded" true
          (Expr.equal (Graph.compile ~templates:reg g) !"a - a"));
    t "registry lists names" (fun () ->
        Alcotest.(check bool) "has flash" true
          (List.mem "flash" (Template.names Template.predefined)))
  ]

let behaviour =
  [ t "compiled graph behaves like its expression" (fun () ->
        let g =
          Graph.Use
            ( "flash",
              [ Graph.Path [ Graph.Act ("a", []); Graph.Act ("b", []) ];
                Graph.Act ("c", [])
              ] )
        in
        let e = Graph.compile g in
        check_both e "a b c a b" Semantics.Complete;
        check_both e "a c" Semantics.Illegal);
    t "size counts nodes" (fun () ->
        Alcotest.(check int) "size" 3
          (Graph.size (Graph.Path [ Graph.Act ("a", []); Graph.Act ("b", []) ])));
    t "pp prints" (fun () ->
        Alcotest.(check bool) "nonempty" true
          (String.length (Format.asprintf "%a" Graph.pp Wfms.Medical.patient_graph) > 0))
  ]

let dot_cases =
  let contains ~needle hay =
    let n = String.length needle and h = String.length hay in
    let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
    n = 0 || go 0
  in
  [ t "dot output is a digraph" (fun () ->
        let d = Dot.render (Graph.Path [ Graph.activity "call" [ "1" ]; Graph.Act ("x", []) ]) in
        Alcotest.(check bool) "digraph" true (contains ~needle:"digraph" d);
        Alcotest.(check bool) "rankdir" true (contains ~needle:"rankdir=LR" d);
        Alcotest.(check bool) "box" true (contains ~needle:"shape=box" d);
        Alcotest.(check bool) "label" true (contains ~needle:"call(1)" d));
    t "dot escapes quotes" (fun () ->
        let d = Dot.render (Graph.Act ("a", [ Action.value "x\"y" ])) in
        Alcotest.(check bool) "escaped" true (contains ~needle:"x\\\"y" d));
    t "dot renders the paper's Fig. 7 graph" (fun () ->
        let d = Dot.render (Wfms.Medical.combined_graph ()) in
        Alcotest.(check bool) "prepare" true (contains ~needle:"prepare" d);
        Alcotest.(check bool) "coupling" true (contains ~needle:"⊕" d));
    t "save writes a file" (fun () ->
        let file = Filename.temp_file "ig" ".dot" in
        Dot.save ~file (Graph.Act ("a", []));
        let ic = open_in file in
        let len = in_channel_length ic in
        close_in ic;
        Sys.remove file;
        Alcotest.(check bool) "nonempty" true (len > 0))
  ]

(* of_expr/compile round-trip and tree rendering. *)
let roundtrip_prop =
  to_alcotest
    (QCheck.Test.make ~count:300 ~name:"compile (of_expr e) = e"
       (expr_arb ~max_depth:4 ())
       (fun e ->
         if Expr.equal (Graph.compile (Graph.of_expr e)) e then true
         else QCheck.Test.fail_reportf "lost %s" (Syntax.to_string e)))

let tree_cases =
  [ t "render_tree draws every node" (fun () ->
        let s = Dot.render_tree (Graph.of_expr !"all p: (a(p) | b(p) - c(p))*") in
        List.iter
          (fun needle ->
            Alcotest.(check bool) needle true
              (let n = String.length needle and h = String.length s in
               let rec go i = i + n <= h && (String.sub s i n = needle || go (i + 1)) in
               go 0))
          [ "for all p"; "loop"; "either-or"; "a(?p)"; "path"; "c(?p)" ])
  ]

let () =
  Alcotest.run "graph"
    [ ("compile", compile_cases); ("templates", template_cases);
      ("behaviour", behaviour); ("dot", dot_cases);
      ("round-trip", roundtrip_prop :: tree_cases)
    ]
