(* Telemetry: spans, metrics, sinks, JSONL round-trips — and the property
   that observation never changes behaviour (no observer effect). *)

open Interaction
open Testutil

let t name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Run [f] with telemetry enabled and every event captured in a fresh ring;
   returns [f]'s result and the captured events.  Leaves telemetry disabled
   and the sink list empty regardless of exceptions. *)
let observed ?(capacity = 4096) f =
  let ring = Telemetry.Ring.create capacity in
  Telemetry.reset ();
  Telemetry.clear_sinks ();
  (* the CI crash-dump recorder, when armed, shadows every observed run *)
  Option.iter Recorder.install (Recorder.global ());
  Telemetry.add_sink (Telemetry.Ring.sink ring);
  Telemetry.enable ();
  let r =
    Fun.protect
      ~finally:(fun () ->
        Telemetry.disable ();
        Telemetry.clear_sinks ();
        (* keep the CI crash-dump recorder armed across tests *)
        Option.iter Recorder.install (Recorder.global ()))
      f
  in
  (r, Telemetry.Ring.to_list ring)

(* ------------------------------------------------------------------ *)
(* No observer effect: the engine and the manager answer identically   *)
(* with telemetry off and with telemetry on + a live sink.             *)
(* ------------------------------------------------------------------ *)

let engine_run (e, word) =
  let s = Engine.create e in
  let accepts = List.map (Engine.try_action s) word in
  (Engine.word e word, accepts, Engine.trace s, Engine.is_final s)

let manager_run (e, word) =
  let mgr = Interaction_manager.Manager.create e in
  List.map (fun a -> Interaction_manager.Manager.execute mgr ~client:"w" a) word

let no_observer_effect_engine =
  to_alcotest
    (QCheck.Test.make ~count:150
       ~name:"telemetry on/off: identical verdicts, accepts, traces"
       (expr_word_arb ~max_depth:3 ~max_len:5 ())
       (fun case ->
         Telemetry.disable ();
         let dark = engine_run case in
         let lit, events = observed (fun () -> engine_run case) in
         if dark <> lit then QCheck.Test.fail_report "engine behaviour changed";
         (* the observed run must actually have produced events *)
         if snd case <> [] && events = [] then
           QCheck.Test.fail_report "no events emitted under telemetry";
         true))

let no_observer_effect_manager =
  to_alcotest
    (QCheck.Test.make ~count:100
       ~name:"telemetry on/off: identical manager replies"
       (expr_word_arb ~max_depth:3 ~max_len:5 ())
       (fun case ->
         Telemetry.disable ();
         let dark = manager_run case in
         let lit, _ = observed (fun () -> manager_run case) in
         dark = lit))

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

let kinds evs = List.map (fun (e : Telemetry.event) -> (e.kind, e.name)) evs

let spans =
  [ t "spans nest: start/end balance, parent links" (fun () ->
        let (), evs =
          observed (fun () ->
              Telemetry.span "outer" (fun () ->
                  Telemetry.span "inner" (fun () -> Telemetry.event "pt")))
        in
        Alcotest.(check (list (pair bool string)))
          "event order"
          [ (true, "outer"); (true, "inner"); (false, "pt"); (true, "inner");
            (true, "outer")
          ]
          (List.map
             (fun (k, n) -> (k <> Telemetry.Point, n))
             (kinds evs));
        (match evs with
        | [ so; si; pt; ei; eo ] ->
          check_int "outer start is span 1" 1 so.Telemetry.span;
          check_int "outer has no parent" 0 so.Telemetry.parent;
          check_int "inner is span 2" 2 si.Telemetry.span;
          check_int "inner's parent is outer" 1 si.Telemetry.parent;
          check_int "point lives in inner" 2 pt.Telemetry.span;
          check_int "inner end matches start" 2 ei.Telemetry.span;
          check_int "outer end matches start" 1 eo.Telemetry.span;
          check_bool "end carries dur_ns" true
            (List.mem_assoc "dur_ns" eo.Telemetry.fields)
        | _ -> Alcotest.fail "expected exactly 5 events");
        check_int "no span left open" 0 (Telemetry.current_span ()))
    ; t "a raising span closes with raised=true and re-raises" (fun () ->
        let raised, evs =
          observed (fun () ->
              try
                Telemetry.span "boom" (fun () : unit -> failwith "no");
                false
              with Failure _ -> true)
        in
        check_bool "exception propagated" true raised;
        check_int "span closed" 0 (Telemetry.current_span ());
        match List.rev evs with
        | last :: _ ->
          check_bool "raised field" true
            (List.assoc_opt "raised" last.Telemetry.fields = Some (Telemetry.Bool true))
        | [] -> Alcotest.fail "no events")
    ; t "disabled spans are transparent" (fun () ->
        Telemetry.disable ();
        check_int "result passes through" 7 (Telemetry.span "x" (fun () -> 7));
        check_int "no span opened" 0 (Telemetry.current_span ()))
  ]

(* ------------------------------------------------------------------ *)
(* Ring buffer                                                         *)
(* ------------------------------------------------------------------ *)

let ring =
  [ t "eviction is oldest-first with a dropped count" (fun () ->
        let (), evs =
          observed ~capacity:4 (fun () ->
              for i = 1 to 6 do
                Telemetry.event (Printf.sprintf "ev%d" i)
              done)
        in
        Alcotest.(check (list string)) "retained tail"
          [ "ev3"; "ev4"; "ev5"; "ev6" ]
          (List.map (fun (e : Telemetry.event) -> e.name) evs))
    ; t "dropped and clear" (fun () ->
        let r = Telemetry.Ring.create 2 in
        Telemetry.reset ();
        Telemetry.clear_sinks ();
        Telemetry.add_sink (Telemetry.Ring.sink r);
        Telemetry.enable ();
        Fun.protect
          ~finally:(fun () ->
            Telemetry.disable ();
            Telemetry.clear_sinks ();
            Option.iter Recorder.install (Recorder.global ()))
          (fun () ->
            for _ = 1 to 5 do
              Telemetry.event "e"
            done;
            check_int "length capped" 2 (Telemetry.Ring.length r);
            check_int "dropped" 3 (Telemetry.Ring.dropped r);
            Telemetry.Ring.clear r;
            check_int "cleared" 0 (Telemetry.Ring.length r);
            check_int "dropped reset" 0 (Telemetry.Ring.dropped r)))
  ]

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let metrics =
  [ t "counters are monotone and gated on the enable flag" (fun () ->
        Telemetry.reset ();
        let c = Telemetry.counter "test_counter_total" in
        Telemetry.disable ();
        Telemetry.incr c;
        check_int "disabled incr is a no-op" 0 (Telemetry.counter_value c);
        Telemetry.enable ();
        Fun.protect
          ~finally:(fun () -> Telemetry.disable ())
          (fun () ->
            Telemetry.incr c;
            Telemetry.add c 4;
            check_int "enabled bumps" 5 (Telemetry.counter_value c)))
    ; t "gauges track value and high-watermark" (fun () ->
        Telemetry.reset ();
        let g = Telemetry.gauge "test_gauge" in
        Telemetry.enable ();
        Fun.protect
          ~finally:(fun () -> Telemetry.disable ())
          (fun () ->
            Telemetry.set_gauge g 5.;
            Telemetry.set_gauge g 3.;
            Alcotest.(check (float 0.)) "value" 3. (Telemetry.gauge_value g);
            Alcotest.(check (float 0.)) "hwm" 5. (Telemetry.gauge_hwm g))
    )
    ; t "histograms count and sum observations" (fun () ->
        Telemetry.reset ();
        let h = Telemetry.histogram "test_ns" in
        Telemetry.enable ();
        Fun.protect
          ~finally:(fun () -> Telemetry.disable ())
          (fun () ->
            Telemetry.observe h 150L;
            Telemetry.observe h 90_000L;
            check_int "count" 2 (Telemetry.histogram_count h);
            Alcotest.(check (float 0.)) "sum" 90_150. (Telemetry.histogram_sum h))
    )
    ; t "histogram overflow counts into +Inf and the _overflow probe" (fun () ->
        Telemetry.reset ();
        let h = Telemetry.histogram "test_ovf_ns" in
        Telemetry.enable ();
        Fun.protect
          ~finally:(fun () -> Telemetry.disable ())
          (fun () ->
            Telemetry.observe h 150L;
            (* above the largest finite bucket bound (1e8 ns) *)
            Telemetry.observe h 200_000_000L;
            check_int "count includes the overflow" 2 (Telemetry.histogram_count h);
            check_int "overflow tally" 1 (Telemetry.histogram_overflow h);
            Alcotest.(check (float 0.)) "sum includes the overflow" 200_000_150.
              (Telemetry.histogram_sum h);
            let text = Telemetry.expose () in
            let has needle =
              let n = String.length needle and l = String.length text in
              let rec go i = i + n <= l && (String.sub text i n = needle || go (i + 1)) in
              go 0
            in
            check_bool "+Inf bucket equals _count" true
              (has "test_ovf_ns_bucket{le=\"+Inf\"} 2");
            check_bool "largest finite bucket misses the overflow" true
              (has "test_ovf_ns_bucket{le=\"100000000\"} 1");
            check_bool "saturation is visible as a probe" true
              (has "test_ovf_ns_overflow 1")))
    ; t "same name with a different type is rejected" (fun () ->
        Telemetry.reset ();
        ignore (Telemetry.counter "test_clash");
        (match Telemetry.gauge "test_clash" with
        | _ -> Alcotest.fail "expected Invalid_argument"
        | exception Invalid_argument _ -> ()))
    ; t "exposition lists metrics sorted and includes probes" (fun () ->
        Telemetry.reset ();
        Telemetry.enable ();
        Fun.protect
          ~finally:(fun () -> Telemetry.disable ())
          (fun () ->
            Telemetry.incr (Telemetry.counter "test_counter_total");
            let text = Telemetry.expose () in
            let has needle =
              let n = String.length needle and l = String.length text in
              let rec go i = i + n <= l && (String.sub text i n = needle || go (i + 1)) in
              go 0
            in
            check_bool "counter present" true (has "test_counter_total 1");
            check_bool "engine probe present" true (has "engine_successor_cache_hits");
            check_bool "state probe present" true (has "state_transitions_total")))
  ]

(* ------------------------------------------------------------------ *)
(* JSONL round-trip                                                    *)
(* ------------------------------------------------------------------ *)

let jsonl =
  [ t "event_to_json round-trips through Jsonl.parse_line" (fun () ->
        let (), evs =
          observed (fun () ->
              Telemetry.event "weird"
                ~fields:
                  [ ("action", Telemetry.Str "a\"b\\c\nd");
                    ("ok", Telemetry.Bool true); ("n", Telemetry.Int (-3));
                    ("r", Telemetry.Float 1.5)
                  ])
        in
        let ev = List.hd evs in
        match Telemetry.Jsonl.parse_line (Telemetry.event_to_json ev) with
        | None -> Alcotest.fail "did not parse back"
        | Some p ->
          Alcotest.(check string) "name" ev.Telemetry.name p.Telemetry.name;
          check_int "seq" ev.Telemetry.seq p.Telemetry.seq;
          check_bool "fields survive escaping" true
            (List.assoc_opt "action" p.Telemetry.fields
            = Some (Telemetry.Str "a\"b\\c\nd"));
          check_bool "bool field" true
            (List.assoc_opt "ok" p.Telemetry.fields = Some (Telemetry.Bool true)))
    ; t "trace ids are stamped on events and survive the round-trip" (fun () ->
        let tid, evs =
          observed (fun () ->
              Telemetry.in_new_trace (fun () ->
                  Telemetry.event "tr";
                  Telemetry.current_trace ()))
        in
        let ev = List.hd evs in
        check_bool "a fresh id was minted" true (tid > 0);
        check_int "event stamped with the ambient trace" tid ev.Telemetry.trace;
        match Telemetry.Jsonl.parse_line (Telemetry.event_to_json ev) with
        | None -> Alcotest.fail "did not parse back"
        | Some p -> check_int "trace round-trips" tid p.Telemetry.trace)
    ; t "accepted_actions keeps only committed actions, in order" (fun () ->
        let trace =
          String.concat "\n"
            [ {|{"seq":1,"ts":0,"ev":"point","name":"engine.try_action","action":"a(1)","commit":true}|};
              {|{"seq":2,"ts":0,"ev":"point","name":"engine.try_action","action":"b","commit":false}|};
              {|{"seq":3,"ts":0,"ev":"point","name":"mqueue.enqueue","queue":"q"}|};
              "this line is not JSON";
              {|{"seq":4,"ts":0,"ev":"point","name":"engine.force","action":"c","commit":true}|}
            ]
        in
        Alcotest.(check (list string)) "committed subsequence" [ "a(1)"; "c" ]
          (Telemetry.Jsonl.accepted_actions trace))
  ]

(* ------------------------------------------------------------------ *)
(* Instrumented layers: counters and watermarks reflect real activity  *)
(* ------------------------------------------------------------------ *)

let layers =
  [ t "mqueue tracks depth and high-watermark" (fun () ->
        let q = Interaction_manager.Mqueue.create ~name:"q" in
        List.iter (Interaction_manager.Mqueue.send q) [ 1; 2; 3 ];
        check_int "depth" 3 (Interaction_manager.Mqueue.depth q);
        ignore (Interaction_manager.Mqueue.receive q);
        Interaction_manager.Mqueue.ack q;
        check_int "depth after ack" 2 (Interaction_manager.Mqueue.depth q);
        Interaction_manager.Mqueue.send q 4;
        check_int "hwm stays at the peak" 3
          (Interaction_manager.Mqueue.high_watermark q))
    ; t "state memo caches report hits once a trace repeats" (fun () ->
        (* pin the interpreted kernel: with compilation on, the repeated
           trace is answered from the automaton tables and never reaches
           the transition memo cache under test *)
        State.set_compilation false;
        Fun.protect ~finally:(fun () -> State.set_compilation true) @@ fun () ->
        State.reset_cache_stats ();
        let feed () =
          let s = Engine.create !"(a - b)* || (c - d)*" in
          List.iter (fun x -> ignore (Engine.try_action s x)) (w "a c b d a b")
        in
        feed ();
        feed ();
        let cs = State.cache_stats () in
        check_bool "trans cache hit" true (cs.State.trans_hits > 0);
        check_bool "some trans misses too" true (cs.State.trans_misses > 0))
    ; t "successor cache reports the grant-loop hit" (fun () ->
        Engine.reset_successor_cache_stats ();
        let s = Engine.create !"(a - b)*" in
        check_bool "permitted" true (Engine.permitted s (a1 "a"));
        check_bool "committed" true (Engine.try_action s (a1 "a"));
        let hits, _ = Engine.successor_cache_stats () in
        check_bool "one hit recorded" true (hits >= 1))
    ; t "engine counters line up with a small session" (fun () ->
        let (), _ =
          observed (fun () ->
              Telemetry.reset ();
              let s = Engine.create !"a - b" in
              ignore (Engine.try_action s (a1 "a"));
              ignore (Engine.try_action s (a1 "z"));
              check_int "actions" 2
                (Telemetry.counter_value (Telemetry.counter "engine_actions_total"));
              check_int "accepted" 1
                (Telemetry.counter_value (Telemetry.counter "engine_accepted_total"));
              check_int "rejected" 1
                (Telemetry.counter_value (Telemetry.counter "engine_rejected_total")))
        in
        ())
  ]

let () =
  Alcotest.run "telemetry"
    [ ("no-observer-effect", [ no_observer_effect_engine; no_observer_effect_manager ]);
      ("spans", spans); ("ring", ring); ("metrics", metrics); ("jsonl", jsonl);
      ("layers", layers)
    ]
