(* Unit tests of the operational state model itself: session mechanics
   (Fig. 9's action problem), state sizes, optimization behaviour, and the
   growth profiles that Section 6's complexity analysis describes. *)

open Interaction
open Testutil

let t name f = Alcotest.test_case name `Quick f

let session =
  [ t "action problem accepts and rejects (Fig. 9)" (fun () ->
        let s = Engine.create !"a - b" in
        Alcotest.(check bool) "reject b" false (Engine.try_action s (a1 "b"));
        Alcotest.(check bool) "accept a" true (Engine.try_action s (a1 "a"));
        Alcotest.(check bool) "reject a" false (Engine.try_action s (a1 "a"));
        Alcotest.(check bool) "accept b" true (Engine.try_action s (a1 "b"));
        Alcotest.(check bool) "final" true (Engine.is_final s);
        Alcotest.(check int) "trace" 2 (List.length (Engine.trace s)));
    t "rejected actions leave the state unchanged" (fun () ->
        let s = Engine.create !"a - b" in
        ignore (Engine.try_action s (a1 "a"));
        let size_before = Engine.state_size s in
        Alcotest.(check bool) "reject" false (Engine.try_action s (a1 "c"));
        Alcotest.(check int) "size unchanged" size_before (Engine.state_size s);
        Alcotest.(check bool) "still accepts b" true (Engine.try_action s (a1 "b")));
    t "permitted is tentative" (fun () ->
        let s = Engine.create !"a" in
        Alcotest.(check bool) "permitted" true (Engine.permitted s (a1 "a"));
        Alcotest.(check bool) "not consumed" true (Engine.permitted s (a1 "a"));
        Alcotest.(check int) "trace empty" 0 (List.length (Engine.trace s)));
    t "feed returns rejected actions" (fun () ->
        let s = Engine.create !"(a - b)*" in
        let rejected = Engine.feed s (w "a a b b") in
        Alcotest.(check int) "rejected" 2 (List.length rejected);
        (* a [a rejected] b [b rejected] — trace is a b *)
        Alcotest.(check bool) "final" true (Engine.is_final s));
    t "force can kill a session" (fun () ->
        let s = Engine.create !"a" in
        Alcotest.(check bool) "dies" false (Engine.force s (a1 "b"));
        Alcotest.(check bool) "dead" false (Engine.is_alive s);
        Alcotest.(check bool) "stays dead" false (Engine.try_action s (a1 "a"));
        Alcotest.(check int) "size 0" 0 (Engine.state_size s));
    t "reset restores the initial state" (fun () ->
        let s = Engine.create !"a" in
        ignore (Engine.force s (a1 "b"));
        Engine.reset s;
        Alcotest.(check bool) "alive" true (Engine.is_alive s);
        Alcotest.(check bool) "accepts" true (Engine.try_action s (a1 "a")));
    t "copy is independent" (fun () ->
        let s = Engine.create !"a - b" in
        ignore (Engine.try_action s (a1 "a"));
        let s' = Engine.copy s in
        ignore (Engine.try_action s' (a1 "b"));
        Alcotest.(check bool) "copy final" true (Engine.is_final s');
        Alcotest.(check bool) "original not" false (Engine.is_final s));
    t "word equals incremental session" (fun () ->
        let e = !"(a | b - c)*" in
        let input = w "a b c a" in
        let s = Engine.create e in
        let rejected = Engine.feed s input in
        Alcotest.(check int) "none rejected" 0 (List.length rejected);
        Alcotest.check verdict "verdict" (Engine.word e input)
          (if Engine.is_final s then Semantics.Complete else Semantics.Partial))
  ]

(* Growth of state sizes (Section 6). *)
let growth =
  [ t "quasi-regular state size stays constant" (fun () ->
        let e = !"(a - b)* || (c | d)*" in
        let s = Engine.create e in
        let sizes =
          List.map
            (fun c ->
              ignore (Engine.try_action s (a1 c));
              Engine.state_size s)
            [ "a"; "c"; "b"; "d"; "a"; "b"; "c"; "d"; "a"; "b" ]
        in
        let mx = List.fold_left max 0 sizes and mn = List.fold_left min 1000 sizes in
        Alcotest.(check bool) (Printf.sprintf "bounded (%d..%d)" mn mx) true (mx - mn <= 4));
    t "uniformly quantified growth is linear in touched values" (fun () ->
        let e = !"all p: [(u(p) - e(p))*]" in
        let s = Engine.create e in
        let size_for n =
          Engine.reset s;
          for i = 1 to n do
            assert (Engine.try_action s (Action.conc "u" [ string_of_int i ]))
          done;
          Engine.state_size s
        in
        let s4 = size_for 4 and s8 = size_for 8 in
        (* linear: doubling values roughly doubles the size *)
        Alcotest.(check bool)
          (Printf.sprintf "linear-ish (%d -> %d)" s4 s8)
          true
          (s8 < 3 * s4));
    t "malignant expression grows exponentially" (fun () ->
        (* Non-uniform quantifier: b does not mention p, so every b is
           ambiguous between all materialized instances (E3's expression). *)
        let e = !"all p: (a(p) - b - c(p))" in
        let s = Engine.create e in
        let n = 8 in
        for i = 1 to n do
          assert (Engine.try_action s (Action.conc "a" [ string_of_int i ]))
        done;
        let after_a = Engine.state_size s in
        for _ = 1 to n / 2 do
          assert (Engine.try_action s (a1 "b"))
        done;
        let after_b = Engine.state_size s in
        (* C(8,4) = 70 alternatives ≫ the linear part *)
        Alcotest.(check bool)
          (Printf.sprintf "exploded (%d -> %d)" after_a after_b)
          true
          (after_b > 20 * after_a))
  ]

(* Point checks of the state-model structure. *)
let structure =
  [ t "initial state is valid and sized" (fun () ->
        let s = State.init !"a - b" in
        Alcotest.(check bool) "size > 0" true (State.size s > 0);
        Alcotest.(check bool) "not final" false (State.final s));
    t "initial state of option is final" (fun () ->
        Alcotest.(check bool) "final" true (State.final (State.init !"[a]")));
    t "initial state of iteration is final" (fun () ->
        Alcotest.(check bool) "final" true (State.final (State.init !"a*")));
    t "trans on foreign action is null" (fun () ->
        Alcotest.(check bool) "null" true (State.trans (State.init !"a") (a1 "z") = None));
    t "trans_word runs a whole word" (fun () ->
        match State.trans_word (State.init !"a - b") (w "a b") with
        | Some s -> Alcotest.(check bool) "final" true (State.final s)
        | None -> Alcotest.fail "expected a valid state");
    t "dedup: equivalent alternatives collapse" (fun () ->
        (* (a | a) produces two identical branches; the Or state stays small *)
        let s = State.init !"(a - b) | (a - b)" in
        match State.trans s (a1 "a") with
        | Some s' -> Alcotest.(check bool) "small" true (State.size s' <= 7)
        | None -> Alcotest.fail "expected valid");
    t "structural equality of states" (fun () ->
        let s1 = State.trans_word (State.init !"(a - b)*") (w "a b") in
        let s2 = State.trans_word (State.init !"(a - b)*") (w "a b a b") in
        match (s1, s2) with
        | Some s1, Some s2 ->
          Alcotest.(check bool) "iteration states repeat" true (State.equal s1 s2)
        | _ -> Alcotest.fail "expected valid states");
    t "pp produces output" (fun () ->
        let s = State.init !"some p: (a(p) || b) - c*" in
        Alcotest.(check bool) "nonempty" true
          (String.length (Format.asprintf "%a" State.pp s) > 0))
  ]

(* The resurrection trap: a materialized instance that dies must not be
   re-created from the template later (regression guard for the dead-value
   tracking in the disjunction quantifier). *)
let resurrection =
  [ t "dead instances stay dead" (fun () ->
        let e = !"some p: ((a(p) - a(p)) | b)" in
        (* instance 1 dies after a(1) a(1) x? — craft: after a(1), instance 1
           alive, template alive via...  a(1) kills template (no p-free atom
           matches), materializes instance 1.  Then b: instance 1 expects
           a(1) → dies.  Word a(1) b must be illegal, and a later a(1) must
           not resurrect instance 1. *)
        check_both e "a(1) b" Semantics.Illegal;
        check_both e "a(1) a(1)" Semantics.Complete);
    t "oracle agreement on a re-materialization pattern" (fun () ->
        let e = !"some p: (c - a(p)) | (c - b)" in
        check_both e "c b" Semantics.Complete;
        check_both e "c a(5)" Semantics.Complete;
        check_both e "c a(5) b" Semantics.Illegal)
  ]

(* Hash-consing: structurally equal states are physically equal, ids are
   stable, and the grant loop commits a cached successor instead of
   recomputing the transition. *)
let hashcons_prop =
  to_alcotest
    (QCheck.Test.make ~count:200
       ~name:"hash-consed equality agrees with structural equality"
       (expr_word_arb ~max_depth:3 ~max_len:6 ())
       (fun (e, word) ->
         (* two independently built sessions over the same trace *)
         let states_along () =
           let s = Engine.create e in
           List.fold_left
             (fun acc a ->
               if Engine.try_action s a then Option.get (Engine.state s) :: acc
               else acc)
             [ Option.get (Engine.state s) ]
             word
         in
         let xs = states_along () and ys = states_along () in
         let sexp s = Sexp.to_string (State.to_sexp s) in
         List.iter
           (fun x ->
             List.iter
               (fun y ->
                 let structural = String.equal (sexp x) (sexp y) in
                 if State.equal x y <> structural then
                   QCheck.Test.fail_reportf "equal=%b but structural=%b for %s"
                     (State.equal x y) structural (sexp x))
               ys)
           xs;
         true))

let hashcons_unit =
  [ t "independently built equal states are physically equal" (fun () ->
        let s1 = State.init !"(a - b)*" and s2 = State.init !"(a - b)*" in
        Alcotest.(check bool) "physically equal" true (s1 == s2);
        Alcotest.(check int) "same id" (State.id s1) (State.id s2);
        Alcotest.(check int) "same hash" (State.hash s1) (State.hash s2));
    t "sexp round-trip lands on the same hash-consed node" (fun () ->
        let s = Option.get (State.trans_word (State.init !"(a | b - c)*") (w "b c")) in
        let s' = State.of_sexp (State.to_sexp s) in
        Alcotest.(check bool) "equal" true (State.equal s s');
        Alcotest.(check int) "same id" (State.id s) (State.id s'));
    t "permitted then try_action performs a single transition" (fun () ->
        let s = Engine.create !"(a - b)*" in
        let before = State.transitions () in
        Alcotest.(check bool) "permitted" true (Engine.permitted s (a1 "a"));
        Alcotest.(check bool) "committed" true (Engine.try_action s (a1 "a"));
        Alcotest.(check int) "one transition" 1 (State.transitions () - before));
    t "without the successor cache the same path transitions twice" (fun () ->
        Engine.set_successor_cache false;
        Fun.protect
          ~finally:(fun () -> Engine.set_successor_cache true)
          (fun () ->
            let s = Engine.create !"(a - b)*" in
            let before = State.transitions () in
            Alcotest.(check bool) "permitted" true (Engine.permitted s (a1 "a"));
            Alcotest.(check bool) "committed" true (Engine.try_action s (a1 "a"));
            Alcotest.(check int) "two transitions" 2 (State.transitions () - before)));
    t "force on a dead session is a no-op returning false" (fun () ->
        let s = Engine.create !"a" in
        Alcotest.(check bool) "accept a" true (Engine.try_action s (a1 "a"));
        Alcotest.(check bool) "dies" false (Engine.force s (a1 "z"));
        Alcotest.(check int) "killing action is traced" 2
          (List.length (Engine.trace s));
        Alcotest.(check bool) "dead force fails" false (Engine.force s (a1 "a"));
        Alcotest.(check int) "trace untouched" 2 (List.length (Engine.trace s)))
  ]

(* Canonical-form invariants hold along every reachable state. *)
let invariants_prop =
  to_alcotest
    (QCheck.Test.make ~count:250 ~name:"states stay canonical under transitions"
       (expr_word_arb ~max_depth:3 ~max_len:6 ())
       (fun (e, word) ->
         let s = Engine.create e in
         (match State.check_invariants (Option.get (Engine.state s)) with
         | Ok () -> ()
         | Error m -> QCheck.Test.fail_reportf "initial state: %s" m);
         List.iter
           (fun a ->
             if Engine.try_action s a then
               match State.check_invariants (Option.get (Engine.state s)) with
               | Ok () -> ()
               | Error m ->
                 QCheck.Test.fail_reportf "after %s: %s" (Action.concrete_to_string a) m)
           word;
         true))

let invariants_unit =
  [ t "invariants hold on the medical constraint under load" (fun () ->
        let s = Engine.create (Wfms.Medical.combined_constraint ()) in
        for i = 1 to 6 do
          let p = "p" ^ string_of_int i in
          ignore (Engine.try_action s (Action.conc "call_s" [ p; "sono" ]))
        done;
        match State.check_invariants (Option.get (Engine.state s)) with
        | Ok () -> ()
        | Error m -> Alcotest.fail m)
  ]

let () =
  Alcotest.run "state"
    [ ("session", session); ("growth", growth); ("structure", structure);
      ("resurrection", resurrection);
      ("hashcons", hashcons_prop :: hashcons_unit);
      ("invariants", invariants_prop :: invariants_unit)
    ]
