The word problem (Fig. 9); the verdict is also the exit status (2/1/0).

  $ ../bin/iexpr.exe word "some x: (a(x) - b(x))*" "a(1) b(1)"
  complete
  [2]
  $ ../bin/iexpr.exe word "a - b" "a"
  partial
  [1]
  $ ../bin/iexpr.exe word "a - b" "b"
  illegal

Complexity classification (Section 6).

  $ ../bin/iexpr.exe classify "all p: mutex(some x: call(p,x) - perform(p,x))"
  expression size:        6 nodes
  quasi-regular:          no
  parameterless:          no
  uniformly quantified:   yes
  completely quantified:  yes
  verdict:                benign (polynomial state growth, estimated degree 2)

Language enumeration.

  $ ../bin/iexpr.exe lang "(a - b - c)# & (a* - b* - c*)" --max-len 6
  <empty word>
  a b c
  a a b b c c
  -- 3 complete word(s) of length <= 6 over 3 action(s)

Simplification and user-defined operators.

  $ ../bin/iexpr.exe simplify "def twice(x) = x - x; twice(a | a)" 2>/dev/null
  a - a

Dead ends and equivalence.

  $ ../bin/iexpr.exe deadend "(a - b) & (b - a)"
  exploration: states=1 final=0 dead=1
  DEAD END: some permissible sequence can never be completed
  [1]
  $ ../bin/iexpr.exe equiv "a | b" "b | a"
  equivalent (over the explored instantiation)
  $ ../bin/iexpr.exe equiv "a - b" "b - a"
  NOT equivalent; separating word: a
  [1]

Auditing a log.

  $ cat > log.txt <<'LOG'
  > a(1)        # fine
  > b(1)
  > b(1)        # the constraint forbids a second b(1)
  > LOG
  $ ../bin/iexpr.exe audit "some x: (a(x) - b(x))*" --log log.txt
  events=3 accepted=2 foreign=0 issues=1 complete=true
    event 2: b(1) is not permitted at this point
  [1]

Growth profiling.

  $ ../bin/iexpr.exe profile "(a - b)*" "a b a b a b"
  accepted actions: 6 (rejected 0)
  max state size:   3
  final state size: 3
  measured growth:  constant
  classification:   harmless (constant transition cost)
  agreement:        true

The interaction manager server (Fig. 10 protocols).

  $ printf 'ASK u call_s(p,sono)\nCONFIRM u call_s(p,sono)\nPERMITTED call_s(p,endo)\nSTATE\nQUIT\n' \
  >   | ../bin/imanager.exe "all p: mutex(some x: activity(call(?p,?x)) - activity(perform(?p,?x)))"
  READY 10
  GRANTED
  OK
  NO
  STATE 7

Denial provenance: the first rejected action of a word is attributed to
the minimal set of blocking subexpression nodes.

  $ ../bin/iexpr.exe explain "a & (b - a)" "a"
  denied: a
    - and.right/seq.left/atom b: expects b, not a (can accept: b)
    at position 0 of the word
  [1]
  $ ../bin/iexpr.exe explain "a - b" "a b"
  accepted: the whole word is a partial word (and complete)

The manager server answers EXPLAIN with the same blame set, and a DENIED
reply carries the one-line reason.  Every command runs in its own trace:
the denial's whole causal chain shares one trace id in the JSONL export.

  $ printf 'ASK u b\nEXPLAIN b\nEXECUTE u a\nQUIT\n' \
  >   | ../bin/imanager.exe --trace m.jsonl "a - b"
  READY 3
  DENIED seq.left/atom a: expects a, not b
  BLAME seq.left/atom a: expects a, not b (can accept: a)
  OK
  EXECUTED
  $ grep '"trace":1' m.jsonl | sed 's/.*"name":"\([a-z._]*\)".*/\1/'
  manager.ask
  engine.eval
  manager.denied
  manager.ask

Tree view of an interaction graph.

  $ ../bin/iexpr.exe show "all p: (prep(p) | call(p) - perform(p))*"
  └─ for all p
     └─ loop
        └─ either-or (1 of n)
           ├─ prep(?p)
           └─ path
              ├─ call(?p)
              └─ perform(?p)

The workbench drives the whole toolbox.

  $ printf 'do a\ndo a\ndo b\nstate\nquit\n' | ../bin/iworkbench.exe "a - b" | cat
  loaded: a - b
  > Accept.
  > Reject.
  > Accept. (complete)
  > state: 2 nodes, final (trace is a complete word)
  > bye

Telemetry: the workbench collects events into a ring, exposes metrics, and
exports the trace as JSONL.

  $ printf 'telemetry on\ndo a\ndo a\ndo b\nmetrics\ntrace t.jsonl\nquit\n' \
  >   | ../bin/iworkbench.exe "a - b" | sed 's/^> //' \
  >   | grep -E 'telemetry|engine_(actions|accepted|rejected)_total [0-9]|wrote'
  telemetry enabled (ring capacity 8192)
  engine_accepted_total 2
  engine_actions_total 3
  engine_rejected_total 1
  wrote 3 event(s) to t.jsonl (0 dropped)

The exported JSONL trace replays offline: its committed actions are the log.

  $ ../bin/iexpr.exe audit --jsonl "a - b" --log t.jsonl
  events=2 accepted=2 foreign=0 issues=0 complete=true

The manager server exposes the same registry and dumps periodic stats.

  $ printf 'EXECUTE u a\nEXECUTE u b\nMETRICS\nQUIT\n' \
  >   | ../bin/imanager.exe "a - b" \
  >   | grep -E '^(READY|EXECUTED|REFUSED|manager_(asks|grants|confirms)_total)'
  READY 3
  EXECUTED
  EXECUTED
  manager_asks_total 2
  manager_confirms_total 2
  manager_grants_total 2

(the estimated execute_p50/p99 suffix is timing-dependent, so it is
stripped before comparing)

  $ printf 'EXECUTE u a\nEXECUTE u b\nQUIT\n' \
  >   | ../bin/imanager.exe --stats-every 2 "a - b" 2>&1 >/dev/null \
  >   | sed 's/ execute_p[0-9]*_ns=[0-9]*//g'
  STATS asks=2 grants=2 denials=0 busies=0 confirms=2 aborts=0 transitions=2 foreign=0 informs=0 subscribes=0 unsubscribes=0 timeouts=0

The manager server shards a disjoint coupling across domains: per-shard
protocols, open-world foreign grants, and no cross-shard coordination.
Checkpoints are per-replica and refuse politely in sharded mode.

  $ printf 'EXECUTE u a\nEXECUTE u c\nASK v e\nCONFIRM v e\nPERMITTED b\nPERMITTED a\nSTATE\nCHECKPOINT x\nQUIT\n' \
  >   | ../bin/imanager.exe --domains 4 "(a - b) @ (c - d) @ (e - f) @ (g - h)"
  READY 15
  SHARDS 4 DOMAINS 4
  EXECUTED
  EXECUTED
  GRANTED
  OK
  YES
  NO
  STATE 8
  ERROR checkpoints are per-replica; not available in sharded mode

  $ printf 'EXECUTE u a\nEXECUTE u zz\nQUIT\n' \
  >   | ../bin/imanager.exe --domains 2 --stats-every 2 "(a - b) @ (c - d)" 2>&1 >/dev/null \
  >   | sed 's/ execute_p[0-9]*_ns=[0-9]*//g'
  STATS asks=1 grants=1 denials=0 busies=0 confirms=1 aborts=0 transitions=1 foreign=0 informs=0 subscribes=0 unsubscribes=0 timeouts=0 shards=2 coordinations=0 foreign_grants=1

The workbench cross-checks every action against a parallel mirror.

  $ printf 'do a\ndo c\ndo a\nstate\nquit\n' | ../bin/iworkbench.exe --domains 2 "(a - b) @ (c - d)" | cat
  parallel mirror: 2 shards on 2 domains
  loaded: a - b @ c - d
  > Accept.
  > Accept.
  > Reject.
  > state: 5 nodes, not final
  mirror: 2 shard(s), 4 nodes, not final
  > bye

The compiled transition kernel is on by default; the workbench [compile]
command shows the shared automaton's shape and the step counters, and
[--no-compile] switches both tools back to the interpreted kernel.

  $ printf 'do a\ncompile\ndo b\ncompile\nquit\n' | ../bin/iworkbench.exe "(a - b)*"
  loaded: (a - b)*
  > Accept.
  > compilation: on
  backend: vm (3 state(s), 2 column(s))
  steps: 0 (0 interpreted fallback(s))
  signature cache: 0 hit(s), 0 miss(es)
  vm steps: 1 (0 fallback(s)); 1 program(s), 0 compile failure(s)
  > Accept. (complete)
  > compilation: on
  backend: vm (3 state(s), 2 column(s))
  steps: 0 (0 interpreted fallback(s))
  signature cache: 0 hit(s), 0 miss(es)
  vm steps: 2 (0 fallback(s)); 1 program(s), 0 compile failure(s)
  > bye

  $ printf 'do a\ncompile\nquit\n' | ../bin/iworkbench.exe --no-compile "(a - b)*"
  loaded: (a - b)*
  > Accept.
  > compilation: off
  backend: interp
  steps: 0 (0 interpreted fallback(s))
  signature cache: 0 hit(s), 0 miss(es)
  vm steps: 0 (0 fallback(s)); 0 program(s), 0 compile failure(s)
  > bye

  $ printf 'EXECUTE u a\nEXECUTE u b\nEXECUTE u a\nQUIT\n' \
  >   | ../bin/imanager.exe --no-compile "a - b" \
  >   | grep -E '^(READY|EXECUTED|REFUSED)'
  READY 3
  EXECUTED
  EXECUTED
  REFUSED

The tri-state engine flag: [--engine table] pins the lazy automaton,
[--engine interp] the interpreted kernel, [--engine vm] forces bytecode
compilation; the workbench [compile] command names the active backend.

  $ printf 'do a\ncompile\nquit\n' | ../bin/iworkbench.exe --engine table "(a - b)*"
  loaded: (a - b)*
  > Accept.
  > compilation: on
  backend: table
  automaton: eager, 3 row(s), 3 signature(s)
  steps: 1 (6 interpreted fallback(s))
  signature cache: 5 hit(s), 2 miss(es)
  vm steps: 0 (0 fallback(s)); 0 program(s), 0 compile failure(s)
  > bye

  $ printf 'do a\ncompile\nquit\n' | ../bin/iworkbench.exe --engine interp "(a - b)*"
  loaded: (a - b)*
  > Accept.
  > compilation: on
  backend: interp
  steps: 0 (0 interpreted fallback(s))
  signature cache: 0 hit(s), 0 miss(es)
  vm steps: 0 (0 fallback(s)); 0 program(s), 0 compile failure(s)
  > bye

  $ printf 'EXECUTE u a\nEXECUTE u b\nEXECUTE u a\nQUIT\n' \
  >   | ../bin/imanager.exe --engine vm "a - b" \
  >   | grep -E '^(READY|EXECUTED|REFUSED)'
  READY 3
  EXECUTED
  EXECUTED
  REFUSED

  $ printf 'QUIT\n' | ../bin/imanager.exe --engine warp "a - b"
  imanager: unknown engine "warp" (expected interp|table|vm|auto)
  usage: imanager [--stats-every N] [--trace FILE] [--domains N] [--overlap-shards] [--no-compile] [--engine interp|table|vm|auto] [--store DIR] [--no-fsync] [--snapshot-every N] [--slow-ms N] [--slow-trace FILE] "<interaction expression>"
  [2]

Ahead-of-time compilation: [iexpr compile] flattens an expression to a
flat program; [-o] frames it as a versioned, checksummed artifact that
[iexpr run --program] executes without deriving any state DAG.

  $ ../bin/iexpr.exe compile "(a - b)*"
  compiled: 3 states, 2 columns

  $ ../bin/iexpr.exe compile "(a - b)*" -o prog.iex
  wrote prog.iex: 3 states, 2 columns

  $ printf 'a\nb\nb\n' | ../bin/iexpr.exe run --program prog.iex
  program: (a - b)* (3 states, 2 columns)
  enter one concrete action per line (EOF to stop)
  Accept.
  Accept. (complete)
  Reject.
  trace: a b

  $ ../bin/iexpr.exe compile "(a - b)#"
  iexpr compile: (a - b)# does not flatten to a bytecode program
    (the alphabet must be ground and the reachable state space must close within the row cap; expression size:        4 nodes
  quasi-regular:          no
  parameterless:          yes
  uniformly quantified:   yes
  completely quantified:  yes
  verdict:                potentially malignant (exponential growth not excluded))
  [1]

A damaged artifact is rejected up front (all-or-nothing framing), never
half-executed.

  $ head -c 21 prog.iex > torn.iex
  $ ../bin/iexpr.exe run --program torn.iex < /dev/null
  iexpr run: program artifact: truncated payload
  [2]

Witness words.

  $ ../bin/iexpr.exe witness "some x: (a(x) - b(x) - c(x))"
  a(v1) b(v1) c(v1)
  $ ../bin/iexpr.exe witness "(a - b) & (b - a)"
  no complete word found within the bound
  [1]

Durable manager: --store attaches a write-ahead-logged store; a restart
replays the log (RECOVERED counts the records), SNAPSHOT truncates it so
later restarts replay only the suffix.

  $ printf 'EXECUTE u a\nQUIT\n' | ../bin/imanager.exe --store st "a - b - c"
  READY 5
  RECOVERED 0
  EXECUTED

  $ printf 'SNAPSHOT\nEXECUTE u b\nLOG\nQUIT\n' | ../bin/imanager.exe --store st "a - b - c"
  READY 5
  RECOVERED 1
  OK
  EXECUTED
  a
  b
  OK

  $ printf 'LOG\nQUIT\n' | ../bin/imanager.exe --store st "a - b - c"
  READY 5
  RECOVERED 1
  a
  b
  OK

A store belongs to its expression.

  $ printf 'QUIT\n' | ../bin/imanager.exe --store st "x - y"
  READY 3
  imanager: Durable.open_: store belongs to a different expression
  [1]

Sharded mode logs per shard under the same root.

  $ printf 'EXECUTE u a\nEXECUTE u c\nQUIT\n' \
  >   | ../bin/imanager.exe --domains 2 --store shst "(a - b) @ (c - d)"
  READY 7
  SHARDS 2 DOMAINS 2
  RECOVERED 0
  EXECUTED
  EXECUTED

  $ printf 'LOG\nQUIT\n' | ../bin/imanager.exe --domains 2 --store shst "(a - b) @ (c - d)"
  READY 7
  SHARDS 2 DOMAINS 2
  RECOVERED 2
  a
  c
  OK

The workbench's save-store/recover do the same for a single session.

  $ printf 'do a\nsave-store wb\ndo b\nquit\n' | ../bin/iworkbench.exe "a - b - c" | cat
  loaded: a - b - c
  > Accept.
  > store attached: wb (snapshot written, accepted actions now logged)
  > Accept.
  > bye

  $ printf 'recover wb\ntrace\ndo c\nquit\n' | ../bin/iworkbench.exe | cat
  iworkbench — type `help` for commands
  > recovered: a - b - c (2 actions in trace, 1 WAL record(s) replayed)
  > a b
  > Accept. (complete)
  > bye

Runtime health: the exposition carries the profiler's gc_* and lock_*
metric families (values are timing-dependent, so the golden pins the
sorted names: the per-site counter/histogram quintet and the GC totals
and quantiles).

  $ printf 'EXECUTE u a\nMETRICS\nQUIT\n' | ../bin/imanager.exe "a - b" \
  >   | grep -E '^(gc_[a-z_]+_total|gc_span_minor_words_p[0-9]+|lock_state_stripe_|lock_automaton_fill_)' \
  >   | sed 's/ .*//' | sort
  gc_compactions_total
  gc_major_collections_total
  gc_major_cycles_total
  gc_minor_collections_total
  gc_minor_words_total
  gc_promoted_words_total
  gc_span_minor_words_p50
  gc_span_minor_words_p99
  lock_automaton_fill_acquisitions_total
  lock_automaton_fill_contended_total
  lock_automaton_fill_wait_ns_total
  lock_automaton_fill_wait_p50_ns
  lock_automaton_fill_wait_p99_ns
  lock_state_stripe_acquisitions_total
  lock_state_stripe_contended_total
  lock_state_stripe_wait_ns_total
  lock_state_stripe_wait_p50_ns
  lock_state_stripe_wait_p99_ns

The HEALTH command renders a one-screen snapshot; the section layout is
pinned, the numbers are not.

  $ printf 'EXECUTE u a\nHEALTH\nQUIT\n' | ../bin/imanager.exe "a - b" \
  >   | grep -E '^(READY|OK|==|--)'
  READY 3
  == runtime health ==
  -- lock sites (top contended) --
  -- gc --
  -- scache --
  -- speculation --
  OK

Sharded mode adds the per-domain utilization section.

  $ printf 'EXECUTE u a\nHEALTH\nQUIT\n' \
  >   | ../bin/imanager.exe --domains 2 "(a - b) @ (c - d)" \
  >   | grep -E '^(==|--)'
  == runtime health ==
  -- lock sites (top contended) --
  -- gc --
  -- domains --
  -- scache --
  -- speculation --

The workbench mirrors it as `health`.

  $ printf 'telemetry on\ndo a\nhealth\nquit\n' | ../bin/iworkbench.exe "a - b" \
  >   | sed 's/^> //' | grep -E '^(==|--)'
  == runtime health ==
  -- lock sites (top contended) --
  -- gc --
  -- scache --
  -- speculation --

ibench knows the pinned headline series across bench schemas.

  $ ../bin/ibench.exe metrics
  word_steady_ns                     lower-better  ns/action
  word_table_ns                      lower-better  ns/action
  e1_session_ns                      lower-better  ns/action
  feed_ns                            lower-better  ns/action
  e1_ns_n1600                        lower-better  ns/action
  volatile_word_ns                   lower-better  ns/action
  wal_word_ns                        lower-better  ns/action
  recovery_records_per_s             higher-better rec/s
  shared_word_throughput_d4          higher-better act/s
  overlap_speculation_speedup        higher-better x
  successor_hit_rate                 higher-better ratio
  sig_cache_hit_rate                 higher-better ratio

The gate passes a run within tolerance and fails a degraded one — the
exit code is the CI teeth.

  $ cat > gate_base.json <<'JSON'
  > {"_meta": {"schema_version": 10},
  >  "e20": {"word_vm_ns_per_action": 100.0, "e1_vm_ns_per_action": 400.0}}
  > JSON
  $ cat > gate_good.json <<'JSON'
  > {"_meta": {"schema_version": 10},
  >  "e20": {"word_vm_ns_per_action": 108.0, "e1_vm_ns_per_action": 390.0}}
  > JSON
  $ cat > gate_bad.json <<'JSON'
  > {"_meta": {"schema_version": 10},
  >  "e20": {"word_vm_ns_per_action": 160.0, "e1_vm_ns_per_action": 400.0},
  >  "e22": {"disjoint_d4_lock_state_stripe_wait_p99_ns": 2000000.0}}
  > JSON

  $ ../bin/ibench.exe gate --baseline gate_base.json --current gate_good.json
  metric                             baseline        current     delta  status
  word_steady_ns                          100            108     +8.0%  ok
  e1_session_ns                           400            390     -2.5%  ok
  skipped (absent from one side): word_table_ns, feed_ns, e1_ns_n1600, volatile_word_ns, wal_word_ns, recovery_records_per_s, shared_word_throughput_d4, overlap_speculation_speedup, successor_hit_rate, sig_cache_hit_rate
  gate: PASS (tolerance 15%, 2 metric(s) compared)

  $ ../bin/ibench.exe gate --baseline gate_base.json --current gate_bad.json \
  >   --max-lock-p99-us 500
  metric                             baseline        current     delta  status
  word_steady_ns                          100            160    +60.0%  REGRESSION
  e1_session_ns                           400            400     +0.0%  ok
  e22.disjoint_d4_lock_state_stripe_wait_p99_ns          500 us         2000 us            LOCK P99 OVER BOUND
  skipped (absent from one side): word_table_ns, feed_ns, e1_ns_n1600, volatile_word_ns, wal_word_ns, recovery_records_per_s, shared_word_throughput_d4, overlap_speculation_speedup, successor_hit_rate, sig_cache_hit_rate
  gate: FAIL (tolerance 15%, 3 metric(s) compared)
  [1]
