(* Shared helpers and random generators for the test suites. *)

open Interaction

(* Arm the flight-recorder crash dump: when the CI harness exports
   FLIGHT_RECORDER_DUMP, a failing test binary leaves its retained events
   behind as JSONL for the post-mortem.  A no-op otherwise. *)
let () = Recorder.auto_install ()

let names = [ "a"; "b"; "c" ]
let vals = [ "1"; "2" ]
let params_pool = [ "p"; "q" ]

let ( ! ) s = Syntax.parse_exn s
let w s = Syntax.parse_word_exn s
let a1 s = Syntax.parse_action_exn s

let verdict : Engine.verdict Alcotest.testable =
  Alcotest.testable Semantics.pp_verdict ( = )

let check_word ?(msg = "") e input expected =
  let m = if msg = "" then Syntax.to_string e ^ " / " ^ input else msg in
  Alcotest.check verdict m expected (Engine.word e (w input))

let check_sem ?(msg = "") e input expected =
  let m = if msg = "" then "sem: " ^ Syntax.to_string e ^ " / " ^ input else msg in
  Alcotest.check verdict m expected (Semantics.word e (w input))

let check_both ?msg e input expected =
  check_word ?msg e input expected;
  check_sem ?msg e input expected

(* ------------------------------------------------------------------ *)
(* Random expressions and words                                        *)
(* ------------------------------------------------------------------ *)

open QCheck

let gen_arg bound =
  let open Gen in
  if bound = [] then map Action.value (oneofl vals)
  else
    frequency
      [ (2, map Action.value (oneofl vals)); (3, map Action.param (oneofl bound)) ]

let gen_atom ~names bound =
  let open Gen in
  oneofl names >>= fun name ->
  int_range 0 2 >>= fun n ->
  list_repeat n (gen_arg bound) >>= fun args ->
  return (Expr.Atom (Action.make name args))

let gen_expr_depth ?(names = names) max_depth : Expr.t Gen.t =
  let open Gen in
  let rec go depth bound =
    if depth <= 0 then gen_atom ~names bound
    else
      let sub = go (depth - 1) bound in
      let quant mk =
        oneofl params_pool >>= fun p ->
        go (depth - 1) (p :: bound) >>= fun b -> return (mk p b)
      in
      frequency
        [ (3, gen_atom ~names bound);
          (2, map2 (fun a b -> Expr.Seq (a, b)) sub sub);
          (2, map2 (fun a b -> Expr.Par (a, b)) sub sub);
          (2, map2 (fun a b -> Expr.Or (a, b)) sub sub);
          (1, map2 (fun a b -> Expr.And (a, b)) sub sub);
          (2, map2 (fun a b -> Expr.Sync (a, b)) sub sub);
          (1, map (fun a -> Expr.Opt a) sub);
          (2, map (fun a -> Expr.SeqIter a) sub);
          (1, map (fun a -> Expr.ParIter a) sub);
          (2, quant (fun p b -> Expr.SomeQ (p, b)));
          (1, quant (fun p b -> Expr.AllQ (p, b)));
          (1, quant (fun p b -> Expr.SyncQ (p, b)));
          (1, quant (fun p b -> Expr.AndQ (p, b)))
        ]
  in
  go max_depth []

let expr_arb ?(max_depth = 3) () =
  QCheck.make ~print:Syntax.to_string (gen_expr_depth max_depth)

(* Ground actions matching the expression's alphabet patterns, obtained by
   instantiating parameter positions with small values (so random words have
   a decent chance of being accepted). *)
let universe_of (e : Expr.t) : Action.concrete list =
  let fills = vals @ [ "3" ] in
  let rec inst = function
    | [] -> [ [] ]
    | Alpha.Val v :: rest -> List.map (fun t -> v :: t) (inst rest)
    | (Alpha.Bound _ | Alpha.Free _) :: rest ->
      let tails = inst rest in
      List.concat_map (fun v -> List.map (fun t -> v :: t) tails) fills
  in
  Alpha.of_expr e
  |> List.concat_map (fun (pat : Alpha.pattern) ->
         List.map (fun args -> Action.conc pat.Alpha.pname args) (inst pat.Alpha.pargs))
  |> List.sort_uniq Action.compare_concrete

let gen_word_for (e : Expr.t) ~max_len : Action.concrete list Gen.t =
  let open Gen in
  match universe_of e with
  | [] -> return []
  | universe ->
    int_range 0 max_len >>= fun n -> list_repeat n (oneofl universe)

let expr_word_arb ?(max_depth = 3) ?(max_len = 4) () =
  let gen =
    let open Gen in
    gen_expr_depth max_depth >>= fun e ->
    gen_word_for e ~max_len >>= fun w -> return (e, w)
  in
  let print (e, w) =
    Printf.sprintf "%s  /  %s" (Syntax.to_string e)
      (String.concat " " (List.map Action.concrete_to_string w))
  in
  QCheck.make ~print gen

(* ------------------------------------------------------------------ *)
(* Disjoint couplings, for the sharded-evaluation suites               *)
(* ------------------------------------------------------------------ *)

(* A top-level coupling of components over pairwise-disjoint name sets —
   the shape the domain-sharded evaluators decompose.  Component [i] draws
   its atoms from a{i}/b{i}/c{i}, so the alphabet-overlap partition never
   merges two components (a component may still split further if it is
   itself a coupling of disjoint parts — more shards, same property). *)
let gen_disjoint_coupling ?(max_components = 4) ?(depth = 2) () : Expr.t Gen.t =
  let open Gen in
  int_range 1 max_components >>= fun k ->
  let component i =
    gen_expr_depth
      ~names:(List.map (fun n -> Printf.sprintf "%s%d" n i) names)
      depth
  in
  let rec build i acc =
    if i >= k then return (Expr.sync_list (List.rev acc))
    else component i >>= fun e -> build (i + 1) (e :: acc)
  in
  build 0 []

(* Random words over the coupling's own universe, with an occasional action
   foreign to every component (exercises the unowned/open-world paths). *)
let gen_word_with_foreign (e : Expr.t) ~max_len : Action.concrete list Gen.t =
  let open Gen in
  let foreign = Action.conc "zz" [] in
  match universe_of e with
  | [] -> int_range 0 1 >>= fun n -> return (List.init n (fun _ -> foreign))
  | universe ->
    int_range 0 max_len >>= fun n ->
    list_repeat n (frequency [ (9, oneofl universe); (1, return foreign) ])

let coupling_word_arb ?(max_components = 4) ?(max_len = 10) () =
  let gen =
    let open Gen in
    gen_disjoint_coupling ~max_components () >>= fun e ->
    gen_word_with_foreign e ~max_len >>= fun w -> return (e, w)
  in
  let print (e, w) =
    Printf.sprintf "%s  /  %s" (Syntax.to_string e)
      (String.concat " " (List.map Action.concrete_to_string w))
  in
  QCheck.make ~print gen

let to_alcotest = QCheck_alcotest.to_alcotest
