open Interaction

let t name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let matching =
  [ t "concrete pattern matches equal action" (fun () ->
        check_bool "eq" true
          (Action.matches (Action.make "a" [ Action.value "1" ]) (Action.conc "a" [ "1" ])));
    t "different name does not match" (fun () ->
        check_bool "name" false
          (Action.matches (Action.make "a" []) (Action.conc "b" [])));
    t "different arity does not match" (fun () ->
        check_bool "arity" false
          (Action.matches (Action.make "a" [ Action.value "1" ]) (Action.conc "a" [])));
    t "different value does not match" (fun () ->
        check_bool "value" false
          (Action.matches (Action.make "a" [ Action.value "1" ]) (Action.conc "a" [ "2" ])));
    t "parameter never matches (Φ(a) ∩ Σ*)" (fun () ->
        check_bool "param" false
          (Action.matches (Action.make "a" [ Action.param "p" ]) (Action.conc "a" [ "1" ])));
    t "no-arg actions match" (fun () ->
        check_bool "noarg" true (Action.matches (Action.make "go" []) (Action.conc "go" [])))
  ]

let binding =
  [ t "bind finds the value" (fun () ->
        Alcotest.(check (option string))
          "bind" (Some "7")
          (Action.bind "p" (Action.make "a" [ Action.param "p" ]) (Action.conc "a" [ "7" ])));
    t "bind requires consistency across positions" (fun () ->
        let pat = Action.make "a" [ Action.param "p"; Action.param "p" ] in
        Alcotest.(check (option string)) "consistent" (Some "7")
          (Action.bind "p" pat (Action.conc "a" [ "7"; "7" ]));
        Alcotest.(check (option string)) "inconsistent" None
          (Action.bind "p" pat (Action.conc "a" [ "7"; "8" ])));
    t "bind fails on other parameters" (fun () ->
        let pat = Action.make "a" [ Action.param "p"; Action.param "q" ] in
        Alcotest.(check (option string)) "other param" None
          (Action.bind "p" pat (Action.conc "a" [ "7"; "8" ])));
    t "bind fails when p does not occur" (fun () ->
        Alcotest.(check (option string)) "absent" None
          (Action.bind "p" (Action.make "a" [ Action.value "1" ]) (Action.conc "a" [ "1" ])));
    t "bind respects concrete positions" (fun () ->
        let pat = Action.make "a" [ Action.value "1"; Action.param "p" ] in
        Alcotest.(check (option string)) "ok" (Some "2")
          (Action.bind "p" pat (Action.conc "a" [ "1"; "2" ]));
        Alcotest.(check (option string)) "bad value" None
          (Action.bind "p" pat (Action.conc "a" [ "9"; "2" ])))
  ]

let subst =
  [ t "subst replaces all occurrences" (fun () ->
        let a = Action.make "a" [ Action.param "p"; Action.value "x"; Action.param "p" ] in
        let a' = Action.subst "p" "5" a in
        check_bool "concrete" true (Action.is_concrete a');
        check_str "printed" "a(5,x,5)" (Action.to_string a'));
    t "subst leaves other parameters" (fun () ->
        let a = Action.make "a" [ Action.param "p"; Action.param "q" ] in
        let a' = Action.subst "p" "5" a in
        Alcotest.(check (list string)) "params" [ "q" ] (Action.params a'));
    t "params deduplicates" (fun () ->
        let a = Action.make "a" [ Action.param "p"; Action.param "q"; Action.param "p" ] in
        Alcotest.(check (list string)) "params" [ "p"; "q" ] (Action.params a))
  ]

let conversions =
  [ t "to_concrete on concrete action" (fun () ->
        let a = Action.make "a" [ Action.value "1" ] in
        match Action.to_concrete a with
        | Some c -> check_str "name" "a(1)" (Action.concrete_to_string c)
        | None -> Alcotest.fail "expected concrete");
    t "to_concrete fails on parameters" (fun () ->
        check_bool "none" true
          (Action.to_concrete (Action.make "a" [ Action.param "p" ]) = None));
    t "of_concrete round-trips" (fun () ->
        let c = Action.conc "a" [ "1"; "2" ] in
        check_bool "rt" true (Action.to_concrete (Action.of_concrete c) = Some c));
    t "printing without args omits parens" (fun () ->
        check_str "plain" "go" (Action.concrete_to_string (Action.conc "go" [])));
    t "compare is a total order" (fun () ->
        let xs =
          [ Action.conc "b" []; Action.conc "a" [ "2" ]; Action.conc "a" [ "1" ] ]
        in
        let sorted = List.sort Action.compare_concrete xs in
        Alcotest.(check (list string)) "sorted" [ "a(1)"; "a(2)"; "b" ]
          (List.map Action.concrete_to_string sorted))
  ]

let () =
  Alcotest.run "action"
    [ ("matching", matching); ("binding", binding); ("subst", subst);
      ("conversions", conversions)
    ]
