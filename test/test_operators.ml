(* Systematic operator-interaction cases, hand-verified against Table 8.
   Every case runs through BOTH the denotational oracle and the state model
   (check_both), so this file doubles as a library of worked examples of
   the semantics. *)

open Interaction
open Testutil

let t name f = Alcotest.test_case name `Quick f
let c = Semantics.Complete
let p = Semantics.Partial
let i = Semantics.Illegal

let case name e specs =
  t name (fun () -> List.iter (fun (input, expected) -> check_both !e input expected) specs)

(* --- sequence against everything ---------------------------------------- *)

let seq_interactions =
  [ case "seq of options can skip both" "[a] - [b]"
      [ ("", c); ("a", c); ("b", c); ("a b", c); ("b a", i) ];
    case "seq of iterations: greedy or lazy crossover" "a* - a - a*"
      [ ("a", c); ("a a", c); ("a a a a a", c); ("", p) ];
    case "crossover ambiguity resolves correctly" "(a - [b]) - (b - a)"
      [ ("a b a", c) (* two readings of the first b *); ("a b b a", c);
        ("a b b b a", i) ];
    case "seq under par: both orders of independent seqs" "(a - b) || (c - d)"
      [ ("a b c d", c); ("a c d b", c); ("c d a b", c); ("d", i) ];
    case "seq of par joins before continuing" "(a || b) - c"
      [ ("a b c", c); ("b a c", c); ("a c", i) (* c before join *) ];
    case "seq with epsilon-only right" "a - eps" [ ("a", c); ("a a", i) ]
  ]

(* --- parallel composition corners ---------------------------------------- *)

let par_interactions =
  [ case "par of identical atoms counts multiplicity" "a || a || a"
      [ ("a a", p); ("a a a", c); ("a a a a", i) ];
    case "par of disjunctions: one pick per branch" "(a | b) || (a | c)"
      [ ("a a", c); ("a c", c); ("c b", c); ("b b", i); ("c c", i) ];
    case "par with shared alphabet is a shuffle, not a sync" "(a - b) || (b - a)"
      [ ("a b b a", c); ("b a a b", c); ("a b a b", c) (* interleaving *);
        ("a a b b", i) (* the second a fits neither component *); ("a a a", i) ];
    case "par of iterations interleaves freely" "a* || b*"
      [ ("a b a b b a", c); ("", c) ];
    case "nested par flattens behaviourally" "(a || b) || c"
      [ ("c b a", c); ("a c", p) ]
  ]

(* --- iteration corners ---------------------------------------------------- *)

let iteration_interactions =
  [ case "iteration of a par: rounds do not interleave" "(a || b)*"
      [ ("a b", c); ("b a", c); ("a b b a", c); ("a a b b", i) (* second round
          starts before first completes *) ];
    case "pariter of a par: rounds DO interleave" "(a || b)#"
      [ ("a a b b", c); ("a b a b", c); ("a", p) ];
    case "iteration of an iteration-with-suffix" "(a* - b)*"
      [ ("b", c); ("a b", c); ("b b", c); ("a a b a b", c); ("a", p); ("a a", p) ];
    case "pariter of an option behaves like pariter" "([a - b])#"
      [ ("", c); ("a a b b", c); ("b", i) ];
    case "iteration cannot split one instance across rounds" "(a - a)*"
      [ ("a a", c); ("a a a", p); ("a a a a", c) ]
  ]

(* --- boolean operators ----------------------------------------------------- *)

let boolean_interactions =
  [ case "conjunction of overlapping languages" "(a - b)* & (a - b - a - b)*"
      [ ("", c); ("a b", p) (* left would accept, right needs more *);
        ("a b a b", c); ("a b a b a b", p) ];
    case "conjunction forces same length" "a* & (a - a)*"
      [ ("a a", c); ("a", p); ("a a a", p); ("a a a a", c) ];
    case "disjunction keeps both options alive" "(a - b - c) | (a - b - d)"
      [ ("a b", p); ("a b c", c); ("a b d", c) ];
    case "conjunction with disjoint languages is a dead end after start"
      "(a - b) & (a - c)"
      [ ("a", p); ("a b", i); ("a c", i) ];
    case "de-morgan-ish: conj of disjunctions" "(a | b) & (b | c)"
      [ ("b", c); ("a", i); ("c", i) ]
  ]

(* --- synchronization (coupling) corners ----------------------------------- *)

let sync_interactions =
  [ case "coupling only constrains the shared alphabet" "(a - b) @ (c - b - d)"
      [ ("a c b d", c); ("c a b d", c); ("a b", i) (* b needs c first *);
        ("c b", i) (* b needs a first too *); ("a c d", i) (* d before b *) ];
    case "coupling with disjoint alphabets is free interleaving" "(a - b) @ (c - d)"
      [ ("a c b d", c); ("c d a b", c); ("a b c d", c) ];
    case "chained coupling synchronizes transitively" "(a - b) @ (b - c) @ (c - d)"
      [ ("a b c d", c); ("a b d", i); ("b", i) ];
    case "coupling of iterations paces both" "(a - b)* @ (b - c)*"
      [ ("a b c", c); ("a b c a b c", c); ("a b a b c c", i)
        (* second b before first c: right operand requires b - c - b *) ];
    case "sync vs and on same alphabet agree" "(a - b) @ (a - b)"
      [ ("a b", c); ("a", p); ("b", i) ];
    case "foreign action kills a coupling" "(a - b) @ (c - b)"
      [ ("a c z", i) ]
  ]

(* --- quantifier corners ----------------------------------------------------- *)

let quantifier_corners =
  [ case "some-quantifier materializes at the last possible moment"
      "some x: (a - b(x) - a)"
      [ ("a", p); ("a b(1)", p); ("a b(1) a", c); ("a b(1) b(2)", i) ];
    case "some-quantifier: instances with shared prefix stay superposed"
      "some x: (a - b(x))"
      [ ("a", p); ("a b(7)", c) ];
    case "all-quantifier: one instance per value, values independent"
      "all x: [a(x) - b(x)]"
      [ ("a(1) a(2) b(1) b(2)", c); ("a(1) b(2)", i) ];
    case "all-quantifier with non-value actions is ambiguous but correct"
      "all x: (a(x) - b - c(x))"
      [ ("a(1) b c(1)", p) (* Φ empty: infinite shuffle needs ⟨⟩ *);
        ("a(1) a(2) b b c(2) c(1)", p); ("a(1) b b", i) ];
    case "sync-quantifier: instances see only their own actions"
      "sync x: (a(x) - b(x))*"
      [ ("a(1) a(2) b(2) b(1)", c); ("a(1) b(2)", i) (* instance 2: b before a *) ];
    case "conj-quantifier over value-free branch" "conj x: (z | a(x))"
      [ ("z", c); ("a(1)", i) (* all other instances reject *) ];
    case "nested some in all: per-patient choice" "all p: [some x: (a(p,x) - b(p,x))]"
      [ ("a(1,u) b(1,u)", c); ("a(1,u) a(2,v) b(2,v) b(1,u)", c);
        ("a(1,u) b(1,v)", i) ];
    case "shadowed quantifier parameter" "some p: (a(p) - (some p: b(p)))"
      [ ("a(1) b(1)", c); ("a(1) b(2)", c) (* inner p is independent *) ];
    case "quantifier inside iteration re-binds each round" "(some x: a(x) - b(x))*"
      [ ("a(1) b(1) a(2) b(2)", c); ("a(1) a(2)", i) ];
    case "quantifier inside pariter: one value per walker" "(some x: a(x) - b(x))#"
      [ ("a(1) a(2) b(2) b(1)", c); ("a(1) a(1)", p)
        (* two walkers may pick the same value *);
        ("a(1) a(1) b(1) b(1)", c) ]
  ]

(* --- option corners ---------------------------------------------------------- *)

let option_corners =
  [ case "option loses the skip after the first action" "[a - b]"
      [ ("", c); ("a", p); ("a b", c) ];
    case "option of a dead-endable conjunction" "[(a - b) & (b - a)]"
      [ ("", c) (* the option saves the empty word *); ("a", i) ];
    case "option under conjunction" "[a] & [b]"
      [ ("", c); ("a", i); ("b", i) ]
  ]

(* --- deeply nested stacks ------------------------------------------------------ *)

let deep_nesting =
  [ case "three-level nesting: iter(par(some))"
      "((some x: a(x)) || b)*"
      [ ("a(1) b", c); ("b a(2)", c); ("a(1) b a(2) b", c); ("a(1) a(2)", i)
        (* one some-instance per round, b must join *) ];
    case "coupling of quantified subgraphs shares instances correctly"
      "(some x: a(x) - b(x)) @ (some x: b(x) - c(x))"
      [ ("a(1) b(1) c(1)", c); ("a(1) b(2)", i) ];
    case "all over coupling" "all p: ((a(p) - b(p)) @ (b(p) - c(p)))"
      [ ("a(1) b(1) c(1)", p) (* Φ = ∅: body has no empty word *);
        ("a(1) a(2) b(2) b(1) c(1) c(2)", p); ("b(1)", i) ]
  ]

let () =
  Alcotest.run "operators"
    [ ("seq", seq_interactions); ("par", par_interactions);
      ("iteration", iteration_interactions); ("boolean", boolean_interactions);
      ("sync", sync_interactions); ("quantifiers", quantifier_corners);
      ("option", option_corners); ("nesting", deep_nesting)
    ]
