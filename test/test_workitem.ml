open Wfms
open Testutil

let t name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let simple =
  Workflow.make "simple" (Workflow.Seq [ Task "triage"; Task "treat"; Task "bill" ])

let role_of = function
  | "triage" | "treat" -> "medic"
  | _ -> "clerk"

let users = [ ("nina", [ "medic" ]); ("omar", [ "clerk" ]); ("pat", [ "medic"; "clerk" ]) ]

let mk ?manager () =
  let case = Workflow.start_case simple ~id:"c1" ~args:[ "k" ] in
  (Workitem.create ?manager ~users ~role_of [ case ], case)

let find pool activity =
  List.find (fun i -> i.Workitem.activity = activity) (Workitem.items pool)

let lifecycle =
  [ t "initial pool offers the first activity" (fun () ->
        let pool, _ = mk () in
        check_int "one item" 1 (List.length (Workitem.items pool));
        check_bool "offered" true ((find pool "triage").Workitem.status = Workitem.Offered));
    t "role-based visibility" (fun () ->
        let pool, _ = mk () in
        check_int "medic sees it" 1 (List.length (Workitem.worklist pool ~user:"nina"));
        check_int "clerk does not" 0 (List.length (Workitem.worklist pool ~user:"omar")));
    t "full lifecycle: allocate, start, complete" (fun () ->
        let pool, case = mk () in
        let item = find pool "triage" in
        check_bool "allocate" true (Workitem.allocate pool ~user:"nina" item = Ok ());
        check_bool "hidden from others" true
          (not (List.memq item (Workitem.worklist pool ~user:"pat")));
        check_bool "start" true (Workitem.start pool ~user:"nina" item = Ok ());
        check_bool "complete" true (Workitem.complete pool ~user:"nina" item = Ok ());
        (* completion refreshes: treat is now offered *)
        check_bool "next offered" true
          ((find pool "treat").Workitem.status = Workitem.Offered);
        check_bool "engine advanced" true (List.mem "treat" (Workflow.startable case)));
    t "double allocation fails" (fun () ->
        let pool, _ = mk () in
        let item = find pool "triage" in
        check_bool "first" true (Workitem.allocate pool ~user:"nina" item = Ok ());
        check_bool "second" true (Workitem.allocate pool ~user:"pat" item <> Ok ()));
    t "role mismatch fails" (fun () ->
        let pool, _ = mk () in
        check_bool "clerk cannot take medic work" true
          (Workitem.allocate pool ~user:"omar" (find pool "triage") <> Ok ()));
    t "start requires allocation by the same user" (fun () ->
        let pool, _ = mk () in
        let item = find pool "triage" in
        check_bool "unallocated start" true (Workitem.start pool ~user:"nina" item <> Ok ());
        ignore (Workitem.allocate pool ~user:"nina" item);
        check_bool "wrong user" true (Workitem.start pool ~user:"pat" item <> Ok ()));
    t "journal records the lifecycle with a logical clock" (fun () ->
        let pool, _ = mk () in
        let item = find pool "triage" in
        ignore (Workitem.allocate pool ~user:"nina" item);
        ignore (Workitem.start pool ~user:"nina" item);
        ignore (Workitem.complete pool ~user:"nina" item);
        let states = List.rev_map (fun (s, _) -> Workitem.status_to_string s) item.Workitem.journal in
        Alcotest.(check (list string)) "journey"
          [ "offered"; "allocated:nina"; "started:nina"; "completed:nina" ] states;
        let clocks = List.rev_map snd item.Workitem.journal in
        check_bool "monotone clock" true (List.sort compare clocks = clocks))
  ]

let coordinated =
  [ t "manager-forbidden items are suspended, not offered" (fun () ->
        (* constraint: triage may happen at most once across ALL cases *)
        let constraint_ = !"triage_s(k) - triage_t(k)" in
        let mgr = Interaction_manager.Manager.create constraint_ in
        let case1 = Workflow.start_case simple ~id:"c1" ~args:[ "k" ] in
        let case2 = Workflow.start_case simple ~id:"c2" ~args:[ "k" ] in
        let pool = Workitem.create ~manager:mgr ~users ~role_of [ case1; case2 ] in
        let i1 =
          List.find (fun i -> Workflow.case_id i.Workitem.case = "c1") (Workitem.items pool)
        in
        assert (Workitem.allocate pool ~user:"nina" i1 = Ok ());
        assert (Workitem.start pool ~user:"nina" i1 = Ok ());
        Workitem.refresh pool;
        let i2 =
          List.find (fun i -> Workflow.case_id i.Workitem.case = "c2") (Workitem.items pool)
        in
        check_bool "suspended" true (i2.Workitem.status = Workitem.Suspended);
        check_bool "still visible (greyed)" true
          (List.exists (fun i -> i == i2) (Workitem.worklist pool ~user:"nina"));
        check_bool "cannot allocate" true (Workitem.allocate pool ~user:"nina" i2 <> Ok ()));
    t "suspension lifts when the constraint allows again" (fun () ->
        let constraint_ = !"mutex(triage_s(k) - triage_t(k))" in
        let mgr = Interaction_manager.Manager.create constraint_ in
        let case1 = Workflow.start_case simple ~id:"c1" ~args:[ "k" ] in
        let case2 = Workflow.start_case simple ~id:"c2" ~args:[ "k" ] in
        let pool = Workitem.create ~manager:mgr ~users ~role_of [ case1; case2 ] in
        let item_of cid =
          List.find
            (fun i ->
              Workflow.case_id i.Workitem.case = cid && i.Workitem.activity = "triage")
            (Workitem.items pool)
        in
        let i1 = item_of "c1" in
        assert (Workitem.allocate pool ~user:"nina" i1 = Ok ());
        assert (Workitem.start pool ~user:"nina" i1 = Ok ());
        Workitem.refresh pool;
        check_bool "c2 suspended while c1 in triage" true
          ((item_of "c2").Workitem.status = Workitem.Suspended);
        assert (Workitem.complete pool ~user:"nina" i1 = Ok ());
        (* complete refreshes the pool *)
        check_bool "c2 offered again" true
          ((item_of "c2").Workitem.status = Workitem.Offered))
  ]

let () =
  Alcotest.run "workitem" [ ("lifecycle", lifecycle); ("coordinated", coordinated) ]
