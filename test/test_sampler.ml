(* Tail sampler: captures exactly the slow / denied / raised traces of a
   scripted workload, and has strictly zero effect while telemetry is off. *)



let t name f = Alcotest.test_case name `Quick f
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* A deterministic nanosecond clock the scripts advance by hand. *)
let clock = ref 0L

let tick ns =
  clock := Int64.add !clock (Int64.of_int ns)

let with_sampler ?(slow_ns = 1000L) ?per_trace_cap ?max_live ?max_captured f =
  Telemetry.reset ();
  Telemetry.clear_sinks ();
  clock := 0L;
  Telemetry.set_clock (fun () -> !clock);
  let smp = Sampler.create ?per_trace_cap ?max_live ?max_captured ~slow_ns () in
  Telemetry.add_sink (Sampler.sink smp);
  Fun.protect
    ~finally:(fun () ->
      Telemetry.disable ();
      Telemetry.clear_sinks ();
      (* restore the wall clock for whatever runs next in this binary *)
      Telemetry.set_clock (fun () ->
          Int64.of_float (Unix.gettimeofday () *. 1e9));
      Option.iter Recorder.install (Recorder.global ()))
    (fun () -> f smp)

(* a request: [dur] ns inside one manager.execute span, optionally
   emitting a denial; returns its trace id *)
let request ?(denied = false) ~dur () =
  Telemetry.in_new_trace (fun () ->
      Telemetry.span "manager.execute" (fun () ->
          if denied then Telemetry.event "manager.denied";
          tick dur);
      Telemetry.current_trace ())

(* ------------------------------------------------------------------ *)
(* Capture policy                                                      *)
(* ------------------------------------------------------------------ *)

let capture_policy =
  t "captures exactly the slow, denied, and raised traces" (fun () ->
      with_sampler ~slow_ns:1000L (fun smp ->
          Telemetry.enable ();
          let fast = request ~dur:10 () in
          let slow = request ~dur:5000 () in
          let denied = request ~denied:true ~dur:10 () in
          let raised =
            Telemetry.in_new_trace (fun () ->
                (try
                   Telemetry.span "manager.execute" (fun () ->
                       tick 10;
                       failwith "boom")
                 with Failure _ -> ());
                Telemetry.current_trace ())
          in
          check_bool "fast discarded" false (Sampler.finish smp ~trace:fast ());
          check_bool "slow captured" true (Sampler.finish smp ~trace:slow ());
          check_bool "denied captured" true
            (Sampler.finish smp ~trace:denied ());
          check_bool "raised captured" true
            (Sampler.finish smp ~trace:raised ());
          Alcotest.(check (list int))
            "capture set, in finish order"
            [ slow; denied; raised ]
            (List.map fst (Sampler.captures smp));
          check_int "considered" 4 (Sampler.considered smp);
          check_int "captured" 3 (Sampler.captured smp);
          check_int "discarded" 1 (Sampler.discarded smp);
          (* the captured chain is the whole request, span ends included *)
          match List.assoc_opt slow (Sampler.captures smp) with
          | None -> Alcotest.fail "slow trace not in captures"
          | Some evs ->
            check_int "full chain retained" 2 (List.length evs);
            check_bool "all events carry the trace id" true
              (List.for_all
                 (fun (e : Telemetry.event) -> e.Telemetry.trace = slow)
                 evs)))

let failed_overrides =
  t "~failed:true captures a fast successful-looking trace" (fun () ->
      with_sampler ~slow_ns:1_000_000L (fun smp ->
          Telemetry.enable ();
          let tr = request ~dur:10 () in
          check_bool "captured on failed" true
            (Sampler.finish smp ~trace:tr ~failed:true ())))

let unknown_trace =
  t "finishing a trace with no events counts as discarded" (fun () ->
      with_sampler (fun smp ->
          Telemetry.enable ();
          check_bool "nothing to capture" false (Sampler.finish smp ~trace:999 ());
          check_int "considered" 1 (Sampler.considered smp);
          check_int "discarded" 1 (Sampler.discarded smp)))

(* ------------------------------------------------------------------ *)
(* Bounds                                                              *)
(* ------------------------------------------------------------------ *)

let per_trace_bound =
  t "per-trace cap truncates the chain and counts the overflow" (fun () ->
      with_sampler ~slow_ns:0L ~per_trace_cap:3 (fun smp ->
          Telemetry.enable ();
          let tr =
            Telemetry.in_new_trace (fun () ->
                for i = 1 to 8 do
                  Telemetry.event (Printf.sprintf "ev%d" i)
                done;
                Telemetry.current_trace ())
          in
          check_bool "still captured (slow_ns 0)" true
            (Sampler.finish smp ~trace:tr ());
          (match Sampler.last_capture smp with
          | Some (t', evs) ->
            check_int "capture is this trace" tr t';
            check_int "chain truncated to the cap" 3 (List.length evs)
          | None -> Alcotest.fail "no capture");
          check_int "overflow counted" 5 (Sampler.dropped_events smp)))

let capture_eviction =
  t "old captures are evicted FIFO past max_captured" (fun () ->
      with_sampler ~slow_ns:0L ~max_captured:2 (fun smp ->
          Telemetry.enable ();
          let run () =
            let tr = request ~dur:1 () in
            ignore (Sampler.finish smp ~trace:tr ());
            tr
          in
          let _t1 = run () in
          let t2 = run () in
          let t3 = run () in
          Alcotest.(check (list int))
            "two newest retained" [ t2; t3 ]
            (List.map fst (Sampler.captures smp))))

(* ------------------------------------------------------------------ *)
(* No observer effect while disabled                                   *)
(* ------------------------------------------------------------------ *)

let engine_run (e, word) =
  let s = Interaction.Engine.create e in
  let accepts = List.map (Interaction.Engine.try_action s) word in
  (Interaction.Engine.word e word, accepts, Interaction.Engine.is_final s)

let no_observer_effect =
  Testutil.to_alcotest
    (QCheck.Test.make ~count:100
       ~name:"sampler installed + telemetry off: zero effect"
       (Testutil.expr_word_arb ~max_depth:3 ~max_len:5 ())
       (fun case ->
         Telemetry.disable ();
         Telemetry.clear_sinks ();
         let dark = engine_run case in
         let smp = Sampler.create ~slow_ns:0L () in
         Telemetry.add_sink (Sampler.sink smp);
         (* telemetry stays OFF: the sink must never fire *)
         let lit = engine_run case in
         Telemetry.clear_sinks ();
         Option.iter Recorder.install (Recorder.global ());
         if dark <> lit then QCheck.Test.fail_report "behaviour changed";
         if Sampler.captures smp <> [] then
           QCheck.Test.fail_report "sampler saw events while disabled";
         ignore (Sampler.finish smp ~trace:1 ());
         Sampler.captured smp = 0))

(* ------------------------------------------------------------------ *)
(* Export                                                              *)
(* ------------------------------------------------------------------ *)

let dump_roundtrip =
  t "dump_jsonl parses back through the lib/trace reader" (fun () ->
      with_sampler ~slow_ns:0L (fun smp ->
          Telemetry.enable ();
          let tr = request ~dur:100 () in
          ignore (Sampler.finish smp ~trace:tr ());
          let buf = Buffer.create 256 in
          let n = Sampler.dump_jsonl smp (Buffer.add_string buf) in
          check_int "events written" 2 n;
          let src = Interaction_trace.Source.of_string (Buffer.contents buf) in
          check_int "all lines parse" 0 src.Interaction_trace.Source.bad_lines;
          check_int "events read back" 2
            (List.length src.Interaction_trace.Source.events);
          let forest =
            Interaction_trace.Spantree.build src.Interaction_trace.Source.events
          in
          check_int "the captured span closes" 1
            (Interaction_trace.Spantree.closed_count forest);
          check_int "no orphans" 0 (Interaction_trace.Spantree.orphans forest)))

let () =
  Alcotest.run "sampler"
    [ ("policy", [ capture_policy; failed_overrides; unknown_trace ]);
      ("bounds", [ per_trace_bound; capture_eviction ]);
      ("no-observer-effect", [ no_observer_effect ]);
      ("export", [ dump_roundtrip ])
    ]
