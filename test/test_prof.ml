(* The runtime-health profiler: timed lock sites, GC sampling, per-lane
   utilization, crash-atomic dumps — and the two properties the whole
   layer is sold on: with telemetry OFF the probes change nothing (same
   verdicts, no allocation on the warm word path), and the bench gate
   really does fail on a degraded input. *)

open Interaction
open Interaction_trace
open Testutil

let t name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let with_telemetry f =
  Telemetry.reset ();
  Telemetry.clear_sinks ();
  Option.iter Recorder.install (Recorder.global ());
  Telemetry.enable ();
  Fun.protect
    ~finally:(fun () ->
      Telemetry.disable ();
      Telemetry.clear_sinks ();
      Option.iter Recorder.install (Recorder.global ()))
    f

(* ------------------------------------------------------------------ *)
(* Lock sites                                                          *)
(* ------------------------------------------------------------------ *)

let site_stats name =
  List.find_opt
    (fun (s : Prof.Lock.stats) -> s.Prof.Lock.site_name = name)
    (Prof.Lock.stats ())

let lock_sites =
  [ t "uncontended protect counts acquisitions, no waits" (fun () ->
        with_telemetry (fun () ->
            Prof.Lock.reset ();
            let site = Prof.Lock.site "test.uncontended" in
            let m = Mutex.create () in
            for _ = 1 to 10 do
              Prof.Lock.protect site m (fun () -> ())
            done;
            match site_stats "test.uncontended" with
            | None -> Alcotest.fail "site not registered"
            | Some s ->
              check_int "acquisitions" 10 s.Prof.Lock.acquisitions;
              check_int "contended" 0 s.Prof.Lock.contended;
              check_int "wait_ns" 0 s.Prof.Lock.wait_ns));
    t "site is interned by name" (fun () ->
        let a = Prof.Lock.site "test.interned" in
        let b = Prof.Lock.site "test.interned" in
        check_bool "same site" true (a == b));
    t "cross-domain contention is counted and timed" (fun () ->
        with_telemetry (fun () ->
            Prof.Lock.reset ();
            let site = Prof.Lock.site "test.contended" in
            let m = Mutex.create () in
            (* hold the lock from the main domain while a worker tries to
               take it: the worker's acquire must land on the slow path *)
            Mutex.lock m;
            let d =
              Domain.spawn (fun () ->
                  Prof.Lock.protect site m (fun () -> ()))
            in
            Unix.sleepf 0.005;
            Mutex.unlock m;
            Domain.join d;
            match site_stats "test.contended" with
            | None -> Alcotest.fail "site not registered"
            | Some s ->
              check_int "acquisitions" 1 s.Prof.Lock.acquisitions;
              check_int "contended" 1 s.Prof.Lock.contended;
              check_bool "wait recorded" true (s.Prof.Lock.wait_ns > 0);
              check_bool "p99 positive" true (s.Prof.Lock.p99_ns > 0.0);
              check_bool "max >= p99 bucket floor" true
                (float_of_int s.Prof.Lock.max_wait_ns *. 2.0
                >= s.Prof.Lock.p99_ns)));
    t "telemetry off: nothing is counted" (fun () ->
        Telemetry.disable ();
        Prof.Lock.reset ();
        let site = Prof.Lock.site "test.dark" in
        let m = Mutex.create () in
        for _ = 1 to 5 do
          Prof.Lock.protect site m (fun () -> ())
        done;
        match site_stats "test.dark" with
        | None -> Alcotest.fail "site not registered"
        | Some s -> check_int "acquisitions" 0 s.Prof.Lock.acquisitions);
    t "lock probes appear in the exposition" (fun () ->
        with_telemetry (fun () ->
            Prof.Lock.reset ();
            let site = Prof.Lock.site "test.exposed" in
            let m = Mutex.create () in
            Prof.Lock.protect site m (fun () -> ());
            let exposition = Telemetry.expose () in
            let has needle =
              let nl = String.length needle and el = String.length exposition in
              let rec go i =
                i + nl <= el
                && (String.sub exposition i nl = needle || go (i + 1))
              in
              go 0
            in
            check_bool "acquisitions probe" true
              (has "lock_test_exposed_acquisitions_total 1");
            check_bool "p99 probe" true (has "lock_test_exposed_wait_p99_ns")))
  ]

(* ------------------------------------------------------------------ *)
(* GC sampling                                                         *)
(* ------------------------------------------------------------------ *)

let gcprof =
  [ t "samples accumulate minor words across spans" (fun () ->
        with_telemetry (fun () ->
            Prof.Gcprof.install ();
            Prof.Gcprof.reset ();
            Prof.Gcprof.sample ();
            (* allocate visibly inside a span so the Span_end sink samples *)
            Telemetry.span "test.alloc" (fun () ->
                let acc = ref [] in
                for i = 1 to 50_000 do
                  acc := string_of_int i :: acc.contents
                done;
                ignore (List.length acc.contents));
            let g = Prof.Gcprof.stats () in
            check_bool "minor words counted" true
              (g.Prof.Gcprof.minor_words > 10_000.0);
            check_bool "per-domain rows" true
              (Prof.Gcprof.domain_minor_words () <> [])));
    t "reset clears the accumulators" (fun () ->
        with_telemetry (fun () ->
            Prof.Gcprof.install ();
            ignore (Prof.Gcprof.stats ());
            Prof.Gcprof.reset ();
            Prof.Gcprof.sample ();
            let g = Prof.Gcprof.stats () in
            (* stats() itself samples; only the words allocated since the
               reset can appear *)
            check_bool "small after reset" true
              (g.Prof.Gcprof.minor_words < 100_000.0)))
  ]

(* ------------------------------------------------------------------ *)
(* Utilization                                                         *)
(* ------------------------------------------------------------------ *)

let util =
  [ t "busy time lands on the recorded lane" (fun () ->
        with_telemetry (fun () ->
            let u = Prof.Util.create 3 in
            Prof.Util.record u ~lane:1 5_000;
            Prof.Util.record u ~lane:1 7_000;
            Prof.Util.record u ~lane:2 1_000;
            match Prof.Util.snapshot u with
            | [ l0; l1; l2 ] ->
              check_int "lane0 tasks" 0 l0.Prof.Util.tasks;
              check_int "lane1 tasks" 2 l1.Prof.Util.tasks;
              check_int "lane1 busy" 12_000 l1.Prof.Util.busy_ns;
              check_int "lane2 tasks" 1 l2.Prof.Util.tasks;
              check_bool "utilization bounded" true
                (l1.Prof.Util.utilization <= 1.0)
            | _ -> Alcotest.fail "expected 3 lanes"));
    t "telemetry off: record is a no-op" (fun () ->
        Telemetry.disable ();
        let u = Prof.Util.create 1 in
        Prof.Util.record u ~lane:0 5_000;
        match Prof.Util.snapshot u with
        | [ l ] -> check_int "tasks" 0 l.Prof.Util.tasks
        | _ -> Alcotest.fail "expected 1 lane")
  ]

(* ------------------------------------------------------------------ *)
(* No observer effect: prof-instrumented paths with telemetry OFF      *)
(* ------------------------------------------------------------------ *)

let engine_run (e, word) =
  let s = Engine.create e in
  let accepts = List.map (Engine.try_action s) word in
  (Engine.word e word, accepts, Engine.trace s, Engine.is_final s)

(* The stripe / fill / registry locks are Prof.Lock sites now; with
   telemetry off the instrumented paths must answer bit-identically and
   count nothing. *)
let no_observer_probes =
  to_alcotest
    (QCheck.Test.make ~count:100
       ~name:"prof probes + telemetry off: identical verdicts, zero counts"
       (expr_word_arb ~max_depth:3 ~max_len:5 ())
       (fun case ->
         Telemetry.disable ();
         Prof.Lock.reset ();
         let dark = engine_run case in
         let again = engine_run case in
         if dark <> again then QCheck.Test.fail_report "behaviour changed";
         List.iter
           (fun (s : Prof.Lock.stats) ->
             if s.Prof.Lock.acquisitions > 0 then
               QCheck.Test.fail_report
                 (Printf.sprintf "site %s counted %d acquisitions while off"
                    s.Prof.Lock.site_name s.Prof.Lock.acquisitions))
           (Prof.Lock.stats ());
         true))

(* Warm word walks are advertised as allocation-free table walks; the
   probes must keep them that way when telemetry is off.  The bound is a
   small per-walk allowance (the result option, a possible closure) —
   what it guards against is a per-action allocation sneaking into the
   instrumented stripe/fill paths. *)
let word_path_allocation_free =
  t "telemetry off: warm word path stays allocation-free" (fun () ->
      Telemetry.disable ();
      let e = Syntax.parse_exn "(a - b - c)*" in
      let word =
        List.concat
          (List.init 50 (fun _ ->
               List.map
                 (fun n -> Action.conc n [])
                 [ "a"; "b"; "c" ]))
      in
      let a = Automaton.create e in
      (* warm: fill every row once *)
      check_bool "warm walk accepts" true (Automaton.run_word a word <> None);
      let walks = 20 in
      let before = Gc.minor_words () in
      for _ = 1 to walks do
        ignore (Automaton.run_word a word)
      done;
      let per_walk = (Gc.minor_words () -. before) /. float_of_int walks in
      if per_walk > 64.0 then
        Alcotest.failf "warm walk allocates %.1f words (150 actions)" per_walk)

(* ------------------------------------------------------------------ *)
(* Crash-atomic dumps                                                  *)
(* ------------------------------------------------------------------ *)

let tmp_path name = Filename.concat (Filename.get_temp_dir_name ()) name

let read_file path = In_channel.with_open_bin path In_channel.input_all

let atomic_dumps =
  [ t "atomic_write_file replaces longer content completely" (fun () ->
        (* regression: a plain open_out + partial write over an existing
           longer file leaves a stale tail; tmp+rename must not *)
        let path = tmp_path "prof_atomic_test.txt" in
        Prof.atomic_write_file ~fsync:false path (String.make 4096 'x');
        Prof.atomic_write_file ~fsync:false path "short";
        check_bool "no stale tail" true (read_file path = "short");
        check_bool "tmp file gone" false (Sys.file_exists (path ^ ".tmp"));
        Sys.remove path);
    t "recorder dump truncates a longer pre-existing file" (fun () ->
        with_telemetry (fun () ->
            let r = Recorder.create ~capacity:16 () in
            Recorder.install r;
            Telemetry.event "one";
            let path = tmp_path "prof_recorder_dump.jsonl" in
            Out_channel.with_open_bin path (fun oc ->
                Out_channel.output_string oc (String.make 8192 'y'));
            let n = Recorder.dump_to_file r path in
            check_int "one event" 1 n;
            let contents = read_file path in
            check_bool "stale bytes gone" false
              (String.contains contents 'y');
            Sys.remove path));
    t "sampler dump truncates a longer pre-existing file" (fun () ->
        with_telemetry (fun () ->
            let smp = Sampler.create ~slow_ns:0L () in
            Telemetry.add_sink (Sampler.sink smp);
            let trace = Telemetry.new_trace () in
            Telemetry.with_trace trace (fun () ->
                Telemetry.span "op" (fun () -> ()));
            check_bool "captured" true (Sampler.finish smp ~trace ());
            let path = tmp_path "prof_sampler_dump.jsonl" in
            Out_channel.with_open_bin path (fun oc ->
                Out_channel.output_string oc (String.make 8192 'z'));
            let n = Sampler.dump_to_file smp path in
            check_bool "captured something" true (n > 0);
            let contents = read_file path in
            check_bool "stale bytes gone" false
              (String.contains contents 'z');
            Sys.remove path))
  ]

(* ------------------------------------------------------------------ *)
(* The bench gate                                                      *)
(* ------------------------------------------------------------------ *)

let write_bench ?(section = "e20") path pairs =
  let b = Buffer.create 256 in
  Buffer.add_string b "{\n  \"_meta\": {\"schema_version\": 10},\n";
  Printf.bprintf b "  %S: {" section;
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string b ", ";
      Printf.bprintf b "%S: %s" k v)
    pairs;
  Buffer.add_string b "}\n}\n";
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (Buffer.contents b));
  match Benchfile.load path with
  | Some t -> t
  | None -> Alcotest.fail ("unreadable bench file " ^ path)

let gate =
  [ t "within tolerance passes" (fun () ->
        let base =
          write_bench (tmp_path "gate_base.json")
            [ ("word_vm_ns_per_action", "100.0") ]
        in
        let cur =
          write_bench (tmp_path "gate_cur_ok.json")
            [ ("word_vm_ns_per_action", "110.0") ]
        in
        let r = Benchfile.gate ~tolerance:15.0 ~baseline:base ~current:cur () in
        check_bool "passes" true (r.Benchfile.verdict = Benchfile.Pass));
    t "degraded input fails the gate" (fun () ->
        let base =
          write_bench (tmp_path "gate_base2.json")
            [ ("word_vm_ns_per_action", "100.0") ]
        in
        let cur =
          write_bench (tmp_path "gate_cur_bad.json")
            [ ("word_vm_ns_per_action", "200.0") ]
        in
        let r = Benchfile.gate ~tolerance:15.0 ~baseline:base ~current:cur () in
        check_bool "fails" true (r.Benchfile.verdict = Benchfile.Fail);
        check_bool "the failing row is reported" true
          (List.exists
             (fun (row : Benchfile.gate_row) ->
               (not row.Benchfile.ok) && row.Benchfile.delta_pct > 15.0)
             r.Benchfile.rows));
    t "higher-better metrics fail when they drop" (fun () ->
        let base =
          write_bench ~section:"caches" (tmp_path "gate_base3.json")
            [ ("engine_successor_hit_rate", "0.9") ]
        in
        let cur =
          write_bench ~section:"caches" (tmp_path "gate_cur_drop.json")
            [ ("engine_successor_hit_rate", "0.5") ]
        in
        let r = Benchfile.gate ~tolerance:15.0 ~baseline:base ~current:cur () in
        check_bool "fails" true (r.Benchfile.verdict = Benchfile.Fail));
    t "lock p99 bound fails an over-budget site" (fun () ->
        let base =
          write_bench (tmp_path "gate_base4.json")
            [ ("word_vm_ns_per_action", "100.0") ]
        in
        let cur =
          write_bench (tmp_path "gate_cur_lock.json")
            [ ("word_vm_ns_per_action", "100.0");
              (* 2 ms contended wait p99, against a 500 µs bound *)
              ("lock_state_stripe_wait_p99_ns", "2000000.0") ]
        in
        let r =
          Benchfile.gate ~tolerance:15.0 ~max_lock_p99_us:500.0 ~baseline:base
            ~current:cur ()
        in
        check_bool "fails" true (r.Benchfile.verdict = Benchfile.Fail);
        check_bool "lock row present" true (r.Benchfile.lock_rows <> []));
    t "missing metrics are skipped, not failed" (fun () ->
        let base =
          write_bench (tmp_path "gate_base5.json")
            [ ("word_vm_ns_per_action", "100.0") ]
        in
        let cur = write_bench (tmp_path "gate_cur_empty.json") [] in
        let r = Benchfile.gate ~tolerance:15.0 ~baseline:base ~current:cur () in
        check_bool "passes" true (r.Benchfile.verdict = Benchfile.Pass);
        check_bool "skips recorded" true (r.Benchfile.skipped <> []))
  ]

let () =
  Alcotest.run "prof"
    [ ("lock-sites", lock_sites);
      ("gcprof", gcprof);
      ("utilization", util);
      ("no-observer-effect", [ no_observer_probes; word_path_allocation_free ]);
      ("atomic-dumps", atomic_dumps);
      ("bench-gate", gate)
    ]
