open Interaction
open Interaction_manager
open Testutil

let t name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let mqueue =
  [ t "fifo delivery" (fun () ->
        let q = Mqueue.create ~name:"q" in
        Mqueue.send q 1;
        Mqueue.send q 2;
        Alcotest.(check (option int)) "first" (Some 1) (Mqueue.receive q);
        Mqueue.ack q;
        Alcotest.(check (option int)) "second" (Some 2) (Mqueue.receive q);
        Mqueue.ack q;
        Alcotest.(check (option int)) "empty" None (Mqueue.receive q));
    t "at-least-once: crash redelivers in-flight" (fun () ->
        let q = Mqueue.create ~name:"q" in
        Mqueue.send q "m1";
        Mqueue.send q "m2";
        ignore (Mqueue.receive q);
        Mqueue.crash_receiver q;
        Alcotest.(check (option string)) "redelivered" (Some "m1") (Mqueue.receive q);
        check_int "redelivery count" 1 (Mqueue.redelivered_count q));
    t "ack without receive is an error" (fun () ->
        let q : int Mqueue.t = Mqueue.create ~name:"q" in
        Alcotest.check_raises "no flight" (Invalid_argument "Mqueue.ack: no message in flight")
          (fun () -> Mqueue.ack q));
    t "drain returns everything in order" (fun () ->
        let q = Mqueue.create ~name:"q" in
        List.iter (Mqueue.send q) [ 1; 2; 3 ];
        Alcotest.(check (list int)) "drained" [ 1; 2; 3 ] (Mqueue.drain q);
        check_int "empty" 0 (Mqueue.length q));
    t "counters" (fun () ->
        let q = Mqueue.create ~name:"q" in
        Mqueue.send q 1;
        check_int "sent" 1 (Mqueue.sent_count q);
        check_int "len" 1 (Mqueue.length q);
        ignore (Mqueue.receive q);
        check_int "in flight" 1 (Mqueue.in_flight q));
    t "crash redelivery precedes pending messages" (fun () ->
        (* two in flight, two still pending: after the crash the flight
           messages come back first, oldest first, then the pending ones *)
        let q = Mqueue.create ~name:"q" in
        List.iter (Mqueue.send q) [ 1; 2; 3; 4 ];
        ignore (Mqueue.receive q);
        ignore (Mqueue.receive q);
        Mqueue.crash_receiver q;
        (* the crash alone redelivers nothing — counting happens when the
           requeued envelopes are actually re-received *)
        check_int "requeued, not yet redelivered" 0 (Mqueue.redelivered_count q);
        Alcotest.(check (list int)) "order" [ 1; 2; 3; 4 ] (Mqueue.drain q);
        check_int "redelivered" 2 (Mqueue.redelivered_count q));
    t "crash-crash-receive counts one redelivery" (fun () ->
        (* regression: counting at crash time tallied flight.size per
           crash, so a second crash before any re-receive double-counted
           (and envelopes never re-received were counted anyway) *)
        let q = Mqueue.create ~name:"q" in
        Mqueue.send q "m";
        ignore (Mqueue.receive q);
        Mqueue.crash_receiver q;
        Mqueue.crash_receiver q;
        check_int "no redelivery yet" 0 (Mqueue.redelivered_count q);
        (match Mqueue.receive_envelope q with
        | Some env ->
          check_int "second delivery" 2 (Mqueue.deliveries env);
          check_int "exactly one redelivery" 1 (Mqueue.redelivered_count q)
        | None -> Alcotest.fail "expected m back");
        (* a crash with a live flight then a re-receive is a second one *)
        Mqueue.crash_receiver q;
        (match Mqueue.receive_envelope q with
        | Some env -> check_int "third delivery" 3 (Mqueue.deliveries env)
        | None -> Alcotest.fail "expected m back again");
        check_int "two redeliveries total" 2 (Mqueue.redelivered_count q));
    t "envelope sexp round-trip preserves provenance" (fun () ->
        let q = Mqueue.create ~name:"rt" in
        Mqueue.send q "payload with spaces";
        ignore (Mqueue.receive_envelope q);
        Mqueue.crash_receiver q;
        (match Mqueue.receive_envelope q with
        | Some env ->
          let s =
            Mqueue.envelope_to_sexp (fun p -> Sexp.Atom p) env
            |> Sexp.to_string
          in
          let env' =
            Mqueue.envelope_of_sexp Sexp.string_field (Sexp.of_string_exn s)
          in
          Alcotest.(check string) "payload" (Mqueue.payload env) (Mqueue.payload env');
          check_int "trace" (Mqueue.trace env) (Mqueue.trace env');
          check_int "deliveries survive" 2 (Mqueue.deliveries env')
        | None -> Alcotest.fail "expected the envelope back"));
    t "queue image sexp round-trip" (fun () ->
        let q = Mqueue.create ~name:"img" in
        List.iter (Mqueue.send q) [ 1; 2; 3 ];
        ignore (Mqueue.receive q);
        let s = Mqueue.to_sexp Sexp.of_int q |> Sexp.to_string in
        let q' = Mqueue.of_sexp Sexp.int_field (Sexp.of_string_exn s) in
        Alcotest.(check string) "name" (Mqueue.name q) (Mqueue.name q');
        check_int "pending" (Mqueue.length q) (Mqueue.length q');
        check_int "in flight" (Mqueue.in_flight q) (Mqueue.in_flight q');
        check_int "sent" (Mqueue.sent_count q) (Mqueue.sent_count q');
        (* the restored receiver crashed with the process: requeue and
           check the in-flight message comes back as a duplicate *)
        Mqueue.crash_receiver q';
        Alcotest.(check (list int)) "order" [ 1; 2; 3 ] (Mqueue.drain q');
        check_int "post-restart redelivery" 1 (Mqueue.redelivered_count q'));
    t "bulk send/drain of 10k messages stays linear" (fun () ->
        (* regression: the old [pending @ [m]] enqueue made this quadratic *)
        let n = 10_000 in
        let q = Mqueue.create ~name:"bulk" in
        for i = 1 to n do
          Mqueue.send q i
        done;
        check_int "queued" n (Mqueue.length q);
        let drained = Mqueue.drain q in
        check_int "all delivered" n (List.length drained);
        Alcotest.(check (list int)) "fifo order (ends)"
          [ 1; 2; n - 1; n ]
          [ List.nth drained 0; List.nth drained 1;
            List.nth drained (n - 2); List.nth drained (n - 1) ];
        check_int "empty" 0 (Mqueue.length q);
        (* interleaved send/receive keeps FIFO order across refills *)
        for i = 1 to 100 do
          Mqueue.send q i;
          Mqueue.send q (i + 1000);
          (match Mqueue.receive q with
          | Some _ -> Mqueue.ack q
          | None -> Alcotest.fail "expected a message");
          ignore i
        done;
        check_int "backlog" 100 (Mqueue.length q))
  ]

let coordination =
  [ t "ask/confirm performs the transition (Fig. 10 left)" (fun () ->
        let m = Manager.create !"a - b" in
        check_bool "grant a" true (Manager.ask m ~client:"c1" (a1 "a") = Manager.Granted);
        Manager.confirm m ~client:"c1" (a1 "a");
        check_bool "deny a" true (Manager.ask m ~client:"c1" (a1 "a") = Manager.Denied);
        check_bool "grant b" true (Manager.ask m ~client:"c1" (a1 "b") = Manager.Granted));
    t "critical region: other asks are busy until confirm" (fun () ->
        let m = Manager.create !"a || b" in
        check_bool "grant" true (Manager.ask m ~client:"c1" (a1 "a") = Manager.Granted);
        check_bool "stuck" true (Manager.is_stuck m);
        check_bool "busy" true (Manager.ask m ~client:"c2" (a1 "b") = Manager.Busy);
        Manager.confirm m ~client:"c1" (a1 "a");
        check_bool "free again" true (Manager.ask m ~client:"c2" (a1 "b") = Manager.Granted));
    t "abort releases the region without transition" (fun () ->
        let m = Manager.create !"a" in
        ignore (Manager.ask m ~client:"c1" (a1 "a"));
        Manager.abort m ~client:"c1" (a1 "a");
        check_bool "not stuck" false (Manager.is_stuck m);
        check_bool "a still available" true (Manager.execute m ~client:"c1" (a1 "a")));
    t "timeout recovers from a crashed client" (fun () ->
        let m = Manager.create !"a" in
        ignore (Manager.ask m ~client:"dying" (a1 "a"));
        Manager.timeout_outstanding m;
        check_bool "not stuck" false (Manager.is_stuck m);
        check_int "counted" 1 (Manager.stats m).Manager.timeouts);
    t "confirm without grant is a protocol violation" (fun () ->
        let m = Manager.create !"a" in
        Alcotest.check_raises "no grant"
          (Invalid_argument "Manager.confirm: no matching outstanding grant") (fun () ->
            Manager.confirm m ~client:"c1" (a1 "a")));
    t "denied actions do not change state" (fun () ->
        let m = Manager.create !"a - b" in
        check_bool "deny" false (Manager.execute m ~client:"c" (a1 "b"));
        check_bool "a still first" true (Manager.execute m ~client:"c" (a1 "a")));
    t "open world: foreign actions are always permitted" (fun () ->
        let m = Manager.create !"a - b" in
        check_bool "foreign" true (Manager.execute m ~client:"c" (a1 "zzz"));
        check_int "no transition" 0 (Manager.stats m).Manager.transitions;
        check_int "counted foreign" 1 (Manager.stats m).Manager.foreign;
        check_bool "a unaffected" true (Manager.execute m ~client:"c" (a1 "a")));
    t "execute performs exactly one transition (successor-cache reuse)" (fun () ->
        (* regression: the ask computes the tentative successor, the confirm
           commits that same successor — never a second State.trans *)
        let m = Manager.create !"a - b" in
        let t0 = State.transitions () in
        let h0, _ = Manager.tentative_cache_stats () in
        check_bool "exec" true (Manager.execute m ~client:"c" (a1 "a"));
        check_int "one transition" 1 (State.transitions () - t0);
        let h1, _ = Manager.tentative_cache_stats () in
        check_int "confirm reused the grant-time successor" 1 (h1 - h0));
    t "a subscription costs one transition per commit, not two" (fun () ->
        (* regression: the before-status comes from the subscription's
           bookkeeping, so notify checks each subscribed action once *)
        let m = Manager.create !"a - b" in
        Manager.subscribe m ~client:"w" (a1 "b");
        ignore (Manager.drain_notifications m ~client:"w");
        let t0 = State.transitions () in
        check_bool "exec" true (Manager.execute m ~client:"c" (a1 "a"));
        check_int "commit + one status check" 2 (State.transitions () - t0);
        match Manager.drain_notifications m ~client:"w" with
        | [ n ] -> check_bool "pushed" true n.Manager.now_permitted
        | _ -> Alcotest.fail "expected one notification");
    t "mutual exclusion scenario from the introduction" (fun () ->
        (* two clients, one patient: executing one call disables the other *)
        let m = Manager.create Wfms.Medical.patient_constraint in
        check_bool "sono permitted" true (Manager.permitted m (a1 "call_s(p,sono)"));
        check_bool "endo permitted" true (Manager.permitted m (a1 "call_s(p,endo)"));
        check_bool "exec" true (Manager.execute m ~client:"sono" (a1 "call_s(p,sono)"));
        check_bool "endo now blocked" false (Manager.permitted m (a1 "call_s(p,endo)"));
        List.iter
          (fun a -> check_bool a true (Manager.execute m ~client:"sono" (a1 a)))
          [ "call_t(p,sono)"; "perform_s(p,sono)"; "perform_t(p,sono)" ];
        check_bool "endo reappears" true (Manager.permitted m (a1 "call_s(p,endo)")))
  ]

let subscription =
  [ t "subscribe delivers the initial status" (fun () ->
        let m = Manager.create !"a - b" in
        Manager.subscribe m ~client:"w" (a1 "b");
        (match Manager.drain_notifications m ~client:"w" with
        | [ n ] -> check_bool "initially blocked" false n.Manager.now_permitted
        | _ -> Alcotest.fail "expected one notification"));
    t "status changes are pushed (worklist update, Fig. 10 right)" (fun () ->
        let m = Manager.create !"a - b" in
        Manager.subscribe m ~client:"w" (a1 "b");
        ignore (Manager.drain_notifications m ~client:"w");
        check_bool "exec a" true (Manager.execute m ~client:"other" (a1 "a"));
        (match Manager.drain_notifications m ~client:"w" with
        | [ n ] ->
          check_bool "became permitted" true n.Manager.now_permitted;
          check_bool "right action" true (Action.equal_concrete n.Manager.action (a1 "b"))
        | _ -> Alcotest.fail "expected one notification"));
    t "no notification when status is unchanged" (fun () ->
        let m = Manager.create !"a || b" in
        Manager.subscribe m ~client:"w" (a1 "b");
        ignore (Manager.drain_notifications m ~client:"w");
        check_bool "exec a" true (Manager.execute m ~client:"other" (a1 "a"));
        check_int "quiet" 0 (List.length (Manager.drain_notifications m ~client:"w")));
    t "unsubscribe stops notifications" (fun () ->
        let m = Manager.create !"a - b" in
        Manager.subscribe m ~client:"w" (a1 "b");
        ignore (Manager.drain_notifications m ~client:"w");
        Manager.unsubscribe m ~client:"w" (a1 "b");
        check_bool "exec a" true (Manager.execute m ~client:"other" (a1 "a"));
        check_int "quiet" 0 (List.length (Manager.drain_notifications m ~client:"w")));
    t "disable notifications too (permitted -> blocked)" (fun () ->
        let m = Manager.create Wfms.Medical.patient_constraint in
        Manager.subscribe m ~client:"endo" (a1 "call_s(p,endo)");
        ignore (Manager.drain_notifications m ~client:"endo");
        check_bool "exec sono call" true
          (Manager.execute m ~client:"sono" (a1 "call_s(p,sono)"));
        match Manager.drain_notifications m ~client:"endo" with
        | [ n ] -> check_bool "disabled" false n.Manager.now_permitted
        | _ -> Alcotest.fail "expected one notification")
  ]

let durability =
  [ t "crash and recover replays the confirmed log" (fun () ->
        let m = Manager.create !"a - b - c" in
        check_bool "a" true (Manager.execute m ~client:"c1" (a1 "a"));
        check_bool "b" true (Manager.execute m ~client:"c1" (a1 "b"));
        Manager.crash m;
        check_bool "dead" false (Manager.alive m);
        check_bool "denied while dead" false (Manager.execute m ~client:"c1" (a1 "c"));
        Manager.recover m;
        check_bool "alive" true (Manager.alive m);
        Alcotest.(check int) "log intact" 2 (List.length (Manager.confirmed_log m));
        check_bool "resumes at c" true (Manager.execute m ~client:"c1" (a1 "c"));
        check_bool "no replay of a" false (Manager.execute m ~client:"c1" (a1 "a")));
    t "recover is idempotent" (fun () ->
        let m = Manager.create !"a" in
        Manager.crash m;
        Manager.recover m;
        Manager.recover m;
        check_bool "alive" true (Manager.alive m));
    t "state size reporting" (fun () ->
        let m = Manager.create !"a" in
        check_bool "sized" true (Manager.state_size m > 0);
        Manager.crash m;
        check_int "crashed size" 0 (Manager.state_size m))
  ]

let protocol =
  [ t "both strategies complete a contended workload" (fun () ->
        let e = !"mutex(a - b, c - d)" in
        let scripts = [ ("c1", w "a b a b"); ("c2", w "c d") ] in
        let p = Protocol.simulate Protocol.Polling e ~scripts in
        let s = Protocol.simulate Protocol.Subscribing e ~scripts in
        check_bool "polling done" true p.Protocol.completed;
        check_bool "subscribing done" true s.Protocol.completed);
    t "subscription eliminates busy-wait traffic under contention" (fun () ->
        (* clients compete for one mutex slot and activities take time:
           polling pays an ask/reply round-trip per denied attempt per
           round, a subscribed client waits silently *)
        let e = !"mutex(go(1) - done(1), go(2) - done(2), go(3) - done(3), go(4) - done(4))" in
        let scripts =
          List.map
            (fun i ->
              let v = string_of_int i in
              ( "c" ^ v,
                w (Printf.sprintf "go(%s) done(%s) go(%s) done(%s)" v v v v) ))
            [ 1; 2; 3; 4 ]
        in
        let p = Protocol.simulate ~think_rounds:8 Protocol.Polling e ~scripts in
        let s = Protocol.simulate ~think_rounds:8 Protocol.Subscribing e ~scripts in
        check_bool "both done" true (p.Protocol.completed && s.Protocol.completed);
        check_bool
          (Printf.sprintf "fewer messages (%d < %d)" s.Protocol.messages p.Protocol.messages)
          true
          (s.Protocol.messages < p.Protocol.messages);
        check_bool "fewer denials" true (s.Protocol.denials <= p.Protocol.denials));
    t "impossible scripts hit the round limit" (fun () ->
        let e = !"a - b" in
        let r =
          Protocol.simulate ~max_rounds:50 Protocol.Polling e
            ~scripts:[ ("c", w "b") ]
        in
        check_bool "incomplete" false r.Protocol.completed;
        check_int "rounds" 50 r.Protocol.rounds)
  ]

(* Model-based property for the persistent queue: against a reference model
   (pending list + in-flight list), any sequence of send/receive/ack/crash
   preserves content and order. *)
let mqueue_model =
  let open QCheck in
  let op_gen =
    Gen.frequency
      [ (4, Gen.map (fun n -> `Send n) Gen.small_nat); (3, Gen.return `Receive);
        (2, Gen.return `Ack); (1, Gen.return `Crash)
      ]
  in
  Testutil.to_alcotest
    (Test.make ~count:500 ~name:"mqueue matches its reference model"
       (make Gen.(list_size (int_range 0 40) op_gen))
       (fun ops ->
         let q = Mqueue.create ~name:"model" in
         (* model state: (pending, in-flight), threaded through a fold;
            None = divergence from the model *)
         let step state op =
           match state with
           | None -> None
           | Some (pending, flight) -> (
             match op with
             | `Send n ->
               Mqueue.send q n;
               Some (pending @ [ n ], flight)
             | `Receive -> (
               match (pending, Mqueue.receive q) with
               | [], None -> Some ([], flight)
               | m :: rest, Some g when g = m -> Some (rest, flight @ [ m ])
               | _ -> None)
             | `Ack -> (
               match (flight, (try Mqueue.ack q; `Ok with Invalid_argument _ -> `Err)) with
               | [], `Err -> Some (pending, [])
               | _ :: rest, `Ok -> Some (pending, rest)
               | _ -> None)
             | `Crash ->
               Mqueue.crash_receiver q;
               Some (flight @ pending, []))
         in
         match List.fold_left step (Some ([], [])) ops with
         | None -> false
         | Some (pending, flight) ->
           Mqueue.length q = List.length pending
           && Mqueue.in_flight q = List.length flight))

(* The WAL depends on envelope provenance surviving serialization:
   arbitrary trace ids and delivery counts must round-trip exactly, so a
   post-recovery redelivery still reports deliveries >= 2. *)
let envelope_roundtrip =
  let open QCheck in
  Testutil.to_alcotest
    (Test.make ~count:500 ~name:"envelope sexp round-trip is the identity"
       (triple printable_string small_nat (int_range 0 5))
       (fun (payload, tid, deliveries) ->
         let s =
           Sexp.List
             [ Sexp.Atom "env";
               Sexp.List [ Sexp.Atom "payload"; Sexp.Atom payload ];
               Sexp.List [ Sexp.Atom "trace"; Sexp.of_int tid ];
               Sexp.List [ Sexp.Atom "deliveries"; Sexp.of_int deliveries ] ]
         in
         let env = Mqueue.envelope_of_sexp Sexp.string_field s in
         let s' = Mqueue.envelope_to_sexp (fun p -> Sexp.Atom p) env in
         let reparsed =
           Mqueue.envelope_of_sexp Sexp.string_field
             (Sexp.of_string_exn (Sexp.to_string s'))
         in
         Mqueue.payload env = payload
         && Mqueue.trace env = tid
         && Mqueue.deliveries env = deliveries
         && Sexp.to_string s' = Sexp.to_string s
         && Mqueue.payload reparsed = payload
         && Mqueue.trace reparsed = tid
         && Mqueue.deliveries reparsed = deliveries))

let () =
  Alcotest.run "manager"
    [ ("mqueue", mqueue @ [ mqueue_model; envelope_roundtrip ]);
      ("coordination", coordination);
      ("subscription", subscription); ("durability", durability);
      ("protocol", protocol)
    ]
