open Interaction
open Testutil

let t name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let audit_cases =
  [ t "conformant log" (fun () ->
        let r = Audit.check !"(a - b)*" (w "a b a b") in
        check_bool "conformant" true (Audit.conformant r);
        check_int "accepted" 4 r.Audit.accepted;
        check_bool "complete" true r.Audit.complete);
    t "violations are located and replay continues" (fun () ->
        let r = Audit.check !"(a - b)*" (w "a a b b a b") in
        (* second a (index 1) violates; after skipping it, b completes the
           first iteration; then b (index 3) violates again; a b conform *)
        check_int "issues" 2 (List.length r.Audit.issues);
        (match r.Audit.issues with
        | [ i1; i2 ] ->
          check_int "first at 1" 1 i1.Audit.index;
          check_int "second at 3" 3 i2.Audit.index;
          check_bool "reason" true (i1.Audit.reason = Audit.Not_permitted)
        | _ -> Alcotest.fail "expected two issues");
        check_int "accepted" 4 r.Audit.accepted;
        check_bool "complete" true r.Audit.complete);
    t "stop_at_first" (fun () ->
        let r = Audit.check ~stop_at_first:true !"(a - b)*" (w "a a b b") in
        check_int "one issue" 1 (List.length r.Audit.issues);
        check_int "accepted before stop" 1 r.Audit.accepted);
    t "foreign events are ignored by default" (fun () ->
        let r = Audit.check !"a - b" (w "x a y b z") in
        check_bool "conformant" true (Audit.conformant r);
        check_int "foreign" 3 r.Audit.foreign;
        check_bool "complete" true r.Audit.complete);
    t "strict mode flags foreign events" (fun () ->
        let r = Audit.check ~strict:true !"a - b" (w "x a b") in
        check_int "one issue" 1 (List.length r.Audit.issues);
        (match r.Audit.issues with
        | [ i ] -> check_bool "reason" true (i.Audit.reason = Audit.Foreign)
        | _ -> Alcotest.fail "expected one issue"));
    t "incomplete but conformant history" (fun () ->
        let r = Audit.check !"a - b" (w "a") in
        check_bool "conformant" true (Audit.conformant r);
        check_bool "not complete" false r.Audit.complete);
    t "audit of the medical constraint finds the interleaved call" (fun () ->
        let log =
          w
            "call_s(p,sono) call_t(p,sono) call_s(p,endo) perform_s(p,sono) \
             perform_t(p,sono)"
        in
        let r = Audit.check Wfms.Medical.patient_constraint log in
        check_int "one violation" 1 (List.length r.Audit.issues);
        match r.Audit.issues with
        | [ i ] -> check_int "the endo call" 2 i.Audit.index
        | _ -> Alcotest.fail "expected exactly the endo call")
  ]

let parse_cases =
  [ t "parse_log skips blanks and comments" (fun () ->
        match Audit.parse_log "a(1)\n# comment\n\n b(2) # trailing\n" with
        | Ok log -> check_int "two events" 2 (List.length log)
        | Error m -> Alcotest.fail m);
    t "parse_log reports bad lines" (fun () ->
        match Audit.parse_log "a(1)\n???\n" with
        | Ok _ -> Alcotest.fail "expected error"
        | Error m -> check_bool "mentions line" true (String.length m > 0));
    t "pp_report prints issues" (fun () ->
        let r = Audit.check !"a" (w "b a") in
        ignore r;
        let r2 = Audit.check ~strict:true !"a" (w "b a") in
        let s = Format.asprintf "%a" Audit.pp_report r2 in
        check_bool "mentions alphabet" true (String.length s > 20))
  ]

(* Oracle link: a log with no foreign events is issue-free iff it is a
   partial word; it is additionally complete iff it is a complete word. *)
let audit_vs_word =
  QCheck.Test.make ~count:200 ~name:"audit ≡ word problem on alphabet-only logs"
    (expr_word_arb ~max_depth:3 ~max_len:4 ())
    (fun (e, word) ->
      let alpha = Alpha.of_expr e in
      let word = List.filter (Alpha.mem alpha) word in
      let r = Audit.check e word in
      let verdict = Engine.word e word in
      let expected_conformant = verdict <> Semantics.Illegal in
      let expected_complete = verdict = Semantics.Complete in
      if Audit.conformant r <> expected_conformant then
        QCheck.Test.fail_reportf "conformance mismatch"
      else if Audit.conformant r && r.Audit.complete <> expected_complete then
        QCheck.Test.fail_reportf "completeness mismatch"
      else true)

let instrument_cases =
  [ t "constant growth on a quasi-regular run" (fun () ->
        let word = List.concat (List.init 50 (fun _ -> w "a b")) in
        let p = Instrument.profile !"(a - b)*" word in
        check_bool "constant" true (p.Instrument.growth = Instrument.Constant);
        check_bool "agrees" true
          (Instrument.agrees_with_classification p (Classify.benignity !"(a - b)*")));
    t "linear growth on a uniformly quantified run" (fun () ->
        let word =
          List.init 40 (fun i -> Action.conc "u" [ string_of_int i ])
        in
        let p = Instrument.profile !"all x: [u(x) - e(x)]" word in
        (match p.Instrument.growth with
        | Instrument.Polynomial d -> check_bool "degree ≈ 1" true (d > 0.5 && d < 1.6)
        | g -> Alcotest.failf "expected polynomial, got %s" (Instrument.growth_to_string g));
        check_bool "agrees" true
          (Instrument.agrees_with_classification p
             (Classify.benignity !"all x: [u(x) - e(x)]")));
    t "exponential growth on the malignant expression" (fun () ->
        let word =
          List.init 10 (fun i -> Action.conc "a" [ string_of_int i ])
          @ List.init 5 (fun _ -> Action.conc "b" [])
        in
        let p = Instrument.profile !"all p: (a(p) - b - c(p))" word in
        match p.Instrument.growth with
        | Instrument.Exponential f -> check_bool "factor > 1" true (f > 1.1)
        | g -> Alcotest.failf "expected exponential, got %s" (Instrument.growth_to_string g));
    t "rejected actions are counted, not sampled" (fun () ->
        let p = Instrument.profile !"a - b" (w "a z z b") in
        check_int "rejected" 2 p.Instrument.rejected;
        check_int "samples" 2 (List.length p.Instrument.samples));
    t "csv output" (fun () ->
        let p = Instrument.profile !"a - b" (w "a b") in
        let csv = Instrument.to_csv p in
        check_bool "header" true (String.length csv > 10 && String.sub csv 0 10 = "index,size"))
  ]

(* Simulate: random walks stay within permitted behaviour. *)
let simulate_cases =
  [ t "random traces are partial words" (fun () ->
        List.iter
          (fun src ->
            let e = !src in
            let trace = Simulate.random_trace ~seed:7 ~length:12 e in
            Alcotest.(check bool) src true (Engine.word e trace <> Semantics.Illegal))
          [ "(a - b)*"; "some x: (u(x) - v(x))*"; "mutex(a - b, c)";
            "all p: [(u(p) - e(p))*]" ]);
    t "random traces are reproducible per seed" (fun () ->
        let e = !"(a | b | c)*" in
        let t1 = Simulate.random_trace ~seed:3 ~length:10 e in
        let t2 = Simulate.random_trace ~seed:3 ~length:10 e in
        let t3 = Simulate.random_trace ~seed:4 ~length:10 e in
        Alcotest.(check bool) "same seed" true (t1 = t2);
        Alcotest.(check bool) "likely different" true (t1 <> t3 || List.length t1 = 0));
    t "random_complete finds a complete word" (fun () ->
        match Simulate.random_complete ~seed:5 !"a - (b | c) - d" with
        | Some word ->
          Alcotest.check Testutil.verdict "complete" Semantics.Complete
            (Engine.word !"a - (b | c) - d" word)
        | None -> Alcotest.fail "expected to find a complete word");
    t "random_complete gives up on dead ends" (fun () ->
        Alcotest.(check bool) "none" true
          (Simulate.random_complete ~seed:5 ~attempts:5 !"(a - b) & (b - a)" = None
          || Simulate.random_complete ~seed:5 ~attempts:5 !"(a - b) & (b - a)" = Some []));
    t "walks stop when stuck" (fun () ->
        let trace = Simulate.random_trace ~seed:1 ~length:50 !"a - b" in
        Alcotest.(check int) "length" 2 (List.length trace));
    t "exercise counts accepts and rejects" (fun () ->
        let acc, rej = Simulate.exercise ~seed:2 ~rounds:100 !"(a - b)*" in
        Alcotest.(check int) "total" 100 (acc + rej);
        Alcotest.(check bool) "some of each" true (acc > 0 && rej > 0))
  ]

let () =
  Alcotest.run "audit"
    [ ("audit", audit_cases); ("parsing", parse_cases);
      ("oracle", [ to_alcotest audit_vs_word ]); ("instrument", instrument_cases);
      ("simulate", simulate_cases)
    ]
