open Interaction
open Testutil

let t name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let compile_cases =
  [ t "quasi-regular expressions compile" (fun () ->
        match Compile.compile !"(a - b)* || (c | d)*" with
        | Some dfa ->
          check_bool "has states" true (Compile.state_count dfa > 0);
          check_int "alphabet" 4 (List.length (Compile.alphabet dfa))
        | None -> Alcotest.fail "expected compilation to succeed");
    t "infinite state spaces do not compile" (fun () ->
        check_bool "none" true (Compile.compile ~max_states:50 !"(a - b)#" = None));
    t "state bound respected" (fun () ->
        check_bool "none" true (Compile.compile ~max_states:2 !"a - b - c - d" = None));
    t "verdicts match the interpreter" (fun () ->
        let e = !"(a - b)* @ (c - b)*" in
        let dfa = Option.get (Compile.compile e) in
        List.iter
          (fun input ->
            let word = w input in
            Alcotest.check verdict input (Engine.word e word) (Compile.word dfa word))
          [ ""; "a"; "a c b"; "c a b a c b"; "b"; "a b"; "a c b x" ]);
    t "final states counted" (fun () ->
        let dfa = Option.get (Compile.compile !"a | b - c") in
        check_bool "some final" true (Compile.final_count dfa >= 1))
  ]

let run_cases =
  [ t "runs step and reset" (fun () ->
        let dfa = Option.get (Compile.compile !"(a - b)*") in
        let r = Compile.start dfa in
        check_bool "initial accepting" true (Compile.accepting r);
        check_bool "a" true (Compile.step r (a1 "a"));
        check_bool "mid not accepting" false (Compile.accepting r);
        check_bool "a again rejected" false (Compile.step r (a1 "a"));
        check_bool "b" true (Compile.step r (a1 "b"));
        check_bool "accepting" true (Compile.accepting r);
        Compile.reset r;
        check_bool "reset accepting" true (Compile.accepting r));
    t "unknown actions are rejected" (fun () ->
        let dfa = Option.get (Compile.compile !"a") in
        let r = Compile.start dfa in
        check_bool "foreign" false (Compile.step r (a1 "zzz")))
  ]

(* DFA ≡ interpreted state model on random words, for every compilable
   random expression. *)
let equivalence =
  QCheck.Test.make ~count:200 ~name:"compiled DFA ≡ interpreted state model"
    (expr_word_arb ~max_depth:3 ~max_len:5 ())
    (fun (e, word) ->
      (* the word generator instantiates parameters over {1,2,3}; compile
         over the same value set so the automaton covers the word universe *)
      match Compile.compile ~max_states:500 ~max_state_size:500 ~values:[ "1"; "2"; "3" ] e with
      | None -> true (* not compilable within bounds: nothing to check *)
      | Some dfa ->
        if Compile.word dfa word = Engine.word e word then true
        else
          QCheck.Test.fail_reportf "DFA disagrees on %s"
            (String.concat " " (List.map Action.concrete_to_string word)))

let dsl_cases =
  [ t "parse a workflow definition" (fun () ->
        let wf =
          Wfms.Workflow.parse_exn ~name:"endo"
            "seq { order; schedule; and { inform; prepare }; call; perform }"
        in
        Alcotest.(check (list string)) "activities"
          [ "order"; "schedule"; "inform"; "prepare"; "call"; "perform" ]
          (Wfms.Workflow.activities wf));
    t "parsed workflow equals the built one" (fun () ->
        let parsed =
          Wfms.Workflow.parse_exn ~name:"w" "seq { a; xor { b; c }; d }"
        in
        let built =
          Wfms.Workflow.make "w"
            (Wfms.Workflow.Seq [ Task "a"; Xor [ Task "b"; Task "c" ]; Task "d" ])
        in
        Alcotest.(check bool) "same expr" true
          (Expr.equal
             (Wfms.Workflow.to_expr parsed ~args:[ "k" ])
             (Wfms.Workflow.to_expr built ~args:[ "k" ])));
    t "loop and opt take exactly one body" (fun () ->
        (match Wfms.Workflow.parse ~name:"w" "loop { a; b }" with
        | Ok _ -> Alcotest.fail "expected error"
        | Error _ -> ());
        match Wfms.Workflow.parse ~name:"w" "opt { a }" with
        | Ok _ -> ()
        | Error m -> Alcotest.fail m);
    t "parse errors are reported" (fun () ->
        List.iter
          (fun src ->
            match Wfms.Workflow.parse ~name:"w" src with
            | Ok _ -> Alcotest.failf "expected error on %S" src
            | Error _ -> ())
          [ ""; "seq {"; "seq { }"; "seq { a; }"; "a b"; "seq { a } x"; "$" ]);
    t "pp round-trips through parse" (fun () ->
        let wf =
          Wfms.Workflow.parse_exn ~name:"w"
            "seq { a; loop { xor { b; c } }; opt { d } }"
        in
        let printed = Format.asprintf "%a" Wfms.Workflow.pp_flow wf.Wfms.Workflow.flow in
        let wf' = Wfms.Workflow.parse_exn ~name:"w" printed in
        Alcotest.(check bool) "rt" true
          (Expr.equal
             (Wfms.Workflow.to_expr wf ~args:[])
             (Wfms.Workflow.to_expr wf' ~args:[])))
  ]

let () =
  Alcotest.run "compile"
    [ ("compile", compile_cases); ("runs", run_cases);
      ("equivalence", [ to_alcotest equivalence ]); ("workflow-dsl", dsl_cases)
    ]
