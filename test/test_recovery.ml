(* Crash-injection matrix for the durable interaction manager.

   A scripted medical-suite session drives a {!Durable} manager and an
   independent in-memory {!Manager} oracle in lockstep.  The WAL is then
   cut at *every* record boundary — plus torn mid-record cuts and a
   CRC-corrupted record — and each cut is recovered into a fresh manager,
   which must be observationally equivalent to the oracle at the matching
   point of the script: same permitted answers, confirmed log,
   subscriptions, outstanding grant, counters, and queue contents.

   The only licensed difference is the recovery requeue: the process
   death is a receiver crash for every inbox, so the recovered queues
   hold the oracle's in-flight envelopes back in front of its pending
   ones (deliveries counts intact), and nothing in flight. *)

open Interaction
open Interaction_manager
module Store = Interaction_store.Store
module Wal = Interaction_store.Wal

let t name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)
let check_strs = Alcotest.(check (list string))

(* ---- scratch directories ------------------------------------------ *)

let dir_seq = ref 0

let fresh_dir () =
  incr dir_seq;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "irecovery-%d-%d" (Unix.getpid ()) !dir_seq)

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let wal_path dir = Filename.concat dir "wal.log"
let snap_path dir = Filename.concat dir "snapshot.sexp"

(* A store copy whose WAL is the first [cut] bytes of the original — the
   crash image "the disk held when the process died". *)
let cut_store ~src ~cut =
  let dst = fresh_dir () in
  Unix.mkdir dst 0o755;
  if Sys.file_exists (snap_path src) then
    write_file (snap_path dst) (read_file (snap_path src));
  let wal = read_file (wal_path src) in
  write_file (wal_path dst) (String.sub wal 0 (min cut (String.length wal)));
  dst

(* Byte offsets of the record boundaries of a WAL file, starting with 0;
   element [k] is where the [k]-th record begins (last element = end of
   the valid log). *)
let boundaries wal =
  let len = String.length wal in
  let rec go pos acc =
    if pos + 8 > len then List.rev (pos :: acc)
    else
      let l = Int32.to_int (String.get_int32_le wal pos) in
      if pos + 8 + l > len then List.rev (pos :: acc)
      else go (pos + 8 + l) (pos :: acc)
  in
  go 0 []

let is_op r = String.length r >= 2 && String.sub r 0 2 = "(r"

(* ---- the scripted session ----------------------------------------- *)

type step =
  | Ask of string * Action.concrete
  | Confirm of string * Action.concrete
  | Abort of string * Action.concrete
  | Execute of string * Action.concrete
  | Timeout
  | Subscribe of string * Action.concrete
  | Unsubscribe of string * Action.concrete
  | Recv of string
  | Ackn of string
  | Drain of string
  | CrashRecv of string

let apply_durable d = function
  | Ask (client, a) -> ignore (Durable.ask d ~client a)
  | Confirm (client, a) -> Durable.confirm d ~client a
  | Abort (client, a) -> Durable.abort d ~client a
  | Execute (client, a) -> ignore (Durable.execute d ~client a)
  | Timeout -> Durable.timeout_outstanding d
  | Subscribe (client, a) -> Durable.subscribe d ~client a
  | Unsubscribe (client, a) -> Durable.unsubscribe d ~client a
  | Recv client -> ignore (Durable.receive_notification d ~client)
  | Ackn client -> Durable.ack_notification d ~client
  | Drain client -> ignore (Durable.drain_notifications d ~client)
  | CrashRecv client -> Durable.crash_client d ~client

let apply_oracle m = function
  | Ask (client, a) -> ignore (Manager.ask m ~client a)
  | Confirm (client, a) -> Manager.confirm m ~client a
  | Abort (client, a) -> Manager.abort m ~client a
  | Execute (client, a) -> ignore (Manager.execute m ~client a)
  | Timeout -> Manager.timeout_outstanding m
  | Subscribe (client, a) -> Manager.subscribe m ~client a
  | Unsubscribe (client, a) -> Manager.unsubscribe m ~client a
  | Recv client -> ignore (Mqueue.receive_envelope (Manager.inbox m ~client))
  | Ackn client -> Mqueue.ack (Manager.inbox m ~client)
  | Drain client -> ignore (Manager.drain_notifications m ~client)
  | CrashRecv client -> Mqueue.crash_receiver (Manager.inbox m ~client)

let a name p x = Action.conc name [ p; x ]

(* Two patients under the capacity-1 medical constraint: enough
   contention for denials and Busy replies, plus the full subscription
   machinery with an unacknowledged in-flight envelope left at the end
   (so recovery's requeue path is always exercised at the final cut).
   The compiled constraint graphs split every activity into a start and
   a terminate action, hence the [_s]/[_t] suffixes. *)
let script =
  [ Subscribe ("worklist", a "call_s" "p1" "sono");
    Subscribe ("worklist", a "perform_s" "p1" "sono");
    Execute ("wfms-p1", a "prepare_s" "p1" "sono");
    Execute ("wfms-p1", a "prepare_t" "p1" "sono");
    Ask ("wfms-p1", a "call_s" "p1" "sono");
    Ask ("wfms-p2", a "call_s" "p2" "endo");   (* critical region: Busy *)
    Confirm ("wfms-p1", a "call_s" "p1" "sono");
    Recv "worklist";                           (* in flight, never acked *)
    Execute ("wfms-p2", a "call_s" "p2" "endo");  (* capacity 1: denied *)
    Execute ("wfms-p1", a "call_t" "p1" "sono");
    Ask ("wfms-p1", a "perform_s" "p1" "sono");
    Abort ("wfms-p1", a "perform_s" "p1" "sono");
    Execute ("wfms-p1", a "order" "p1" "sono");  (* foreign: open world *)
    Execute ("wfms-p1", a "perform_s" "p1" "sono");
    Execute ("wfms-p1", a "perform_t" "p1" "sono");
    Recv "worklist";
    CrashRecv "worklist";                      (* both requeued *)
    Recv "worklist";                           (* deliveries >= 2 *)
    Ackn "worklist";
    Drain "worklist";
    Subscribe ("wfms-p2", a "call_s" "p2" "endo");
    Execute ("wfms-p2", a "call_s" "p2" "endo");  (* capacity free now *)
    Ask ("wfms-p2", a "call_t" "p2" "endo");
    Timeout;
    Unsubscribe ("worklist", a "call_s" "p1" "sono");
    Execute ("wfms-p2", a "call_t" "p2" "endo");
    Recv "wfms-p2"                             (* left in flight at the end *)
  ]

let expr () = Wfms.Medical.combined_constraint ~capacity:1 ()

let probes =
  List.concat_map
    (fun n ->
      List.concat_map
        (fun p -> List.map (a n p) [ "sono"; "endo" ])
        [ "p1"; "p2" ])
    [ "prepare_s"; "prepare_t"; "call_s"; "call_t"; "perform_s"; "perform_t";
      "inform_s"; "inform_t" ]

(* ---- observational equivalence ------------------------------------ *)

let env_strs envs =
  List.map
    (fun e -> Sexp.to_string (Mqueue.envelope_to_sexp Manager.notification_to_sexp e))
    envs

let sub_strs m =
  List.map
    (fun (c, act, last) ->
      Printf.sprintf "%s %s %b" c (Action.concrete_to_string act) last)
    (Manager.subscriptions m)

let out_str m =
  match Manager.outstanding m with
  | None -> "-"
  | Some (c, act) -> c ^ " " ^ Action.concrete_to_string act

let stats_t = Alcotest.testable Manager.pp_stats ( = )

(* [recovered] must behave exactly like [oracle] — modulo the recovery
   requeue when the oracle has envelopes in flight. *)
let check_equiv msg oracle recovered =
  List.iter
    (fun act ->
      check_bool
        (msg ^ ": permitted " ^ Action.concrete_to_string act)
        (Manager.permitted oracle act)
        (Manager.permitted recovered act))
    probes;
  check_strs (msg ^ ": confirmed log")
    (List.map Action.concrete_to_string (Manager.confirmed_log oracle))
    (List.map Action.concrete_to_string (Manager.confirmed_log recovered));
  check_strs (msg ^ ": subscriptions") (sub_strs oracle) (sub_strs recovered);
  check_str (msg ^ ": outstanding grant") (out_str oracle) (out_str recovered);
  Alcotest.check stats_t (msg ^ ": stats") (Manager.stats oracle)
    (Manager.stats recovered);
  let clients = Manager.inbox_clients oracle in
  check_strs (msg ^ ": inbox clients") clients (Manager.inbox_clients recovered);
  let requeued =
    List.exists
      (fun c -> Mqueue.in_flight (Manager.inbox oracle ~client:c) > 0)
      clients
  in
  List.iter
    (fun c ->
      let oq = Manager.inbox oracle ~client:c in
      let rq = Manager.inbox recovered ~client:c in
      let expect_pending =
        if requeued then
          Mqueue.flight_envelopes oq @ Mqueue.pending_envelopes oq
        else Mqueue.pending_envelopes oq
      in
      check_strs
        (msg ^ ": pending of " ^ c)
        (env_strs expect_pending)
        (env_strs (Mqueue.pending_envelopes rq));
      check_int (msg ^ ": in flight of " ^ c)
        (if requeued then 0 else Mqueue.in_flight oq)
        (Mqueue.in_flight rq);
      check_int (msg ^ ": sent of " ^ c) (Mqueue.sent_count oq)
        (Mqueue.sent_count rq);
      check_int
        (msg ^ ": redelivered of " ^ c)
        (Mqueue.redelivered_count oq)
        (Mqueue.redelivered_count rq))
    clients

(* ---- driving the session ------------------------------------------ *)

(* Run the script against a durable manager and the oracle in lockstep,
   asserting full-image agreement after every step, and record the
   oracle's image at every WAL op count (the key recovery needs: a cut
   containing j op records must recover to the oracle after j logged
   operations).  [snapshot_at] takes a mid-script snapshot, resetting
   the WAL — the recorded op counts restart, and lookups take the most
   recent entry, which is the one counted from the surviving snapshot. *)
let drive ?snapshot_at dir =
  let e = expr () in
  let d = Durable.open_ ~fsync:false ~dir e in
  let oracle = Manager.create e in
  let imgs = ref [ (0, Sexp.to_string (Manager.image oracle)) ] in
  List.iteri
    (fun i step ->
      Telemetry.with_trace (100 + i)
        (fun () ->
          apply_durable d step;
          apply_oracle oracle step);
      check_str
        (Printf.sprintf "lockstep after step %d" i)
        (Sexp.to_string (Manager.image oracle))
        (Sexp.to_string (Manager.image (Durable.manager d)));
      (match snapshot_at with
      | Some j when j = i -> Durable.snapshot d
      | _ -> ());
      let ops = List.length (List.filter is_op (Wal.records (wal_path dir))) in
      imgs := (ops, Sexp.to_string (Manager.image oracle)) :: !imgs)
    script;
  Durable.close d;
  (oracle, !imgs (* newest first: List.assoc finds the latest for a count *))

let img_for imgs j =
  match List.assoc_opt j imgs with
  | Some img -> img
  | None -> Alcotest.failf "no oracle image recorded for op count %d" j

let recover_cut ?(reopen = false) ~msg ~e ~src ~cut imgs =
  let dst = cut_store ~src ~cut in
  Fun.protect
    ~finally:(fun () -> rm_rf dst)
    (fun () ->
      let recs = Wal.records (wal_path dst) in
      let j = List.length (List.filter is_op recs) in
      let oracle = Manager.of_image (Sexp.of_string_exn (img_for imgs j)) in
      let d = Durable.open_ ~fsync:false ~dir:dst e in
      check_equiv msg oracle (Durable.manager d);
      Durable.close d;
      if reopen then begin
        (* recovery must itself be durable: the requeue it performed was
           logged, so a second crash straight after recovers identically *)
        let d2 = Durable.open_ ~fsync:false ~dir:dst e in
        check_equiv (msg ^ " (reopened)") oracle (Durable.manager d2);
        Durable.close d2
      end)

let matrix ?snapshot_at name =
  t name (fun () ->
      let src = fresh_dir () in
      Fun.protect
        ~finally:(fun () -> rm_rf src)
        (fun () ->
          let oracle, imgs = drive ?snapshot_at src in
          (* the script must actually exercise the interesting machinery *)
          check_bool "script leaves an envelope in flight" true
            (List.exists
               (fun c -> Mqueue.in_flight (Manager.inbox oracle ~client:c) > 0)
               (Manager.inbox_clients oracle));
          check_bool "script commits actions" true
            (List.length (Manager.confirmed_log oracle) >= 4);
          check_bool "script redelivers" true
            (List.exists
               (fun c ->
                 Mqueue.redelivered_count (Manager.inbox oracle ~client:c) > 0)
               (Manager.inbox_clients oracle));
          let wal = read_file (wal_path src) in
          let bounds = boundaries wal in
          check_bool "several records to cut at" true (List.length bounds > 10);
          let last = List.length bounds - 1 in
          List.iteri
            (fun k off ->
              (* kill exactly at the record boundary *)
              recover_cut ~reopen:(k = last)
                ~msg:(Printf.sprintf "cut at record %d" k)
                ~e:(expr ()) ~src ~cut:off imgs;
              (* torn header: a few bytes of the next record's frame *)
              if k < last then
                recover_cut
                  ~msg:(Printf.sprintf "torn header after record %d" k)
                  ~e:(expr ()) ~src ~cut:(off + 3) imgs;
              (* torn payload: the next record short by one byte *)
              if k < last then
                let next = List.nth bounds (k + 1) in
                recover_cut
                  ~msg:(Printf.sprintf "torn payload after record %d" k)
                  ~e:(expr ()) ~src ~cut:(next - 1) imgs)
            bounds))

let corrupt =
  t "corrupt byte: CRC rejects the record and everything after" (fun () ->
      let src = fresh_dir () in
      Fun.protect
        ~finally:(fun () -> rm_rf src)
        (fun () ->
          let _oracle, imgs = drive src in
          let wal = read_file (wal_path src) in
          let bounds = Array.of_list (boundaries wal) in
          let n = Array.length bounds - 1 in
          (* flip one payload byte of a record in the middle of the log *)
          let k = n / 2 in
          let pos = bounds.(k) + 8 in
          let mutated = Bytes.of_string wal in
          Bytes.set mutated pos (Char.chr (Char.code (Bytes.get mutated pos) lxor 0xff));
          let dst = fresh_dir () in
          Unix.mkdir dst 0o755;
          write_file (wal_path dst) (Bytes.to_string mutated);
          Fun.protect
            ~finally:(fun () -> rm_rf dst)
            (fun () ->
              (* only the records before the corruption survive *)
              let recs = Wal.records (wal_path dst) in
              check_int "records truncated at the corruption" k
                (List.length recs);
              let j = List.length (List.filter is_op recs) in
              let oracle =
                Manager.of_image (Sexp.of_string_exn (img_for imgs j))
              in
              let d = Durable.open_ ~fsync:false ~dir:dst (expr ()) in
              check_equiv "corrupt cut" oracle (Durable.manager d);
              Durable.close d)))

let store_guards =
  [ t "empty store bootstraps a fresh manager" (fun () ->
        let dir = fresh_dir () in
        Fun.protect
          ~finally:(fun () -> rm_rf dir)
          (fun () ->
            let e = expr () in
            let d = Durable.open_ ~fsync:false ~dir e in
            check_int "nothing replayed" 0 (Durable.replayed d);
            check_str "same image as a fresh manager"
              (Sexp.to_string (Manager.image (Manager.create e)))
              (Sexp.to_string (Manager.image (Durable.manager d)));
            Durable.close d));
    t "store of a different expression is refused" (fun () ->
        let dir = fresh_dir () in
        Fun.protect
          ~finally:(fun () -> rm_rf dir)
          (fun () ->
            let d = Durable.open_ ~fsync:false ~dir (expr ()) in
            Durable.snapshot d;
            Durable.close d;
            Alcotest.check_raises "refused"
              (Invalid_argument
                 "Durable.open_: store belongs to a different expression")
              (fun () ->
                ignore
                  (Durable.open_ ~fsync:false ~dir
                     Wfms.Medical.patient_constraint))));
    t "crash between snapshot rename and WAL truncation" (fun () ->
        (* the one ordering window of Store.snapshot: the new snapshot is
           durably renamed in, but the process dies before the WAL reset —
           reopening sees the snapshot plus a log it already covers, and
           replaying that log would apply every operation twice.  The
           crash image is reconstructed from parts: the WAL of a store
           that never snapshotted, under the snapshot of its twin that
           did. *)
        let dir = fresh_dir () and crash = fresh_dir () in
        Fun.protect
          ~finally:(fun () ->
            rm_rf dir;
            rm_rf crash)
          (fun () ->
            let e = expr () in
            let d = Durable.open_ ~fsync:false ~dir e in
            let a = Action.conc "call_s" [ "p1"; "sono" ] in
            let b = Action.conc "call_t" [ "p1"; "sono" ] in
            Durable.subscribe d ~client:"w" a;
            check_bool "a commits" true (Durable.execute d ~client:"wf" a);
            check_bool "b commits" true (Durable.execute d ~client:"wf" b);
            let oracle = Sexp.to_string (Manager.image (Durable.manager d)) in
            let covered_wal = read_file (wal_path dir) in
            Durable.snapshot d;
            Durable.close d;
            Unix.mkdir crash 0o755;
            write_file (snap_path crash) (read_file (snap_path dir));
            write_file (wal_path crash) covered_wal;
            let r = Durable.open_ ~fsync:false ~dir:crash e in
            check_int "covered records are not replayed" 0 (Durable.replayed r);
            check_str "image matches the snapshot, not a double application"
              oracle
              (Sexp.to_string (Manager.image (Durable.manager r)));
            check_strs "confirmed log is not doubled"
              (List.map Action.concrete_to_string [ a; b ])
              (List.map Action.concrete_to_string
                 (Manager.confirmed_log (Durable.manager r)));
            Durable.close r))
  ]

(* ---- random scripts: recovery equivalence as a property ------------ *)

let qcheck_recovery =
  let gen =
    QCheck.make
      ~print:(fun (steps, cut) ->
        Printf.sprintf "steps=%s cut=%d"
          (String.concat ","
             (List.map
                (fun (k, c, x) -> Printf.sprintf "%d:%d:%d" k c x)
                steps))
          cut)
      QCheck.Gen.(
        pair
          (list_size (int_range 1 25)
             (triple (int_range 0 5) (int_range 0 2) (int_range 0 3)))
          (int_range 0 200))
  in
  QCheck.Test.make ~name:"random session: every cut recovers to the oracle"
    ~count:30 gen (fun (steps, cutpick) ->
      let e = Syntax.parse_exn "mutex(a - b, c - d)" in
      let acts = [| Action.conc "a" []; Action.conc "b" []; Action.conc "c" []; Action.conc "d" [] |] in
      let clients = [| "c0"; "c1"; "c2" |] in
      let dir = fresh_dir () in
      Fun.protect
        ~finally:(fun () -> rm_rf dir)
        (fun () ->
          let d = Durable.open_ ~fsync:false ~dir e in
          let oracle = Manager.create e in
          let imgs = ref [ (0, Sexp.to_string (Manager.image oracle)) ] in
          List.iteri
            (fun i (kind, ci, ai) ->
              let client = clients.(ci) in
              let act = acts.(ai) in
              let step =
                match kind with
                | 0 -> Some (Execute (client, act))
                | 1 -> Some (Subscribe (client, act))
                | 2 -> Some (Recv client)
                | 3 ->
                  (* ack only when something is in flight (else it raises);
                     probe without creating the inbox as a side effect *)
                  if
                    List.mem client (Manager.inbox_clients oracle)
                    && Mqueue.in_flight (Manager.inbox oracle ~client) > 0
                  then Some (Ackn client)
                  else None
                | 4 -> Some (CrashRecv client)
                | _ -> Some (Unsubscribe (client, act))
              in
              match step with
              | None -> ()
              | Some step ->
                Telemetry.with_trace (1000 + i)
                  (fun () ->
                    apply_durable d step;
                    apply_oracle oracle step);
                let ops =
                  List.length (List.filter is_op (Wal.records (wal_path dir)))
                in
                imgs := (ops, Sexp.to_string (Manager.image oracle)) :: !imgs)
            steps;
          Durable.close d;
          let wal = read_file (wal_path dir) in
          let bounds = Array.of_list (boundaries wal) in
          let cut = bounds.(cutpick mod Array.length bounds) in
          recover_cut ~msg:"random cut" ~e ~src:dir ~cut !imgs;
          true))

let () =
  Alcotest.run "recovery"
    [ ("matrix", [ matrix "every record boundary, no snapshot";
                   matrix ~snapshot_at:11 "every record boundary, mid-script snapshot" ]);
      ("corruption", [ corrupt ]);
      ("guards", store_guards);
      ("property", [ QCheck_alcotest.to_alcotest qcheck_recovery ])
    ]
