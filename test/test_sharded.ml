(* The parallel interaction manager (lib/manager/sharded.ml) against a
   single Manager on the undecomposed expression. *)

open Interaction
open Interaction_manager
open Interaction_exec
open Testutil

let t name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let pool = Pool.create ~domains:2
let () = at_exit (fun () -> Pool.shutdown pool)

let projections e log =
  List.map (fun (_, al) -> List.filter (Alpha.mem al) log) (Partition.components e)

let routing_cases =
  [ t "routed execute matches a single manager, log and all" (fun () ->
        let e = !"(a - b)* @ (c - d)*" in
        let sm = Sharded.create ~pool e in
        let m = Manager.create e in
        check_int "two shards" 2 (Sharded.shard_count sm);
        List.iter
          (fun action ->
            check_bool
              (Action.concrete_to_string action)
              (Manager.execute m ~client:"x" action)
              (Sharded.execute sm ~client:"x" action))
          (w "a c b d b a d c");
        check_bool "global log" true
          (Sharded.confirmed_log sm = Manager.confirmed_log m);
        check_bool "shard logs are projections" true
          (Sharded.shard_logs sm = projections e (Manager.confirmed_log m));
        check_int "no coordination" 0 (Sharded.coordinations sm));
    t "foreign actions are granted open-world, touching no replica" (fun () ->
        let sm = Sharded.create ~pool !"(a - b) @ (c - d)" in
        check_bool "granted" true (Sharded.execute sm ~client:"x" (a1 "zz"));
        check_int "counted" 1 (Sharded.foreign_grants sm);
        check_int "no transitions" 0 (Sharded.stats sm).Manager.transitions;
        check_bool "log untouched" true (Sharded.confirmed_log sm = []));
    t "critical regions are per shard" (fun () ->
        let sm = Sharded.create ~pool !"(a - b) @ (c - d)" in
        check_bool "a granted" true
          (Sharded.ask sm ~client:"u" (a1 "a") = Manager.Granted);
        (* u holds shard 0's region: shard 0 is busy for others... *)
        check_bool "same shard busy" true
          (Sharded.ask sm ~client:"v" (a1 "b") = Manager.Busy);
        (* ...but shard 1 serves concurrently *)
        check_bool "other shard free" true
          (Sharded.ask sm ~client:"v" (a1 "c") = Manager.Granted);
        Sharded.confirm sm ~client:"u" (a1 "a");
        Sharded.abort sm ~client:"v" (a1 "c");
        check_bool "only the confirm committed" true
          (Sharded.confirmed_log sm = [ a1 "a" ]);
        check_bool "aborted action retries fine" true
          (Sharded.execute sm ~client:"v" (a1 "c")))
  ]

let batch_cases =
  [ t "execute_batch matches sequential execution in offer order" (fun () ->
        let e = !"(a - b)* @ (c - d)" in
        let script = w "a c a b zz d c b a" in
        let sm = Sharded.create ~pool e in
        let m = Manager.create e in
        let rs = Sharded.execute_batch sm ~client:"x" script in
        let rm = List.map (Manager.execute m ~client:"x") script in
        check_bool "per-offer results" true (rs = rm);
        check_int "one batch" 1 (Sharded.batches sm);
        check_int "no coordination" 0 (Sharded.coordinations sm);
        check_bool "shard logs are projections" true
          (Sharded.shard_logs sm = projections e (Manager.confirmed_log m)));
    t "stats sum across replicas" (fun () ->
        let sm = Sharded.create ~pool !"(a - b) @ (c - d)" in
        ignore (Sharded.execute_batch sm ~client:"x" (w "a c b d"));
        let st = Sharded.stats sm in
        check_int "asks" 4 st.Manager.asks;
        check_int "grants" 4 st.Manager.grants;
        check_int "confirms" 4 st.Manager.confirms);
    t "queue depths report one entry per shard" (fun () ->
        let sm = Sharded.create ~pool !"(a - b) @ (c - d)" in
        check_int "two lanes" 2 (List.length (Sharded.queue_depths sm)))
  ]

let subscription_cases =
  [ t "notifications match the single manager's" (fun () ->
        let e = !"(a - b) @ (c - d)" in
        let sm = Sharded.create ~pool e in
        let m = Manager.create e in
        List.iter
          (fun action ->
            Sharded.subscribe sm ~client:"sub" action;
            Manager.subscribe m ~client:"sub" action)
          [ a1 "b"; a1 "d" ];
        List.iter
          (fun action ->
            ignore (Sharded.execute sm ~client:"x" action);
            ignore (Manager.execute m ~client:"x" action))
          (w "a c b");
        let key (n : Manager.notification) =
          (Action.concrete_to_string n.action, n.now_permitted)
        in
        let norm l = List.sort compare (List.map key l) in
        check_bool "same notification set" true
          (norm (Sharded.drain_notifications sm ~client:"sub")
          = norm (Manager.drain_notifications m ~client:"sub")))
  ]

let durability_cases =
  [ t "crash and recovery preserve every shard's state" (fun () ->
        let e = !"(a - b)* @ (c - d)" in
        let sm = Sharded.create ~pool e in
        ignore (Sharded.execute_batch sm ~client:"x" (w "a c b"));
        Sharded.crash_all sm;
        Sharded.recover_all sm;
        check_bool "d permitted" true (Sharded.permitted sm (a1 "d"));
        check_bool "b needs an a first" false (Sharded.permitted sm (a1 "b"));
        check_bool "the loop continues" true (Sharded.execute sm ~client:"x" (a1 "a")))
  ]

(* The oracle property: on a random disjoint coupling and a random offer
   sequence (foreign actions included), the sharded manager's per-offer
   fates equal a single manager's, its shard logs are the single log's
   projections, its notification sets match, and the defensive two-phase
   path never fires. *)
let prop_sharded_eq_manager =
  QCheck.Test.make ~count:400 ~long_factor:2
    ~name:"sharded manager == single manager"
    (coupling_word_arb ~max_components:3 ~max_len:8 ())
    (fun (e, script) ->
      let sm = Sharded.create ~pool e in
      let m = Manager.create e in
      (* subscribe to a few actions of the universe on both sides *)
      let watched =
        List.filteri (fun i _ -> i mod 3 = 0) (universe_of e)
      in
      List.iter
        (fun action ->
          Sharded.subscribe sm ~client:"sub" action;
          Manager.subscribe m ~client:"sub" action)
        watched;
      let rs = Sharded.execute_batch sm ~client:"x" script in
      let rm = List.map (Manager.execute m ~client:"x") script in
      let key (n : Manager.notification) =
        (Action.concrete_to_string n.action, n.now_permitted)
      in
      let notif t drain = List.sort compare (List.map key (drain t ~client:"sub")) in
      rs = rm
      && Sharded.coordinations sm = 0
      && Sharded.shard_logs sm = projections e (Manager.confirmed_log m)
      && notif sm Sharded.drain_notifications = notif m Manager.drain_notifications)

let () =
  Alcotest.run "sharded"
    [ ("routing", routing_cases);
      ("batch", batch_cases);
      ("subscription", subscription_cases);
      ("durability", durability_cases);
      ("oracle", [ to_alcotest prop_sharded_eq_manager ])
    ]
