open Interaction
open Interaction_manager
open Testutil

let t name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)

let sexp_cases =
  [ t "atoms and lists render and parse" (fun () ->
        let s = Sexp.(list [ atom "a"; list [ atom "b"; atom "c d" ]; atom "" ]) in
        let str = Sexp.to_string s in
        Alcotest.(check string) "rendered" {|(a (b "c d") "")|} str;
        check_bool "round-trip" true (Sexp.of_string_exn str = s));
    t "escapes" (fun () ->
        let s = Sexp.atom "x\"y\\z\nw" in
        check_bool "rt" true (Sexp.of_string_exn (Sexp.to_string s) = s));
    t "comments are skipped" (fun () ->
        check_bool "comment" true
          (Sexp.of_string_exn "(a ; comment\n b)" = Sexp.(list [ atom "a"; atom "b" ])));
    t "errors are reported" (fun () ->
        List.iter
          (fun input ->
            match Sexp.of_string input with
            | Ok _ -> Alcotest.failf "expected error on %S" input
            | Error _ -> ())
          [ "("; ")"; "(a"; "\"x"; "a b"; "" ]);
    t "converters" (fun () ->
        Alcotest.(check int) "int" 42 (Sexp.int_field (Sexp.atom "42"));
        check_bool "bool" true (Sexp.bool_field (Sexp.atom "true"));
        Alcotest.check_raises "bad int" (Invalid_argument "Sexp: expected an integer atom")
          (fun () -> ignore (Sexp.int_field (Sexp.atom "x"))));
    t "pp prints parseable output" (fun () ->
        let s = Sexp.(list [ atom "a"; list [ atom "b" ] ]) in
        let printed = Format.asprintf "%a" Sexp.pp s in
        check_bool "reparses" true (Sexp.of_string_exn printed = s))
  ]

let expr_rt =
  QCheck.Test.make ~count:300 ~name:"Expr sexp round-trip" (expr_arb ~max_depth:4 ())
    (fun e ->
      let e' = Expr.of_sexp (Sexp.of_string_exn (Sexp.to_string (Expr.to_sexp e))) in
      if Expr.equal e e' then true
      else QCheck.Test.fail_reportf "lost: %s" (Syntax.to_string e))

let state_rt =
  QCheck.Test.make ~count:200 ~name:"State sexp round-trip after random words"
    (expr_word_arb ~max_depth:3 ~max_len:4 ())
    (fun (e, word) ->
      let s = Engine.create e in
      ignore (Engine.feed s word);
      match Engine.state s with
      | None -> true
      | Some st ->
        let st' = State.of_sexp (Sexp.of_string_exn (Sexp.to_string (State.to_sexp st))) in
        if State.equal st st' then true
        else QCheck.Test.fail_reportf "state lost for %s" (Syntax.to_string e))

let session_cases =
  [ t "save/load preserves behaviour" (fun () ->
        let s = Engine.create !"(a - b)* @ (c - b)*" in
        ignore (Engine.feed s (w "a c"));
        let s' = Engine.load (Engine.save s) in
        Alcotest.(check int) "trace" 2 (List.length (Engine.trace s'));
        check_bool "same next steps" true
          (Engine.permitted s (a1 "b") = Engine.permitted s' (a1 "b"));
        check_bool "b accepted" true (Engine.try_action s' (a1 "b")));
    t "dead sessions survive save/load" (fun () ->
        let s = Engine.create !"a" in
        ignore (Engine.force s (a1 "zzz"));
        let s' = Engine.load (Engine.save s) in
        check_bool "still dead" false (Engine.is_alive s'));
    t "load rejects garbage" (fun () ->
        match Engine.load "(not a session)" with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected failure")
  ]

let checkpoint_cases =
  [ t "checkpoint + crash + recover_with resumes" (fun () ->
        let m = Manager.create !"a - b - c - d" in
        check_bool "a" true (Manager.execute m ~client:"c" (a1 "a"));
        check_bool "b" true (Manager.execute m ~client:"c" (a1 "b"));
        let cp = Manager.checkpoint m in
        check_bool "c" true (Manager.execute m ~client:"c" (a1 "c"));
        Manager.crash m;
        Manager.recover_with m ~checkpoint:cp;
        check_bool "alive" true (Manager.alive m);
        (* state must reflect a b (checkpoint) + c (log suffix) *)
        check_bool "d next" true (Manager.execute m ~client:"c" (a1 "d"));
        check_bool "complete run" false (Manager.permitted m (a1 "a")));
    t "checkpoint of a quantified constraint" (fun () ->
        let m = Manager.create Wfms.Medical.patient_constraint in
        check_bool "call" true (Manager.execute m ~client:"c" (a1 "call_s(p1,sono)"));
        let cp = Manager.checkpoint m in
        Manager.crash m;
        Manager.recover_with m ~checkpoint:cp;
        check_bool "still exclusive" false (Manager.permitted m (a1 "call_s(p1,endo)"));
        check_bool "continues" true (Manager.execute m ~client:"c" (a1 "call_t(p1,sono)")));
    t "checkpoint for a different expression is rejected" (fun () ->
        let m1 = Manager.create !"a" in
        let m2 = Manager.create !"b" in
        let cp = Manager.checkpoint m1 in
        Manager.crash m2;
        match Manager.recover_with m2 ~checkpoint:cp with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected rejection");
    t "malformed checkpoints are rejected" (fun () ->
        let m = Manager.create !"a" in
        Manager.crash m;
        match Manager.recover_with m ~checkpoint:"gibberish(" with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected rejection")
  ]

let checkpoint_equiv =
  QCheck.Test.make ~count:100 ~name:"checkpoint recovery ≡ full log replay"
    (expr_word_arb ~max_depth:3 ~max_len:5 ())
    (fun (e, word) ->
      let m1 = Manager.create e and m2 = Manager.create e in
      let half = List.length word / 2 in
      List.iteri
        (fun i c ->
          let r1 = Manager.execute m1 ~client:"x" c in
          let r2 = Manager.execute m2 ~client:"x" c in
          assert (r1 = r2);
          if i = half - 1 then begin
            (* checkpoint m1 mid-run and immediately restore from it *)
            let cp = Manager.checkpoint m1 in
            Manager.crash m1;
            Manager.recover_with m1 ~checkpoint:cp
          end)
        word;
      Manager.crash m2;
      Manager.recover m2;
      (* both managers must now agree on every probe action *)
      List.for_all
        (fun c -> Manager.permitted m1 c = Manager.permitted m2 c)
        word)

let () =
  Alcotest.run "persist"
    [ ("sexp", sexp_cases);
      ("round-trips", List.map to_alcotest [ expr_rt; state_rt ]);
      ("sessions", session_cases); ("checkpoints", checkpoint_cases);
      ("equivalence", [ to_alcotest checkpoint_equiv ])
    ]
