(* Multi-domain regression suite for the shared-memory kernels: the global
   hash-cons must make states physically equal across domains, one compiled
   automaton / VM program must serve concurrent walkers with correct
   verdicts, and the batched per-domain counters must lose no bumps —
   post-join stats deltas are checked exactly, not approximately (the
   regression that motivated the suite was a lost-flush race in the
   batched tallies). *)

open Interaction
open Interaction_exec
open Testutil

let t name f = Alcotest.test_case name `Quick f
let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* The E1 expression: harmless, so the automaton compiles eagerly and the
   bytecode backend accepts it. *)
let e1 = ! "((a - b)* || (c | d)*) @ (e - f)*"
let e1_script = [ "a"; "c"; "e"; "b"; "d"; "f"; "a"; "b"; "c"; "d" ]

let e1_word reps =
  List.concat
    (List.init reps (fun _ -> List.map (fun n -> Action.conc n []) e1_script))

(* ------------------------------------------------------------------ *)
(* Global hash-cons: physical identity across domains                  *)
(* ------------------------------------------------------------------ *)

let hashcons_cases =
  let identity_at domains =
    t (Printf.sprintf "State.init is one physical state across %d domains" domains)
      (fun () ->
        Pool.with_pool ~domains (fun pool ->
            let here = State.init e1 in
            let there =
              Pool.map_workers pool
                (List.init domains (fun _ () -> State.init e1))
            in
            List.iter
              (fun st -> check_bool "physically equal" true (st == here))
              there))
  in
  let trans_at domains =
    t (Printf.sprintf "transition results are shared across %d domains" domains)
      (fun () ->
        let w = e1_word 1 in
        Pool.with_pool ~domains (fun pool ->
            let here = State.trans_word (State.init e1) w in
            let there =
              Pool.map_workers pool
                (List.init domains (fun _ () ->
                     State.trans_word (State.init e1) w))
            in
            check_bool "caller reached a state" true (here <> None);
            List.iter
              (fun r ->
                match (r, here) with
                | Some a, Some b -> check_bool "physically equal" true (a == b)
                | _ -> Alcotest.fail "a domain failed the walk")
              there))
  in
  [ identity_at 2; identity_at 4; trans_at 2; trans_at 4 ]

(* ------------------------------------------------------------------ *)
(* Batched tallies: no bump is ever lost                               *)
(* ------------------------------------------------------------------ *)

let tally_cases =
  [ t "concurrent bumps from 4 domains drain to the exact total" (fun () ->
        let total = Atomic.make 0 in
        let tl = Dshard.Tally.create total in
        let per_domain = 50_000 in
        let workers =
          Array.init 4 (fun _ ->
              Domain.spawn (fun () ->
                  for i = 1 to per_domain do
                    (* mixed increments, crossing the flush threshold many
                       times per domain *)
                    Dshard.Tally.bump tl (if i mod 3 = 0 then 3 else 1)
                  done))
        in
        Array.iter Domain.join workers;
        Dshard.Tally.drain tl;
        let expected =
          4 * (per_domain + (per_domain / 3) * 2)
        in
        check_int "exact total" expected (Atomic.get total));
    t "a churn of short-lived domains loses nothing to slot reuse" (fun () ->
        (* more domains than tally slots, sequentially: every spawn after
           the 64th lands on a reused slot (the collision/creation path
           must publish cells with no pending count in flight) *)
        let total = Atomic.make 0 in
        let tl = Dshard.Tally.create total in
        for _ = 1 to 70 do
          Domain.join
            (Domain.spawn (fun () ->
                 for _ = 1 to 1_000 do
                   Dshard.Tally.bump tl 1
                 done))
        done;
        Dshard.Tally.drain tl;
        check_int "exact total" 70_000 (Atomic.get total))
  ]

(* ------------------------------------------------------------------ *)
(* One shared automaton / VM program, many walkers                     *)
(* ------------------------------------------------------------------ *)

let walks_per_domain = 25

let shared_kernel_cases =
  [ t "4 domains walk one shared automaton; steps count exactly" (fun () ->
        let w = e1_word 5 in
        let len = List.length w in
        Automaton.reset_shared ();
        let a = Automaton.shared e1 in
        let expected_verdict = Automaton.run_word a w in
        check_bool "word is legal" true (expected_verdict <> None);
        Automaton.reset_stats ();
        Pool.with_pool ~domains:4 (fun pool ->
            ignore
              (Pool.map_workers pool
                 (List.init 4 (fun _ () ->
                      for _ = 1 to walks_per_domain do
                        check_bool "verdict agrees" true
                          (Automaton.run_word a w = expected_verdict)
                      done))));
        let st = Automaton.stats () in
        check_int "exact step count" (4 * walks_per_domain * len)
          st.Automaton.steps;
        check_int "no interpreted fallbacks" 0 st.Automaton.fallbacks);
    t "4 domains walk one shared VM program; steps count exactly" (fun () ->
        let w = e1_word 5 in
        let len = List.length w in
        Bytecode.reset_shared ();
        match Bytecode.shared e1 with
        | None -> Alcotest.fail "E1 must compile to bytecode"
        | Some vm ->
          let expected_verdict = Bytecode.Vm.word vm w in
          check_bool "word is legal" true (expected_verdict <> None);
          Bytecode.reset_stats ();
          Pool.with_pool ~domains:4 (fun pool ->
              ignore
                (Pool.map_workers pool
                   (List.init 4 (fun _ () ->
                        for _ = 1 to walks_per_domain do
                          check_bool "verdict agrees" true
                            (Bytecode.Vm.word vm w = expected_verdict)
                        done))));
          let st = Bytecode.stats () in
          check_int "exact step count" (4 * walks_per_domain * len)
            st.Bytecode.steps);
    t "concurrent cold fill: domains populate one automaton and agree"
      (fun () ->
        (* a lazy coupling, walked from cold by every domain at once with
           different words: row interning and entry fill race on the
           instance lock, verdicts must still match the interpreted τ̂ *)
        let e =
          Expr.sync_list
            (List.init 4 (fun i ->
                 Syntax.parse_exn (Printf.sprintf "(a%d - b%d)*" (i + 1) (i + 1))))
        in
        let word_for i =
          List.concat
            (List.init 6 (fun _ ->
                 [ Action.conc (Printf.sprintf "a%d" (i + 1)) [];
                   Action.conc (Printf.sprintf "b%d" (i + 1)) []
                 ]))
        in
        let oracle w =
          match State.trans_word (State.init e) w with
          | None -> None
          | Some s -> Some (State.final s)
        in
        Pool.with_pool ~domains:4 (fun pool ->
            let a = Automaton.create e in
            let got =
              Pool.map_workers pool
                (List.init 4 (fun i () -> Automaton.run_word a (word_for i)))
            in
            List.iteri
              (fun i v ->
                check_bool
                  (Printf.sprintf "domain %d verdict" i)
                  true
                  (v = oracle (word_for i)))
              got))
  ]

(* ------------------------------------------------------------------ *)
(* Engine sessions under concurrent per-domain caches                  *)
(* ------------------------------------------------------------------ *)

let engine_cases =
  [ t "Engine.word agrees with the interpreted oracle from every domain"
      (fun () ->
        let w = e1_word 3 in
        let oracle =
          match State.trans_word (State.init e1) w with
          | None -> Semantics.Illegal
          | Some s -> if State.final s then Semantics.Complete else Semantics.Partial
        in
        Pool.with_pool ~domains:4 (fun pool ->
            let got =
              Pool.map_workers pool
                (List.init 4 (fun _ () -> Engine.word e1 w))
            in
            List.iter
              (fun v -> check_bool "verdict" true (v = oracle))
              got))
  ]

let () =
  Alcotest.run "concurrent"
    [ ("hashcons", hashcons_cases);
      ("tally", tally_cases);
      ("shared-kernel", shared_kernel_cases);
      ("engine", engine_cases)
    ]
