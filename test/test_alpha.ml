open Interaction
open Testutil

let t name f = Alcotest.test_case name `Quick f
let mem e s = Alpha.mem (Alpha.of_expr !e) (a1 s)

let membership =
  [ t "concrete atoms" (fun () ->
        Alcotest.(check bool) "in" true (mem "a(1) - b" "a(1)");
        Alcotest.(check bool) "in2" true (mem "a(1) - b" "b");
        Alcotest.(check bool) "out" false (mem "a(1) - b" "a(2)");
        Alcotest.(check bool) "out2" false (mem "a(1) - b" "c"));
    t "bound parameters match any value" (fun () ->
        Alcotest.(check bool) "any" true (mem "some p: a(p)" "a(42)"));
    t "repeated binder positions stay correlated" (fun () ->
        Alcotest.(check bool) "same" true (mem "some p: a(p,p)" "a(3,3)");
        Alcotest.(check bool) "diff" false (mem "some p: a(p,p)" "a(3,1)"));
    t "distinct binders are independent" (fun () ->
        Alcotest.(check bool) "indep" true (mem "some p: some q: a(p,q)" "a(3,1)"));
    t "shadowed binders are distinct" (fun () ->
        (* outer p is shadowed inside; both positions belong to different
           binders only if nested — here a(p,p) sits under the inner one *)
        let e = Expr.some_q "p" (Expr.some_q "p" (Syntax.parse_exn "x(?p,?p)")) in
        Alcotest.(check bool) "corr" false (Alpha.mem (Alpha.of_expr e) (a1 "x(1,2)")));
    t "free parameters match nothing" (fun () ->
        Alcotest.(check bool) "free" false (mem "a(?p)" "a(1)"));
    t "mixed concrete and bound positions" (fun () ->
        Alcotest.(check bool) "ok" true (mem "some p: call(p, endo)" "call(7,endo)");
        Alcotest.(check bool) "bad" false (mem "some p: call(p, endo)" "call(7,sono)"))
  ]

let candidates =
  [ t "candidate extraction binds the parameter" (fun () ->
        let al = Alpha.of_expr !"a(?p) - b" in
        Alcotest.(check (list string)) "one" [ "5" ] (Alpha.candidates "p" al (a1 "a(5)"));
        Alcotest.(check (list string)) "none" [] (Alpha.candidates "p" al (a1 "b")));
    t "consistency across positions" (fun () ->
        let al = Alpha.of_expr !"a(?p,?p)" in
        Alcotest.(check (list string)) "same" [ "5" ]
          (Alpha.candidates "p" al (a1 "a(5,5)"));
        Alcotest.(check (list string)) "diff" [] (Alpha.candidates "p" al (a1 "a(5,6)")));
    t "multiple patterns can contribute different values" (fun () ->
        let al = Alpha.of_expr !"a(?p,1) | a(2,?p)" in
        Alcotest.(check (list string)) "both" [ "2"; "1" ]
          (Alpha.candidates "p" al (a1 "a(2,1)")));
    t "other free parameters block the pattern" (fun () ->
        let al = Alpha.of_expr !"a(?p,?q)" in
        Alcotest.(check (list string)) "blocked" [] (Alpha.candidates "p" al (a1 "a(1,2)")));
    t "inner binders act as wildcards for candidates" (fun () ->
        let al = Alpha.of_expr !"some q: a(?p, q)" in
        Alcotest.(check (list string)) "wild" [ "1" ]
          (Alpha.candidates "p" al (a1 "a(1,9)")));
    t "duplicates are removed, first-match order is kept" (fun () ->
        (* pattern order is left-to-right in the expression; a value
           contributed by several patterns appears once, at its first
           position *)
        let al = Alpha.of_expr !"a(?p,1) | a(2,?p) | a(?p,?p)" in
        Alcotest.(check (list string)) "order" [ "2"; "1" ]
          (Alpha.candidates "p" al (a1 "a(2,1)"));
        Alcotest.(check (list string)) "dedup" [ "2" ]
          (Alpha.candidates "p" al (a1 "a(2,2)")))
  ]

let subst =
  [ t "subst turns free positions concrete" (fun () ->
        let al = Alpha.subst "p" "5" (Alpha.of_expr !"a(?p)") in
        Alcotest.(check bool) "now in" true (Alpha.mem al (a1 "a(5)"));
        Alcotest.(check bool) "not other" false (Alpha.mem al (a1 "a(6)")));
    t "subst leaves bound positions alone" (fun () ->
        let al = Alpha.subst "p" "5" (Alpha.of_expr !"some q: a(?p, q)") in
        Alcotest.(check bool) "wild" true (Alpha.mem al (a1 "a(5,77)")))
  ]

let dedup =
  [ t "alphabet deduplicates equal patterns" (fun () ->
        Alcotest.(check int) "len" 1 (List.length (Alpha.of_expr !"a(1) - a(1)")));
    t "alphabet keeps distinct patterns" (fun () ->
        Alcotest.(check int) "len" 2 (List.length (Alpha.of_expr !"a(1) - a(2)")))
  ]

let () =
  Alcotest.run "alpha"
    [ ("membership", membership); ("candidates", candidates); ("subst", subst);
      ("dedup", dedup)
    ]
