open Interaction
open Testutil

let t name f = Alcotest.test_case name `Quick f

let is_verdict e expected =
  Alcotest.(check string) (Syntax.to_string !e) expected
    (match Classify.benignity !e with
    | Classify.Harmless -> "harmless"
    | Classify.Benign d -> "benign:" ^ string_of_int d
    | Classify.Potentially_malignant -> "malignant?")

let predicates =
  [ t "quasi-regular: no pariter/quantifier" (fun () ->
        Alcotest.(check bool) "qr" true (Classify.quasi_regular !"(a - b)* | c & d @ e");
        Alcotest.(check bool) "pariter" false (Classify.quasi_regular !"a#");
        Alcotest.(check bool) "quant" false (Classify.quasi_regular !"some p: a(p)"));
    t "parameterless" (fun () ->
        Alcotest.(check bool) "yes" true (Classify.parameterless !"a(1) - b");
        Alcotest.(check bool) "no" false (Classify.parameterless !"a(?p)"));
    t "uniformly quantified" (fun () ->
        Alcotest.(check bool) "uniform" true
          (Classify.uniformly_quantified !"some p: a(p) - b(p,1)");
        Alcotest.(check bool) "non-uniform" false
          (Classify.uniformly_quantified !"some p: a(p) - b");
        Alcotest.(check bool) "nested uniform" true
          (Classify.uniformly_quantified !"all p: some x: a(p,x)");
        Alcotest.(check bool) "nested non-uniform" false
          (Classify.uniformly_quantified !"all p: some x: a(p,x) - b(x)"));
    t "completely quantified" (fun () ->
        Alcotest.(check bool) "closed" true (Classify.completely_quantified !"some p: a(p)");
        Alcotest.(check bool) "free" false (Classify.completely_quantified !"a(?p)"))
  ]

let verdicts =
  [ t "quasi-regular is harmless" (fun () -> is_verdict "(a - b)* | c" "harmless");
    t "uniform quantifier is benign degree 1" (fun () ->
        is_verdict "all p: [(u(p) - e(p))*]" "benign:1");
    t "nested uniform quantifiers raise the degree" (fun () ->
        is_verdict "all p: some x: a(p,x)" "benign:2");
    t "non-uniform quantifier is potentially malignant" (fun () ->
        is_verdict "all p: (a(p) - b - c(p))" "malignant?");
    t "unguarded parallel iteration is potentially malignant" (fun () ->
        is_verdict "(a - b)#" "malignant?");
    t "pariter over uniform some-quantifier is benign" (fun () ->
        is_verdict "(some p: a(p) - b(p))#" "benign:2");
    t "the paper's examples are benign" (fun () ->
        (* Fig. 3 patient constraint, simplified shape *)
        is_verdict
          "all p: mutex(some x: prep(p,x), some x: (call(p,x) - perf(p,x)), some x: inf(p,x))"
          "benign:2")
  ]

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let describe =
  [ t "describe mentions the verdict" (fun () ->
        Alcotest.(check bool) "contains" true
          (contains ~needle:"harmless" (Classify.describe !"a - b")));
    t "describe lists the predicates" (fun () ->
        let d = Classify.describe !"some p: a(p)" in
        Alcotest.(check bool) "uniform" true (contains ~needle:"uniformly" d);
        Alcotest.(check bool) "benign" true (contains ~needle:"benign" d))
  ]

let explain_cases =
  let t name f = Alcotest.test_case name `Quick f in
  [ t "explain locates the non-uniform quantifier" (fun () ->
        let d = Classify.explain !"all p: (a(p) - b - c(p))" in
        Alcotest.(check bool) "culprit named" true (contains ~needle:"omit p: b" d);
        Alcotest.(check bool) "verdict" true (contains ~needle:"POTENTIALLY MALIGNANT" d));
    t "explain blesses uniform quantifiers" (fun () ->
        let d = Classify.explain !"all p: (u(p) - e(p))*" in
        Alcotest.(check bool) "benign" true (contains ~needle:"uniformly quantified" d));
    t "explain annotates parallel iterations" (fun () ->
        let d = Classify.explain !"(a - b)#" in
        Alcotest.(check bool) "flagged" true (contains ~needle:"ambiguous walkers" d))
  ]

let () =
  Alcotest.run "classify"
    [ ("predicates", predicates); ("verdicts", verdicts); ("describe", describe);
      ("explain", explain_cases)
    ]
