(** Bench-history files: load the committed [BENCH_pr*.json] series
    (schema 2 onward), normalize the schema drift into one pinned metric
    list, print a trajectory table, and gate a current run against a
    baseline.

    The schema has grown monotonically — sections appear, keys get
    renamed as experiments are superseded (E18's compiled word became
    E20's vm word) — so each normalized metric carries the {e paths} it
    may live at, tried newest-first.  The gate is the CI teeth: a
    regression beyond tolerance in any pinned metric present in both
    files exits nonzero, so a slowdown fails the PR that introduced it
    instead of being discovered one schema later. *)

type t = {
  file : string;
  schema : int;  (** [_meta.schema_version]; 0 when absent *)
  values : (string * float) list;
      (** every numeric leaf as ["section.key"], sorted; booleans count
          as 0/1, strings and [_meta]/[_cores] bookkeeping are dropped *)
}

val load : string -> t option
(** Parse one bench JSON file; [None] if unreadable or malformed. *)

val load_all : string list -> t list
(** Load every readable file, sorted by schema version then name;
    unreadable files are reported on stderr and skipped. *)

val find : t -> string -> float option
(** Look up a flattened ["section.key"] path. *)

(** {1 The pinned metric list} *)

type direction = Lower_better | Higher_better

type metric = {
  mname : string;
  unit_ : string;
  direction : direction;
  paths : string list;  (** candidate locations, newest schema first *)
}

val metrics : metric list
(** The normalized headline series: steady-state word/session/feed
    latencies, durability costs, recovery and multicore throughputs,
    headline cache hit rates. *)

val lookup : t -> metric -> float option
(** First present path wins. *)

(** {1 Trajectory} *)

val trajectory : t list -> string
(** One row per pinned metric, one column per file (schema order), "-"
    where a schema predates the metric. *)

(** {1 The gate} *)

type verdict = Pass | Fail

type gate_row = {
  gname : string;
  base : float;
  cur : float;
  delta_pct : float;  (** signed change in the {e bad} direction *)
  ok : bool;
}

type gate_report = {
  verdict : verdict;
  tolerance : float;
  rows : gate_row list;  (** metrics compared (present in both files) *)
  lock_rows : gate_row list;
      (** contended-lock p99 bound checks ([base] = the bound, µs) *)
  skipped : string list;  (** metrics absent from one side *)
}

val gate :
  tolerance:float ->
  ?max_lock_p99_us:float ->
  baseline:t ->
  current:t ->
  unit ->
  gate_report
(** Compare every pinned metric present in both files: [delta_pct] is
    the percentage change in the direction that hurts (slower for
    lower-better, lower for higher-better), and a row fails when it
    exceeds [tolerance].  With [max_lock_p99_us], every
    [*_wait_p99_ns] leaf of the current file is additionally bounded.
    Metrics with a zero/absent baseline are skipped, not failed. *)

val gate_to_string : gate_report -> string
