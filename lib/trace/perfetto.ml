(* Chrome trace-event ("Perfetto") export.

   One JSON object, {"traceEvents":[...]}, loadable in
   https://ui.perfetto.dev or chrome://tracing:

   - every closed span / timed point is a complete ("X") slice on the
     track of its emitting domain (pid 0, tid = domain id, named by a
     thread_name metadata record);
   - untimed points are instants ("i");
   - each trace id with more than one slice becomes a flow (an "s" arrow
     start on its first slice, a "t" step on every later one), so a
     request's hops across domains draw as connected arrows.

   Timestamps are microseconds, rebased to the earliest slice so the
   viewer opens at t=0 instead of at the wall-clock epoch. *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let value_to_json = function
  | Telemetry.Int i -> string_of_int i
  | Telemetry.Float f -> Printf.sprintf "%g" f
  | Telemetry.Str s -> "\"" ^ escape s ^ "\""
  | Telemetry.Bool b -> if b then "true" else "false"

let args_json trace fields =
  let b = Buffer.create 64 in
  Buffer.add_string b "{";
  Printf.bprintf b "\"trace\":%d" trace;
  List.iter
    (fun (k, v) ->
      Printf.bprintf b ",\"%s\":%s" (escape k) (value_to_json v))
    fields;
  Buffer.add_string b "}";
  Buffer.contents b

let us ~t0 ts = Int64.to_float (Int64.sub ts t0) /. 1000.

let to_string forest =
  let nodes = ref [] in
  Spantree.iter (fun n -> if n.Spantree.closed then nodes := n :: !nodes) forest;
  let nodes = List.rev !nodes in
  let t0 =
    List.fold_left
      (fun a (n : Spantree.node) -> min a n.Spantree.start_ts)
      Int64.max_int nodes
  in
  let t0 =
    List.fold_left
      (fun a (ev : Telemetry.event) -> min a ev.Telemetry.ts)
      t0 forest.Spantree.points
  in
  let t0 = if t0 = Int64.max_int then 0L else t0 in
  let b = Buffer.create 4096 in
  let first = ref true in
  let record s =
    if !first then first := false else Buffer.add_string b ",\n";
    Buffer.add_string b s
  in
  Buffer.add_string b "{\"traceEvents\":[\n";
  (* one named track per domain *)
  let doms =
    List.sort_uniq compare
      (List.map (fun (n : Spantree.node) -> n.Spantree.dom) nodes
      @ List.map (fun (ev : Telemetry.event) -> ev.Telemetry.dom)
          forest.Spantree.points)
  in
  List.iter
    (fun d ->
      record
        (Printf.sprintf
           "{\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":\"domain %d\"}}"
           d d))
    doms;
  List.iter
    (fun (n : Spantree.node) ->
      record
        (Printf.sprintf
           "{\"ph\":\"X\",\"pid\":0,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f,\"name\":\"%s\",\"cat\":\"span\",\"args\":%s}"
           n.Spantree.dom
           (us ~t0 n.Spantree.start_ts)
           (float_of_int (Spantree.dur_ns n) /. 1000.)
           (escape n.Spantree.name)
           (args_json n.Spantree.trace n.Spantree.fields)))
    nodes;
  List.iter
    (fun (ev : Telemetry.event) ->
      record
        (Printf.sprintf
           "{\"ph\":\"i\",\"pid\":0,\"tid\":%d,\"ts\":%.3f,\"name\":\"%s\",\"s\":\"t\",\"cat\":\"point\",\"args\":%s}"
           ev.Telemetry.dom
           (us ~t0 ev.Telemetry.ts)
           (escape ev.Telemetry.name)
           (args_json ev.Telemetry.trace ev.Telemetry.fields)))
    forest.Spantree.points;
  (* flow arrows: one flow per trace id across its slices *)
  let by_trace : (int, Spantree.node list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (n : Spantree.node) ->
      if n.Spantree.trace <> 0 then
        Hashtbl.replace by_trace n.Spantree.trace
          (n
          :: Option.value ~default:[]
               (Hashtbl.find_opt by_trace n.Spantree.trace)))
    nodes;
  Hashtbl.fold (fun tr ns acc -> (tr, List.rev ns) :: acc) by_trace []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.iter (fun (tr, ns) ->
         match ns with
         | [] | [ _ ] -> ()
         | first_n :: rest ->
           let flow ph (n : Spantree.node) =
             record
               (Printf.sprintf
                  "{\"ph\":\"%s\",\"pid\":0,\"tid\":%d,\"ts\":%.3f,\"name\":\"request\",\"cat\":\"flow\",\"id\":%d}"
                  ph n.Spantree.dom
                  (us ~t0 n.Spantree.start_ts)
                  tr)
           in
           flow "s" first_n;
           List.iter (flow "t") rest);
  Buffer.add_string b "\n],\"displayTimeUnit\":\"ns\"}\n";
  Buffer.contents b
