(* Flame-graph folded stacks: one line per distinct root-to-node name
   path, `a;b;c <self_ns>`, mergeable by the standard flamegraph.pl /
   speedscope / inferno toolchains.  Self time (not inclusive time) per
   line is the folded-stack convention — the graph's width sums to total
   instrumented time exactly once. *)

let folded forest =
  let tbl : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let rec go prefix (n : Spantree.node) =
    let path = if prefix = "" then n.Spantree.name else prefix ^ ";" ^ n.Spantree.name in
    if n.Spantree.closed then begin
      let self = Spantree.self_ns n in
      if self > 0 then
        Hashtbl.replace tbl path
          (self + Option.value ~default:0 (Hashtbl.find_opt tbl path))
    end;
    List.iter (go path) n.Spantree.children
  in
  List.iter (go "") forest.Spantree.roots;
  Hashtbl.fold (fun path ns acc -> (path, ns) :: acc) tbl []
  |> List.sort compare

let to_string forest =
  let b = Buffer.create 1024 in
  List.iter
    (fun (path, ns) -> Printf.bprintf b "%s %d\n" path ns)
    (folded forest);
  Buffer.contents b
