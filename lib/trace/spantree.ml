(* Span-tree reconstruction from a flat event stream.

   Span_start/Span_end pairs share a span id; a point event's [span]
   field names its enclosing span.  Reconstruction keeps, per span id, a
   *stack* of open nodes — `Telemetry.reset` restarts the id counter, so
   one file can legitimately contain the same id twice (the inner one
   closes first).  Timed point events (those carrying an integer
   ["dur_ns"] field: wal.append, store.snapshot, engine.eval,
   engine.try_action) become closed leaf nodes spanning
   [ts - dur_ns, ts], so the parent's self-time excludes them and a WAL
   fsync inside a manager.execute is charged to the WAL, not the
   manager.

   Truncated logs are expected: a start whose end was cut off is an
   *orphan start* (the node stays in the tree with zero duration), an
   end whose start predates the log is an *unmatched end*.  Both are
   counted, never raised. *)

type node = {
  span : int;  (* 0 for synthesized timed-point leaves *)
  name : string;
  trace : int;
  dom : int;
  start_ts : int64;
  mutable end_ts : int64;
  mutable fields : Telemetry.fields;  (* start fields, then end fields *)
  mutable children : node list;  (* reconstruction order *)
  mutable closed : bool;
}

type forest = {
  roots : node list;  (* start order *)
  orphan_starts : int;  (* spans opened but never closed *)
  orphan_ends : int;  (* span ends with no matching open span *)
  points : Telemetry.event list;  (* untimed point events, file order *)
  events : int;  (* events consumed *)
}

let orphans f = f.orphan_starts + f.orphan_ends

let dur_ns n =
  if not n.closed then 0
  else
    match List.assoc_opt "dur_ns" n.fields with
    | Some (Telemetry.Int d) -> max 0 d
    | _ -> max 0 (Int64.to_int (Int64.sub n.end_ts n.start_ts))

let self_ns n =
  let kids = List.fold_left (fun a c -> a + dur_ns c) 0 n.children in
  max 0 (dur_ns n - kids)

let timed_point_dur (ev : Telemetry.event) =
  if ev.Telemetry.kind <> Telemetry.Point then None
  else
    match List.assoc_opt "dur_ns" ev.Telemetry.fields with
    | Some (Telemetry.Int d) -> Some (max 0 d)
    | _ -> None

let build events =
  let open_tbl : (int, node list ref) Hashtbl.t = Hashtbl.create 64 in
  let stack_of id =
    match Hashtbl.find_opt open_tbl id with
    | Some r -> r
    | None ->
      let r = ref [] in
      Hashtbl.add open_tbl id r;
      r
  in
  let top id = match !(stack_of id) with [] -> None | n :: _ -> Some n in
  let roots = ref [] and orphan_ends = ref 0 and points = ref [] and n_events = ref 0 in
  let attach ~enclosing node =
    match if enclosing = 0 then None else top enclosing with
    | Some p -> p.children <- node :: p.children
    | None -> roots := node :: !roots
  in
  List.iter
    (fun (ev : Telemetry.event) ->
      incr n_events;
      match ev.Telemetry.kind with
      | Telemetry.Span_start ->
        let node =
          { span = ev.Telemetry.span;
            name = ev.Telemetry.name;
            trace = ev.Telemetry.trace;
            dom = ev.Telemetry.dom;
            start_ts = ev.Telemetry.ts;
            end_ts = ev.Telemetry.ts;
            fields = ev.Telemetry.fields;
            children = [];
            closed = false }
        in
        attach ~enclosing:ev.Telemetry.parent node;
        let st = stack_of ev.Telemetry.span in
        st := node :: !st
      | Telemetry.Span_end -> (
        let st = stack_of ev.Telemetry.span in
        match !st with
        | [] -> incr orphan_ends
        | node :: rest ->
          st := rest;
          node.end_ts <- ev.Telemetry.ts;
          node.fields <- node.fields @ ev.Telemetry.fields;
          node.closed <- true)
      | Telemetry.Point -> (
        match timed_point_dur ev with
        | Some d ->
          let node =
            { span = 0;
              name = ev.Telemetry.name;
              trace = ev.Telemetry.trace;
              dom = ev.Telemetry.dom;
              start_ts = Int64.sub ev.Telemetry.ts (Int64.of_int d);
              end_ts = ev.Telemetry.ts;
              fields = ev.Telemetry.fields;
              children = [];
              closed = true }
          in
          (* a point's [span] field is its enclosing span *)
          attach ~enclosing:ev.Telemetry.span node
        | None -> points := ev :: !points))
    events;
  let orphan_starts =
    Hashtbl.fold (fun _ r acc -> acc + List.length !r) open_tbl 0
  in
  let rec fix n =
    n.children <- List.rev n.children;
    List.iter fix n.children
  in
  let roots = List.rev !roots in
  List.iter fix roots;
  { roots;
    orphan_starts;
    orphan_ends = !orphan_ends;
    points = List.rev !points;
    events = !n_events }

let iter f forest =
  let rec go n =
    f n;
    List.iter go n.children
  in
  List.iter go forest.roots

let fold f acc forest =
  let acc = ref acc in
  iter (fun n -> acc := f !acc n) forest;
  !acc

let closed_count forest = fold (fun a n -> if n.closed then a + 1 else a) 0 forest
