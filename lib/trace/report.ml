(* The human-readable `itrace summary` report: parse/reconstruction
   counters, a per-operation latency table (exact nearest-rank
   percentiles over every closed occurrence of each span/point name),
   and a per-trace attribution table with the slowest requests first.
   All output is deterministic given the input file — the cram suite
   pins it against a checked-in mini trace. *)

type op_stat = {
  op : string;
  count : int;
  p50 : int;
  p90 : int;
  p99 : int;
  max_ns : int;
}

(* exact nearest-rank percentile on a sorted array *)
let rank q n = max 0 (min (n - 1) (int_of_float (ceil (q *. float_of_int n)) - 1))

let op_stats forest =
  let samples : (string, int list ref) Hashtbl.t = Hashtbl.create 32 in
  Spantree.iter
    (fun n ->
      if n.Spantree.closed then
        match Hashtbl.find_opt samples n.Spantree.name with
        | Some r -> r := Spantree.dur_ns n :: !r
        | None -> Hashtbl.add samples n.Spantree.name (ref [ Spantree.dur_ns n ]))
    forest;
  Hashtbl.fold
    (fun op r acc ->
      let a = Array.of_list !r in
      Array.sort compare a;
      let n = Array.length a in
      { op;
        count = n;
        p50 = a.(rank 0.50 n);
        p90 = a.(rank 0.90 n);
        p99 = a.(rank 0.99 n);
        max_ns = a.(n - 1) }
      :: acc)
    samples []
  |> List.sort (fun a b -> compare a.op b.op)

(* Aggregate the profiler's [lock.wait] points by site: each event is one
   contended acquisition with its wait in the [dur_ns] field, so the
   section reads as "which lock serialized this trace, and how badly". *)
type lock_stat = {
  lsite : string;
  waits : int;
  total_ns : int;
  lmax_ns : int;
  lp99 : int;
}

let lock_stats events =
  let samples : (string, int list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (ev : Telemetry.event) ->
      if ev.Telemetry.kind = Telemetry.Point && ev.Telemetry.name = "lock.wait"
      then begin
        let site =
          match List.assoc_opt "site" ev.Telemetry.fields with
          | Some (Telemetry.Str s) -> s
          | _ -> "?"
        in
        let dur =
          match List.assoc_opt "dur_ns" ev.Telemetry.fields with
          | Some (Telemetry.Int d) -> d
          | _ -> 0
        in
        match Hashtbl.find_opt samples site with
        | Some r -> r := dur :: !r
        | None -> Hashtbl.add samples site (ref [ dur ])
      end)
    events;
  Hashtbl.fold
    (fun lsite r acc ->
      let a = Array.of_list !r in
      Array.sort compare a;
      let n = Array.length a in
      { lsite;
        waits = n;
        total_ns = Array.fold_left ( + ) 0 a;
        lmax_ns = a.(n - 1);
        lp99 = a.(rank 0.99 n) }
      :: acc)
    samples []
  |> List.sort (fun a b ->
         match compare b.total_ns a.total_ns with
         | 0 -> compare a.lsite b.lsite
         | c -> c)

let flags_of (a : Attrib.t) ~slow_ns =
  List.filter_map Fun.id
    [ (if a.Attrib.denied then Some "denied" else None);
      (if a.Attrib.raised then Some "raised" else None);
      (match slow_ns with
      | Some s when a.Attrib.wall_ns >= s -> Some "slow"
      | _ -> None) ]
  |> String.concat ","

let summary ?(top = 10) ?slow_ns ~files (src : Source.t) =
  let forest = Spantree.build src.Source.events in
  let attribs = Attrib.of_events src.Source.events forest in
  let b = Buffer.create 2048 in
  let pf fmt = Printf.bprintf b fmt in
  pf "itrace: %d file(s), %d event(s), %d bad line(s)\n" (List.length files)
    forest.Spantree.events src.Source.bad_lines;
  pf "spans: %d closed, %d orphan start(s), %d unmatched end(s); traces: %d\n"
    (Spantree.closed_count forest)
    forest.Spantree.orphan_starts forest.Spantree.orphan_ends
    (List.length attribs);
  let ops = op_stats forest in
  if ops <> [] then begin
    pf "per-operation latency (ns):\n";
    pf "  %-32s %7s %10s %10s %10s %10s\n" "operation" "count" "p50" "p90" "p99"
      "max";
    List.iter
      (fun s ->
        pf "  %-32s %7d %10d %10d %10d %10d\n" s.op s.count s.p50 s.p90 s.p99
          s.max_ns)
      ops
  end;
  (match lock_stats src.Source.events with
  | [] -> ()
  | locks ->
    pf "contention (contended lock waits, ns):\n";
    pf "  %-32s %7s %12s %10s %10s\n" "site" "waits" "total" "p99" "max";
    List.iter
      (fun l ->
        pf "  %-32s %7d %12d %10d %10d\n" l.lsite l.waits l.total_ns l.lp99
          l.lmax_ns)
      locks);
  if attribs <> [] then begin
    let slowest =
      List.sort (fun a b -> compare b.Attrib.wall_ns a.Attrib.wall_ns) attribs
    in
    let shown = List.filteri (fun i _ -> i < top) slowest in
    pf "per-trace attribution (ns), slowest %d of %d:\n" (List.length shown)
      (List.length attribs);
    pf "  %7s %10s %10s %10s %10s %10s %10s  %s\n" "trace" "wall" "queue"
      "engine" "manager" "wal" "other" "flags";
    List.iter
      (fun (a : Attrib.t) ->
        pf "  %7d %10d %10d %10d %10d %10d %10d  %s\n" a.Attrib.trace
          a.Attrib.wall_ns a.Attrib.queue_ns a.Attrib.engine_ns
          a.Attrib.manager_ns a.Attrib.wal_ns a.Attrib.other_ns
          (flags_of a ~slow_ns))
      shown;
    let tot f = List.fold_left (fun acc a -> acc + f a) 0 attribs in
    pf "totals (ns): queue=%d engine=%d manager=%d wal=%d other=%d\n"
      (tot (fun a -> a.Attrib.queue_ns))
      (tot (fun a -> a.Attrib.engine_ns))
      (tot (fun a -> a.Attrib.manager_ns))
      (tot (fun a -> a.Attrib.wal_ns))
      (tot (fun a -> a.Attrib.other_ns));
    (match slowest with
    | s :: _ when s.Attrib.critical_path <> [] ->
      pf "critical path of trace %d: %s\n" s.Attrib.trace
        (String.concat " > " s.Attrib.critical_path)
    | _ -> ());
    let multi =
      List.filter (fun a -> List.length a.Attrib.doms > 1) attribs
    in
    if multi <> [] then
      pf "multi-domain traces: %d (of %d)\n" (List.length multi)
        (List.length attribs)
  end;
  Buffer.contents b
