(* Loading exported telemetry streams back into memory.

   A source is whatever produced JSONL: `imanager --trace`, `bench smoke`,
   a flight-recorder dump, a tail-sampler capture file.  Real exports end
   mid-line when the process died or several domains interleaved a write,
   so unparseable lines are counted, never fatal — the strictness policy
   belongs to the caller (itrace --strict). *)

type t = {
  events : Telemetry.event list;  (* file order *)
  lines : int;  (* non-blank input lines *)
  bad_lines : int;  (* non-blank lines that did not parse *)
}

let empty = { events = []; lines = 0; bad_lines = 0 }

let of_lines lines =
  let events = ref [] and n = ref 0 and bad = ref 0 in
  List.iter
    (fun line ->
      if String.trim line <> "" then begin
        incr n;
        match Telemetry.Jsonl.parse_line line with
        | Some ev -> events := ev :: !events
        | None -> incr bad
      end)
    lines;
  { events = List.rev !events; lines = !n; bad_lines = !bad }

let of_string s = of_lines (String.split_on_char '\n' s)

let of_channel ic =
  let rec go acc =
    match In_channel.input_line ic with
    | Some l -> go (l :: acc)
    | None -> List.rev acc
  in
  of_lines (go [])

let of_file path = In_channel.with_open_text path of_channel

let concat ts =
  { events = List.concat_map (fun t -> t.events) ts;
    lines = List.fold_left (fun a t -> a + t.lines) 0 ts;
    bad_lines = List.fold_left (fun a t -> a + t.bad_lines) 0 ts }
