(* Per-request latency attribution.

   For one trace id, wall time (first event ts → last event ts) is
   carved into segments by charging every tree node's *self* time to the
   layer its name belongs to — double counting is impossible because a
   node's self time excludes its children, and timed points (wal.append,
   engine.eval, ...) are children.  Queue wait is not a span at all: it
   is the gap between an mqueue.enqueue point and the mqueue.dequeue
   point that delivered the same envelope, paired FIFO per (queue,
   origin_trace) — the envelope's origin_trace field ties both ends to
   the request even though the dequeue runs in the receiver's context. *)

type category = Queue | Engine | Manager | Wal | Other

let category name =
  let has_prefix p =
    String.length name >= String.length p
    && String.sub name 0 (String.length p) = p
  in
  if has_prefix "engine." then Engine
  else if has_prefix "wal." || has_prefix "store." then Wal
  else if has_prefix "mqueue." then Queue
  else if
    has_prefix "manager." || has_prefix "federation." || has_prefix "durable."
    || has_prefix "adapter." || has_prefix "workitem" || has_prefix "worklist"
    || has_prefix "sentinel."
  then Manager
  else Other

type t = {
  trace : int;
  events : int;  (* events carrying this trace id *)
  wall_ns : int;  (* last ts - first ts over the trace's events *)
  queue_ns : int;  (* enqueue->dequeue gaps of the trace's envelopes *)
  engine_ns : int;  (* self time of engine.* spans/points *)
  manager_ns : int;  (* self time of manager/federation/durable/adapter *)
  wal_ns : int;  (* self time of wal.*/store.* *)
  other_ns : int;  (* self time of everything else *)
  denied : bool;
  raised : bool;
  doms : int list;  (* distinct emitting domains, sorted *)
  critical_path : string list;  (* heaviest root-to-leaf name chain *)
}

(* heaviest root, then repeatedly the heaviest child *)
let critical_path roots =
  let heaviest = function
    | [] -> None
    | n :: ns ->
      Some
        (List.fold_left
           (fun best c ->
             if Spantree.dur_ns c > Spantree.dur_ns best then c else best)
           n ns)
  in
  let rec descend acc (n : Spantree.node) =
    match heaviest n.Spantree.children with
    | Some c -> descend (c.Spantree.name :: acc) c
    | None -> List.rev acc
  in
  match heaviest roots with
  | None -> []
  | Some r -> descend [ r.Spantree.name ] r

let int_field k (ev : Telemetry.event) =
  match List.assoc_opt k ev.Telemetry.fields with
  | Some (Telemetry.Int i) -> Some i
  | _ -> None

let str_field k (ev : Telemetry.event) =
  match List.assoc_opt k ev.Telemetry.fields with
  | Some (Telemetry.Str s) -> Some s
  | _ -> None

(* The trace that owns a queue hop: the envelope's origin, falling back
   to the emitting context for pre-envelope streams. *)
let hop_trace ev =
  match int_field "origin_trace" ev with
  | Some t -> t
  | None -> ev.Telemetry.trace

(* trace id -> summed enqueue->dequeue wait *)
let queue_waits events =
  let pending : (string * int, int64 Queue.t) Hashtbl.t = Hashtbl.create 16 in
  let waits : (int, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (ev : Telemetry.event) ->
      match (ev.Telemetry.name, str_field "queue" ev) with
      | "mqueue.enqueue", Some q ->
        let key = (q, hop_trace ev) in
        let fifo =
          match Hashtbl.find_opt pending key with
          | Some f -> f
          | None ->
            let f = Queue.create () in
            Hashtbl.add pending key f;
            f
        in
        Queue.push ev.Telemetry.ts fifo
      | "mqueue.dequeue", Some q -> (
        let t = hop_trace ev in
        match Hashtbl.find_opt pending (q, t) with
        | Some fifo when not (Queue.is_empty fifo) ->
          let t0 = Queue.pop fifo in
          let w = max 0 (Int64.to_int (Int64.sub ev.Telemetry.ts t0)) in
          Hashtbl.replace waits t
            (w + Option.value ~default:0 (Hashtbl.find_opt waits t))
        | _ -> ())
      | _ -> ())
    events;
  waits

type acc = {
  mutable a_events : int;
  mutable first : int64;
  mutable last : int64;
  mutable q_ns : int;
  mutable e_ns : int;
  mutable m_ns : int;
  mutable w_ns : int;
  mutable o_ns : int;
  mutable a_denied : bool;
  mutable a_raised : bool;
  mutable a_doms : int list;
}

let of_events events forest =
  let accs : (int, acc) Hashtbl.t = Hashtbl.create 16 in
  let get trace =
    match Hashtbl.find_opt accs trace with
    | Some a -> a
    | None ->
      let a =
        { a_events = 0; first = Int64.max_int; last = Int64.min_int;
          q_ns = 0; e_ns = 0; m_ns = 0; w_ns = 0; o_ns = 0;
          a_denied = false; a_raised = false; a_doms = [] }
      in
      Hashtbl.add accs trace a;
      a
  in
  List.iter
    (fun (ev : Telemetry.event) ->
      if ev.Telemetry.trace <> 0 then begin
        let a = get ev.Telemetry.trace in
        a.a_events <- a.a_events + 1;
        if Int64.compare ev.Telemetry.ts a.first < 0 then a.first <- ev.Telemetry.ts;
        if Int64.compare ev.Telemetry.ts a.last > 0 then a.last <- ev.Telemetry.ts;
        if not (List.mem ev.Telemetry.dom a.a_doms) then
          a.a_doms <- ev.Telemetry.dom :: a.a_doms;
        (match ev.Telemetry.name with
        | "manager.denied" | "workitem.denied" -> a.a_denied <- true
        | _ -> ());
        if List.assoc_opt "raised" ev.Telemetry.fields = Some (Telemetry.Bool true)
        then a.a_raised <- true
      end)
    events;
  Spantree.iter
    (fun n ->
      if n.Spantree.trace <> 0 && n.Spantree.closed then begin
        let a = get n.Spantree.trace in
        let ns = Spantree.self_ns n in
        match category n.Spantree.name with
        | Queue -> a.q_ns <- a.q_ns + ns
        | Engine -> a.e_ns <- a.e_ns + ns
        | Manager -> a.m_ns <- a.m_ns + ns
        | Wal -> a.w_ns <- a.w_ns + ns
        | Other -> a.o_ns <- a.o_ns + ns
      end)
    forest;
  Hashtbl.iter
    (fun trace w -> if trace <> 0 then (get trace).q_ns <- (get trace).q_ns + w)
    (queue_waits events);
  let roots_of : (int, Spantree.node list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (n : Spantree.node) ->
      if n.Spantree.trace <> 0 then
        Hashtbl.replace roots_of n.Spantree.trace
          (n
          :: Option.value ~default:[]
               (Hashtbl.find_opt roots_of n.Spantree.trace)))
    forest.Spantree.roots;
  Hashtbl.fold
    (fun trace a out ->
      { trace;
        events = a.a_events;
        wall_ns =
          (if a.a_events = 0 then 0
           else max 0 (Int64.to_int (Int64.sub a.last a.first)));
        queue_ns = a.q_ns;
        engine_ns = a.e_ns;
        manager_ns = a.m_ns;
        wal_ns = a.w_ns;
        other_ns = a.o_ns;
        denied = a.a_denied;
        raised = a.a_raised;
        doms = List.sort compare a.a_doms;
        critical_path =
          critical_path
            (List.rev
               (Option.value ~default:[] (Hashtbl.find_opt roots_of trace))) }
      :: out)
    accs []
  |> List.sort (fun x y -> compare x.trace y.trace)
