(* Bench-history files — see benchfile.mli.  The JSON here is the
   machine-written output of bench/main.ml (flat sections of numeric
   leaves), but the parser below is a small honest recursive-descent one
   so hand-edited or future nested files keep loading. *)

(* ------------------------------------------------------------------ *)
(* A minimal JSON reader                                               *)
(* ------------------------------------------------------------------ *)

type json =
  | Num of float
  | Str of string
  | Bool of bool
  | Null
  | Obj of (string * json) list
  | Arr of json list

exception Malformed

let parse_json (s : string) : json =
  let n = String.length s in
  let i = ref 0 in
  let peek () = if !i < n then s.[!i] else '\255' in
  let advance () = incr i in
  let rec skip_ws () =
    match peek () with
    | ' ' | '\t' | '\n' | '\r' ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c = if peek () = c then advance () else raise Malformed in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !i >= n then raise Malformed;
      match s.[!i] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (if !i >= n then raise Malformed);
        (match s.[!i] with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'n' -> Buffer.add_char b '\n'
        | 't' -> Buffer.add_char b '\t'
        | 'r' -> Buffer.add_char b '\r'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
          (* keep the escape verbatim: no metric name carries one *)
          if !i + 4 >= n then raise Malformed;
          Buffer.add_string b (String.sub s (!i - 1) 6);
          i := !i + 4
        | _ -> raise Malformed);
        advance ();
        go ()
      | c ->
        Buffer.add_char b c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !i in
    let numchar c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while !i < n && numchar s.[!i] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!i - start)) with
    | Some f -> f
    | None -> raise Malformed
  in
  let literal lit v =
    let l = String.length lit in
    if !i + l <= n && String.sub s !i l = lit then begin
      i := !i + l;
      v
    end
    else raise Malformed
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
      advance ();
      skip_ws ();
      if peek () = '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' ->
            advance ();
            members ((k, v) :: acc)
          | '}' ->
            advance ();
            List.rev ((k, v) :: acc)
          | _ -> raise Malformed
        in
        Obj (members [])
      end
    | '[' ->
      advance ();
      skip_ws ();
      if peek () = ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' ->
            advance ();
            elements (v :: acc)
          | ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> raise Malformed
        in
        Arr (elements [])
      end
    | '"' -> Str (parse_string ())
    | 't' -> literal "true" (Bool true)
    | 'f' -> literal "false" (Bool false)
    | 'n' -> literal "null" Null
    | _ -> Num (parse_number ())
  in
  let v = parse_value () in
  skip_ws ();
  if !i <> n then raise Malformed;
  v

(* ------------------------------------------------------------------ *)
(* Loading                                                             *)
(* ------------------------------------------------------------------ *)

type t = { file : string; schema : int; values : (string * float) list }

let numeric = function
  | Num f -> Some f
  | Bool true -> Some 1.0
  | Bool false -> Some 0.0
  | Str _ | Null | Obj _ | Arr _ -> None

(* Flatten "section.key" numeric leaves; the _meta section and the
   per-section _cores/_domains_flag bookkeeping are environment, not
   measurements. *)
let flatten top =
  match top with
  | Obj sections ->
    List.concat_map
      (fun (sec, v) ->
        if String.length sec > 0 && sec.[0] = '_' then []
        else
          match v with
          | Obj kvs ->
            List.filter_map
              (fun (k, v) ->
                if String.length k > 0 && k.[0] = '_' then None
                else
                  match numeric v with
                  | Some f -> Some (sec ^ "." ^ k, f)
                  | None -> None)
              kvs
          | _ -> (
            match numeric v with Some f -> [ (sec, f) ] | None -> []))
      sections
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  | _ -> []

let schema_of top =
  match top with
  | Obj sections -> (
    match List.assoc_opt "_meta" sections with
    | Some (Obj meta) -> (
      match List.assoc_opt "schema_version" meta with
      | Some (Num f) -> int_of_float f
      | _ -> 0)
    | _ -> 0)
  | _ -> 0

let load file =
  match In_channel.with_open_bin file In_channel.input_all with
  | contents -> (
    match parse_json contents with
    | top -> Some { file; schema = schema_of top; values = flatten top }
    | exception Malformed -> None)
  | exception Sys_error _ -> None

let load_all files =
  List.filter_map
    (fun f ->
      match load f with
      | Some t -> Some t
      | None ->
        Printf.eprintf "ibench: skipping unreadable %s\n" f;
        None)
    files
  |> List.sort (fun a b ->
         match compare a.schema b.schema with
         | 0 -> compare a.file b.file
         | c -> c)

let find t path = List.assoc_opt path t.values

(* ------------------------------------------------------------------ *)
(* The pinned metric list                                              *)
(* ------------------------------------------------------------------ *)

type direction = Lower_better | Higher_better

type metric = {
  mname : string;
  unit_ : string;
  direction : direction;
  paths : string list;
}

let metrics =
  [ { mname = "word_steady_ns";
      unit_ = "ns/action";
      direction = Lower_better;
      (* the steady-state word walk: E20's vm column, or E18's warm
         word before the bytecode backend existed *)
      paths = [ "e20.word_vm_ns_per_action"; "e18.warm_word_ns" ] };
    { mname = "word_table_ns";
      unit_ = "ns/action";
      direction = Lower_better;
      paths =
        [ "e20.word_table_ns_per_action"; "e18.word_compiled_ns_per_action" ] };
    { mname = "e1_session_ns";
      unit_ = "ns/action";
      direction = Lower_better;
      paths = [ "e20.e1_vm_ns_per_action"; "e18.e1_compiled_ns_per_action" ] };
    { mname = "feed_ns";
      unit_ = "ns/action";
      direction = Lower_better;
      paths =
        [ "e20.feed_vm_ns_per_action"; "e18.feed_compiled_ns_per_action" ] };
    { mname = "e1_ns_n1600";
      unit_ = "ns/action";
      direction = Lower_better;
      paths = [ "e1.ns_per_action_n1600" ] };
    { mname = "volatile_word_ns";
      unit_ = "ns/action";
      direction = Lower_better;
      paths = [ "e19.volatile_word_ns_per_action" ] };
    { mname = "wal_word_ns";
      unit_ = "ns/action";
      direction = Lower_better;
      paths = [ "e19.wal_word_ns_per_action" ] };
    { mname = "recovery_records_per_s";
      unit_ = "rec/s";
      direction = Higher_better;
      paths = [ "e19.recovery_records_per_s" ] };
    { mname = "shared_word_throughput_d4";
      unit_ = "act/s";
      direction = Higher_better;
      paths = [ "e21.automaton_shared_throughput_d4" ] };
    { mname = "overlap_speculation_speedup";
      unit_ = "x";
      direction = Higher_better;
      paths = [ "e21.overlap_speculation_speedup" ] };
    { mname = "successor_hit_rate";
      unit_ = "ratio";
      direction = Higher_better;
      paths = [ "caches.engine_successor_hit_rate" ] };
    { mname = "sig_cache_hit_rate";
      unit_ = "ratio";
      direction = Higher_better;
      paths =
        [ "caches.automaton_sig_cache_hit_rate"; "e18.sig_cache_hit_rate" ] }
  ]

let lookup t m = List.find_map (fun p -> find t p) m.paths

(* ------------------------------------------------------------------ *)
(* Trajectory                                                          *)
(* ------------------------------------------------------------------ *)

let short_name file =
  let base = Filename.basename file in
  match Filename.chop_suffix_opt ~suffix:".json" base with
  | Some b -> b
  | None -> base

let trajectory loaded =
  let b = Buffer.create 1024 in
  let col = 14 in
  Buffer.add_string b (Printf.sprintf "%-28s %-9s" "metric" "unit");
  List.iter
    (fun t -> Buffer.add_string b (Printf.sprintf " %*s" col (short_name t.file)))
    loaded;
  Buffer.add_char b '\n';
  Buffer.add_string b (Printf.sprintf "%-28s %-9s" "(schema)" "");
  List.iter
    (fun t -> Buffer.add_string b (Printf.sprintf " %*d" col t.schema))
    loaded;
  Buffer.add_char b '\n';
  List.iter
    (fun m ->
      Buffer.add_string b (Printf.sprintf "%-28s %-9s" m.mname m.unit_);
      List.iter
        (fun t ->
          match lookup t m with
          | Some v -> Buffer.add_string b (Printf.sprintf " %*.4g" col v)
          | None -> Buffer.add_string b (Printf.sprintf " %*s" col "-"))
        loaded;
      Buffer.add_char b '\n')
    metrics;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* The gate                                                            *)
(* ------------------------------------------------------------------ *)

type verdict = Pass | Fail

type gate_row = {
  gname : string;
  base : float;
  cur : float;
  delta_pct : float;
  ok : bool;
}

type gate_report = {
  verdict : verdict;
  tolerance : float;
  rows : gate_row list;
  lock_rows : gate_row list;
  skipped : string list;
}

let gate ~tolerance ?max_lock_p99_us ~baseline ~current () =
  let rows = ref [] and skipped = ref [] in
  List.iter
    (fun m ->
      match (lookup baseline m, lookup current m) with
      | Some base, Some cur when base > 0.0 ->
        let delta_pct =
          match m.direction with
          | Lower_better -> (cur -. base) /. base *. 100.0
          | Higher_better -> (base -. cur) /. base *. 100.0
        in
        rows :=
          { gname = m.mname; base; cur; delta_pct; ok = delta_pct <= tolerance }
          :: !rows
      | _ -> skipped := m.mname :: !skipped)
    metrics;
  let lock_rows =
    match max_lock_p99_us with
    | None -> []
    | Some bound ->
      List.filter_map
        (fun (path, v) ->
          let suffix = "_wait_p99_ns" in
          let lp = String.length path and ls = String.length suffix in
          if lp >= ls && String.sub path (lp - ls) ls = suffix then begin
            let us = v /. 1e3 in
            Some
              { gname = path;
                base = bound;
                cur = us;
                delta_pct = (if bound > 0.0 then (us -. bound) /. bound *. 100.0 else 0.0);
                ok = us <= bound }
          end
          else None)
        current.values
  in
  let all_ok =
    List.for_all (fun r -> r.ok) !rows && List.for_all (fun r -> r.ok) lock_rows
  in
  { verdict = (if all_ok then Pass else Fail);
    tolerance;
    rows = List.rev !rows;
    lock_rows;
    skipped = List.rev !skipped }

let gate_to_string r =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "%-28s %14s %14s %9s  %s\n" "metric" "baseline" "current"
       "delta" "status");
  List.iter
    (fun row ->
      Buffer.add_string b
        (Printf.sprintf "%-28s %14.4g %14.4g %+8.1f%%  %s\n" row.gname row.base
           row.cur row.delta_pct
           (if row.ok then "ok" else "REGRESSION")))
    r.rows;
  List.iter
    (fun row ->
      Buffer.add_string b
        (Printf.sprintf "%-28s %12.4g us %12.4g us %9s  %s\n" row.gname
           row.base row.cur ""
           (if row.ok then "ok" else "LOCK P99 OVER BOUND")))
    r.lock_rows;
  if r.skipped <> [] then
    Buffer.add_string b
      (Printf.sprintf "skipped (absent from one side): %s\n"
         (String.concat ", " r.skipped));
  Buffer.add_string b
    (Printf.sprintf "gate: %s (tolerance %.0f%%, %d metric(s) compared)\n"
       (match r.verdict with Pass -> "PASS" | Fail -> "FAIL")
       r.tolerance
       (List.length r.rows + List.length r.lock_rows));
  Buffer.contents b
