(** Denial provenance (the "why not" analysis).

    When τ̂ rejects an action, {!explain} walks the state DAG and
    attributes the rejection to a {e minimal} set of blocking
    subexpression positions — the conjunction branch that still requires
    another action, the synchronization partner that cannot consume, the
    exhausted iteration or quantifier instance.

    The analysis is built on {!accepts}, a pure boolean mirror of τ̂'s
    acceptance over {!State.view} parameterized by a set of {e relaxed}
    expression positions treated as unconditionally accepting.  Blame
    sets satisfy the oracle property enforced by the test suite:

    - {e soundness}: relaxing every blamed position makes the action
      acceptable;
    - {e 1-minimality}: un-relaxing any single blamed position flips the
      verdict back to rejection.

    The computation never builds successor states and never touches the
    transition memo tables, so explaining a denial perturbs no counters
    that the no-observer-effect property watches. *)

type blame = {
  bpath : int list;
      (** expression-position path from the root: child indices, where
          binary nodes use 0/1, every [Par]/[Or] alternative maps to its
          side, and quantifier instances and templates map to the body
          position 0 *)
  locus : string;  (** human-readable rendering of the path *)
  operator : string;  (** node kind carrying the blame, e.g. ["sync"] *)
  reason : string;
  requires : string list;
      (** patterns the blamed subtree could currently accept (truncated) *)
}

type explanation = {
  eaction : Action.concrete;
  blames : blame list;
}

val accepts : ?relaxed:int list list -> State.t -> Action.concrete -> bool
(** [accepts s c] ⇔ [State.trans s c <> None] (property-tested); with
    [~relaxed] positions, subtrees rooted at those positions are treated
    as accepting.  Monotone in [relaxed]. *)

val frontier : State.t -> string list
(** Patterns of the unconsumed atoms currently reachable in a state —
    "what could this subtree still accept". *)

val explain : State.t -> Action.concrete -> explanation option
(** [None] when the action is acceptable; otherwise a minimized blame
    set.  Always non-empty: if the guided cut cannot be verified, the
    root position is blamed (trivially sound). *)

val explain_word :
  Expr.t ->
  Action.concrete list ->
  (int * Action.concrete * explanation, State.t) result
(** Run a word from σ(x); [Ok (i, c, x)] explains the first rejected
    action (at index [i]), [Error s] is the surviving state when the
    whole word is accepted. *)

val blame_to_string : blame -> string

val to_string : explanation -> string
(** Multi-line rendering: the denied action, then one line per blame. *)

val summary : explanation -> string
(** One-line rendering for manager replies and event payloads. *)

val fields : explanation -> Telemetry.fields
(** Structured event payload: [blame_count] plus per-blame
    [blame<i>_locus]/[blame<i>_op]/[blame<i>_reason] (first
    {!max_payload_blames} blames). *)

val max_payload_blames : int
