(* Runtime complexity sentinel.

   The static classifier (Classify) predicts an envelope for state growth:
   harmless expressions keep constant-size states, benign ones grow at
   most polynomially in the number of processed actions, and potentially
   malignant ones have no syntactic bound.  The sentinel watches the
   actual evaluation — state size per step, live hash-consed states,
   compiled-automaton rows — and raises a structured, rate-limited
   warning when the observation leaves the predicted envelope, naming the
   offending quantifier or iteration from Classify.offenders.

   Sampling is meant for the observed paths only (Engine.try_action,
   Manager.do_transition); callers gate on Telemetry.on so the sentinel
   costs nothing when telemetry is off. *)

type t = {
  verdict : Classify.verdict;
  offenders : string list;
  base_size : int;  (* size of the initial state *)
  mutable steps : int;  (* actions sampled so far *)
  mutable max_size : int;  (* largest state size seen *)
  mutable warnings : int;  (* warnings raised by this sentinel *)
  mutable last_warn_step : int;  (* rate limiting: step of the last warning *)
  slack : int;
  warn_every : int;  (* minimum steps between warnings *)
}

let warnings_total = Telemetry.counter "sentinel_warnings_total"

let default_slack = 64
let default_warn_every = 256

let create ?(slack = default_slack) ?(warn_every = default_warn_every) (e : Expr.t) =
  {
    verdict = Classify.benignity e;
    offenders = Classify.offenders e;
    base_size = State.size (State.init e);
    steps = 0;
    max_size = 0;
    warnings = 0;
    (* far enough back that the first breach always warns; [min_int] would
       overflow the [steps - last_warn_step] distance below *)
    last_warn_step = -warn_every;
    slack;
    warn_every;
  }

let verdict t = t.verdict
let warnings t = t.warnings
let max_size t = t.max_size
let steps t = t.steps

(* The growth envelope: the state size admitted by the static verdict
   after [steps] actions.  Deliberately generous — the sentinel flags
   clear departures, not tight-bound violations. *)
let envelope t =
  let n = max t.steps 1 in
  match t.verdict with
  | Classify.Harmless -> t.base_size + t.slack
  | Classify.Benign d ->
    let rec pow b e = if e <= 0 then 1 else b * pow b (e - 1) in
    t.base_size + t.slack + (t.slack * pow n (max d 1))
  | Classify.Potentially_malignant -> max_int

(* A malignant expression has no static envelope; flag it instead on
   confirmed blowup: state size doubling past a floor within the sample
   window. *)
let malignant_blowup t size = size > 4096 && size > 8 * max t.base_size 1

let offender_summary t =
  match t.offenders with
  | [] -> "no static offender identified"
  | l -> String.concat "; " l

let sample (t : t) ~(size : int) : unit =
  t.steps <- t.steps + 1;
  if size > t.max_size then t.max_size <- size;
  let breach =
    match t.verdict with
    | Classify.Potentially_malignant -> malignant_blowup t size
    | _ -> size > envelope t
  in
  if breach && t.steps - t.last_warn_step >= t.warn_every then begin
    t.last_warn_step <- t.steps;
    t.warnings <- t.warnings + 1;
    Telemetry.incr warnings_total;
    Telemetry.event "sentinel.warning"
      ~fields:
      [ ("verdict", Telemetry.Str (Classify.verdict_to_string t.verdict));
        ("steps", Telemetry.Int t.steps);
        ("state_size", Telemetry.Int size);
        ("envelope",
         Telemetry.Int (match t.verdict with
           | Classify.Potentially_malignant -> -1
           | _ -> envelope t));
        ("live_states", Telemetry.Int (State.live_states ()));
        ("offenders", Telemetry.Str (offender_summary t)) ]
  end
