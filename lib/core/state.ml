(* States mirror the expression tree.  Invariant: every represented state is
   valid (ψ holds); τ̂ returns None for the null state, so alternative sets
   only ever contain valid substates (the paper's ρ, fused into τ).  All
   alternative sets are kept sorted and deduplicated so that structurally
   equal states compare equal.

   Representation: states are hash-consed.  Every constructed state carries
   a unique id, a precomputed structural hash and a memoized finality bit;
   structurally equal states are physically equal, so {!equal} is pointer
   equality and {!compare} is an integer comparison on ids.  ρ's
   sort-and-dedup of alternative sets therefore never walks state trees —
   it orders alternatives by id. *)

type t = {
  id : int;  (* unique per live state; compare/equal key *)
  hkey : int;  (* structural hash, memoized *)
  fin : bool;  (* φ, memoized *)
  node : node;
}

and node =
  | SAtom of {
      pat : Action.t;
      consumed : bool;
    }
  | SOpt of {
      body : t;
      fresh : bool;  (* no action consumed yet: ⟨⟩ still accepted *)
    }
  | SSeq of {
      left : t option;  (* walker still inside y; None once y is dead *)
      rights : t list;  (* one state of z per surviving crossover point *)
      zexpr : Expr.t;
      zinit : t;  (* σ(zexpr), derived: not part of the structural identity *)
      zempty : bool;  (* ⟨⟩ ∈ Φ(z) *)
    }
  | SSeqIter of {
      actives : t list;  (* current-iteration states, one per crossover *)
      fresh : bool;  (* zero completed actions: ⟨⟩ accepted *)
      yexpr : Expr.t;
      yinit : t;  (* σ(yexpr), derived *)
    }
  | SPar of { alts : (t * t) list }  (* the paper's [‖, A] *)
  | SParIter of {
      alts : t list list;  (* alternatives of walker multisets *)
      yexpr : Expr.t;
      yinit : t;  (* σ(yexpr), derived *)
    }
  | SOr of {
      left : t option;
      right : t option;
    }
  | SAnd of {
      left : t;
      right : t;
    }
  | SSync of {
      left : t;
      right : t;
      la : Alpha.t;
      ra : Alpha.t;
    }
  | SSome of {
      param : Action.param;
      insts : (Action.value * t) list;  (* materialized instances, sorted *)
      dead : Action.value list;  (* materialized instances that rejected *)
      template : t option;  (* all untouched (fresh) instances, symmetric *)
      body : Expr.t;
      balpha : Alpha.t;
    }
  | SAll of {
      param : Action.param;
      alts : all_alt list;
      body : Expr.t;
      balpha : Alpha.t;
      template : t;  (* σ(body), derived: the pristine anonymous walker *)
      empty_final : bool;  (* ⟨⟩ ∈ Φ(body) — required of untouched instances *)
    }
  | SSyncQ of {
      param : Action.param;
      insts : (Action.value * t) list;
      template : t;
      body : Expr.t;
      balpha : Alpha.t;
    }
  | SAndQ of {
      param : Action.param;
      insts : (Action.value * t) list;
      template : t;
      body : Expr.t;
      balpha : Alpha.t;
    }

and all_alt = {
  bound : (Action.value * t) list;  (* one walker per materialized value *)
  anon : t list;  (* walkers whose instance value is still fresh *)
}

(* ------------------------------------------------------------------ *)
(* Hash-consing                                                        *)
(* ------------------------------------------------------------------ *)

let compare a b = Int.compare a.id b.id
let equal a b = a == b
let id s = s.id
let hash s = s.hkey

(* The structural hash is derived only from structure (children contribute
   their own memoized hashes, embedded expressions and alphabets their
   bounded polymorphic hash), so it is stable across processes — unlike
   ids, which are assigned in construction order. *)
let mix h x = ((h * 1000003) lxor x) land max_int
let hfold hx h xs = List.fold_left (fun h x -> mix h (hx x)) h xs
let hbool b = if b then 0x2f else 0x35
let hstate s = s.hkey
let hopt = function Some s -> mix 0x11 s.hkey | None -> 0x6b
let hinst (v, s) = mix (Hashtbl.hash v) s.hkey

(* Derived fields (zinit/yinit/SAll.template) are memo caches determined by
   the expression fields, so they take no part in the structural identity —
   neither here nor in [node_equal].  Embedded expressions and alphabets are
   not hashed either: they are fixed per expression position, so the
   children's memoized hashes already discriminate, and hashing an
   expression tree on every construction would dominate [mk].  [node_equal]
   still compares them structurally, so a collision stays only a collision. *)
let node_hash = function
  | SAtom { pat; consumed } -> mix (mix 1 (Hashtbl.hash pat)) (hbool consumed)
  | SOpt { body; fresh } -> mix (mix 2 body.hkey) (hbool fresh)
  | SSeq { left; rights; zempty; _ } ->
    mix (hfold hstate (mix 3 (hopt left)) rights) (hbool zempty)
  | SSeqIter { actives; fresh; _ } -> mix (hfold hstate 4 actives) (hbool fresh)
  | SPar { alts } -> hfold (fun (l, r) -> mix l.hkey r.hkey) 5 alts
  | SParIter { alts; _ } -> hfold (fun ws -> hfold hstate 0x17 ws) 6 alts
  | SOr { left; right } -> mix (mix 7 (hopt left)) (hopt right)
  | SAnd { left; right } -> mix (mix 8 left.hkey) right.hkey
  | SSync { left; right; _ } -> mix (mix 9 left.hkey) right.hkey
  | SSome { param; insts; dead; template; _ } ->
    let h = hfold hinst (mix 10 (Hashtbl.hash param)) insts in
    mix (hfold Hashtbl.hash h dead) (hopt template)
  | SAll { param; alts; empty_final; _ } ->
    let halt { bound; anon } = hfold hstate (hfold hinst 0x1d bound) anon in
    mix (hfold halt (mix 11 (Hashtbl.hash param)) alts) (hbool empty_final)
  | SSyncQ { param; insts; template; _ } ->
    mix (hfold hinst (mix 12 (Hashtbl.hash param)) insts) template.hkey
  | SAndQ { param; insts; template; _ } ->
    mix (hfold hinst (mix 13 (Hashtbl.hash param)) insts) template.hkey

(* Children are already hash-consed, so they are compared by pointer;
   expressions and alphabets are plain trees and compared structurally
   (they are small, and only inspected when the hashes already agree). *)
let opt_eq a b =
  match (a, b) with
  | Some x, Some y -> x == y
  | None, None -> true
  | Some _, None | None, Some _ -> false

let list_eq l1 l2 = List.equal ( == ) l1 l2
let insts_eq l1 l2 = List.equal (fun (v, s) (w, u) -> String.equal v w && s == u) l1 l2
let struct_eq a b = Stdlib.compare a b = 0

let node_equal n1 n2 =
  match (n1, n2) with
  | SAtom a, SAtom b -> a.consumed = b.consumed && struct_eq a.pat b.pat
  | SOpt a, SOpt b -> a.body == b.body && a.fresh = b.fresh
  | SSeq a, SSeq b ->
    a.zempty = b.zempty && opt_eq a.left b.left && list_eq a.rights b.rights
    && struct_eq a.zexpr b.zexpr
  | SSeqIter a, SSeqIter b ->
    a.fresh = b.fresh && list_eq a.actives b.actives && struct_eq a.yexpr b.yexpr
  | SPar a, SPar b -> List.equal (fun (l, r) (l', r') -> l == l' && r == r') a.alts b.alts
  | SParIter a, SParIter b ->
    List.equal list_eq a.alts b.alts && struct_eq a.yexpr b.yexpr
  | SOr a, SOr b -> opt_eq a.left b.left && opt_eq a.right b.right
  | SAnd a, SAnd b -> a.left == b.left && a.right == b.right
  | SSync a, SSync b ->
    a.left == b.left && a.right == b.right && struct_eq a.la b.la && struct_eq a.ra b.ra
  | SSome a, SSome b ->
    String.equal a.param b.param && insts_eq a.insts b.insts
    && List.equal String.equal a.dead b.dead
    && opt_eq a.template b.template && struct_eq a.body b.body
    && struct_eq a.balpha b.balpha
  | SAll a, SAll b ->
    String.equal a.param b.param && a.empty_final = b.empty_final
    && List.equal
         (fun x y -> insts_eq x.bound y.bound && list_eq x.anon y.anon)
         a.alts b.alts
    && struct_eq a.body b.body && struct_eq a.balpha b.balpha
  | SSyncQ a, SSyncQ b ->
    String.equal a.param b.param && insts_eq a.insts b.insts && a.template == b.template
    && struct_eq a.body b.body && struct_eq a.balpha b.balpha
  | SAndQ a, SAndQ b ->
    String.equal a.param b.param && insts_eq a.insts b.insts && a.template == b.template
    && struct_eq a.body b.body && struct_eq a.balpha b.balpha
  | ( ( SAtom _ | SOpt _ | SSeq _ | SSeqIter _ | SPar _ | SParIter _ | SOr _ | SAnd _
      | SSync _ | SSome _ | SAll _ | SAndQ _ | SSyncQ _ ),
      _ ) ->
    false

(* φ from the memoized finality of the children: O(width of this node). *)
let node_final = function
  | SAtom { consumed; _ } -> consumed
  | SOpt { body; fresh } -> fresh || body.fin
  | SSeq { left; rights; zempty; _ } ->
    (match left with Some l -> zempty && l.fin | None -> false)
    || List.exists (fun r -> r.fin) rights
  | SSeqIter { actives; fresh; _ } -> fresh || List.exists (fun a -> a.fin) actives
  | SPar { alts } -> List.exists (fun (l, r) -> l.fin && r.fin) alts
  | SParIter { alts; _ } -> List.exists (List.for_all (fun w -> w.fin)) alts
  | SOr { left; right } ->
    (match left with Some l -> l.fin | None -> false)
    || (match right with Some r -> r.fin | None -> false)
  | SAnd { left; right } | SSync { left; right; _ } -> left.fin && right.fin
  | SSome { insts; template; _ } ->
    List.exists (fun (_, s) -> s.fin) insts
    || (match template with Some t -> t.fin | None -> false)
  | SAll { alts; empty_final; _ } ->
    empty_final
    && List.exists
         (fun { bound; anon } ->
           List.for_all (fun (_, s) -> s.fin) bound && List.for_all (fun s -> s.fin) anon)
         alts
  | SSyncQ { insts; template; _ } | SAndQ { insts; template; _ } ->
    List.for_all (fun (_, s) -> s.fin) insts && template.fin

module WeakTbl = Weak.Make (struct
  type nonrec t = t

  let hash s = s.hkey
  let equal a b = node_equal a.node b.node
end)

(* The hash-cons table is process-global and lock-striped: all domains
   intern into one canonical table, so structurally equal states are
   physically equal *across* domains — the property that lets several
   domains walk one compiled automaton (whose rows hold states by
   pointer) and lets successor caches and trace validation compare states
   from different domains with [==].

   Layout: [nstripes] weak tables, each guarded by its own mutex and
   selected by the candidate's structural hash, so concurrent interning
   of unrelated states takes disjoint locks.  In front of the stripes
   sits a lock-free per-domain weak cache holding only states that
   already passed through the global table; a warm [mk] costs exactly
   what the former domain-local table cost (one weak probe, no lock), and
   only a domain-cold state pays a stripe mutex.  Both levels hold states
   weakly, so unreachable states are reclaimed by the GC; ids come from
   one atomic counter and are never reused.

   Invariant: every state the system hands out was merged through the
   global table before entering any domain cache — the per-domain level
   is a pure cache of global canonical representatives.  [node_equal]
   compares children with [==], which is sound cross-domain precisely
   because of this invariant. *)
let stripe_count = 256

type stripe = { smu : Mutex.t; stbl : WeakTbl.t }

let stripes =
  Array.init stripe_count (fun _ ->
      { smu = Mutex.create (); stbl = WeakTbl.create 256 })

(* All 256 stripes report into one lock site: the question E22 asks is
   "how hot is striped interning", not "how hot is stripe 137". *)
let stripe_site = Prof.Lock.site "state.stripe"

(* Per-domain front cache over the stripes (lock-free warm path). *)
let local_table : WeakTbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> WeakTbl.create 4096)

let counter = Atomic.make 0

(* The single constructor: every state in the system goes through [mk].
   A candidate that loses the global merge simply wastes its id —
   uniqueness, not density, is what the id-keyed memo tables need. *)
let mk node =
  let id = Atomic.fetch_and_add counter 1 + 1 in
  let candidate = { id; hkey = node_hash node; fin = node_final node; node } in
  let local = Domain.DLS.get local_table in
  match WeakTbl.find_opt local candidate with
  | Some s -> s
  | None ->
    let st = stripes.(candidate.hkey land (stripe_count - 1)) in
    let s =
      Prof.Lock.protect stripe_site st.smu (fun () ->
          WeakTbl.merge st.stbl candidate)
    in
    WeakTbl.add local s;
    s

let live_states () =
  Array.fold_left
    (fun acc st ->
      acc
      + Prof.Lock.protect stripe_site st.smu (fun () -> WeakTbl.count st.stbl))
    0 stripes

let final s = s.fin

(* Canonicalization (part of ρ): sort alternative sets and merge duplicates.
   Switchable only to let the experiment harness measure its effect. *)
let canonicalize = ref true
let set_canonicalization b = canonicalize := b
let canonicalization () = !canonicalize

(* Memoization of derived structures (initial states, instance
   materialization, alphabets).  Switchable only for the before/after
   measurements of the experiment harness. *)
let memoize = ref true

let set_memoization b =
  memoize := b;
  Alpha.set_memoization b

let memoization () = !memoize

(* Kill switch for the compiled transition kernel (the signature classifier
   and the lazy automaton of {!Automaton}).  It lives here so that every
   evaluation layer — engine sessions, the parallel shards, the manager —
   reads one flag, and so the CLI/harness can flip it without reaching into
   the automaton module.  The automaton additionally requires memoization
   and canonicalization to be on: its tables are memo caches over canonical
   states, and caching through an ablation run would hide exactly the
   effect being measured. *)
let compile_flag = ref true
let set_compilation b = compile_flag := b
let compilation () = !compile_flag

(* Entries dropped by the segmented memo tables below (and by the
   automaton's signature caches, which share the counter's probe style):
   exported as the [state_memo_evictions_total] probe. *)
let memo_evictions = Atomic.make 0
let memo_eviction_count () = Atomic.get memo_evictions

let cmp_inst (v, s) (w, u) =
  let c = String.compare v w in
  if c <> 0 then c else compare s u

let cmp_pair (l, r) (l', r') =
  let c = compare l l' in
  if c <> 0 then c else compare r r'

let cmp_states = List.compare compare

let cmp_all_alt a b =
  let c = List.compare cmp_inst a.bound b.bound in
  if c <> 0 then c else cmp_states a.anon b.anon

let sort_states l = if !canonicalize then List.sort_uniq compare l else l
let sort_insts insts = if !canonicalize then List.sort_uniq cmp_inst insts else insts
let sort_pairs alts = if !canonicalize then List.sort_uniq cmp_pair alts else alts
let sort_multisets alts = if !canonicalize then List.sort_uniq cmp_states alts else alts

let canon_alt { bound; anon } =
  if !canonicalize then { bound = sort_insts bound; anon = List.sort compare anon }
  else { bound; anon }

let sort_all_alts alts = if !canonicalize then List.sort_uniq cmp_all_alt alts else alts

(* ------------------------------------------------------------------ *)
(* Initial states                                                      *)
(* ------------------------------------------------------------------ *)

(* σ is pure and queried on the same right/body subexpressions at every
   transition of sequences, iterations and quantifiers, so it is memoized
   per expression (structural key: equal subexpressions share an entry).
   Substituted bodies differ only in parameter values buried deep in the
   tree, so the default shallow [Hashtbl.hash] would put them all in one
   bucket; the deeper traversal bound keeps the table O(1). *)
module ExprTbl = Hashtbl.Make (struct
  type t = Expr.t

  let equal = Expr.equal
  let hash e = Hashtbl.hash_param 256 1024 e
end)

(* The memo caches stay domain-local (lock-free) even though the
   hash-cons table is global: entries are keyed by hash-cons ids, which
   are canonical process-wide, so each domain's private memo simply warms
   up independently and every hit is valid everywhere. *)
let init_tbl : t ExprTbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ExprTbl.create 64)

(* Always-on hit/miss tallies for the three memo caches (init, subst,
   trans), in the style of [trans_counter]: one bump per lookup, never
   gated.  Atomic, because every evaluation domain counts into them.  The
   telemetry registry samples them as probes; the experiment harness
   reads them via [cache_stats]. *)
let init_hits = Atomic.make 0
let init_misses = Atomic.make 0
let subst_hits = Atomic.make 0
let subst_misses = Atomic.make 0
let trans_hits = Atomic.make 0
let trans_misses = Atomic.make 0

type cache_stats = {
  init_hits : int;
  init_misses : int;
  subst_hits : int;
  subst_misses : int;
  trans_hits : int;
  trans_misses : int;
}

let cache_stats () =
  {
    init_hits = Atomic.get init_hits;
    init_misses = Atomic.get init_misses;
    subst_hits = Atomic.get subst_hits;
    subst_misses = Atomic.get subst_misses;
    trans_hits = Atomic.get trans_hits;
    trans_misses = Atomic.get trans_misses;
  }

let reset_cache_stats () =
  Atomic.set init_hits 0;
  Atomic.set init_misses 0;
  Atomic.set subst_hits 0;
  Atomic.set subst_misses 0;
  Atomic.set trans_hits 0;
  Atomic.set trans_misses 0

let rec init (e : Expr.t) : t =
  if not !memoize then init_uncached e
  else
    let tbl = Domain.DLS.get init_tbl in
    match ExprTbl.find_opt tbl e with
    | Some s ->
      Atomic.incr init_hits;
      s
    | None ->
      Atomic.incr init_misses;
      let s = init_uncached e in
      ExprTbl.add tbl e s;
      s

and init_uncached (e : Expr.t) : t =
  match e with
  | Expr.Atom a -> mk (SAtom { pat = a; consumed = false })
  | Expr.Opt y -> mk (SOpt { body = init y; fresh = true })
  | Expr.Seq (y, z) ->
    let zi = init z in
    mk (SSeq { left = Some (init y); rights = []; zexpr = z; zinit = zi; zempty = zi.fin })
  | Expr.SeqIter y ->
    let yi = init y in
    mk (SSeqIter { actives = [ yi ]; fresh = true; yexpr = y; yinit = yi })
  | Expr.Par (y, z) -> mk (SPar { alts = [ (init y, init z) ] })
  | Expr.ParIter y -> mk (SParIter { alts = [ [] ]; yexpr = y; yinit = init y })
  | Expr.Or (y, z) -> mk (SOr { left = Some (init y); right = Some (init z) })
  | Expr.And (y, z) -> mk (SAnd { left = init y; right = init z })
  | Expr.Sync (y, z) ->
    mk (SSync { left = init y; right = init z; la = Alpha.of_expr y; ra = Alpha.of_expr z })
  | Expr.SomeQ (p, y) ->
    mk
      (SSome
         { param = p; insts = []; dead = []; template = Some (init y); body = y;
           balpha = Alpha.of_expr y })
  | Expr.AllQ (p, y) ->
    let tpl = init y in
    mk
      (SAll
         { param = p; alts = [ { bound = []; anon = [] } ]; body = y;
           balpha = Alpha.of_expr y; template = tpl; empty_final = tpl.fin })
  | Expr.SyncQ (p, y) ->
    mk
      (SSyncQ
         { param = p; insts = []; template = init y; body = y; balpha = Alpha.of_expr y })
  | Expr.AndQ (p, y) ->
    mk
      (SAndQ
         { param = p; insts = []; template = init y; body = y; balpha = Alpha.of_expr y })

(* ------------------------------------------------------------------ *)
(* Instance materialization                                            *)
(* ------------------------------------------------------------------ *)

(* Capture-aware substitution of a value for a parameter inside a state.
   Used when a quantifier materializes an instance from its template.
   Materializing the same value from the same (hash-consed) template is
   the common case — quantifier transitions re-derive candidate instances
   on every action — so results are memoized per (state id, param, value).

   Entries hold states strongly; the generation cap bounds that retention
   (and the GC marking work it causes) at two generations of 2^15 entries.
   Eviction is segmented (see {!Segtbl}): rotating out the old generation
   sheds the cold tail while promoted hot entries survive, instead of the
   former flush-everything-at-the-cap miss storm. *)
let subst_tbl : (int * Action.param * Action.value, t) Segtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      Segtbl.create ~gen_cap:(1 lsl 15) ~evictions:memo_evictions 256)

let rec subst_state p v (s : t) : t =
  if not (!memoize && !canonicalize) then subst_uncached p v s
  else
    let tbl = Domain.DLS.get subst_tbl in
    let key = (s.id, p, v) in
    match Segtbl.find_opt tbl key with
    | Some r ->
      Atomic.incr subst_hits;
      r
    | None ->
      Atomic.incr subst_misses;
      let r = subst_uncached p v s in
      Segtbl.add tbl key r;
      r

and subst_uncached p v (s : t) : t =
  let sub = subst_state p v in
  let sub_expr = Expr.subst p v in
  match s.node with
  | SAtom { pat; consumed } -> mk (SAtom { pat = Action.subst p v pat; consumed })
  | SOpt { body; fresh } -> mk (SOpt { body = sub body; fresh })
  | SSeq { left; rights; zexpr; zinit; zempty } ->
    (* Substitution commutes with σ (it never changes the shape, only atom
       arguments), so the derived initial states are substituted directly —
       an id-keyed memo hit — instead of re-deriving σ from the substituted
       expression, which would hash whole expression trees. *)
    mk
      (SSeq
         { left = Option.map sub left; rights = sort_states (List.map sub rights);
           zexpr = sub_expr zexpr; zinit = sub zinit; zempty })
  | SSeqIter { actives; fresh; yexpr; yinit } ->
    mk
      (SSeqIter
         { actives = sort_states (List.map sub actives); fresh; yexpr = sub_expr yexpr;
           yinit = sub yinit })
  | SPar { alts } ->
    mk (SPar { alts = sort_pairs (List.map (fun (l, r) -> (sub l, sub r)) alts) })
  | SParIter { alts; yexpr; yinit } ->
    mk
      (SParIter
         { alts =
             sort_multisets (List.map (fun ws -> List.sort compare (List.map sub ws)) alts);
           yexpr = sub_expr yexpr; yinit = sub yinit })
  | SOr { left; right } ->
    mk (SOr { left = Option.map sub left; right = Option.map sub right })
  | SAnd { left; right } -> mk (SAnd { left = sub left; right = sub right })
  | SSync { left; right; la; ra } ->
    mk
      (SSync
         { left = sub left; right = sub right; la = Alpha.subst p v la;
           ra = Alpha.subst p v ra })
  | SSome ({ param; _ } as q) ->
    if String.equal param p then s
    else
      mk
        (SSome
           { q with
             insts = sort_insts (List.map (fun (w, t) -> (w, sub t)) q.insts);
             template = Option.map sub q.template;
             body = sub_expr q.body;
             balpha = Alpha.subst p v q.balpha })
  | SAll ({ param; _ } as q) ->
    if String.equal param p then s
    else
      mk
        (SAll
           { q with
             alts =
               sort_all_alts
                 (List.map
                    (fun { bound; anon } ->
                      canon_alt
                        { bound = List.map (fun (w, t) -> (w, sub t)) bound;
                          anon = List.map sub anon })
                    q.alts);
             body = sub_expr q.body;
             balpha = Alpha.subst p v q.balpha;
             template = sub q.template })
  | SSyncQ ({ param; _ } as q) ->
    if String.equal param p then s
    else
      mk
        (SSyncQ
           { q with
             insts = sort_insts (List.map (fun (w, t) -> (w, sub t)) q.insts);
             template = sub q.template;
             body = sub_expr q.body;
             balpha = Alpha.subst p v q.balpha })
  | SAndQ ({ param; _ } as q) ->
    if String.equal param p then s
    else
      mk
        (SAndQ
           { q with
             insts = sort_insts (List.map (fun (w, t) -> (w, sub t)) q.insts);
             template = sub q.template;
             body = sub_expr q.body;
             balpha = Alpha.subst p v q.balpha })

(* ------------------------------------------------------------------ *)
(* The optimized transition τ̂                                          *)
(* ------------------------------------------------------------------ *)

module SSet = Set.Make (String)

(* A materialized instance of a quantifier body can consume [c] only when
   [c] lies in the instance alphabet α(body[param := v]).  That membership
   decomposes — without building the substituted alphabet — into: [c]
   matches a pattern not mentioning the parameter (so every instance
   accepts it), or [v] is among the candidate bindings the patterns
   extract from [c].  Quantifier transitions use this to skip the walkers
   that cannot react to [c] at all: a transition then touches the (few)
   relevant instances instead of traversing every materialized walker. *)
let instance_relevant ~in_free ~cset v = in_free || SSet.mem v cset

let rec trans_rec (s : t) (c : Action.concrete) : t option =
  match s.node with
  | SAtom { pat; consumed } ->
    if (not consumed) && Action.matches pat c then Some (mk (SAtom { pat; consumed = true }))
    else None
  | SOpt { body; _ } ->
    Option.map (fun body -> mk (SOpt { body; fresh = false })) (trans_rec body c)
  | SSeq { left; rights; zexpr; zinit; zempty } ->
    (* The walker may cross into z between actions whenever y is final. *)
    let crossings = match left with Some l when l.fin -> [ zinit ] | Some _ | None -> [] in
    let rights' =
      sort_states (List.filter_map (fun r -> trans_rec r c) (rights @ crossings))
    in
    let left' = match left with Some l -> trans_rec l c | None -> None in
    (match (left', rights') with
    | None, [] -> None
    | _ -> Some (mk (SSeq { left = left'; rights = rights'; zexpr; zinit; zempty })))
  | SSeqIter { actives; fresh = _; yexpr; yinit } ->
    let restart = if List.exists (fun a -> a.fin) actives then [ yinit ] else [] in
    let actives' =
      sort_states (List.filter_map (fun a -> trans_rec a c) (actives @ restart))
    in
    if actives' = [] then None
    else Some (mk (SSeqIter { actives = actives'; fresh = false; yexpr; yinit }))
  | SPar { alts } ->
    (* τa replaces each alternative [l, r] by [l', r] and [l, r']; ρ drops
       those whose advanced component died (Section 4's example). *)
    let advance (l, r) =
      let via_left = match trans_rec l c with Some l' -> [ (l', r) ] | None -> [] in
      let via_right = match trans_rec r c with Some r' -> [ (l, r') ] | None -> [] in
      via_left @ via_right
    in
    let alts' = sort_pairs (List.concat_map advance alts) in
    if alts' = [] then None else Some (mk (SPar { alts = alts' }))
  | SParIter { alts; yexpr; yinit } ->
    (* a new walker starting with c is the same for every alternative *)
    let new_walker = trans_rec yinit c in
    let advance walkers =
      (* one existing walker consumes c ... *)
      let rec each pre = function
        | [] -> []
        | w :: post ->
          let here =
            match trans_rec w c with
            | Some w' -> [ List.rev_append pre (w' :: post) ]
            | None -> []
          in
          here @ each (w :: pre) post
      in
      (* ... or a new walker starts with c. *)
      let started =
        match new_walker with Some w -> [ w :: walkers ] | None -> []
      in
      List.map (List.sort compare) (each [] walkers @ started)
    in
    let alts' = sort_multisets (List.concat_map advance alts) in
    if alts' = [] then None else Some (mk (SParIter { alts = alts'; yexpr; yinit }))
  | SOr { left; right } -> (
    let left' = Option.bind left (fun l -> trans_rec l c) in
    let right' = Option.bind right (fun r -> trans_rec r c) in
    match (left', right') with
    | None, None -> None
    | _ -> Some (mk (SOr { left = left'; right = right' })))
  | SAnd { left; right } -> (
    match (trans_rec left c, trans_rec right c) with
    | Some left, Some right -> Some (mk (SAnd { left; right }))
    | _ -> None)
  | SSync { left; right; la; ra } -> (
    (* An action in an operand's alphabet must be consumed by it; an action
       outside is shuffled past via the complement language κ. *)
    let inl = Alpha.mem la c and inr = Alpha.mem ra c in
    if (not inl) && not inr then None
    else
      let step within side = if within then trans_rec side c else Some side in
      match (step inl left, step inr right) with
      | Some left, Some right -> Some (mk (SSync { left; right; la; ra }))
      | _ -> None)
  | SSome { param; insts; dead; template; body; balpha } ->
    let cands = Alpha.candidates param balpha c in
    let in_free = Alpha.mem balpha c in
    let cset = SSet.of_list cands in
    (* an instance outside whose alphabet c falls dies without traversal *)
    let insts', newly_dead =
      List.fold_left
        (fun (alive, gone) (v, s) ->
          if not (instance_relevant ~in_free ~cset v) then (alive, v :: gone)
          else
            match trans_rec s c with
            | Some s' -> ((v, s') :: alive, gone)
            | None -> (alive, v :: gone))
        ([], []) insts
    in
    (* one membership structure instead of three linear scans per candidate *)
    let taken_set =
      let add acc v = SSet.add v acc in
      let acc = List.fold_left (fun acc (v, _) -> SSet.add v acc) SSet.empty insts in
      let acc = List.fold_left add acc dead in
      List.fold_left add acc newly_dead
    in
    let materialized, mat_dead =
      match template with
      | None -> ([], [])
      | Some tpl ->
        List.fold_left
          (fun (alive, gone) v ->
            if SSet.mem v taken_set then (alive, gone)
            else
              match trans_rec (subst_state param v tpl) c with
              | Some s' -> ((v, s') :: alive, gone)
              | None -> (alive, v :: gone))
          ([], []) cands
    in
    let template' = Option.bind template (fun t -> trans_rec t c) in
    let insts'' = sort_insts (insts' @ materialized) in
    let dead' = List.sort_uniq String.compare (dead @ newly_dead @ mat_dead) in
    (match (insts'', template') with
    | [], None -> None
    | _ ->
      Some
        (mk
           (SSome
              { param; insts = insts''; dead = dead'; template = template'; body; balpha })))
  | SAll { param; alts; body; balpha; template; empty_final } ->
    let cands = Alpha.candidates param balpha c in
    let in_free = Alpha.mem balpha c in
    let cset = SSet.of_list cands in
    let tpl0 = template in
    (* anonymous/bound starts from the fresh template are alternative-
       independent: compute them once per transition *)
    let fresh_started = if in_free then trans_rec tpl0 c else None in
    (* Lazy per value: when every alternative already binds v (the common
       case after an instance's first action), the start is never computed —
       materializing and stepping a pristine walker just to discard it would
       otherwise dominate repeat actions. *)
    let bound_started =
      List.map
        (fun v -> (v, lazy (trans_rec (subst_state param v tpl0) c)))
        cands
    in
    let advance { bound; anon } =
      (* exactly one walker consumes c: an existing bound walker (only the
         walkers whose instance alphabet contains c are traversed) ... *)
      let via_bound =
        (* replacing one entry of the sorted [bound] keeps it sorted, and
           [anon] is untouched, so these alternatives are already canonical *)
        List.filter_map
          (fun (v, s) ->
            if not (instance_relevant ~in_free ~cset v) then None
            else
              match trans_rec s c with
              | Some s' ->
                Some
                  { bound =
                      List.map (fun (w, t) -> if String.equal w v then (w, s') else (w, t)) bound;
                    anon }
              | None -> None)
          bound
      in
      (* ... or an anonymous walker, staying fresh or binding a new value ... *)
      let rec via_anon pre = function
        | [] -> []
        | w :: post ->
          let keep_fresh =
            if not in_free then []
            else
              match trans_rec w c with
              | Some w' -> [ { bound; anon = List.rev_append pre (w' :: post) } ]
              | None -> []
          in
          let bind_value =
            List.filter_map
              (fun v ->
                if List.mem_assoc v bound then None
                else
                  match trans_rec (subst_state param v w) c with
                  | Some w' ->
                    Some { bound = (v, w') :: bound; anon = List.rev_append pre post }
                  | None -> None)
              cands
          in
          keep_fresh @ bind_value @ via_anon (w :: pre) post
      in
      (* ... or a brand-new walker starts with c. *)
      let via_new =
        let fresh_start =
          match fresh_started with
          | Some w -> [ { bound; anon = w :: anon } ]
          | None -> []
        in
        let bound_start =
          List.filter_map
            (fun (v, w) ->
              if List.mem_assoc v bound then None
              else
                match Lazy.force w with
                | Some w -> Some { bound = (v, w) :: bound; anon }
                | None -> None)
            bound_started
        in
        fresh_start @ bound_start
      in
      via_bound @ List.map canon_alt (via_anon [] anon @ via_new)
    in
    let alts' = sort_all_alts (List.concat_map advance alts) in
    if alts' = [] then None
    else Some (mk (SAll { param; alts = alts'; body; balpha; template; empty_final }))
  | SSyncQ { param; insts; template; body; balpha } ->
    let all_cands = Alpha.candidates param balpha c in
    let cands = List.filter (fun v -> not (List.mem_assoc v insts)) all_cands in
    let in_fresh_alpha = Alpha.mem balpha c in
    let cset = SSet.of_list all_cands in
    let in_inst_alpha v = instance_relevant ~in_free:in_fresh_alpha ~cset v in
    let relevant =
      cands <> [] || in_fresh_alpha || List.exists (fun (v, _) -> in_inst_alpha v) insts
    in
    if not relevant then None (* c is outside α(x): the word is illegal *)
    else
      let step_inst (v, s) =
        if in_inst_alpha v then
          match trans_rec s c with Some s' -> Some (v, s') | None -> None
        else Some (v, s)
      in
      let old_insts = List.map step_inst insts in
      let new_insts =
        List.map
          (fun v ->
            match trans_rec (subst_state param v template) c with
            | Some s' -> Some (v, s')
            | None -> None)
          cands
      in
      let template' = if in_fresh_alpha then trans_rec template c else Some template in
      if List.exists (( = ) None) old_insts || List.exists (( = ) None) new_insts
         || template' = None
      then None
      else
        let unwrap = List.filter_map Fun.id in
        Some
          (mk
             (SSyncQ
                { param; insts = sort_insts (unwrap old_insts @ unwrap new_insts);
                  template = Option.get template'; body; balpha }))
  | SAndQ { param; insts; template; body; balpha } ->
    let all_cands = Alpha.candidates param balpha c in
    let cands = List.filter (fun v -> not (List.mem_assoc v insts)) all_cands in
    let in_free = Alpha.mem balpha c in
    let cset = SSet.of_list all_cands in
    let old_insts =
      (* an instance whose alphabet lacks c cannot consume it: None at once *)
      List.map
        (fun (v, s) ->
          if not (instance_relevant ~in_free ~cset v) then None
          else Option.map (fun s' -> (v, s')) (trans_rec s c))
        insts
    in
    let new_insts =
      List.map
        (fun v -> Option.map (fun s' -> (v, s')) (trans_rec (subst_state param v template) c))
        cands
    in
    let template' = trans_rec template c in
    if List.exists (( = ) None) old_insts || List.exists (( = ) None) new_insts
       || template' = None
    then None
    else
      let unwrap = List.filter_map Fun.id in
      Some
        (mk
           (SAndQ
              { param; insts = sort_insts (unwrap old_insts @ unwrap new_insts);
                template = Option.get template'; body; balpha }))

(* Count top-level τ̂ invocations (recursive descents count once): the
   experiment harness uses this to show that the permitted → try_action
   grant loop performs a single transition. *)
let trans_counter = Atomic.make 0
let transitions () = Atomic.get trans_counter

(* The compiled kernel ({!Automaton}) answers warm steps from its tables
   without entering {!trans}; it bumps the same counter so [transitions]
   keeps meaning "top-level kernel steps" regardless of the kernel in use
   (the grant-loop invariant of the experiment harness depends on it). *)
let count_transition () = Atomic.incr trans_counter
let count_transitions n = if n > 0 then ignore (Atomic.fetch_and_add trans_counter n)

(* τ̂ is pure and states are hash-consed, so whole transitions memoize by
   (predecessor id, action).  Steady states of quasi-regular expressions
   cycle through a handful of states, turning their transitions into table
   hits.  Ids are never reused, so a reclaimed predecessor can only lead
   to a harmless miss (a re-created equal state gets a fresh id); the
   successor is held strongly until its generation is rotated out at the
   cap (segmented eviction: hot entries are promoted and survive, only the
   cold tail is shed).  Domain-local, like the other memo tables — sound
   because ids are globally canonical (see the hash-cons table). *)
let trans_tbl : (int * Action.concrete, t option) Segtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      Segtbl.create ~gen_cap:(1 lsl 15) ~evictions:memo_evictions 1024)

let trans s c =
  Atomic.incr trans_counter;
  if not (!memoize && !canonicalize) then trans_rec s c
  else
    let tbl = Domain.DLS.get trans_tbl in
    let key = (s.id, c) in
    match Segtbl.find_opt tbl key with
    | Some r ->
      Atomic.incr trans_hits;
      r
    | None ->
      Atomic.incr trans_misses;
      let r = trans_rec s c in
      Segtbl.add tbl key r;
      r

let trans_word s w =
  List.fold_left (fun acc c -> Option.bind acc (fun s -> trans s c)) (Some s) w

let () =
  let probe name r =
    Telemetry.register_probe name (fun () -> float_of_int (Atomic.get r))
  in
  let rate h m () =
    let h = Atomic.get h and m = Atomic.get m in
    let t = h + m in
    if t = 0 then 0. else float_of_int h /. float_of_int t
  in
  probe "state_transitions_total" trans_counter;
  Telemetry.register_probe "state_live_states" (fun () -> float_of_int (live_states ()));
  probe "state_memo_init_hits" init_hits;
  probe "state_memo_init_misses" init_misses;
  probe "state_memo_subst_hits" subst_hits;
  probe "state_memo_subst_misses" subst_misses;
  probe "state_memo_trans_hits" trans_hits;
  probe "state_memo_trans_misses" trans_misses;
  Telemetry.register_probe "state_memo_trans_hit_rate" (rate trans_hits trans_misses);
  Telemetry.register_probe "state_memo_subst_hit_rate" (rate subst_hits subst_misses);
  probe "state_memo_evictions_total" memo_evictions

let rec size (s : t) : int =
  match s.node with
  | SAtom _ -> 1
  | SOpt { body; _ } -> 1 + size body
  | SSeq { left; rights; _ } ->
    1
    + (match left with Some l -> size l | None -> 0)
    + List.fold_left (fun n r -> n + size r) 0 rights
  | SSeqIter { actives; _ } -> 1 + List.fold_left (fun n a -> n + size a) 0 actives
  | SPar { alts } -> 1 + List.fold_left (fun n (l, r) -> n + size l + size r) 0 alts
  | SParIter { alts; _ } ->
    1 + List.fold_left (fun n ws -> n + List.fold_left (fun m w -> m + size w) 1 ws) 0 alts
  | SOr { left; right } ->
    1
    + (match left with Some l -> size l | None -> 0)
    + (match right with Some r -> size r | None -> 0)
  | SAnd { left; right } | SSync { left; right; _ } -> 1 + size left + size right
  | SSome { insts; template; _ } ->
    1
    + List.fold_left (fun n (_, s) -> n + size s) 0 insts
    + (match template with Some t -> size t | None -> 0)
  | SAll { alts; _ } ->
    1
    + List.fold_left
        (fun n { bound; anon } ->
          n + 1
          + List.fold_left (fun m (_, s) -> m + size s) 0 bound
          + List.fold_left (fun m s -> m + size s) 0 anon)
        0 alts
  | SSyncQ { insts; template; _ } | SAndQ { insts; template; _ } ->
    1 + List.fold_left (fun n (_, s) -> n + size s) 0 insts + size template

let rec pp ppf (s : t) =
  let pp_list pp_one ppf xs =
    Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") pp_one ppf xs
  in
  let pp_opt ppf = function
    | Some s -> pp ppf s
    | None -> Format.pp_print_string ppf "null"
  in
  let pp_inst ppf (v, s) = Format.fprintf ppf "%s:%a" v pp s in
  match s.node with
  | SAtom { pat; consumed } ->
    Format.fprintf ppf "%a%s" Action.pp pat (if consumed then "!" else "")
  | SOpt { body; fresh } -> Format.fprintf ppf "opt%s[%a]" (if fresh then "°" else "") pp body
  | SSeq { left; rights; _ } ->
    Format.fprintf ppf "@[<hv 2>seq[%a;@ {%a}]@]" pp_opt left (pp_list pp) rights
  | SSeqIter { actives; fresh; _ } ->
    Format.fprintf ppf "@[<hv 2>iter%s[{%a}]@]" (if fresh then "°" else "") (pp_list pp) actives
  | SPar { alts } ->
    let pp_pair ppf (l, r) = Format.fprintf ppf "(%a | %a)" pp l pp r in
    Format.fprintf ppf "@[<hv 2>par[{%a}]@]" (pp_list pp_pair) alts
  | SParIter { alts; _ } ->
    let pp_walkers ppf ws = Format.fprintf ppf "<%a>" (pp_list pp) ws in
    Format.fprintf ppf "@[<hv 2>pariter[{%a}]@]" (pp_list pp_walkers) alts
  | SOr { left; right } -> Format.fprintf ppf "@[<hv 2>or[%a;@ %a]@]" pp_opt left pp_opt right
  | SAnd { left; right } -> Format.fprintf ppf "@[<hv 2>and[%a;@ %a]@]" pp left pp right
  | SSync { left; right; _ } -> Format.fprintf ppf "@[<hv 2>sync[%a;@ %a]@]" pp left pp right
  | SSome { param; insts; template; _ } ->
    Format.fprintf ppf "@[<hv 2>some %s[{%a};@ tpl=%a]@]" param (pp_list pp_inst) insts pp_opt
      template
  | SAll { param; alts; _ } ->
    let pp_alt ppf { bound; anon } =
      Format.fprintf ppf "<%a | %a>" (pp_list pp_inst) bound (pp_list pp) anon
    in
    Format.fprintf ppf "@[<hv 2>all %s[{%a}]@]" param (pp_list pp_alt) alts
  | SSyncQ { param; insts; template; _ } ->
    Format.fprintf ppf "@[<hv 2>syncq %s[{%a};@ tpl=%a]@]" param (pp_list pp_inst) insts pp
      template
  | SAndQ { param; insts; template; _ } ->
    Format.fprintf ppf "@[<hv 2>conjq %s[{%a};@ tpl=%a]@]" param (pp_list pp_inst) insts pp
      template

(* ------------------------------------------------------------------ *)
(* Structural view (read-only, for the explain layer)                  *)
(* ------------------------------------------------------------------ *)

type view =
  | VAtom of { pat : Action.t; consumed : bool }
  | VOpt of { body : t }
  | VSeq of { left : t option; rights : t list; zinit : t }
  | VSeqIter of { actives : t list; yinit : t }
  | VPar of { alts : (t * t) list }
  | VParIter of { alts : t list list; yinit : t }
  | VOr of { left : t option; right : t option }
  | VAnd of { left : t; right : t }
  | VSync of { left : t; right : t; la : Alpha.t; ra : Alpha.t }
  | VSome of {
      param : Action.param;
      insts : (Action.value * t) list;
      dead : Action.value list;
      template : t option;
      balpha : Alpha.t;
    }
  | VAll of {
      param : Action.param;
      alts : ((Action.value * t) list * t list) list;
      template : t;
      balpha : Alpha.t;
    }
  | VSyncQ of {
      param : Action.param;
      insts : (Action.value * t) list;
      template : t;
      balpha : Alpha.t;
    }
  | VAndQ of {
      param : Action.param;
      insts : (Action.value * t) list;
      template : t;
      balpha : Alpha.t;
    }

let view (s : t) : view =
  match s.node with
  | SAtom { pat; consumed } -> VAtom { pat; consumed }
  | SOpt { body; _ } -> VOpt { body }
  | SSeq { left; rights; zinit; _ } -> VSeq { left; rights; zinit }
  | SSeqIter { actives; yinit; _ } -> VSeqIter { actives; yinit }
  | SPar { alts } -> VPar { alts }
  | SParIter { alts; yinit; _ } -> VParIter { alts; yinit }
  | SOr { left; right } -> VOr { left; right }
  | SAnd { left; right } -> VAnd { left; right }
  | SSync { left; right; la; ra } -> VSync { left; right; la; ra }
  | SSome { param; insts; dead; template; balpha; _ } ->
    VSome { param; insts; dead; template; balpha }
  | SAll { param; alts; template; balpha; _ } ->
    VAll
      { param;
        alts = List.map (fun { bound; anon } -> (bound, anon)) alts;
        template;
        balpha }
  | SSyncQ { param; insts; template; balpha; _ } ->
    VSyncQ { param; insts; template; balpha }
  | SAndQ { param; insts; template; balpha; _ } ->
    VAndQ { param; insts; template; balpha }

let materialize p v s = subst_state p v s

(* ------------------------------------------------------------------ *)
(* Persistence                                                         *)
(* ------------------------------------------------------------------ *)

let rec to_sexp (s : t) : Sexp.t =
  let a = Sexp.atom and l = Sexp.list in
  let b v = a (if v then "true" else "false") in
  let opt = function Some s -> l [ a "s"; to_sexp s ] | None -> a "null" in
  let inst (v, s) = l [ a v; to_sexp s ] in
  match s.node with
  | SAtom { pat; consumed } -> l [ a "atom"; Action.to_sexp pat; b consumed ]
  | SOpt { body; fresh } -> l [ a "opt"; to_sexp body; b fresh ]
  | SSeq { left; rights; zexpr; zempty; _ } ->
    (* derived fields (zinit/yinit/template of SAll) are re-derived on load *)
    l [ a "seq"; opt left; l (List.map to_sexp rights); Expr.to_sexp zexpr; b zempty ]
  | SSeqIter { actives; fresh; yexpr; _ } ->
    l [ a "seqiter"; l (List.map to_sexp actives); b fresh; Expr.to_sexp yexpr ]
  | SPar { alts } ->
    l [ a "par"; l (List.map (fun (x, y) -> l [ to_sexp x; to_sexp y ]) alts) ]
  | SParIter { alts; yexpr; _ } ->
    l [ a "pariter"; l (List.map (fun ws -> l (List.map to_sexp ws)) alts);
        Expr.to_sexp yexpr ]
  | SOr { left; right } -> l [ a "or"; opt left; opt right ]
  | SAnd { left; right } -> l [ a "and"; to_sexp left; to_sexp right ]
  | SSync { left; right; la; ra } ->
    l [ a "syncb"; to_sexp left; to_sexp right; Alpha.to_sexp la; Alpha.to_sexp ra ]
  | SSome { param; insts; dead; template; body; balpha } ->
    l [ a "some"; a param; l (List.map inst insts); l (List.map a dead); opt template;
        Expr.to_sexp body; Alpha.to_sexp balpha ]
  | SAll { param; alts; body; balpha; empty_final; _ } ->
    let alt { bound; anon } =
      l [ l (List.map inst bound); l (List.map to_sexp anon) ]
    in
    l [ a "all"; a param; l (List.map alt alts); Expr.to_sexp body; Alpha.to_sexp balpha;
        b empty_final ]
  | SSyncQ { param; insts; template; body; balpha } ->
    l [ a "syncq"; a param; l (List.map inst insts); to_sexp template; Expr.to_sexp body;
        Alpha.to_sexp balpha ]
  | SAndQ { param; insts; template; body; balpha } ->
    l [ a "andq"; a param; l (List.map inst insts); to_sexp template; Expr.to_sexp body;
        Alpha.to_sexp balpha ]

(* Deserialization rebuilds every node through [mk], so loaded states are
   re-admitted into the hash-cons table: a state loaded in the process that
   saved it is physically equal to the original. *)
let rec of_sexp (s : Sexp.t) : t =
  let bad what = invalid_arg ("State.of_sexp: bad " ^ what) in
  let opt = function
    | Sexp.Atom "null" -> None
    | Sexp.List [ Sexp.Atom "s"; s ] -> Some (of_sexp s)
    | _ -> bad "optional state"
  in
  let states = function
    | Sexp.List l -> List.map of_sexp l
    | Sexp.Atom _ -> bad "state list"
  in
  let inst = function
    | Sexp.List [ Sexp.Atom v; s ] -> (v, of_sexp s)
    | _ -> bad "instance"
  in
  let insts = function
    | Sexp.List l -> List.map inst l
    | Sexp.Atom _ -> bad "instance list"
  in
  match s with
  | Sexp.List [ Sexp.Atom "atom"; pat; consumed ] ->
    mk (SAtom { pat = Action.of_sexp pat; consumed = Sexp.bool_field consumed })
  | Sexp.List [ Sexp.Atom "opt"; body; fresh ] ->
    mk (SOpt { body = of_sexp body; fresh = Sexp.bool_field fresh })
  | Sexp.List [ Sexp.Atom "seq"; left; rights; zexpr; zempty ] ->
    let zexpr = Expr.of_sexp zexpr in
    mk
      (SSeq
         { left = opt left; rights = states rights; zexpr; zinit = init zexpr;
           zempty = Sexp.bool_field zempty })
  | Sexp.List [ Sexp.Atom "seqiter"; actives; fresh; yexpr ] ->
    let yexpr = Expr.of_sexp yexpr in
    mk
      (SSeqIter
         { actives = states actives; fresh = Sexp.bool_field fresh; yexpr;
           yinit = init yexpr })
  | Sexp.List [ Sexp.Atom "par"; Sexp.List alts ] ->
    let pair = function
      | Sexp.List [ x; y ] -> (of_sexp x, of_sexp y)
      | _ -> bad "parallel alternative"
    in
    mk (SPar { alts = List.map pair alts })
  | Sexp.List [ Sexp.Atom "pariter"; Sexp.List alts; yexpr ] ->
    let yexpr = Expr.of_sexp yexpr in
    mk (SParIter { alts = List.map states alts; yexpr; yinit = init yexpr })
  | Sexp.List [ Sexp.Atom "or"; left; right ] -> mk (SOr { left = opt left; right = opt right })
  | Sexp.List [ Sexp.Atom "and"; left; right ] ->
    mk (SAnd { left = of_sexp left; right = of_sexp right })
  | Sexp.List [ Sexp.Atom "syncb"; left; right; la; ra ] ->
    mk
      (SSync
         { left = of_sexp left; right = of_sexp right; la = Alpha.of_sexp la;
           ra = Alpha.of_sexp ra })
  | Sexp.List
      [ Sexp.Atom "some"; Sexp.Atom param; is; Sexp.List dead; template; body; balpha ] ->
    mk
      (SSome
         { param; insts = insts is; dead = List.map Sexp.string_field dead;
           template = opt template; body = Expr.of_sexp body; balpha = Alpha.of_sexp balpha })
  | Sexp.List [ Sexp.Atom "all"; Sexp.Atom param; Sexp.List alts; body; balpha; ef ] ->
    let alt = function
      | Sexp.List [ bound; anon ] -> { bound = insts bound; anon = states anon }
      | _ -> bad "all-quantifier alternative"
    in
    let body = Expr.of_sexp body in
    mk
      (SAll
         { param; alts = List.map alt alts; body; balpha = Alpha.of_sexp balpha;
           template = init body; empty_final = Sexp.bool_field ef })
  | Sexp.List [ Sexp.Atom "syncq"; Sexp.Atom param; is; template; body; balpha ] ->
    mk
      (SSyncQ
         { param; insts = insts is; template = of_sexp template; body = Expr.of_sexp body;
           balpha = Alpha.of_sexp balpha })
  | Sexp.List [ Sexp.Atom "andq"; Sexp.Atom param; is; template; body; balpha ] ->
    mk
      (SAndQ
         { param; insts = insts is; template = of_sexp template; body = Expr.of_sexp body;
           balpha = Alpha.of_sexp balpha })
  | _ -> bad "state"

(* ------------------------------------------------------------------ *)
(* Invariant checking (test support)                                   *)
(* ------------------------------------------------------------------ *)

let check_invariants (s : t) : (unit, string) result =
  let exception Bad of string in
  let fail fmt = Format.kasprintf (fun m -> raise (Bad m)) fmt in
  let sorted_unique what cmp xs =
    let rec go = function
      | a :: (b :: _ as rest) ->
        let c = cmp a b in
        if c > 0 then fail "%s: not sorted" what
        else if c = 0 then fail "%s: duplicate entries" what
        else go rest
      | [ _ ] | [] -> ()
    in
    go xs
  in
  let check_memo s =
    if s.fin <> node_final s.node then fail "memoized finality disagrees with φ";
    if s.hkey <> node_hash s.node then fail "memoized hash disagrees with structure"
  in
  let rec go s =
    check_memo s;
    match s.node with
    | SAtom _ -> ()
    | SOpt { body; _ } -> go body
    | SSeq { left; rights; _ } ->
      if left = None && rights = [] then fail "seq: dead state represented";
      sorted_unique "seq rights" compare rights;
      Option.iter go left;
      List.iter go rights
    | SSeqIter { actives; _ } ->
      if actives = [] then fail "seqiter: no actives";
      sorted_unique "seqiter actives" compare actives;
      List.iter go actives
    | SPar { alts } ->
      if alts = [] then fail "par: no alternatives";
      sorted_unique "par alternatives" cmp_pair alts;
      List.iter
        (fun (l, r) ->
          go l;
          go r)
        alts
    | SParIter { alts; _ } ->
      if alts = [] then fail "pariter: no alternatives";
      sorted_unique "pariter alternatives" cmp_states alts;
      List.iter
        (fun ws ->
          (* walkers form a sorted multiset: duplicates allowed, order not *)
          (let rec sorted = function
             | a :: (b :: _ as rest) ->
               if compare a b > 0 then fail "pariter walkers: not sorted" else sorted rest
             | _ -> ()
           in
           sorted ws);
          List.iter go ws)
        alts
    | SOr { left; right } ->
      if left = None && right = None then fail "or: dead state represented";
      Option.iter go left;
      Option.iter go right
    | SAnd { left; right } | SSync { left; right; _ } ->
      go left;
      go right
    | SSome { insts; dead; template; _ } ->
      sorted_unique "some instances" (fun (v, _) (w, _) -> String.compare v w) insts;
      sorted_unique "some dead values" String.compare dead;
      List.iter
        (fun (v, _) ->
          if List.mem v dead then fail "some: instance %s both live and dead" v)
        insts;
      if insts = [] && template = None then fail "some: dead state represented";
      List.iter (fun (_, s) -> go s) insts;
      Option.iter go template
    | SAll { alts; _ } ->
      if alts = [] then fail "all: no alternatives";
      sorted_unique "all alternatives" cmp_all_alt alts;
      List.iter
        (fun { bound; anon } ->
          sorted_unique "all bound" (fun (v, _) (w, _) -> String.compare v w) bound;
          (let rec sorted = function
             | a :: (b :: _ as rest) ->
               if compare a b > 0 then fail "all anon: not sorted" else sorted rest
             | _ -> ()
           in
           sorted anon);
          List.iter (fun (_, s) -> go s) bound;
          List.iter go anon)
        alts
    | SSyncQ { insts; template; _ } | SAndQ { insts; template; _ } ->
      sorted_unique "quantifier instances" (fun (v, _) (w, _) -> String.compare v w) insts;
      List.iter (fun (_, s) -> go s) insts;
      go template
  in
  match go s with () -> Ok () | exception Bad m -> Error m
