(* States mirror the expression tree.  Invariant: every represented state is
   valid (ψ holds); τ̂ returns None for the null state, so alternative sets
   only ever contain valid substates (the paper's ρ, fused into τ).  All
   alternative sets are kept sorted and deduplicated so that structurally
   equal states compare equal. *)

type t =
  | SAtom of {
      pat : Action.t;
      consumed : bool;
    }
  | SOpt of {
      body : t;
      fresh : bool;  (* no action consumed yet: ⟨⟩ still accepted *)
    }
  | SSeq of {
      left : t option;  (* walker still inside y; None once y is dead *)
      rights : t list;  (* one state of z per surviving crossover point *)
      zexpr : Expr.t;
      zempty : bool;  (* ⟨⟩ ∈ Φ(z) *)
    }
  | SSeqIter of {
      actives : t list;  (* current-iteration states, one per crossover *)
      fresh : bool;  (* zero completed actions: ⟨⟩ accepted *)
      yexpr : Expr.t;
    }
  | SPar of { alts : (t * t) list }  (* the paper's [‖, A] *)
  | SParIter of {
      alts : t list list;  (* alternatives of walker multisets *)
      yexpr : Expr.t;
    }
  | SOr of {
      left : t option;
      right : t option;
    }
  | SAnd of {
      left : t;
      right : t;
    }
  | SSync of {
      left : t;
      right : t;
      la : Alpha.t;
      ra : Alpha.t;
    }
  | SSome of {
      param : Action.param;
      insts : (Action.value * t) list;  (* materialized instances, sorted *)
      dead : Action.value list;  (* materialized instances that rejected *)
      template : t option;  (* all untouched (fresh) instances, symmetric *)
      body : Expr.t;
      balpha : Alpha.t;
    }
  | SAll of {
      param : Action.param;
      alts : all_alt list;
      body : Expr.t;
      balpha : Alpha.t;
      empty_final : bool;  (* ⟨⟩ ∈ Φ(body) — required of untouched instances *)
    }
  | SSyncQ of {
      param : Action.param;
      insts : (Action.value * t) list;
      template : t;
      body : Expr.t;
      balpha : Alpha.t;
    }
  | SAndQ of {
      param : Action.param;
      insts : (Action.value * t) list;
      template : t;
      body : Expr.t;
      balpha : Alpha.t;
    }

and all_alt = {
  bound : (Action.value * t) list;  (* one walker per materialized value *)
  anon : t list;  (* walkers whose instance value is still fresh *)
}

let compare = Stdlib.compare
let equal a b = compare a b = 0

(* Canonicalization (part of ρ): sort alternative sets and merge duplicates.
   Switchable only to let the experiment harness measure its effect. *)
let canonicalize = ref true
let set_canonicalization b = canonicalize := b
let canonicalization () = !canonicalize

let sort_states l = if !canonicalize then List.sort_uniq compare l else l
let sort_insts insts =
  if !canonicalize then
    List.sort_uniq (fun (v, s) (w, t) -> Stdlib.compare (v, s) (w, t)) insts
  else insts
let canon_alt { bound; anon } =
  if !canonicalize then { bound = sort_insts bound; anon = List.sort compare anon }
  else { bound; anon }
let sort_alts alts = if !canonicalize then List.sort_uniq Stdlib.compare alts else alts

let rec init (e : Expr.t) : t =
  match e with
  | Expr.Atom a -> SAtom { pat = a; consumed = false }
  | Expr.Opt y -> SOpt { body = init y; fresh = true }
  | Expr.Seq (y, z) ->
    SSeq { left = Some (init y); rights = []; zexpr = z; zempty = final (init z) }
  | Expr.SeqIter y -> SSeqIter { actives = [ init y ]; fresh = true; yexpr = y }
  | Expr.Par (y, z) -> SPar { alts = [ (init y, init z) ] }
  | Expr.ParIter y -> SParIter { alts = [ [] ]; yexpr = y }
  | Expr.Or (y, z) -> SOr { left = Some (init y); right = Some (init z) }
  | Expr.And (y, z) -> SAnd { left = init y; right = init z }
  | Expr.Sync (y, z) ->
    SSync { left = init y; right = init z; la = Alpha.of_expr y; ra = Alpha.of_expr z }
  | Expr.SomeQ (p, y) ->
    SSome
      { param = p; insts = []; dead = []; template = Some (init y); body = y;
        balpha = Alpha.of_expr y }
  | Expr.AllQ (p, y) ->
    SAll
      { param = p; alts = [ { bound = []; anon = [] } ]; body = y;
        balpha = Alpha.of_expr y; empty_final = final (init y) }
  | Expr.SyncQ (p, y) ->
    SSyncQ { param = p; insts = []; template = init y; body = y; balpha = Alpha.of_expr y }
  | Expr.AndQ (p, y) ->
    SAndQ { param = p; insts = []; template = init y; body = y; balpha = Alpha.of_expr y }

and final : t -> bool = function
  | SAtom { consumed; _ } -> consumed
  | SOpt { body; fresh } -> fresh || final body
  | SSeq { left; rights; zempty; _ } ->
    (match left with Some l -> zempty && final l | None -> false)
    || List.exists final rights
  | SSeqIter { actives; fresh; _ } -> fresh || List.exists final actives
  | SPar { alts } -> List.exists (fun (l, r) -> final l && final r) alts
  | SParIter { alts; _ } -> List.exists (List.for_all final) alts
  | SOr { left; right } ->
    (match left with Some l -> final l | None -> false)
    || (match right with Some r -> final r | None -> false)
  | SAnd { left; right } -> final left && final right
  | SSync { left; right; _ } -> final left && final right
  | SSome { insts; template; _ } ->
    List.exists (fun (_, s) -> final s) insts
    || (match template with Some t -> final t | None -> false)
  | SAll { alts; empty_final; _ } ->
    empty_final
    && List.exists
         (fun { bound; anon } ->
           List.for_all (fun (_, s) -> final s) bound && List.for_all final anon)
         alts
  | SSyncQ { insts; template; _ } | SAndQ { insts; template; _ } ->
    List.for_all (fun (_, s) -> final s) insts && final template

(* Capture-aware substitution of a value for a parameter inside a state.
   Used when a quantifier materializes an instance from its template. *)
let rec subst_state p v (s : t) : t =
  let sub = subst_state p v in
  let sub_expr = Expr.subst p v in
  match s with
  | SAtom { pat; consumed } -> SAtom { pat = Action.subst p v pat; consumed }
  | SOpt { body; fresh } -> SOpt { body = sub body; fresh }
  | SSeq { left; rights; zexpr; zempty } ->
    SSeq
      { left = Option.map sub left; rights = sort_states (List.map sub rights);
        zexpr = sub_expr zexpr; zempty }
  | SSeqIter { actives; fresh; yexpr } ->
    SSeqIter { actives = sort_states (List.map sub actives); fresh; yexpr = sub_expr yexpr }
  | SPar { alts } -> SPar { alts = sort_alts (List.map (fun (l, r) -> (sub l, sub r)) alts) }
  | SParIter { alts; yexpr } ->
    SParIter
      { alts = sort_alts (List.map (fun ws -> List.sort compare (List.map sub ws)) alts);
        yexpr = sub_expr yexpr }
  | SOr { left; right } -> SOr { left = Option.map sub left; right = Option.map sub right }
  | SAnd { left; right } -> SAnd { left = sub left; right = sub right }
  | SSync { left; right; la; ra } ->
    SSync { left = sub left; right = sub right; la = Alpha.subst p v la; ra = Alpha.subst p v ra }
  | SSome ({ param; _ } as q) ->
    if String.equal param p then s
    else
      SSome
        { q with
          insts = sort_insts (List.map (fun (w, t) -> (w, sub t)) q.insts);
          template = Option.map sub q.template;
          body = sub_expr q.body;
          balpha = Alpha.subst p v q.balpha }
  | SAll ({ param; _ } as q) ->
    if String.equal param p then s
    else
      SAll
        { q with
          alts =
            sort_alts
              (List.map
                 (fun { bound; anon } ->
                   canon_alt
                     { bound = List.map (fun (w, t) -> (w, sub t)) bound;
                       anon = List.map sub anon })
                 q.alts);
          body = sub_expr q.body;
          balpha = Alpha.subst p v q.balpha }
  | SSyncQ ({ param; _ } as q) ->
    if String.equal param p then s
    else
      SSyncQ
        { q with
          insts = sort_insts (List.map (fun (w, t) -> (w, sub t)) q.insts);
          template = sub q.template;
          body = sub_expr q.body;
          balpha = Alpha.subst p v q.balpha }
  | SAndQ ({ param; _ } as q) ->
    if String.equal param p then s
    else
      SAndQ
        { q with
          insts = sort_insts (List.map (fun (w, t) -> (w, sub t)) q.insts);
          template = sub q.template;
          body = sub_expr q.body;
          balpha = Alpha.subst p v q.balpha }

let rec trans (s : t) (c : Action.concrete) : t option =
  match s with
  | SAtom { pat; consumed } ->
    if (not consumed) && Action.matches pat c then Some (SAtom { pat; consumed = true })
    else None
  | SOpt { body; _ } ->
    Option.map (fun body -> SOpt { body; fresh = false }) (trans body c)
  | SSeq { left; rights; zexpr; zempty } ->
    (* The walker may cross into z between actions whenever y is final. *)
    let crossings =
      match left with Some l when final l -> [ init zexpr ] | Some _ | None -> []
    in
    let rights' = sort_states (List.filter_map (fun r -> trans r c) (rights @ crossings)) in
    let left' = match left with Some l -> trans l c | None -> None in
    if left' = None && rights' = [] then None
    else Some (SSeq { left = left'; rights = rights'; zexpr; zempty })
  | SSeqIter { actives; fresh = _; yexpr } ->
    let restart = if List.exists final actives then [ init yexpr ] else [] in
    let actives' = sort_states (List.filter_map (fun a -> trans a c) (actives @ restart)) in
    if actives' = [] then None else Some (SSeqIter { actives = actives'; fresh = false; yexpr })
  | SPar { alts } ->
    (* τa replaces each alternative [l, r] by [l', r] and [l, r']; ρ drops
       those whose advanced component died (Section 4's example). *)
    let advance (l, r) =
      let via_left = match trans l c with Some l' -> [ (l', r) ] | None -> [] in
      let via_right = match trans r c with Some r' -> [ (l, r') ] | None -> [] in
      via_left @ via_right
    in
    let alts' = sort_alts (List.concat_map advance alts) in
    if alts' = [] then None else Some (SPar { alts = alts' })
  | SParIter { alts; yexpr } ->
    let advance walkers =
      (* one existing walker consumes c ... *)
      let rec each pre = function
        | [] -> []
        | w :: post ->
          let here =
            match trans w c with
            | Some w' -> [ List.rev_append pre (w' :: post) ]
            | None -> []
          in
          here @ each (w :: pre) post
      in
      (* ... or a new walker starts with c. *)
      let started =
        match trans (init yexpr) c with
        | Some w -> [ w :: walkers ]
        | None -> []
      in
      List.map (List.sort compare) (each [] walkers @ started)
    in
    let alts' = sort_alts (List.concat_map advance alts) in
    if alts' = [] then None else Some (SParIter { alts = alts'; yexpr })
  | SOr { left; right } ->
    let left' = Option.bind left (fun l -> trans l c) in
    let right' = Option.bind right (fun r -> trans r c) in
    if left' = None && right' = None then None else Some (SOr { left = left'; right = right' })
  | SAnd { left; right } -> (
    match (trans left c, trans right c) with
    | Some left, Some right -> Some (SAnd { left; right })
    | _ -> None)
  | SSync { left; right; la; ra } -> (
    (* An action in an operand's alphabet must be consumed by it; an action
       outside is shuffled past via the complement language κ. *)
    let inl = Alpha.mem la c and inr = Alpha.mem ra c in
    if (not inl) && not inr then None
    else
      let step within side = if within then trans side c else Some side in
      match (step inl left, step inr right) with
      | Some left, Some right -> Some (SSync { left; right; la; ra })
      | _ -> None)
  | SSome { param; insts; dead; template; body; balpha } ->
    let insts', newly_dead =
      List.fold_left
        (fun (alive, gone) (v, s) ->
          match trans s c with
          | Some s' -> ((v, s') :: alive, gone)
          | None -> (alive, v :: gone))
        ([], []) insts
    in
    let taken v =
      List.mem_assoc v insts || List.mem v dead || List.mem v newly_dead
    in
    let materialized, mat_dead =
      match template with
      | None -> ([], [])
      | Some tpl ->
        List.fold_left
          (fun (alive, gone) v ->
            if taken v then (alive, gone)
            else
              match trans (subst_state param v tpl) c with
              | Some s' -> ((v, s') :: alive, gone)
              | None -> (alive, v :: gone))
          ([], [])
          (Alpha.candidates param balpha c)
    in
    let template' = Option.bind template (fun t -> trans t c) in
    let insts'' = sort_insts (insts' @ materialized) in
    let dead' = List.sort_uniq String.compare (dead @ newly_dead @ mat_dead) in
    if insts'' = [] && template' = None then None
    else
      Some (SSome { param; insts = insts''; dead = dead'; template = template'; body; balpha })
  | SAll { param; alts; body; balpha; empty_final } ->
    let cands = Alpha.candidates param balpha c in
    let tpl0 = init body in
    let advance { bound; anon } =
      (* exactly one walker consumes c: an existing bound walker ... *)
      let via_bound =
        List.filter_map
          (fun (v, s) ->
            match trans s c with
            | Some s' ->
              Some { bound = List.map (fun (w, t) -> if String.equal w v then (w, s') else (w, t)) bound;
                     anon }
            | None -> None)
          bound
      in
      (* ... or an anonymous walker, staying fresh or binding a new value ... *)
      let rec via_anon pre = function
        | [] -> []
        | w :: post ->
          let keep_fresh =
            match trans w c with
            | Some w' -> [ { bound; anon = List.rev_append pre (w' :: post) } ]
            | None -> []
          in
          let bind_value =
            List.filter_map
              (fun v ->
                if List.mem_assoc v bound then None
                else
                  match trans (subst_state param v w) c with
                  | Some w' ->
                    Some { bound = (v, w') :: bound; anon = List.rev_append pre post }
                  | None -> None)
              cands
          in
          keep_fresh @ bind_value @ via_anon (w :: pre) post
      in
      (* ... or a brand-new walker starts with c. *)
      let via_new =
        let fresh_start =
          match trans tpl0 c with
          | Some w -> [ { bound; anon = w :: anon } ]
          | None -> []
        in
        let bound_start =
          List.filter_map
            (fun v ->
              if List.mem_assoc v bound then None
              else
                match trans (subst_state param v tpl0) c with
                | Some w -> Some { bound = (v, w) :: bound; anon }
                | None -> None)
            cands
        in
        fresh_start @ bound_start
      in
      List.map canon_alt (via_bound @ via_anon [] anon @ via_new)
    in
    let alts' = sort_alts (List.concat_map advance alts) in
    if alts' = [] then None
    else Some (SAll { param; alts = alts'; body; balpha; empty_final })
  | SSyncQ { param; insts; template; body; balpha } ->
    let inst_alpha v = Alpha.subst param v balpha in
    let cands =
      List.filter (fun v -> not (List.mem_assoc v insts)) (Alpha.candidates param balpha c)
    in
    let in_fresh_alpha = Alpha.mem balpha c in
    let relevant =
      cands <> [] || in_fresh_alpha
      || List.exists (fun (v, _) -> Alpha.mem (inst_alpha v) c) insts
    in
    if not relevant then None (* c is outside α(x): the word is illegal *)
    else
      let step_inst (v, s) =
        if Alpha.mem (inst_alpha v) c then
          match trans s c with Some s' -> Some (v, s') | None -> None
        else Some (v, s)
      in
      let old_insts = List.map step_inst insts in
      let new_insts =
        List.map
          (fun v ->
            match trans (subst_state param v template) c with
            | Some s' -> Some (v, s')
            | None -> None)
          cands
      in
      let template' = if in_fresh_alpha then trans template c else Some template in
      if List.exists (( = ) None) old_insts || List.exists (( = ) None) new_insts
         || template' = None
      then None
      else
        let unwrap = List.filter_map Fun.id in
        Some
          (SSyncQ
             { param; insts = sort_insts (unwrap old_insts @ unwrap new_insts);
               template = Option.get template'; body; balpha })
  | SAndQ { param; insts; template; body; balpha } ->
    let cands =
      List.filter (fun v -> not (List.mem_assoc v insts)) (Alpha.candidates param balpha c)
    in
    let old_insts =
      List.map (fun (v, s) -> Option.map (fun s' -> (v, s')) (trans s c)) insts
    in
    let new_insts =
      List.map
        (fun v -> Option.map (fun s' -> (v, s')) (trans (subst_state param v template) c))
        cands
    in
    let template' = trans template c in
    if List.exists (( = ) None) old_insts || List.exists (( = ) None) new_insts
       || template' = None
    then None
    else
      let unwrap = List.filter_map Fun.id in
      Some
        (SAndQ
           { param; insts = sort_insts (unwrap old_insts @ unwrap new_insts);
             template = Option.get template'; body; balpha })

let trans_word s w =
  List.fold_left (fun acc c -> Option.bind acc (fun s -> trans s c)) (Some s) w

let rec size : t -> int = function
  | SAtom _ -> 1
  | SOpt { body; _ } -> 1 + size body
  | SSeq { left; rights; _ } ->
    1
    + (match left with Some l -> size l | None -> 0)
    + List.fold_left (fun n r -> n + size r) 0 rights
  | SSeqIter { actives; _ } -> 1 + List.fold_left (fun n a -> n + size a) 0 actives
  | SPar { alts } -> 1 + List.fold_left (fun n (l, r) -> n + size l + size r) 0 alts
  | SParIter { alts; _ } ->
    1 + List.fold_left (fun n ws -> n + List.fold_left (fun m w -> m + size w) 1 ws) 0 alts
  | SOr { left; right } ->
    1 + (match left with Some l -> size l | None -> 0)
    + (match right with Some r -> size r | None -> 0)
  | SAnd { left; right } | SSync { left; right; _ } -> 1 + size left + size right
  | SSome { insts; template; _ } ->
    1
    + List.fold_left (fun n (_, s) -> n + size s) 0 insts
    + (match template with Some t -> size t | None -> 0)
  | SAll { alts; _ } ->
    1
    + List.fold_left
        (fun n { bound; anon } ->
          n + 1
          + List.fold_left (fun m (_, s) -> m + size s) 0 bound
          + List.fold_left (fun m s -> m + size s) 0 anon)
        0 alts
  | SSyncQ { insts; template; _ } | SAndQ { insts; template; _ } ->
    1 + List.fold_left (fun n (_, s) -> n + size s) 0 insts + size template

let rec pp ppf (s : t) =
  let pp_list pp_one ppf xs =
    Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ") pp_one ppf xs
  in
  let pp_opt ppf = function
    | Some s -> pp ppf s
    | None -> Format.pp_print_string ppf "null"
  in
  let pp_inst ppf (v, s) = Format.fprintf ppf "%s:%a" v pp s in
  match s with
  | SAtom { pat; consumed } ->
    Format.fprintf ppf "%a%s" Action.pp pat (if consumed then "!" else "")
  | SOpt { body; fresh } -> Format.fprintf ppf "opt%s[%a]" (if fresh then "°" else "") pp body
  | SSeq { left; rights; _ } ->
    Format.fprintf ppf "@[<hv 2>seq[%a;@ {%a}]@]" pp_opt left (pp_list pp) rights
  | SSeqIter { actives; fresh; _ } ->
    Format.fprintf ppf "@[<hv 2>iter%s[{%a}]@]" (if fresh then "°" else "") (pp_list pp) actives
  | SPar { alts } ->
    let pp_pair ppf (l, r) = Format.fprintf ppf "(%a | %a)" pp l pp r in
    Format.fprintf ppf "@[<hv 2>par[{%a}]@]" (pp_list pp_pair) alts
  | SParIter { alts; _ } ->
    let pp_walkers ppf ws = Format.fprintf ppf "<%a>" (pp_list pp) ws in
    Format.fprintf ppf "@[<hv 2>pariter[{%a}]@]" (pp_list pp_walkers) alts
  | SOr { left; right } -> Format.fprintf ppf "@[<hv 2>or[%a;@ %a]@]" pp_opt left pp_opt right
  | SAnd { left; right } -> Format.fprintf ppf "@[<hv 2>and[%a;@ %a]@]" pp left pp right
  | SSync { left; right; _ } -> Format.fprintf ppf "@[<hv 2>sync[%a;@ %a]@]" pp left pp right
  | SSome { param; insts; template; _ } ->
    Format.fprintf ppf "@[<hv 2>some %s[{%a};@ tpl=%a]@]" param (pp_list pp_inst) insts pp_opt
      template
  | SAll { param; alts; _ } ->
    let pp_alt ppf { bound; anon } =
      Format.fprintf ppf "<%a | %a>" (pp_list pp_inst) bound (pp_list pp) anon
    in
    Format.fprintf ppf "@[<hv 2>all %s[{%a}]@]" param (pp_list pp_alt) alts
  | SSyncQ { param; insts; template; _ } ->
    Format.fprintf ppf "@[<hv 2>syncq %s[{%a};@ tpl=%a]@]" param (pp_list pp_inst) insts pp
      template
  | SAndQ { param; insts; template; _ } ->
    Format.fprintf ppf "@[<hv 2>conjq %s[{%a};@ tpl=%a]@]" param (pp_list pp_inst) insts pp
      template

(* ------------------------------------------------------------------ *)
(* Persistence                                                         *)
(* ------------------------------------------------------------------ *)

let rec to_sexp (s : t) : Sexp.t =
  let a = Sexp.atom and l = Sexp.list in
  let b v = a (if v then "true" else "false") in
  let opt = function Some s -> l [ a "s"; to_sexp s ] | None -> a "null" in
  let inst (v, s) = l [ a v; to_sexp s ] in
  match s with
  | SAtom { pat; consumed } -> l [ a "atom"; Action.to_sexp pat; b consumed ]
  | SOpt { body; fresh } -> l [ a "opt"; to_sexp body; b fresh ]
  | SSeq { left; rights; zexpr; zempty } ->
    l [ a "seq"; opt left; l (List.map to_sexp rights); Expr.to_sexp zexpr; b zempty ]
  | SSeqIter { actives; fresh; yexpr } ->
    l [ a "seqiter"; l (List.map to_sexp actives); b fresh; Expr.to_sexp yexpr ]
  | SPar { alts } ->
    l [ a "par"; l (List.map (fun (x, y) -> l [ to_sexp x; to_sexp y ]) alts) ]
  | SParIter { alts; yexpr } ->
    l [ a "pariter"; l (List.map (fun ws -> l (List.map to_sexp ws)) alts);
        Expr.to_sexp yexpr ]
  | SOr { left; right } -> l [ a "or"; opt left; opt right ]
  | SAnd { left; right } -> l [ a "and"; to_sexp left; to_sexp right ]
  | SSync { left; right; la; ra } ->
    l [ a "syncb"; to_sexp left; to_sexp right; Alpha.to_sexp la; Alpha.to_sexp ra ]
  | SSome { param; insts; dead; template; body; balpha } ->
    l [ a "some"; a param; l (List.map inst insts); l (List.map a dead); opt template;
        Expr.to_sexp body; Alpha.to_sexp balpha ]
  | SAll { param; alts; body; balpha; empty_final } ->
    let alt { bound; anon } =
      l [ l (List.map inst bound); l (List.map to_sexp anon) ]
    in
    l [ a "all"; a param; l (List.map alt alts); Expr.to_sexp body; Alpha.to_sexp balpha;
        b empty_final ]
  | SSyncQ { param; insts; template; body; balpha } ->
    l [ a "syncq"; a param; l (List.map inst insts); to_sexp template; Expr.to_sexp body;
        Alpha.to_sexp balpha ]
  | SAndQ { param; insts; template; body; balpha } ->
    l [ a "andq"; a param; l (List.map inst insts); to_sexp template; Expr.to_sexp body;
        Alpha.to_sexp balpha ]

let rec of_sexp (s : Sexp.t) : t =
  let bad what = invalid_arg ("State.of_sexp: bad " ^ what) in
  let opt = function
    | Sexp.Atom "null" -> None
    | Sexp.List [ Sexp.Atom "s"; s ] -> Some (of_sexp s)
    | _ -> bad "optional state"
  in
  let states = function
    | Sexp.List l -> List.map of_sexp l
    | Sexp.Atom _ -> bad "state list"
  in
  let inst = function
    | Sexp.List [ Sexp.Atom v; s ] -> (v, of_sexp s)
    | _ -> bad "instance"
  in
  let insts = function
    | Sexp.List l -> List.map inst l
    | Sexp.Atom _ -> bad "instance list"
  in
  match s with
  | Sexp.List [ Sexp.Atom "atom"; pat; consumed ] ->
    SAtom { pat = Action.of_sexp pat; consumed = Sexp.bool_field consumed }
  | Sexp.List [ Sexp.Atom "opt"; body; fresh ] ->
    SOpt { body = of_sexp body; fresh = Sexp.bool_field fresh }
  | Sexp.List [ Sexp.Atom "seq"; left; rights; zexpr; zempty ] ->
    SSeq
      { left = opt left; rights = states rights; zexpr = Expr.of_sexp zexpr;
        zempty = Sexp.bool_field zempty }
  | Sexp.List [ Sexp.Atom "seqiter"; actives; fresh; yexpr ] ->
    SSeqIter
      { actives = states actives; fresh = Sexp.bool_field fresh;
        yexpr = Expr.of_sexp yexpr }
  | Sexp.List [ Sexp.Atom "par"; Sexp.List alts ] ->
    let pair = function
      | Sexp.List [ x; y ] -> (of_sexp x, of_sexp y)
      | _ -> bad "parallel alternative"
    in
    SPar { alts = List.map pair alts }
  | Sexp.List [ Sexp.Atom "pariter"; Sexp.List alts; yexpr ] ->
    SParIter { alts = List.map states alts; yexpr = Expr.of_sexp yexpr }
  | Sexp.List [ Sexp.Atom "or"; left; right ] -> SOr { left = opt left; right = opt right }
  | Sexp.List [ Sexp.Atom "and"; left; right ] ->
    SAnd { left = of_sexp left; right = of_sexp right }
  | Sexp.List [ Sexp.Atom "syncb"; left; right; la; ra ] ->
    SSync
      { left = of_sexp left; right = of_sexp right; la = Alpha.of_sexp la;
        ra = Alpha.of_sexp ra }
  | Sexp.List
      [ Sexp.Atom "some"; Sexp.Atom param; is; Sexp.List dead; template; body; balpha ] ->
    SSome
      { param; insts = insts is; dead = List.map Sexp.string_field dead;
        template = opt template; body = Expr.of_sexp body; balpha = Alpha.of_sexp balpha }
  | Sexp.List [ Sexp.Atom "all"; Sexp.Atom param; Sexp.List alts; body; balpha; ef ] ->
    let alt = function
      | Sexp.List [ bound; anon ] -> { bound = insts bound; anon = states anon }
      | _ -> bad "all-quantifier alternative"
    in
    SAll
      { param; alts = List.map alt alts; body = Expr.of_sexp body;
        balpha = Alpha.of_sexp balpha; empty_final = Sexp.bool_field ef }
  | Sexp.List [ Sexp.Atom "syncq"; Sexp.Atom param; is; template; body; balpha ] ->
    SSyncQ
      { param; insts = insts is; template = of_sexp template; body = Expr.of_sexp body;
        balpha = Alpha.of_sexp balpha }
  | Sexp.List [ Sexp.Atom "andq"; Sexp.Atom param; is; template; body; balpha ] ->
    SAndQ
      { param; insts = insts is; template = of_sexp template; body = Expr.of_sexp body;
        balpha = Alpha.of_sexp balpha }
  | _ -> bad "state"

(* ------------------------------------------------------------------ *)
(* Invariant checking (test support)                                   *)
(* ------------------------------------------------------------------ *)

let check_invariants (s : t) : (unit, string) result =
  let exception Bad of string in
  let fail fmt = Format.kasprintf (fun m -> raise (Bad m)) fmt in
  let sorted_unique what cmp xs =
    let rec go = function
      | a :: (b :: _ as rest) ->
        let c = cmp a b in
        if c > 0 then fail "%s: not sorted" what
        else if c = 0 then fail "%s: duplicate entries" what
        else go rest
      | [ _ ] | [] -> ()
    in
    go xs
  in
  let rec go = function
    | SAtom _ -> ()
    | SOpt { body; _ } -> go body
    | SSeq { left; rights; _ } ->
      if left = None && rights = [] then fail "seq: dead state represented";
      sorted_unique "seq rights" compare rights;
      Option.iter go left;
      List.iter go rights
    | SSeqIter { actives; _ } ->
      if actives = [] then fail "seqiter: no actives";
      sorted_unique "seqiter actives" compare actives;
      List.iter go actives
    | SPar { alts } ->
      if alts = [] then fail "par: no alternatives";
      sorted_unique "par alternatives" Stdlib.compare alts;
      List.iter
        (fun (l, r) ->
          go l;
          go r)
        alts
    | SParIter { alts; _ } ->
      if alts = [] then fail "pariter: no alternatives";
      sorted_unique "pariter alternatives" Stdlib.compare alts;
      List.iter
        (fun ws ->
          (* walkers form a sorted multiset: duplicates allowed, order not *)
          (let rec sorted = function
             | a :: (b :: _ as rest) ->
               if compare a b > 0 then fail "pariter walkers: not sorted" else sorted rest
             | _ -> ()
           in
           sorted ws);
          List.iter go ws)
        alts
    | SOr { left; right } ->
      if left = None && right = None then fail "or: dead state represented";
      Option.iter go left;
      Option.iter go right
    | SAnd { left; right } | SSync { left; right; _ } ->
      go left;
      go right
    | SSome { insts; dead; template; _ } ->
      sorted_unique "some instances" (fun (v, _) (w, _) -> String.compare v w) insts;
      sorted_unique "some dead values" String.compare dead;
      List.iter
        (fun (v, _) ->
          if List.mem v dead then fail "some: instance %s both live and dead" v)
        insts;
      if insts = [] && template = None then fail "some: dead state represented";
      List.iter (fun (_, s) -> go s) insts;
      Option.iter go template
    | SAll { alts; _ } ->
      if alts = [] then fail "all: no alternatives";
      sorted_unique "all alternatives" Stdlib.compare alts;
      List.iter
        (fun { bound; anon } ->
          sorted_unique "all bound" (fun (v, _) (w, _) -> String.compare v w) bound;
          (let rec sorted = function
             | a :: (b :: _ as rest) ->
               if compare a b > 0 then fail "all anon: not sorted" else sorted rest
             | _ -> ()
           in
           sorted anon);
          List.iter (fun (_, s) -> go s) bound;
          List.iter go anon)
        alts
    | SSyncQ { insts; template; _ } | SAndQ { insts; template; _ } ->
      sorted_unique "quantifier instances" (fun (v, _) (w, _) -> String.compare v w) insts;
      List.iter (fun (_, s) -> go s) insts;
      go template
  in
  match go s with () -> Ok () | exception Bad m -> Error m
