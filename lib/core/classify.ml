type verdict =
  | Harmless
  | Benign of int
  | Potentially_malignant

let rec quasi_regular = function
  | Expr.Atom _ -> true
  | Expr.Opt y | Expr.SeqIter y -> quasi_regular y
  | Expr.ParIter _ | Expr.SomeQ _ | Expr.AllQ _ | Expr.SyncQ _ | Expr.AndQ _ -> false
  | Expr.Seq (y, z) | Expr.Par (y, z) | Expr.Or (y, z) | Expr.And (y, z) | Expr.Sync (y, z)
    ->
    quasi_regular y && quasi_regular z

let parameterless e = List.for_all (fun a -> Action.params a = []) (Expr.atoms e)

(* Every atom syntactically occurring in [body] mentions [p]. *)
let body_uniform_in p body =
  List.for_all (fun a -> List.mem p (Action.params a)) (Expr.atoms body)

let rec uniformly_quantified = function
  | Expr.Atom _ -> true
  | Expr.Opt y | Expr.SeqIter y | Expr.ParIter y -> uniformly_quantified y
  | Expr.Seq (y, z) | Expr.Par (y, z) | Expr.Or (y, z) | Expr.And (y, z) | Expr.Sync (y, z)
    ->
    uniformly_quantified y && uniformly_quantified z
  | Expr.SomeQ (p, y) | Expr.AllQ (p, y) | Expr.SyncQ (p, y) | Expr.AndQ (p, y) ->
    body_uniform_in p y && uniformly_quantified y

let completely_quantified e = Expr.free_params e = []

(* A parallel iteration multiplies walker multisets; its growth stays
   polynomial when concurrent walkers are distinguishable, which the
   syntactic criterion below guarantees: the body is a disjunction
   quantifier whose body mentions the quantified parameter everywhere, so
   every action is attributable to one walker. *)
let pariter_safe = function
  | Expr.SomeQ (p, y) -> body_uniform_in p y
  | Expr.Atom _ -> true
  | _ -> false

let rec safe_and_degree : Expr.t -> int option = function
  | Expr.Atom _ -> Some 0
  | Expr.Opt y | Expr.SeqIter y -> safe_and_degree y
  | Expr.Seq (y, z) | Expr.Par (y, z) | Expr.Or (y, z) | Expr.And (y, z) | Expr.Sync (y, z)
    -> (
    match (safe_and_degree y, safe_and_degree z) with
    | Some a, Some b -> Some (max a b)
    | _ -> None)
  | Expr.ParIter y ->
    if pariter_safe y then Option.map (fun d -> d + 1) (safe_and_degree y) else None
  | Expr.SomeQ (p, y) | Expr.AllQ (p, y) | Expr.SyncQ (p, y) | Expr.AndQ (p, y) ->
    if body_uniform_in p y then Option.map (fun d -> d + 1) (safe_and_degree y) else None

let benignity e =
  if quasi_regular e then Harmless
  else
    match safe_and_degree e with
    | Some d -> Benign (max d 1)
    | None -> Potentially_malignant

let verdict_to_string = function
  | Harmless -> "harmless (constant transition cost)"
  | Benign d -> Printf.sprintf "benign (polynomial state growth, estimated degree %d)" d
  | Potentially_malignant -> "potentially malignant (exponential growth not excluded)"

let pp_verdict ppf v = Format.pp_print_string ppf (verdict_to_string v)

let describe e =
  let yesno b = if b then "yes" else "no" in
  String.concat "\n"
    [ Printf.sprintf "expression size:        %d nodes" (Expr.size e);
      Printf.sprintf "quasi-regular:          %s" (yesno (quasi_regular e));
      Printf.sprintf "parameterless:          %s" (yesno (parameterless e));
      Printf.sprintf "uniformly quantified:   %s" (yesno (uniformly_quantified e));
      Printf.sprintf "completely quantified:  %s" (yesno (completely_quantified e));
      Printf.sprintf "verdict:                %s" (verdict_to_string (benignity e));
    ]

(* The subexpressions responsible for a non-harmless verdict, as
   human-readable loci — what the runtime sentinel names when observed
   growth exceeds the class-predicted envelope. *)
let offenders e =
  let out = ref [] in
  let add trail msg =
    let locus = match trail with [] -> "(root)" | _ -> String.concat "/" (List.rev trail) in
    out := (locus ^ ": " ^ msg) :: !out
  in
  let rec go trail (e : Expr.t) =
    match e with
    | Expr.Atom _ -> ()
    | Expr.Opt y -> go ("opt" :: trail) y
    | Expr.Seq (y, z) ->
      go ("seq.l" :: trail) y;
      go ("seq.r" :: trail) z
    | Expr.SeqIter y -> go ("iter" :: trail) y
    | Expr.Par (y, z) ->
      go ("par.l" :: trail) y;
      go ("par.r" :: trail) z
    | Expr.Or (y, z) ->
      go ("or.l" :: trail) y;
      go ("or.r" :: trail) z
    | Expr.And (y, z) ->
      go ("and.l" :: trail) y;
      go ("and.r" :: trail) z
    | Expr.Sync (y, z) ->
      go ("sync.l" :: trail) y;
      go ("sync.r" :: trail) z
    | Expr.ParIter y ->
      if not (pariter_safe y) then
        add trail "parallel iteration with ambiguous walkers (body is not a uniformly quantified disjunction)";
      go ("pariter" :: trail) y
    | Expr.SomeQ (p, y) | Expr.AllQ (p, y) | Expr.SyncQ (p, y) | Expr.AndQ (p, y) ->
      let kind =
        match e with
        | Expr.SomeQ _ -> "some"
        | Expr.AllQ _ -> "all"
        | Expr.SyncQ _ -> "sync"
        | _ -> "conj"
      in
      if not (body_uniform_in p y) then
        add trail
          (Printf.sprintf "quantifier %s %s is not uniform (atoms omitting %s: %s)" kind
             p p
             (String.concat ", "
                (List.filter_map
                   (fun a ->
                     if List.mem p (Action.params a) then None
                     else Some (Action.to_string a))
                   (Expr.atoms y))));
      go ((kind ^ " " ^ p) :: trail) y
  in
  go [] e;
  (match Expr.free_params e with
  | [] -> ()
  | ps ->
    add []
      (Printf.sprintf "free parameters %s (expression is not completely quantified)"
         (String.concat ", " ps)));
  List.rev !out

let explain e =
  let buf = Buffer.create 256 in
  let add depth msg = Buffer.add_string buf (String.make (2 * depth) ' ' ^ msg ^ "\n") in
  let rec go depth (e : Expr.t) =
    match e with
    | Expr.Atom a -> add depth (Action.to_string a)
    | Expr.Opt y ->
      add depth "opt";
      go (depth + 1) y
    | Expr.Seq (y, z) ->
      add depth "seq";
      go (depth + 1) y;
      go (depth + 1) z
    | Expr.SeqIter y ->
      add depth "iter";
      go (depth + 1) y
    | Expr.Par (y, z) ->
      add depth "par";
      go (depth + 1) y;
      go (depth + 1) z
    | Expr.ParIter y ->
      add depth
        (Printf.sprintf "pariter  -- %s"
           (if pariter_safe y then "distinguishable walkers: benign"
            else "ambiguous walkers: POTENTIALLY MALIGNANT"));
      go (depth + 1) y
    | Expr.Or (y, z) ->
      add depth "or";
      go (depth + 1) y;
      go (depth + 1) z
    | Expr.And (y, z) ->
      add depth "and";
      go (depth + 1) y;
      go (depth + 1) z
    | Expr.Sync (y, z) ->
      add depth "sync";
      go (depth + 1) y;
      go (depth + 1) z
    | Expr.SomeQ (p, y) | Expr.AllQ (p, y) | Expr.SyncQ (p, y) | Expr.AndQ (p, y) ->
      let kind =
        match e with
        | Expr.SomeQ _ -> "some"
        | Expr.AllQ _ -> "all"
        | Expr.SyncQ _ -> "sync"
        | _ -> "conj"
      in
      add depth
        (Printf.sprintf "%s %s  -- %s" kind p
           (if body_uniform_in p y then "uniformly quantified: benign"
            else
              Printf.sprintf
                "NOT uniform (these atoms omit %s: %s): POTENTIALLY MALIGNANT" p
                (String.concat ", "
                   (List.filter_map
                      (fun a ->
                        if List.mem p (Action.params a) then None
                        else Some (Action.to_string a))
                      (Expr.atoms y)))));
      go (depth + 1) y
  in
  go 0 e;
  Buffer.add_string buf ("overall: " ^ verdict_to_string (benignity e));
  Buffer.contents buf
