(* The two-level compiled transition kernel.

   Level 1 — match signatures.  The alphabet patterns of the session
   expression (Alpha.of_expr) induce a classifier: the signature of a
   concrete action is, per root pattern, whether it matches and under which
   binder assignment (Alpha.sig_match).  Every pattern any evaluation step
   can derive from the root alphabet — sub-alphabets of operands,
   quantifier-materialized instance patterns, state atoms — is a
   substitution instance of a root pattern, and its verdict on an action is
   a function of the root pattern's signature entry.  Two actions with the
   same signature therefore drive τ̂ identically from every reachable
   state, and an action whose signature is all-None (no pattern matches)
   is rejected by every state of the expression without touching the state
   DAG: atoms cannot consume it, membership tests fail, candidate sets are
   empty, so τ̂ returns the null state uniformly.

   Level 2 — the lazy automaton.  Hash-consed states are interned into
   dense row ids, signatures into dense column ids, and every *visited*
   (row, column) pair is materialized into an array-backed transition row:
   -2 = not yet computed, -1 = reject, otherwise the successor's row.  The
   word and action problems then run as table walks; a cold entry falls
   back to one τ̂ (itself memoized upstream) and fills the table behind
   itself.  For harmless (quasi-regular, Section 6) expressions the
   reachable space is finite and small, so it is compiled eagerly at
   creation — generalizing the E15 deployment-time FSM into the production
   path; benign and potentially-malignant expressions stay purely lazy.

   Instances are domain-local (obtained via [shared]), like the state
   model's hash-cons and memo tables: rows hold the owning domain's own
   states, so [step] can hand them out with physical-equality guarantees
   intact.  The caps bound retention — rows hold states strongly — and a
   full table degrades to the interpreted kernel, never to a wrong
   answer. *)

type t = {
  expr : Expr.t;
  alpha : Alpha.pattern array;  (* root alphabet, fixed pattern order *)
  (* level 1: action -> signature column.  The key table interns canonical
     signatures; the action cache makes repeated classification one lookup
     (segmented: open-world action streams are unbounded). *)
  sig_keys : ((int * Action.value) list option list, int) Hashtbl.t;
  mutable nsigs : int;
  sig_cache : (Action.concrete, int) Segtbl.t;
  (* level 2: state row × signature column *)
  row_tbl : (int, int) Hashtbl.t;  (* State.id -> row *)
  mutable states : State.t array;  (* row -> state (strong) *)
  mutable opts : State.t option array;  (* row -> [Some state], preallocated
                                           so warm steps hand out successors
                                           without boxing *)
  mutable finals : bool array;  (* row -> φ, so word walks never leave ints *)
  mutable rows : int array array;  (* row -> column -> entry *)
  mutable nrows : int;
  (* one-slot state → row cache: a session's next input state is almost
     always the previous step's output state, which makes row resolution a
     pointer comparison instead of a hash lookup *)
  mutable last_st : State.t;
  mutable last_row : int;
  (* instance-local tallies, flushed to the process-wide atomics in
     batches (every [flush_threshold], and exactly on [stats]): the warm
     session step used to pay three atomic read-modify-writes, a
     measurable tax at a few hundred ns per action *)
  mutable pending_steps : int;
  mutable pending_sig_hits : int;
  max_rows : int;
  max_sigs : int;
  eager : bool;
}

(* Row entries and special signature columns. *)
let e_cold = -2
let e_reject = -1
let sig_reject = 0  (* the all-None signature: uniform reject *)
let sig_unclassified = -1  (* signature cap hit: not classified, fall back *)
let no_row = -1  (* row cap hit: state not interned, fall back *)

(* Process-wide tallies in the style of [State.cache_stats]: atomic because
   every evaluation domain counts into them; sampled by the telemetry
   registry as the [automaton_*] probes. *)
let steps_total = Atomic.make 0
let fallbacks_total = Atomic.make 0
let sig_hits = Atomic.make 0
let sig_misses = Atomic.make 0
let sig_evictions = Atomic.make 0
let overflows_total = Atomic.make 0
let interned_total = Atomic.make 0
let rows_live = Atomic.make 0
let sigs_live = Atomic.make 0
let instances_total = Atomic.make 0

(* Pending-tally registry: instances batch their hot counters locally, so
   [stats] must walk every live instance to stay exact (the workbench and
   the unit tests read deltas).  Weak references — property tests mint
   unbounded streams of instances; dead slots are compacted on insert.
   Flushing a foreign domain's instance reads plain int fields, which can
   transiently under-count an in-flight batch: acceptable for stats. *)
let registry : t Weak.t list ref = ref []
let registry_mu = Mutex.create ()

let register a =
  let w = Weak.create 1 in
  Weak.set w 0 (Some a);
  Mutex.protect registry_mu (fun () ->
      registry := w :: List.filter (fun w -> Weak.check w 0) !registry)

let flush_threshold = 1 lsl 12

let flush a =
  if a.pending_steps > 0 then begin
    ignore (Atomic.fetch_and_add steps_total a.pending_steps);
    a.pending_steps <- 0
  end;
  if a.pending_sig_hits > 0 then begin
    ignore (Atomic.fetch_and_add sig_hits a.pending_sig_hits);
    a.pending_sig_hits <- 0
  end

let flush_all () =
  Mutex.protect registry_mu (fun () ->
      List.iter
        (fun w -> match Weak.get w 0 with Some a -> flush a | None -> ())
        !registry)

type stats = {
  steps : int;
  fallbacks : int;
  sig_cache_hits : int;
  sig_cache_misses : int;
  sig_cache_evictions : int;
  overflows : int;
  interned_states : int;
  live_rows : int;
  live_signatures : int;
  instances : int;
}

let stats () =
  flush_all ();
  { steps = Atomic.get steps_total;
    fallbacks = Atomic.get fallbacks_total;
    sig_cache_hits = Atomic.get sig_hits;
    sig_cache_misses = Atomic.get sig_misses;
    sig_cache_evictions = Atomic.get sig_evictions;
    overflows = Atomic.get overflows_total;
    interned_states = Atomic.get interned_total;
    live_rows = Atomic.get rows_live;
    live_signatures = Atomic.get sigs_live;
    instances = Atomic.get instances_total }

let reset_stats () =
  Mutex.protect registry_mu (fun () ->
      List.iter
        (fun w ->
          match Weak.get w 0 with
          | Some a ->
            a.pending_steps <- 0;
            a.pending_sig_hits <- 0
          | None -> ())
        !registry);
  Atomic.set steps_total 0;
  Atomic.set fallbacks_total 0;
  Atomic.set sig_hits 0;
  Atomic.set sig_misses 0;
  Atomic.set sig_evictions 0;
  Atomic.set overflows_total 0

let () =
  let probe name r =
    Telemetry.register_probe name (fun () -> float_of_int (Atomic.get r))
  in
  probe "automaton_steps_total" steps_total;
  probe "automaton_fallbacks_total" fallbacks_total;
  probe "automaton_sig_cache_hits" sig_hits;
  probe "automaton_sig_cache_misses" sig_misses;
  probe "automaton_sig_cache_evictions" sig_evictions;
  probe "automaton_overflow_total" overflows_total;
  probe "automaton_interned_states" interned_total;
  probe "automaton_rows" rows_live;
  probe "automaton_signatures" sigs_live;
  probe "automaton_instances" instances_total;
  Telemetry.register_probe "automaton_sig_cache_hit_rate" (fun () ->
      let h = Atomic.get sig_hits and m = Atomic.get sig_misses in
      if h + m = 0 then 0. else float_of_int h /. float_of_int (h + m))

(* The compiled kernel is a memo structure over canonical states: without
   memoization or canonicalization (the E11/E16 ablations) caching steps
   would hide exactly the effect under measurement, so the kernel is active
   only when all three switches are on.  Checked at every step: flipping
   any switch mid-run takes effect immediately. *)
let active () = State.compilation () && State.memoization () && State.canonicalization ()

(* ------------------------------------------------------------------ *)
(* Interning                                                           *)
(* ------------------------------------------------------------------ *)

let grow_to a n =
  if n > Array.length a.rows then begin
    let cap = max n (max 64 (2 * Array.length a.rows)) in
    let grow arr fill =
      let b = Array.make cap fill in
      Array.blit arr 0 b 0 a.nrows;
      b
    in
    a.rows <- grow a.rows [||];
    a.states <- grow a.states a.states.(0);
    a.opts <- grow a.opts None;
    a.finals <- grow a.finals false
  end

(* Intern a state as a row; [no_row] once the row cap is reached (the
   state keeps working through the interpreted fallback).  The one-slot
   cache makes the sequential-session case a pointer comparison. *)
let row_of a st =
  if st == a.last_st then a.last_row
  else
    let r =
      match Hashtbl.find_opt a.row_tbl (State.id st) with
      | Some r -> r
      | None ->
        if a.nrows >= a.max_rows then begin
          Atomic.incr overflows_total;
          no_row
        end
        else begin
          let r = a.nrows in
          grow_to a (r + 1);
          a.nrows <- r + 1;
          a.states.(r) <- st;
          a.opts.(r) <- Some st;
          a.finals.(r) <- State.final st;
          a.rows.(r) <- Array.make 8 e_cold;
          Hashtbl.add a.row_tbl (State.id st) r;
          Atomic.incr interned_total;
          Atomic.incr rows_live;
          r
        end
    in
    if r <> no_row then begin
      a.last_st <- st;
      a.last_row <- r
    end;
    r

let signature a c =
  Array.fold_right (fun p acc -> Alpha.sig_match p c :: acc) a.alpha []

(* Classify an action: its dense signature column.  [Segtbl.find] keeps
   the hot (young-hit) case allocation-free. *)
let sig_of a c =
  match Segtbl.find a.sig_cache c with
  | s ->
    let n = a.pending_sig_hits + 1 in
    a.pending_sig_hits <- n;
    if n >= flush_threshold then flush a;
    s
  | exception Not_found ->
    Atomic.incr sig_misses;
    let key = signature a c in
    let s =
      if List.for_all (fun m -> m = None) key then sig_reject
      else
        match Hashtbl.find_opt a.sig_keys key with
        | Some s -> s
        | None ->
          if a.nsigs >= a.max_sigs then begin
            Atomic.incr overflows_total;
            sig_unclassified
          end
          else begin
            let s = a.nsigs in
            a.nsigs <- s + 1;
            Hashtbl.add a.sig_keys key s;
            Atomic.incr sigs_live;
            s
          end
    in
    if s <> sig_unclassified then Segtbl.add a.sig_cache c s;
    s

let entry a r s =
  let row = a.rows.(r) in
  if s < Array.length row then row.(s) else e_cold

(* Rows start small and grow geometrically on column access: most states
   are only ever stepped with a handful of the expression's signatures, so
   dense nrows × nsigs allocation would be mostly dead weight. *)
let set_entry a r s v =
  let row = a.rows.(r) in
  let row =
    if s < Array.length row then row
    else begin
      let n = Array.make (max (s + 1) (2 * Array.length row)) e_cold in
      Array.blit row 0 n 0 (Array.length row);
      a.rows.(r) <- n;
      n
    end
  in
  row.(s) <- v

(* Cold entry: one interpreted τ̂ (memoized upstream) computes the
   successor and fills the table behind itself.  [s] may be
   [sig_unclassified], in which case there is no column to fill. *)
let resolve a r s c =
  Atomic.incr fallbacks_total;
  let succ = State.trans a.states.(r) c in
  (if s >= 0 then
     match succ with
     | None -> set_entry a r s e_reject
     | Some st' ->
       let r' = row_of a st' in
       (* row cap hit: the entry stays cold and keeps falling back *)
       if r' <> no_row then set_entry a r s r');
  succ

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

(* Ground actions derivable from the root alphabet alone: patterns whose
   positions are all concrete values.  For quasi-regular expressions (no
   quantifiers, hence no [Bound]; [Free] matches nothing) this *is* the
   concrete alphabet, which makes eager compilation self-contained. *)
let ground_actions alpha =
  List.filter_map
    (fun (p : Alpha.pattern) ->
      let rec vals acc = function
        | [] -> Some (List.rev acc)
        | Alpha.Val v :: rest -> vals (v :: acc) rest
        | (Alpha.Bound _ | Alpha.Free _) :: _ -> None
      in
      Option.map (Action.conc p.Alpha.pname) (vals [] p.Alpha.pargs))
    (List.sort_uniq Stdlib.compare alpha)

(* Eager compilation: BFS over (row × ground action) until the table is
   closed or a cap is hit.  Resolution goes through [resolve], so the rows
   fill exactly like the lazy path would fill them. *)
let precompile a =
  let actions = ground_actions (Array.to_list a.alpha) in
  let rec bfs frontier =
    match frontier with
    | [] -> ()
    | r :: rest ->
      let next =
        List.filter_map
          (fun c ->
            let s = sig_of a c in
            if s <= sig_reject then None
            else
              match entry a r s with
              | e when e = e_cold -> (
                let before = a.nrows in
                match resolve a r s c with
                | None -> None
                | Some _ -> if a.nrows > before then Some (a.nrows - 1) else None)
              | _ -> None)
          actions
      in
      bfs (rest @ next)
  in
  bfs [ 0 ]

let create ?eager ?(max_rows = 1 lsl 15) ?(max_sigs = 1 lsl 12) e =
  let alpha = Array.of_list (Alpha.of_expr e) in
  let s0 = State.init e in
  let eager =
    match eager with
    | Some b -> b
    | None -> ( match Classify.benignity e with
      | Classify.Harmless -> true
      | Classify.Benign _ | Classify.Potentially_malignant -> false)
  in
  let a =
    { expr = e;
      alpha;
      sig_keys = Hashtbl.create 16;
      nsigs = 1;  (* column 0 is the reject signature *)
      sig_cache = Segtbl.create ~gen_cap:(1 lsl 14) ~evictions:sig_evictions 64;
      row_tbl = Hashtbl.create 64;
      states = Array.make 64 s0;
      opts = Array.make 64 None;
      finals = Array.make 64 false;
      rows = Array.make 64 [||];
      nrows = 1;  (* row 0 is σ(e), interned inline just below *)
      last_st = s0;
      last_row = 0;
      pending_steps = 0;
      pending_sig_hits = 0;
      max_rows;
      max_sigs;
      eager }
  in
  register a;
  a.opts.(0) <- Some s0;
  a.finals.(0) <- State.final s0;
  a.rows.(0) <- Array.make 8 e_cold;
  Hashtbl.add a.row_tbl (State.id s0) 0;
  Atomic.incr interned_total;
  Atomic.incr rows_live;
  Atomic.incr sigs_live (* the reject column *);
  Atomic.incr instances_total;
  if eager then precompile a;
  a

let expr a = a.expr

type info = {
  eager : bool;
  rows : int;
  signatures : int;
}

let info (a : t) = { eager = a.eager; rows = a.nrows; signatures = a.nsigs }

(* Domain-local instance cache, keyed structurally per expression like
   [Alpha.of_expr]'s: sessions, manager replicas and repeated word queries
   on the same expression share one automaton — and its warm rows.  A
   one-slot physical-equality fast path makes the repeated-word pattern
   ([word e w] in a loop) skip the expression hash entirely.  The table is
   bounded: property tests generate unbounded streams of expressions. *)
module ExprTbl = Hashtbl.Make (struct
  type t = Expr.t

  let equal = Expr.equal
  let hash e = Hashtbl.hash_param 256 1024 e
end)

let shared_cap = 256

let shared_tbl : t ExprTbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ExprTbl.create 16)

let shared_slot : (Expr.t * t) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let shared e =
  let slot = Domain.DLS.get shared_slot in
  match !slot with
  | Some (e0, a) when e0 == e -> a
  | _ ->
    let tbl = Domain.DLS.get shared_tbl in
    let a =
      match ExprTbl.find_opt tbl e with
      | Some a -> a
      | None ->
        if ExprTbl.length tbl >= shared_cap then begin
          ExprTbl.reset tbl;
          Atomic.incr overflows_total
        end;
        let a = create e in
        ExprTbl.add tbl e a;
        a
    in
    slot := Some (e, a);
    a

(* Drop this domain's shared instances.  For the experiment harness: an
   automaton retained from an earlier workload on the same expression
   carries that workload's rows and signatures, so before/after tables
   would depend on experiment order.  Sessions that already bound an
   instance keep it — only future [shared] calls see fresh tables. *)
let reset_shared () =
  ExprTbl.reset (Domain.DLS.get shared_tbl);
  Domain.DLS.get shared_slot := None

(* ------------------------------------------------------------------ *)
(* Stepping                                                            *)
(* ------------------------------------------------------------------ *)

(* τ̂ through the tables.  Precondition: [st] is a state of [a]'s
   expression (initial, reachable, or loaded from a checkpoint of it) —
   the reject short-circuit is only sound against the right alphabet.  The
   warm path is two lookups (one a pointer comparison via the row slot)
   and an array read; the successor is primed into the slot so the next
   call resolves its row without hashing. *)
let step a st c =
  if not (active ()) then State.trans st c
  else begin
    let n = a.pending_steps + 1 in
    a.pending_steps <- n;
    if n >= flush_threshold then flush a;
    let r = row_of a st in
    if r = no_row then begin
      Atomic.incr fallbacks_total;
      State.trans st c
    end
    else
      let s = sig_of a c in
      if s = sig_reject then begin
        State.count_transition ();
        None
      end
      else if s = sig_unclassified then begin
        Atomic.incr fallbacks_total;
        State.trans st c
      end
      else
        let e = entry a r s in
        if e = e_reject then begin
          State.count_transition ();
          None
        end
        else if e >= 0 then begin
          State.count_transition ();
          a.last_st <- a.states.(e);
          a.last_row <- e;
          (* preallocated: the warm path hands out the row's option
             without boxing a fresh [Some] per step *)
          a.opts.(e)
        end
        else resolve a r s c
  end

(* The word problem as a table walk: the warm path stays entirely in ints
   (no state is touched, no option allocated), reads finality from the
   per-row bit at the end, and flushes its step/transition counts in one
   atomic add per word.  [None] = illegal, [Some fin] = survived. *)
let run_word a w =
  if not (active ()) then
    match State.trans_word (State.init a.expr) w with
    | None -> None
    | Some s -> Some (State.final s)
  else begin
    let steps = ref 0 and warm = ref 0 in
    let finish r =
      if !steps > 0 then ignore (Atomic.fetch_and_add steps_total !steps);
      State.count_transitions !warm;
      r
    in
    (* off-table tail: plain τ̂ once the walk falls off the rows *)
    let rec slow st = function
      | [] -> Some (State.final st)
      | c :: cs -> (
        match State.trans st c with None -> None | Some st' -> slow st' cs)
    in
    let rec go r = function
      | [] -> Some a.finals.(r)
      | c :: cs -> (
        incr steps;
        let s = sig_of a c in
        if s = sig_reject then begin
          incr warm;
          None
        end
        else if s = sig_unclassified then begin
          Atomic.incr fallbacks_total;
          match State.trans a.states.(r) c with
          | None -> None
          | Some st' -> slow st' cs
        end
        else
          let e = entry a r s in
          if e = e_reject then begin
            incr warm;
            None
          end
          else if e >= 0 then begin
            incr warm;
            go e cs
          end
          else
            match resolve a r s c with
            | None -> None
            | Some st' ->
              (* [resolve] interned the successor unless the rows are full *)
              let r' = row_of a st' in
              if r' <> no_row then go r' cs else slow st' cs)
    in
    finish (go 0 w)
  end
