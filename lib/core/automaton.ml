(* The two-level compiled transition kernel.

   Level 1 — match signatures.  The alphabet patterns of the session
   expression (Alpha.of_expr) induce a classifier: the signature of a
   concrete action is, per root pattern, whether it matches and under which
   binder assignment (Alpha.sig_match).  Every pattern any evaluation step
   can derive from the root alphabet — sub-alphabets of operands,
   quantifier-materialized instance patterns, state atoms — is a
   substitution instance of a root pattern, and its verdict on an action is
   a function of the root pattern's signature entry.  Two actions with the
   same signature therefore drive τ̂ identically from every reachable
   state, and an action whose signature is all-None (no pattern matches)
   is rejected by every state of the expression without touching the state
   DAG: atoms cannot consume it, membership tests fail, candidate sets are
   empty, so τ̂ returns the null state uniformly.

   Level 2 — the lazy automaton.  Hash-consed states are interned into
   dense row ids, signatures into dense column ids, and every *visited*
   (row, column) pair is materialized into an array-backed transition row:
   -2 = not yet computed, -1 = reject, otherwise the successor's row.  The
   word and action problems then run as table walks; a cold entry falls
   back to one τ̂ (itself memoized upstream) and fills the table behind
   itself.  For harmless (quasi-regular, Section 6) expressions the
   reachable space is finite and small, so it is compiled eagerly at
   creation — generalizing the E15 deployment-time FSM into the production
   path; benign and potentially-malignant expressions stay purely lazy.

   Concurrency.  Instances are process-global ([shared]) and walked by
   every evaluation domain at once; the hash-cons table being global (see
   State) means rows hold canonical states valid on all domains.  The
   design splits reads from fills:

   - The dense arrays live in an immutable [tables] record published
     through an [Atomic.t].  A warm step takes one atomic load and then
     stays inside that snapshot; growing under the fill lock builds fresh
     arrays and publishes a new record, so the release store of
     [Atomic.set] makes every slot written for rows < nrows visible to
     any reader that observes the new record.  Row entries mutate in
     place (plain int stores): a reader sees the old value (a cold miss,
     resolved under the lock) or the new one; an entry pointing past the
     reader's snapshot is treated as cold and re-read under the lock,
     never dereferenced blindly.
   - The State.id → row map is a {!Cmap}: lock-free probes over published
     snapshots, inserts only under the fill lock.
   - One mutex (per instance) serializes all mutation: row interning,
     entry fill, signature interning.  The interpreted τ̂ of a cold entry
     runs *outside* the lock — it is pure, and global hash-consing makes
     concurrent duplicate computes converge on the same successor — so
     cold fills of different entries proceed in parallel and the lock
     only covers table surgery.
   - Per-domain state lives in {!Dshard}s: the one-slot state → row cache
     (a shared slot would false-share and mispair under interleaving),
     the signature Segtbl (single-domain by contract), and the batched
     step/signature-hit tallies (the former per-instance pending ints
     tore when two domains walked one instance).

   The caps bound retention — rows hold states strongly — and a full
   table degrades to the interpreted kernel, never to a wrong answer. *)

(* The dense tables, as one immutable snapshot.  The arrays themselves are
   mutable (slots are written under the fill lock, row entries in place),
   but the record is copied on every row interning so [nrows] and the
   array spines are published together with a release store. *)
type tables = {
  states : State.t array;  (* row -> state (strong) *)
  opts : State.t option array;  (* row -> [Some state], preallocated so warm
                                   steps hand out successors without boxing *)
  finals : bool array;  (* row -> φ, so word walks never leave ints *)
  rows : int array array;  (* row -> column -> entry *)
  nrows : int;
}

(* Per-domain one-slot state → row cache: a session's next input state is
   almost always the previous step's output state, which makes row
   resolution a pointer comparison instead of a hash lookup.  Only the
   owning domain reads or writes its cell (Dshard), and a cell's row was
   validated against a snapshot this domain already held, so it never
   exceeds the domain's current snapshot. *)
type lastslot = {
  mutable lst : State.t;
  mutable lrow : int;
}

type t = {
  expr : Expr.t;
  alpha : Alpha.pattern array;  (* root alphabet, fixed pattern order *)
  (* serializes every mutation: row interning, entry fill, signature
     interning.  Never held during an interpreted τ̂. *)
  fill : Mutex.t;
  (* level 1: action -> signature column.  The key table interns canonical
     signatures (under [fill]); the per-domain action caches make repeated
     classification one lookup (segmented: open-world action streams are
     unbounded; per-domain: Segtbl is single-domain by contract). *)
  sig_keys : ((int * Action.value) list option list, int) Hashtbl.t;
  mutable nsigs : int;  (* under [fill]; racy reads only for [info] *)
  sig_caches : (Action.concrete, int) Segtbl.t Dshard.replica;
  (* level 2: state row × signature column *)
  row_map : Cmap.t;  (* State.id -> row; lock-free reads *)
  tables : tables Atomic.t;
  last : lastslot Dshard.replica;
  (* per-domain tallies over the process-wide atomics: the warm session
     step used to pay three atomic read-modify-writes, a measurable tax
     at a few hundred ns per action — and the former instance-local
     pending ints raced once instances became shared *)
  step_tally : Dshard.Tally.t;
  sig_hit_tally : Dshard.Tally.t;
  max_rows : int;
  max_sigs : int;
  eager : bool;
}

(* Row entries and special signature columns. *)
let e_cold = -2
let e_reject = -1
let sig_reject = 0  (* the all-None signature: uniform reject *)
let sig_unclassified = -1  (* signature cap hit: not classified, fall back *)
let no_row = -1  (* row cap hit: state not interned, fall back *)

(* Process-wide tallies in the style of [State.cache_stats]: atomic because
   every evaluation domain counts into them; sampled by the telemetry
   registry as the [automaton_*] probes. *)
let steps_total = Atomic.make 0
let fallbacks_total = Atomic.make 0
let sig_hits = Atomic.make 0
let sig_misses = Atomic.make 0
let sig_evictions = Atomic.make 0
let overflows_total = Atomic.make 0
let interned_total = Atomic.make 0
let rows_live = Atomic.make 0
let sigs_live = Atomic.make 0
let instances_total = Atomic.make 0

(* Pending-tally registry: instances batch their hot counters in
   per-domain cells, so [stats] must walk every live instance to stay
   exact (the workbench and the unit tests read deltas).  Weak references
   — property tests mint unbounded streams of instances; dead slots are
   compacted on insert.  Draining a foreign domain's cells reads plain
   int fields, which can transiently under-count an in-flight batch:
   acceptable for stats, and exact once the domains are joined. *)
let registry : t Weak.t list ref = ref []
let registry_mu = Mutex.create ()

(* Lock sites (Prof): every instance's fill lock reports into one
   "automaton.fill" site — E22's question is whether row fill serializes
   at all, not which instance does. *)
let registry_site = Prof.Lock.site "automaton.registry"
let fill_site = Prof.Lock.site "automaton.fill"

let register a =
  let w = Weak.create 1 in
  Weak.set w 0 (Some a);
  Prof.Lock.protect registry_site registry_mu (fun () ->
      registry := w :: List.filter (fun w -> Weak.check w 0) !registry)

let flush a =
  Dshard.Tally.drain a.step_tally;
  Dshard.Tally.drain a.sig_hit_tally

let flush_all () =
  Prof.Lock.protect registry_site registry_mu (fun () ->
      List.iter
        (fun w -> match Weak.get w 0 with Some a -> flush a | None -> ())
        !registry)

type stats = {
  steps : int;
  fallbacks : int;
  sig_cache_hits : int;
  sig_cache_misses : int;
  sig_cache_evictions : int;
  overflows : int;
  interned_states : int;
  live_rows : int;
  live_signatures : int;
  instances : int;
}

let stats () =
  flush_all ();
  { steps = Atomic.get steps_total;
    fallbacks = Atomic.get fallbacks_total;
    sig_cache_hits = Atomic.get sig_hits;
    sig_cache_misses = Atomic.get sig_misses;
    sig_cache_evictions = Atomic.get sig_evictions;
    overflows = Atomic.get overflows_total;
    interned_states = Atomic.get interned_total;
    live_rows = Atomic.get rows_live;
    live_signatures = Atomic.get sigs_live;
    instances = Atomic.get instances_total }

let reset_stats () =
  Prof.Lock.protect registry_site registry_mu (fun () ->
      List.iter
        (fun w ->
          match Weak.get w 0 with
          | Some a ->
            Dshard.Tally.discard a.step_tally;
            Dshard.Tally.discard a.sig_hit_tally
          | None -> ())
        !registry);
  Atomic.set steps_total 0;
  Atomic.set fallbacks_total 0;
  Atomic.set sig_hits 0;
  Atomic.set sig_misses 0;
  Atomic.set sig_evictions 0;
  Atomic.set overflows_total 0

let () =
  let probe name r =
    Telemetry.register_probe name (fun () -> float_of_int (Atomic.get r))
  in
  probe "automaton_steps_total" steps_total;
  probe "automaton_fallbacks_total" fallbacks_total;
  probe "automaton_sig_cache_hits" sig_hits;
  probe "automaton_sig_cache_misses" sig_misses;
  probe "automaton_sig_cache_evictions" sig_evictions;
  probe "automaton_overflow_total" overflows_total;
  probe "automaton_interned_states" interned_total;
  probe "automaton_rows" rows_live;
  probe "automaton_signatures" sigs_live;
  probe "automaton_instances" instances_total;
  Telemetry.register_probe "automaton_sig_cache_hit_rate" (fun () ->
      let h = Atomic.get sig_hits and m = Atomic.get sig_misses in
      if h + m = 0 then 0. else float_of_int h /. float_of_int (h + m))

(* The compiled kernel is a memo structure over canonical states: without
   memoization or canonicalization (the E11/E16 ablations) caching steps
   would hide exactly the effect under measurement, so the kernel is active
   only when all three switches are on.  Checked at every step: flipping
   any switch mid-run takes effect immediately. *)
let active () = State.compilation () && State.memoization () && State.canonicalization ()

(* ------------------------------------------------------------------ *)
(* Per-domain cells                                                    *)
(* ------------------------------------------------------------------ *)

let last_cell a tb =
  Dshard.replica_get a.last ~create:(fun () ->
      (* row 0 is σ(e): always a true (state, row) pair *)
      { lst = tb.states.(0); lrow = 0 })

let sig_cache a =
  Dshard.replica_get a.sig_caches ~create:(fun () ->
      Segtbl.create ~gen_cap:(1 lsl 14) ~evictions:sig_evictions 64)

(* ------------------------------------------------------------------ *)
(* Interning                                                           *)
(* ------------------------------------------------------------------ *)

(* Intern a state as a row; [no_row] once the row cap is reached (the
   state keeps working through the interpreted fallback).  Caller holds
   [fill].  Slot writes happen before the [Atomic.set] that publishes the
   enlarged [nrows] (release), so readers of the new snapshot see the row
   complete; the Cmap insert comes last, after publication. *)
let intern_locked a st =
  let r0 = Cmap.find a.row_map (State.id st) in
  if r0 >= 0 then r0
  else
    let tb = Atomic.get a.tables in
    let r = tb.nrows in
    if r >= a.max_rows then begin
      Atomic.incr overflows_total;
      no_row
    end
    else begin
      let tb' =
        if r < Array.length tb.states then begin
          tb.states.(r) <- st;
          tb.opts.(r) <- Some st;
          tb.finals.(r) <- State.final st;
          tb.rows.(r) <- Array.make 8 e_cold;
          { tb with nrows = r + 1 }
        end
        else begin
          let cap = max 64 (2 * Array.length tb.states) in
          let grow arr fill =
            let b = Array.make cap fill in
            Array.blit arr 0 b 0 r;
            b
          in
          let states = grow tb.states st in
          let opts = grow tb.opts None in
          let finals = grow tb.finals false in
          let rows = grow tb.rows [||] in
          states.(r) <- st;
          opts.(r) <- Some st;
          finals.(r) <- State.final st;
          rows.(r) <- Array.make 8 e_cold;
          { states; opts; finals; rows; nrows = r + 1 }
        end
      in
      Atomic.set a.tables tb';
      Cmap.add a.row_map (State.id st) r;
      Atomic.incr interned_total;
      Atomic.incr rows_live;
      r
    end

(* A snapshot guaranteed to cover row [r] (which must be interned): the
   racy fast reload almost always suffices; the lock round-trip is the
   fence of last resort. *)
let snap_covering a r =
  let tb = Atomic.get a.tables in
  if r < tb.nrows then tb
  else Prof.Lock.protect fill_site a.fill (fun () -> Atomic.get a.tables)

let signature a c =
  Array.fold_right (fun p acc -> Alpha.sig_match p c :: acc) a.alpha []

(* Classify an action: its dense signature column.  [Segtbl.find] on the
   calling domain's own cache keeps the hot (young-hit) case
   allocation-free and lock-free; only a cache miss consults the shared
   key table under [fill] (the signature itself is computed outside). *)
let sig_of a c =
  let cache = sig_cache a in
  match Segtbl.find cache c with
  | s ->
    Dshard.Tally.bump a.sig_hit_tally 1;
    s
  | exception Not_found ->
    Atomic.incr sig_misses;
    let key = signature a c in
    let s =
      if List.for_all (fun m -> m = None) key then sig_reject
      else
        Prof.Lock.protect fill_site a.fill (fun () ->
            match Hashtbl.find_opt a.sig_keys key with
            | Some s -> s
            | None ->
              if a.nsigs >= a.max_sigs then begin
                Atomic.incr overflows_total;
                sig_unclassified
              end
              else begin
                let s = a.nsigs in
                a.nsigs <- s + 1;
                Hashtbl.add a.sig_keys key s;
                Atomic.incr sigs_live;
                s
              end)
    in
    if s <> sig_unclassified then Segtbl.add cache c s;
    s

let entry tb r s =
  let row = tb.rows.(r) in
  if s < Array.length row then row.(s) else e_cold

(* Rows start small and grow geometrically on column access: most states
   are only ever stepped with a handful of the expression's signatures, so
   dense nrows × nsigs allocation would be mostly dead weight.  Caller
   holds [fill]; the grown row is installed in the freshest snapshot —
   readers of older snapshots keep the short row and miss cold, which the
   lock path resolves. *)
let set_entry_locked a r s v =
  let tb = Atomic.get a.tables in
  let row = tb.rows.(r) in
  let row =
    if s < Array.length row then row
    else begin
      let n = Array.make (max (s + 1) (2 * max 1 (Array.length row))) e_cold in
      Array.blit row 0 n 0 (Array.length row);
      tb.rows.(r) <- n;
      n
    end
  in
  row.(s) <- v

(* Cold entry: re-check under a fresh snapshot (another domain may have
   filled it), then one interpreted τ̂ — computed OUTSIDE the lock: τ̂ is
   pure and hash-consing is global, so concurrent duplicate computes are
   idempotent — and fill the table behind it.  [s] may be
   [sig_unclassified], in which case there is no column to fill. *)
let resolve a r s c =
  let tb = snap_covering a r in
  let e = if s >= 0 then entry tb r s else e_cold in
  if e = e_reject then begin
    State.count_transition ();
    None
  end
  else if e >= 0 && e < tb.nrows then begin
    State.count_transition ();
    tb.opts.(e)
  end
  else begin
    Atomic.incr fallbacks_total;
    let succ = State.trans tb.states.(r) c in
    (if s >= 0 then
       Prof.Lock.protect fill_site a.fill (fun () ->
           match succ with
           | None -> set_entry_locked a r s e_reject
           | Some st' ->
             let r' = intern_locked a st' in
             (* row cap hit: the entry stays cold and keeps falling back *)
             if r' <> no_row then set_entry_locked a r s r'));
    succ
  end

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

(* Ground actions derivable from the root alphabet alone: patterns whose
   positions are all concrete values.  For quasi-regular expressions (no
   quantifiers, hence no [Bound]; [Free] matches nothing) this *is* the
   concrete alphabet, which makes eager compilation self-contained. *)
let ground_actions alpha =
  List.filter_map
    (fun (p : Alpha.pattern) ->
      let rec vals acc = function
        | [] -> Some (List.rev acc)
        | Alpha.Val v :: rest -> vals (v :: acc) rest
        | (Alpha.Bound _ | Alpha.Free _) :: _ -> None
      in
      Option.map (Action.conc p.Alpha.pname) (vals [] p.Alpha.pargs))
    (List.sort_uniq Stdlib.compare alpha)

(* Eager compilation: BFS over (row × ground action) until the table is
   closed or a cap is hit.  Resolution goes through [resolve], so the rows
   fill exactly like the lazy path would fill them. *)
let precompile a =
  let actions = ground_actions (Array.to_list a.alpha) in
  let rec bfs frontier =
    match frontier with
    | [] -> ()
    | r :: rest ->
      let next =
        List.filter_map
          (fun c ->
            let s = sig_of a c in
            if s <= sig_reject then None
            else
              match entry (Atomic.get a.tables) r s with
              | e when e = e_cold -> (
                let before = (Atomic.get a.tables).nrows in
                match resolve a r s c with
                | None -> None
                | Some _ ->
                  let after = (Atomic.get a.tables).nrows in
                  if after > before then Some (after - 1) else None)
              | _ -> None)
          actions
      in
      bfs (rest @ next)
  in
  bfs [ 0 ]

let create ?eager ?(max_rows = 1 lsl 15) ?(max_sigs = 1 lsl 12) e =
  let alpha = Array.of_list (Alpha.of_expr e) in
  let s0 = State.init e in
  let eager =
    match eager with
    | Some b -> b
    | None -> ( match Classify.benignity e with
      | Classify.Harmless -> true
      | Classify.Benign _ | Classify.Potentially_malignant -> false)
  in
  let states = Array.make 64 s0 in
  let opts = Array.make 64 None in
  let finals = Array.make 64 false in
  let rows = Array.make 64 [||] in
  opts.(0) <- Some s0;
  finals.(0) <- State.final s0;
  rows.(0) <- Array.make 8 e_cold;
  let row_map = Cmap.create 64 in
  Cmap.add row_map (State.id s0) 0;
  let a =
    { expr = e;
      alpha;
      fill = Mutex.create ();
      sig_keys = Hashtbl.create 16;
      nsigs = 1;  (* column 0 is the reject signature *)
      sig_caches = Dshard.replica ();
      row_map;
      tables = Atomic.make { states; opts; finals; rows; nrows = 1 };
      last = Dshard.replica ();
      step_tally = Dshard.Tally.create steps_total;
      sig_hit_tally = Dshard.Tally.create sig_hits;
      max_rows;
      max_sigs;
      eager }
  in
  register a;
  Atomic.incr interned_total;
  Atomic.incr rows_live;
  Atomic.incr sigs_live (* the reject column *);
  Atomic.incr instances_total;
  if eager then precompile a;
  a

let expr a = a.expr

type info = {
  eager : bool;
  rows : int;
  signatures : int;
}

let info (a : t) =
  { eager = a.eager; rows = (Atomic.get a.tables).nrows; signatures = a.nsigs }

(* Process-global instance cache, keyed structurally per expression like
   [Alpha.of_expr]'s: sessions, manager replicas and repeated word queries
   on the same expression — on EVERY domain — share one automaton and its
   warm rows.  A per-domain one-slot physical-equality fast path (tagged
   with a generation so [reset_shared] invalidates every domain's slot)
   makes the repeated-word pattern skip both the lock and the expression
   hash.  The table is bounded: property tests generate unbounded streams
   of expressions. *)
module ExprTbl = Hashtbl.Make (struct
  type t = Expr.t

  let equal = Expr.equal
  let hash e = Hashtbl.hash_param 256 1024 e
end)

let shared_cap = 256
let shared_mu = Mutex.create ()
let shared_site = Prof.Lock.site "automaton.shared"
let shared_tbl : t ExprTbl.t = ExprTbl.create 16
let shared_gen = Atomic.make 0

let shared_slot : (int * Expr.t * t) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let shared e =
  let gen = Atomic.get shared_gen in
  let slot = Domain.DLS.get shared_slot in
  match !slot with
  | Some (g, e0, a) when g = gen && e0 == e -> a
  | _ ->
    let a =
      Prof.Lock.protect shared_site shared_mu (fun () ->
          match ExprTbl.find_opt shared_tbl e with
          | Some a -> a
          | None ->
            if ExprTbl.length shared_tbl >= shared_cap then begin
              ExprTbl.reset shared_tbl;
              Atomic.incr overflows_total
            end;
            let a = create e in
            ExprTbl.add shared_tbl e a;
            a)
    in
    slot := Some (gen, e, a);
    a

(* Drop the shared instances — all domains' views of them.  For the
   experiment harness: an automaton retained from an earlier workload on
   the same expression carries that workload's rows and signatures, so
   before/after tables would depend on experiment order.  The generation
   bump invalidates every domain's one-slot cache; sessions that already
   bound an instance keep it — only future [shared] calls see fresh
   tables. *)
let reset_shared () =
  Prof.Lock.protect shared_site shared_mu (fun () -> ExprTbl.reset shared_tbl);
  Atomic.incr shared_gen;
  Domain.DLS.get shared_slot := None

(* ------------------------------------------------------------------ *)
(* Stepping                                                            *)
(* ------------------------------------------------------------------ *)

(* τ̂ through the tables.  Precondition: [st] is a state of [a]'s
   expression (initial, reachable, or loaded from a checkpoint of it) —
   the reject short-circuit is only sound against the right alphabet.  The
   warm path is one atomic snapshot load, two lookups (one a pointer
   comparison via the domain's row slot) and an array read; the successor
   is primed into the slot so the next call resolves its row without
   hashing. *)
let step a st c =
  if not (active ()) then State.trans st c
  else begin
    Dshard.Tally.bump a.step_tally 1;
    let tb0 = Atomic.get a.tables in
    let l = last_cell a tb0 in
    let r =
      if l.lst == st then l.lrow
      else begin
        let r = Cmap.find a.row_map (State.id st) in
        let r =
          if r >= 0 then r
          else Prof.Lock.protect fill_site a.fill (fun () -> intern_locked a st)
        in
        if r >= 0 then begin
          l.lst <- st;
          l.lrow <- r
        end;
        r
      end
    in
    if r = no_row then begin
      Atomic.incr fallbacks_total;
      State.trans st c
    end
    else
      (* the domain's own slot never exceeds its current snapshot; a row
         fresh from the Cmap or the lock may, so re-cover *)
      let tb = if r < tb0.nrows then tb0 else snap_covering a r in
      let s = sig_of a c in
      if s = sig_reject then begin
        State.count_transition ();
        None
      end
      else if s = sig_unclassified then begin
        Atomic.incr fallbacks_total;
        State.trans st c
      end
      else
        let e = entry tb r s in
        if e = e_reject then begin
          State.count_transition ();
          None
        end
        else if e >= 0 && e < tb.nrows then begin
          State.count_transition ();
          l.lst <- tb.states.(e);
          l.lrow <- e;
          (* preallocated: the warm path hands out the row's option
             without boxing a fresh [Some] per step *)
          tb.opts.(e)
        end
        else resolve a r s c
  end

(* The word problem as a table walk: the warm path stays entirely in ints
   (no state is touched, no option allocated), reads finality from the
   per-row bit at the end, and flushes its step/transition counts in one
   atomic add per word.  [None] = illegal, [Some fin] = survived. *)
let run_word a w =
  if not (active ()) then
    match State.trans_word (State.init a.expr) w with
    | None -> None
    | Some s -> Some (State.final s)
  else begin
    let steps = ref 0 and warm = ref 0 in
    let finish r =
      if !steps > 0 then ignore (Atomic.fetch_and_add steps_total !steps);
      State.count_transitions !warm;
      r
    in
    (* off-table tail: plain τ̂ once the walk falls off the rows *)
    let rec slow st = function
      | [] -> Some (State.final st)
      | c :: cs -> (
        match State.trans st c with None -> None | Some st' -> slow st' cs)
    in
    let rec go tb r = function
      | [] -> Some tb.finals.(r)
      | c :: cs -> (
        incr steps;
        let s = sig_of a c in
        if s = sig_reject then begin
          incr warm;
          None
        end
        else if s = sig_unclassified then begin
          Atomic.incr fallbacks_total;
          match State.trans tb.states.(r) c with
          | None -> None
          | Some st' -> slow st' cs
        end
        else
          let e = entry tb r s in
          if e = e_reject then begin
            incr warm;
            None
          end
          else if e >= 0 && e < tb.nrows then begin
            incr warm;
            go tb e cs
          end
          else
            match resolve a r s c with
            | None -> None
            | Some st' ->
              (* [resolve] interned the successor unless the rows are
                 full; walk on from a snapshot that covers it *)
              let tb = Atomic.get a.tables in
              let r' = Cmap.find a.row_map (State.id st') in
              if r' >= 0 && r' < tb.nrows then go tb r' cs else slow st' cs)
    in
    finish (go (Atomic.get a.tables) 0 w)
  end
