(** Decision procedures over the reachable state space.

    Section 3 warns that "typically by misusing the coupling operator" one
    can construct graphs with {e dead ends}: partial words that cannot be
    extended to any complete word.  A workflow ensemble steered into a dead
    end is stuck forever, so detecting dead ends before deployment is a
    practical necessity.  This module explores the (optimized) state space
    of an expression over a finite concrete alphabet and answers such
    questions.

    The exploration instantiates parameter positions with a finite set of
    values.  For parameterless expressions the answers are exact; for
    quantified expressions they are exact {e relative to the chosen value
    set} (by the symmetry of fresh values, a value set with at least one
    value more than the expression mentions is a good default).  State
    spaces can be infinite (e.g. under parallel iteration), so every
    procedure takes a [max_states] bound and reports [None] ("unknown")
    when it is hit. *)

type exploration = {
  states : int;  (** distinct reachable states (including the initial one) *)
  final_states : int;
  dead_states : int;
      (** states provably unable to reach a final state (frontier states of
          a truncated exploration are not counted) *)
  truncated : bool;  (** the [max_states] bound was hit *)
}

val concrete_alphabet : ?values:Action.value list -> Expr.t -> Action.concrete list
(** All instantiations of the expression's alphabet patterns over [values]
    (default: the values occurring in the expression plus two fresh ones). *)

val explore :
  ?max_states:int -> ?max_state_size:int -> ?values:Action.value list -> Expr.t ->
  exploration
(** Breadth-first exploration (default bounds: 10_000 states, individual
    state size 10_000 nodes).  A state exceeding [max_state_size] — which
    malignant expressions can produce after few actions — is counted but
    not expanded, and the exploration reports truncation. *)

val has_dead_end :
  ?max_states:int -> ?max_state_size:int -> ?values:Action.value list -> Expr.t ->
  bool option
(** [Some true] — a reachable state provably cannot reach any final state
    (sound even when the exploration was truncated: unexplored frontiers
    are assumed able to complete); [Some false] — every reachable state can
    complete; [None] — the bound was hit without finding a proof either
    way. *)

val equivalent :
  ?max_states:int -> ?max_state_size:int -> ?values:Action.value list ->
  Expr.t -> Expr.t -> bool option
(** Bounded extensional equivalence over the union of both concrete
    alphabets: [Some false] as soon as some reachable word separates the
    two expressions' verdicts, [Some true] when the product space is
    exhausted without difference, [None] when the bound is hit.  Exact for
    parameterless expressions, exact-relative-to-[values] otherwise. *)

val separating_word :
  ?max_states:int -> ?max_state_size:int -> ?values:Action.value list ->
  Expr.t -> Expr.t -> Action.concrete list option
(** A shortest word on which the verdicts differ, if one is found within
    the bound. *)

val shortest_complete :
  ?max_states:int -> ?max_state_size:int -> ?values:Action.value list -> Expr.t ->
  Action.concrete list option
(** A shortest complete word over the explored instantiation (BFS), or
    [None] if no final state was reached within the bounds.  A quick
    "give me an example run" for documentation and sanity checks. *)

val pp_exploration : Format.formatter -> exploration -> unit
