type value = string
type param = string

type arg =
  | Value of value
  | Param of param

type t = {
  name : string;
  args : arg list;
}

type concrete = {
  cname : string;
  cargs : value list;
}

let make name args = { name; args }
let value v = Value v
let param p = Param p
let conc cname cargs = { cname; cargs }

let of_concrete c = { name = c.cname; args = List.map (fun v -> Value v) c.cargs }

let to_concrete a =
  let rec values acc = function
    | [] -> Some (List.rev acc)
    | Value v :: rest -> values (v :: acc) rest
    | Param _ :: _ -> None
  in
  match values [] a.args with
  | Some cargs -> Some { cname = a.name; cargs }
  | None -> None

let is_concrete a = List.for_all (function Value _ -> true | Param _ -> false) a.args

let params a =
  let add acc = function
    | Param p when not (List.mem p acc) -> p :: acc
    | Param _ | Value _ -> acc
  in
  List.rev (List.fold_left add [] a.args)

let subst p v a =
  let sub = function
    | Param q when String.equal q p -> Value v
    | (Param _ | Value _) as arg -> arg
  in
  { a with args = List.map sub a.args }

let matches pat c =
  String.equal pat.name c.cname
  && List.length pat.args = List.length c.cargs
  && List.for_all2
       (fun arg v -> match arg with Value u -> String.equal u v | Param _ -> false)
       pat.args c.cargs

(* Match [pat] against [c], binding occurrences of [p] consistently; other
   parameters behave as fresh symbols and fail the match. *)
let bind p pat c =
  if (not (String.equal pat.name c.cname)) || List.length pat.args <> List.length c.cargs
  then None
  else
    let step acc arg v =
      match (acc, arg) with
      | None, _ -> None
      | Some _, Value u -> if String.equal u v then acc else None
      | Some None, Param q when String.equal q p -> Some (Some v)
      | Some (Some w), Param q when String.equal q p ->
        if String.equal w v then acc else None
      | Some _, Param _ -> None
    in
    match List.fold_left2 step (Some None) pat.args c.cargs with
    | Some (Some v) -> Some v
    | Some None | None -> None

let compare_arg a b =
  match (a, b) with
  | Value u, Value v -> String.compare u v
  | Value _, Param _ -> -1
  | Param _, Value _ -> 1
  | Param p, Param q -> String.compare p q

let compare a b =
  let c = String.compare a.name b.name in
  if c <> 0 then c else List.compare compare_arg a.args b.args

let equal a b = compare a b = 0

let compare_concrete a b =
  let c = String.compare a.cname b.cname in
  if c <> 0 then c else List.compare String.compare a.cargs b.cargs

let equal_concrete a b = compare_concrete a b = 0

let pp_arg ppf = function
  | Value v -> Format.pp_print_string ppf v
  | Param p -> Format.fprintf ppf "?%s" p

let pp_args pp_one ppf = function
  | [] -> ()
  | args ->
    Format.fprintf ppf "(%a)"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",") pp_one)
      args

let pp ppf a = Format.fprintf ppf "%s%a" a.name (pp_args pp_arg) a.args
let pp_concrete ppf c = Format.fprintf ppf "%s%a" c.cname (pp_args Format.pp_print_string) c.cargs
let to_string a = Format.asprintf "%a" pp a
let concrete_to_string c = Format.asprintf "%a" pp_concrete c
let values_of_concrete c = c.cargs

let arg_to_sexp = function
  | Value v -> Sexp.List [ Sexp.Atom "v"; Sexp.Atom v ]
  | Param p -> Sexp.List [ Sexp.Atom "p"; Sexp.Atom p ]

let arg_of_sexp = function
  | Sexp.List [ Sexp.Atom "v"; Sexp.Atom v ] -> Value v
  | Sexp.List [ Sexp.Atom "p"; Sexp.Atom p ] -> Param p
  | _ -> invalid_arg "Action.of_sexp: bad argument"

let to_sexp a =
  Sexp.List (Sexp.Atom "act" :: Sexp.Atom a.name :: List.map arg_to_sexp a.args)

let of_sexp = function
  | Sexp.List (Sexp.Atom "act" :: Sexp.Atom name :: args) ->
    { name; args = List.map arg_of_sexp args }
  | _ -> invalid_arg "Action.of_sexp: bad action"

let concrete_to_sexp c =
  Sexp.List (Sexp.Atom "c" :: Sexp.Atom c.cname :: List.map (fun v -> Sexp.Atom v) c.cargs)

let concrete_of_sexp = function
  | Sexp.List (Sexp.Atom "c" :: Sexp.Atom cname :: args) ->
    { cname; cargs = List.map Sexp.string_field args }
  | _ -> invalid_arg "Action.concrete_of_sexp: bad action"
