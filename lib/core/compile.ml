type t = {
  alphabet : Action.concrete array;
  (* transition table: state × symbol -> state, -1 = reject *)
  table : int array array;
  final : bool array;
}

let compile ?(max_states = 10_000) ?(max_state_size = 10_000) ?values e =
  let alphabet = Array.of_list (Language.concrete_alphabet ?values e) in
  let symbol_of : (Action.concrete, int) Hashtbl.t = Hashtbl.create 64 in
  Array.iteri (fun i a -> Hashtbl.replace symbol_of a i) alphabet;
  (* Rows are deduplicated by hash-cons id — no polymorphic hashing of
     state trees.  Queued and stored states are strongly referenced, so
     their (weakly hash-consed) ids stay stable for the whole build. *)
  let seen : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let rows = ref [] in
  let queue = Queue.create () in
  let init = State.init e in
  Hashtbl.add seen (State.id init) 0;
  Queue.add (0, init) queue;
  let next_id = ref 1 in
  let ok = ref true in
  while !ok && not (Queue.is_empty queue) do
    let id, s = Queue.pop queue in
    if State.size s > max_state_size then ok := false
    else begin
      let row = Array.make (Array.length alphabet) (-1) in
      Array.iteri
        (fun sym a ->
          if !ok then
            match State.trans s a with
            | None -> ()
            | Some s' -> (
              match Hashtbl.find_opt seen (State.id s') with
              | Some id' -> row.(sym) <- id'
              | None ->
                if !next_id >= max_states then ok := false
                else begin
                  let id' = !next_id in
                  incr next_id;
                  Hashtbl.add seen (State.id s') id';
                  Queue.add (id', s') queue;
                  row.(sym) <- id'
                end))
        alphabet;
      rows := (id, s, row) :: !rows
    end
  done;
  if not !ok then None
  else begin
    let n = !next_id in
    let table = Array.make n [||] in
    let final = Array.make n false in
    List.iter
      (fun (id, s, row) ->
        table.(id) <- row;
        final.(id) <- State.final s)
      !rows;
    Some { alphabet = Array.copy alphabet; table; final }
  end

let alphabet t = Array.to_list t.alphabet
let state_count t = Array.length t.table
let final_count t = Array.fold_left (fun n f -> if f then n + 1 else n) 0 t.final

type run = {
  dfa : t;
  symbol_of : (Action.concrete, int) Hashtbl.t;
  mutable current : int;
}

let start dfa =
  let symbol_of = Hashtbl.create (Array.length dfa.alphabet) in
  Array.iteri (fun i a -> Hashtbl.replace symbol_of a i) dfa.alphabet;
  { dfa; symbol_of; current = 0 }

let step r a =
  match Hashtbl.find_opt r.symbol_of a with
  | None -> false
  | Some sym ->
    let next = r.dfa.table.(r.current).(sym) in
    if next < 0 then false
    else begin
      r.current <- next;
      true
    end

let accepting r = r.dfa.final.(r.current)
let reset r = r.current <- 0

let word dfa w =
  let r = start dfa in
  let rec go = function
    | [] -> if accepting r then Semantics.Complete else Semantics.Partial
    | a :: rest -> if step r a then go rest else Semantics.Illegal
  in
  go w

let equivalent_behaviour dfa e w = word dfa w = Engine.word e w
