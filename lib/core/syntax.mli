(** Concrete textual syntax for interaction expressions.

    Interaction graphs are a graphical notation for interaction expressions
    (Section 3); this module provides the equivalent linear notation used by
    the [iexpr] command-line tool, tests and examples:

    {v
    program ::= { "def" name [ "(" formal {"," formal} ")" ] "=" expr ";" } expr
    expr    ::= ("some" | "all" | "sync" | "conj") param ":" expr
              | sync
    sync    ::= and   ("@"  and)*     -- synchronization / coupling
    and     ::= or    ("&"  or)*      -- strict conjunction
    or      ::= par   ("|"  par)*     -- disjunction
    par     ::= seq   ("||" seq)*     -- parallel composition
    seq     ::= post  ("-"  post)*    -- sequential composition
    post    ::= prim  ("*" | "#" | "?")*   -- seq-iter, par-iter, option
    prim    ::= atom | "(" expr ")" | "[" expr "]"       -- [e] = option
              | "opt" "(" expr ")" | "iter" "(" expr ")"
              | "pariter" "(" expr ")"
              | "mutex" "(" expr {"," expr} ")"          -- Fig. 5 "flash"
              | "times" "(" int "," expr ")"             -- Fig. 6 multiplier
              | "activity" "(" atom ")"                  -- a_s − a_t pair
              | "eps"                                    -- empty word only
    atom    ::= name [ "(" arg {"," arg} ")" ]
    arg     ::= "?" param | ident | number | string
    v}

    A bare identifier argument denotes the parameter of an enclosing
    quantifier if one of that name is in scope, and a concrete value
    otherwise; ["?p"] always denotes a parameter, and a double-quoted
    string always a value.  The printer emits parameters as [?p] and quotes
    values that would be captured, so [parse (to_string e)] re-reads [e]
    exactly (a property test checks this).

    [def] introduces a user-defined operator (the textual counterpart of
    Fig. 5's expert-defined templates), expanded syntactically at parse
    time: a zero-argument atom named like a formal becomes the operand
    expression; a formal used in an {e argument} position requires a
    simple-name operand, which is re-classified against the call site's
    quantifier scope.  Definitions may use operators defined before them;
    recursion is impossible by construction (the formalism deliberately
    excludes recursive expressions). *)

val parse : string -> (Expr.t, string) result
val parse_exn : string -> Expr.t
(** @raise Invalid_argument on syntax errors. *)

val to_string : Expr.t -> string

val pp : Format.formatter -> Expr.t -> unit

val parse_action : string -> (Action.concrete, string) result
(** A single concrete action, e.g. ["call(4711,endo)"]. *)

val parse_word : string -> (Action.concrete list, string) result
(** Whitespace/comma/semicolon-separated concrete actions. *)

val parse_action_exn : string -> Action.concrete
val parse_word_exn : string -> Action.concrete list
