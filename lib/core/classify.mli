(** Complexity classes of interaction expressions (Section 6).

    The paper identifies subclasses with provable bounds on the growth of
    states under transitions: {e quasi-regular} expressions (no parallel
    iterations or quantifiers) are "harmless" — the cost of a state
    transition remains constant; {e completely and uniformly quantified}
    expressions — the normal case in practice — are "benign" — the cost
    grows polynomially (rarely beyond degree 1 or 2); and "malignant"
    expressions with exponential state growth exist but must be selectively
    constructed.

    The thesis's full criteria are not public; this module implements a
    faithful syntactic reconstruction: uniform quantification (every atom of
    a quantifier body mentions the quantified parameter) makes instance
    selection deterministic, which is exactly what rules out the
    alternative explosion exploited by experiment E3.  The verdicts are
    conservative: [Potentially_malignant] means the syntactic criteria
    cannot exclude exponential growth, not that it must occur. *)

type verdict =
  | Harmless  (** constant transition cost (quasi-regular) *)
  | Benign of int  (** polynomial growth; payload = estimated degree *)
  | Potentially_malignant

val quasi_regular : Expr.t -> bool
(** No parallel iteration and no quantifier occurs. *)

val parameterless : Expr.t -> bool
(** No atom carries a parameter (bound or free). *)

val uniformly_quantified : Expr.t -> bool
(** Every quantifier's body mentions the quantified parameter in {e every}
    atom, so each action determines the instance it belongs to. *)

val completely_quantified : Expr.t -> bool
(** Every parameter occurring in an atom is bound by an enclosing
    quantifier (no free parameters). *)

val benignity : Expr.t -> verdict
(** Combined verdict, evaluated "step by step" as the paper suggests:
    quasi-regular ⇒ harmless; completely and uniformly quantified (with
    parallel iterations restricted to uniformly quantified bodies) ⇒ benign
    with degree = maximal nesting of state-multiplying operators; anything
    else ⇒ potentially malignant. *)

val pp_verdict : Format.formatter -> verdict -> unit
val verdict_to_string : verdict -> string

val describe : Expr.t -> string
(** Multi-line human-readable analysis (used by the CLI and benches). *)

val offenders : Expr.t -> string list
(** The subexpressions that prevent a better verdict, as human-readable
    ["locus: detail"] loci: non-uniform quantifiers (naming the atoms that
    omit the parameter), parallel iterations with ambiguous walkers, free
    parameters.  Empty for harmless and (usually) benign expressions.
    This is what the runtime complexity sentinel ({!Sentinel}) names when
    observed state growth exceeds the class-predicted envelope. *)

val explain : Expr.t -> string
(** Indented per-subexpression analysis: each quantifier and parallel
    iteration is annotated with whether it satisfies the benignity
    criteria, so the culprit of a [Potentially_malignant] verdict can be
    located. *)
