(* A small direct-mapped successor cache: (state, action) -> successor.

   Replaces the former one-slot tentative-successor caches of the engine
   and the manager (BENCH_pr4 measured the slot at a 0.3% hit rate: any
   interleaved query of a second action evicted the first).  A handful of
   direct-mapped slots keyed by the hash-cons id of the state and the
   structural hash of the action keeps a working set of (state, action)
   pairs alive across interleavings: the grant loop's permitted →
   try_action pair, a polling client's repeated denied ask, a worklist
   re-checking the same marking.

   Entries are never invalidated on commit — the transition function is
   pure and states are hash-consed, so a stale entry keyed by an old state
   can only be re-hit if the session returns to exactly that state, in
   which case its successor is still correct.  Collisions simply overwrite
   (direct-mapped); the cache is transparent and bounded. *)

type entry = {
  est : State.t;
  eact : Action.concrete;
  esucc : State.t option;
}

type t = {
  slots : entry option array;
  mask : int;
}

let default_slots = 32

let create ?(slots = default_slots) () =
  (* round up to a power of two so indexing is a mask *)
  let n = max 1 slots in
  let rec pow2 k = if k >= n then k else pow2 (k * 2) in
  let n = pow2 1 in
  { slots = Array.make n None; mask = n - 1 }

let size t = Array.length t.slots

let index t st act =
  (* the state id is already unique per process; mix in the action's
     structural hash so different actions from one state spread out *)
  (State.id st * 31 + Hashtbl.hash act) land t.mask

let find t st act =
  match t.slots.(index t st act) with
  | Some e when State.equal e.est st && Action.equal_concrete e.eact act ->
    Some e.esucc
  | Some _ | None -> None

let add t st act succ =
  t.slots.(index t st act) <- Some { est = st; eact = act; esucc = succ }

let clear t = Array.fill t.slots 0 (Array.length t.slots) None
