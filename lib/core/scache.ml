(* A small direct-mapped successor cache: (state, action) -> successor.

   Replaces the former one-slot tentative-successor caches of the engine
   and the manager (BENCH_pr4 measured the slot at a 0.3% hit rate: any
   interleaved query of a second action evicted the first).  A handful of
   direct-mapped slots keyed by the hash-cons id of the state and the
   structural hash of the action keeps a working set of (state, action)
   pairs alive across interleavings: the grant loop's permitted →
   try_action pair, a polling client's repeated denied ask, a worklist
   re-checking the same marking.

   Entries are never invalidated on commit — the transition function is
   pure and states are hash-consed, so a stale entry keyed by an old state
   can only be re-hit if the session returns to exactly that state, in
   which case its successor is still correct.  Collisions simply overwrite
   (direct-mapped); the cache is transparent and bounded.

   Ownership: an [Scache.t] is SINGLE-DOMAIN.  Slot writes are pointer
   stores of immutable entries, so racy sharing would be memory-safe, but
   two domains interleaving on one array evict each other's working set
   and make hit rates unattributable.  The engine therefore keeps one
   replica per domain per session route ([Dshard.replica] in
   {!Engine}); the [scache_cross_domain_*] probes below count how often a
   session's cache had to be replicated because a second domain drove the
   session, so the E21 scaling columns can attribute hit-rate changes. *)

type entry = {
  est : State.t;
  eact : Action.concrete;
  esucc : State.t option;
}

type t = {
  slots : entry option array;
  mask : int;
}

let default_slots = 32

let create ?(slots = default_slots) () =
  (* round up to a power of two so indexing is a mask *)
  let n = max 1 slots in
  let rec pow2 k = if k >= n then k else pow2 (k * 2) in
  let n = pow2 1 in
  { slots = Array.make n None; mask = n - 1 }

let size t = Array.length t.slots

let index t st act =
  (* the state id is already unique per process; mix in the action's
     structural hash so different actions from one state spread out *)
  (State.id st * 31 + Hashtbl.hash act) land t.mask

let find t st act =
  match t.slots.(index t st act) with
  | Some e when State.equal e.est st && Action.equal_concrete e.eact act ->
    Some e.esucc
  | Some _ | None -> None

let add t st act succ =
  t.slots.(index t st act) <- Some { est = st; eact = act; esucc = succ }

let clear t = Array.fill t.slots 0 (Array.length t.slots) None

(* Replica accounting: per-domain successor caches created by the engine.
   [replicas] counts every per-(session route, domain) cache; a creation
   for a session some other domain already populated is a cross-domain
   handoff — the new domain starts cold, which shows up in hit rates. *)
let replicas_total = Atomic.make 0
let cross_domain_total = Atomic.make 0

let count_replica ~cross =
  Atomic.incr replicas_total;
  if cross then Atomic.incr cross_domain_total

let replica_stats () = (Atomic.get replicas_total, Atomic.get cross_domain_total)

let () =
  Telemetry.register_probe "scache_replicas_total" (fun () ->
      float_of_int (Atomic.get replicas_total));
  Telemetry.register_probe "scache_cross_domain_replicas_total" (fun () ->
      float_of_int (Atomic.get cross_domain_total))
