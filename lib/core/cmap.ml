(* A concurrent-read, exclusively-written int → int hash map.

   The automaton's row table (State.id → row) sits on the lock-free read
   path of the shared kernel: any domain may probe it while one domain —
   under the instance's fill lock — inserts.  A stdlib [Hashtbl] is not
   safe to read during a resize, so this map publishes immutable
   snapshots instead:

   - The slot array (open addressing, linear probing) lives in a [snap]
     record held by an [Atomic.t].  Readers take one [Atomic.get] and
     probe that snapshot; they never see a half-rebuilt table.
   - Entries are boxed immutable records.  An insert writes [Some entry]
     into an empty slot of the *current* snapshot — a single pointer
     store.  A racing reader either sees [None] (a miss, which the caller
     resolves under the fill lock, where the freshest table is
     re-checked) or the complete entry: the OCaml memory model guarantees
     a racy read of a mutable pointer yields a fully initialized object.
   - Keys are never overwritten or removed, so whatever a reader observes
     is true; growth rebuilds fresh arrays under the writer's lock and
     publishes them with [Atomic.set] (a release store), leaving old
     snapshots intact for in-flight readers.
   - The writer keeps the load factor under 3/4, and a probe sequence in
     any snapshot therefore terminates at an empty slot.

   Writes MUST be serialized by the caller (the automaton's fill lock);
   only reads are lock-free. *)

type entry = { key : int; value : int }

type snap = {
  slots : entry option array;
  smask : int;
}

type t = {
  snap : snap Atomic.t;
  mutable count : int;  (* writer-only, guarded by the caller's lock *)
}

let mk_snap cap = { slots = Array.make cap None; smask = cap - 1 }

let create n =
  let rec pow2 k = if k >= n || k >= 1 lsl 20 then k else pow2 (2 * k) in
  let cap = pow2 16 in
  { snap = Atomic.make (mk_snap cap); count = 0 }

(* Fibonacci-style mix: keys are hash-cons ids, i.e. small sequential
   ints, which linear probing would otherwise cluster. *)
let mix k =
  let h = k * 0x9E3779B97F4A7C1 in
  h lxor (h lsr 29)

let find t k =
  let s = Atomic.get t.snap in
  let m = s.smask in
  let rec go i =
    match s.slots.(i) with
    | None -> -1
    | Some e -> if e.key = k then e.value else go ((i + 1) land m)
  in
  go (mix k land m)

let mem t k = find t k >= 0

(* Insert into a snapshot's arrays; caller guarantees a free slot. *)
let put snap e =
  let m = snap.smask in
  let rec go i =
    match snap.slots.(i) with
    | None -> snap.slots.(i) <- Some e
    | Some e' -> if e'.key = e.key then () else go ((i + 1) land m)
  in
  go (mix e.key land m)

(* Caller holds the write lock.  [k] must not be negative (readers use -1
   as the miss sentinel) and must not already be present. *)
let add t k v =
  let s = Atomic.get t.snap in
  if 4 * (t.count + 1) > 3 * (s.smask + 1) then begin
    let s' = mk_snap (2 * (s.smask + 1)) in
    Array.iter (function Some e -> put s' e | None -> ()) s.slots;
    put s' { key = k; value = v };
    Atomic.set t.snap s'
  end
  else put s { key = k; value = v };
  t.count <- t.count + 1

let length t = t.count
