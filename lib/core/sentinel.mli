(** Runtime complexity sentinel.

    Cross-references the static complexity verdict ({!Classify.benignity})
    with the observed evaluation: per-step state size, live hash-consed
    states.  When observed growth leaves the class-predicted envelope, a
    rate-limited structured [sentinel.warning] event is emitted naming the
    offending quantifier or parallel iteration ({!Classify.offenders}),
    and the [sentinel_warnings_total] counter is bumped.  Warning events
    carry the ambient trace id like every other event, so a warning that
    fires while an action is being evaluated lands inside that action's
    recorded causal chain.

    Envelopes are deliberately generous (a [slack] constant, times [n^d]
    for benign degree [d]); a potentially malignant expression has no
    static envelope and is flagged only on confirmed blowup (state size
    > 4096 and > 8× the initial size).  Callers sample from observed
    paths only, so the sentinel costs nothing while telemetry is off. *)

type t

val create : ?slack:int -> ?warn_every:int -> Expr.t -> t
(** Classify the expression and set up the envelope.  [slack] (default
    64) scales the envelope; [warn_every] (default 256) is the minimum
    number of sampled steps between two warnings. *)

val sample : t -> size:int -> unit
(** Record one evaluation step with the resulting state size; emits a
    [sentinel.warning] event (rate-limited) when outside the envelope. *)

val verdict : t -> Classify.verdict
val envelope : t -> int
(** Current admitted state size (grows with the sampled step count). *)

val offender_summary : t -> string

val warnings : t -> int  (** warnings raised by this sentinel *)

val max_size : t -> int  (** largest sampled state size *)

val steps : t -> int

val default_slack : int
val default_warn_every : int
