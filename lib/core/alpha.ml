type aarg =
  | Val of Action.value
  | Bound of int
  | Free of Action.param

type pattern = {
  pname : string;
  pargs : aarg list;
}

type t = pattern list

let pattern_of_action env (a : Action.t) =
  let classify = function
    | Action.Value v -> Val v
    | Action.Param p -> (
      match List.assoc_opt p env with Some k -> Bound k | None -> Free p)
  in
  { pname = a.Action.name; pargs = List.map classify a.Action.args }

let of_expr_uncached e =
  (* Each quantifier gets a distinct binder number so that repeated
     occurrences of its parameter stay correlated inside a pattern. *)
  let counter = ref 0 in
  let add acc env a =
    let p = pattern_of_action env a in
    if List.mem p acc then acc else p :: acc
  in
  let rec go acc env = function
    | Expr.Atom a -> add acc env a
    | Expr.Opt y | Expr.SeqIter y | Expr.ParIter y -> go acc env y
    | Expr.Seq (y, z) | Expr.Par (y, z) | Expr.Or (y, z) | Expr.And (y, z) | Expr.Sync (y, z)
      ->
      go (go acc env y) env z
    | Expr.SomeQ (p, y) | Expr.AllQ (p, y) | Expr.SyncQ (p, y) | Expr.AndQ (p, y) ->
      incr counter;
      go acc ((p, !counter) :: env) y
  in
  List.rev (go [] [] e)

(* Alphabet extraction is pure, and the same (sub)expressions are queried at
   every transition of sequences, iterations and quantifier templates, so
   the result is memoized per expression.  The cache is keyed structurally:
   two equal expressions share one entry. *)
let memoize = ref true
let set_memoization b = memoize := b
let memoization () = !memoize

(* Expressions produced by quantifier materialization differ only in the
   parameter value buried deep in the tree; the default shallow
   [Hashtbl.hash] would land them all in one bucket, so hash with a deeper
   traversal bound. *)
module ExprTbl = Hashtbl.Make (struct
  type t = Expr.t

  let equal = Expr.equal
  let hash e = Hashtbl.hash_param 256 1024 e
end)

(* The memo table is domain-local: each domain of the parallel evaluation
   layer caches independently, so lookups never need a lock and never
   contend.  The worst case of the split is a few redundant extractions
   per domain. *)
let of_expr_tbl : t ExprTbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ExprTbl.create 64)

(* Always-on tallies (like [State.trans_counter]): one bump per lookup,
   cheap enough not to gate.  Atomic, because every domain counts into
   them.  Telemetry reads them as probes. *)
let cache_hits = Atomic.make 0
let cache_misses = Atomic.make 0
let cache_stats () = (Atomic.get cache_hits, Atomic.get cache_misses)

let reset_cache_stats () =
  Atomic.set cache_hits 0;
  Atomic.set cache_misses 0

let of_expr e =
  if not !memoize then of_expr_uncached e
  else
    let tbl = Domain.DLS.get of_expr_tbl in
    match ExprTbl.find_opt tbl e with
    | Some alpha ->
      Atomic.incr cache_hits;
      alpha
    | None ->
      Atomic.incr cache_misses;
      let alpha = of_expr_uncached e in
      ExprTbl.add tbl e alpha;
      alpha

let () =
  Telemetry.register_probe "alpha_memo_hits" (fun () ->
      float_of_int (Atomic.get cache_hits));
  Telemetry.register_probe "alpha_memo_misses" (fun () ->
      float_of_int (Atomic.get cache_misses))

(* Match a pattern against a concrete action.  [Bound] positions may take
   any value but must agree across positions with the same binder; [Free]
   positions match nothing; a designated free parameter [bindp] (if any) may
   be bound consistently, and its binding is returned. *)
let pattern_match ?bindp pat (c : Action.concrete) : Action.value option option =
  if
    (not (String.equal pat.pname c.Action.cname))
    || List.length pat.pargs <> List.length c.Action.cargs
  then None
  else
    let exception Mismatch in
    let binders : (int * Action.value) list ref = ref [] in
    let bound_of_p : Action.value option ref = ref None in
    try
      List.iter2
        (fun parg v ->
          match parg with
          | Val u -> if not (String.equal u v) then raise Mismatch
          | Bound k -> (
            match List.assoc_opt k !binders with
            | Some w -> if not (String.equal w v) then raise Mismatch
            | None -> binders := (k, v) :: !binders)
          | Free q -> (
            match bindp with
            | Some p when String.equal p q -> (
              match !bound_of_p with
              | Some w -> if not (String.equal w v) then raise Mismatch
              | None -> bound_of_p := Some v)
            | Some _ | None -> raise Mismatch))
        pat.pargs c.Action.cargs;
      Some !bound_of_p
    with Mismatch -> None

let mem alpha c = List.exists (fun pat -> pattern_match pat c <> None) alpha

(* Signature match, for the compiled kernel's classifier: like
   [pattern_match] without a [bindp] — [Bound] positions bind consistently
   and the assignment is returned (sorted by binder number), [Free]
   positions match nothing.  The match verdict of every pattern an
   evaluation can derive from this one (by quantifier-materialization
   substitutions of binder values) is a function of this assignment: a
   derived pattern matches [c] iff the root pattern does and the
   substituted values agree with the assignment.  That is what makes the
   tuple of per-pattern assignments a sound transition key. *)
let sig_match pat (c : Action.concrete) : (int * Action.value) list option =
  if
    (not (String.equal pat.pname c.Action.cname))
    || List.length pat.pargs <> List.length c.Action.cargs
  then None
  else
    let exception Mismatch in
    let binders : (int * Action.value) list ref = ref [] in
    try
      List.iter2
        (fun parg v ->
          match parg with
          | Val u -> if not (String.equal u v) then raise Mismatch
          | Bound k -> (
            match List.assoc_opt k !binders with
            | Some w -> if not (String.equal w v) then raise Mismatch
            | None -> binders := (k, v) :: !binders)
          | Free _ -> raise Mismatch)
        pat.pargs c.Action.cargs;
      Some (List.sort (fun (a, _) (b, _) -> Int.compare a b) !binders)
    with Mismatch -> None

module SSet = Set.Make (String)

(* First-match order is part of the contract (quantifier materialization
   enumerates candidates in pattern order); the membership test uses a set
   so a burst of matching patterns stays O(n log n) instead of O(n²). *)
let candidates p alpha c =
  let rec go seen acc = function
    | [] -> List.rev acc
    | pat :: rest -> (
      match pattern_match ~bindp:p pat c with
      | Some (Some v) when not (SSet.mem v seen) -> go (SSet.add v seen) (v :: acc) rest
      | Some (Some _) | Some None | None -> go seen acc rest)
  in
  go SSet.empty [] alpha

let subst p v alpha =
  let sub_arg = function
    | Free q when String.equal q p -> Val v
    | (Free _ | Bound _ | Val _) as a -> a
  in
  List.map (fun pat -> { pat with pargs = List.map sub_arg pat.pargs }) alpha

let pp_arg ppf = function
  | Val v -> Format.pp_print_string ppf v
  | Bound k -> Format.fprintf ppf "*%d" k
  | Free p -> Format.fprintf ppf "?%s" p

let pp_pattern ppf pat =
  Format.fprintf ppf "%s" pat.pname;
  match pat.pargs with
  | [] -> ()
  | args ->
    Format.fprintf ppf "(%a)"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",") pp_arg)
      args

let pp ppf alpha =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ") pp_pattern)
    alpha

let aarg_to_sexp = function
  | Val v -> Sexp.List [ Sexp.Atom "val"; Sexp.Atom v ]
  | Bound k -> Sexp.List [ Sexp.Atom "bound"; Sexp.Atom (string_of_int k) ]
  | Free p -> Sexp.List [ Sexp.Atom "free"; Sexp.Atom p ]

let aarg_of_sexp = function
  | Sexp.List [ Sexp.Atom "val"; Sexp.Atom v ] -> Val v
  | Sexp.List [ Sexp.Atom "bound"; k ] -> Bound (Sexp.int_field k)
  | Sexp.List [ Sexp.Atom "free"; Sexp.Atom p ] -> Free p
  | _ -> invalid_arg "Alpha.of_sexp: bad argument"

let to_sexp alpha =
  Sexp.List
    (List.map
       (fun pat -> Sexp.List (Sexp.Atom pat.pname :: List.map aarg_to_sexp pat.pargs))
       alpha)

let of_sexp = function
  | Sexp.List pats ->
    List.map
      (function
        | Sexp.List (Sexp.Atom pname :: args) ->
          { pname; pargs = List.map aarg_of_sexp args }
        | _ -> invalid_arg "Alpha.of_sexp: bad pattern")
      pats
  | Sexp.Atom _ -> invalid_arg "Alpha.of_sexp: expected a list"
