(** Random exploration of permitted behaviour.

    Seeded random walks over an expression's state space, choosing
    uniformly among the currently permitted actions of the concrete
    alphabet.  Used by the experiment harness to generate realistic
    workloads and by tests as a source of guaranteed-partial words. *)

val random_trace :
  ?seed:int -> ?values:Action.value list -> length:int -> Expr.t ->
  Action.concrete list
(** A walk of at most [length] accepted actions (shorter when no action is
    permitted anymore).  Every prefix of the result is a partial word. *)

val random_complete :
  ?seed:int -> ?values:Action.value list -> ?max_len:int -> ?attempts:int -> Expr.t ->
  Action.concrete list option
(** Repeatedly walk (up to [attempts] times, default 50, each up to
    [max_len] actions, default 40), stopping as soon as a walk ends in a
    final state; the walk prefers to stop at final states early.  [None]
    when no complete word was found — which does {e not} prove there is
    none. *)

val exercise :
  ?seed:int -> ?values:Action.value list -> rounds:int -> Expr.t ->
  int * int
(** Drive a session for [rounds] uniformly random (not permission-filtered)
    actions of the alphabet; returns (accepted, rejected).  A quick
    workload for throughput measurements. *)
