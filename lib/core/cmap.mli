(** Concurrent-read int → int map with snapshot publication.

    Backs the shared automaton's state-id → row index on its lock-free
    read path: any domain may {!find} concurrently; {!add} must be
    serialized by the caller (the automaton's fill lock).  Readers probe
    an immutable snapshot obtained with one atomic load, so a concurrent
    grow never exposes a half-built table; a racing reader can at worst
    miss a just-inserted key, which the caller resolves under its lock.
    Keys must be non-negative and are never removed. *)

type t

val create : int -> t
(** [create n] — initial capacity at least [n] (rounded to a power of
    two, minimum 16). *)

val find : t -> int -> int
(** The value bound to the key, or [-1].  Lock-free; may miss an entry
    added concurrently (never returns a wrong binding). *)

val mem : t -> int -> bool

val add : t -> int -> int -> unit
(** Bind a new key.  The caller must hold the structure's write lock and
    must not re-bind an existing key. *)

val length : t -> int
(** Writer-side entry count (call under the write lock). *)
