type sample = {
  index : int;
  size : int;
}

type growth =
  | Constant
  | Polynomial of float
  | Exponential of float

(* Ordinary least squares y = a + b·x; returns (b, r²). *)
let fit points =
  let n = float_of_int (List.length points) in
  if n < 2.0 then (0.0, 1.0)
  else
    let sx = List.fold_left (fun s (x, _) -> s +. x) 0.0 points in
    let sy = List.fold_left (fun s (_, y) -> s +. y) 0.0 points in
    let sxx = List.fold_left (fun s (x, _) -> s +. (x *. x)) 0.0 points in
    let sxy = List.fold_left (fun s (x, y) -> s +. (x *. y)) 0.0 points in
    let syy = List.fold_left (fun s (_, y) -> s +. (y *. y)) 0.0 points in
    let denom = (n *. sxx) -. (sx *. sx) in
    if abs_float denom < 1e-12 then (0.0, 1.0)
    else
      let b = ((n *. sxy) -. (sx *. sy)) /. denom in
      let a = (sy -. (b *. sx)) /. n in
      let ss_res =
        List.fold_left (fun s (x, y) -> s +. ((y -. a -. (b *. x)) ** 2.0)) 0.0 points
      in
      let ss_tot = syy -. (sy *. sy /. n) in
      let r2 = if ss_tot < 1e-12 then 1.0 else 1.0 -. (ss_res /. ss_tot) in
      (b, r2)

let estimate points =
  let points = List.filter (fun (n, s) -> n > 0 && s > 0) points in
  match points with
  | [] | [ _ ] -> Constant
  | _ ->
    let sizes = List.map snd points in
    let mx = List.fold_left max 0 sizes and mn = List.fold_left min max_int sizes in
    if mx - mn <= 2 || float_of_int mx <= 1.3 *. float_of_int mn then Constant
    else
      let loglog =
        List.map (fun (n, s) -> (log (float_of_int n), log (float_of_int s))) points
      in
      let semilog =
        List.map (fun (n, s) -> (float_of_int n, log (float_of_int s))) points
      in
      let deg, r2_poly = fit loglog in
      let rate, r2_exp = fit semilog in
      (* an exponential fit with a meaningful factor and better R² wins *)
      if rate > 0.05 && r2_exp > r2_poly +. 0.01 then Exponential (exp rate)
      else Polynomial deg

type profile = {
  samples : sample list;
  rejected : int;
  max_size : int;
  final_size : int;
  growth : growth;
}

let profile e word =
  let state = ref (Some (State.init e)) in
  let rejected = ref 0 in
  let samples = ref [] in
  let count = ref 0 in
  List.iter
    (fun action ->
      match !state with
      | None -> ()
      | Some s -> (
        match State.trans s action with
        | None -> incr rejected
        | Some s' ->
          state := Some s';
          incr count;
          samples := { index = !count; size = State.size s' } :: !samples))
    word;
  let samples = List.rev !samples in
  let sizes = List.map (fun s -> s.size) samples in
  let max_size = List.fold_left max 0 sizes in
  let final_size = match List.rev sizes with s :: _ -> s | [] -> 0 in
  { samples;
    rejected = !rejected;
    max_size;
    final_size;
    growth = estimate (List.map (fun s -> (s.index, s.size)) samples) }

let growth_to_string = function
  | Constant -> "constant"
  | Polynomial d -> Printf.sprintf "polynomial (degree ~ %.1f)" d
  | Exponential f -> Printf.sprintf "exponential (factor ~ %.2f per action)" f

let pp_growth ppf g = Format.pp_print_string ppf (growth_to_string g)

let to_csv p =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "index,size\n";
  List.iter
    (fun s -> Buffer.add_string buf (Printf.sprintf "%d,%d\n" s.index s.size))
    p.samples;
  Buffer.contents buf

let agrees_with_classification p verdict =
  match (verdict, p.growth) with
  | Classify.Harmless, Constant -> true
  | Classify.Harmless, (Polynomial _ | Exponential _) -> false
  | Classify.Benign _, (Constant | Polynomial _) -> true
  | Classify.Benign _, Exponential _ -> false
  | Classify.Potentially_malignant, _ -> true
