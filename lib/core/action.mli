(** Actions, values and parameters (the paper's sets Γ, Σ, Λ, Ω, Π).

    An {e abstract action} [\[a0, a1, ..., an\]] consists of an action name
    [a0 ∈ Λ] and arguments which are either concrete values [ω ∈ Ω] or formal
    parameters [p ∈ Π].  A {e concrete action} is an abstract action whose
    arguments are all values; concrete words [w ∈ Σ*] are what the real world
    executes.  Ω is modelled as the (infinite) set of strings. *)

type value = string
(** A concrete value ω ∈ Ω (e.g. a patient id or ["endo"]). *)

type param = string
(** A formal parameter p ∈ Π.  Values and parameters live in disjoint
    syntactic positions, satisfying Ω ∩ Π = ∅. *)

type arg =
  | Value of value
  | Param of param

type t = {
  name : string;  (** action name a0 ∈ Λ *)
  args : arg list;
}
(** An abstract action ∈ Γ. *)

type concrete = {
  cname : string;
  cargs : value list;
}
(** A concrete action ∈ Σ. *)

val make : string -> arg list -> t
val value : value -> arg
val param : param -> arg

val conc : string -> value list -> concrete
(** [conc name args] builds a concrete action. *)

val of_concrete : concrete -> t
(** Inject a concrete action into the abstract actions. *)

val to_concrete : t -> concrete option
(** [to_concrete a] is [Some c] iff all arguments of [a] are values. *)

val is_concrete : t -> bool

val params : t -> param list
(** Formal parameters occurring in the action, without duplicates. *)

val subst : param -> value -> t -> t
(** [subst p v a] replaces every occurrence of parameter [p] by value [v]. *)

val matches : t -> concrete -> bool
(** [matches pat c] holds iff [pat] is concrete and equals [c].  Formal
    parameters never match: per Table 8, [Φ(a) = {⟨a⟩} ∩ Σ*], so an atom
    still containing a parameter accepts no concrete action. *)

val bind : param -> t -> concrete -> value option
(** [bind p pat c] attempts to match [pat] against [c] where occurrences of
    [p] may be bound (consistently) to a value while all other parameters
    match nothing.  Returns the binding of [p] on success; [None] if the
    match fails or [p] does not occur in [pat]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val compare_concrete : concrete -> concrete -> int
val equal_concrete : concrete -> concrete -> bool

val pp : Format.formatter -> t -> unit
val pp_concrete : Format.formatter -> concrete -> unit
val to_string : t -> string
val concrete_to_string : concrete -> string

val values_of_concrete : concrete -> value list
(** Argument values of a concrete action (with duplicates). *)

(** {1 Persistence} *)

val to_sexp : t -> Sexp.t
val of_sexp : Sexp.t -> t
(** @raise Invalid_argument on malformed input. *)

val concrete_to_sexp : concrete -> Sexp.t
val concrete_of_sexp : Sexp.t -> concrete
