(** Minimal S-expressions for persistence.

    The interaction manager must survive crashes (Section 7); replaying the
    full confirmed-action log from the initial state is the baseline
    strategy, but long-running deployments need {e checkpoints} of the
    current state.  States are hierarchical values, so a small
    self-contained serialization layer suffices: atoms and lists, with the
    usual quoting rules. *)

type t =
  | Atom of string
  | List of t list

val atom : string -> t
val list : t list -> t

val to_string : t -> string
(** Single-line rendering; atoms are quoted when they contain whitespace,
    parentheses, quotes or are empty. *)

val of_string : string -> (t, string) result

val of_string_exn : string -> t
(** @raise Invalid_argument on malformed input. *)

val pp : Format.formatter -> t -> unit
(** Indented multi-line rendering. *)

(** {1 Converters} *)

val string_field : t -> string
(** @raise Invalid_argument when the sexp is not an atom. *)

val int_field : t -> int
val bool_field : t -> bool
val list_field : t -> t list
(** @raise Invalid_argument when the sexp is not a list. *)

val of_int : int -> t
val of_bool : bool -> t

val field : string -> t -> t list option
(** [field name s] looks up a tagged sub-list [(name x1 x2 ...)] among the
    items of the list [s] and returns its payload [\[x1; x2; ...\]].  The
    record idiom of the persistence layer: images are lists of tagged
    fields, so readers tolerate field reordering and unknown extras (a
    newer writer's file still loads). *)

val field_exn : string -> t -> t list
(** @raise Invalid_argument when the field is absent. *)
