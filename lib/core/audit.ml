type issue = {
  index : int;
  action : Action.concrete;
  reason : reason;
}

and reason =
  | Not_permitted
  | Foreign

type report = {
  events : int;
  accepted : int;
  foreign : int;
  issues : issue list;
  complete : bool;
}

let conformant r = r.issues = []

let check ?(strict = false) ?(stop_at_first = false) e log =
  let alpha = Alpha.of_expr e in
  let state = ref (State.init e) in
  let accepted = ref 0 in
  let foreign = ref 0 in
  let issues = ref [] in
  let stopped = ref false in
  List.iteri
    (fun index action ->
      if not !stopped then
        if not (Alpha.mem alpha action) then begin
          incr foreign;
          if strict then begin
            issues := { index; action; reason = Foreign } :: !issues;
            if stop_at_first then stopped := true
          end
        end
        else
          match State.trans !state action with
          | Some s ->
            state := s;
            incr accepted
          | None ->
            issues := { index; action; reason = Not_permitted } :: !issues;
            if stop_at_first then stopped := true)
    log;
  { events = List.length log;
    accepted = !accepted;
    foreign = !foreign;
    issues = List.rev !issues;
    complete = State.final !state }

let parse_log input =
  let lines = String.split_on_char '\n' input in
  let parse_line (acc, err) line =
    match err with
    | Some _ -> (acc, err)
    | None ->
      let line =
        match String.index_opt line '#' with
        | Some i -> String.sub line 0 i
        | None -> line
      in
      let line = String.trim line in
      if line = "" then (acc, None)
      else
        match Syntax.parse_action line with
        | Ok a -> (a :: acc, None)
        | Error m -> (acc, Some (Printf.sprintf "%s (in line %S)" m line))
  in
  match List.fold_left parse_line ([], None) lines with
  | acc, None -> Ok (List.rev acc)
  | _, Some m -> Error m

let pp_issue ppf { index; action; reason } =
  Format.fprintf ppf "event %d: %a %s" index Action.pp_concrete action
    (match reason with
    | Not_permitted -> "is not permitted at this point"
    | Foreign -> "is outside the constraint's alphabet")

let pp_report ppf r =
  Format.fprintf ppf "events=%d accepted=%d foreign=%d issues=%d complete=%b" r.events
    r.accepted r.foreign (List.length r.issues) r.complete;
  List.iter (fun i -> Format.fprintf ppf "@.  %a" pp_issue i) r.issues
