(* Can any concrete action match both patterns?  [Free] positions match
   nothing, so a pattern containing one is inert and overlaps nothing. *)
let patterns_overlap (p : Alpha.pattern) (q : Alpha.pattern) =
  let inert pat =
    List.exists (function Alpha.Free _ -> true | Alpha.Val _ | Alpha.Bound _ -> false)
      pat.Alpha.pargs
  in
  String.equal p.Alpha.pname q.Alpha.pname
  && List.length p.Alpha.pargs = List.length q.Alpha.pargs
  && (not (inert p))
  && (not (inert q))
  && List.for_all2
       (fun a b ->
         match (a, b) with
         | Alpha.Val v, Alpha.Val w -> String.equal v w
         | Alpha.Val _, Alpha.Bound _ | Alpha.Bound _, Alpha.Val _
         | Alpha.Bound _, Alpha.Bound _ ->
           true
         | Alpha.Free _, _ | _, Alpha.Free _ -> false)
       p.Alpha.pargs q.Alpha.pargs

let alphas_overlap a b =
  List.exists (fun p -> List.exists (patterns_overlap p) b) a

let rec flatten_sync = function
  | Expr.Sync (y, z) -> flatten_sync y @ flatten_sync z
  | e -> [ e ]

let components e =
  let operands = flatten_sync e in
  let with_alpha = List.map (fun op -> (op, Alpha.of_expr op)) operands in
  (* union of overlapping groups, preserving operand order inside groups *)
  let insert groups (op, al) =
    let interferes (_, gal) = alphas_overlap al gal in
    let hits, rest = List.partition interferes groups in
    let merged_ops = List.concat_map fst hits @ [ op ] in
    let merged_alpha = List.concat_map snd hits @ al in
    rest @ [ (merged_ops, merged_alpha) ]
  in
  let groups = List.fold_left insert [] with_alpha in
  List.map (fun (ops, al) -> (Expr.sync_list ops, al)) groups

let partition e = List.map fst (components e)

let owner comps c =
  let rec go i = function
    | [] -> None
    | (_, al) :: rest -> if Alpha.mem al c then Some i else go (i + 1) rest
  in
  go 0 comps
