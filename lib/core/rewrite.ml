(* Terminating rewrite system over interaction expressions.  Every rule is
   an equivalence (same Φ, Ψ, α); see the .mli for the catalogue and
   test/test_rewrite.ml for the empirical validation against the oracle.

   Key semantic facts used below:
   - Or / And / Sync are associative, commutative and idempotent (for Sync
     this follows from the projection characterization: w ∈ Φ(⊕ yi) iff
     every action of w is in α(x) and w projected to α(yi) is in Φ(yi)).
   - Par is associative and commutative (shuffle), but not idempotent.
   - A quantifier whose parameter does not occur in its body degenerates:
     some/sync/conj collapse to the body; all p: y is an infinite shuffle
     of identical languages, which equals pariter y when ⟨⟩ ∈ Φ(y) (and is
     a dead end otherwise, which we leave alone). *)

let is_epsilon e = Expr.equal e Expr.epsilon

(* Flatten a nested application of one associative binary constructor. *)
let rec flatten which e =
  match (which, e) with
  | `Or, Expr.Or (y, z) | `And, Expr.And (y, z) | `Sync, Expr.Sync (y, z)
  | `Par, Expr.Par (y, z) | `Seq, Expr.Seq (y, z) ->
    flatten which y @ flatten which z
  | _ -> [ e ]

let rebuild mk = function
  | [] -> Expr.epsilon
  | [ e ] -> e
  | e :: rest -> List.fold_left mk e rest

(* One bottom-up pass. *)
let rec pass (e : Expr.t) : Expr.t =
  match e with
  | Expr.Atom _ -> e
  | Expr.Opt y -> (
    match pass y with
    | Expr.Opt _ as y' -> y'  (* opt(opt y) = opt y *)
    | Expr.SeqIter _ as y' -> y'  (* opt of iter = iter *)
    | Expr.ParIter _ as y' -> y'  (* opt of pariter = pariter *)
    | y' when is_epsilon y' -> Expr.epsilon
    | y' -> Expr.Opt y')
  | Expr.SeqIter y -> (
    match pass y with
    | y' when is_epsilon y' -> Expr.epsilon  (* iter of eps = eps *)
    | Expr.SeqIter _ as y' -> y'  (* iter of iter = iter *)
    | Expr.Opt y' -> pass (Expr.SeqIter y')  (* iter of opt = iter *)
    | y' -> Expr.SeqIter y')
  | Expr.ParIter y -> (
    match pass y with
    | y' when is_epsilon y' -> Expr.epsilon
    | Expr.ParIter _ as y' -> y'  (* pariter of pariter = pariter *)
    | Expr.Opt y' -> pass (Expr.ParIter y')  (* pariter of opt = pariter *)
    | y' -> Expr.ParIter y')
  | Expr.Seq (y, z) ->
    let parts =
      flatten `Seq (Expr.Seq (pass y, pass z))
      |> List.filter (fun p -> not (is_epsilon p))
    in
    rebuild (fun a b -> Expr.Seq (a, b)) parts
  | Expr.Par (y, z) ->
    let parts =
      flatten `Par (Expr.Par (pass y, pass z))
      |> List.filter (fun p -> not (is_epsilon p))
      |> List.sort Expr.compare
    in
    rebuild (fun a b -> Expr.Par (a, b)) parts
  | Expr.Or (y, z) ->
    let parts = flatten `Or (Expr.Or (pass y, pass z)) in
    let eps, rest = List.partition is_epsilon parts in
    let rest = List.sort_uniq Expr.compare rest in
    let core = rebuild (fun a b -> Expr.Or (a, b)) rest in
    if rest = [] then Expr.epsilon
    else if eps <> [] then pass (Expr.Opt core)  (* y | ε = opt y *)
    else core
  | Expr.And (y, z) ->
    let parts =
      flatten `And (Expr.And (pass y, pass z)) |> List.sort_uniq Expr.compare
    in
    rebuild (fun a b -> Expr.And (a, b)) parts
  | Expr.Sync (y, z) ->
    let parts =
      flatten `Sync (Expr.Sync (pass y, pass z))
      |> List.filter (fun p -> not (is_epsilon p))  (* α(ε) = ∅: no constraint *)
      |> List.sort_uniq Expr.compare
    in
    rebuild (fun a b -> Expr.Sync (a, b)) parts
  | Expr.SomeQ (p, y) ->
    let y' = pass y in
    if List.mem p (Expr.free_params y') then Expr.SomeQ (p, y') else y'
  | Expr.AllQ (p, y) ->
    let y' = pass y in
    if List.mem p (Expr.free_params y') then Expr.AllQ (p, y')
    else if State.final (State.init y') then pass (Expr.ParIter y')
    else Expr.AllQ (p, y')  (* dead end (Φ = ∅): keep as written *)
  | Expr.SyncQ (p, y) ->
    let y' = pass y in
    if List.mem p (Expr.free_params y') then Expr.SyncQ (p, y') else y'
  | Expr.AndQ (p, y) ->
    let y' = pass y in
    if List.mem p (Expr.free_params y') then Expr.AndQ (p, y') else y'

let simplify e =
  let rec fix fuel e =
    let e' = pass e in
    if fuel = 0 || Expr.equal e e' then e' else fix (fuel - 1) e'
  in
  fix 100 e

let size_reduction e = (Expr.size e, Expr.size (simplify e))

let rules_doc =
  [ ("y | y", "y");
    ("y & y", "y");
    ("y @ y", "y");
    ("y | eps", "[y]");
    ("eps - y ; y - eps", "y");
    ("eps || y", "y");
    ("eps @ y", "y");
    ("[[y]] ; [y*] ; [y#]", "[y] ; y* ; y#");
    ("(y*)* ; ([y])* ; eps*", "y* ; y* ; eps");
    ("(y#)# ; ([y])#", "y# ; y#");
    ("some p: y   (p unused)", "y");
    ("sync p: y   (p unused)", "y");
    ("conj p: y   (p unused)", "y");
    ("all p: y    (p unused, eps in Phi(y))", "y#");
    ("operand sorting/flattening of | & @ ||", "canonical form")
  ]
