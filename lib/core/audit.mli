(** Offline conformance checking of event logs.

    The action problem (Fig. 9) answers "may this happen now?" online; this
    module answers the retrospective question "did the recorded history
    conform to the constraint?" — useful when an unadapted WfMS ran without
    an interaction manager (Fig. 11's baseline) and the log must be audited
    after the fact.

    Replay semantics: events are processed in order.  An event outside the
    expression's alphabet is {e foreign} and ignored (the open-world reading
    of constraint graphs) unless [strict] checking is requested.  An event
    the constraint forbids is recorded as a violation and skipped, so the
    replay continues and later violations are found too (first-failure mode
    is available via [stop_at_first]). *)

type issue = {
  index : int;  (** 0-based position in the log *)
  action : Action.concrete;
  reason : reason;
}

and reason =
  | Not_permitted  (** the constraint forbade the action at this point *)
  | Foreign  (** outside the alphabet (reported only under [strict]) *)

type report = {
  events : int;
  accepted : int;
  foreign : int;
  issues : issue list;  (** in log order *)
  complete : bool;  (** the accepted sub-history is a complete word *)
}

val conformant : report -> bool
(** No issues. *)

val check : ?strict:bool -> ?stop_at_first:bool -> Expr.t -> Action.concrete list -> report
(** Audit a log against an expression.  [strict] (default false) reports
    foreign events as issues instead of ignoring them; [stop_at_first]
    (default false) stops the replay at the first issue. *)

val parse_log : string -> (Action.concrete list, string) result
(** One concrete action per line; blank lines and [#]-comments skipped. *)

val pp_report : Format.formatter -> report -> unit
val pp_issue : Format.formatter -> issue -> unit
