(** Ahead-of-time bytecode backend for bounded expressions.

    The lazy automaton ({!Automaton}) interns states and signatures on
    demand and still pays hash probes and counter traffic on every warm
    step.  For expressions whose reachable state space is finite {e and}
    closed under their own ground alphabet — every §6-harmless
    (quasi-regular) expression, plus any benign or other expression whose
    alphabet patterns are all ground and whose BFS closes within the row
    cap — the whole transition relation can be flattened {e once} into a
    compact program: a dense [nstates × ncols] int table over the ground
    alphabet's signature columns, a finality bitset, and a uniform-reject
    fast path (an action matching no column is rejected by every state
    without touching the table).  The VM ({!Vm}) then walks words and
    sessions by array indexing alone: no hashing of states, no signature
    interning, no per-step boxing, transition counts flushed in batches.

    Programs are also the embeddable artifact: {!encode}/{!decode} give a
    self-contained, versioned payload (framed with a CRC by
    [Interaction_store.Progfile]) that [iexpr compile -o] emits and
    [iexpr run --program] executes without re-deriving the state DAG. *)

type program
(** The flat, serializable form: expression, ground alphabet columns,
    dense transition table and finality bitset.  Immutable. *)

type t
(** An executable instance: a {!program} plus the runtime dispatch table
    and, for in-process compiles, the hash-consed state of each row (so
    sessions can switch between the VM and the interpreted τ̂ mid-word). *)

val compile : ?max_states:int -> Expr.t -> t option
(** Flatten [e] by BFS over its ground alphabet.  [None] when the
    alphabet contains non-ground patterns (quantifier binders — the
    classifier could not be closed) or when more than [max_states] states
    are reachable (the row cap; default 4096, lowered to 512 for
    potentially-malignant expressions whose spaces are usually infinite).
    A returned program is complete: every reachable (state, column) pair
    is resolved, so the VM never falls back on a known state. *)

val shared : Expr.t -> t option
(** Process-global instance per expression, like {!Automaton.shared}: all
    domains share one program and VM instance (instances are concurrency-
    safe — the tables are immutable and the mutable caches per-domain).
    Compilation failures are cached too, so binding a session to an
    uncompilable expression costs one table probe, not a BFS retry.
    This is the {e auto-selection} entry point: it only attempts the
    flattening BFS for §6-harmless expressions (matching the state space
    the lazy automaton precompiles eagerly anyway); benign and other
    expressions yield [None] without a BFS. *)

val shared_forced : Expr.t -> t option
(** Like {!shared} but attempts compilation regardless of benignity
    (subject to the row cap) — the [--engine vm] entry point.  Upgrades a
    cached auto decline in place. *)

val reset_shared : unit -> unit
(** Drop the cached instances and negative results on every domain (the
    experiment harness isolates workloads this way; a generation bump
    invalidates the per-domain fast-path slots). *)

val of_program : program -> t
(** Executable view of a loaded artifact.  Rows carry no hash-consed
    states, so {!Vm.step} on states outside the one-slot window falls
    back to the interpreted τ̂; the row-level walk ({!Vm.step_row},
    {!Vm.word}) is exact and fast. *)

val program : t -> program
val expr : program -> Expr.t

type info = {
  states : int;
  columns : int;
  has_states : bool;  (** in-process compile (rows carry states)? *)
}

val info : t -> info

module Vm : sig
  (** The tight loop.  All functions are pure table walks; correctness
      does not depend on the memoization switches, but {!step} respects
      the compilation kill switch so ablations and mid-word engine
      switches behave exactly like the lazy automaton's. *)

  val word : t -> Action.concrete list -> bool option
  (** The word problem from row 0: [None] = illegal, [Some fin] = the
      word survived with finality [fin].  Stays in ints; transition
      counts are flushed in one batch at the end. *)

  val step : t -> State.t -> Action.concrete -> State.t option
  (** τ̂ through the program.  Warm path: resolve [st]'s row (one-slot
      pointer comparison, then the id table), classify the action (one
      dispatch probe), one array read — the returned successor is the
      row's preallocated state option, no boxing.  Unknown states (only
      possible after mid-word engine switches across domains or on
      artifact-loaded programs) fall back to [State.trans].  When the
      compilation switch is off, falls back unconditionally. *)

  val start_row : int
  (** Row of σ(e): 0. *)

  val step_row : t -> int -> Action.concrete -> int
  (** Row-level step for embedded use: [-1] = reject, otherwise the
      successor row.  [step_row t (-1) _ = -1] (a dead walk stays dead). *)

  val final_row : t -> int -> bool
end

(** {1 Persistence payload}

    The CRC-framed file container lives in [Interaction_store.Progfile];
    these functions (de)serialize the payload inside the frame. *)

val encode : program -> string

val decode : string -> (program, string) result
(** Structural validation: shape, trans entries in range, finality bitset
    length.  A malformed payload yields [Error], never a crash or a
    program that answers wrongly. *)

(** {1 Stats} *)

type stats = {
  steps : int;  (** VM table steps (batched; exact after [stats ()]) *)
  fallbacks : int;  (** steps answered by the interpreted τ̂ *)
  programs : int;  (** successful compiles *)
  failures : int;  (** compile attempts that returned [None] *)
}

val stats : unit -> stats
val reset_stats : unit -> unit
