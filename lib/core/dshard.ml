(* Per-domain slot arrays: the building block that lets one shared
   structure (an automaton, a VM instance, an engine session) be walked by
   several domains without putting a lock on its hot path.

   A [Dshard] value owns a small fixed array of slots indexed by
   [Domain.self () land mask].  Each slot records the domain id that
   created it; a slot is only ever *used* by the domain whose id it
   carries, so the value inside is effectively domain-private — mutating
   it needs no synchronization.  Two racy situations remain and both are
   benign:

   - Two domains whose ids collide modulo the slot count race on one
     slot.  Slot writes store an immutable boxed record (the OCaml memory
     model guarantees a racy read returns a fully initialized object, not
     a torn one), and the id check makes the loser fall back — a replica
     is recreated ([replica_get]) or the update bypasses the batch
     straight into the shared atomic ([Tally.bump]).  Correctness never
     depends on winning the race; only cache warmth does, and domain ids
     only collide past [slot_count] concurrently live domains.

   - A foreign domain reads the slots for aggregate statistics
     ([Tally.drain], [iter]).  Those reads race with the owner's plain
     writes and can observe a slightly stale value — the documented,
     pre-existing contract of the batched counters ("stats can
     transiently under-count an in-flight batch").  After [Domain.join]
     the owner's writes are visible, so post-join drains are exact (the
     2-domain stress regression relies on this). *)

let slot_count = 64
let mask = slot_count - 1
let self () = (Domain.self () :> int)

(* ------------------------------------------------------------------ *)
(* Replicas: one lazily created value per domain                       *)
(* ------------------------------------------------------------------ *)

type 'a slot = { sdid : int; value : 'a }
type 'a replica = { slots : 'a slot option array }

let replica () = { slots = Array.make slot_count None }

(* The calling domain's value, created on first use.  On an id collision
   the slot is simply retaken: the previous owner recreates its value on
   its next call.  An evicted value is never touched by the evictor, so
   single-owner mutation stays safe; colliding domains merely lose cache
   warmth. *)
let replica_get r ~create =
  let me = self () in
  let i = me land mask in
  match r.slots.(i) with
  | Some s when s.sdid = me -> s.value
  | _ ->
    let v = create () in
    r.slots.(i) <- Some { sdid = me; value = v };
    v

let replica_find r =
  let me = self () in
  match r.slots.(me land mask) with
  | Some s when s.sdid = me -> Some s.value
  | _ -> None

(* Number of populated slots — a cheap "how many domains touched this"
   gauge (collisions under-count, which is the conservative direction). *)
let replica_populated r =
  Array.fold_left (fun n -> function Some _ -> n + 1 | None -> n) 0 r.slots

(* Visit every live replica, own and foreign.  Foreign values may be
   mutated concurrently by their owners; callers must only perform
   race-tolerant reads or writes (statistics, cache clears). *)
let replica_iter f r =
  Array.iter (function Some s -> f s.value | None -> ()) r.slots

(* ------------------------------------------------------------------ *)
(* Tallies: batched per-domain counters over one shared atomic          *)
(* ------------------------------------------------------------------ *)

module Tally = struct
  (* One cell per domain; [pending] is only written by the owning domain
     (plus the racy stats drain, see the header).  The padding fields keep
     cells on separate cache lines so two domains' batch counters do not
     false-share. *)
  type cell = {
    cdid : int;
    mutable pending : int;
    mutable p1 : int;
    mutable p2 : int;
    mutable p3 : int;
    mutable p4 : int;
    mutable p5 : int;
    mutable p6 : int;
  }

  type t = {
    cells : cell option array;
    into : int Atomic.t;  (* the shared process-wide total *)
  }

  let threshold = 1 lsl 12

  let create into = { cells = Array.make slot_count None; into }

  let fresh did =
    { cdid = did; pending = 0; p1 = 0; p2 = 0; p3 = 0; p4 = 0; p5 = 0; p6 = 0 }

  (* Count [n] events.  The common case is a plain increment of the
     domain's own cell; the batch flushes into the shared atomic at the
     threshold.  A collided (or just-created, possibly lost-to-a-race)
     cell adds straight to the atomic so no count can ride in a cell that
     loses a publication race: published cells always carry pending = 0. *)
  let bump t n =
    let me = self () in
    let i = me land mask in
    match t.cells.(i) with
    | Some c when c.cdid = me ->
      let p = c.pending + n in
      if p >= threshold then begin
        c.pending <- 0;
        ignore (Atomic.fetch_and_add t.into p)
      end
      else c.pending <- p
    | Some _ -> ignore (Atomic.fetch_and_add t.into n)
    | None ->
      t.cells.(i) <- Some (fresh me);
      ignore (Atomic.fetch_and_add t.into n)

  (* Flush every cell's batch into the shared total.  Draining a foreign
     cell races with its owner's bumps and can momentarily miss an
     in-flight batch (the long-standing stats contract); it is exact once
     the owning domains have been joined. *)
  let drain t =
    Array.iter
      (function
        | Some c ->
          let p = c.pending in
          if p > 0 then begin
            c.pending <- 0;
            ignore (Atomic.fetch_and_add t.into p)
          end
        | None -> ())
      t.cells

  (* Discard pending batches without counting them (stats reset). *)
  let discard t =
    Array.iter (function Some c -> c.pending <- 0 | None -> ()) t.cells
end
