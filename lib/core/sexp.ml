type t =
  | Atom of string
  | List of t list

let atom s = Atom s
let list l = List l

let needs_quoting s =
  s = ""
  || String.exists
       (* ';' must be quoted too: a bare atom containing it would parse as
          a shorter atom followed by a comment eating the rest of the line *)
       (function
         | ' ' | '\t' | '\n' | '\r' | '(' | ')' | '"' | '\\' | ';' -> true
         | _ -> false)
       s

let quote s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let rec to_string = function
  | Atom s -> if needs_quoting s then quote s else s
  | List l -> "(" ^ String.concat " " (List.map to_string l) ^ ")"

exception Parse_error of string

let of_string_exn input =
  let n = String.length input in
  let pos = ref 0 in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | Some ';' ->
      (* comment to end of line *)
      while !pos < n && input.[!pos] <> '\n' do
        advance ()
      done;
      skip_ws ()
    | _ -> ()
  in
  let parse_quoted () =
    advance ();
    let buf = Buffer.create 8 in
    let rec go () =
      match peek () with
      | None -> raise (Parse_error "unterminated string")
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some 'n' -> Buffer.add_char buf '\n'
        | Some c -> Buffer.add_char buf c
        | None -> raise (Parse_error "dangling escape"));
        advance ();
        go ()
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_bare () =
    let start = !pos in
    let stop = function
      | ' ' | '\t' | '\n' | '\r' | '(' | ')' | '"' | ';' -> true
      | _ -> false
    in
    while !pos < n && not (stop input.[!pos]) do
      advance ()
    done;
    String.sub input start (!pos - start)
  in
  let rec parse_one () =
    skip_ws ();
    match peek () with
    | None -> raise (Parse_error "unexpected end of input")
    | Some '(' ->
      advance ();
      let items = ref [] in
      let rec items_loop () =
        skip_ws ();
        match peek () with
        | Some ')' -> advance ()
        | None -> raise (Parse_error "unterminated list")
        | Some _ ->
          items := parse_one () :: !items;
          items_loop ()
      in
      items_loop ();
      List (List.rev !items)
    | Some ')' -> raise (Parse_error "unexpected ')'")
    | Some '"' -> Atom (parse_quoted ())
    | Some _ -> Atom (parse_bare ())
  in
  try
    let v = parse_one () in
    skip_ws ();
    if !pos <> n then invalid_arg "Sexp.of_string: trailing input" else v
  with Parse_error m -> invalid_arg ("Sexp.of_string: " ^ m)

let of_string s =
  try Ok (of_string_exn s) with Invalid_argument m -> Error m

let rec pp ppf = function
  | Atom s -> Format.pp_print_string ppf (if needs_quoting s then quote s else s)
  | List l ->
    Format.fprintf ppf "@[<hv 1>(%a)@]"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "@ ") pp)
      l

let string_field = function
  | Atom s -> s
  | List _ -> invalid_arg "Sexp: expected an atom"

let int_field s =
  match int_of_string_opt (string_field s) with
  | Some i -> i
  | None -> invalid_arg "Sexp: expected an integer atom"

let bool_field s =
  match string_field s with
  | "true" -> true
  | "false" -> false
  | _ -> invalid_arg "Sexp: expected a boolean atom"

let list_field = function
  | List l -> l
  | Atom _ -> invalid_arg "Sexp: expected a list"

let of_int i = Atom (string_of_int i)
let of_bool b = Atom (if b then "true" else "false")

let field name = function
  | List items ->
    List.find_map
      (function
        | List (Atom tag :: rest) when String.equal tag name -> Some rest
        | _ -> None)
      items
  | Atom _ -> None

let field_exn name s =
  match field name s with
  | Some rest -> rest
  | None -> invalid_arg ("Sexp: missing field " ^ name)
