exception Error of string

let err fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

type tok =
  | ID of string
  | STR of string
  | LP
  | RP
  | LB
  | RB
  | COLON
  | COMMA
  | DASH
  | STAR
  | HASH
  | QM
  | PIPE
  | PIPE2
  | AMP
  | AT
  | SEMI
  | EQ
  | EOF

let tok_to_string = function
  | ID s -> Printf.sprintf "identifier %S" s
  | STR s -> Printf.sprintf "string %S" s
  | LP -> "'('"
  | RP -> "')'"
  | LB -> "'['"
  | RB -> "']'"
  | COLON -> "':'"
  | COMMA -> "','"
  | DASH -> "'-'"
  | STAR -> "'*'"
  | HASH -> "'#'"
  | QM -> "'?'"
  | PIPE -> "'|'"
  | PIPE2 -> "'||'"
  | AMP -> "'&'"
  | AT -> "'@'"
  | SEMI -> "';'"
  | EQ -> "'='"
  | EOF -> "end of input"

let is_ident_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_'

let lex (s : string) : tok list =
  let n = String.length s in
  let rec go i acc =
    if i >= n then List.rev (EOF :: acc)
    else
      match s.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1) acc
      | '(' -> go (i + 1) (LP :: acc)
      | ')' -> go (i + 1) (RP :: acc)
      | '[' -> go (i + 1) (LB :: acc)
      | ']' -> go (i + 1) (RB :: acc)
      | ':' -> go (i + 1) (COLON :: acc)
      | ',' -> go (i + 1) (COMMA :: acc)
      | '-' -> go (i + 1) (DASH :: acc)
      | '*' -> go (i + 1) (STAR :: acc)
      | '#' -> go (i + 1) (HASH :: acc)
      | '?' -> go (i + 1) (QM :: acc)
      | '&' -> go (i + 1) (AMP :: acc)
      | '@' -> go (i + 1) (AT :: acc)
      | ';' -> go (i + 1) (SEMI :: acc)
      | '=' -> go (i + 1) (EQ :: acc)
      | '|' ->
        if i + 1 < n && s.[i + 1] = '|' then go (i + 2) (PIPE2 :: acc)
        else go (i + 1) (PIPE :: acc)
      | '"' ->
        let buf = Buffer.create 8 in
        let rec str j =
          if j >= n then err "unterminated string literal"
          else
            match s.[j] with
            | '"' -> j + 1
            | '\\' when j + 1 < n ->
              Buffer.add_char buf s.[j + 1];
              str (j + 2)
            | c ->
              Buffer.add_char buf c;
              str (j + 1)
        in
        let i' = str (i + 1) in
        go i' (STR (Buffer.contents buf) :: acc)
      | c when is_ident_char c ->
        let j = ref i in
        while !j < n && is_ident_char s.[!j] do
          incr j
        done;
        go !j (ID (String.sub s i (!j - i)) :: acc)
      | c -> err "unexpected character %C" c
  in
  go 0 []

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

type stream = {
  mutable toks : tok list;
  mutable macros : (string * (string list * Expr.t)) list;
      (* user-defined operators: name -> (formals, body template) *)
}

let peek st = match st.toks with [] -> EOF | t :: _ -> t
let peek2 st = match st.toks with _ :: t :: _ -> t | _ -> EOF
let peek3 st = match st.toks with _ :: _ :: t :: _ -> t | _ -> EOF
let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect st t =
  if peek st = t then advance st
  else err "expected %s but found %s" (tok_to_string t) (tok_to_string (peek st))

let ident st =
  match peek st with
  | ID s when String.length s > 0 && (s.[0] < '0' || s.[0] > '9') ->
    advance st;
    s
  | t -> err "expected an identifier but found %s" (tok_to_string t)

(* Names reserved in primary (operator) position. *)
let primary_keywords = [ "opt"; "iter"; "pariter"; "mutex"; "times"; "activity"; "eps" ]

(* Expand a macro body (a purely syntactic template, like the user-defined
   operators of Fig. 5):
   - a zero-argument atom named like a formal is replaced by the operand;
   - an action ARGUMENT named like a formal requires the operand to be a
     simple name (a zero-argument atom); the name is re-classified against
     the call site's quantifier scope [bound], so "def exam(p) = call(p)"
     applied inside "all p: ..." passes the quantified parameter through. *)
let rec expand_template bindings bound (e : Expr.t) : Expr.t =
  let go = expand_template bindings bound in
  let subst_arg arg =
    let name_of = function
      | Expr.Atom a when a.Action.args = [] -> a.Action.name
      | _ -> err "an operand used as an action argument must be a simple name"
    in
    match arg with
    | (Action.Value v | Action.Param v) when List.mem_assoc v bindings ->
      let n = name_of (List.assoc v bindings) in
      if List.mem n bound then Action.Param n else Action.Value n
    | (Action.Value _ | Action.Param _) as arg -> arg
  in
  match e with
  | Expr.Atom a when a.Action.args = [] -> (
    match List.assoc_opt a.Action.name bindings with
    | Some operand -> operand
    | None -> e)
  | Expr.Atom a -> Expr.Atom (Action.make a.Action.name (List.map subst_arg a.Action.args))
  | Expr.Opt y -> Expr.Opt (go y)
  | Expr.Seq (y, z) -> Expr.Seq (go y, go z)
  | Expr.SeqIter y -> Expr.SeqIter (go y)
  | Expr.Par (y, z) -> Expr.Par (go y, go z)
  | Expr.ParIter y -> Expr.ParIter (go y)
  | Expr.Or (y, z) -> Expr.Or (go y, go z)
  | Expr.And (y, z) -> Expr.And (go y, go z)
  | Expr.Sync (y, z) -> Expr.Sync (go y, go z)
  | Expr.SomeQ (p, y) -> Expr.SomeQ (p, go y)
  | Expr.AllQ (p, y) -> Expr.AllQ (p, go y)
  | Expr.SyncQ (p, y) -> Expr.SyncQ (p, go y)
  | Expr.AndQ (p, y) -> Expr.AndQ (p, go y)

let quantifier_of = function
  | "some" -> Some (fun p y -> Expr.SomeQ (p, y))
  | "all" -> Some (fun p y -> Expr.AllQ (p, y))
  | "sync" -> Some (fun p y -> Expr.SyncQ (p, y))
  | "conj" -> Some (fun p y -> Expr.AndQ (p, y))
  | _ -> None

let rec parse_expr st bound =
  match (peek st, peek2 st, peek3 st) with
  | ID kw, ID p, COLON when quantifier_of kw <> None ->
    let mk = Option.get (quantifier_of kw) in
    advance st;
    advance st;
    advance st;
    mk p (parse_expr st (p :: bound))
  | _ -> parse_sync st bound

and parse_binary st bound ~op ~next ~mk =
  let left = next st bound in
  let rec loop acc = if peek st = op then (advance st; loop (mk acc (next st bound))) else acc in
  loop left

and parse_sync st bound =
  parse_binary st bound ~op:AT ~next:parse_and ~mk:(fun a b -> Expr.Sync (a, b))

and parse_and st bound =
  parse_binary st bound ~op:AMP ~next:parse_or ~mk:(fun a b -> Expr.And (a, b))

and parse_or st bound =
  parse_binary st bound ~op:PIPE ~next:parse_par ~mk:(fun a b -> Expr.Or (a, b))

and parse_par st bound =
  parse_binary st bound ~op:PIPE2 ~next:parse_seq ~mk:(fun a b -> Expr.Par (a, b))

and parse_seq st bound =
  parse_binary st bound ~op:DASH ~next:parse_postfix ~mk:(fun a b -> Expr.Seq (a, b))

and parse_postfix st bound =
  let e = parse_primary st bound in
  let rec loop e =
    match peek st with
    | STAR ->
      advance st;
      loop (Expr.SeqIter e)
    | HASH ->
      advance st;
      loop (Expr.ParIter e)
    | QM ->
      advance st;
      loop (Expr.Opt e)
    | _ -> e
  in
  loop e

and parse_primary st bound =
  match peek st with
  | LP ->
    advance st;
    let e = parse_expr st bound in
    expect st RP;
    e
  | LB ->
    advance st;
    let e = parse_expr st bound in
    expect st RB;
    Expr.Opt e
  | ID "eps" ->
    advance st;
    Expr.epsilon
  | ID "opt" when peek2 st = LP ->
    advance st;
    expect st LP;
    let e = parse_expr st bound in
    expect st RP;
    Expr.Opt e
  | ID "iter" when peek2 st = LP ->
    advance st;
    expect st LP;
    let e = parse_expr st bound in
    expect st RP;
    Expr.SeqIter e
  | ID "pariter" when peek2 st = LP ->
    advance st;
    expect st LP;
    let e = parse_expr st bound in
    expect st RP;
    Expr.ParIter e
  | ID "mutex" when peek2 st = LP ->
    advance st;
    expect st LP;
    let rec branches acc =
      let e = parse_expr st bound in
      if peek st = COMMA then (advance st; branches (e :: acc)) else List.rev (e :: acc)
    in
    let bs = branches [] in
    expect st RP;
    Expr.mutex bs
  | ID "times" when peek2 st = LP ->
    advance st;
    expect st LP;
    let n =
      match peek st with
      | ID d -> (
        advance st;
        match int_of_string_opt d with
        | Some n when n >= 0 -> n
        | Some _ | None -> err "times: expected a non-negative integer, found %S" d)
      | t -> err "times: expected an integer, found %s" (tok_to_string t)
    in
    expect st COMMA;
    let e = parse_expr st bound in
    expect st RP;
    Expr.times n e
  | ID "activity" when peek2 st = LP ->
    advance st;
    expect st LP;
    let name = ident st in
    let args = if peek st = LP then parse_args st bound else [] in
    expect st RP;
    Expr.activity name args
  | ID name when List.mem_assoc name st.macros ->
    advance st;
    let formals, body = List.assoc name st.macros in
    let operands =
      if peek st = LP then begin
        advance st;
        if peek st = RP then (advance st; [])
        else
          let rec loop acc =
            let e = parse_expr st bound in
            if peek st = COMMA then (advance st; loop (e :: acc)) else List.rev (e :: acc)
          in
          let ops = loop [] in
          expect st RP;
          ops
      end
      else []
    in
    if List.length operands <> List.length formals then
      err "operator %s expects %d operand(s) but got %d" name (List.length formals)
        (List.length operands)
    else expand_template (List.combine formals operands) bound body
  | ID name when String.length name > 0 && (name.[0] < '0' || name.[0] > '9') ->
    advance st;
    let args = if peek st = LP then parse_args st bound else [] in
    Expr.Atom (Action.make name args)
  | t -> err "expected an expression but found %s" (tok_to_string t)

and parse_args st bound =
  expect st LP;
  if peek st = RP then (advance st; [])
  else
    let rec loop acc =
      let arg =
        match peek st with
        | QM ->
          advance st;
          Action.param (ident st)
        | STR v ->
          advance st;
          Action.value v
        | ID v ->
          advance st;
          if List.mem v bound then Action.param v else Action.value v
        | t -> err "expected an argument but found %s" (tok_to_string t)
      in
      if peek st = COMMA then (advance st; loop (arg :: acc)) else List.rev (arg :: acc)
    in
    let args = loop [] in
    expect st RP;
    args

(* def name(x, y) = body ;   — user-defined operators, expanded at parse
   time; a body may use operators defined before it, so expansion cannot
   recurse. *)
let parse_def st =
  advance st (* def *);
  let name = ident st in
  if List.mem name primary_keywords || quantifier_of name <> None || name = "def" then
    err "cannot redefine the built-in operator %S" name;
  if List.mem_assoc name st.macros then err "operator %S is already defined" name;
  let formals =
    if peek st = LP then begin
      advance st;
      if peek st = RP then (advance st; [])
      else
        let rec loop acc =
          let f = ident st in
          if peek st = COMMA then (advance st; loop (f :: acc)) else List.rev (f :: acc)
        in
        let fs = loop [] in
        expect st RP;
        fs
    end
    else []
  in
  (match List.find_opt (fun f -> List.length (List.filter (String.equal f) formals) > 1) formals with
  | Some f -> err "duplicate formal %S in definition of %S" f name
  | None -> ());
  expect st EQ;
  let body = parse_expr st [] in
  expect st SEMI;
  st.macros <- (name, (formals, body)) :: st.macros

let parse_exn s =
  try
    let st = { toks = lex s; macros = [] } in
    let rec defs () =
      match (peek st, peek2 st) with
      | ID "def", ID _ ->
        parse_def st;
        defs ()
      | _ -> ()
    in
    defs ();
    let e = parse_expr st [] in
    if peek st <> EOF then err "trailing input starting at %s" (tok_to_string (peek st));
    e
  with Error m -> invalid_arg ("Syntax.parse: " ^ m)

let parse s = try Ok (parse_exn s) with Invalid_argument m -> Result.Error m

(* ------------------------------------------------------------------ *)
(* Printer                                                             *)
(* ------------------------------------------------------------------ *)

let ident_like v =
  String.length v > 0
  && is_ident_char v.[0]
  && (v.[0] < '0' || v.[0] > '9' || String.for_all (fun c -> c >= '0' && c <= '9') v)
  && String.for_all is_ident_char v

let quote v =
  let buf = Buffer.create (String.length v + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      if c = '"' || c = '\\' then Buffer.add_char buf '\\';
      Buffer.add_char buf c)
    v;
  Buffer.add_char buf '"';
  Buffer.contents buf

(* A value must be quoted when re-reading it bare would go wrong: captured
   by an in-scope parameter, mistaken for a keyword, or not identifier-like. *)
let value_str scope v =
  if ident_like v && (not (List.mem v scope)) && not (List.mem v primary_keywords) then v
  else quote v

let atom_str scope (a : Action.t) =
  match a.Action.args with
  | [] -> a.Action.name
  | args ->
    let arg_str = function
      | Action.Value v -> value_str scope v
      | Action.Param p -> "?" ^ p
    in
    Printf.sprintf "%s(%s)" a.Action.name (String.concat "," (List.map arg_str args))

(* Precedence: 0 quantifier, 1 '@', 2 '&', 3 '|', 4 '||', 5 '-', 6 postfix,
   7 primary. *)
let rec emit buf scope ctx (e : Expr.t) =
  let binary prec op y z =
    let body () =
      emit buf scope prec y;
      Buffer.add_string buf op;
      emit buf scope (prec + 1) z
    in
    if ctx > prec then (
      Buffer.add_char buf '(';
      body ();
      Buffer.add_char buf ')')
    else body ()
  in
  match e with
  | _ when Expr.equal e Expr.epsilon -> Buffer.add_string buf "eps"
  | Expr.Atom a -> Buffer.add_string buf (atom_str scope a)
  | Expr.Opt y ->
    Buffer.add_char buf '[';
    emit buf scope 0 y;
    Buffer.add_char buf ']'
  | Expr.Seq (y, z) -> binary 5 " - " y z
  | Expr.Par (y, z) -> binary 4 " || " y z
  | Expr.Or (y, z) -> binary 3 " | " y z
  | Expr.And (y, z) -> binary 2 " & " y z
  | Expr.Sync (y, z) -> binary 1 " @ " y z
  | Expr.SeqIter y ->
    emit buf scope 7 y;
    Buffer.add_char buf '*'
  | Expr.ParIter y ->
    emit buf scope 7 y;
    Buffer.add_char buf '#'
  | Expr.SomeQ (p, y) -> quant buf scope ctx "some" p y
  | Expr.AllQ (p, y) -> quant buf scope ctx "all" p y
  | Expr.SyncQ (p, y) -> quant buf scope ctx "sync" p y
  | Expr.AndQ (p, y) -> quant buf scope ctx "conj" p y

and quant buf scope ctx kw p y =
  let body () =
    Buffer.add_string buf kw;
    Buffer.add_char buf ' ';
    Buffer.add_string buf p;
    Buffer.add_string buf ": ";
    emit buf (p :: scope) 0 y
  in
  if ctx > 0 then (
    Buffer.add_char buf '(';
    body ();
    Buffer.add_char buf ')')
  else body ()

let to_string e =
  let buf = Buffer.create 64 in
  emit buf [] 0 e;
  Buffer.contents buf

let pp ppf e = Format.pp_print_string ppf (to_string e)

(* ------------------------------------------------------------------ *)
(* Concrete actions and words                                          *)
(* ------------------------------------------------------------------ *)

let parse_action_from st =
  let name = ident st in
  let args =
    if peek st = LP then (
      advance st;
      if peek st = RP then (advance st; [])
      else
        let rec loop acc =
          let v =
            match peek st with
            | ID v ->
              advance st;
              v
            | STR v ->
              advance st;
              v
            | t -> err "expected a value but found %s" (tok_to_string t)
          in
          if peek st = COMMA then (advance st; loop (v :: acc)) else List.rev (v :: acc)
        in
        let vs = loop [] in
        expect st RP;
        vs)
    else []
  in
  Action.conc name args

let parse_action_exn s =
  try
    let st = { toks = lex s; macros = [] } in
    let a = parse_action_from st in
    if peek st <> EOF then err "trailing input after action";
    a
  with Error m -> invalid_arg ("Syntax.parse_action: " ^ m)

let parse_action s = try Ok (parse_action_exn s) with Invalid_argument m -> Result.Error m

let parse_word_exn s =
  try
    let st = { toks = lex s; macros = [] } in
    let rec loop acc =
      match peek st with
      | EOF -> List.rev acc
      | COMMA | SEMI ->
        advance st;
        loop acc
      | _ -> loop (parse_action_from st :: acc)
    in
    loop []
  with Error m -> invalid_arg ("Syntax.parse_word: " ^ m)

let parse_word s = try Ok (parse_word_exn s) with Invalid_argument m -> Result.Error m
