(** Solution of the word and action problems (Section 5, Fig. 9).

    The {e word problem} decides whether a sequence of actions is a
    complete, partial, or illegal word of an expression.  The {e action
    problem} — the practically relevant one — processes actions one by one,
    accepting an action iff the tentative successor state is valid, in
    which case the transition is committed. *)

type verdict = Semantics.verdict =
  | Illegal
  | Partial
  | Complete

(** {1 Engine selection}

    Three executable backends solve the word and action problems:
    the interpreted τ̂ ([Interp]), the lazily-filled signature automaton
    ([Table], PR 4), and the ahead-of-time compiled bytecode VM ([Vm],
    {!Bytecode}).  The default is {e auto}: §6-harmless expressions —
    whose finite state spaces the bytecode compiler closes the same way
    the automaton's eager precompile does — run on the VM, everything
    else on the automaton.  A forced [Vm] compiles {e any} expression
    whose alphabet is ground and whose space closes within the row cap
    (benign expressions often qualify), degrading to [Table] when
    compilation fails; the compilation kill switch
    ({!State.set_compilation}) degrades everything to [Interp].  The
    preference is read per step, so switching engines mid-word takes
    effect immediately. *)

type backend = Interp | Table | Vm

val set_backend : backend option -> unit
(** [None] = auto (the default). *)

val backend : unit -> backend option
val backend_name : backend -> string

val backend_of_string : string -> (backend option, string) result
(** ["interp" | "table" | "vm" | "auto"] — the CLI [--engine] values. *)

val resolve : Expr.t -> backend
(** The backend a fresh walk of [e] would use right now, after auto
    selection and fallback. *)

val word : Expr.t -> Action.concrete list -> verdict
(** Fig. 9's [word()], via the operational state model. *)

val word_int : Expr.t -> Action.concrete list -> int
(** Fig. 9's integer encoding: 2 = complete, 1 = partial, 0 = illegal. *)

(** {1 Sessions: the action problem} *)

type session
(** A running instance of an expression: the current state plus the trace of
    accepted actions. *)

val create : Expr.t -> session

val expr : session -> Expr.t

val permitted : session -> Action.concrete -> bool
(** Tentative transition: would the action be accepted now?  Does not
    change the session.  The computed successor is kept in a small bounded
    per-session cache ({!Scache}) keyed by (state, action), so a following
    {!try_action} (or {!force}) of the same action commits it without
    recomputing the transition — the Fig. 9 grant loop performs exactly
    one transition per granted action, and interleaved queries of other
    actions no longer evict the pair being committed. *)

val try_action : session -> Action.concrete -> bool
(** Fig. 9's [action()] loop body: perform a tentative transition; on
    success commit it and return [true], otherwise leave the state
    unchanged and return [false].  Reuses the successor cached by a
    preceding {!permitted} of the same action. *)

val feed : session -> Action.concrete list -> Action.concrete list
(** Try each action in order; returns the rejected ones. *)

val is_final : session -> bool
(** φ of the current state: the trace is a complete word. *)

val is_alive : session -> bool
(** The current state is valid.  [create] always yields a live session;
    a session only dies through {!force}. *)

val force : session -> Action.concrete -> bool
(** Perform the transition even if it invalidates the state (models a
    client executing an action without permission — the "waterproofness"
    experiments need this).  Returns [false] if the session died.  On an
    already-dead session this is a no-op returning [false]: the trace is
    not extended, since no state consumed the action. *)

val trace : session -> Action.concrete list
(** Accepted actions so far, in execution order. *)

val state_size : session -> int
(** Size of the current state ({!State.size}); 0 for a dead session. *)

val state : session -> State.t option

val explain_denial : session -> Action.concrete -> Explain.explanation option
(** Denial provenance against the current state: [None] when the action
    would be accepted, otherwise a minimal blame set ({!Explain.explain}).
    A dead session yields a root blame naming the dead session.  Pure —
    performs no transition and perturbs no counters. *)

val sentinel_warnings : session -> int
(** Complexity-sentinel warnings raised by this session's observed
    actions (0 when telemetry never saw the session). *)

val reset : session -> unit
(** Back to the initial state, clearing the trace. *)

val copy : session -> session
(** Independent snapshot of the session. *)

type checkpoint
(** A by-value capture of a session's logical state (current state +
    trace) for optimistic execution: {!Speculate} checkpoints each shard
    before a speculative batch and rolls back on conflict.  Caches are
    not captured — their entries stay sound across rollback (pure
    transitions, hash-consed keys) and keep the retry warm. *)

val checkpoint : session -> checkpoint

val restore : session -> checkpoint -> unit
(** Roll the session back to [checkpoint].  Only meaningful with a
    checkpoint taken from the same session. *)

val set_successor_cache : bool -> unit
(** Enable/disable the tentative-successor cache (on by default).
    Only the experiment harness switches it off, to measure the
    permitted → try_action path with and without the cache. *)

val successor_cache_enabled : unit -> bool

val successor_cache_stats : unit -> int * int
(** [(hits, misses)] of the bounded successor cache across all sessions
    since start (or the last {!reset_successor_cache_stats}).  Always
    counted; exported to the telemetry registry as the
    [engine_successor_cache_*] probes.  Queries made while the cache is
    disabled count nothing. *)

val reset_successor_cache_stats : unit -> unit

(** {1 Persistence} *)

val save : session -> string
(** Serialize expression, current state and trace. *)

val load : string -> session
(** @raise Invalid_argument on malformed input. *)
