(** Shard decomposition of synchronization expressions (Section 7, Table 8).

    The coupling operator [y @ z] evaluates its operands independently: an
    action inside α(y) but outside α(z) transitions only [y]'s state and is
    shuffled past [z] via the complement language κ.  A top-level coupling
    of operands with pairwise non-overlapping alphabets therefore splits
    into {e shards} whose component states evolve independently under τ̂ —
    the decomposition exploited by the federated manager and by the
    multicore evaluation layer.

    Overlap is decided conservatively on alphabet patterns: two patterns
    overlap when some concrete action could match both ([Bound] positions
    match any value, [Free] positions match nothing).  Operands whose
    alphabets overlap are merged into one shard, so by construction a
    concrete action is relevant to {e at most one} shard — the merge
    closure is what makes per-shard evaluation coordination-free. *)

val patterns_overlap : Alpha.pattern -> Alpha.pattern -> bool
(** Could any concrete action match both patterns? *)

val alphas_overlap : Alpha.t -> Alpha.t -> bool

val flatten_sync : Expr.t -> Expr.t list
(** The operands of a (nested) top-level coupling, left to right; [[e]]
    for any other expression. *)

val components : Expr.t -> (Expr.t * Alpha.t) list
(** Decompose a top-level coupling into alphabet-disjoint shards, each
    paired with its alphabet.  Operands with overlapping alphabets are
    re-coupled inside one shard (operand order preserved); an expression
    that is not a coupling, or whose operands all interfere, yields a
    single shard.  Coupling the components in order is equivalent to the
    original expression. *)

val partition : Expr.t -> Expr.t list
(** [components] without the alphabets (the federated manager's view). *)

val owner : (Expr.t * Alpha.t) list -> Action.concrete -> int option
(** Index of the unique shard whose alphabet contains the action, if any.
    Uniqueness is guaranteed by the overlap closure of {!components}. *)
