type exploration = {
  states : int;
  final_states : int;
  dead_states : int;
  truncated : bool;
}

let default_values e =
  let vals = Expr.values e in
  let fresh =
    let rec pick i acc =
      if List.length acc >= 2 then List.rev acc
      else
        let v = "v" ^ string_of_int i in
        if List.mem v vals then pick (i + 1) acc else pick (i + 1) (v :: acc)
    in
    pick 1 []
  in
  vals @ fresh

let concrete_alphabet ?values e =
  let values = match values with Some vs -> vs | None -> default_values e in
  let values = if values = [] then [ "v1" ] else values in
  let rec inst = function
    | [] -> [ [] ]
    | Alpha.Val v :: rest -> List.map (fun t -> v :: t) (inst rest)
    | (Alpha.Bound _ | Alpha.Free _) :: rest ->
      let tails = inst rest in
      List.concat_map (fun v -> List.map (fun t -> v :: t) tails) values
  in
  Alpha.of_expr e
  |> List.concat_map (fun (p : Alpha.pattern) ->
         List.map (fun args -> Action.conc p.Alpha.pname args) (inst p.Alpha.pargs))
  |> List.sort_uniq Action.compare_concrete

(* Breadth-first reachability over the optimized state space; returns the
   visited states, their successor lists, a per-state flag saying whether
   the successor list is complete (a dropped edge or an unexpanded oversized
   state makes it incomplete), and whether any bound was hit. *)
let reachable ~max_states ~max_state_size ~alphabet init_state =
  (* states are deduplicated by hash-cons id: no tree hashing involved *)
  let seen : (int, int) Hashtbl.t = Hashtbl.create 256 in
  (* states are numbered in discovery order; successors collected per state *)
  let store = ref [] in
  let truncated = ref false in
  let queue = Queue.create () in
  Hashtbl.add seen (State.id init_state) 0;
  Queue.add (0, init_state) queue;
  let next_id = ref 1 in
  while not (Queue.is_empty queue) do
    let id, s = Queue.pop queue in
    let out = ref [] in
    let incomplete = ref false in
    if State.size s > max_state_size then begin
      truncated := true;
      incomplete := true
    end
    else
      List.iter
        (fun a ->
          match State.trans s a with
          | None -> ()
          | Some s' -> (
            match Hashtbl.find_opt seen (State.id s') with
            | Some id' -> out := id' :: !out
            | None ->
              if !next_id >= max_states then begin
                truncated := true;
                incomplete := true
              end
              else (
                let id' = !next_id in
                incr next_id;
                Hashtbl.add seen (State.id s') id';
                Queue.add (id', s') queue;
                out := id' :: !out)))
        alphabet;
    store := (id, s, List.sort_uniq compare !out, !incomplete) :: !store
  done;
  let n = !next_id in
  let arr = Array.make n init_state in
  let sc = Array.make n [] in
  let inc = Array.make n false in
  List.iter
    (fun (id, s, out, incomplete) ->
      arr.(id) <- s;
      sc.(id) <- out;
      inc.(id) <- incomplete)
    !store;
  (arr, sc, inc, !truncated)

let explore ?(max_states = 10_000) ?(max_state_size = 10_000) ?values e =
  let alphabet = concrete_alphabet ?values e in
  let arr, succ, incomplete, truncated =
    reachable ~max_states ~max_state_size ~alphabet (State.init e)
  in
  let n = Array.length arr in
  let final = Array.map State.final arr in
  (* Backward fixpoint: can this state reach a final state?  States with an
     incomplete successor list are conservatively assumed able to, so
     [dead_states] only counts states PROVEN dead — sound even under
     truncation. *)
  let can = Array.mapi (fun i f -> f || incomplete.(i)) final in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to n - 1 do
      if not can.(i) && List.exists (fun j -> can.(j)) succ.(i) then (
        can.(i) <- true;
        changed := true)
    done
  done;
  let count p = Array.fold_left (fun acc b -> if p b then acc + 1 else acc) 0 in
  { states = n;
    final_states = count Fun.id final;
    dead_states = count not can;
    truncated }

let has_dead_end ?max_states ?max_state_size ?values e =
  let r = explore ?max_states ?max_state_size ?values e in
  if r.dead_states > 0 then Some true (* proven even under truncation *)
  else if r.truncated then None
  else Some false

(* Product-space search for a separating word.  Returns the shortest word on
   which the verdicts differ (BFS order) plus whether the bound was hit. *)
let product_search ?(max_states = 10_000) ?(max_state_size = 10_000) ?values e1 e2 =
  let alphabet =
    List.sort_uniq Action.compare_concrete
      (concrete_alphabet ?values e1 @ concrete_alphabet ?values e2)
  in
  (* Pairs are deduplicated by hash-cons ids (-1 encodes the null state).
     The table's values hold the states themselves so the weakly-held
     hash-cons entries stay live (and their ids stable) for the whole
     search. *)
  let key_of (s1, s2) =
    let k = function Some s -> State.id s | None -> -1 in
    (k s1, k s2)
  in
  let seen : (int * int, State.t option * State.t option) Hashtbl.t = Hashtbl.create 256 in
  let queue = Queue.create () in
  let start = (Some (State.init e1), Some (State.init e2)) in
  Hashtbl.add seen (key_of start) start;
  Queue.add (start, []) queue;
  let result = ref None in
  let count = ref 1 in
  let truncated = ref false in
  let verdict = function
    | None -> `Dead
    | Some s -> if State.final s then `Final else `Valid
  in
  (try
     while not (Queue.is_empty queue) do
       let (s1, s2), rev_word = Queue.pop queue in
       if verdict s1 <> verdict s2 then (
         result := Some (List.rev rev_word);
         raise Exit);
       let size_of = function Some s -> State.size s | None -> 0 in
       if size_of s1 > max_state_size || size_of s2 > max_state_size then
         truncated := true
       else if s1 <> None || s2 <> None then
         List.iter
           (fun a ->
             let t1 = Option.bind s1 (fun s -> State.trans s a) in
             let t2 = Option.bind s2 (fun s -> State.trans s a) in
             let pair = (t1, t2) in
             (* both dead: every extension agrees; prune *)
             if (t1 <> None || t2 <> None || verdict t1 <> verdict t2)
                && not (Hashtbl.mem seen (key_of pair))
             then
               if !count >= max_states then truncated := true
               else (
                 incr count;
                 Hashtbl.add seen (key_of pair) pair;
                 Queue.add (pair, a :: rev_word) queue))
           alphabet
     done
   with Exit -> ());
  (!result, !truncated)

let separating_word ?max_states ?max_state_size ?values e1 e2 =
  fst (product_search ?max_states ?max_state_size ?values e1 e2)

let equivalent ?max_states ?max_state_size ?values e1 e2 =
  match product_search ?max_states ?max_state_size ?values e1 e2 with
  | Some _, _ -> Some false
  | None, true -> None
  | None, false -> Some true

let shortest_complete ?(max_states = 10_000) ?(max_state_size = 10_000) ?values e =
  let alphabet = concrete_alphabet ?values e in
  (* id-keyed; values keep the states live so ids stay stable (see above) *)
  let seen : (int, State.t) Hashtbl.t = Hashtbl.create 256 in
  let queue = Queue.create () in
  let init = State.init e in
  Hashtbl.add seen (State.id init) init;
  Queue.add (init, []) queue;
  let result = ref None in
  let count = ref 1 in
  (try
     while not (Queue.is_empty queue) do
       let s, rev_word = Queue.pop queue in
       if State.final s then begin
         result := Some (List.rev rev_word);
         raise Exit
       end;
       if State.size s <= max_state_size then
         List.iter
           (fun a ->
             match State.trans s a with
             | None -> ()
             | Some s' ->
               if (not (Hashtbl.mem seen (State.id s'))) && !count < max_states then begin
                 incr count;
                 Hashtbl.add seen (State.id s') s';
                 Queue.add (s', a :: rev_word) queue
               end)
           alphabet
     done
   with Exit -> ());
  !result

let pp_exploration ppf r =
  Format.fprintf ppf "states=%d final=%d dead=%d%s" r.states r.final_states r.dead_states
    (if r.truncated then " (truncated)" else "")
