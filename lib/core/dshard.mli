(** Per-domain slot arrays for shared hot structures.

    The concurrent kernel tables ({!Automaton}, {!Bytecode}) are walked by
    several domains at once, but their per-instance caches and batched
    counters are plain mutable state.  A [Dshard] gives each domain its
    own slot — indexed by [Domain.self () mod slot_count] and tagged with
    the creating domain's id — so the value inside is effectively
    domain-private and needs no lock.  Domains whose ids collide modulo
    the slot count fall back safely: replicas are recreated (losing only
    cache warmth) and tallies bypass their batch straight into the shared
    atomic (losing only the batching).  See the implementation header for
    the memory-model argument. *)

val slot_count : int
(** Number of slots (64).  Collisions start only past this many
    concurrently live domains. *)

(** {1 Replicas}

    One lazily created value per domain: per-domain memo tables
    ({!Segtbl}), successor caches ({!Scache}), one-slot row caches. *)

type 'a replica

val replica : unit -> 'a replica

val replica_get : 'a replica -> create:(unit -> 'a) -> 'a
(** The calling domain's value, created on first use.  Only the calling
    domain ever mutates the returned value (the slot's domain-id check
    enforces it), so the value may be freely mutable. *)

val replica_find : 'a replica -> 'a option
(** The calling domain's value if it already exists. *)

val replica_populated : 'a replica -> int
(** Populated slots — how many domains have touched this structure. *)

val replica_iter : ('a -> unit) -> 'a replica -> unit
(** Visit every replica, own and foreign.  Foreign values race with their
    owners; only race-tolerant operations (stats reads, cache clears) are
    sound here. *)

(** {1 Tallies}

    Batched per-domain counters flushing into one shared [Atomic.t] —
    the multi-domain-safe replacement for the former per-instance
    [mutable pending] ints, which tore when two domains walked one
    instance. *)

module Tally : sig
  type t

  val create : int Atomic.t -> t
  (** A tally flushing into the given shared total. *)

  val bump : t -> int -> unit
  (** Count [n] events: a plain increment of the calling domain's cell,
      flushed into the shared atomic at the batch threshold (4096). *)

  val drain : t -> unit
  (** Flush all cells into the shared total.  Foreign cells are drained
      racily and can transiently miss an in-flight batch; exact after the
      owning domains are joined. *)

  val discard : t -> unit
  (** Drop pending batches without counting them (stats reset). *)
end
