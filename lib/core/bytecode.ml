(* Ahead-of-time compiled programs and the VM that runs them.

   The lazy automaton (Automaton) answers warm steps from hash tables it
   fills as it goes; every step still pays a signature probe and atomic
   counter traffic.  When an expression's alphabet patterns are all ground
   — no quantifier binders, so the signature of an action is simply "which
   alphabet action is it, if any" — the signature-level automaton is
   finite whenever the reachable state space is, and can be flattened once
   into a dense program:

     columns   the deduplicated ground alphabet (pattern i = column i)
     rows      reachable states in BFS order, row 0 = σ(e)
     trans     row-major int table, -1 = reject
     finals    one bit of φ per row

   An action matching no column is rejected by every state (the uniform
   reject of Alpha.sig_match: all-None signature), so classification alone
   answers it — the fast path never reads the table.  Every §6-harmless
   expression qualifies (quasi-regular ⇒ ground alphabet, finite space);
   benign or even malignant expressions qualify exactly when they are
   ground and close within the row cap, which the BFS itself decides.

   The VM walk is the whole point: a step is a name-keyed dispatch probe
   plus one array read — no state hashing, no signature interning, no
   per-step boxing (successor options are preallocated per row), and the
   per-domain step tally is flushed to the process-wide atomic in batches
   rather than per step.

   Concurrency.  A compiled program is immutable, and everything an
   instance computes at construction (dispatch table, row-id map, row
   states, preallocated options) is read-only afterwards — so the whole
   walk is naturally share-everything and any number of domains can run
   one instance at once.  The only mutable instance state is per-domain
   ({!Dshard}): the column-memo Segtbl (single-domain by contract), the
   one-slot state → row cell, and the batched step tally (the former
   instance-local pending int tore under two walkers).  The shared
   program cache is process-global under a mutex, with a per-domain
   one-slot fast path invalidated by a generation counter. *)

type program = {
  pexpr : Expr.t;
  patterns : Alpha.pattern array;  (* ground, deduplicated; defines columns *)
  cols : Action.concrete array;  (* patterns instantiated; same order *)
  nstates : int;
  trans : int array;  (* nstates * ncols, row-major; -1 = reject *)
  finals : Bytes.t;  (* bitset, (nstates+7)/8 bytes *)
}

(* Per-domain one-slot state → row cell; only the owning domain touches
   it (Dshard), so the stores are plain. *)
type lastslot = {
  mutable lst : State.t option;
  mutable lrow : int;
}

type t = {
  prog : program;
  (* name -> candidate columns; ground alphabets rarely overload a name,
     so classification is one probe and a short scan.  Read-only after
     construction, hence safe to probe from every domain. *)
  dispatch : (string, (Action.value list * int) list) Hashtbl.t;
  (* in-process compiles carry the hash-consed state of each row, so
     sessions can leave and re-enter the program mid-word *)
  states : State.t array option;
  row_ids : (int, int) Hashtbl.t;  (* State.id -> row; read-only after compile *)
  opts : State.t option array;  (* preallocated [Some states.(r)] per row *)
  (* concrete action -> column memo: the dispatch probe hashes the name and
     scans candidates; the memo answers warm steps in one table probe, the
     same cost the automaton pays for its signature cache.  One replica
     per domain: Segtbl is single-domain. *)
  ccaches : (Action.concrete, int) Segtbl.t Dshard.replica;
  last : lastslot Dshard.replica;
  step_tally : Dshard.Tally.t;  (* batched into [steps_total] *)
}

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let steps_total = Atomic.make 0
let col_evictions = Atomic.make 0
let fallbacks_total = Atomic.make 0
let programs_total = Atomic.make 0
let failures_total = Atomic.make 0

(* Instances batch their step tally in per-domain cells; [stats] must
   still be exact (the workbench and the experiment harness print it), so
   every instance is reachable — weakly, property tests mint thousands —
   from a registry the flush walks.  Draining foreign cells is racy
   (plain-int reads) but exact once domains are joined. *)
let registry : t Weak.t list ref = ref []
let registry_mu = Mutex.create ()
let registry_site = Prof.Lock.site "bytecode.registry"

let register inst =
  let w = Weak.create 1 in
  Weak.set w 0 (Some inst);
  Prof.Lock.protect registry_site registry_mu (fun () ->
      registry := w :: List.filter (fun w -> Weak.check w 0) !registry)

let flush inst = Dshard.Tally.drain inst.step_tally

let flush_all () =
  Prof.Lock.protect registry_site registry_mu (fun () ->
      List.iter
        (fun w -> match Weak.get w 0 with Some i -> flush i | None -> ())
        !registry)

type stats = {
  steps : int;
  fallbacks : int;
  programs : int;
  failures : int;
}

let stats () =
  flush_all ();
  { steps = Atomic.get steps_total;
    fallbacks = Atomic.get fallbacks_total;
    programs = Atomic.get programs_total;
    failures = Atomic.get failures_total }

let reset_stats () =
  Prof.Lock.protect registry_site registry_mu (fun () ->
      List.iter
        (fun w ->
          match Weak.get w 0 with
          | Some i -> Dshard.Tally.discard i.step_tally
          | None -> ())
        !registry);
  Atomic.set steps_total 0;
  Atomic.set fallbacks_total 0;
  Atomic.set programs_total 0;
  Atomic.set failures_total 0

let () =
  let probe name r =
    Telemetry.register_probe name (fun () -> float_of_int (Atomic.get r))
  in
  probe "vm_steps_total" steps_total;
  probe "vm_fallbacks_total" fallbacks_total;
  probe "vm_programs_total" programs_total;
  probe "vm_compile_failures_total" failures_total

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)
(* ------------------------------------------------------------------ *)

(* The ground alphabet, or None if any pattern carries a binder or free
   parameter (the classifier cannot be closed: distinct values would need
   distinct columns). *)
let ground_cols e =
  let rec vals acc = function
    | [] -> Some (List.rev acc)
    | Alpha.Val v :: rest -> vals (v :: acc) rest
    | (Alpha.Bound _ | Alpha.Free _) :: _ -> None
  in
  let rec go acc = function
    | [] -> Some (List.sort_uniq Stdlib.compare (List.rev acc))
    | (p : Alpha.pattern) :: rest -> (
      match vals [] p.Alpha.pargs with
      | None -> None
      | Some args -> go ((p, Action.conc p.Alpha.pname args) :: acc) rest)
  in
  go [] (Alpha.of_expr e)

let mk_dispatch cols =
  let d = Hashtbl.create (2 * Array.length cols) in
  Array.iteri
    (fun i (c : Action.concrete) ->
      let prev = try Hashtbl.find d c.Action.cname with Not_found -> [] in
      Hashtbl.replace d c.Action.cname (prev @ [ (c.Action.cargs, i) ]))
    cols;
  d

let set_final finals r = Bytes.set_uint8 finals (r lsr 3)
    (Bytes.get_uint8 finals (r lsr 3) lor (1 lsl (r land 7)))

let is_final finals r = Bytes.get_uint8 finals (r lsr 3) land (1 lsl (r land 7)) <> 0

let mk_instance prog states row_ids =
  let n = prog.nstates in
  let opts =
    match states with
    | None -> Array.make n None
    | Some sts -> Array.map (fun s -> Some s) sts
  in
  let inst =
    { prog;
      dispatch = mk_dispatch prog.cols;
      ccaches = Dshard.replica ();
      states;
      row_ids;
      opts;
      last = Dshard.replica ();
      step_tally = Dshard.Tally.create steps_total }
  in
  register inst;
  inst

let ccache t =
  Dshard.replica_get t.ccaches ~create:(fun () ->
      Segtbl.create ~gen_cap:(1 lsl 12) ~evictions:col_evictions 64)

let last_cell t =
  Dshard.replica_get t.last ~create:(fun () ->
      { lst = (match t.states with Some sts -> Some sts.(0) | None -> None);
        lrow = 0 })

let default_cap e =
  (* §6 guides the budget: harmless and benign spaces are bounded, so the
     cap is generous; a potentially-malignant ground expression (e.g. a
     parallel iteration) usually diverges, so its BFS is cut off early *)
  match Classify.benignity e with
  | Classify.Potentially_malignant -> 512
  | Classify.Harmless | Classify.Benign _ -> 4096

let compile ?max_states e =
  let max_states =
    match max_states with Some n -> max 1 n | None -> default_cap e
  in
  match ground_cols e with
  | None ->
    Atomic.incr failures_total;
    None
  | Some pcols ->
    let patterns = Array.of_list (List.map fst pcols) in
    let cols = Array.of_list (List.map snd pcols) in
    let ncols = Array.length cols in
    let s0 = State.init e in
    let ids = Hashtbl.create 64 in
    let states = ref (Array.make 64 s0) in
    let nstates = ref 0 in
    (* two caps bound the BFS work: the row cap (below) and a state-size
       cap — a state bigger than this makes every ÏÌ of the closure
       expensive and the flat table unprofitable (harmless expressions,
       the primary targets, stay far under it by quasi-regularity) *)
    let max_state_size = 512 in
    let intern st =
      match Hashtbl.find_opt ids (State.id st) with
      | Some r -> Some r
      | None ->
        if !nstates >= max_states || State.size st > max_state_size then None
        else begin
          if !nstates >= Array.length !states then begin
            let b = Array.make (2 * Array.length !states) st in
            Array.blit !states 0 b 0 !nstates;
            states := b
          end;
          !states.(!nstates) <- st;
          Hashtbl.add ids (State.id st) !nstates;
          incr nstates;
          Some (!nstates - 1)
        end
    in
    ignore (intern s0);
    (* BFS in intern order: processing row i may intern new rows behind
       the cursor, which the loop then reaches — the table is closed when
       the cursor catches up without busting the cap *)
    let rows = ref [] in
    let ok = ref true in
    let i = ref 0 in
    while !ok && !i < !nstates do
      let row = Array.make ncols (-1) in
      (try
         for c = 0 to ncols - 1 do
           match State.trans !states.(!i) cols.(c) with
           | None -> ()
           | Some st' -> (
             match intern st' with
             | Some r -> row.(c) <- r
             | None ->
               ok := false;
               raise Exit)
         done
       with Exit -> ());
      rows := row :: !rows;
      incr i
    done;
    if not !ok then begin
      Atomic.incr failures_total;
      None
    end
    else begin
      let n = !nstates in
      let trans = Array.make (n * ncols) (-1) in
      List.iteri
        (fun k row -> Array.blit row 0 trans ((n - 1 - k) * ncols) ncols)
        !rows;
      let finals = Bytes.make ((n + 7) / 8) '\000' in
      let sts = Array.sub !states 0 n in
      Array.iteri (fun r st -> if State.final st then set_final finals r) sts;
      let prog = { pexpr = e; patterns; cols; nstates = n; trans; finals } in
      Atomic.incr programs_total;
      Some (mk_instance prog (Some sts) ids)
    end

let of_program prog = mk_instance prog None (Hashtbl.create 1)
let program t = t.prog
let expr p = p.pexpr

type info = {
  states : int;
  columns : int;
  has_states : bool;
}

let info t =
  { states = t.prog.nstates;
    columns = Array.length t.prog.cols;
    has_states = t.states <> None }

(* ------------------------------------------------------------------ *)
(* Shared instances                                                    *)
(* ------------------------------------------------------------------ *)

(* Process-global per-expression cache, negative results included: a
   benign session binding its backend must learn "no program" from one
   probe, not from a fresh BFS attempt.  Same shape as [Automaton.shared]:
   one mutex-guarded table all domains compile into — so a program is
   flattened once per process, not once per domain — plus a per-domain
   one-slot fast path tagged with a generation that [reset_shared]
   bumps.

   Auto selection ([shared]) only pays the flattening BFS for Â§6-harmless
   expressions â their spaces are the ones the lazy automaton already
   precompiles eagerly, so the cost matches the table backend's.  A benign
   expression can still have thousands of sizable reachable states under
   the cap, and auto selection runs on every fresh expression (property
   tests mint them by the thousand); those compile only on request
   ([shared_forced], i.e. --engine vm or iexpr compile).  [Declined] keeps
   the two entry points from shadowing each other's verdicts. *)
module ExprTbl = Hashtbl.Make (struct
  type t = Expr.t

  let equal = Expr.equal
  let hash e = Hashtbl.hash_param 256 1024 e
end)

type cached = Prog of t | Failed | Declined

let shared_cap = 256
let shared_mu = Mutex.create ()
let shared_site = Prof.Lock.site "bytecode.shared"
let shared_tbl : cached ExprTbl.t = ExprTbl.create 16
let shared_gen = Atomic.make 0

let shared_slot : (int * Expr.t * cached) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let shared_lookup ~force e =
  let compile_now () =
    match compile e with Some t -> Prog t | None -> Failed
  in
  let fresh () =
    if force then compile_now ()
    else
      match Classify.benignity e with
      | Classify.Harmless -> compile_now ()
      | Classify.Benign _ | Classify.Potentially_malignant -> Declined
  in
  let gen = Atomic.get shared_gen in
  let slot = Domain.DLS.get shared_slot in
  let cached =
    match !slot with
    | Some (g, e0, v) when g = gen && e0 == e && not (force && v = Declined)
      -> v
    | _ ->
      let v =
        Prof.Lock.protect shared_site shared_mu (fun () ->
            match ExprTbl.find_opt shared_tbl e with
            | Some Declined when force ->
              let v = compile_now () in
              ExprTbl.replace shared_tbl e v;
              v
            | Some v -> v
            | None ->
              if ExprTbl.length shared_tbl >= shared_cap then
                ExprTbl.reset shared_tbl;
              let v = fresh () in
              ExprTbl.add shared_tbl e v;
              v)
      in
      slot := Some (gen, e, v);
      v
  in
  match cached with Prog t -> Some t | Failed | Declined -> None

let shared e = shared_lookup ~force:false e
let shared_forced e = shared_lookup ~force:true e

let reset_shared () =
  Prof.Lock.protect shared_site shared_mu (fun () -> ExprTbl.reset shared_tbl);
  Atomic.incr shared_gen;
  Domain.DLS.get shared_slot := None

(* ------------------------------------------------------------------ *)
(* The VM                                                              *)
(* ------------------------------------------------------------------ *)

module Vm = struct
  (* Classify an action into its column; -1 = matches no ground pattern,
     hence rejected by every state (the uniform-reject fast path). *)
  let col_of t (c : Action.concrete) =
    let cache = ccache t in
    match Segtbl.find cache c with
    | col -> col
    | exception Not_found ->
      let col =
        match Hashtbl.find t.dispatch c.Action.cname with
        | exception Not_found -> -1
        | cands ->
          let rec go = function
            | [] -> -1
            | (args, i) :: rest ->
              if List.equal String.equal args c.Action.cargs then i else go rest
          in
          go cands
      in
      Segtbl.add cache c col;
      col

  let start_row = 0
  let final_row t r = r >= 0 && is_final t.prog.finals r

  let step_row t r (c : Action.concrete) =
    if r < 0 then -1
    else
      let col = col_of t c in
      if col < 0 then -1
      else t.prog.trans.((r * Array.length t.prog.cols) + col)

  let step t st c =
    if not (Automaton.active ()) then State.trans st c
    else begin
      Dshard.Tally.bump t.step_tally 1;
      let l = last_cell t in
      let r =
        match l.lst with
        | Some s0 when s0 == st -> l.lrow
        | _ -> (
          match Hashtbl.find_opt t.row_ids (State.id st) with
          | Some r ->
            l.lst <- t.opts.(r);
            l.lrow <- r;
            r
          | None -> -1)
      in
      if r < 0 then begin
        (* a state the program does not carry: an artifact-loaded program,
           or a walk that left through the interpreter *)
        Atomic.incr fallbacks_total;
        State.trans st c
      end
      else
        let col = col_of t c in
        (* the table step is one kernel transition, warm or rejecting,
           exactly like the automaton's (the grant-loop invariant) *)
        State.count_transition ();
        if col < 0 then None
        else
          let r' = t.prog.trans.((r * Array.length t.prog.cols) + col) in
          if r' < 0 then None
          else begin
            let o = t.opts.(r') in
            l.lst <- o;
            l.lrow <- r';
            o
          end
    end

  let word t w =
    if not (Automaton.active ()) then
      match State.trans_word (State.init t.prog.pexpr) w with
      | None -> None
      | Some s -> Some (State.final s)
    else begin
      let ncols = Array.length t.prog.cols in
      let trans = t.prog.trans in
      let steps = ref 0 in
      let rec go r = function
        | [] -> Some (final_row t r)
        | c :: cs ->
          incr steps;
          let col = col_of t c in
          if col < 0 then None
          else
            let r' = trans.((r * ncols) + col) in
            if r' < 0 then None else go r' cs
      in
      let res = go 0 w in
      if !steps > 0 then begin
        ignore (Atomic.fetch_and_add steps_total !steps);
        State.count_transitions !steps
      end;
      res
    end
end

(* ------------------------------------------------------------------ *)
(* Persistence payload                                                 *)
(* ------------------------------------------------------------------ *)

(* Sexp payload; the CRC frame around it lives in the store library.
   The bit string for finals keeps the payload diff-able and the decoder
   trivial to bound-check. *)
let encode p =
  let bits = String.init p.nstates (fun r -> if is_final p.finals r then '1' else '0') in
  Sexp.to_string
    (Sexp.List
       [ Sexp.Atom "bytecode-program";
         Sexp.List [ Sexp.Atom "expr"; Expr.to_sexp p.pexpr ];
         Sexp.List [ Sexp.Atom "alpha"; Alpha.to_sexp (Array.to_list p.patterns) ];
         Sexp.List [ Sexp.Atom "states"; Sexp.Atom (string_of_int p.nstates) ];
         Sexp.List
           (Sexp.Atom "trans"
           :: Array.to_list
                (Array.map (fun v -> Sexp.Atom (string_of_int v)) p.trans));
         Sexp.List [ Sexp.Atom "finals"; Sexp.Atom bits ]
       ])

let decode s =
  let ( let* ) = Result.bind in
  let fail m = Error ("bytecode program: " ^ m) in
  let int_atom = function
    | Sexp.Atom a -> ( match int_of_string_opt a with
      | Some v -> Ok v
      | None -> fail ("not an integer: " ^ a))
    | Sexp.List _ -> fail "expected integer atom"
  in
  match Sexp.of_string s with
  | Error m -> fail ("unparseable payload: " ^ m)
  | Ok
      (Sexp.List
        [ Sexp.Atom "bytecode-program";
          Sexp.List [ Sexp.Atom "expr"; expr_s ];
          Sexp.List [ Sexp.Atom "alpha"; alpha_s ];
          Sexp.List [ Sexp.Atom "states"; n_s ];
          Sexp.List (Sexp.Atom "trans" :: trans_s);
          Sexp.List [ Sexp.Atom "finals"; Sexp.Atom bits ]
        ]) -> (
    let* pexpr =
      try Ok (Expr.of_sexp expr_s)
      with Invalid_argument m -> fail ("bad expression: " ^ m)
    in
    let* alpha =
      try Ok (Alpha.of_sexp alpha_s)
      with Invalid_argument m -> fail ("bad alphabet: " ^ m)
    in
    let* nstates = int_atom n_s in
    if nstates < 1 then fail "no states"
    else
      (* the stored alphabet must be the expression's own ground alphabet:
         a frame that passes the CRC but pairs a table with the wrong
         expression is still rejected *)
      match ground_cols pexpr with
      | None -> fail "expression has a non-ground alphabet"
      | Some pcols ->
        let patterns = Array.of_list (List.map fst pcols) in
        let cols = Array.of_list (List.map snd pcols) in
        if Array.to_list patterns <> alpha then
          fail "alphabet does not match the expression"
        else
          let ncols = Array.length cols in
          let* trans =
            let rec go acc = function
              | [] -> Ok (Array.of_list (List.rev acc))
              | x :: rest ->
                let* v = int_atom x in
                if v < -1 || v >= nstates then
                  fail (Printf.sprintf "transition target %d out of range" v)
                else go (v :: acc) rest
            in
            go [] trans_s
          in
          if Array.length trans <> nstates * ncols then
            fail
              (Printf.sprintf "transition table has %d entries, expected %d"
                 (Array.length trans) (nstates * ncols))
          else if String.length bits <> nstates then fail "finality bitset length"
          else if String.exists (fun ch -> ch <> '0' && ch <> '1') bits then
            fail "finality bitset contents"
          else begin
            let finals = Bytes.make ((nstates + 7) / 8) '\000' in
            String.iteri (fun r ch -> if ch = '1' then set_final finals r) bits;
            Ok { pexpr; patterns; cols; nstates; trans; finals }
          end)
  | Ok _ -> fail "malformed payload"
