(* Two-generation (segmented) memo tables.

   The memo caches previously dropped their whole contents on hitting the
   size cap ([Hashtbl.reset]), so a long-running workload that cycles
   through more than a cap's worth of keys suffered a periodic miss storm:
   every hot entry was rebuilt from scratch right after each flush.  A
   segmented table keeps two generations instead.  Inserts go to the young
   generation; a lookup that only hits in the old generation promotes the
   entry back into the young one; when the young generation reaches the
   per-generation cap, the old generation is discarded and the young one
   takes its place.  Hot entries are promoted before their generation dies,
   so an eviction cycle sheds only the cold tail — retention stays bounded
   by twice the generation cap, and the hit rate no longer collapses at the
   cap boundary.

   Eviction counting is shared: callers inject an [Atomic.t] so several
   tables (and several domains' replicas of them) tally into one probe.

   Ownership: a segtbl is SINGLE-DOMAIN.  The generations are stdlib
   hashtables and even [find_opt] mutates (promotion), so two domains
   sharing one table race on its buckets.  Structures walked by several
   domains keep one segtbl per domain via [Dshard.replica] (the shared
   automaton's signature cache, the VM's column cache) or [Domain.DLS]
   (the state model's memo tables); only the injected eviction counter is
   shared, and it is atomic. *)

type ('k, 'v) t = {
  mutable young : ('k, 'v) Hashtbl.t;
  mutable old : ('k, 'v) Hashtbl.t;
  gen_cap : int;
  evictions : int Atomic.t;
}

let create ?(gen_cap = 1 lsl 15) ~evictions n =
  { young = Hashtbl.create n; old = Hashtbl.create n; gen_cap; evictions }

(* Rotation discards the old generation (everything in it was neither
   inserted nor promoted for a full generation) and recycles its table. *)
let rotate t =
  let dropped = Hashtbl.length t.old in
  if dropped > 0 then ignore (Atomic.fetch_and_add t.evictions dropped);
  let dead = t.old in
  t.old <- t.young;
  Hashtbl.reset dead;
  t.young <- dead

let add t k v =
  if Hashtbl.length t.young >= t.gen_cap then rotate t;
  Hashtbl.replace t.young k v

let find_opt t k =
  match Hashtbl.find_opt t.young k with
  | Some _ as r -> r
  | None -> (
    match Hashtbl.find_opt t.old k with
    | Some v as r ->
      (* promote: a hit proves the entry is hot, keep it across the next
         rotation (the old copy is shadowed and dies with its generation) *)
      add t k v;
      r
    | None -> None)

(* Allocation-free variant of [find_opt] for hot paths: the young-hit case
   neither boxes the result nor allocates a key tuple. *)
let find t k =
  match Hashtbl.find t.young k with
  | v -> v
  | exception Not_found ->
    let v = Hashtbl.find t.old k in
    add t k v;
    v

let length t = Hashtbl.length t.young + Hashtbl.length t.old

let clear t =
  Hashtbl.reset t.young;
  Hashtbl.reset t.old
