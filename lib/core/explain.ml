(* Denial provenance: when τ̂ rejects an action, attribute the rejection to
   a minimal set of blocking subexpression positions.

   The analysis works on a boolean mirror of τ̂'s acceptance ([accepts]):
   a recursive predicate over {!State.view} that answers "could this
   subtree consume c" without building successor states, parameterized by
   a set of {e relaxed} expression positions that are treated as
   accepting.  Relaxing a position is the operational meaning of "remove
   this node's constraint"; the oracle property (test suite) is that the
   mirror with nothing relaxed agrees with τ̂ exactly.

   Blame sets are computed in two steps: a guided recursive walk collects
   a sufficient relaxation cut (choosing the smallest candidate at
   disjunctive nodes, the union of failing branches at conjunctive
   nodes), then a greedy pass 1-minimizes it against [accepts].  The
   mirror is monotone in the relaxed set, so the greedy pass yields a set
   where every member is necessary: un-relaxing any single blamed
   position flips the verdict back to rejection. *)

module SSet = Set.Make (String)

type blame = {
  bpath : int list;  (* expression-position path from the root *)
  locus : string;  (* human-readable rendering of the path *)
  operator : string;  (* node kind carrying the blame *)
  reason : string;
  requires : string list;  (* patterns the blamed subtree could accept *)
}

type explanation = {
  eaction : Action.concrete;
  blames : blame list;
}

(* ------------------------------------------------------------------ *)
(* The acceptance mirror                                               *)
(* ------------------------------------------------------------------ *)

let accepts ?(relaxed = []) (root : State.t) (c : Action.concrete) : bool =
  let rec acc path s =
    List.mem path relaxed
    ||
    match State.view s with
    | State.VAtom { pat; consumed } -> (not consumed) && Action.matches pat c
    | State.VOpt { body } -> acc (path @ [ 0 ]) body
    | State.VSeq { left; rights; zinit } ->
      let zp = path @ [ 1 ] in
      (match left with
      | Some l -> acc (path @ [ 0 ]) l || (State.final l && acc zp zinit)
      | None -> false)
      || List.exists (acc zp) rights
    | State.VSeqIter { actives; yinit } ->
      let bp = path @ [ 0 ] in
      List.exists (acc bp) actives
      || (List.exists State.final actives && acc bp yinit)
    | State.VPar { alts } ->
      List.exists (fun (l, r) -> acc (path @ [ 0 ]) l || acc (path @ [ 1 ]) r) alts
    | State.VParIter { alts; yinit } ->
      let bp = path @ [ 0 ] in
      acc bp yinit || List.exists (List.exists (acc bp)) alts
    | State.VOr { left; right } ->
      let side i st =
        match st with
        | Some s -> acc (path @ [ i ]) s
        | None -> List.mem (path @ [ i ]) relaxed
      in
      side 0 left || side 1 right
    | State.VAnd { left; right } -> acc (path @ [ 0 ]) left && acc (path @ [ 1 ]) right
    | State.VSync { left; right; la; ra } ->
      let inl = Alpha.mem la c and inr = Alpha.mem ra c in
      if (not inl) && not inr then false
      else
        ((not inl) || acc (path @ [ 0 ]) left)
        && ((not inr) || acc (path @ [ 1 ]) right)
    | State.VSome { param; insts; dead; template; balpha } ->
      let bp = path @ [ 0 ] in
      let cands = Alpha.candidates param balpha c in
      let in_free = Alpha.mem balpha c in
      let cset = SSet.of_list cands in
      let relevant v = in_free || SSet.mem v cset in
      let taken =
        List.fold_left (fun s v -> SSet.add v s)
          (List.fold_left (fun s (v, _) -> SSet.add v s) SSet.empty insts)
          dead
      in
      List.exists (fun (v, s) -> relevant v && acc bp s) insts
      || (match template with
         | None -> false
         | Some tpl ->
           acc bp tpl
           || List.exists
                (fun v ->
                  (not (SSet.mem v taken)) && acc bp (State.materialize param v tpl))
                cands)
    | State.VAll { param; alts; template; balpha } ->
      let bp = path @ [ 0 ] in
      let cands = Alpha.candidates param balpha c in
      let in_free = Alpha.mem balpha c in
      let cset = SSet.of_list cands in
      let relevant v = in_free || SSet.mem v cset in
      let alt_ok (bound, anon) =
        let not_bound v = not (List.mem_assoc v bound) in
        List.exists (fun (v, s) -> relevant v && acc bp s) bound
        || List.exists
             (fun w ->
               (in_free && acc bp w)
               || List.exists
                    (fun v -> not_bound v && acc bp (State.materialize param v w))
                    cands)
             anon
        || (in_free && acc bp template)
        || List.exists
             (fun v -> not_bound v && acc bp (State.materialize param v template))
             cands
      in
      List.exists alt_ok alts
    | State.VSyncQ { param; insts; template; balpha } ->
      let bp = path @ [ 0 ] in
      let all_cands = Alpha.candidates param balpha c in
      let cands = List.filter (fun v -> not (List.mem_assoc v insts)) all_cands in
      let in_fresh = Alpha.mem balpha c in
      let cset = SSet.of_list all_cands in
      let relevant v = in_fresh || SSet.mem v cset in
      (cands <> [] || in_fresh || List.exists (fun (v, _) -> relevant v) insts)
      && List.for_all (fun (v, s) -> (not (relevant v)) || acc bp s) insts
      && List.for_all (fun v -> acc bp (State.materialize param v template)) cands
      && ((not in_fresh) || acc bp template)
    | State.VAndQ { param; insts; template; balpha } ->
      let bp = path @ [ 0 ] in
      let all_cands = Alpha.candidates param balpha c in
      let cands = List.filter (fun v -> not (List.mem_assoc v insts)) all_cands in
      let in_free = Alpha.mem balpha c in
      let cset = SSet.of_list all_cands in
      let relevant v = in_free || SSet.mem v cset in
      List.for_all (fun (v, s) -> relevant v && acc bp s) insts
      && List.for_all (fun v -> acc bp (State.materialize param v template)) cands
      && acc bp template
  in
  acc [] root

(* ------------------------------------------------------------------ *)
(* Frontier: what a subtree could currently accept                      *)
(* ------------------------------------------------------------------ *)

let frontier (root : State.t) : string list =
  let seen = Hashtbl.create 32 in
  let out = ref [] in
  let add pat =
    let k = Action.to_string pat in
    if not (List.mem k !out) then out := k :: !out
  in
  let rec go s =
    if not (Hashtbl.mem seen (State.id s)) then begin
      Hashtbl.add seen (State.id s) ();
      match State.view s with
      | State.VAtom { pat; consumed } -> if not consumed then add pat
      | State.VOpt { body } -> go body
      | State.VSeq { left; rights; zinit } ->
        Option.iter go left;
        List.iter go rights;
        (match left with Some l when State.final l -> go zinit | _ -> ())
      | State.VSeqIter { actives; yinit } ->
        List.iter go actives;
        if List.exists State.final actives then go yinit
      | State.VPar { alts } ->
        List.iter
          (fun (l, r) ->
            go l;
            go r)
          alts
      | State.VParIter { alts; yinit } ->
        List.iter (List.iter go) alts;
        go yinit
      | State.VOr { left; right } ->
        Option.iter go left;
        Option.iter go right
      | State.VAnd { left; right } | State.VSync { left; right; _ } ->
        go left;
        go right
      | State.VSome { insts; template; _ } ->
        List.iter (fun (_, s) -> go s) insts;
        Option.iter go template
      | State.VAll { alts; template; _ } ->
        List.iter
          (fun (bound, anon) ->
            List.iter (fun (_, s) -> go s) bound;
            List.iter go anon)
          alts;
        go template
      | State.VSyncQ { insts; template; _ } | State.VAndQ { insts; template; _ } ->
        List.iter (fun (_, s) -> go s) insts;
        go template
    end
  in
  go root;
  List.rev !out

let truncate_requires l =
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> [ "..." ]
    | x :: rest -> x :: take (n - 1) rest
  in
  take 8 l

(* ------------------------------------------------------------------ *)
(* The guided cut                                                      *)
(* ------------------------------------------------------------------ *)

let render_trail trail =
  match trail with [] -> "(root)" | _ -> String.concat "/" (List.rev trail)

let cut_candidate_cap = 16

let raw_cut (root : State.t) (c : Action.concrete) : blame list =
  let acc0 s = accepts s c in
  let blame trail path ~operator ~reason ~requires =
    [ { bpath = path; locus = render_trail trail; operator; reason;
        requires = truncate_requires requires } ]
  in
  let best = function
    | [] -> None
    | x :: rest ->
      Some
        (List.fold_left
           (fun b y -> if List.length y < List.length b then y else b)
           x rest)
  in
  let cap l =
    let rec take n = function
      | [] -> []
      | _ when n = 0 -> []
      | x :: rest -> x :: take (n - 1) rest
    in
    take cut_candidate_cap l
  in
  let cstr = Action.concrete_to_string c in
  let rec cut trail path s =
    match State.view s with
    | State.VAtom { pat; consumed } ->
      let pstr = Action.to_string pat in
      let reason =
        if consumed then Printf.sprintf "atom %s already consumed" pstr
        else Printf.sprintf "expects %s, not %s" pstr cstr
      in
      blame (("atom " ^ pstr) :: trail) path ~operator:"atom" ~reason
        ~requires:(if consumed then [] else [ pstr ])
    | State.VOpt { body } -> cut ("opt" :: trail) (path @ [ 0 ]) body
    | State.VSeq { left; rights; zinit } ->
      let lp = path @ [ 0 ] and zp = path @ [ 1 ] in
      let options =
        (match left with Some l -> [ cut ("seq.left" :: trail) lp l ] | None -> [])
        @ List.map (fun r -> cut ("seq.right" :: trail) zp r) rights
        @ (match left with
          | Some l when State.final l -> [ cut ("seq.cross" :: trail) zp zinit ]
          | _ -> [])
      in
      (match best options with
      | Some b -> b
      | None ->
        blame ("seq" :: trail) path ~operator:"seq"
          ~reason:"sequence has no live position for this action"
          ~requires:(frontier s))
    | State.VSeqIter { actives; yinit } ->
      let bp = path @ [ 0 ] in
      let options =
        List.map (fun a -> cut ("iter" :: trail) bp a) actives
        @
        if List.exists State.final actives then
          [ cut ("iter.restart" :: trail) bp yinit ]
        else []
      in
      (match best options with
      | Some b -> b
      | None ->
        blame ("iter" :: trail) path ~operator:"iteration"
          ~reason:"iteration exhausted: no active or restarted pass accepts"
          ~requires:(frontier s))
    | State.VPar { alts } ->
      let options =
        List.concat_map
          (fun (l, r) ->
            [ cut ("par.left" :: trail) (path @ [ 0 ]) l;
              cut ("par.right" :: trail) (path @ [ 1 ]) r ])
          alts
      in
      (match best (cap options) with
      | Some b -> b
      | None ->
        blame ("par" :: trail) path ~operator:"par"
          ~reason:"no parallel alternative accepts" ~requires:(frontier s))
    | State.VParIter { alts; yinit } ->
      let bp = path @ [ 0 ] in
      let options =
        cut ("pariter.start" :: trail) bp yinit
        :: List.concat_map (List.map (fun w -> cut ("pariter" :: trail) bp w)) alts
      in
      (match best (cap options) with
      | Some b -> b
      | None -> assert false)
    | State.VOr { left; right } ->
      let side i name st =
        match st with
        | Some s -> cut (name :: trail) (path @ [ i ]) s
        | None ->
          blame (name :: trail)
            (path @ [ i ])
            ~operator:"or-branch" ~reason:"alternative already exhausted (branch is dead)"
            ~requires:[]
      in
      (match best [ side 0 "or.left" left; side 1 "or.right" right ] with
      | Some b -> b
      | None -> assert false)
    | State.VAnd { left; right } ->
      let parts =
        (if not (acc0 left) then cut ("and.left" :: trail) (path @ [ 0 ]) left else [])
        @
        if not (acc0 right) then cut ("and.right" :: trail) (path @ [ 1 ]) right else []
      in
      if parts <> [] then parts
      else
        blame ("and" :: trail) path ~operator:"and"
          ~reason:"conjunction branches disagree" ~requires:(frontier s)
    | State.VSync { left; right; la; ra } ->
      let inl = Alpha.mem la c and inr = Alpha.mem ra c in
      if (not inl) && not inr then
        blame ("sync" :: trail) path ~operator:"sync"
          ~reason:
            (Printf.sprintf "%s is outside the coupling alphabet of both operands" cstr)
          ~requires:(frontier s)
      else
        let parts =
          (if inl && not (acc0 left) then
             cut ("sync.left" :: trail) (path @ [ 0 ]) left
           else [])
          @
          if inr && not (acc0 right) then
            cut ("sync.right" :: trail) (path @ [ 1 ]) right
          else []
        in
        if parts <> [] then parts
        else
          blame ("sync" :: trail) path ~operator:"sync"
            ~reason:"synchronization partners disagree" ~requires:(frontier s)
    | State.VSome { param; insts; dead = _; template; balpha } ->
      let bp = path @ [ 0 ] in
      let cands = Alpha.candidates param balpha c in
      let in_free = Alpha.mem balpha c in
      let cset = SSet.of_list cands in
      let relevant v = in_free || SSet.mem v cset in
      let options =
        List.filter_map
          (fun (v, s) ->
            if relevant v then
              Some (cut (Printf.sprintf "some %s[%s]" param v :: trail) bp s)
            else None)
          insts
        @ (match template with
          | None -> []
          | Some tpl ->
            cut (Printf.sprintf "some %s[fresh]" param :: trail) bp tpl
            :: List.filter_map
                 (fun v ->
                   if List.mem_assoc v insts then None
                   else
                     Some
                       (cut
                          (Printf.sprintf "some %s[%s]" param v :: trail)
                          bp
                          (State.materialize param v tpl)))
                 cands)
      in
      (match best (cap options) with
      | Some b -> b
      | None ->
        blame (("some " ^ param) :: trail) path ~operator:"some-quantifier"
          ~reason:
            (Printf.sprintf "no instance (materialized or fresh) may consume %s" cstr)
          ~requires:(frontier s))
    | State.VAll { param; alts; template; balpha } ->
      let bp = path @ [ 0 ] in
      let cands = Alpha.candidates param balpha c in
      let in_free = Alpha.mem balpha c in
      let cset = SSet.of_list cands in
      let relevant v = in_free || SSet.mem v cset in
      let options =
        List.concat_map
          (fun (bound, anon) ->
            let not_bound v = not (List.mem_assoc v bound) in
            List.filter_map
              (fun (v, s) ->
                if relevant v then
                  Some (cut (Printf.sprintf "all %s[%s]" param v :: trail) bp s)
                else None)
              bound
            @ List.concat_map
                (fun w ->
                  (if in_free then
                     [ cut (Printf.sprintf "all %s[anon]" param :: trail) bp w ]
                   else [])
                  @ List.filter_map
                      (fun v ->
                        if not_bound v then
                          Some
                            (cut
                               (Printf.sprintf "all %s[%s]" param v :: trail)
                               bp
                               (State.materialize param v w))
                        else None)
                      cands)
                anon
            @ (if in_free then
                 [ cut (Printf.sprintf "all %s[new]" param :: trail) bp template ]
               else [])
            @ List.filter_map
                (fun v ->
                  if not_bound v then
                    Some
                      (cut
                         (Printf.sprintf "all %s[%s:new]" param v :: trail)
                         bp
                         (State.materialize param v template))
                  else None)
                cands)
          alts
      in
      (match best (cap options) with
      | Some b -> b
      | None ->
        blame (("all " ^ param) :: trail) path ~operator:"all-quantifier"
          ~reason:(Printf.sprintf "no instance may consume %s" cstr)
          ~requires:(frontier s))
    | State.VSyncQ { param; insts; template; balpha } ->
      let bp = path @ [ 0 ] in
      let all_cands = Alpha.candidates param balpha c in
      let cands = List.filter (fun v -> not (List.mem_assoc v insts)) all_cands in
      let in_fresh = Alpha.mem balpha c in
      let cset = SSet.of_list all_cands in
      let relevant v = in_fresh || SSet.mem v cset in
      if
        not (cands <> [] || in_fresh || List.exists (fun (v, _) -> relevant v) insts)
      then
        blame (("sync " ^ param) :: trail) path ~operator:"sync-quantifier"
          ~reason:(Printf.sprintf "%s is outside the quantified alphabet" cstr)
          ~requires:(frontier s)
      else
        let parts =
          List.concat_map
            (fun (v, s) ->
              if relevant v && not (acc0 s) then
                cut (Printf.sprintf "sync %s[%s]" param v :: trail) bp s
              else [])
            insts
          @ List.concat_map
              (fun v ->
                let m = State.materialize param v template in
                if not (acc0 m) then
                  cut (Printf.sprintf "sync %s[%s:new]" param v :: trail) bp m
                else [])
              cands
          @
          if in_fresh && not (acc0 template) then
            cut (Printf.sprintf "sync %s[fresh]" param :: trail) bp template
          else []
        in
        if parts <> [] then parts
        else
          blame (("sync " ^ param) :: trail) path ~operator:"sync-quantifier"
            ~reason:"synchronization partners disagree" ~requires:(frontier s)
    | State.VAndQ { param; insts; template; balpha } ->
      let bp = path @ [ 0 ] in
      let all_cands = Alpha.candidates param balpha c in
      let cands = List.filter (fun v -> not (List.mem_assoc v insts)) all_cands in
      let in_free = Alpha.mem balpha c in
      let cset = SSet.of_list all_cands in
      let relevant v = in_free || SSet.mem v cset in
      let parts =
        List.concat_map
          (fun (v, s) ->
            if not (relevant v) then
              blame (("conj " ^ param) :: trail) path ~operator:"conj-quantifier"
                ~reason:
                  (Printf.sprintf "instance %s cannot consume %s (outside its alphabet)"
                     v cstr)
                ~requires:(frontier s)
            else if not (acc0 s) then
              cut (Printf.sprintf "conj %s[%s]" param v :: trail) bp s
            else [])
          insts
        @ List.concat_map
            (fun v ->
              let m = State.materialize param v template in
              if not (acc0 m) then
                cut (Printf.sprintf "conj %s[%s:new]" param v :: trail) bp m
              else [])
            cands
        @
        if not (acc0 template) then
          cut (Printf.sprintf "conj %s[fresh]" param :: trail) bp template
        else []
      in
      if parts <> [] then parts
      else
        blame (("conj " ^ param) :: trail) path ~operator:"conj-quantifier"
          ~reason:"conjunction instances disagree" ~requires:(frontier s)
  in
  cut [] [] root

(* ------------------------------------------------------------------ *)
(* Minimization and the public entry points                             *)
(* ------------------------------------------------------------------ *)

let root_blame c =
  { bpath = [];
    locus = "(root)";
    operator = "expression";
    reason =
      Printf.sprintf "the expression cannot consume %s in its current state"
        (Action.concrete_to_string c);
    requires = [] }

let minimize (s : State.t) (c : Action.concrete) (blames : blame list) : blame list =
  let dedup =
    List.fold_left
      (fun acc b -> if List.exists (fun b' -> b'.bpath = b.bpath) acc then acc else b :: acc)
      [] blames
    |> List.rev
  in
  let ok set = accepts ~relaxed:(List.map (fun b -> b.bpath) set) s c in
  if not (ok dedup) then [ root_blame c ]
  else
    (* Greedy 1-minimization.  [accepts] is monotone in the relaxed set, so
       a blame kept because dropping it broke acceptance stays necessary as
       later blames are dropped: the final set is 1-minimal. *)
    let rec go kept = function
      | [] -> kept
      | b :: rest -> if ok (kept @ rest) then go kept rest else go (kept @ [ b ]) rest
    in
    go [] dedup

let explain (s : State.t) (c : Action.concrete) : explanation option =
  if accepts s c then None
  else Some { eaction = c; blames = minimize s c (raw_cut s c) }

let explain_word (e : Expr.t) (w : Action.concrete list) :
    (int * Action.concrete * explanation, State.t) result =
  let rec go i s = function
    | [] -> Error s
    | c :: rest -> (
      match State.trans s c with
      | Some s' -> go (i + 1) s' rest
      | None -> (
        match explain s c with
        | Some x -> Ok (i, c, x)
        | None ->
          (* mirror/τ̂ disagreement would be a bug; surface it honestly *)
          Ok (i, c, { eaction = c; blames = [ root_blame c ] })))
  in
  go 0 (State.init e) w

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let blame_to_string b =
  Printf.sprintf "%s: %s%s" b.locus b.reason
    (match b.requires with
    | [] -> ""
    | rs -> Printf.sprintf " (can accept: %s)" (String.concat ", " rs))

let to_string x =
  String.concat "\n"
    (Printf.sprintf "denied: %s" (Action.concrete_to_string x.eaction)
    :: List.map (fun b -> "  - " ^ blame_to_string b) x.blames)

let summary x =
  String.concat "; " (List.map (fun b -> b.locus ^ ": " ^ b.reason) x.blames)

let max_payload_blames = 4

let fields x =
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | b :: rest -> b :: take (n - 1) rest
  in
  ("blame_count", Telemetry.Int (List.length x.blames))
  :: List.concat
       (List.mapi
          (fun i b ->
            [ (Printf.sprintf "blame%d_locus" i, Telemetry.Str b.locus);
              (Printf.sprintf "blame%d_op" i, Telemetry.Str b.operator);
              (Printf.sprintf "blame%d_reason" i, Telemetry.Str b.reason) ])
          (take max_payload_blames x.blames))
