type t =
  | Atom of Action.t
  | Opt of t
  | Seq of t * t
  | SeqIter of t
  | Par of t * t
  | ParIter of t
  | Or of t * t
  | And of t * t
  | Sync of t * t
  | SomeQ of Action.param * t
  | AllQ of Action.param * t
  | SyncQ of Action.param * t
  | AndQ of Action.param * t

let atom name args = Atom (Action.make name args)
let act name args = Atom (Action.make name (List.map Action.value args))
let opt y = Opt y
let seq y z = Seq (y, z)

let nest op what = function
  | [] -> invalid_arg (what ^ ": empty operand list")
  | [ y ] -> y
  | y :: rest -> List.fold_left op y rest

let seq_list ys = nest seq "Expr.seq_list" ys
let seq_iter y = SeqIter y
let par y z = Par (y, z)
let par_list ys = nest par "Expr.par_list" ys
let par_iter y = ParIter y
let alt y z = Or (y, z)
let alt_list ys = nest alt "Expr.alt_list" ys
let conj y z = And (y, z)
let conj_list ys = nest conj "Expr.conj_list" ys
let sync y z = Sync (y, z)
let sync_list ys = nest sync "Expr.sync_list" ys
let some_q p y = SomeQ (p, y)
let all_q p y = AllQ (p, y)
let sync_q p y = SyncQ (p, y)
let and_q p y = AndQ (p, y)

(* A free parameter matches no concrete action, so this atom accepts no
   word but the empty one as a partial word; its option accepts exactly ⟨⟩.
   The '%' prefix is rejected by the parser, keeping the parameter free. *)
let epsilon = Opt (Atom (Action.make "%never" [ Action.param "%eps" ]))

let times n y =
  if n < 0 then invalid_arg "Expr.times: negative multiplicity"
  else if n = 0 then epsilon
  else par_list (List.init n (fun _ -> y))

let mutex branches = seq_iter (alt_list branches)

let activity name args = Seq (Atom (Action.make (name ^ "_s") args), Atom (Action.make (name ^ "_t") args))
let start_action name args = Action.conc (name ^ "_s") args
let term_action name args = Action.conc (name ^ "_t") args

let rec fold_atoms f acc bound = function
  | Atom a -> f acc bound a
  | Opt y | SeqIter y | ParIter y -> fold_atoms f acc bound y
  | Seq (y, z) | Par (y, z) | Or (y, z) | And (y, z) | Sync (y, z) ->
    fold_atoms f (fold_atoms f acc bound y) bound z
  | SomeQ (p, y) | AllQ (p, y) | SyncQ (p, y) | AndQ (p, y) ->
    fold_atoms f acc (p :: bound) y

let free_params e =
  let add acc bound a =
    let free p = (not (List.mem p bound)) && not (List.mem p acc) in
    List.fold_left (fun acc p -> if free p then p :: acc else acc) acc (Action.params a)
  in
  List.rev (fold_atoms add [] [] e)

let rec subst p v = function
  | Atom a -> Atom (Action.subst p v a)
  | Opt y -> Opt (subst p v y)
  | Seq (y, z) -> Seq (subst p v y, subst p v z)
  | SeqIter y -> SeqIter (subst p v y)
  | Par (y, z) -> Par (subst p v y, subst p v z)
  | ParIter y -> ParIter (subst p v y)
  | Or (y, z) -> Or (subst p v y, subst p v z)
  | And (y, z) -> And (subst p v y, subst p v z)
  | Sync (y, z) -> Sync (subst p v y, subst p v z)
  | SomeQ (q, y) as e -> if String.equal p q then e else SomeQ (q, subst p v y)
  | AllQ (q, y) as e -> if String.equal p q then e else AllQ (q, subst p v y)
  | SyncQ (q, y) as e -> if String.equal p q then e else SyncQ (q, subst p v y)
  | AndQ (q, y) as e -> if String.equal p q then e else AndQ (q, subst p v y)

let atoms e =
  let add acc _bound a = if List.exists (Action.equal a) acc then acc else a :: acc in
  List.rev (fold_atoms add [] [] e)

let values e =
  let add acc _bound (a : Action.t) =
    List.fold_left
      (fun acc -> function
        | Action.Value v when not (List.mem v acc) -> v :: acc
        | Action.Value _ | Action.Param _ -> acc)
      acc a.Action.args
  in
  List.rev (fold_atoms add [] [] e)

let rec size = function
  | Atom _ -> 1
  | Opt y | SeqIter y | ParIter y | SomeQ (_, y) | AllQ (_, y) | SyncQ (_, y) | AndQ (_, y) ->
    1 + size y
  | Seq (y, z) | Par (y, z) | Or (y, z) | And (y, z) | Sync (y, z) -> 1 + size y + size z

let census e =
  let tbl = Hashtbl.create 16 in
  let bump k = Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)) in
  let rec go = function
    | Atom _ -> bump "atom"
    | Opt y ->
      bump "opt";
      go y
    | Seq (y, z) ->
      bump "seq";
      go y;
      go z
    | SeqIter y ->
      bump "iter";
      go y
    | Par (y, z) ->
      bump "par";
      go y;
      go z
    | ParIter y ->
      bump "pariter";
      go y
    | Or (y, z) ->
      bump "or";
      go y;
      go z
    | And (y, z) ->
      bump "and";
      go y;
      go z
    | Sync (y, z) ->
      bump "sync";
      go y;
      go z
    | SomeQ (_, y) ->
      bump "some-q";
      go y
    | AllQ (_, y) ->
      bump "all-q";
      go y
    | SyncQ (_, y) ->
      bump "sync-q";
      go y
    | AndQ (_, y) ->
      bump "and-q";
      go y
  in
  go e;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

let compare = Stdlib.compare
let equal a b = compare a b = 0

let rec pp ppf = function
  | Atom a -> Action.pp ppf a
  | Opt y -> Format.fprintf ppf "@[<hv 2>opt(%a)@]" pp y
  | Seq (y, z) -> Format.fprintf ppf "@[<hv 2>seq(%a,@ %a)@]" pp y pp z
  | SeqIter y -> Format.fprintf ppf "@[<hv 2>iter(%a)@]" pp y
  | Par (y, z) -> Format.fprintf ppf "@[<hv 2>par(%a,@ %a)@]" pp y pp z
  | ParIter y -> Format.fprintf ppf "@[<hv 2>pariter(%a)@]" pp y
  | Or (y, z) -> Format.fprintf ppf "@[<hv 2>or(%a,@ %a)@]" pp y pp z
  | And (y, z) -> Format.fprintf ppf "@[<hv 2>and(%a,@ %a)@]" pp y pp z
  | Sync (y, z) -> Format.fprintf ppf "@[<hv 2>sync(%a,@ %a)@]" pp y pp z
  | SomeQ (p, y) -> Format.fprintf ppf "@[<hv 2>some %s:@ %a@]" p pp y
  | AllQ (p, y) -> Format.fprintf ppf "@[<hv 2>all %s:@ %a@]" p pp y
  | SyncQ (p, y) -> Format.fprintf ppf "@[<hv 2>sync %s:@ %a@]" p pp y
  | AndQ (p, y) -> Format.fprintf ppf "@[<hv 2>conj %s:@ %a@]" p pp y

let to_string e = Format.asprintf "%a" pp e

let rec to_sexp = function
  | Atom a -> Action.to_sexp a
  | Opt y -> Sexp.List [ Sexp.Atom "opt"; to_sexp y ]
  | Seq (y, z) -> Sexp.List [ Sexp.Atom "seq"; to_sexp y; to_sexp z ]
  | SeqIter y -> Sexp.List [ Sexp.Atom "iter"; to_sexp y ]
  | Par (y, z) -> Sexp.List [ Sexp.Atom "par"; to_sexp y; to_sexp z ]
  | ParIter y -> Sexp.List [ Sexp.Atom "pariter"; to_sexp y ]
  | Or (y, z) -> Sexp.List [ Sexp.Atom "or"; to_sexp y; to_sexp z ]
  | And (y, z) -> Sexp.List [ Sexp.Atom "and"; to_sexp y; to_sexp z ]
  | Sync (y, z) -> Sexp.List [ Sexp.Atom "sync"; to_sexp y; to_sexp z ]
  | SomeQ (p, y) -> Sexp.List [ Sexp.Atom "some-q"; Sexp.Atom p; to_sexp y ]
  | AllQ (p, y) -> Sexp.List [ Sexp.Atom "all-q"; Sexp.Atom p; to_sexp y ]
  | SyncQ (p, y) -> Sexp.List [ Sexp.Atom "sync-q"; Sexp.Atom p; to_sexp y ]
  | AndQ (p, y) -> Sexp.List [ Sexp.Atom "and-q"; Sexp.Atom p; to_sexp y ]

let rec of_sexp = function
  | Sexp.List (Sexp.Atom "act" :: _) as s -> Atom (Action.of_sexp s)
  | Sexp.List [ Sexp.Atom "opt"; y ] -> Opt (of_sexp y)
  | Sexp.List [ Sexp.Atom "seq"; y; z ] -> Seq (of_sexp y, of_sexp z)
  | Sexp.List [ Sexp.Atom "iter"; y ] -> SeqIter (of_sexp y)
  | Sexp.List [ Sexp.Atom "par"; y; z ] -> Par (of_sexp y, of_sexp z)
  | Sexp.List [ Sexp.Atom "pariter"; y ] -> ParIter (of_sexp y)
  | Sexp.List [ Sexp.Atom "or"; y; z ] -> Or (of_sexp y, of_sexp z)
  | Sexp.List [ Sexp.Atom "and"; y; z ] -> And (of_sexp y, of_sexp z)
  | Sexp.List [ Sexp.Atom "sync"; y; z ] -> Sync (of_sexp y, of_sexp z)
  | Sexp.List [ Sexp.Atom "some-q"; Sexp.Atom p; y ] -> SomeQ (p, of_sexp y)
  | Sexp.List [ Sexp.Atom "all-q"; Sexp.Atom p; y ] -> AllQ (p, of_sexp y)
  | Sexp.List [ Sexp.Atom "sync-q"; Sexp.Atom p; y ] -> SyncQ (p, of_sexp y)
  | Sexp.List [ Sexp.Atom "and-q"; Sexp.Atom p; y ] -> AndQ (p, of_sexp y)
  | _ -> invalid_arg "Expr.of_sexp: bad expression"
