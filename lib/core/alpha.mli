(** Alphabets α(x) of interaction expressions (Table 8, last column).

    The alphabet of an expression with quantifiers is conceptually the
    infinite set obtained by expanding every quantifier over all of Ω.  We
    represent it finitely as a list of {e patterns} in which each argument
    position is classified:

    - [Val v] — a concrete value; matches exactly [v];
    - [Bound k] — a parameter bound by quantifier number [k] {e inside} the
      expression; the expansion over Ω makes it match any value, but all
      positions of one pattern carrying the same binder must match the
      {e same} value (the expansion substitutes one value per binder);
    - [Free p] — a parameter free in the expression (bound by an enclosing
      quantifier template, or genuinely unbound); it behaves as a fresh
      symbol distinct from every concrete value and matches nothing.

    Alphabets drive the synchronization (coupling) operator: an action not
    in α(y) is shuffled past [y] via the complement language κx(y)*. *)

type aarg =
  | Val of Action.value
  | Bound of int
  | Free of Action.param

type pattern = {
  pname : string;
  pargs : aarg list;
}

type t = pattern list

val of_expr : Expr.t -> t
(** Alphabet patterns of an expression, deduplicated.  Results are memoized
    per expression (see {!set_memoization}). *)

val set_memoization : bool -> unit
(** Enable/disable the {!of_expr} cache.  On by default; switched off only
    by the experiment harness (via [State.set_memoization]) to measure the
    cache's effect. *)

val memoization : unit -> bool

val cache_stats : unit -> int * int
(** [(hits, misses)] of the {!of_expr} memo cache since start (or the last
    {!reset_cache_stats}).  Always counted — one int bump per lookup — and
    exported to the telemetry registry as the [alpha_memo_*] probes. *)

val reset_cache_stats : unit -> unit

val mem : t -> Action.concrete -> bool
(** [mem alpha c] — does the concrete action [c] belong to the (expanded)
    alphabet?  [Free] positions match nothing. *)

val sig_match : pattern -> Action.concrete -> (int * Action.value) list option
(** Signature match of one pattern, for the compiled kernel's action
    classifier ({!Automaton}): [None] when the pattern cannot match [c]
    ([Free] positions match nothing), otherwise the binder assignment
    (binder number → value, sorted) under which it does.  Two concrete
    actions with identical signatures across an expression's whole
    alphabet are indistinguishable to every state of that expression. *)

val candidates : Action.param -> t -> Action.concrete -> Action.value list
(** [candidates p alpha c] — the values [v] such that binding [p := v]
    (consistently) makes some pattern containing [Free p] match [c].  These
    are exactly the quantifier instances whose behaviour on [c] can differ
    from the fresh-instance template.  Deduplicated. *)

val subst : Action.param -> Action.value -> t -> t
(** Replace [Free p] positions by [Val v]. *)

val pp : Format.formatter -> t -> unit

(** {1 Persistence} *)

val to_sexp : t -> Sexp.t

val of_sexp : Sexp.t -> t
(** @raise Invalid_argument on malformed input. *)
