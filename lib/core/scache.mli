(** Bounded direct-mapped successor cache for the tentative-transition
    pattern: [(state, action) -> successor].

    The Fig. 9 grant loop computes a successor tentatively ([permitted])
    and then commits it ([try_action]); the coordination protocol does the
    same across an ask → confirm round trip.  A one-slot memo serves that
    pattern only when nothing intervenes — this cache keeps a small
    direct-mapped working set instead, so interleaved queries (other
    clients polling, worklists re-checking markings) no longer evict the
    pair being committed.

    Soundness: the transition function is pure and states are hash-consed,
    so entries never need invalidation — a hit always returns the correct
    successor.  The structure is SINGLE-DOMAIN (per session route): the
    engine keeps one replica per domain via {!Dshard.replica}, so a
    session handed across domains starts with a cold cache there instead
    of racing on one array.  Replica creations are counted and exported
    as the [scache_replicas_total] / [scache_cross_domain_replicas_total]
    probes. *)

type t

val create : ?slots:int -> unit -> t
(** [slots] is rounded up to a power of two; default 32. *)

val size : t -> int
(** Actual slot count. *)

val find : t -> State.t -> Action.concrete -> State.t option option
(** [Some succ] on a hit ([succ = None] means the cached transition was a
    rejection); [None] on a miss. *)

val add : t -> State.t -> Action.concrete -> State.t option -> unit

val clear : t -> unit

val count_replica : cross:bool -> unit
(** Record the creation of a per-domain replica; [cross] when the session
    was already populated by another domain (a cross-domain handoff). *)

val replica_stats : unit -> int * int
(** [(replicas, cross_domain_replicas)] since process start. *)
