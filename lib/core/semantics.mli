(** Formal (denotational) semantics of interaction expressions — a direct
    implementation of Table 8.

    [complete x w] and [partial x w] decide [w ∈ Φ(x)] and [w ∈ Ψ(x)] by
    structural recursion over [x], enumerating splits, shuffle
    decompositions, and quantifier instantiations.  As Section 4 of the
    paper observes, this is {e hopelessly inefficient} (exponential in the
    word length) — it exists as (a) the correctness oracle against which the
    operational state model ({!State}) is property-tested, and (b) the
    baseline of experiment E4.

    Quantifiers range over the infinite domain Ω.  By symmetry, an
    instantiation with a value occurring neither in the word nor in the
    expression behaves like any other such "fresh" value, so the infinite
    union/intersection/shuffle reduces to the finitely many {e relevant}
    values plus one fresh representative — the same reduction the paper's
    auxiliary finite-state theorem rests on. *)

type word = Action.concrete list

val complete : Expr.t -> word -> bool
(** [complete x w] ⇔ [w ∈ Φ(x)]. *)

val partial : Expr.t -> word -> bool
(** [partial x w] ⇔ [w ∈ Ψ(x)]. *)

type verdict =
  | Illegal
  | Partial
  | Complete

val verdict_to_int : verdict -> int
(** Fig. 9 encoding: 0 = illegal, 1 = partial, 2 = complete. *)

val pp_verdict : Format.formatter -> verdict -> unit

val word : Expr.t -> word -> verdict
(** Word problem by the formal semantics (Φ ⊆ Ψ makes the three verdicts a
    total classification). *)

val language : max_len:int -> universe:Action.concrete list -> Expr.t -> word list
(** All complete words of length ≤ [max_len] over the given finite action
    universe, in length-lexicographic order.  Exponential; for tests and
    demos only. *)

val fresh_value : Expr.t -> word -> Action.value
(** A value occurring neither in the expression nor in the word. *)
