let random_trace ?(seed = 1) ?values ~length e =
  let rng = Random.State.make [| seed |] in
  let alphabet = Array.of_list (Language.concrete_alphabet ?values e) in
  if Array.length alphabet = 0 then []
  else begin
    let session = Engine.create e in
    let rec go n acc =
      if n = 0 then List.rev acc
      else
        let permitted =
          Array.to_list alphabet |> List.filter (Engine.permitted session)
        in
        match permitted with
        | [] -> List.rev acc
        | choices ->
          let a = List.nth choices (Random.State.int rng (List.length choices)) in
          assert (Engine.try_action session a);
          go (n - 1) (a :: acc)
    in
    go length []
  end

let random_complete ?(seed = 1) ?values ?(max_len = 40) ?(attempts = 50) e =
  let rng = Random.State.make [| seed |] in
  let alphabet = Array.of_list (Language.concrete_alphabet ?values e) in
  let attempt k =
    let session = Engine.create e in
    let rec go n acc =
      if Engine.is_final session && (n = 0 || Random.State.int rng 3 = 0) then
        Some (List.rev acc)
      else if n = 0 then if Engine.is_final session then Some (List.rev acc) else None
      else
        let permitted =
          Array.to_list alphabet |> List.filter (Engine.permitted session)
        in
        match permitted with
        | [] -> if Engine.is_final session then Some (List.rev acc) else None
        | choices ->
          let a = List.nth choices (Random.State.int rng (List.length choices)) in
          assert (Engine.try_action session a);
          go (n - 1) (a :: acc)
    in
    ignore k;
    go max_len []
  in
  let rec loop k = if k = 0 then None else
    match attempt k with Some w -> Some w | None -> loop (k - 1)
  in
  loop attempts

let exercise ?(seed = 1) ?values ~rounds e =
  let rng = Random.State.make [| seed |] in
  let alphabet = Array.of_list (Language.concrete_alphabet ?values e) in
  if Array.length alphabet = 0 then (0, rounds)
  else begin
    let session = Engine.create e in
    let accepted = ref 0 and rejected = ref 0 in
    for _ = 1 to rounds do
      let a = alphabet.(Random.State.int rng (Array.length alphabet)) in
      if Engine.try_action session a then incr accepted else incr rejected
    done;
    (!accepted, !rejected)
  end
