(** Algebraic simplification of interaction expressions.

    Section 3 notes that "numerous useful properties of interaction
    expressions, like commutativity, associativity, or idempotence of
    operators, which are intuitively evident, can be formally proven".
    This module applies those laws as a terminating rewrite system to
    normalize expressions before they are deployed to an interaction
    manager — smaller expressions mean smaller states and cheaper
    transitions.

    All rules preserve the semantics (same Φ, Ψ and alphabet); the test
    suite validates this against both the formal semantics and the state
    model on random expressions.  Applied laws include:

    - idempotence: [y | y → y], [y & y → y], [y @ y → y];
    - neutral elements: [ε − y → y], [y − ε → y], [ε ∥ y → y];
    - absorption: [opt (opt y) → opt y], [iter (iter y) → iter y], [opt (iter y) → iter y],
      [iter (opt y) → iter y], [iter ε → ε], [opt ε → ε];
    - flattening/sorting of commutative–associative operators ([|], [&],
      [@], [∥]) so that equal operands become adjacent and idempotence can
      fire across nesting;
    - quantifiers: a quantifier whose parameter does not occur in its body
      collapses ([some p: y → y]; [all p: y] and [sync p: y] and
      [conj p: y → y] likewise, because all instances are identical and the
      infinite combination of identical languages over an unused parameter
      degenerates — for [all] this holds only when [⟨⟩ ∈ Φ(y)] would make
      the infinite shuffle collapse, so [all] is only rewritten when the
      body is ε). *)

val simplify : Expr.t -> Expr.t
(** Bottom-up application of the rules to a fixpoint. *)

val size_reduction : Expr.t -> int * int
(** [(before, after)] node counts. *)

val rules_doc : (string * string) list
(** Human-readable [(lhs, rhs)] rule descriptions, for the CLI. *)
