(** Growth profiling of state sizes along a run.

    Section 6's analyses are about how the size of σ_w(x) evolves with the
    length of w.  This module records that evolution for a concrete run and
    fits a growth model to it — the empirical counterpart of the
    harmless / benign / malignant classification of {!Classify}, usable on
    expressions the syntactic criteria cannot decide. *)

type sample = {
  index : int;  (** number of actions processed *)
  size : int;  (** state size after them *)
}

type growth =
  | Constant
  | Polynomial of float  (** fitted degree (1.0 ≈ linear, 2.0 ≈ quadratic) *)
  | Exponential of float  (** fitted per-step factor > 1 *)

type profile = {
  samples : sample list;  (** one per accepted action, in order *)
  rejected : int;  (** actions of the run the expression rejected *)
  max_size : int;
  final_size : int;
  growth : growth;
}

val profile : Expr.t -> Action.concrete list -> profile
(** Feed the word action by action (rejected actions are skipped) and fit
    the growth of the state size. *)

val estimate : (int * int) list -> growth
(** Fit (n, size) points: near-flat data is [Constant]; otherwise the
    better least-squares fit of size against n decides between
    log-log (polynomial, slope = degree) and semi-log (exponential,
    slope = log factor). *)

val growth_to_string : growth -> string
val pp_growth : Format.formatter -> growth -> unit

val to_csv : profile -> string
(** ["index,size\n..."] rows for external plotting. *)

val agrees_with_classification : profile -> Classify.verdict -> bool
(** Sanity relation used by tests and the CLI: a harmless verdict expects
    [Constant]; a benign verdict expects at worst polynomial growth; a
    potentially-malignant verdict accepts anything. *)
