(** Compilation to explicit finite automata.

    Section 4 introduces the state model as "comparable in some sense to
    finite state machines typically used for the implementation of regular
    expressions".  For expressions whose reachable state space is finite —
    quasi-regular expressions always, and many others in practice — that
    comparison can be made literal: enumerate the reachable optimized
    states once, number them, and tabulate τ̂, turning every subsequent
    transition into one array lookup.

    Compilation is a deployment-time optimization for interaction managers
    serving hot constraints; expressions with infinite or too-large state
    spaces simply stay interpreted ({!compile} returns [None]). *)

type t
(** A compiled automaton: dense transition table over the expression's
    concrete alphabet. *)

val compile :
  ?max_states:int -> ?max_state_size:int -> ?values:Action.value list -> Expr.t ->
  t option
(** Enumerate the reachable state space over the concrete alphabet
    ({!Language.concrete_alphabet}); [None] when a bound is hit (default
    10_000 states).  For expressions with parameters, the automaton is
    exact relative to the chosen value set: actions mentioning other values
    are rejected. *)

val alphabet : t -> Action.concrete list
val state_count : t -> int
val final_count : t -> int

(** {1 Running} *)

type run
(** A cursor over the automaton (the compiled counterpart of
    {!Engine.session}). *)

val start : t -> run
val step : run -> Action.concrete -> bool
(** Accept-and-advance, [false] (state unchanged) when the action is not
    permitted or unknown to the alphabet. *)

val accepting : run -> bool
(** Is the current state final? *)

val reset : run -> unit

val word : t -> Action.concrete list -> Semantics.verdict
(** The word problem on the compiled automaton. *)

val equivalent_behaviour : t -> Expr.t -> Action.concrete list -> bool
(** Debug/test helper: does the automaton agree with the interpreted state
    model on this word (verdict-wise)? *)
