(** Operational semantics of interaction expressions (Sections 4–5).

    Every expression [x] is assigned an initial state [σ(x)] ({!init}); a
    state-transition function τ maps a state and a concrete action to a
    successor state; predicates ψ (validity) and φ (finality) correspond to
    the word sets Ψ and Φ.  As in Section 5, the optimizer ρ is fused into
    the transition ({!trans} computes τ̂ = ρ∘τ): invalid substates are pruned
    eagerly and alternative sets are canonicalized, so ψ degenerates to
    "the state is not null" — {!trans} returns [None] exactly for the null
    state, making the validity predicate implicit.

    The intended correctness property (validated empirically against
    {!Semantics} by the property tests) is, for every concrete word [w]:

    - [w ∈ Ψ(x)]  ⇔  [σ_w(x)] is not null, and
    - [w ∈ Φ(x)]  ⇔  [φ(σ_w(x))] ({!final}).

    States are hierarchical objects mirroring the expression: sequences keep
    the set of crossover states of their right operand, parallel
    compositions keep a set of alternatives (pairs of substates, exactly the
    paper's [‖, A] example), parallel iterations keep alternatives of walker
    multisets, and quantifiers keep a finite map of {e materialized}
    instances plus a {e template} state standing for the infinitely many
    untouched values of Ω (materialized lazily on the first action that
    distinguishes a value — the paper's finite-state implementation of
    conceptually infinite expressions). *)

type t
(** A (valid) state.  The null state is represented by [None] at the API
    boundary.

    States are {e hash-consed}: every constructed state carries a unique
    id, a precomputed structural hash and a memoized finality bit.
    Structurally equal states built in the same process are physically
    equal, so {!equal} is pointer equality, {!compare} is an integer
    comparison on ids, and {!final} is a field read. *)

val init : Expr.t -> t
(** σ(x) — the initial state.  Always valid (⟨⟩ ∈ Ψ(x) for every x). *)

val trans : t -> Action.concrete -> t option
(** τ̂ — optimized state transition.  [None] is the null state: the word
    processed so far extended by this action is not a partial word. *)

val final : t -> bool
(** φ — may the walker(s) have reached the end of the graph? *)

val trans_word : t -> Action.concrete list -> t option
(** Fold {!trans} over a word. *)

val size : t -> int
(** Number of state-tree nodes, counting every alternative — the state-size
    measure of the complexity analyses (Section 6). *)

val compare : t -> t -> int
(** Total order on states via hash-cons ids: O(1).  The order is canonical
    within a process (equal states have equal ids) but {e not} stable
    across processes — alternative sets reloaded from {!of_sexp} are
    re-sorted lazily by the next transition. *)

val equal : t -> t -> bool
(** Physical equality; coincides with structural equality thanks to
    hash-consing. *)

val id : t -> int
(** The unique hash-cons id — a compact key for external tables (the
    automaton compiler and the state-space explorer index states by id
    instead of hashing whole trees). *)

val hash : t -> int
(** The memoized structural hash (stable across processes). *)

val transitions : unit -> int
(** Monotone count of top-level kernel steps in this process: {!trans}
    invocations plus table-answered steps of the compiled kernel
    ({!Automaton}); recursive descents into substates are not counted.
    Used by the experiment harness to verify that the grant loop performs
    a single transition per granted action. *)

val count_transition : unit -> unit
(** Bump the {!transitions} counter without performing a transition.  For
    the compiled kernel only: a step answered from the automaton's tables
    is still a kernel step and must keep the counter (and the
    [state_transitions_total] probe) meaningful. *)

val count_transitions : int -> unit
(** Batched {!count_transition}: one atomic add for [n] table-answered
    steps (the compiled word walk counts locally and flushes once). *)

val live_states : unit -> int
(** Number of distinct live states in the process-global hash-cons table
    (weakly held: unreachable states are reclaimed by the GC) — see
    {!section-parallel}. *)

(** {1:parallel Parallel evaluation}

    The state model is safe to drive from multiple domains.  The
    hash-cons table is {e process-global} and lock-striped: every state
    is merged through one canonical table (per-stripe mutation locks, a
    lock-free per-domain front cache for the warm path), so structural
    equality is pointer equality {e across} domains and ids — drawn from
    one atomic process-wide counter — are globally canonical.  This is
    what lets several domains walk one compiled automaton or VM program
    ({!Automaton.shared}, {!Bytecode.shared}) and compare states from
    different domains with [==].  The three memo caches remain
    domain-local and lock-free; their id-keyed entries are valid
    everywhere precisely because ids are canonical. *)

type cache_stats = {
  init_hits : int;
  init_misses : int;
  subst_hits : int;
  subst_misses : int;
  trans_hits : int;
  trans_misses : int;
}

val cache_stats : unit -> cache_stats
(** Hit/miss tallies of the three memo caches ({!init}, instance
    materialization, {!trans}) since start or the last
    {!reset_cache_stats}.  Always counted — one int bump per lookup — and
    exported to the telemetry registry as the [state_memo_*] probes.
    Lookups made while memoization is disabled count nothing. *)

val reset_cache_stats : unit -> unit

val memo_eviction_count : unit -> int
(** Entries shed by the segmented memo tables (transition and substitution
    caches, all domains) since start.  Rotating a generation counts each
    dropped entry once; exported as the [state_memo_evictions_total]
    probe. *)

val pp : Format.formatter -> t -> unit
(** Structural dump of a state, for debugging and the examples. *)

(** {1 Structural view}

    A read-only, one-level unfolding of a state for diagnostic walks (the
    denial-provenance analysis in {!Explain}).  Derived memo fields that
    take no part in the structural identity ([zempty], freshness flags,
    embedded expressions) are omitted; what remains is exactly what an
    acceptance analysis needs: the children, the quantifier instance maps
    and templates, and the alphabets driving synchronization and
    candidate materialization. *)

type view =
  | VAtom of { pat : Action.t; consumed : bool }
  | VOpt of { body : t }
  | VSeq of { left : t option; rights : t list; zinit : t }
      (** [zinit] = σ(z), the crossover entry state *)
  | VSeqIter of { actives : t list; yinit : t }
  | VPar of { alts : (t * t) list }
  | VParIter of { alts : t list list; yinit : t }
  | VOr of { left : t option; right : t option }
  | VAnd of { left : t; right : t }
  | VSync of { left : t; right : t; la : Alpha.t; ra : Alpha.t }
  | VSome of {
      param : Action.param;
      insts : (Action.value * t) list;
      dead : Action.value list;
      template : t option;
      balpha : Alpha.t;
    }
  | VAll of {
      param : Action.param;
      alts : ((Action.value * t) list * t list) list;
          (** per alternative: bound walkers, anonymous walkers *)
      template : t;
      balpha : Alpha.t;
    }
  | VSyncQ of {
      param : Action.param;
      insts : (Action.value * t) list;
      template : t;
      balpha : Alpha.t;
    }
  | VAndQ of {
      param : Action.param;
      insts : (Action.value * t) list;
      template : t;
      balpha : Alpha.t;
    }

val view : t -> view

val materialize : Action.param -> Action.value -> t -> t
(** Capture-aware substitution of a value for a parameter inside a state —
    how a quantifier turns its template into the instance for one value.
    Memoized per (state, param, value) like the internal materialization. *)

(** {1 Ablation support}

    Part of the optimizer ρ is the {e canonicalization} of alternative
    sets: sorting and merging structurally equal alternatives.  The
    experiment harness measures its effect by switching it off; with
    canonicalization disabled states still behave correctly but duplicate
    alternatives accumulate.  Not intended for production use — structural
    {!equal} on states assumes canonical form. *)

val set_canonicalization : bool -> unit
val canonicalization : unit -> bool

val set_memoization : bool -> unit
(** Enable/disable the derived-structure caches: memoized initial states
    ([σ] per subexpression), memoized instance materialization (template
    substitution per value) and the {!Alpha.of_expr} cache.  On by
    default; switched off only by the experiment harness for before/after
    measurements.  Hash-consing itself is always on — it is the
    representation, not an optimization toggle. *)

val memoization : unit -> bool

val set_compilation : bool -> unit
(** Kill switch for the compiled transition kernel (the signature
    classifier and lazy automaton of {!Automaton}).  On by default.  The
    flag is consulted at every step, so flipping it mid-run takes effect
    immediately — running sessions fall back to the interpreted τ̂ and
    return to the tables when re-enabled.  Exposed as [--no-compile] in
    [imanager]/[iworkbench]. *)

val compilation : unit -> bool

(** {1 Persistence}

    Serialized states are the checkpoint payload of the interaction
    manager: instead of replaying the whole confirmed-action log after a
    crash, recovery can restart from the last checkpointed state and replay
    only the log suffix. *)

val to_sexp : t -> Sexp.t

val of_sexp : Sexp.t -> t
(** @raise Invalid_argument on malformed input. *)

val check_invariants : t -> (unit, string) result
(** Internal-consistency check used by the test suite: every alternative
    set is sorted, duplicate-free and non-degenerate (e.g. a parallel
    composition holds at least one alternative, instance maps are sorted by
    value and contain no duplicates).  [Error] describes the first
    violation. *)
