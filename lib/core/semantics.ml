type word = Action.concrete list

type verdict =
  | Illegal
  | Partial
  | Complete

let verdict_to_int = function Illegal -> 0 | Partial -> 1 | Complete -> 2

let pp_verdict ppf v =
  Format.pp_print_string ppf
    (match v with Illegal -> "illegal" | Partial -> "partial" | Complete -> "complete")

(* All contiguous splits w = u · v. *)
let splits w =
  let rec go pre suf acc =
    let acc = (List.rev pre, suf) :: acc in
    match suf with
    | [] -> List.rev acc
    | a :: rest -> go (a :: pre) rest acc
  in
  go [] w []

(* All order-preserving 2-colorings of w (shuffle decompositions). *)
let rec colorings = function
  | [] -> [ ([], []) ]
  | a :: rest ->
    List.concat_map (fun (u, v) -> [ (a :: u, v); (u, a :: v) ]) (colorings rest)

let word_values w =
  let add acc c =
    List.fold_left
      (fun acc v -> if List.mem v acc then acc else v :: acc)
      acc (Action.values_of_concrete c)
  in
  List.rev (List.fold_left add [] w)

let fresh_value e w =
  let taken = Expr.values e @ word_values w in
  let rec pick i =
    let v = "%f" ^ string_of_int i in
    if List.mem v taken then pick (i + 1) else v
  in
  pick 0

(* Membership of a concrete action in the complement language κx(y) =
   α(x) \ α(y): the action is in the (expanded) alphabet of x but not of y. *)
let kappa_mem alpha_x alpha_y c = Alpha.mem alpha_x c && not (Alpha.mem alpha_y c)

let eval which_phi x w =
  let memo : (bool * Expr.t * word, bool) Hashtbl.t = Hashtbl.create 1024 in
  let rec mem is_phi x w =
    let key = (is_phi, x, w) in
    match Hashtbl.find_opt memo key with
    | Some b -> b
    | None ->
      let b = if is_phi then phi_raw x w else psi_raw x w in
      Hashtbl.add memo key b;
      b
  and phi x w = mem true x w
  and psi x w = mem false x w
  (* w ∈ Φ(y) ⊗ κx(y)* — some coloring sends one part through y and every
     remaining action through the complement alphabet. *)
  and shuffled is_phi y alpha_y alpha_x w =
    List.exists
      (fun (u, v) -> mem is_phi y u && List.for_all (kappa_mem alpha_x alpha_y) v)
      (colorings w)
  (* Parallel quantifier: partition w into classes, each class the trace of a
     distinct instance.  Classes may take a value occurring in w, or a fresh
     value (fresh instances are interchangeable, so one representative value
     stands for arbitrarily many distinct fresh instances). *)
  and allq is_phi p y w =
    let rels = word_values w in
    let fresh = fresh_value y w in
    let y_fresh = Expr.subst p fresh y in
    let rec go w used =
      match w with
      | [] ->
        (* Every untouched instance contributes ⟨⟩; for Φ this requires
           ⟨⟩ ∈ Φ(y_ω), which is independent of ω (structural). *)
        (not is_phi) || phi y_fresh []
      | a :: rest ->
        let classes = colorings rest in
        List.exists
          (fun (s, r) ->
            let cls = a :: s in
            List.exists
              (fun v ->
                (not (List.mem v used))
                && mem is_phi (Expr.subst p v y) cls
                && go r (v :: used))
              rels
            || (mem is_phi y_fresh cls && go r used))
          classes
    in
    go w []
  and pariter is_phi y w =
    match w with
    | [] -> true
    | a :: rest ->
      List.exists
        (fun (s, r) -> mem is_phi y (a :: s) && mem is_phi (Expr.ParIter y) r)
        (colorings rest)
  and quantified_values p y w =
    ignore p;
    let rels = word_values w in
    let fresh = fresh_value y w in
    rels @ [ fresh ]
  and phi_raw x w =
    match x with
    | Expr.Atom a -> ( match w with [ c ] -> Action.matches a c | [] | _ :: _ -> false)
    | Expr.Opt y -> w = [] || phi y w
    | Expr.Seq (y, z) -> List.exists (fun (u, v) -> phi y u && phi z v) (splits w)
    | Expr.SeqIter y ->
      w = []
      || List.exists (fun (u, v) -> u <> [] && phi y u && phi x v) (splits w)
    | Expr.Par (y, z) -> List.exists (fun (u, v) -> phi y u && phi z v) (colorings w)
    | Expr.ParIter y -> pariter true y w
    | Expr.Or (y, z) -> phi y w || phi z w
    | Expr.And (y, z) -> phi y w && phi z w
    | Expr.Sync (y, z) ->
      let ay = Alpha.of_expr y and az = Alpha.of_expr z in
      let ax = ay @ az in
      shuffled true y ay ax w && shuffled true z az ax w
    | Expr.SomeQ (p, y) ->
      List.exists (fun v -> phi (Expr.subst p v y) w) (quantified_values p y w)
    | Expr.AllQ (p, y) -> allq true p y w
    | Expr.SyncQ (p, y) ->
      let ax = Alpha.of_expr x in
      List.for_all
        (fun v ->
          let yv = Expr.subst p v y in
          shuffled true yv (Alpha.of_expr yv) ax w)
        (quantified_values p y w)
    | Expr.AndQ (p, y) ->
      List.for_all (fun v -> phi (Expr.subst p v y) w) (quantified_values p y w)
  and psi_raw x w =
    match x with
    | Expr.Atom a -> (
      match w with
      | [] -> true
      | [ c ] -> Action.matches a c
      | _ :: _ :: _ -> false)
    | Expr.Opt y -> psi y w
    | Expr.Seq (y, z) ->
      psi y w || List.exists (fun (u, v) -> phi y u && psi z v) (splits w)
    | Expr.SeqIter y ->
      List.exists (fun (u, v) -> phi (Expr.SeqIter y) u && psi y v) (splits w)
    | Expr.Par (y, z) -> List.exists (fun (u, v) -> psi y u && psi z v) (colorings w)
    | Expr.ParIter y -> pariter false y w
    | Expr.Or (y, z) -> psi y w || psi z w
    | Expr.And (y, z) -> psi y w && psi z w
    | Expr.Sync (y, z) ->
      let ay = Alpha.of_expr y and az = Alpha.of_expr z in
      let ax = ay @ az in
      shuffled false y ay ax w && shuffled false z az ax w
    | Expr.SomeQ (p, y) ->
      List.exists (fun v -> psi (Expr.subst p v y) w) (quantified_values p y w)
    | Expr.AllQ (p, y) -> allq false p y w
    | Expr.SyncQ (p, y) ->
      let ax = Alpha.of_expr x in
      List.for_all
        (fun v ->
          let yv = Expr.subst p v y in
          shuffled false yv (Alpha.of_expr yv) ax w)
        (quantified_values p y w)
    | Expr.AndQ (p, y) ->
      List.for_all (fun v -> psi (Expr.subst p v y) w) (quantified_values p y w)
  in
  mem which_phi x w

let complete x w = eval true x w
let partial x w = eval false x w

let word x w = if complete x w then Complete else if partial x w then Partial else Illegal

let language ~max_len ~universe x =
  (* Words of exactly length n, each reversed at the end. *)
  let rec exactly n =
    if n = 0 then [ [] ]
    else List.concat_map (fun w -> List.map (fun c -> c :: w) universe) (exactly (n - 1))
  in
  let rec upto n = if n < 0 then [] else upto (n - 1) @ List.map List.rev (exactly n) in
  let by_len w1 w2 =
    let c = Stdlib.compare (List.length w1) (List.length w2) in
    if c <> 0 then c else List.compare Action.compare_concrete w1 w2
  in
  upto max_len
  |> List.sort_uniq by_len
  |> List.filter (complete x)
