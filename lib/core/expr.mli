(** Interaction expressions (Section 3, Table 8).

    The constructors correspond one-to-one to the categories of Table 8:
    atomic expression, option, sequential composition/iteration, parallel
    composition/iteration, disjunction, conjunction, synchronization
    (the "coupling" operator of Fig. 7), and the four quantifiers.

    Quantifiers bind a formal parameter over the infinite value domain Ω.
    Parameters not bound by any enclosing quantifier are {e free}; per
    Table 8 ([Φ(a) = {⟨a⟩} ∩ Σ*]) an atom containing a free parameter can
    never be traversed by a concrete action. *)

type t =
  | Atom of Action.t  (** atomic expression [a] *)
  | Opt of t  (** option: accepts ⟨⟩ in addition to the body's words *)
  | Seq of t * t  (** sequential composition [y − z] *)
  | SeqIter of t  (** sequential iteration (Kleene-style) *)
  | Par of t * t  (** parallel composition (shuffle) *)
  | ParIter of t  (** parallel iteration (shuffle closure) *)
  | Or of t * t  (** disjunction *)
  | And of t * t  (** strict conjunction *)
  | Sync of t * t  (** synchronization / coupling (open-world conjunction) *)
  | SomeQ of Action.param * t  (** disjunction quantifier "for some p" *)
  | AllQ of Action.param * t  (** parallel quantifier "for all p" *)
  | SyncQ of Action.param * t  (** synchronization quantifier *)
  | AndQ of Action.param * t  (** conjunction quantifier *)

(** {1 Smart constructors} *)

val atom : string -> Action.arg list -> t
val act : string -> string list -> t
(** [act name args] — atom whose arguments are all concrete values. *)

val opt : t -> t
val seq : t -> t -> t
val seq_list : t list -> t
(** Right-nested sequential composition; [seq_list \[\]] raises
    [Invalid_argument]. *)

val seq_iter : t -> t
val par : t -> t -> t
val par_list : t list -> t
val par_iter : t -> t
val alt : t -> t -> t
(** Disjunction. *)

val alt_list : t list -> t
val conj : t -> t -> t
val conj_list : t list -> t
val sync : t -> t -> t
val sync_list : t list -> t
val some_q : Action.param -> t -> t
val all_q : Action.param -> t -> t
val sync_q : Action.param -> t -> t
val and_q : Action.param -> t -> t

(** {1 Derived operators} *)

val times : int -> t -> t
(** [times n y] — the multiplier of Fig. 6: [n] concurrent and independent
    instances of [y] (n-fold parallel composition).  [times 0 y] is the
    empty-word expression [opt] of nothing, i.e. accepts only ⟨⟩. *)

val mutex : t list -> t
(** The user-defined "flash" operator of Fig. 5: a sequential iteration of
    the disjunction of the branches — at most one branch is active at any
    time, repeatedly. *)

val epsilon : t
(** Accepts exactly the empty word (an option of an impossible atom is
    avoided; this is [Opt] applied to a never-matching free-parameter
    atom). *)

val activity : string -> Action.arg list -> t
(** [activity a args] maps an activity (a rectangle of an interaction graph,
    with positive duration) to the sequence of its start and termination
    actions [a_s − a_t] (footnote 6 of the paper). *)

val start_action : string -> string list -> Action.concrete
val term_action : string -> string list -> Action.concrete
(** Concrete start/termination actions matching {!activity}. *)

(** {1 Structure} *)

val free_params : t -> Action.param list
(** Parameters free in the expression, without duplicates. *)

val subst : Action.param -> Action.value -> t -> t
(** Capture-aware substitution [yωp]: inner quantifiers binding the same
    name shadow the substitution. *)

val atoms : t -> Action.t list
(** All atomic actions occurring syntactically (with duplicates removed). *)

val values : t -> Action.value list
(** All concrete values occurring in atoms. *)

val size : t -> int
(** Number of AST nodes. *)

val census : t -> (string * int) list
(** Operator counts (["atom"], ["seq"], ["par"], ...), nonzero entries
    only, sorted by name. *)

val compare : t -> t -> int
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Debug-oriented printer; the round-tripping concrete syntax lives in
    {!Syntax}. *)

val to_string : t -> string

(** {1 Persistence} *)

val to_sexp : t -> Sexp.t

val of_sexp : Sexp.t -> t
(** @raise Invalid_argument on malformed input. *)
