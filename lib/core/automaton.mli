(** Compiled transition kernel: signature-keyed transitions over a lazily
    materialized automaton.

    The interpreted kernel ({!State.trans}) memoizes transitions keyed by
    {e (state id, concrete action)}: every distinct action visiting a state
    pays at least one full τ̂ descent, and the memo key itself allocates.
    This module compiles the hot path in two levels:

    {ol
    {- {e Match signatures.}  The root alphabet ({!Alpha.of_expr}) of the
       session expression classifies every concrete action into a
       {e signature}: per pattern, whether it matches and under which binder
       assignment ({!Alpha.sig_match}).  Every pattern reachable by
       evaluation — sub-alphabets, quantifier-materialized instances, state
       atoms — is a substitution instance of a root pattern, so two actions
       with equal signatures are indistinguishable to {e every} state of the
       expression; and an action matching {e no} pattern is rejected by
       every state without touching the state DAG at all.}
    {- {e A lazy automaton.}  Hash-consed states are interned into dense
       row ids, signatures into dense column ids, and visited (row, column)
       pairs are materialized into int-array transition rows.  Warm steps
       are a table walk — no allocation, no hashing of expressions or
       states; a cold entry falls back to one interpreted τ̂ and fills the
       table behind itself.}}

    Expressions classified {e harmless} by {!Classify.benignity}
    (quasi-regular: finitely many reachable states) are compiled eagerly at
    creation; benign and potentially-malignant expressions stay lazy, so the
    table only ever holds the visited fringe.

    The kernel is {e active} only while {!State.compilation},
    {!State.memoization} and {!State.canonicalization} are all enabled
    (flags are consulted at every step); otherwise every call transparently
    degrades to the interpreted {!State.trans}.  Caps on rows and
    signatures bound memory; hitting them likewise degrades to fallback,
    never to a wrong answer. *)

type t
(** A compiled kernel instance for one expression.  Safe to walk from any
    number of domains at once: rows hold globally hash-consed states, warm
    reads run lock-free against a published snapshot of the dense tables,
    and all mutation (row interning, entry fill, signature interning)
    serializes on one per-instance lock — the interpreted τ̂ of a cold
    entry runs outside it.  Obtain instances via {!shared}; {!create} is
    for tests and cold-start measurements. *)

val create : ?eager:bool -> ?max_rows:int -> ?max_sigs:int -> Expr.t -> t
(** Fresh instance for an expression.  [eager] forces or suppresses eager
    compilation (default: decided by {!Classify.benignity} — eager iff
    harmless).  [max_rows] (default 2{^15}) caps interned states;
    [max_sigs] (default 2{^12}) caps distinct signatures. *)

val shared : Expr.t -> t
(** The process-wide shared instance for this expression (created on first
    use; sessions, manager replicas and repeated word queries on one
    expression — on {e every} domain — share one automaton and its warm
    rows).  Keyed structurally under a lock, with a per-domain
    physical-equality fast path for the repeated-query pattern.  Bounded:
    a burst of more than a few hundred distinct expressions resets the
    cache. *)

val reset_shared : unit -> unit
(** Drop the shared instances — all domains' views of them (a generation
    bump invalidates every domain's fast-path slot).  For the experiment
    harness: an instance retained from an earlier workload on the same
    expression carries that workload's rows and signatures, so
    before/after tables would depend on experiment order.  Sessions that
    already bound an instance keep it. *)

val expr : t -> Expr.t

val step : t -> State.t -> Action.concrete -> State.t option
(** τ̂ through the tables: exactly {!State.trans} observably (including the
    {!State.transitions} counter), faster when warm.  [st] must be a state
    of this instance's expression.  Inactive kernel, uninterned states,
    capped tables and cold entries all fall back to {!State.trans}. *)

val run_word : t -> Action.concrete list -> bool option
(** The word problem as a table walk from σ(e): [None] if the word is not
    even a partial word (some prefix is illegal), [Some fin] with the
    finality of the reached state otherwise.  The warm path never leaves
    integer land — states are only materialized on cold entries. *)

val active : unit -> bool
(** Whether compiled stepping is currently in force:
    {!State.compilation} ∧ {!State.memoization} ∧
    {!State.canonicalization}. *)

(** {1 Introspection} *)

type info = {
  eager : bool;  (** was this instance eagerly compiled? *)
  rows : int;  (** interned states *)
  signatures : int;  (** distinct signature columns, including reject *)
}

val info : t -> info
(** Per-instance shape, for the workbench [compile] command. *)

type stats = {
  steps : int;  (** compiled-kernel steps attempted *)
  fallbacks : int;  (** steps resolved by the interpreted τ̂ *)
  sig_cache_hits : int;
  sig_cache_misses : int;
  sig_cache_evictions : int;
  overflows : int;  (** row/signature/instance cap events *)
  interned_states : int;  (** rows ever interned, process-wide *)
  live_rows : int;
  live_signatures : int;
  instances : int;  (** automata ever created, process-wide *)
}

val stats : unit -> stats
(** Process-wide tallies since start or the last {!reset_stats}; also
    exported to the telemetry registry as the [automaton_*] probes. *)

val reset_stats : unit -> unit
(** Reset the flow counters (steps, fallbacks, signature-cache tallies,
    overflows).  Structural gauges (interned states, live rows/signatures,
    instances) are left untouched. *)
