type verdict = Semantics.verdict =
  | Illegal
  | Partial
  | Complete

(* Telemetry handles, created once at module init; the disabled path of
   every instrumented operation below is a single [!Telemetry.on] read. *)
let m_actions = Telemetry.counter "engine_actions_total"
let m_accepted = Telemetry.counter "engine_accepted_total"
let m_rejected = Telemetry.counter "engine_rejected_total"
let m_permitted_checks = Telemetry.counter "engine_permitted_checks_total"
let m_try_ns = Telemetry.histogram "engine_try_action_ns"
let g_state_size = Telemetry.gauge "engine_state_size"

(* Tri-state engine selection.  [None] (the default) is auto: §6-harmless
   expressions run on the VM, everything else on the lazy automaton; a
   forced backend overrides per process.  The preference
   ref is read on every step, so flipping it mid-word takes effect
   immediately — like the compilation kill switch, which still trumps
   everything (any backend degrades to the interpreted τ̂ while the kernel
   switches are off). *)
type backend = Interp | Table | Vm

let backend_pref : backend option ref = ref None
let set_backend b = backend_pref := b
let backend () = !backend_pref
let backend_name = function Interp -> "interp" | Table -> "table" | Vm -> "vm"

let backend_of_string = function
  | "auto" -> Ok None
  | "interp" -> Ok (Some Interp)
  | "table" -> Ok (Some Table)
  | "vm" -> Ok (Some Vm)
  | s -> Error (Printf.sprintf "unknown engine %S (expected interp|table|vm|auto)" s)

(* The backend a fresh walk of [e] would use right now (the workbench's
   [compile] line and the experiment harness report this). *)
let resolve e =
  if not (Automaton.active ()) then Interp
  else
    match !backend_pref with
    | Some Interp -> Interp
    | Some Table -> Table
    | Some Vm -> (
      match Bytecode.shared_forced e with Some _ -> Vm | None -> Table)
    | None -> (
      match Bytecode.shared e with Some _ -> Vm | None -> Table)

(* The word problem on the selected backend: the VM when a compiled
   program exists (a pure int walk), the shared automaton otherwise,
   falling back to the interpreted τ̂ per cold entry (and wholesale when
   the kernel is switched off). *)
let word_unobserved e w =
  let interp () =
    match State.trans_word (State.init e) w with
    | None -> Illegal
    | Some s -> if State.final s then Complete else Partial
  in
  let table () =
    match Automaton.run_word (Automaton.shared e) w with
    | None -> Illegal
    | Some fin -> if fin then Complete else Partial
  in
  if not (Automaton.active ()) then interp ()
  else
    let vm v =
      match Bytecode.Vm.word v w with
      | None -> Illegal
      | Some fin -> if fin then Complete else Partial
    in
    match !backend_pref with
    | Some Interp -> interp ()
    | Some Table -> table ()
    | Some Vm -> (
      match Bytecode.shared_forced e with None -> table () | Some v -> vm v)
    | None -> (
      match Bytecode.shared e with None -> table () | Some v -> vm v)

let verdict_name = function
  | Illegal -> "illegal"
  | Partial -> "partial"
  | Complete -> "complete"

let word e w =
  if not !Telemetry.on then word_unobserved e w
  else
    (* all fields in [~exit]: the word length is only walked once the span
       has closed, keeping the measured section free of telemetry work *)
    Telemetry.span "engine.word"
      ~exit:(fun v ->
        [ ("len", Telemetry.Int (List.length w));
          ("verdict", Telemetry.Str (verdict_name v)) ])
      (fun () -> word_unobserved e w)

let word_int e w = Semantics.verdict_to_int (word e w)

type session = {
  sexpr : Expr.t;
  mutable state : State.t option;
  mutable rev_trace : Action.concrete list;
  (* bounded tentative-successor cache: the Fig. 9 grant loop asks
     [permitted c] and then commits with [try_action c]; remembering the
     successor computed by the tentative query makes that pattern perform
     one transition instead of two.  Direct-mapped over (state, action),
     so interleaved queries of other actions no longer evict the pair
     being committed (the former one-slot cache decayed to a 0.3% hit
     rate under exactly that interleaving — BENCH_pr4).  One replica per
     domain: Scache is single-domain, and a session handed across domains
     (pool rebalance, speculation retry) starts cold there instead of
     racing — creations are tallied by [Scache.count_replica]. *)
  tentative : Scache.t Dshard.replica;
  (* the session's compiled kernels, bound lazily on the first transition so
     sessions created while compilation is disabled still pick them up when
     the switch is flipped back on *)
  mutable auto : Automaton.t option;
  mutable vm : Bytecode.t option;
  mutable vm_tried : bool;
  (* the step route resolved for [route_for] (the preference value it was
     computed under, compared physically): every backend then dispatches
     through one field read per step, and a mid-word [set_backend] — a new
     preference allocation — re-resolves on the next step *)
  mutable route : route;
  mutable route_for : backend option option;
  (* the complexity sentinel, bound lazily on the first observed action so
     unobserved runs never pay the classification *)
  mutable sentinel : Sentinel.t option;
}

and route =
  | RInterp  (* pinned interpreted kernel *)
  | RTable  (* the lazy automaton *)
  | RVm of Bytecode.t  (* a bound program *)
  | RDeclined  (* auto: compilation declined — the interpreted τ̂ wins on
                  churning (quantified-growth) states *)
  | RUnbound  (* vm-capable preference, program not resolved yet *)

(* Switchable only for the experiment harness's before/after table. *)
let successor_cache = ref true
let set_successor_cache b = successor_cache := b
let successor_cache_enabled () = !successor_cache

(* Always-on hit/miss tallies of the successor cache, in the style of
   [State.cache_stats]; exported as the [engine_successor_cache_*] probes.
   Atomic: sharded sessions run on the evaluation domains. *)
let succ_hits = Atomic.make 0
let succ_misses = Atomic.make 0
let successor_cache_stats () = (Atomic.get succ_hits, Atomic.get succ_misses)

let reset_successor_cache_stats () =
  Atomic.set succ_hits 0;
  Atomic.set succ_misses 0

let () =
  Telemetry.register_probe "engine_successor_cache_hits" (fun () ->
      float_of_int (Atomic.get succ_hits));
  Telemetry.register_probe "engine_successor_cache_misses" (fun () ->
      float_of_int (Atomic.get succ_misses))

let create e =
  { sexpr = e;
    state = Some (State.init e);
    rev_trace = [];
    tentative = Dshard.replica ();
    auto = None;
    vm = None;
    vm_tried = false;
    route = RUnbound;
    route_for = None;
    sentinel = None }

let expr s = s.sexpr

let session_sentinel s =
  match s.sentinel with
  | Some w -> w
  | None ->
    let w = Sentinel.create s.sexpr in
    s.sentinel <- Some w;
    w

let session_auto s =
  match s.auto with
  | Some a -> a
  | None ->
    let a = Automaton.shared s.sexpr in
    s.auto <- Some a;
    a

(* The session's compiled program, attempted once per session while the
   kernel is active.  [None] is memoized too (via the shared negative
   cache), so benign sessions pay one probe, not a BFS per step; binding
   is deferred while the kernel is off so a session created under
   [--no-compile] still picks the program up when the switch flips. *)
let session_vm ~force s =
  if not (Automaton.active ()) then None
  else if force then begin
    (* a forced [vm] upgrades an auto decline; after the first forced
       probe the shared cache answers in one lookup *)
    (match s.vm with
    | None ->
      s.vm <- Bytecode.shared_forced s.sexpr;
      s.vm_tried <- true
    | Some _ -> ());
    s.vm
  end
  else if s.vm_tried then s.vm
  else begin
    s.vm_tried <- true;
    s.vm <- Bytecode.shared s.sexpr;
    s.vm
  end

(* τ̂ as the session performs it: through the selected compiled kernel
   when active, the interpreted transition otherwise.  Once a kernel is
   bound, its [step] performs the (per-step) kill-switch check itself —
   the flags are read exactly once on the hot path; the backend
   preference is read here, so mid-word engine switches apply at the next
   step. *)
let session_trans_table s st c =
  match s.auto with
  | Some a -> Automaton.step a st c
  | None ->
    if Automaton.active () then Automaton.step (session_auto s) st c
    else State.trans st c

let rebind s pref =
  s.route_for <- Some pref;
  s.route <-
    (match pref with
    | Some Interp -> RInterp
    | Some Table -> RTable
    | Some Vm | None -> RUnbound)

let session_trans s st c =
  let pref = !backend_pref in
  (match s.route_for with
  | Some p when p == pref -> ()
  | _ -> rebind s pref);
  match s.route with
  | RVm v -> Bytecode.Vm.step v st c
  | RInterp | RDeclined ->
    (* a declined session (benign or malignant: quantified growth, §6)
       steps on the interpreted τ̂, not the automaton — a churning state
       mints a fresh row per action, so tabulation pays two probes (row +
       signature) where the per-state transition memo pays one; the
       automaton still serves the word problem, where repeated words stay
       inside its int walk *)
    State.trans st c
  | RTable -> session_trans_table s st c
  | RUnbound -> (
    (* vm-capable preference (auto or forced), program not resolved yet:
       probe once per session — [session_vm] memoizes both outcomes — and
       settle the route.  While the kill switch is off nothing is tried
       and the route stays unbound, so a session created under
       [--no-compile] still binds when the switch flips back. *)
    match session_vm ~force:(pref != None) s with
    | Some v ->
      s.route <- RVm v;
      Bytecode.Vm.step v st c
    | None ->
      if not s.vm_tried then session_trans_table s st c
      else if pref != None then begin
        (* forced vm, space does not close: degrade to the automaton *)
        s.route <- RTable;
        session_trans_table s st c
      end
      else begin
        s.route <- RDeclined;
        State.trans st c
      end)

(* τ̂ with the bounded cache: reuse the successor when the query repeats a
   cached (state, action) pair; otherwise compute and remember it. *)
let session_scache s =
  Dshard.replica_get s.tentative ~create:(fun () ->
      Scache.count_replica ~cross:(Dshard.replica_populated s.tentative > 0);
      Scache.create ())

let tentative_trans s st c =
  if not !successor_cache then session_trans s st c
  else
    let cache = session_scache s in
    match Scache.find cache st c with
    | Some succ ->
      Atomic.incr succ_hits;
      succ
    | None ->
      Atomic.incr succ_misses;
      let succ = session_trans s st c in
      Scache.add cache st c succ;
      succ

let permitted s c =
  match s.state with
  | None -> false
  | Some st ->
    let ok = tentative_trans s st c <> None in
    if !Telemetry.on then begin
      Telemetry.incr m_permitted_checks;
      Telemetry.event "engine.permitted"
        ~fields:
          [ ("action", Telemetry.Str (Action.concrete_to_string c));
            ("ok", Telemetry.Bool ok) ]
    end;
    ok

let try_action_unobserved s c =
  match s.state with
  | None -> false
  | Some st -> (
    match tentative_trans s st c with
    | Some st' ->
      (* no invalidation: the cache is keyed by (state, action), so entries
         for the pre-commit state stay sound and re-hit on cycles *)
      s.state <- Some st';
      s.rev_trace <- c :: s.rev_trace;
      true
    | None -> false)

let try_action s c =
  if not !Telemetry.on then try_action_unobserved s c
  else begin
    let t0 = Telemetry.now () in
    let ok = try_action_unobserved s c in
    let dur = Int64.sub (Telemetry.now ()) t0 in
    Telemetry.observe m_try_ns dur;
    Telemetry.incr m_actions;
    Telemetry.incr (if ok then m_accepted else m_rejected);
    let size = match s.state with Some st -> State.size st | None -> 0 in
    Telemetry.set_gauge g_state_size (float_of_int size);
    Sentinel.sample (session_sentinel s) ~size;
    Telemetry.event "engine.try_action"
      ~fields:
        [ ("action", Telemetry.Str (Action.concrete_to_string c));
          ("ok", Telemetry.Bool ok);
          ("commit", Telemetry.Bool ok);
          ("state_size", Telemetry.Int size);
          ("dur_ns", Telemetry.Int (Int64.to_int dur)) ];
    ok
  end

let feed s cs =
  if not !Telemetry.on then List.filter (fun c -> not (try_action_unobserved s c)) cs
  else
    (* both lengths in [~exit], computed after the span closed (see [word]) *)
    Telemetry.span "engine.feed"
      ~exit:(fun rejected ->
        [ ("offered", Telemetry.Int (List.length cs));
          ("rejected", Telemetry.Int (List.length rejected)) ])
      (fun () -> List.filter (fun c -> not (try_action s c)) cs)

let is_final s = match s.state with Some st -> State.final st | None -> false
let is_alive s = s.state <> None

let force s c =
  (* A dead session stays dead and its trace untouched: the trace lists
     actions some state actually consumed, and the null state consumes
     nothing. *)
  match s.state with
  | None -> false
  | Some st ->
    let next = tentative_trans s st c in
    s.state <- next;
    s.rev_trace <- c :: s.rev_trace;
    let ok = next <> None in
    if !Telemetry.on then begin
      Telemetry.incr m_actions;
      Telemetry.incr (if ok then m_accepted else m_rejected);
      Telemetry.event "engine.force"
        ~fields:
          [ ("action", Telemetry.Str (Action.concrete_to_string c));
            ("ok", Telemetry.Bool ok);
            (* forced actions happen regardless of the verdict: they belong
               to the replayable trace even when they killed the session *)
            ("commit", Telemetry.Bool true) ]
    end;
    ok

let trace s = List.rev s.rev_trace
let state_size s = match s.state with Some st -> State.size st | None -> 0
let state s = s.state

let explain_denial s c =
  match s.state with
  | Some st -> Explain.explain st c
  | None ->
    (* a forced action killed the session: every action is denied and no
       live subexpression can be blamed *)
    Some
      { Explain.eaction = c;
        blames =
          [ { Explain.bpath = [];
              locus = "(root)";
              operator = "session";
              reason = "session is dead (a forced action violated the expression)";
              requires = [] } ] }

let sentinel_warnings s = match s.sentinel with Some w -> Sentinel.warnings w | None -> 0

let save s =
  let state_sexp =
    match s.state with
    | Some st -> Sexp.List [ Sexp.Atom "s"; State.to_sexp st ]
    | None -> Sexp.Atom "null"
  in
  Sexp.to_string
    (Sexp.List
       [ Sexp.Atom "session";
         Sexp.List [ Sexp.Atom "expr"; Expr.to_sexp s.sexpr ];
         Sexp.List [ Sexp.Atom "state"; state_sexp ];
         Sexp.List
           (Sexp.Atom "trace" :: List.rev_map Action.concrete_to_sexp s.rev_trace)
       ])

let load str =
  match Sexp.of_string str with
  | Error m -> invalid_arg ("Engine.load: " ^ m)
  | Ok
      (Sexp.List
        [ Sexp.Atom "session";
          Sexp.List [ Sexp.Atom "expr"; expr ];
          Sexp.List [ Sexp.Atom "state"; state ];
          Sexp.List (Sexp.Atom "trace" :: trace)
        ]) ->
    let state =
      match state with
      | Sexp.Atom "null" -> None
      | Sexp.List [ Sexp.Atom "s"; st ] -> Some (State.of_sexp st)
      | _ -> invalid_arg "Engine.load: malformed state"
    in
    { sexpr = Expr.of_sexp expr;
      state;
      rev_trace = List.rev_map Action.concrete_of_sexp trace;
      tentative = Dshard.replica ();
      auto = None;
      vm = None;
      vm_tried = false;
      route = RUnbound;
      route_for = None;
      sentinel = None }
  | Ok _ -> invalid_arg "Engine.load: malformed session"

let reset s =
  s.state <- Some (State.init s.sexpr);
  (* successor-cache entries are sound across resets (pure transitions,
     hash-consed keys), but reset delimits measurement runs — clear every
     domain's replica so hit rates start cold *)
  Dshard.replica_iter Scache.clear s.tentative;
  s.rev_trace <- []

(* Lightweight rollback support for optimistic execution (Speculate): a
   checkpoint captures the session's logical state — current state and
   trace — by value; the caches are deliberately left out (their entries
   are keyed by (state, action) over pure transitions, so they stay sound
   across a rollback and keep the retry warm). *)
type checkpoint = {
  ck_state : State.t option;
  ck_rev_trace : Action.concrete list;
}

let checkpoint s = { ck_state = s.state; ck_rev_trace = s.rev_trace }

let restore s ck =
  s.state <- ck.ck_state;
  s.rev_trace <- ck.ck_rev_trace

let copy s =
  { sexpr = s.sexpr;
    state = s.state;
    rev_trace = s.rev_trace;
    (* fresh cache: sharing the array would alias mutable slots *)
    tentative = Dshard.replica ();
    auto = s.auto;
    vm = s.vm;
    vm_tried = s.vm_tried;
    route = s.route;
    route_for = s.route_for;
    sentinel = s.sentinel }
