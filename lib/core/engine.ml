type verdict = Semantics.verdict =
  | Illegal
  | Partial
  | Complete

(* Telemetry handles, created once at module init; the disabled path of
   every instrumented operation below is a single [!Telemetry.on] read. *)
let m_actions = Telemetry.counter "engine_actions_total"
let m_accepted = Telemetry.counter "engine_accepted_total"
let m_rejected = Telemetry.counter "engine_rejected_total"
let m_permitted_checks = Telemetry.counter "engine_permitted_checks_total"
let m_try_ns = Telemetry.histogram "engine_try_action_ns"
let g_state_size = Telemetry.gauge "engine_state_size"

(* The word problem runs on the compiled kernel when it is active: a table
   walk over the shared automaton of [e], falling back to the interpreted
   τ̂ per cold entry (and wholesale when the kernel is switched off). *)
let word_unobserved e w =
  if Automaton.active () then
    match Automaton.run_word (Automaton.shared e) w with
    | None -> Illegal
    | Some fin -> if fin then Complete else Partial
  else
    match State.trans_word (State.init e) w with
    | None -> Illegal
    | Some s -> if State.final s then Complete else Partial

let verdict_name = function
  | Illegal -> "illegal"
  | Partial -> "partial"
  | Complete -> "complete"

let word e w =
  if not !Telemetry.on then word_unobserved e w
  else
    (* all fields in [~exit]: the word length is only walked once the span
       has closed, keeping the measured section free of telemetry work *)
    Telemetry.span "engine.word"
      ~exit:(fun v ->
        [ ("len", Telemetry.Int (List.length w));
          ("verdict", Telemetry.Str (verdict_name v)) ])
      (fun () -> word_unobserved e w)

let word_int e w = Semantics.verdict_to_int (word e w)

type session = {
  sexpr : Expr.t;
  mutable state : State.t option;
  mutable rev_trace : Action.concrete list;
  (* bounded tentative-successor cache: the Fig. 9 grant loop asks
     [permitted c] and then commits with [try_action c]; remembering the
     successor computed by the tentative query makes that pattern perform
     one transition instead of two.  Direct-mapped over (state, action),
     so interleaved queries of other actions no longer evict the pair
     being committed (the former one-slot cache decayed to a 0.3% hit
     rate under exactly that interleaving — BENCH_pr4). *)
  tentative : Scache.t;
  (* the session's compiled kernel, bound lazily on the first transition so
     sessions created while compilation is disabled still pick it up when
     the switch is flipped back on *)
  mutable auto : Automaton.t option;
  (* the complexity sentinel, bound lazily on the first observed action so
     unobserved runs never pay the classification *)
  mutable sentinel : Sentinel.t option;
}

(* Switchable only for the experiment harness's before/after table. *)
let successor_cache = ref true
let set_successor_cache b = successor_cache := b
let successor_cache_enabled () = !successor_cache

(* Always-on hit/miss tallies of the successor cache, in the style of
   [State.cache_stats]; exported as the [engine_successor_cache_*] probes.
   Atomic: sharded sessions run on the evaluation domains. *)
let succ_hits = Atomic.make 0
let succ_misses = Atomic.make 0
let successor_cache_stats () = (Atomic.get succ_hits, Atomic.get succ_misses)

let reset_successor_cache_stats () =
  Atomic.set succ_hits 0;
  Atomic.set succ_misses 0

let () =
  Telemetry.register_probe "engine_successor_cache_hits" (fun () ->
      float_of_int (Atomic.get succ_hits));
  Telemetry.register_probe "engine_successor_cache_misses" (fun () ->
      float_of_int (Atomic.get succ_misses))

let create e =
  { sexpr = e;
    state = Some (State.init e);
    rev_trace = [];
    tentative = Scache.create ();
    auto = None;
    sentinel = None }

let expr s = s.sexpr

let session_sentinel s =
  match s.sentinel with
  | Some w -> w
  | None ->
    let w = Sentinel.create s.sexpr in
    s.sentinel <- Some w;
    w

let session_auto s =
  match s.auto with
  | Some a -> a
  | None ->
    let a = Automaton.shared s.sexpr in
    s.auto <- Some a;
    a

(* τ̂ as the session performs it: through the compiled kernel when active,
   the interpreted transition otherwise.  Once the automaton is bound,
   [Automaton.step] performs the (per-step) kill-switch check itself — the
   flags are read exactly once on the hot path. *)
let session_trans s st c =
  match s.auto with
  | Some a -> Automaton.step a st c
  | None ->
    if Automaton.active () then Automaton.step (session_auto s) st c
    else State.trans st c

(* τ̂ with the bounded cache: reuse the successor when the query repeats a
   cached (state, action) pair; otherwise compute and remember it. *)
let tentative_trans s st c =
  if not !successor_cache then session_trans s st c
  else
    match Scache.find s.tentative st c with
    | Some succ ->
      Atomic.incr succ_hits;
      succ
    | None ->
      Atomic.incr succ_misses;
      let succ = session_trans s st c in
      Scache.add s.tentative st c succ;
      succ

let permitted s c =
  match s.state with
  | None -> false
  | Some st ->
    let ok = tentative_trans s st c <> None in
    if !Telemetry.on then begin
      Telemetry.incr m_permitted_checks;
      Telemetry.event "engine.permitted"
        ~fields:
          [ ("action", Telemetry.Str (Action.concrete_to_string c));
            ("ok", Telemetry.Bool ok) ]
    end;
    ok

let try_action_unobserved s c =
  match s.state with
  | None -> false
  | Some st -> (
    match tentative_trans s st c with
    | Some st' ->
      (* no invalidation: the cache is keyed by (state, action), so entries
         for the pre-commit state stay sound and re-hit on cycles *)
      s.state <- Some st';
      s.rev_trace <- c :: s.rev_trace;
      true
    | None -> false)

let try_action s c =
  if not !Telemetry.on then try_action_unobserved s c
  else begin
    let t0 = Telemetry.now () in
    let ok = try_action_unobserved s c in
    let dur = Int64.sub (Telemetry.now ()) t0 in
    Telemetry.observe m_try_ns dur;
    Telemetry.incr m_actions;
    Telemetry.incr (if ok then m_accepted else m_rejected);
    let size = match s.state with Some st -> State.size st | None -> 0 in
    Telemetry.set_gauge g_state_size (float_of_int size);
    Sentinel.sample (session_sentinel s) ~size;
    Telemetry.event "engine.try_action"
      ~fields:
        [ ("action", Telemetry.Str (Action.concrete_to_string c));
          ("ok", Telemetry.Bool ok);
          ("commit", Telemetry.Bool ok);
          ("state_size", Telemetry.Int size);
          ("dur_ns", Telemetry.Int (Int64.to_int dur)) ];
    ok
  end

let feed s cs =
  if not !Telemetry.on then List.filter (fun c -> not (try_action_unobserved s c)) cs
  else
    (* both lengths in [~exit], computed after the span closed (see [word]) *)
    Telemetry.span "engine.feed"
      ~exit:(fun rejected ->
        [ ("offered", Telemetry.Int (List.length cs));
          ("rejected", Telemetry.Int (List.length rejected)) ])
      (fun () -> List.filter (fun c -> not (try_action s c)) cs)

let is_final s = match s.state with Some st -> State.final st | None -> false
let is_alive s = s.state <> None

let force s c =
  (* A dead session stays dead and its trace untouched: the trace lists
     actions some state actually consumed, and the null state consumes
     nothing. *)
  match s.state with
  | None -> false
  | Some st ->
    let next = tentative_trans s st c in
    s.state <- next;
    s.rev_trace <- c :: s.rev_trace;
    let ok = next <> None in
    if !Telemetry.on then begin
      Telemetry.incr m_actions;
      Telemetry.incr (if ok then m_accepted else m_rejected);
      Telemetry.event "engine.force"
        ~fields:
          [ ("action", Telemetry.Str (Action.concrete_to_string c));
            ("ok", Telemetry.Bool ok);
            (* forced actions happen regardless of the verdict: they belong
               to the replayable trace even when they killed the session *)
            ("commit", Telemetry.Bool true) ]
    end;
    ok

let trace s = List.rev s.rev_trace
let state_size s = match s.state with Some st -> State.size st | None -> 0
let state s = s.state

let explain_denial s c =
  match s.state with
  | Some st -> Explain.explain st c
  | None ->
    (* a forced action killed the session: every action is denied and no
       live subexpression can be blamed *)
    Some
      { Explain.eaction = c;
        blames =
          [ { Explain.bpath = [];
              locus = "(root)";
              operator = "session";
              reason = "session is dead (a forced action violated the expression)";
              requires = [] } ] }

let sentinel_warnings s = match s.sentinel with Some w -> Sentinel.warnings w | None -> 0

let save s =
  let state_sexp =
    match s.state with
    | Some st -> Sexp.List [ Sexp.Atom "s"; State.to_sexp st ]
    | None -> Sexp.Atom "null"
  in
  Sexp.to_string
    (Sexp.List
       [ Sexp.Atom "session";
         Sexp.List [ Sexp.Atom "expr"; Expr.to_sexp s.sexpr ];
         Sexp.List [ Sexp.Atom "state"; state_sexp ];
         Sexp.List
           (Sexp.Atom "trace" :: List.rev_map Action.concrete_to_sexp s.rev_trace)
       ])

let load str =
  match Sexp.of_string str with
  | Error m -> invalid_arg ("Engine.load: " ^ m)
  | Ok
      (Sexp.List
        [ Sexp.Atom "session";
          Sexp.List [ Sexp.Atom "expr"; expr ];
          Sexp.List [ Sexp.Atom "state"; state ];
          Sexp.List (Sexp.Atom "trace" :: trace)
        ]) ->
    let state =
      match state with
      | Sexp.Atom "null" -> None
      | Sexp.List [ Sexp.Atom "s"; st ] -> Some (State.of_sexp st)
      | _ -> invalid_arg "Engine.load: malformed state"
    in
    { sexpr = Expr.of_sexp expr;
      state;
      rev_trace = List.rev_map Action.concrete_of_sexp trace;
      tentative = Scache.create ();
      auto = None;
      sentinel = None }
  | Ok _ -> invalid_arg "Engine.load: malformed session"

let reset s =
  s.state <- Some (State.init s.sexpr);
  Scache.clear s.tentative;
  s.rev_trace <- []

let copy s =
  { sexpr = s.sexpr;
    state = s.state;
    rev_trace = s.rev_trace;
    (* fresh cache: sharing the array would alias mutable slots *)
    tentative = Scache.create ();
    auto = s.auto;
    sentinel = s.sentinel }
