(** Bounded memo tables with two-generation (segmented) eviction.

    A plain [Hashtbl] flushed wholesale at a size cap causes periodic miss
    storms: every hot entry is dropped together with the cold tail and must
    be recomputed immediately after.  This table keeps a young and an old
    generation instead; inserts fill the young one, a hit in the old
    generation promotes the entry, and reaching the per-generation cap
    discards only the old generation — the cold tail.  Retention is bounded
    by [2 * gen_cap] entries.

    Not thread-safe by itself; intended for domain-local caches (the users
    keep one instance per domain via [Domain.DLS]).  Only the eviction
    counter is shared across instances. *)

type ('k, 'v) t

val create : ?gen_cap:int -> evictions:int Atomic.t -> int -> ('k, 'v) t
(** [create ~evictions n] — an empty table with initial bucket hint [n].
    [gen_cap] (default [2^15]) bounds each generation; [evictions] is
    bumped by the number of entries discarded at each rotation (shared, so
    several tables can tally into one probe). *)

val find_opt : ('k, 'v) t -> 'k -> 'v option
(** Lookup across both generations; a hit in the old generation promotes
    the entry into the young one. *)

val find : ('k, 'v) t -> 'k -> 'v
(** Like {!find_opt} but allocation-free on a young-generation hit, for
    hot paths.  @raise Not_found when the key is in neither generation. *)

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert into the young generation, rotating generations first when the
    young one is at capacity. *)

val length : ('k, 'v) t -> int
(** Entries across both generations (promoted entries may be counted in
    both — an upper bound on distinct keys). *)

val clear : ('k, 'v) t -> unit
(** Drop both generations without counting evictions. *)
