open Interaction

(* Optimistic cross-shard execution for couplings the alphabet partition
   cannot split.

   [Partition.components] merges coupling operands whose alphabets overlap
   into one shard, so {!Pengine} only parallelizes when operands are
   pairwise independent — an expression like [y @ z @ w] with a shared
   "commit" action collapses to a single sequential shard even though the
   overwhelming share of its actions touch one operand.  This module
   shards such a coupling anyway, by operand groups, and keeps the
   semantics of the shared actions by optimistic concurrency:

   - Every shard owns a group of coupling operands (round-robin over the
     pool); an action's OWNERS are the shards whose alphabet contains it.
     Coupling semantics: an action is accepted iff its owner set is
     non-empty and EVERY owner accepts it (an action outside all
     alphabets is rejected; an action private to one shard shuffles past
     the others).
   - [feed] runs the whole offered batch on every shard concurrently and
     speculatively: each shard checkpoints its session, walks the batch,
     and records a verdict for every action it owns — betting that the
     other owners of a shared action will agree.
   - The coordinator merges the verdict matrix.  A multi-owner action
     with disagreeing verdicts is a CONFLICT: some shard advanced on an
     action the coupling as a whole rejects (or rejected one it accepts),
     so every verdict it produced after that point is tainted.  All
     shards roll back to their checkpoints and the batch retries
     serially.
   - A speculative run that merges cleanly is VALIDATED against the
     interpreted kernel before being committed: each shard replays its
     accepted subsequence from the pre-batch state through the
     interpreted τ̂ ({!State.trans_word} — the oracle the property tests
     trust) and compares the result physically with the session state
     (sound across domains: the hash-cons table is global).  A mismatch
     is treated exactly like a conflict.

   Correctness of the no-conflict fast path: if every multi-owner action
   drew unanimous verdicts, then by induction over the batch each shard's
   local run is precisely the projection of the sequential coupling run
   onto its operands — every action a shard advanced on is globally
   accepted, every action it rejected is globally rejected, and
   single-owner actions are decided by the one state that matters.  So
   the merged verdicts, the per-shard states and the merged trace all
   equal the sequential outcome.  Disagreement is detected on the spot
   and discarded wholesale; the serial retry (the same defensive
   per-action all-owners protocol {!Manager_sharded} uses for residual
   multi-owner actions) is trivially equivalent to the sequential run.

   The bet pays when shared actions are rare or verdict-stable: the
   common all-private batch commits after one parallel sweep plus one
   parallel replay, no per-action coordination at all.  The [Two_phase]
   protocol pins the defensive path — it is the baseline the E21
   experiment compares against, and the measured conflict rate
   ([stats]) prices the bet. *)

type protocol = Optimistic | Two_phase

let protocol_name = function
  | Optimistic -> "optimistic"
  | Two_phase -> "two-phase"

type shard = {
  salpha : Alpha.t;
  session : Engine.session;
  worker : int;
}

type t = {
  pool : Pool.t;
  whole : Expr.t;
  protocol : protocol;
  shards : shard array;
  (* the merged trace, maintained by the coordinator in offer order (the
     per-shard sessions only know their projections) *)
  mutable rev_trace : Action.concrete list;
}

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let batches_total = Atomic.make 0
let speculative_total = Atomic.make 0
let conflicts_total = Atomic.make 0
let conflict_actions_total = Atomic.make 0
let validation_failures_total = Atomic.make 0
let retries_total = Atomic.make 0
let serial_actions_total = Atomic.make 0

(* Where the time goes (telemetry-gated: zero clock reads when off).
   E21 counts conflicts; these price them — a high conflict rate is only
   a problem if rollback+serial time dominates the sweep. *)
let sweep_ns_total = Atomic.make 0
let validate_ns_total = Atomic.make 0
let rollback_ns_total = Atomic.make 0
let serial_ns_total = Atomic.make 0

(* Run [f] and charge its duration to [acc] while telemetry is on. *)
let timed_ns acc f =
  if !Telemetry.on then begin
    let t0 = Telemetry.now () in
    let r = f () in
    ignore
      (Atomic.fetch_and_add acc
         (Int64.to_int (Int64.sub (Telemetry.now ()) t0)));
    r
  end
  else f ()

type stats = {
  batches : int;  (** [feed] batches processed *)
  speculative : int;  (** batches attempted optimistically *)
  conflicts : int;  (** speculative batches discarded (incl. validation) *)
  conflict_actions : int;  (** multi-owner actions with mixed verdicts *)
  validation_failures : int;  (** clean merges rejected by the oracle *)
  retries : int;  (** serial retries after a rollback *)
  serial_actions : int;  (** actions executed by the defensive path *)
  sweep_ns : int;  (** time in speculative verdict sweeps (telemetry-gated) *)
  validate_ns : int;  (** time replaying accepted subsequences for validation *)
  rollback_ns : int;  (** time restoring checkpoints after a conflict *)
  serial_ns : int;  (** time in the defensive per-action protocol *)
}

let stats () =
  { batches = Atomic.get batches_total;
    speculative = Atomic.get speculative_total;
    conflicts = Atomic.get conflicts_total;
    conflict_actions = Atomic.get conflict_actions_total;
    validation_failures = Atomic.get validation_failures_total;
    retries = Atomic.get retries_total;
    serial_actions = Atomic.get serial_actions_total;
    sweep_ns = Atomic.get sweep_ns_total;
    validate_ns = Atomic.get validate_ns_total;
    rollback_ns = Atomic.get rollback_ns_total;
    serial_ns = Atomic.get serial_ns_total }

let reset_stats () =
  Atomic.set batches_total 0;
  Atomic.set speculative_total 0;
  Atomic.set conflicts_total 0;
  Atomic.set conflict_actions_total 0;
  Atomic.set validation_failures_total 0;
  Atomic.set retries_total 0;
  Atomic.set serial_actions_total 0;
  Atomic.set sweep_ns_total 0;
  Atomic.set validate_ns_total 0;
  Atomic.set rollback_ns_total 0;
  Atomic.set serial_ns_total 0

let () =
  let probe name r =
    Telemetry.register_probe name (fun () -> float_of_int (Atomic.get r))
  in
  probe "speculate_batches_total" batches_total;
  probe "speculate_speculative_batches_total" speculative_total;
  probe "speculate_conflicts_total" conflicts_total;
  probe "speculate_conflict_actions_total" conflict_actions_total;
  probe "speculate_validation_failures_total" validation_failures_total;
  probe "speculate_retries_total" retries_total;
  probe "speculate_serial_actions_total" serial_actions_total;
  probe "speculate_sweep_ns_total" sweep_ns_total;
  probe "speculate_validate_ns_total" validate_ns_total;
  probe "speculate_rollback_ns_total" rollback_ns_total;
  probe "speculate_serial_ns_total" serial_ns_total;
  Telemetry.register_probe "speculate_conflict_rate" (fun () ->
      let s = Atomic.get speculative_total in
      if s = 0 then 0.
      else float_of_int (Atomic.get conflicts_total) /. float_of_int s)

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

let create ~pool ?(protocol = Optimistic) ?shards e =
  let operands = Partition.flatten_sync e in
  let want =
    match shards with
    | Some n -> max 1 n
    | None -> Pool.size pool
  in
  let nshards = max 1 (min want (List.length operands)) in
  (* round-robin: operand i joins group (i mod nshards), preserving
     operand order inside each group *)
  let groups = Array.make nshards [] in
  List.iteri (fun i op -> groups.(i mod nshards) <- op :: groups.(i mod nshards)) operands;
  let shards =
    Array.mapi
      (fun w ops ->
        let ce = Expr.sync_list (List.rev ops) in
        (* create on the pinned worker so memo caches warm up there *)
        let session = Pool.run pool ~worker:w (fun () -> Engine.create ce) in
        { salpha = Alpha.of_expr ce; session; worker = w })
      groups
  in
  { pool; whole = e; protocol; shards; rev_trace = [] }

let expr t = t.whole
let protocol t = t.protocol
let shard_count t = Array.length t.shards

let owner_indices t c =
  let os = ref [] in
  for i = Array.length t.shards - 1 downto 0 do
    if Alpha.mem t.shards.(i).salpha c then os := i :: !os
  done;
  !os

(* Fan a per-shard operation over the pool and await in shard order. *)
let fan t f =
  Array.to_list t.shards
  |> List.map (fun sh -> Pool.submit t.pool ~worker:sh.worker (fun () -> f sh))
  |> List.map Pool.await

(* ------------------------------------------------------------------ *)
(* The defensive path                                                  *)
(* ------------------------------------------------------------------ *)

(* One action under the per-action all-owners protocol: every owner must
   permit, then every owner commits.  Between the permits and the commits
   nothing else touches the sessions (single coordinator), so the commit
   cannot fail; the engine's successor cache hands the commit the
   tentative successor already computed by the permit. *)
let serial_action t c =
  match owner_indices t c with
  | [] -> false
  | owners ->
    Atomic.incr serial_actions_total;
    let permitted =
      List.for_all
        (fun i ->
          let sh = t.shards.(i) in
          Pool.run t.pool ~worker:sh.worker (fun () -> Engine.permitted sh.session c))
        owners
    in
    if permitted then
      List.iter
        (fun i ->
          let sh = t.shards.(i) in
          let ok =
            Pool.run t.pool ~worker:sh.worker (fun () ->
                Engine.try_action sh.session c)
          in
          ignore ok)
        owners;
    if permitted then t.rev_trace <- c :: t.rev_trace;
    permitted

let feed_serial t actions =
  timed_ns serial_ns_total (fun () ->
      List.filter (fun c -> not (serial_action t c)) actions)

(* ------------------------------------------------------------------ *)
(* The optimistic path                                                 *)
(* ------------------------------------------------------------------ *)

(* Speculative sweep of one shard: checkpoint, walk the whole batch
   recording verdicts for owned offers, then replay the accepted
   subsequence from the pre-batch state through the interpreted τ̂ and
   compare physically.  Runs pinned on the shard's worker. *)
let speculate_shard sh i indexed owned =
  let ck = Engine.checkpoint sh.session in
  let pre = Engine.state sh.session in
  let m = Array.length indexed in
  let verdicts = Array.make m false in
  timed_ns sweep_ns_total (fun () ->
      for k = 0 to m - 1 do
        if owned.(k) i then
          verdicts.(k) <- Engine.try_action sh.session indexed.(k)
      done);
  let accepted = ref [] in
  for k = m - 1 downto 0 do
    if owned.(k) i && verdicts.(k) then accepted := indexed.(k) :: !accepted
  done;
  let valid =
    timed_ns validate_ns_total (fun () ->
        match pre with
        | None -> !accepted = []  (* a dead shard must not have accepted *)
        | Some st -> (
          match State.trans_word st !accepted with
          | None -> false
          | Some st' -> (
            match Engine.state sh.session with
            | Some st'' ->
              st' == st''  (* sound across domains: global hash-cons *)
            | None -> false)))
  in
  (ck, verdicts, valid)

let feed_optimistic t actions =
  let indexed = Array.of_list actions in
  let m = Array.length indexed in
  let owners = Array.map (owner_indices t) indexed in
  let owned = Array.map (fun os i -> List.memq i os) owners in
  Atomic.incr speculative_total;
  let runs =
    fan t (fun sh ->
        (* recover the shard's index from its pinned worker *)
        speculate_shard sh sh.worker indexed owned)
  in
  let runs = Array.of_list runs in
  (* merge: any multi-owner offer with disagreeing verdicts poisons the
     whole speculative run *)
  let conflicts = ref 0 in
  for k = 0 to m - 1 do
    match owners.(k) with
    | [] | [ _ ] -> ()
    | o0 :: rest ->
      let v0 = let _, vs, _ = runs.(o0) in vs.(k) in
      if
        List.exists
          (fun i ->
            let _, vs, _ = runs.(i) in
            vs.(k) <> v0)
          rest
      then incr conflicts
  done;
  let all_valid = Array.for_all (fun (_, _, v) -> v) runs in
  if !conflicts = 0 && all_valid then begin
    (* commit: merged verdict of offer k is its owners' unanimous verdict
       (false for unowned offers) *)
    let rejected = ref [] in
    for k = m - 1 downto 0 do
      match owners.(k) with
      | [] -> rejected := indexed.(k) :: !rejected
      | o :: _ ->
        let _, vs, _ = runs.(o) in
        if not vs.(k) then rejected := indexed.(k) :: !rejected
    done;
    for k = 0 to m - 1 do
      match owners.(k) with
      | [] -> ()
      | o :: _ ->
        let _, vs, _ = runs.(o) in
        if vs.(k) then t.rev_trace <- indexed.(k) :: t.rev_trace
    done;
    !rejected
  end
  else begin
    (* rollback everywhere and retry under the defensive protocol *)
    Atomic.incr conflicts_total;
    if !conflicts > 0 then
      ignore (Atomic.fetch_and_add conflict_actions_total !conflicts);
    if not all_valid then Atomic.incr validation_failures_total;
    Atomic.incr retries_total;
    timed_ns rollback_ns_total (fun () ->
        Array.iteri
          (fun i sh ->
            let ck, _, _ = runs.(i) in
            Pool.run t.pool ~worker:sh.worker (fun () ->
                Engine.restore sh.session ck))
          t.shards);
    feed_serial t actions
  end

(* ------------------------------------------------------------------ *)
(* API                                                                 *)
(* ------------------------------------------------------------------ *)

let feed t actions =
  Atomic.incr batches_total;
  match t.protocol with
  | Two_phase -> feed_serial t actions
  | Optimistic ->
    if Array.length t.shards <= 1 then begin
      (* single shard: plain engine walk, no speculation to merge *)
      let sh = t.shards.(0) in
      let verdicts =
        Pool.run t.pool ~worker:sh.worker (fun () ->
            List.map (fun c -> Engine.try_action sh.session c) actions)
      in
      List.iter2
        (fun c ok -> if ok then t.rev_trace <- c :: t.rev_trace)
        actions verdicts;
      List.combine actions verdicts
      |> List.filter_map (fun (c, ok) -> if ok then None else Some c)
    end
    else feed_optimistic t actions

let try_action t c = serial_action t c

let permitted t c =
  match owner_indices t c with
  | [] -> false
  | owners ->
    List.for_all
      (fun i ->
        let sh = t.shards.(i) in
        Pool.run t.pool ~worker:sh.worker (fun () -> Engine.permitted sh.session c))
      owners

let is_final t =
  fan t (fun sh -> Engine.is_final sh.session) |> List.for_all Fun.id

let is_alive t =
  fan t (fun sh -> Engine.is_alive sh.session) |> List.for_all Fun.id

let trace t = List.rev t.rev_trace

let reset t =
  fan t (fun sh -> Engine.reset sh.session) |> ignore;
  t.rev_trace <- []
