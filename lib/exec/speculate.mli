(** Optimistic cross-shard execution of overlapping couplings.

    {!Pengine} parallelizes a coupling only when
    {!Interaction.Partition.components} finds alphabet-disjoint operands;
    one shared action between two operands collapses the whole expression
    into a single sequential shard.  This module shards such a coupling by
    operand {e groups} anyway and preserves the coupling semantics of
    shared actions — accepted iff the owner set is non-empty and every
    owning shard accepts — by optimistic concurrency:

    - [feed] runs the whole batch on every shard speculatively (each
      shard checkpoints, walks the batch, records verdicts for the
      actions it owns);
    - the coordinator merges the verdict matrix; a multi-owner action
      with disagreeing verdicts is a {e conflict} — every shard rolls
      back to its checkpoint and the batch retries serially under the
      defensive per-action all-owners protocol;
    - a clean merge is {e validated} before commit: each shard replays
      its accepted subsequence from the pre-batch state through the
      interpreted τ̂ ({!Interaction.State.trans_word}) and compares the
      result physically with the session state (the global hash-cons
      table makes [==] sound across domains); a mismatch counts and
      retries like a conflict.

    When no multi-owner action disagrees, each shard's run is exactly the
    projection of the sequential coupling run, so the fast path is
    equivalent to sequential execution — an all-private batch commits
    after one parallel sweep with no per-action coordination.  Conflict
    and retry rates are counted ({!stats}) and exported as the
    [speculate_*] telemetry probes, so the E21 experiment can price the
    bet against the {!Two_phase} baseline. *)

type t

type protocol =
  | Optimistic  (** speculate per batch, validate, retry on conflict *)
  | Two_phase
      (** defensive baseline: per action, ask every owner, then commit —
          the protocol {!Manager_sharded} uses for residual multi-owner
          actions *)

val protocol_name : protocol -> string

val create : pool:Pool.t -> ?protocol:protocol -> ?shards:int -> Interaction.Expr.t -> t
(** Shard the (nested) top-level coupling operands of [e] round-robin
    into [shards] groups (default: the pool size; never more than the
    operand count, never less than 1) and pin shard [i] to pool worker
    [i].  A non-coupling expression yields one shard and degrades to a
    plain engine session. *)

val expr : t -> Interaction.Expr.t
val protocol : t -> protocol
val shard_count : t -> int

val feed : t -> Interaction.Action.concrete list -> Interaction.Action.concrete list
(** Offer a batch; returns the rejected actions in offer order.
    Equivalent to feeding the sequential coupling session action by
    action ([Optimistic] validates that equivalence per batch against
    the interpreted kernel). *)

val try_action : t -> Interaction.Action.concrete -> bool
(** One action under the defensive protocol (a single action cannot
    amortize a speculative sweep). *)

val permitted : t -> Interaction.Action.concrete -> bool
(** Would [try_action] accept?  Asks every owner tentatively. *)

val is_final : t -> bool
val is_alive : t -> bool

val trace : t -> Interaction.Action.concrete list
(** The merged accepted trace, in offer order across batches. *)

val reset : t -> unit

(** {1 Stats}

    Process-wide counters over all instances, exported as the
    [speculate_*] probes. *)

type stats = {
  batches : int;  (** [feed] batches processed *)
  speculative : int;  (** batches attempted optimistically *)
  conflicts : int;  (** speculative batches discarded (incl. validation) *)
  conflict_actions : int;  (** multi-owner actions with mixed verdicts *)
  validation_failures : int;  (** clean merges rejected by the oracle *)
  retries : int;  (** serial retries after a rollback *)
  serial_actions : int;  (** actions executed by the defensive path *)
  sweep_ns : int;  (** time in speculative verdict sweeps (telemetry-gated) *)
  validate_ns : int;  (** time replaying accepted subsequences for validation *)
  rollback_ns : int;  (** time restoring checkpoints after a conflict *)
  serial_ns : int;  (** time in the defensive per-action protocol *)
}

val stats : unit -> stats
val reset_stats : unit -> unit
