(** A fixed pool of worker domains with sticky per-worker task queues.

    The evaluation layers pin work to workers: shard [i] of a decomposed
    expression always runs on worker [i mod size], so the states it builds
    stay in that domain's hash-cons and memo tables (see the parallel
    evaluation notes in {!Interaction.State}).  Each worker owns a FIFO
    protected by a mutex/condition pair; there is no work stealing — the
    stickiness {e is} the point.

    A pool created with [~domains:1] spawns no domains at all: submission
    runs the task inline on the caller.  This is the sequential fallback —
    the same code path, minus the parallelism and its overheads.

    Discipline: tasks must not submit to their own pool and await the
    result (a single-worker pool would deadlock).  The evaluation layers
    only submit from the coordinating domain. *)

type t

type 'a promise

val create : domains:int -> t
(** [create ~domains] — a pool of [max 1 domains] lanes.  [domains = 1]
    is inline (no domains spawned); [domains = n > 1] spawns [n] worker
    domains. *)

val size : t -> int
(** Number of lanes (1 for an inline pool). *)

val is_inline : t -> bool

val submit : t -> worker:int -> (unit -> 'a) -> 'a promise
(** Enqueue a task on worker [worker mod size] (run inline on an inline
    pool, or when the pool is already shut down).  Tasks on one worker run
    in submission order. *)

val await : 'a promise -> 'a
(** Block until the task finished; re-raises its exception. *)

val run : t -> worker:int -> (unit -> 'a) -> 'a
(** [await (submit ...)]. *)

val map_workers : t -> (unit -> 'a) list -> 'a list
(** Submit the [i]-th thunk to worker [i] and await all, in order.  The
    canonical "one batch per shard" fan-out. *)

val queue_depth : t -> int -> int
(** Tasks currently queued (not yet started) on a worker lane; 0 on an
    inline pool. *)

val submitted : t -> int
(** Tasks accepted since creation (including inline runs). *)

val completed : t -> int

val utilization : t -> Prof.Util.lane_stats list
(** Per-lane busy time, task count, and busy/wall utilization since the
    pool was created.  Busy time is only accounted while telemetry is on
    (the accounting costs two clock reads per task), so a telemetry-off
    pool reports zeros; wall time always advances. *)

val shutdown : t -> unit
(** Drain every queue, stop and join the worker domains.  Idempotent.
    Tasks submitted after shutdown run inline. *)

val with_pool : domains:int -> (t -> 'a) -> 'a
(** [create], run, [shutdown] (also on exceptions). *)
