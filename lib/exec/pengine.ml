open Interaction

(* Shard i always runs on pool worker i.  The hash-cons table is global
   (states compare with == across domains), but the memo caches and the
   per-domain replicas of the shared automaton's caches are not — pinning
   keeps a shard's transitions hitting one domain's warm caches. *)

type shard = {
  salpha : Alpha.t;
  session : Engine.session;
  worker : int;
}

type impl =
  | Seq of Engine.session
  | Shards of shard array

type t = {
  pool : Pool.t;
  whole : Expr.t;
  impl : impl;
}

type mode =
  | Sequential
  | Sharded of int

let m_routed = Telemetry.counter "pengine_routed_actions_total"
let m_unowned = Telemetry.counter "pengine_unowned_actions_total"
let m_batches = Telemetry.counter "pengine_parallel_batches_total"

let create ~pool e =
  let comps = if Pool.size pool <= 1 then [] else Partition.components e in
  match comps with
  | [] | [ _ ] -> { pool; whole = e; impl = Seq (Engine.create e) }
  | comps ->
    let shards =
      List.mapi
        (fun i (ce, al) ->
          (* create on the pinned worker so the initial state lives there *)
          let session = Pool.run pool ~worker:i (fun () -> Engine.create ce) in
          { salpha = al; session; worker = i })
        comps
    in
    { pool; whole = e; impl = Shards (Array.of_list shards) }

let mode t =
  match t.impl with
  | Seq _ -> Sequential
  | Shards s -> Sharded (Array.length s)

let shard_count t =
  match t.impl with
  | Seq _ -> 1
  | Shards s -> Array.length s

let expr t = t.whole

let owner_of shards c =
  let n = Array.length shards in
  let rec go i =
    if i >= n then None
    else if Alpha.mem shards.(i).salpha c then Some i
    else go (i + 1)
  in
  go 0

let route t shards c f =
  match owner_of shards c with
  | None ->
    Telemetry.incr m_unowned;
    false
  | Some i ->
    Telemetry.incr m_routed;
    let sh = shards.(i) in
    Pool.run t.pool ~worker:sh.worker (fun () -> f sh.session c)

let permitted t c =
  match t.impl with
  | Seq s -> Engine.permitted s c
  | Shards shards -> route t shards c Engine.permitted

let try_action t c =
  match t.impl with
  | Seq s -> Engine.try_action s c
  | Shards shards -> route t shards c Engine.try_action

(* Fan an operation over all shards concurrently and await the results in
   shard order. *)
let fan t shards f =
  Array.to_list shards
  |> List.map (fun sh -> Pool.submit t.pool ~worker:sh.worker (fun () -> f sh))
  |> List.map Pool.await

let feed t actions =
  match t.impl with
  | Seq s -> Engine.feed s actions
  | Shards shards ->
    Telemetry.incr m_batches;
    (* Split the offered sequence by owning shard, keeping offer indices so
       rejections merge back in offer order.  Accepted actions of different
       shards commute, and a rejected action leaves its shard unchanged, so
       running the per-shard subsequences concurrently is equivalent to the
       sequential feed. *)
    let indexed = List.mapi (fun i c -> (i, c)) actions in
    let buckets = Array.make (Array.length shards) [] in
    let unowned = ref [] in
    List.iter
      (fun (i, c) ->
        match owner_of shards c with
        | None ->
          Telemetry.incr m_unowned;
          unowned := (i, c) :: !unowned
        | Some s ->
          Telemetry.incr m_routed;
          buckets.(s) <- (i, c) :: buckets.(s))
      indexed;
    let rejected_per_shard =
      fan t shards (fun sh ->
          let batch = List.rev buckets.(sh.worker) in
          List.filter (fun (_, c) -> not (Engine.try_action sh.session c)) batch)
    in
    List.concat (!unowned :: rejected_per_shard)
    |> List.sort (fun (i, _) (j, _) -> compare i j)
    |> List.map snd

let word ~pool e w =
  let comps = if Pool.size pool <= 1 then [] else Partition.components e in
  match comps with
  | [] | [ _ ] -> Engine.word e w
  | comps ->
    let comps = Array.of_list comps in
    let n = Array.length comps in
    let owner c =
      let rec go i =
        if i >= n then None else if Alpha.mem (snd comps.(i)) c then Some i else go (i + 1)
      in
      go 0
    in
    let buckets = Array.make n [] in
    let unowned = ref false in
    List.iter
      (fun c ->
        match owner c with
        | None -> unowned := true
        | Some i -> buckets.(i) <- c :: buckets.(i))
      w;
    if !unowned then Engine.Illegal
    else begin
      Telemetry.incr m_batches;
      let verdicts =
        Array.to_list comps
        |> List.mapi (fun i (ce, _) ->
               Pool.submit pool ~worker:i (fun () -> Engine.word ce (List.rev buckets.(i))))
        |> List.map Pool.await
      in
      if List.exists (fun v -> v = Engine.Illegal) verdicts then Engine.Illegal
      else if List.for_all (fun v -> v = Engine.Complete) verdicts then Engine.Complete
      else Engine.Partial
    end

let is_final t =
  match t.impl with
  | Seq s -> Engine.is_final s
  | Shards shards ->
    fan t shards (fun sh -> Engine.is_final sh.session) |> List.for_all Fun.id

let is_alive t =
  match t.impl with
  | Seq s -> Engine.is_alive s
  | Shards shards ->
    fan t shards (fun sh -> Engine.is_alive sh.session) |> List.for_all Fun.id

let state_size t =
  match t.impl with
  | Seq s -> Engine.state_size s
  | Shards shards ->
    fan t shards (fun sh -> Engine.state_size sh.session) |> List.fold_left ( + ) 0

let traces t =
  match t.impl with
  | Seq s -> [ Engine.trace s ]
  | Shards shards -> fan t shards (fun sh -> Engine.trace sh.session)

let trace_len t = List.fold_left (fun acc tr -> acc + List.length tr) 0 (traces t)

let reset t =
  match t.impl with
  | Seq s -> Engine.reset s
  | Shards shards -> fan t shards (fun sh -> Engine.reset sh.session) |> ignore
