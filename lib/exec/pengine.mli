open Interaction

(** Multicore evaluation of the action and word problems.

    A session whose expression is a top-level coupling of alphabet-disjoint
    components ({!Interaction.Partition}) is evaluated {e sharded}: one
    {!Engine} session per component, each pinned to one worker of a
    {!Pool}.  Independence of the components under τ̂ (an action transitions
    exactly the shard owning it, and is shuffled past every other via the
    complement language κ) makes the decomposition semantics-preserving:
    verdicts, accept/reject decisions and per-shard traces agree with the
    sequential session on the undecomposed expression — the property the
    test suite checks against the sequential oracle.

    Expressions that do not decompose, or pools with a single lane
    ([domains = 1]), fall back to a plain sequential {!Engine} session. *)

type t

type mode =
  | Sequential  (** plain {!Engine} session on the whole expression *)
  | Sharded of int  (** number of shards, each pinned to a pool worker *)

val create : pool:Pool.t -> Expr.t -> t
(** Decompose and pin.  Shard sessions are created {e on} their worker
    domain, so every state of a shard lives in one domain's tables. *)

val mode : t -> mode

val shard_count : t -> int
(** 1 in sequential mode. *)

val expr : t -> Expr.t

val permitted : t -> Action.concrete -> bool
(** Tentative: would the action be accepted now?  Routed to the owning
    shard; an action owned by no shard is never permitted (it falls
    outside the coupling's alphabet). *)

val try_action : t -> Action.concrete -> bool
(** Route the action to its owning shard and commit there. *)

val feed : t -> Action.concrete list -> Action.concrete list
(** Try each action in order; returns the rejected ones (in offer order).
    The parallel entry point: the offered sequence is split by owning
    shard and the per-shard subsequences run concurrently, one batch per
    worker.  Equivalent to sequential {!Engine.feed} because rejected
    actions do not change state and accepted actions of different shards
    commute. *)

val word : pool:Pool.t -> Expr.t -> Action.concrete list -> Engine.verdict
(** The word problem, sharded: each shard folds τ̂ over its projection of
    the word concurrently.  Illegal if any action is owned by no shard or
    any shard's projection dies; Complete if furthermore every shard ends
    final. *)

val is_final : t -> bool
val is_alive : t -> bool

val state_size : t -> int
(** Sum of the shard state sizes. *)

val traces : t -> Action.concrete list list
(** Accepted actions per shard, in execution order (a single list in
    sequential mode).  The sharded evaluation has no global order across
    shards — per-shard traces are the meaningful replay unit, and each
    equals the sequential trace's projection onto that shard's alphabet. *)

val trace_len : t -> int
(** Total accepted actions across shards. *)

val reset : t -> unit
