(* Fixed worker pool over Domain + Mutex/Condition; see pool.mli for the
   contract.  No dependencies beyond the stdlib: the multicore layer must
   stay linkable everywhere the core is. *)

type 'a promise = {
  pm : Mutex.t;
  pcv : Condition.t;
  mutable outcome : ('a, exn) result option;
}

let promise () = { pm = Mutex.create (); pcv = Condition.create (); outcome = None }

let fulfill p outcome =
  Mutex.lock p.pm;
  p.outcome <- Some outcome;
  Condition.broadcast p.pcv;
  Mutex.unlock p.pm

let await p =
  Mutex.lock p.pm;
  while p.outcome = None do
    Condition.wait p.pcv p.pm
  done;
  let outcome = p.outcome in
  Mutex.unlock p.pm;
  match outcome with
  | Some (Ok v) -> v
  | Some (Error e) -> raise e
  | None -> assert false

type worker = {
  wm : Mutex.t;
  wcv : Condition.t;
  queue : (unit -> unit) Queue.t;  (* guarded by [wm] *)
  mutable stopping : bool;  (* guarded by [wm] *)
  mutable domain : unit Domain.t option;
}

type t = {
  workers : worker array;  (* empty for an inline pool *)
  lanes : int;
  submitted_n : int Atomic.t;
  completed_n : int Atomic.t;
  util : Prof.Util.t;  (* per-lane busy/idle accounting (telemetry-gated) *)
  mutable shut : bool;
}

(* Submission-side contention on the worker queue mutexes.  The worker
   loop's own lock/Condition.wait is deliberately *not* instrumented:
   blocking there is idleness, not contention. *)
let submit_site = Prof.Lock.site "pool.submit"

let worker_loop w () =
  let rec go () =
    Mutex.lock w.wm;
    while Queue.is_empty w.queue && not w.stopping do
      Condition.wait w.wcv w.wm
    done;
    match Queue.take_opt w.queue with
    | Some task ->
      Mutex.unlock w.wm;
      task ();
      go ()
    | None ->
      (* stopping and drained *)
      Mutex.unlock w.wm
  in
  go ()

let create ~domains =
  let lanes = max 1 domains in
  let workers =
    if lanes = 1 then [||]
    else
      Array.init lanes (fun _ ->
          { wm = Mutex.create (); wcv = Condition.create (); queue = Queue.create ();
            stopping = false; domain = None })
  in
  Array.iter (fun w -> w.domain <- Some (Domain.spawn (worker_loop w))) workers;
  { workers; lanes; submitted_n = Atomic.make 0; completed_n = Atomic.make 0;
    util = Prof.Util.create lanes; shut = false }

let size t = t.lanes
let is_inline t = Array.length t.workers = 0

let run_now t ~lane f p =
  let timed = !Telemetry.on in
  let t0 = if timed then Telemetry.now () else 0L in
  let outcome = match f () with v -> Ok v | exception e -> Error e in
  if timed then
    Prof.Util.record t.util ~lane
      (Int64.to_int (Int64.sub (Telemetry.now ()) t0));
  (* bump the counter before fulfilling: an awaiter that has seen the
     result must also see the completion reflected in [completed] *)
  Atomic.incr t.completed_n;
  fulfill p outcome

let submit t ~worker f =
  Atomic.incr t.submitted_n;
  let p = promise () in
  let lane = ((worker mod t.lanes) + t.lanes) mod t.lanes in
  if is_inline t || t.shut then run_now t ~lane f p
  else begin
    let w = t.workers.(lane) in
    let task () = run_now t ~lane f p in
    Prof.Lock.acquire submit_site w.wm;
    Queue.add task w.queue;
    Condition.signal w.wcv;
    Mutex.unlock w.wm
  end;
  p

let run t ~worker f = await (submit t ~worker f)

let map_workers t fs =
  List.mapi (fun i f -> submit t ~worker:i f) fs |> List.map await

let queue_depth t i =
  if is_inline t then 0
  else begin
    let w = t.workers.(((i mod t.lanes) + t.lanes) mod t.lanes) in
    Mutex.lock w.wm;
    let n = Queue.length w.queue in
    Mutex.unlock w.wm;
    n
  end

let submitted t = Atomic.get t.submitted_n
let completed t = Atomic.get t.completed_n
let utilization t = Prof.Util.snapshot t.util

let shutdown t =
  if not t.shut then begin
    t.shut <- true;
    Array.iter
      (fun w ->
        Mutex.lock w.wm;
        w.stopping <- true;
        Condition.broadcast w.wcv;
        Mutex.unlock w.wm)
      t.workers;
    Array.iter
      (fun w ->
        match w.domain with
        | Some d ->
          Domain.join d;
          w.domain <- None
        | None -> ())
      t.workers
  end

let with_pool ~domains f =
  let t = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
