(** Cross-layer telemetry: structured events with nested spans, a metrics
    registry (counters, gauges, latency histograms, polled probes), and
    pluggable sinks (bounded ring buffer, JSONL export, Prometheus-style
    text exposition).

    Cost model: every instrumentation site is gated on the single {!on}
    flag.  When telemetry is disabled an instrumented operation pays one
    [bool ref] read and allocates nothing.  Metric handles are created
    once at module initialization time, so enabled hot paths only touch
    mutable record fields. *)

(** {1 Enablement} *)

val on : bool ref
(** The global gate.  Instrumentation sites read this directly
    ([if !Telemetry.on then ...]) so the disabled path is a single load.
    Prefer {!enable}/{!disable} over writing it. *)

val enable : unit -> unit
val disable : unit -> unit
val enabled : unit -> bool

(** {1 Clock} *)

val set_clock : (unit -> int64) -> unit
(** Install a monotonic nanosecond clock.  The default is a wall clock
    ([Unix.gettimeofday], clamped non-decreasing process-wide), so span
    durations include blocked time — queue wait, fsync, cross-domain
    handoffs; tests install a deterministic counter. *)

val now : unit -> int64
(** Current time in nanoseconds according to the installed clock. *)

(** {1 Trace context}

    A {e trace id} names one externally submitted request (a worklist
    handler's attempt, one server command, one protocol round).  It is
    minted at the system boundary and stamped onto every event emitted
    while the request is being processed, linking the ask/confirm
    messages that cross queue and shard boundaries back to their origin.
    The ambient context is domain-local; ids come from one atomic
    process-wide counter.  The parallel layers forward the current id
    into worker closures with {!with_trace}. *)

val new_trace : unit -> int
(** Mint a fresh process-unique trace id (1-based). *)

val current_trace : unit -> int
(** The ambient trace id of the calling domain; 0 = no trace. *)

val with_trace : int -> (unit -> 'a) -> 'a
(** Run the thunk with the given ambient trace id, restoring the previous
    one afterwards (also on exceptions). *)

val in_new_trace : (unit -> 'a) -> 'a
(** [with_trace (new_trace ()) f].  Gate boundary call sites on {!on}:
    minting ids while telemetry is off only burns counter values. *)

(** {1 Events and spans} *)

type value = Int of int | Float of float | Str of string | Bool of bool
type fields = (string * value) list
type kind = Span_start | Span_end | Point

type event = {
  seq : int;  (** global emission order, 1-based *)
  ts : int64;  (** clock reading at emission, ns *)
  kind : kind;
  name : string;
  span : int;  (** id of the span this event belongs to; 0 = root *)
  parent : int;  (** id of the enclosing span; 0 = none *)
  trace : int;  (** ambient trace id at emission; 0 = untraced *)
  dom : int;  (** id of the emitting domain; 0 = the initial domain *)
  fields : fields;
}

val event : ?fields:fields -> string -> unit
(** Emit a point event inside the current span.  No-op when disabled —
    but the [fields] argument is still built by the caller, so gate the
    call site on {!on} when fields are non-trivial. *)

val span : ?fields:fields -> ?exit:('a -> fields) -> string -> (unit -> 'a) -> 'a
(** [span name f] runs [f] bracketed by [Span_start]/[Span_end] events
    sharing a fresh span id.  The end event carries ["dur_ns"] plus the
    [exit] fields computed from the result; if [f] raises, the end event
    carries [("raised", Bool true)] and the exception is re-raised with
    its backtrace.  When disabled this is exactly [f ()]. *)

val current_span : unit -> int
(** Id of the innermost open span, 0 when none (useful in tests). *)

(** {1 Sinks} *)

type sink = event -> unit

val add_sink : sink -> unit
val clear_sinks : unit -> unit

val jsonl_sink : (string -> unit) -> sink
(** [jsonl_sink write] formats each event as one JSON line (terminated
    by a newline) and passes it to [write]. *)

(** Bounded in-memory ring buffer; oldest events are evicted first. *)
module Ring : sig
  type t

  val create : int -> t
  val capacity : t -> int
  val sink : t -> sink
  val length : t -> int
  val dropped : t -> int  (** events evicted since creation/clear *)

  val to_list : t -> event list
  (** Retained events, oldest first. *)

  val clear : t -> unit
end

(** {1 Metrics registry} *)

type counter
type gauge
type histogram

val counter : string -> counter
(** Find-or-create a monotone counter.  Raises [Invalid_argument] if the
    name is registered with a different metric type. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val gauge : string -> gauge

val set_gauge : gauge -> float -> unit
(** Sets the current value and updates the high-watermark. *)

val gauge_value : gauge -> float
val gauge_hwm : gauge -> float

val histogram : string -> histogram
(** Latency histogram with fixed logarithmic-ish nanosecond buckets. *)

val observe : histogram -> int64 -> unit
val histogram_count : histogram -> int
val histogram_sum : histogram -> float

val histogram_overflow : histogram -> int
(** Observations above the largest finite bucket bound.  They count into
    [_count], [_sum] and the [+Inf] bucket but into no finite bucket; each
    histogram also registers a [<name>_overflow] probe so a saturated
    histogram is visible in the exposition. *)

val histogram_quantile : histogram -> float -> float
(** [histogram_quantile h q] estimates the [q]-quantile (0 ≤ q ≤ 1, ns)
    by linear interpolation within the bucket holding the q-th
    observation.  0 on an empty histogram; quantiles landing above the
    largest finite bound are clamped to it (see
    {!histogram_overflow}). *)

val time : histogram -> (unit -> 'a) -> 'a
(** Run the thunk and observe its duration (when enabled). *)

val register_probe : string -> (unit -> float) -> unit
(** Register a gauge whose value is sampled at exposition time.  Probes
    report always-on counters owned by other modules (cache hit/miss
    tallies, live-state counts) without any per-operation gating. *)

val expose : unit -> string
(** Prometheus-style text exposition of every registered metric, sorted
    by name for deterministic output.  Gauges also emit a [_hwm] line;
    histograms emit cumulative [_bucket{le="..."}], [_sum], [_count],
    and estimated [_p50]/[_p99] lines ({!histogram_quantile}). *)

val reset : unit -> unit
(** Zero all counters, gauges and histograms (probes are stateless) and
    reset the event sequence / span counters.  For tests and for the
    workbench [reset] of a metrics window. *)

(** {1 JSONL} *)

val event_to_json : event -> string
(** One flat JSON object (no trailing newline): the built-in keys [seq],
    [ts], [ev] ("start"|"end"|"point"), [name], [span], [parent], [trace],
    [dom] (omitted when 0), then the event's fields at top level. *)

(** Parsing the exported JSONL back, so offline tools ([Audit],
    [Instrument]) can consume online traces. *)
module Jsonl : sig
  val parse_line : string -> event option
  (** Parse one line as produced by {!event_to_json}; [None] on blank or
      malformed lines. *)

  val events_of_string : string -> event list
  (** All parseable events, in file order. *)

  val accepted_actions : string -> string list
  (** The committed action subsequence of a trace: events carrying both
      an ["action"] string field and [("commit", Bool true)], in order.
      This is the replayable log an offline audit needs. *)
end
