(* Cross-layer telemetry: events/spans, metrics registry, pluggable sinks.
   See telemetry.mli for the contract.  The only dependency is [unix]
   (which ships with the compiler) for the wall clock, so every layer of
   the system can link against it. *)

(* ------------------------------------------------------------------ *)
(* Enablement and clock                                                *)
(* ------------------------------------------------------------------ *)

let on = ref false
let enable () = on := true
let disable () = on := false
let enabled () = !on

(* Wall clock, not CPU time: span durations must include time spent
   blocked (queue wait, fsync, another domain holding a lock), which
   [Sys.time] never sees.  [Unix.gettimeofday] can step backwards under
   NTP adjustment, so readings are clamped to be non-decreasing
   process-wide — an mtime-style monotonic wrapper without a new
   dependency.  Callers wanting determinism (tests) install their own
   clock. *)
let last_reading = Atomic.make 0L

let default_clock () =
  let t = Int64.of_float (Unix.gettimeofday () *. 1e9) in
  let rec clamp () =
    let prev = Atomic.get last_reading in
    if Int64.compare t prev <= 0 then prev
    else if Atomic.compare_and_set last_reading prev t then t
    else clamp ()
  in
  clamp ()

let clock = ref default_clock
let set_clock c = clock := c
let now () = !clock ()

(* ------------------------------------------------------------------ *)
(* Trace context                                                       *)
(* ------------------------------------------------------------------ *)

(* One trace id per externally submitted request, minted at the system
   boundary (worklist handler, adapter, server command loop) and carried
   by every event emitted while the request is being processed.  The
   ambient context is domain-local so concurrent shards never clobber
   each other; ids come from one atomic counter so they are unique
   process-wide, and the parallel layers forward the originating id into
   worker closures explicitly. *)
let trace_counter = Atomic.make 0

let trace_ctx : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

let new_trace () = Atomic.fetch_and_add trace_counter 1 + 1
let current_trace () = !(Domain.DLS.get trace_ctx)

let with_trace id f =
  let r = Domain.DLS.get trace_ctx in
  let saved = !r in
  r := id;
  match f () with
  | v ->
    r := saved;
    v
  | exception e ->
    let bt = Printexc.get_raw_backtrace () in
    r := saved;
    Printexc.raise_with_backtrace e bt

let in_new_trace f = with_trace (new_trace ()) f

(* ------------------------------------------------------------------ *)
(* Events and spans                                                    *)
(* ------------------------------------------------------------------ *)

type value = Int of int | Float of float | Str of string | Bool of bool
type fields = (string * value) list
type kind = Span_start | Span_end | Point

type event = {
  seq : int;
  ts : int64;
  kind : kind;
  name : string;
  span : int;
  parent : int;
  trace : int;
  dom : int;
  fields : fields;
}

type sink = event -> unit

let sinks : sink list ref = ref []
let add_sink s = sinks := !sinks @ [ s ]
let clear_sinks () = sinks := []

let seq_counter = ref 0
let span_counter = ref 0
let span_stack : int list ref = ref []
let current_span () = match !span_stack with [] -> 0 | id :: _ -> id

let emit kind name span parent fields =
  Stdlib.incr seq_counter;
  let ev =
    { seq = !seq_counter; ts = now (); kind; name; span; parent;
      trace = current_trace (); dom = (Domain.self () :> int); fields }
  in
  List.iter (fun s -> s ev) !sinks

let event ?(fields = []) name =
  if !on then emit Point name (current_span ()) 0 fields

let span ?(fields = []) ?exit name f =
  if not !on then f ()
  else begin
    Stdlib.incr span_counter;
    let id = !span_counter in
    let parent = current_span () in
    let t0 = now () in
    emit Span_start name id parent fields;
    span_stack := id :: !span_stack;
    let finish extra =
      (match !span_stack with
      | top :: rest when top = id -> span_stack := rest
      | stack -> span_stack := List.filter (fun i -> i <> id) stack);
      let dur = Int64.to_int (Int64.sub (now ()) t0) in
      emit Span_end name id parent (("dur_ns", Int dur) :: extra)
    in
    match f () with
    | r ->
      finish (match exit with Some g -> g r | None -> []);
      r
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      finish [ ("raised", Bool true) ];
      Printexc.raise_with_backtrace e bt
  end

(* ------------------------------------------------------------------ *)
(* Ring buffer sink                                                    *)
(* ------------------------------------------------------------------ *)

module Ring = struct
  type t = {
    buf : event option array;
    mutable pushed : int;  (* total pushes since creation/clear *)
  }

  let create cap = { buf = Array.make (max 1 cap) None; pushed = 0 }
  let capacity r = Array.length r.buf

  let sink r ev =
    r.buf.(r.pushed mod Array.length r.buf) <- Some ev;
    r.pushed <- r.pushed + 1

  let length r = min r.pushed (Array.length r.buf)
  let dropped r = max 0 (r.pushed - Array.length r.buf)

  let to_list r =
    let cap = Array.length r.buf in
    let n = length r in
    List.init n (fun i ->
        match r.buf.((r.pushed - n + i) mod cap) with
        | Some ev -> ev
        | None -> assert false)

  let clear r =
    Array.fill r.buf 0 (Array.length r.buf) None;
    r.pushed <- 0
end

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                    *)
(* ------------------------------------------------------------------ *)

type counter = { mutable count : int }
type gauge = { mutable current : float; mutable hwm : float }

(* Bucket upper bounds in nanoseconds, roughly logarithmic: enough
   resolution under 1µs for the τ̂ hot path, coarse above 1ms. *)
let bucket_bounds =
  [| 100.; 250.; 500.; 1_000.; 2_500.; 5_000.; 10_000.; 25_000.; 50_000.;
     100_000.; 250_000.; 500_000.; 1_000_000.; 10_000_000.; 100_000_000. |]

type histogram = {
  buckets : int array;  (* one slot per bound *)
  mutable hcount : int;
  mutable hsum : float;  (* ns *)
  mutable hoverflow : int;  (* observations above the largest bound *)
}

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram
  | Probe of (unit -> float)

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

let type_clash name =
  invalid_arg
    (Printf.sprintf "Telemetry: %S already registered with a different type" name)

let counter name =
  match Hashtbl.find_opt registry name with
  | Some (Counter c) -> c
  | Some _ -> type_clash name
  | None ->
    let c = { count = 0 } in
    Hashtbl.add registry name (Counter c);
    c

let add c n = if !on then c.count <- c.count + n
let incr c = add c 1
let counter_value c = c.count

let gauge name =
  match Hashtbl.find_opt registry name with
  | Some (Gauge g) -> g
  | Some _ -> type_clash name
  | None ->
    let g = { current = 0.; hwm = 0. } in
    Hashtbl.add registry name (Gauge g);
    g

let set_gauge g v =
  if !on then begin
    g.current <- v;
    if v > g.hwm then g.hwm <- v
  end

let gauge_value g = g.current
let gauge_hwm g = g.hwm

(* Forward declaration: [histogram] registers the overflow probe and
   probes are defined below. *)
let register_probe_ref : (string -> (unit -> float) -> unit) ref =
  ref (fun _ _ -> ())

let histogram name =
  match Hashtbl.find_opt registry name with
  | Some (Histogram h) -> h
  | Some _ -> type_clash name
  | None ->
    let h =
      { buckets = Array.make (Array.length bucket_bounds) 0; hcount = 0; hsum = 0.;
        hoverflow = 0 }
    in
    Hashtbl.add registry name (Histogram h);
    (* Overflow probe: observations above the largest finite bound land in
       no finite bucket (only in +Inf); the probe makes that population
       visible so a saturated histogram is detectable at a glance. *)
    !register_probe_ref (name ^ "_overflow") (fun () -> float_of_int h.hoverflow);
    h

let observe h ns =
  if !on then begin
    let v = Int64.to_float ns in
    let i = ref 0 in
    while !i < Array.length bucket_bounds && v > bucket_bounds.(!i) do
      i := !i + 1
    done;
    if !i < Array.length h.buckets then h.buckets.(!i) <- h.buckets.(!i) + 1
    else h.hoverflow <- h.hoverflow + 1;
    h.hcount <- h.hcount + 1;
    h.hsum <- h.hsum +. v
  end

let histogram_count h = h.hcount
let histogram_sum h = h.hsum
let histogram_overflow h = h.hoverflow

(* Quantile estimate by linear interpolation within the bucket holding
   the q-th observation (the classic Prometheus histogram_quantile).
   Observations above the largest finite bound have no upper edge, so
   any quantile landing there is clamped to that bound — a saturated
   histogram under-reports its tail, which the [_overflow] probe makes
   visible. *)
let histogram_quantile h q =
  if h.hcount = 0 then 0.
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let target = q *. float_of_int h.hcount in
    let nb = Array.length h.buckets in
    let rec go i acc =
      if i >= nb then bucket_bounds.(nb - 1)
      else
        let n = h.buckets.(i) in
        let acc' = acc + n in
        if n > 0 && float_of_int acc' >= target then
          let lo = if i = 0 then 0. else bucket_bounds.(i - 1) in
          let hi = bucket_bounds.(i) in
          lo +. ((hi -. lo) *. ((target -. float_of_int acc) /. float_of_int n))
        else go (i + 1) acc'
    in
    go 0 0
  end

let time h f =
  if not !on then f ()
  else begin
    let t0 = now () in
    match f () with
    | r ->
      observe h (Int64.sub (now ()) t0);
      r
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      observe h (Int64.sub (now ()) t0);
      Printexc.raise_with_backtrace e bt
  end

let register_probe name f =
  match Hashtbl.find_opt registry name with
  | Some (Probe _) -> Hashtbl.replace registry name (Probe f)
  | Some _ -> type_clash name
  | None -> Hashtbl.add registry name (Probe f)

let () = register_probe_ref := register_probe

let reset () =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | Counter c -> c.count <- 0
      | Gauge g ->
        g.current <- 0.;
        g.hwm <- 0.
      | Histogram h ->
        Array.fill h.buckets 0 (Array.length h.buckets) 0;
        h.hcount <- 0;
        h.hsum <- 0.;
        h.hoverflow <- 0
      | Probe _ -> ())
    registry;
  seq_counter := 0;
  span_counter := 0;
  span_stack := [];
  Atomic.set trace_counter 0;
  Domain.DLS.get trace_ctx := 0

(* ------------------------------------------------------------------ *)
(* Prometheus-style exposition                                         *)
(* ------------------------------------------------------------------ *)

let fmt_float v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

let expose () =
  let b = Buffer.create 1024 in
  let pf fmt = Printf.bprintf b fmt in
  Hashtbl.fold (fun name m acc -> (name, m) :: acc) registry []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.iter (fun (name, m) ->
         match m with
         | Counter c -> pf "# TYPE %s counter\n%s %d\n" name name c.count
         | Gauge g ->
           pf "# TYPE %s gauge\n%s %s\n%s_hwm %s\n" name name
             (fmt_float g.current) name (fmt_float g.hwm)
         | Probe f -> pf "# TYPE %s gauge\n%s %s\n" name name (fmt_float (f ()))
         | Histogram h ->
           pf "# TYPE %s histogram\n" name;
           let acc = ref 0 in
           Array.iteri
             (fun i n ->
               acc := !acc + n;
               pf "%s_bucket{le=\"%s\"} %d\n" name
                 (fmt_float bucket_bounds.(i))
                 !acc)
             h.buckets;
           pf "%s_bucket{le=\"+Inf\"} %d\n" name h.hcount;
           pf "%s_sum %s\n" name (fmt_float h.hsum);
           pf "%s_count %d\n" name h.hcount;
           pf "%s_p50 %s\n" name (fmt_float (histogram_quantile h 0.5));
           pf "%s_p99 %s\n" name (fmt_float (histogram_quantile h 0.99)));
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* JSONL                                                               *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let value_to_json = function
  | Int i -> string_of_int i
  | Float f -> fmt_float f
  | Str s -> "\"" ^ json_escape s ^ "\""
  | Bool b -> if b then "true" else "false"

let kind_to_string = function
  | Span_start -> "start"
  | Span_end -> "end"
  | Point -> "point"

let event_to_json ev =
  let b = Buffer.create 128 in
  Printf.bprintf b "{\"seq\":%d,\"ts\":%Ld,\"ev\":\"%s\",\"name\":\"%s\""
    ev.seq ev.ts (kind_to_string ev.kind) (json_escape ev.name);
  if ev.span <> 0 then Printf.bprintf b ",\"span\":%d" ev.span;
  if ev.parent <> 0 then Printf.bprintf b ",\"parent\":%d" ev.parent;
  if ev.trace <> 0 then Printf.bprintf b ",\"trace\":%d" ev.trace;
  if ev.dom <> 0 then Printf.bprintf b ",\"dom\":%d" ev.dom;
  List.iter
    (fun (k, v) ->
      Printf.bprintf b ",\"%s\":%s" (json_escape k) (value_to_json v))
    ev.fields;
  Buffer.add_char b '}';
  Buffer.contents b

let jsonl_sink write ev = write (event_to_json ev ^ "\n")

module Jsonl = struct
  exception Bad

  (* Minimal parser for the flat objects [event_to_json] produces:
     {"k":v,...} with v a string, number, true or false. *)
  let parse_flat line =
    let n = String.length line in
    let pos = ref 0 in
    let peek () = if !pos >= n then raise Bad else line.[!pos] in
    let advance () = pos := !pos + 1 in
    let skip_ws () =
      while
        !pos < n && (match line.[!pos] with ' ' | '\t' | '\r' -> true | _ -> false)
      do
        advance ()
      done
    in
    let expect c =
      skip_ws ();
      if peek () <> c then raise Bad;
      advance ()
    in
    let parse_string () =
      expect '"';
      let b = Buffer.create 16 in
      let rec go () =
        let c = peek () in
        advance ();
        match c with
        | '"' -> Buffer.contents b
        | '\\' ->
          let e = peek () in
          advance ();
          (match e with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | '/' -> Buffer.add_char b '/'
          | 'n' -> Buffer.add_char b '\n'
          | 't' -> Buffer.add_char b '\t'
          | 'r' -> Buffer.add_char b '\r'
          | 'b' -> Buffer.add_char b '\b'
          | 'f' -> Buffer.add_char b '\012'
          | 'u' ->
            if !pos + 4 > n then raise Bad;
            let hex = String.sub line !pos 4 in
            pos := !pos + 4;
            (match int_of_string_opt ("0x" ^ hex) with
            | Some code when code < 128 -> Buffer.add_char b (Char.chr code)
            | Some _ -> Buffer.add_char b '?'
            | None -> raise Bad)
          | _ -> raise Bad);
          go ()
        | c ->
          Buffer.add_char b c;
          go ()
      in
      go ()
    in
    let parse_scalar () =
      skip_ws ();
      match peek () with
      | '"' -> Str (parse_string ())
      | 't' ->
        if !pos + 4 <= n && String.sub line !pos 4 = "true" then begin
          pos := !pos + 4;
          Bool true
        end
        else raise Bad
      | 'f' ->
        if !pos + 5 <= n && String.sub line !pos 5 = "false" then begin
          pos := !pos + 5;
          Bool false
        end
        else raise Bad
      | _ ->
        let start = !pos in
        while
          !pos < n
          && (match line.[!pos] with
             | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
             | _ -> false)
        do
          advance ()
        done;
        if !pos = start then raise Bad;
        let s = String.sub line start (!pos - start) in
        (match int_of_string_opt s with
        | Some i -> Int i
        | None -> (
          match float_of_string_opt s with Some f -> Float f | None -> raise Bad))
    in
    try
      expect '{';
      skip_ws ();
      if peek () = '}' then Some []
      else begin
        let acc = ref [] in
        let rec members () =
          skip_ws ();
          let k = parse_string () in
          expect ':';
          let v = parse_scalar () in
          acc := (k, v) :: !acc;
          skip_ws ();
          match peek () with
          | ',' ->
            advance ();
            members ()
          | '}' -> advance ()
          | _ -> raise Bad
        in
        members ();
        Some (List.rev !acc)
      end
    with Bad -> None

  let builtin_keys = [ "seq"; "ts"; "ev"; "name"; "span"; "parent"; "trace"; "dom" ]

  let parse_line line =
    let line = String.trim line in
    if line = "" then None
    else
      match parse_flat line with
      | None -> None
      | Some kv -> (
        let int k d =
          match List.assoc_opt k kv with Some (Int i) -> i | _ -> d
        in
        let str k =
          match List.assoc_opt k kv with Some (Str s) -> Some s | _ -> None
        in
        match (str "ev", str "name") with
        | Some ev, Some name -> (
          let kind =
            match ev with
            | "start" -> Some Span_start
            | "end" -> Some Span_end
            | "point" -> Some Point
            | _ -> None
          in
          match kind with
          | None -> None
          | Some kind ->
            Some
              {
                seq = int "seq" 0;
                ts = Int64.of_int (int "ts" 0);
                kind;
                name;
                span = int "span" 0;
                parent = int "parent" 0;
                trace = int "trace" 0;
                dom = int "dom" 0;
                fields = List.filter (fun (k, _) -> not (List.mem k builtin_keys)) kv;
              })
        | _ -> None)

  let events_of_string input =
    String.split_on_char '\n' input |> List.filter_map parse_line

  let accepted_actions input =
    events_of_string input
    |> List.filter_map (fun ev ->
           match
             (List.assoc_opt "action" ev.fields, List.assoc_opt "commit" ev.fields)
           with
           | Some (Str a), Some (Bool true) -> Some a
           | _ -> None)
end
