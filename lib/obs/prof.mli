(** Runtime-internals profiling: lock-contention probes, GC/allocation
    telemetry, and per-domain utilization cells — the observability layer
    for the synchronization points PR 9 introduced (hash-cons stripes,
    automaton fill locks, shard regions, speculation rollback).

    Everything here obeys the telemetry cost model: every probe is gated
    on {!Telemetry.on}.  With telemetry off an instrumented lock costs one
    [bool ref] read and a branch on top of the bare [Mutex.lock], and
    allocates nothing; the GC sampler and the utilization cells are
    entirely inert.  With telemetry on, per-site statistics live in
    per-domain padded cells (the {!Dshard} argument: the probes measuring
    contention must not themselves contend), aggregated racily-but-benignly
    at read time exactly like the batched kernel tallies. *)

(** {1 Timed locks}

    A {e lock site} names one synchronization point of the runtime
    ("state.stripe", "automaton.fill", ...).  Many mutexes may share a
    site: the 256 hash-cons stripes all report into ["state.stripe"],
    because the question is "how hot is striped interning", not "how hot
    is stripe 137".  Each site registers exposition probes
    [lock_<site>_acquisitions_total], [lock_<site>_contended_total],
    [lock_<site>_wait_ns_total], [lock_<site>_wait_p50_ns] and
    [lock_<site>_wait_p99_ns] (site names are sanitized to metric
    charset), and — unless created [~quiet] — emits a [lock.wait] point
    event (fields [site], [dur_ns]) after each contended acquisition is
    released, which {e itrace} aggregates into its contention section. *)
module Lock : sig
  type site

  val site : ?quiet:bool -> string -> site
  (** Find-or-create the site with this name.  [~quiet:true] suppresses
      the [lock.wait] events (mandatory for sites guarding telemetry
      sinks themselves — the recorder ring, the sampler — where an event
      emitted on the contended path would re-enter the sink). *)

  val acquire : site -> Mutex.t -> unit
  (** Timed [Mutex.lock]: an uncontended acquisition (the [try_lock]
      fast path) counts once; a contended one also records its wait time
      into the site's per-domain histogram.  Never emits events — pair
      with a plain [Mutex.unlock]. *)

  val protect : site -> Mutex.t -> (unit -> 'a) -> 'a
  (** [Mutex.protect] with timing; the [lock.wait] event for a contended
      acquisition is emitted {e after} the unlock, so sinks never run
      under the instrumented lock. *)

  type stats = {
    site_name : string;
    acquisitions : int;
    contended : int;
    wait_ns : int;  (** total contended wait *)
    max_wait_ns : int;
    p50_ns : float;  (** estimated from the power-of-two wait histogram *)
    p99_ns : float;
  }

  val stats : unit -> stats list
  (** Every registered site, sorted by name.  Foreign-domain cells are
      read racily (the documented tally contract): transient
      under-counts, exact once domains are joined. *)

  val reset : unit -> unit
  (** Zero every site's cells (for stats windows; sites persist). *)
end

(** {1 GC and allocation telemetry} *)
module Gcprof : sig
  val install : unit -> unit
  (** Idempotent.  Arms (1) a major-cycle alarm ([Gc.create_alarm] on the
      calling domain) counting completed major cycles, and (2) a
      telemetry sink sampling [Gc.quick_stat] deltas at span boundaries
      into the [gc_*] counters and the [gc_span_minor_words] histogram.
      The probes themselves are registered at module initialization, so
      the exposition is stable whether or not the sampler is armed. *)

  val sample : unit -> unit
  (** Sample the calling domain's GC deltas now (gated on telemetry);
      span boundaries call this via the sink, explicit callers (the
      bench harness) may force a sample before reading stats. *)

  type stats = {
    minor_collections : int;
    major_collections : int;
    compactions : int;
    major_cycles : int;  (** completed cycles seen by the alarm *)
    minor_words : float;  (** allocated on minor heaps since install/reset *)
    promoted_words : float;
    heap_words : int;  (** current, sampled on the calling domain *)
  }

  val stats : unit -> stats

  val domain_minor_words : unit -> (int * float) list
  (** Per-domain minor-allocation attribution: [(domain id, words)] for
      every domain that crossed a sampled span boundary, sorted by id. *)

  val reset : unit -> unit
end

(** {1 Per-domain utilization}

    Busy/idle accounting for a fixed set of lanes (the {!Pool} workers).
    The pool records task execution time per lane; utilization is busy
    time over the wall time since [create].  Cells are padded and
    single-writer like every other per-domain structure here. *)
module Util : sig
  type t

  val create : int -> t
  (** [create lanes] — accounting for lanes [0 .. lanes-1]. *)

  val record : t -> lane:int -> int -> unit
  (** Add [ns] of busy time and one task to the lane (gated on
      telemetry; out-of-range lanes are clamped). *)

  type lane_stats = {
    lane : int;
    busy_ns : int;
    tasks : int;
    utilization : float;  (** busy / wall since [create], 0..1 *)
  }

  val snapshot : t -> lane_stats list
  val wall_ns : t -> int
end

(** {1 Crash-atomic file writes}

    The tmp + fsync + rename discipline of {!Interaction_store.Store},
    available beneath it in the dependency order so the recorder and
    sampler dumps can use it: a reader (or a post-crash restart) sees
    either the previous file or the complete new one, never a torn
    prefix. *)

val atomic_write_file : ?fsync:bool -> string -> string -> unit
(** Write contents to [path ^ ".tmp"], flush (and fsync unless
    [~fsync:false]), rename over [path].  A stale tmp from an earlier
    crash is simply overwritten. *)

(** {1 The HEALTH snapshot} *)

val health :
  ?util:Util.lane_stats list ->
  ?extra:(string * string list) list ->
  unit ->
  string
(** One-screen runtime-health report: top contended lock sites (by total
    wait, then acquisitions), GC counters and per-domain allocation, the
    given utilization lanes, plus caller-supplied sections (title,
    lines) — the manager appends speculation conflict/retry rates, which
    live above this library.  Deterministic section order; values are
    live reads. *)
