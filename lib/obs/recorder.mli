(** The flight recorder: a bounded ring of telemetry events, safe to feed
    from several evaluation domains, retained across denial/abort paths and
    dumpable as JSONL for offline causal reconstruction.

    Events carry the ambient trace id ({!Telemetry.current_trace}); the
    recorder groups them per trace so a denied action's whole causal chain
    — boundary attempt, queue hops, manager coordination, kernel
    evaluation — can be pulled out after the fact.

    Cost model: recording is a mutex-protected array store per event, and
    events are only emitted while [Telemetry.on] is set, so an installed
    but disabled recorder costs nothing on the hot path. *)

type t

val create : ?capacity:int -> unit -> t
(** A recorder retaining the last [capacity] (default 4096) events. *)

val capacity : t -> int

val sink : t -> Telemetry.sink

val install : t -> unit
(** [Telemetry.add_sink (sink r)]. *)

val record : t -> Telemetry.event -> unit

val length : t -> int
val dropped : t -> int  (** events evicted since creation/clear *)

val events : t -> Telemetry.event list
(** Retained events, oldest first. *)

val events_for : t -> trace:int -> Telemetry.event list
(** Retained events of one trace, oldest first. *)

val trace_ids : t -> int list
(** Distinct non-zero trace ids among the retained events, ascending. *)

val edges : t -> (int * int * int) list
(** Causal [(trace_id, parent_seq, child_seq)] edges: within each trace,
    consecutive retained events in emission order. *)

val clear : t -> unit

val dump_jsonl : t -> string
(** All retained events as JSONL (one {!Telemetry.event_to_json} line
    each, oldest first). *)

val dump_to_file : t -> string -> int
(** Write {!dump_jsonl} to a file (truncating); returns the number of
    events written. *)

(** {1 Process-global recorder} *)

val enable : ?capacity:int -> unit -> t
(** Install (once) and return the process-global recorder.  Idempotent;
    the capacity of the first call wins.  Does {e not} flip
    [Telemetry.on] — enable telemetry separately. *)

val global : unit -> t option

val auto_dump_env : string
(** ["FLIGHT_RECORDER_DUMP"].  When set to a file name, {!auto_install}
    arms the crash dump. *)

val auto_install : unit -> unit
(** If [FLIGHT_RECORDER_DUMP] names a file, install the global recorder
    and append its retained events to that file at process exit (the CI
    harness uploads it when a test run fails).  No-op otherwise. *)
