(** Tail-based slow-request sampler.

    An online, bounded, per-trace event buffer that keeps the {e full}
    span chain of a request while it is in flight and decides its fate
    only when the request finishes: fast successful requests are
    discarded wholesale, while requests that were slow, denied,
    sentinel-flagged, or raised an exception are {e captured} — the whole
    chain, not a head sample, which is exactly what head-based sampling
    loses about tail latency.

    The sampler is a regular telemetry {!Telemetry.sink}: it sees events
    only while [Telemetry.on] is set, so with telemetry disabled it has
    strictly zero effect (property-tested).  All entry points are
    mutex-protected — events may arrive from several domains. *)

type t

val create :
  ?per_trace_cap:int ->
  ?max_live:int ->
  ?max_captured:int ->
  ?flag_names:string list ->
  slow_ns:int64 ->
  unit ->
  t
(** [create ~slow_ns ()] builds a sampler that captures finished traces
    whose wall time (last event ts − first event ts) is ≥ [slow_ns].

    - [per_trace_cap] (default 512): events retained per in-flight
      trace; the overflow is counted in {!dropped_events} and the trace
      is still captured with a truncated chain.
    - [max_live] (default 1024): in-flight traces tracked at once;
      events of traces beyond it are dropped (counted).
    - [max_captured] (default 64): completed captures retained; older
      captures are evicted FIFO.
    - [flag_names] (default [["manager.denied"; "workitem.denied";
      "sentinel.warning"]]): an event with one of these names — or any
      event carrying [("raised", Bool true)] — flags its trace for
      capture regardless of latency. *)

val set_slow_ns : t -> int64 -> unit
(** Adjust the slowness threshold of a live sampler. *)

val sink : t -> Telemetry.sink
(** The sink to register with [Telemetry.add_sink].  Events with
    trace id 0 (untraced) are ignored. *)

val finish : t -> trace:int -> ?failed:bool -> unit -> bool
(** Declare the request of [trace] finished.  Returns [true] iff the
    trace was captured (flagged, [~failed:true], or wall ≥ slow_ns);
    either way the trace's live buffer is released.  Unknown traces
    (no events seen) count as considered-and-discarded. *)

val captures : t -> (int * Telemetry.event list) list
(** Retained captures, oldest first: trace id and its event chain in
    emission order. *)

val last_capture : t -> (int * Telemetry.event list) option
(** The newest capture, if any. *)

val dump_jsonl : t -> (string -> unit) -> int
(** Write every retained capture as JSONL (one event per line, in
    capture order), returning the number of events written.  The lines
    parse back with [Telemetry.Jsonl] / the [lib/trace] reader. *)

val dump_to_file : t -> string -> int
(** {!dump_jsonl} into [path] crash-atomically (tmp + fsync + rename, the
    [lib/store] discipline): a crash mid-dump leaves the previous file —
    or nothing — never a torn prefix.  Returns the event count. *)

val clear : t -> unit
(** Drop live buffers and retained captures; counters keep counting. *)

(** {1 Counters} (also registered as probes [sampler_considered_total],
    [sampler_captured_total], [sampler_discarded_total],
    [sampler_dropped_events_total]) *)

val considered : t -> int  (** finished traces seen *)

val captured : t -> int  (** finished traces captured *)

val discarded : t -> int  (** finished traces discarded *)

val dropped_events : t -> int
(** events dropped by per-trace or live-table bounds *)
