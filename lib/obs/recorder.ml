(* The flight recorder: a bounded, mutex-protected ring of telemetry
   events that survives denial/abort paths (events recorded before a
   rejection stay in the buffer) and can be dumped as JSONL for offline
   causal reconstruction.  Unlike Telemetry.Ring it is safe to feed from
   several evaluation domains at once, and it knows about trace ids. *)

type t = {
  buf : Telemetry.event option array;
  mutable pushed : int;
  lock : Mutex.t;
}

let create ?(capacity = 4096) () =
  { buf = Array.make (max 1 capacity) None; pushed = 0; lock = Mutex.create () }

let capacity r = Array.length r.buf

(* The ring mutex is a telemetry sink's own lock: the site must be quiet,
   or a contended acquisition would emit an event that re-enters this very
   sink. *)
let ring_site = Prof.Lock.site ~quiet:true "recorder.ring"

let locked r f =
  Prof.Lock.acquire ring_site r.lock;
  match f () with
  | v ->
    Mutex.unlock r.lock;
    v
  | exception e ->
    Mutex.unlock r.lock;
    raise e

let record r ev =
  locked r (fun () ->
      r.buf.(r.pushed mod Array.length r.buf) <- Some ev;
      r.pushed <- r.pushed + 1)

let sink r : Telemetry.sink = record r

let install r = Telemetry.add_sink (sink r)

let length r = locked r (fun () -> min r.pushed (Array.length r.buf))
let dropped r = locked r (fun () -> max 0 (r.pushed - Array.length r.buf))

let events r =
  locked r (fun () ->
      let cap = Array.length r.buf in
      let n = min r.pushed cap in
      List.init n (fun i ->
          match r.buf.((r.pushed - n + i) mod cap) with
          | Some ev -> ev
          | None -> assert false))

let clear r =
  locked r (fun () ->
      Array.fill r.buf 0 (Array.length r.buf) None;
      r.pushed <- 0)

let events_for r ~trace =
  List.filter (fun (ev : Telemetry.event) -> ev.trace = trace) (events r)

let trace_ids r =
  List.filter_map
    (fun (ev : Telemetry.event) -> if ev.trace = 0 then None else Some ev.trace)
    (events r)
  |> List.sort_uniq Int.compare

(* Causal edges of the retained events: within a trace the events form a
   chain in emission order (each event's causal parent is its predecessor
   in the same trace), which is exactly what an offline reconstruction
   needs alongside the span nesting already carried by span/parent. *)
let edges r =
  let last : (int, int) Hashtbl.t = Hashtbl.create 16 in
  List.filter_map
    (fun (ev : Telemetry.event) ->
      if ev.trace = 0 then None
      else begin
        let parent = Hashtbl.find_opt last ev.trace in
        Hashtbl.replace last ev.trace ev.seq;
        match parent with Some p -> Some (ev.trace, p, ev.seq) | None -> None
      end)
    (events r)

let dump_jsonl r =
  let b = Buffer.create 1024 in
  List.iter
    (fun ev ->
      Buffer.add_string b (Telemetry.event_to_json ev);
      Buffer.add_char b '\n')
    (events r);
  Buffer.contents b

(* Crash-atomic: a crash mid-dump (the recorder dumps *because* things
   are going wrong) must not leave a torn JSONL truncating the very
   events being investigated. *)
let dump_to_file r path =
  Prof.atomic_write_file path (dump_jsonl r);
  length r

(* ------------------------------------------------------------------ *)
(* Process-global recorder                                             *)
(* ------------------------------------------------------------------ *)

let global_r : t option ref = ref None
let global () = !global_r

let enable ?capacity () =
  match !global_r with
  | Some r -> r
  | None ->
    let r = create ?capacity () in
    global_r := Some r;
    install r;
    r

(* CI hook: when the environment names a dump file, install the global
   recorder and append whatever it retained at exit.  Appending (rather
   than truncating) lets several test binaries of one `dune runtest`
   share the file; each line is self-describing JSONL either way. *)
let auto_dump_env = "FLIGHT_RECORDER_DUMP"

(* Atomic append: read-modify-rename, so a crash mid-append keeps the
   lines earlier binaries already contributed instead of tearing the
   shared file. *)
let append_dump r path =
  let existing =
    match open_in_bin path with
    | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    | exception Sys_error _ -> ""
  in
  Prof.atomic_write_file path (existing ^ dump_jsonl r)

let auto_install () =
  match Sys.getenv_opt auto_dump_env with
  | None | Some "" -> ()
  | Some path ->
    let r = enable () in
    at_exit (fun () -> if length r > 0 then append_dump r path)
