(* Runtime-internals profiling: timed locks, GC sampling, per-domain
   utilization.  See prof.mli for the cost model; the short version is
   that every path below checks [!Telemetry.on] first and the off path
   performs no allocation beyond what the bare operation would.

   This library sits *below* lib/core in the dependency order (so the
   hash-cons stripes can use it), which is why it replicates the padded
   per-domain cell idiom of [Dshard] instead of depending on it. *)

let slot_count = 64
let mask = slot_count - 1
let self () = (Domain.self () :> int)

let ns_since t0 =
  let d = Int64.to_int (Int64.sub (Telemetry.now ()) t0) in
  if d < 0 then 0 else d

(* ------------------------------------------------------------------ *)
(* Timed locks                                                         *)
(* ------------------------------------------------------------------ *)

module Lock = struct
  (* Contended waits land in power-of-two buckets: bucket [i] holds
     waits in [2^i, 2^(i+1)) ns (bucket 0 also takes 0), up to ~4 s in
     the last bucket.  32 ints per domain is cheap enough to keep the
     full histogram in every cell. *)
  let bucket_count = 32

  type cell = {
    cdid : int;
    mutable acq : int;
    mutable contended : int;
    mutable wait_ns : int;
    mutable max_wait_ns : int;
    buckets : int array;
    mutable p1 : int;
    mutable p2 : int;
    mutable p3 : int;
    mutable p4 : int;
  }

  type site = {
    name : string;
    quiet : bool;
    cells : cell option array;
  }

  type stats = {
    site_name : string;
    acquisitions : int;
    contended : int;
    wait_ns : int;
    max_wait_ns : int;
    p50_ns : float;
    p99_ns : float;
  }

  let fresh_cell did =
    {
      cdid = did;
      acq = 0;
      contended = 0;
      wait_ns = 0;
      max_wait_ns = 0;
      buckets = Array.make bucket_count 0;
      p1 = 0;
      p2 = 0;
      p3 = 0;
      p4 = 0;
    }

  (* The calling domain's cell.  A collision past [slot_count] live
     domains retakes the slot; the evicted domain's tallies to date stay
     visible through [stats] only until the overwrite, which is an
     acceptable loss for a profiler (and impossible below 64 domains). *)
  let cell s =
    let me = self () in
    let i = me land mask in
    match s.cells.(i) with
    | Some c when c.cdid = me -> c
    | _ ->
      let c = fresh_cell me in
      s.cells.(i) <- Some c;
      c

  let bucket_of ns =
    if ns <= 1 then 0
    else begin
      let rec go n acc = if n <= 1 then acc else go (n lsr 1) (acc + 1) in
      let b = go ns 0 in
      if b >= bucket_count then bucket_count - 1 else b
    end

  (* Racy-but-benign merge of every domain's cell (the Dshard stats
     contract: foreign reads may be momentarily stale). *)
  let aggregate s =
    let acq = ref 0 and con = ref 0 and wait = ref 0 and mx = ref 0 in
    let buckets = Array.make bucket_count 0 in
    Array.iter
      (function
        | None -> ()
        | Some c ->
          acq := !acq + c.acq;
          con := !con + c.contended;
          wait := !wait + c.wait_ns;
          if c.max_wait_ns > !mx then mx := c.max_wait_ns;
          for i = 0 to bucket_count - 1 do
            buckets.(i) <- buckets.(i) + c.buckets.(i)
          done)
      s.cells;
    (!acq, !con, !wait, !mx, buckets)

  (* q-quantile of the merged power-of-two histogram, interpolating
     linearly inside the bucket that holds the q-th contended wait. *)
  let quantile buckets q =
    let total = Array.fold_left ( + ) 0 buckets in
    if total = 0 then 0.0
    else begin
      let target = q *. float_of_int total in
      let rec find i seen =
        if i >= bucket_count then float_of_int (1 lsl (bucket_count - 1))
        else begin
          let seen' = seen + buckets.(i) in
          if float_of_int seen' >= target then begin
            let lo = if i = 0 then 0.0 else float_of_int (1 lsl i) in
            let hi = float_of_int (1 lsl (i + 1)) in
            let inside = target -. float_of_int seen in
            let frac =
              if buckets.(i) = 0 then 0.0
              else inside /. float_of_int buckets.(i)
            in
            lo +. ((hi -. lo) *. frac)
          end
          else find (i + 1) seen'
        end
      in
      find 0 0
    end

  let stats_of s =
    let acq, con, wait, mx, buckets = aggregate s in
    {
      site_name = s.name;
      acquisitions = acq;
      contended = con;
      wait_ns = wait;
      max_wait_ns = mx;
      p50_ns = quantile buckets 0.50;
      p99_ns = quantile buckets 0.99;
    }

  (* Site registry: creation is cold (module init of the instrumented
     libraries), so a plain mutex-protected list is fine.  The mutex is
     deliberately *not* instrumented. *)
  let registry_mu = Mutex.create ()
  let registry : site list ref = ref []

  let sanitize name =
    String.map
      (fun ch ->
        match ch with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> ch
        | _ -> '_')
      name

  let register_probes s =
    let p suffix = Printf.sprintf "lock_%s_%s" (sanitize s.name) suffix in
    Telemetry.register_probe (p "acquisitions_total") (fun () ->
        let a, _, _, _, _ = aggregate s in
        float_of_int a);
    Telemetry.register_probe (p "contended_total") (fun () ->
        let _, c, _, _, _ = aggregate s in
        float_of_int c);
    Telemetry.register_probe (p "wait_ns_total") (fun () ->
        let _, _, w, _, _ = aggregate s in
        float_of_int w);
    Telemetry.register_probe (p "wait_p50_ns") (fun () ->
        let _, _, _, _, b = aggregate s in
        quantile b 0.50);
    Telemetry.register_probe (p "wait_p99_ns") (fun () ->
        let _, _, _, _, b = aggregate s in
        quantile b 0.99)

  let site ?(quiet = false) name =
    Mutex.protect registry_mu (fun () ->
        match List.find_opt (fun s -> s.name = name) !registry with
        | Some s -> s
        | None ->
          let s = { name; quiet; cells = Array.make slot_count None } in
          registry := s :: !registry;
          register_probes s;
          s)

  let count_fast s =
    let c = cell s in
    c.acq <- c.acq + 1

  let count_slow s dt =
    let c = cell s in
    c.acq <- c.acq + 1;
    c.contended <- c.contended + 1;
    c.wait_ns <- c.wait_ns + dt;
    if dt > c.max_wait_ns then c.max_wait_ns <- dt;
    let b = bucket_of dt in
    c.buckets.(b) <- c.buckets.(b) + 1

  (* [lock.wait] events run the sinks, and a sink (the recorder) may
     take its own instrumented lock; the per-domain flag stops a
     contended sink lock from recursing back into event emission. *)
  let emitting = Domain.DLS.new_key (fun () -> ref false)

  let emit_wait s dt =
    if not s.quiet then begin
      let flag = Domain.DLS.get emitting in
      if not !flag then begin
        flag := true;
        Fun.protect
          ~finally:(fun () -> flag := false)
          (fun () ->
            Telemetry.event
              ~fields:
                [ ("site", Telemetry.Str s.name); ("dur_ns", Telemetry.Int dt) ]
              "lock.wait")
      end
    end

  let acquire s m =
    if not !Telemetry.on then Mutex.lock m
    else if Mutex.try_lock m then count_fast s
    else begin
      let t0 = Telemetry.now () in
      Mutex.lock m;
      count_slow s (ns_since t0)
    end

  let protect s m f =
    if not !Telemetry.on then Mutex.protect m f
    else if Mutex.try_lock m then begin
      count_fast s;
      Fun.protect ~finally:(fun () -> Mutex.unlock m) f
    end
    else begin
      let t0 = Telemetry.now () in
      Mutex.lock m;
      let dt = ns_since t0 in
      count_slow s dt;
      let r = Fun.protect ~finally:(fun () -> Mutex.unlock m) f in
      (* Emitted after the unlock so no sink ever runs under the
         instrumented lock. *)
      emit_wait s dt;
      r
    end

  let stats () =
    let sites = Mutex.protect registry_mu (fun () -> !registry) in
    List.sort
      (fun a b -> compare a.site_name b.site_name)
      (List.map stats_of sites)

  let reset () =
    let sites = Mutex.protect registry_mu (fun () -> !registry) in
    List.iter
      (fun s ->
        Array.iter
          (function
            | None -> ()
            | Some c ->
              c.acq <- 0;
              c.contended <- 0;
              c.wait_ns <- 0;
              c.max_wait_ns <- 0;
              Array.fill c.buckets 0 bucket_count 0)
          s.cells)
      sites
end

(* ------------------------------------------------------------------ *)
(* GC and allocation telemetry                                         *)
(* ------------------------------------------------------------------ *)

module Gcprof = struct
  type stats = {
    minor_collections : int;
    major_collections : int;
    compactions : int;
    major_cycles : int;
    minor_words : float;
    promoted_words : float;
    heap_words : int;
  }

  (* Per-domain sampling cell: [last_*] is the baseline reading of the
     owning domain's counters, [acc_*] the accumulated deltas.  Only the
     owner writes; stats readers merge racily. *)
  type cell = {
    gdid : int;
    mutable last_minor_words : float;
    mutable last_promoted : float;
    mutable last_minor_col : int;
    mutable last_major_col : int;
    mutable last_compactions : int;
    mutable acc_minor_words : float;
    mutable acc_promoted : float;
    mutable acc_minor_col : int;
    mutable acc_major_col : int;
    mutable acc_compactions : int;
    mutable gp1 : int;
    mutable gp2 : int;
  }

  let cells : cell option array = Array.make slot_count None
  let major_cycles = Atomic.make 0
  let installed = ref false

  (* Per-sample minor allocation, in words (the histogram's nanosecond
     bucket bounds read as word counts here — same log scale). *)
  let span_minor_words = Telemetry.histogram "gc_span_minor_words"

  (* [Gc.quick_stat] on OCaml 5 reads stats cached at collection
     boundaries — a domain that hasn't filled its minor heap yet reports
     zero everywhere.  [Gc.minor_words ()] reads the live domain-local
     allocation pointer, so minor-word deltas use it; collection counts
     can only change at a collection, so quick_stat is exact for them. *)
  let fresh_cell did =
    let q = Gc.quick_stat () in
    {
      gdid = did;
      last_minor_words = Gc.minor_words ();
      last_promoted = q.Gc.promoted_words;
      last_minor_col = q.Gc.minor_collections;
      last_major_col = q.Gc.major_collections;
      last_compactions = q.Gc.compactions;
      acc_minor_words = 0.0;
      acc_promoted = 0.0;
      acc_minor_col = 0;
      acc_major_col = 0;
      acc_compactions = 0;
      gp1 = 0;
      gp2 = 0;
    }

  let cell () =
    let me = self () in
    let i = me land mask in
    match cells.(i) with
    | Some c when c.gdid = me -> c
    | _ ->
      let c = fresh_cell me in
      cells.(i) <- Some c;
      c

  let sample () =
    if !Telemetry.on then begin
      let c = cell () in
      let q = Gc.quick_stat () in
      let mw = Gc.minor_words () in
      let dmw = mw -. c.last_minor_words in
      if dmw > 0.0 then begin
        c.acc_minor_words <- c.acc_minor_words +. dmw;
        Telemetry.observe span_minor_words (Int64.of_float dmw)
      end;
      let dpw = q.Gc.promoted_words -. c.last_promoted in
      if dpw > 0.0 then c.acc_promoted <- c.acc_promoted +. dpw;
      c.acc_minor_col <-
        c.acc_minor_col + max 0 (q.Gc.minor_collections - c.last_minor_col);
      c.acc_major_col <-
        c.acc_major_col + max 0 (q.Gc.major_collections - c.last_major_col);
      c.acc_compactions <-
        c.acc_compactions + max 0 (q.Gc.compactions - c.last_compactions);
      c.last_minor_words <- mw;
      c.last_promoted <- q.Gc.promoted_words;
      c.last_minor_col <- q.Gc.minor_collections;
      c.last_major_col <- q.Gc.major_collections;
      c.last_compactions <- q.Gc.compactions
    end

  let fold f init =
    Array.fold_left
      (fun acc -> function None -> acc | Some c -> f acc c)
      init cells

  let stats () =
    sample ();
    let minor_collections = fold (fun a c -> a + c.acc_minor_col) 0 in
    let major_collections = fold (fun a c -> a + c.acc_major_col) 0 in
    let compactions = fold (fun a c -> a + c.acc_compactions) 0 in
    let minor_words = fold (fun a c -> a +. c.acc_minor_words) 0.0 in
    let promoted_words = fold (fun a c -> a +. c.acc_promoted) 0.0 in
    {
      minor_collections;
      major_collections;
      compactions;
      major_cycles = Atomic.get major_cycles;
      minor_words;
      promoted_words;
      heap_words = (Gc.quick_stat ()).Gc.heap_words;
    }

  let domain_minor_words () =
    let rows = fold (fun a c -> (c.gdid, c.acc_minor_words) :: a) [] in
    List.sort (fun (a, _) (b, _) -> compare a b) rows

  let reset () =
    Array.iter
      (function
        | None -> ()
        | Some c ->
          c.acc_minor_words <- 0.0;
          c.acc_promoted <- 0.0;
          c.acc_minor_col <- 0;
          c.acc_major_col <- 0;
          c.acc_compactions <- 0)
      cells;
    Atomic.set major_cycles 0

  let install () =
    if not !installed then begin
      installed := true;
      ignore
        (Gc.create_alarm (fun () -> ignore (Atomic.fetch_and_add major_cycles 1)));
      Telemetry.add_sink (fun ev ->
          match ev.Telemetry.kind with
          | Telemetry.Span_end -> sample ()
          | _ -> ());
      (* Baseline the installing domain now: its first span otherwise
         both creates the cell and sets the baseline, hiding the span's
         own allocation.  Worker domains baseline at their first span. *)
      sample ()
    end

  (* The gc_* exposition is registered at module init so the metric set
     is stable whether or not the sampler is armed. *)
  let () =
    Telemetry.register_probe "gc_minor_collections_total" (fun () ->
        float_of_int (fold (fun a c -> a + c.acc_minor_col) 0));
    Telemetry.register_probe "gc_major_collections_total" (fun () ->
        float_of_int (fold (fun a c -> a + c.acc_major_col) 0));
    Telemetry.register_probe "gc_compactions_total" (fun () ->
        float_of_int (fold (fun a c -> a + c.acc_compactions) 0));
    Telemetry.register_probe "gc_major_cycles_total" (fun () ->
        float_of_int (Atomic.get major_cycles));
    Telemetry.register_probe "gc_minor_words_total" (fun () ->
        fold (fun a c -> a +. c.acc_minor_words) 0.0);
    Telemetry.register_probe "gc_promoted_words_total" (fun () ->
        fold (fun a c -> a +. c.acc_promoted) 0.0)
end

(* ------------------------------------------------------------------ *)
(* Per-domain utilization                                              *)
(* ------------------------------------------------------------------ *)

module Util = struct
  type lane_cell = {
    mutable busy_ns : int;
    mutable tasks : int;
    mutable up1 : int;
    mutable up2 : int;
    mutable up3 : int;
    mutable up4 : int;
    mutable up5 : int;
    mutable up6 : int;
  }

  type t = { lanes : lane_cell array; t0 : int64 }

  type lane_stats = {
    lane : int;
    busy_ns : int;
    tasks : int;
    utilization : float;
  }

  let create n =
    let n = if n < 1 then 1 else n in
    {
      lanes =
        Array.init n (fun _ ->
            { busy_ns = 0; tasks = 0; up1 = 0; up2 = 0; up3 = 0; up4 = 0;
              up5 = 0; up6 = 0 });
      t0 = Telemetry.now ();
    }

  let record t ~lane ns =
    if !Telemetry.on then begin
      let i =
        if lane < 0 then 0
        else if lane >= Array.length t.lanes then Array.length t.lanes - 1
        else lane
      in
      let l = t.lanes.(i) in
      l.busy_ns <- l.busy_ns + ns;
      l.tasks <- l.tasks + 1
    end

  let wall_ns t = ns_since t.t0

  let snapshot t =
    let wall = wall_ns t in
    Array.to_list
      (Array.mapi
         (fun i (l : lane_cell) ->
           {
             lane = i;
             busy_ns = l.busy_ns;
             tasks = l.tasks;
             utilization =
               (if wall <= 0 then 0.0
                else
                  let u = float_of_int l.busy_ns /. float_of_int wall in
                  if u > 1.0 then 1.0 else u);
           })
         t.lanes)
end

(* ------------------------------------------------------------------ *)
(* Crash-atomic file writes                                            *)
(* ------------------------------------------------------------------ *)

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    Unix.close fd
  | exception Unix.Unix_error _ -> ()

let atomic_write_file ?(fsync = true) path contents =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_string oc contents;
     flush oc;
     if fsync then Unix.fsync (Unix.descr_of_out_channel oc);
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path;
  if fsync then fsync_dir (Filename.dirname path)

(* ------------------------------------------------------------------ *)
(* HEALTH snapshot                                                     *)
(* ------------------------------------------------------------------ *)

let health ?(util = []) ?(extra = []) () =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "== runtime health ==";
  line "-- lock sites (top contended) --";
  let sites = Lock.stats () in
  let ranked =
    List.sort
      (fun (a : Lock.stats) b ->
        match compare b.wait_ns a.wait_ns with
        | 0 -> (
          match compare b.acquisitions a.acquisitions with
          | 0 -> compare a.site_name b.site_name
          | c -> c)
        | c -> c)
      sites
  in
  let any = List.exists (fun (s : Lock.stats) -> s.acquisitions > 0) ranked in
  if not any then line "  (no lock activity)"
  else begin
    line "  %-18s %10s %10s %12s %10s %10s" "site" "acq" "contended"
      "wait_us" "p99_us" "max_us";
    let take = ref 8 in
    List.iter
      (fun (s : Lock.stats) ->
        if s.acquisitions > 0 && !take > 0 then begin
          decr take;
          line "  %-18s %10d %10d %12.1f %10.1f %10.1f" s.site_name
            s.acquisitions s.contended
            (float_of_int s.wait_ns /. 1e3)
            (s.p99_ns /. 1e3)
            (float_of_int s.max_wait_ns /. 1e3)
        end)
      ranked
  end;
  line "-- gc --";
  let g = Gcprof.stats () in
  line "  minor collections  %d" g.Gcprof.minor_collections;
  line "  major collections  %d" g.Gcprof.major_collections;
  line "  major cycles       %d" g.Gcprof.major_cycles;
  line "  compactions        %d" g.Gcprof.compactions;
  line "  minor words        %.0f" g.Gcprof.minor_words;
  line "  promoted words     %.0f" g.Gcprof.promoted_words;
  line "  heap words         %d" g.Gcprof.heap_words;
  (match Gcprof.domain_minor_words () with
  | [] -> ()
  | rows ->
    let parts =
      List.map (fun (d, w) -> Printf.sprintf "d%d=%.0f" d w) rows
    in
    line "  minor words/domain %s" (String.concat " " parts));
  (match util with
  | [] -> ()
  | lanes ->
    line "-- domains --";
    List.iter
      (fun (l : Util.lane_stats) ->
        line "  lane %-2d busy %10.1f us  tasks %8d  util %5.1f%%" l.Util.lane
          (float_of_int l.Util.busy_ns /. 1e3)
          l.Util.tasks
          (l.Util.utilization *. 100.0))
      lanes);
  List.iter
    (fun (title, lines) ->
      line "-- %s --" title;
      List.iter (fun l -> line "  %s" l) lines)
    extra;
  Buffer.contents b
