(* Tail-based slow-request sampler — see sampler.mli for the contract.

   The decision structure is the point: a head sampler decides at the
   start of a request (and so keeps a uniform, mostly-boring sample),
   while this one buffers everything and decides at the end, when the
   latency and the verdict are known.  The price is bounded memory per
   in-flight trace, paid only while telemetry is on. *)

type buf = {
  mutable evs : Telemetry.event list;  (* newest first *)
  mutable n : int;
  mutable flagged : bool;
  mutable first_ts : int64;
  mutable last_ts : int64;
}

type t = {
  mutable slow_ns : int64;
  per_trace_cap : int;
  max_live : int;
  max_captured : int;
  flag_names : string list;
  live : (int, buf) Hashtbl.t;
  mutable caps : (int * Telemetry.event list) list;  (* newest first *)
  mutable n_caps : int;
  mutable considered : int;
  mutable captured : int;
  mutable discarded : int;
  mutable dropped : int;
  lock : Mutex.t;
}

(* Quiet site: the sampler is itself a telemetry sink, so a [lock.wait]
   event emitted on its contended path would re-enter it. *)
let buffer_site = Prof.Lock.site ~quiet:true "sampler.buffer"

let locked t f =
  Prof.Lock.acquire buffer_site t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let default_flag_names = [ "manager.denied"; "workitem.denied"; "sentinel.warning" ]

let create ?(per_trace_cap = 512) ?(max_live = 1024) ?(max_captured = 64)
    ?(flag_names = default_flag_names) ~slow_ns () =
  let t =
    { slow_ns;
      per_trace_cap = max 1 per_trace_cap;
      max_live = max 1 max_live;
      max_captured = max 1 max_captured;
      flag_names;
      live = Hashtbl.create 64;
      caps = [];
      n_caps = 0;
      considered = 0;
      captured = 0;
      discarded = 0;
      dropped = 0;
      lock = Mutex.create () }
  in
  Telemetry.register_probe "sampler_considered_total" (fun () ->
      float_of_int t.considered);
  Telemetry.register_probe "sampler_captured_total" (fun () ->
      float_of_int t.captured);
  Telemetry.register_probe "sampler_discarded_total" (fun () ->
      float_of_int t.discarded);
  Telemetry.register_probe "sampler_dropped_events_total" (fun () ->
      float_of_int t.dropped);
  t

let set_slow_ns t ns = locked t (fun () -> t.slow_ns <- ns)

let flags t (ev : Telemetry.event) =
  List.mem ev.Telemetry.name t.flag_names
  || List.assoc_opt "raised" ev.Telemetry.fields = Some (Telemetry.Bool true)

(* a timed point spans [ts - dur_ns, ts] (same convention as the offline
   span-tree reader), so a chain made of a single timed point still has a
   non-zero wall time *)
let start_ts (ev : Telemetry.event) =
  match List.assoc_opt "dur_ns" ev.Telemetry.fields with
  | Some (Telemetry.Int d) when d > 0 && ev.Telemetry.kind = Telemetry.Point ->
    Int64.sub ev.Telemetry.ts (Int64.of_int d)
  | _ -> ev.Telemetry.ts

let sink t (ev : Telemetry.event) =
  let trace = ev.Telemetry.trace in
  if trace <> 0 then
    locked t (fun () ->
        match Hashtbl.find_opt t.live trace with
        | Some b ->
          if b.n < t.per_trace_cap then begin
            b.evs <- ev :: b.evs;
            b.n <- b.n + 1
          end
          else t.dropped <- t.dropped + 1;
          if start_ts ev < b.first_ts then b.first_ts <- start_ts ev;
          b.last_ts <- ev.Telemetry.ts;
          if flags t ev then b.flagged <- true
        | None ->
          if Hashtbl.length t.live >= t.max_live then t.dropped <- t.dropped + 1
          else
            Hashtbl.add t.live trace
              { evs = [ ev ];
                n = 1;
                flagged = flags t ev;
                first_ts = start_ts ev;
                last_ts = ev.Telemetry.ts })

let finish t ~trace ?(failed = false) () =
  locked t (fun () ->
      t.considered <- t.considered + 1;
      match Hashtbl.find_opt t.live trace with
      | None ->
        t.discarded <- t.discarded + 1;
        false
      | Some b ->
        Hashtbl.remove t.live trace;
        let wall = Int64.sub b.last_ts b.first_ts in
        let slow = Int64.compare wall t.slow_ns >= 0 in
        if b.flagged || failed || slow then begin
          t.captured <- t.captured + 1;
          t.caps <- (trace, List.rev b.evs) :: t.caps;
          t.n_caps <- t.n_caps + 1;
          if t.n_caps > t.max_captured then begin
            (* evict the oldest capture (tail of the newest-first list) *)
            t.caps <- List.filteri (fun i _ -> i < t.max_captured) t.caps;
            t.n_caps <- t.max_captured
          end;
          true
        end
        else begin
          t.discarded <- t.discarded + 1;
          false
        end)

let captures t = locked t (fun () -> List.rev t.caps)
let last_capture t = locked t (fun () -> match t.caps with [] -> None | c :: _ -> Some c)

let dump_jsonl t write =
  let caps = captures t in
  List.fold_left
    (fun n (_, evs) ->
      List.iter (fun ev -> write (Telemetry.event_to_json ev ^ "\n")) evs;
      n + List.length evs)
    0 caps

(* Crash-atomic dump: buffer the captures and tmp+rename them into
   place, so a crash mid-dump never leaves a torn JSONL. *)
let dump_to_file t path =
  let b = Buffer.create 4096 in
  let n = dump_jsonl t (Buffer.add_string b) in
  Prof.atomic_write_file path (Buffer.contents b);
  n

let clear t =
  locked t (fun () ->
      Hashtbl.reset t.live;
      t.caps <- [];
      t.n_caps <- 0)

let considered t = t.considered
let captured t = t.captured
let discarded t = t.discarded
let dropped_events t = t.dropped
