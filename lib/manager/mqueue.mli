(** Persistent message queues (Section 7 cites Bernstein/Hsu/Mann's
    recoverable requests).

    An in-process simulation of a durable queue with at-least-once delivery:
    messages survive receiver crashes; a message delivered but not yet
    acknowledged is redelivered after {!crash_receiver}.  This is the
    communication substrate between the interaction manager and its
    clients. *)

type 'a t

type 'a envelope
(** The unit of transport: the payload plus provenance — the trace id
    ambient at send time and the number of times the message has been
    delivered (> 1 after a redelivery). *)

val payload : 'a envelope -> 'a

val trace : 'a envelope -> int
(** Trace id captured at {!send}; 0 when no trace was active. *)

val deliveries : 'a envelope -> int
(** Deliveries so far, counting the one that returned this envelope.
    2 or more marks an at-least-once duplicate after {!crash_receiver}. *)

val create : name:string -> 'a t
val name : 'a t -> string

val send : 'a t -> 'a -> unit
(** Durable enqueue; the envelope captures {!Telemetry.current_trace}. *)

val receive : 'a t -> 'a option
(** Deliver the next message (FIFO) and mark it in-flight.  [None] when the
    queue holds no undelivered messages. *)

val receive_envelope : 'a t -> 'a envelope option
(** Like {!receive} but keeps the envelope, for consumers that propagate
    the originating trace or inspect the delivery count. *)

val ack : 'a t -> unit
(** Acknowledge the oldest in-flight message, removing it durably.
    @raise Invalid_argument when nothing is in flight. *)

val crash_receiver : 'a t -> unit
(** The receiver loses its volatile state: all in-flight messages return to
    the queue for redelivery (at-least-once semantics). *)

val length : 'a t -> int
(** Undelivered messages. *)

val depth : 'a t -> int
(** Synonym of {!length}, the telemetry vocabulary. *)

val high_watermark : 'a t -> int
(** Maximum undelivered depth ever observed on this queue (including
    redelivery bursts after {!crash_receiver}). *)

val delivery_watermark : 'a t -> int
(** Maximum delivery count of any single envelope on this queue — stays 1
    while no receiver has crashed. *)

val in_flight : 'a t -> int
val sent_count : 'a t -> int
val redelivered_count : 'a t -> int

val drain : 'a t -> 'a list
(** Receive-and-ack everything undelivered, in order. *)
