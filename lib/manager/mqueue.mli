(** Persistent message queues (Section 7 cites Bernstein/Hsu/Mann's
    recoverable requests).

    An in-process simulation of a durable queue with at-least-once delivery:
    messages survive receiver crashes; a message delivered but not yet
    acknowledged is redelivered after {!crash_receiver}.  This is the
    communication substrate between the interaction manager and its
    clients. *)

type 'a t

type 'a envelope
(** The unit of transport: the payload plus provenance — the trace id
    ambient at send time and the number of times the message has been
    delivered (> 1 after a redelivery). *)

val payload : 'a envelope -> 'a

val trace : 'a envelope -> int
(** Trace id captured at {!send}; 0 when no trace was active. *)

val deliveries : 'a envelope -> int
(** Deliveries so far, counting the one that returned this envelope.
    2 or more marks an at-least-once duplicate after {!crash_receiver}. *)

val create : name:string -> 'a t
val name : 'a t -> string

val send : 'a t -> 'a -> unit
(** Durable enqueue; the envelope captures {!Telemetry.current_trace}. *)

val receive : 'a t -> 'a option
(** Deliver the next message (FIFO) and mark it in-flight.  [None] when the
    queue holds no undelivered messages. *)

val receive_envelope : 'a t -> 'a envelope option
(** Like {!receive} but keeps the envelope, for consumers that propagate
    the originating trace or inspect the delivery count. *)

val ack : 'a t -> unit
(** Acknowledge the oldest in-flight message, removing it durably.
    @raise Invalid_argument when nothing is in flight. *)

val crash_receiver : 'a t -> unit
(** The receiver loses its volatile state: all in-flight messages return to
    the queue for redelivery (at-least-once semantics). *)

val length : 'a t -> int
(** Undelivered messages. *)

val depth : 'a t -> int
(** Synonym of {!length}, the telemetry vocabulary. *)

val high_watermark : 'a t -> int
(** Maximum undelivered depth ever observed on this queue (including
    redelivery bursts after {!crash_receiver}). *)

val delivery_watermark : 'a t -> int
(** Maximum delivery count of any single envelope on this queue — stays 1
    while no receiver has crashed. *)

val in_flight : 'a t -> int
val sent_count : 'a t -> int

val redelivered_count : 'a t -> int
(** Redeliveries actually performed: the number of times {!receive} handed
    out an envelope for the second (or later) time.  A crash alone counts
    nothing — requeued envelopes only score when re-received. *)

val drain : 'a t -> 'a list
(** Receive-and-ack everything undelivered, in order. *)

(** {1 Persistence}

    Envelope provenance must survive a restart: the store snapshots queue
    images, and an envelope delivered once before a crash must still report
    [deliveries >= 2] when redelivered after recovery. *)

val pending_envelopes : 'a t -> 'a envelope list
(** Undelivered envelopes, oldest first.  Read-only view for persistence
    and inspection. *)

val flight_envelopes : 'a t -> 'a envelope list
(** Delivered-but-unacknowledged envelopes, oldest first. *)

val envelope_to_sexp :
  ('a -> Interaction.Sexp.t) -> 'a envelope -> Interaction.Sexp.t

val envelope_of_sexp :
  (Interaction.Sexp.t -> 'a) -> Interaction.Sexp.t -> 'a envelope
(** @raise Invalid_argument on malformed input. *)

val to_sexp : ('a -> Interaction.Sexp.t) -> 'a t -> Interaction.Sexp.t
(** Full queue image: name, pending and in-flight envelopes, counters. *)

val of_sexp : (Interaction.Sexp.t -> 'a) -> Interaction.Sexp.t -> 'a t
(** @raise Invalid_argument on malformed input. *)
