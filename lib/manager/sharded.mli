open Interaction
open Interaction_exec

(** A parallel interaction manager: one {!Manager} replica per independent
    shard of the deployed expression, each pinned to a worker domain of an
    {!Interaction_exec.Pool}.

    The alphabet-overlap partition ({!Interaction.Partition}) guarantees
    that every concrete action is relevant to at most one shard, so the
    coordination protocol runs {e per shard}: asks for actions of different
    shards never contend for one critical region, and replicas transition
    concurrently.  Actions owned by no shard are foreign to the whole
    expression and granted open-world, touching no replica.

    A two-phase path (grant everywhere, then confirm or abort) remains as a
    defensive fallback for an action matched by several shards; the
    partition makes this unreachable — unless sharding was forced with
    [~overlap:true], where it is the designed coordination path for
    exactly the shared actions — and {!coordinations} counts how often it
    fired (the disjoint scaling experiments assert it stays 0).

    Mutating calls are routed through the owning shard's pool worker, so a
    replica's states live in exactly one domain's hash-cons tables (see the
    parallel evaluation notes in {!Interaction.State}).  The merged
    confirmed log preserves the global commit order. *)

type t

val create :
  pool:Pool.t ->
  ?store:string ->
  ?fsync:bool ->
  ?snapshot_every:int ->
  ?overlap:bool ->
  Expr.t ->
  t
(** Partition [e] and build one replica per shard, each created on its
    pinned worker.  An expression that does not decompose yields a single
    shard — the sequential manager with routing overhead only; a pool of
    one lane pins every replica to that lane (sequential, but still
    partitioned).

    [~overlap:true] (default false) shards even when the alphabet
    partition finds a single component: the coupling operands are grouped
    round-robin over the pool, and actions owned by several shards run
    the two-phase grant across exactly their owners (counted by
    {!coordinations}).  Private actions of different groups then execute
    concurrently instead of serializing on one replica; see {!Speculate}
    for the optimistic engine-level variant of the same idea.

    With [~store:dir], each shard is a {!Durable} manager logging to its
    own subdirectory [dir/shard<i>] — one WAL per shard, appended only
    from that shard's pinned worker (no cross-lane contention), recovered
    independently at the next [create] on the same directory.  [fsync] and
    [snapshot_every] are forwarded to {!Durable.open_}. *)

val shard_count : t -> int
val expr : t -> Expr.t
val pool : t -> Pool.t

(** {1 Coordination protocol, routed} *)

val ask : t -> client:string -> Action.concrete -> Manager.reply
val confirm : t -> client:string -> Action.concrete -> unit
val abort : t -> client:string -> Action.concrete -> unit

val execute : t -> client:string -> Action.concrete -> bool
(** Ask-and-confirm on the owning shard (two-phase across shards in the
    unreachable multi-owner case). *)

val execute_batch : t -> client:string -> Action.concrete list -> bool list
(** The parallel entry point: split the offered sequence by owning shard
    and execute the per-shard subsequences concurrently.  Result [i] is
    the fate of action [i] of the offer.  Equivalent to executing the
    sequence in offer order, because actions of different shards commute
    and rejected actions leave their shard unchanged. *)

val permitted : t -> Action.concrete -> bool

val explain_denial : t -> Action.concrete -> Explain.explanation option
(** Denial provenance against the owning shard's replica (evaluated on
    the shard's pinned worker, inside the caller's trace).  [None] for
    foreign or currently-permitted actions. *)

val is_stuck : t -> bool
val timeout_outstanding : t -> unit

(** {1 Subscription protocol} *)

val subscribe : t -> client:string -> Action.concrete -> unit
(** Routed to the owning shard; subscribing to a foreign action delivers a
    single always-permitted notification from shard 0. *)

val unsubscribe : t -> client:string -> Action.concrete -> unit

val drain_notifications : t -> client:string -> Manager.notification list
(** Notifications from every shard, shard order first. *)

(** {1 Durability} *)

val confirmed_log : t -> Action.concrete list
(** Global commit order, oldest first. *)

val shard_logs : t -> Action.concrete list list
(** Per-replica confirmed logs — each is the global log's projection onto
    that shard's alphabet. *)

val crash_all : t -> unit
val recover_all : t -> unit
(** Simulated volatile-state crash/recovery of every replica (the paper's
    Section 7 experiment).  Acts on the in-memory replicas directly; with
    a store attached, the WAL neither records nor needs this — real
    process crashes recover through [create ~store] replay. *)

val durable : t -> bool
(** True when the manager was created with a store. *)

val snapshot_all : t -> unit
(** Snapshot every durable shard (no-op shards without a store), each on
    its pinned worker. *)

val replayed_total : t -> int
(** WAL records replayed across all shards when this instance opened. *)

val close_stores : t -> unit
(** Close every shard's store (no-op without one). *)

(** {1 Introspection} *)

val stats : t -> Manager.stats
(** Replica stats summed across shards. *)

val shard_stats : t -> Manager.stats list
val state_size : t -> int
val queue_depths : t -> int list
(** Pending tasks per shard lane (load skew diagnostic). *)

val coordinations : t -> int
(** Cross-shard two-phase rounds; 0 whenever the partition did its job. *)

val foreign_grants : t -> int
(** Open-world grants that touched no replica. *)

val batches : t -> int
(** {!execute_batch} invocations. *)
