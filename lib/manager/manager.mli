open Interaction

(** The interaction manager — the central scheduler of Section 7 (Fig. 10).

    The manager holds the current state of one interaction expression
    (typically the coupling of all deployed constraint graphs) and mediates
    the {e coordination protocol}:

    + a client {e asks} for permission to execute an action;
    + the manager {e replies} yes or no, based on a tentative state
      transition;
    + on yes the client executes the action and
    + {e confirms} it, whereupon
    + the manager performs the actual state transition.

    Steps 2–5 form a critical region: while a grant is outstanding the
    manager answers [Busy] to other asks (a crashed client can therefore
    leave the manager stuck — {!timeout_outstanding} models the recovery
    strategy, and the Fig. 11 experiments exploit exactly this weakness of
    worklist-handler adaptation).

    The {e subscription protocol} keeps worklists current without busy
    waiting: a client subscribes to an action and receives an informational
    message on every change of that action's permissibility; messages are
    delivered through persistent queues ({!Mqueue}).

    Open world: actions outside the expression's alphabet are permitted
    unconditionally and cause no state transition — a constraint graph
    "should not prohibit the execution of activities which it does not
    explicitly mention". *)

type t

type reply =
  | Granted
  | Denied
  | Busy  (** another client's grant is outstanding (critical region) *)

type stats = {
  asks : int;
  grants : int;
  denials : int;
  busies : int;
  confirms : int;
  aborts : int;
  transitions : int;  (** state transitions actually performed *)
  foreign : int;  (** asks for actions outside the alphabet *)
  informs : int;  (** subscription notifications sent *)
  subscribes : int;
  unsubscribes : int;
  timeouts : int;
}

val create : Expr.t -> t

val expr : t -> Expr.t

val ask : t -> client:string -> Action.concrete -> reply
(** Steps 1–2.  [Granted] reserves the critical region for [client] until
    {!confirm} or {!abort} (unless the action is foreign to the alphabet, in
    which case no region is entered). *)

val confirm : t -> client:string -> Action.concrete -> unit
(** Step 4–5: perform the state transition for the outstanding grant and
    notify subscribers whose action's status changed.
    @raise Invalid_argument if no matching grant is outstanding. *)

val abort : t -> client:string -> Action.concrete -> unit
(** Release an outstanding grant without executing (client-side failure
    before step 3). *)

val execute : t -> client:string -> Action.concrete -> bool
(** [ask]-and-[confirm] in one step (what an adapted workflow engine, being
    a single reliable client, effectively does). *)

val permitted : t -> Action.concrete -> bool
(** Status check without entering the protocol (used to compute worklist
    markings and subscription notifications). *)

val is_stuck : t -> bool
(** A grant is outstanding — the manager cannot serve other clients. *)

val timeout_outstanding : t -> unit
(** Recovery: drop the outstanding grant (counted in [timeouts]).  The
    associated action is treated as not executed. *)

(** {1 Subscription protocol} *)

type notification = {
  action : Action.concrete;
  now_permitted : bool;
}

val subscribe : t -> client:string -> Action.concrete -> unit
(** Begin informing [client] about status changes of [action].  An initial
    notification with the current status is delivered immediately.  Each
    subscription records the status it last delivered, so a committed
    transition performs one tentative transition per subscribed action to
    find the changes — not a before/after pair. *)

val unsubscribe : t -> client:string -> Action.concrete -> unit

val inbox : t -> client:string -> notification Mqueue.t
(** The client's persistent notification queue (created on first use). *)

val drain_notifications : t -> client:string -> notification list

(** {1 Durability} *)

val confirmed_log : t -> Action.concrete list
(** The durable log of confirmed actions, oldest first. *)

val crash : t -> unit
(** Lose all volatile state (current expression state, outstanding grant).
    Subscriptions and the confirmed log are durable and survive. *)

val recover : t -> unit
(** Rebuild the state by replaying the confirmed log (Section 7's recovery
    strategy).  Safe to call only after {!crash}; idempotent. *)

val checkpoint : t -> string
(** Serialize the current state together with the confirmed-log position.
    Recovery from a checkpoint replays only the log suffix written after
    it, so long-running managers need not replay their whole history. *)

val recover_with : t -> checkpoint:string -> unit
(** Crash recovery from a checkpoint taken on this manager's expression.
    @raise Invalid_argument when the checkpoint is malformed, belongs to a
    different expression, or the log-suffix replay fails. *)

val alive : t -> bool
(** False between {!crash} and {!recover}. *)

val image : t -> Sexp.t
(** The manager's {e full} image — expression, state, protocol position
    (outstanding grant), confirmed log, subscriptions with their
    last-notified status, notification queues with envelope provenance,
    and counters.  Unlike {!checkpoint} (state + log position only), an
    image restored by {!of_image} is observationally equivalent to the
    original; this is what the durable store snapshots. *)

val of_image : Sexp.t -> t
(** @raise Invalid_argument on a malformed image. *)

val subscriptions : t -> (string * Action.concrete * bool) list
(** Live subscriptions as [(client, action, last_notified)], in
    subscription order. *)

val outstanding : t -> (string * Action.concrete) option
(** The outstanding grant, if the manager sits in the critical region. *)

val inbox_clients : t -> string list
(** Clients that have a notification inbox, oldest first. *)

val notification_to_sexp : notification -> Sexp.t
val notification_of_sexp : Sexp.t -> notification
(** @raise Invalid_argument on malformed input. *)

val stats : t -> stats
val state_size : t -> int
val pp_stats : Format.formatter -> stats -> unit

(** {1 Provenance and the complexity sentinel} *)

val current_state : t -> State.t option
(** The manager's current interaction state ([None] between {!crash} and
    {!recover}) — the input to offline provenance queries. *)

val explain_denial : t -> Action.concrete -> Explain.explanation option
(** Denial provenance against the current state ({!Explain.explain}):
    [None] when the action would in fact be permitted (or the manager is
    crashed).  Pure — no transition is performed, no counter bumped.
    When telemetry is on, {!ask} additionally emits a [manager.denied]
    event carrying the same blame payload in the denial's trace. *)

val sentinel_warnings : t -> int
(** Complexity-sentinel warnings raised by this manager's observed
    commits ({!Sentinel}); 0 when telemetry never saw a commit. *)

val action_report : t -> (Action.concrete * int * int) list
(** Per-action [(action, grants, denials)] counters over the manager's
    lifetime, sorted by total traffic — which activities are hot, and which
    are the contended ones (worklist analytics). *)

val tentative_cache_stats : unit -> int * int
(** [(hits, misses)] of the bounded tentative-successor cache across all
    managers since start (or the last {!reset_tentative_cache_stats}).
    Exported to the telemetry registry as the [manager_tentative_cache_*]
    probes.  The ask → confirm round trip of a granted action scores at
    least one hit: the grant computes the successor, the confirm commits
    it — and, unlike the former one-slot memo, interleaved asks by other
    clients no longer evict the pair in between.  Obeys
    {!Engine.set_successor_cache}. *)

val reset_tentative_cache_stats : unit -> unit
