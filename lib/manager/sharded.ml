open Interaction
open Interaction_exec

type shard = {
  mgr : Manager.t;  (* the in-memory replica ([Durable.manager dur] when durable) *)
  dur : Durable.t option;  (* WAL-backed wrapper, only touched on [worker] *)
  salpha : Alpha.t;
  worker : int;
}

type t = {
  spool : Pool.t;
  whole : Expr.t;
  shards : shard array;
  log_mutex : Mutex.t;
  mutable log : Action.concrete list;  (* global commit order, newest first *)
  foreign_n : int Atomic.t;
  coords_n : int Atomic.t;
  batches_n : int Atomic.t;
}

let m_routed = Telemetry.counter "sharded_routed_total"
let m_foreign = Telemetry.counter "sharded_foreign_total"
let m_coords = Telemetry.counter "sharded_coordinations_total"
let m_batches = Telemetry.counter "sharded_batches_total"

let create ~pool ?store ?fsync ?snapshot_every ?(overlap = false) e =
  let comps = Partition.components e in
  (* [overlap]: when the alphabet partition cannot split the coupling (one
     component), shard by operand groups anyway.  Actions owned by several
     shards flow through the defensive two-phase ask/confirm/abort path
     below — correct for any owner multiplicity — so the only cost of
     overlapping alphabets is coordination on exactly the shared actions,
     instead of total serialization of the whole expression. *)
  let comps =
    match comps with
    | _ :: _ :: _ -> comps
    | _ when not (overlap && Pool.size pool > 1) -> comps
    | _ -> (
      match Partition.flatten_sync e with
      | [] | [ _ ] -> comps
      | operands ->
        let n = min (Pool.size pool) (List.length operands) in
        let groups = Array.make n [] in
        List.iteri
          (fun i op -> groups.(i mod n) <- op :: groups.(i mod n))
          operands;
        Array.to_list groups
        |> List.map (fun ops ->
               let ce = Expr.sync_list (List.rev ops) in
               (ce, Alpha.of_expr ce)))
  in
  let shards =
    List.mapi
      (fun i (ce, al) ->
        let worker = i mod Pool.size pool in
        (* build the replica on its pinned worker so its states live in that
           domain's tables; with a store, each shard logs to its own
           subdirectory (one WAL per shard — appends never contend across
           lanes, and recovery replays each shard independently) *)
        Pool.run pool ~worker (fun () ->
            match store with
            | None -> { mgr = Manager.create ce; dur = None; salpha = al; worker }
            | Some dir ->
              let d =
                Durable.open_ ?fsync ?snapshot_every
                  ~dir:(Filename.concat dir (Printf.sprintf "shard%d" i))
                  ce
              in
              { mgr = Durable.manager d; dur = Some d; salpha = al; worker }))
      comps
    |> Array.of_list
  in
  (* Seed the merged log from the recovered replicas.  The exact cross-
     shard interleaving is not WAL-recorded (each shard logs alone), but
     actions of different shards commute — that is the partition's whole
     argument — so any merge consistent with each shard's commit order is
     observationally equivalent to the lost one; we use shard order. *)
  let recovered_log =
    List.rev
      (List.concat_map
         (fun sh -> Manager.confirmed_log sh.mgr)
         (Array.to_list shards))
  in
  let t =
    { spool = pool; whole = e; shards; log_mutex = Mutex.create ();
      log = recovered_log;
      foreign_n = Atomic.make 0; coords_n = Atomic.make 0; batches_n = Atomic.make 0 }
  in
  Telemetry.register_probe "sharded_shards" (fun () ->
      float_of_int (Array.length shards));
  Array.iteri
    (fun i sh ->
      Telemetry.register_probe
        (Printf.sprintf "sharded_shard%d_queue_depth" i)
        (fun () -> float_of_int (Pool.queue_depth pool sh.worker)))
    shards;
  t

let shard_count t = Array.length t.shards
let expr t = t.whole
let pool t = t.spool

(* All shards whose alphabet matches [c].  The overlap-closure partition
   makes this list empty (foreign) or a singleton; longer lists only arise
   if the partition invariant is broken, and flow through the two-phase
   fallback. *)
let owners t c =
  Array.to_list t.shards |> List.filter (fun sh -> Alpha.mem sh.salpha c)

let owner_indices t c =
  Array.to_list t.shards
  |> List.mapi (fun i sh -> (i, sh))
  |> List.filter_map (fun (i, sh) -> if Alpha.mem sh.salpha c then Some i else None)

(* Run [f] on the shard's pinned worker, forwarding the caller's ambient
   trace id into the worker domain: trace context is domain-local, so a
   coordination round spanning shards keeps one causal chain. *)
let on_shard t sh f =
  let tid = Telemetry.current_trace () in
  Pool.run t.spool ~worker:sh.worker (fun () ->
      if tid = 0 then f sh.mgr
      else Telemetry.with_trace tid (fun () -> f sh.mgr))

(* Mutating protocol verbs go through the shard's durable wrapper when one
   exists (WAL-logged, on the pinned worker); without a store they hit the
   in-memory replica directly.  Read-only queries always use [sh.mgr]. *)
let s_ask sh ~client c =
  match sh.dur with
  | Some d -> Durable.ask d ~client c
  | None -> Manager.ask sh.mgr ~client c

let s_confirm sh ~client c =
  match sh.dur with
  | Some d -> Durable.confirm d ~client c
  | None -> Manager.confirm sh.mgr ~client c

let s_abort sh ~client c =
  match sh.dur with
  | Some d -> Durable.abort d ~client c
  | None -> Manager.abort sh.mgr ~client c

let s_execute sh ~client c =
  match sh.dur with
  | Some d -> Durable.execute d ~client c
  | None -> Manager.execute sh.mgr ~client c

let s_subscribe sh ~client c =
  match sh.dur with
  | Some d -> Durable.subscribe d ~client c
  | None -> Manager.subscribe sh.mgr ~client c

let s_unsubscribe sh ~client c =
  match sh.dur with
  | Some d -> Durable.unsubscribe d ~client c
  | None -> Manager.unsubscribe sh.mgr ~client c

let s_drain sh ~client =
  match sh.dur with
  | Some d -> Durable.drain_notifications d ~client
  | None -> Manager.drain_notifications sh.mgr ~client

let s_timeout sh =
  match sh.dur with
  | Some d -> Durable.timeout_outstanding d
  | None -> Manager.timeout_outstanding sh.mgr

(* [on_shard] variant passing the shard itself, for the dispatchers. *)
let on_shard' t sh f =
  let tid = Telemetry.current_trace () in
  Pool.run t.spool ~worker:sh.worker (fun () ->
      if tid = 0 then f sh else Telemetry.with_trace tid (fun () -> f sh))

(* The commit log is appended from every shard's pinned worker at once,
   which makes it the natural contention hot spot of the sharded manager
   — exactly what E22 measures. *)
let log_site = Prof.Lock.site "sharded.log"

let log_commit t c =
  Prof.Lock.acquire log_site t.log_mutex;
  t.log <- c :: t.log;
  Mutex.unlock t.log_mutex

let ask t ~client c =
  match owners t c with
  | [] ->
    Atomic.incr t.foreign_n;
    Telemetry.incr m_foreign;
    Manager.Granted
  | [ sh ] ->
    Telemetry.incr m_routed;
    on_shard' t sh (fun sh -> s_ask sh ~client c)
  | shs ->
    (* defensive two-phase grant across all owners *)
    Atomic.incr t.coords_n;
    Telemetry.incr m_coords;
    let rec grant acc = function
      | [] -> (Manager.Granted, acc)
      | sh :: rest -> (
        match on_shard' t sh (fun sh -> s_ask sh ~client c) with
        | Manager.Granted -> grant (sh :: acc) rest
        | (Manager.Denied | Manager.Busy) as r ->
          List.iter (fun g -> on_shard' t g (fun sh -> s_abort sh ~client c)) acc;
          (r, []))
    in
    fst (grant [] shs)

let confirm t ~client c =
  match owners t c with
  | [] -> ()  (* foreign: no replica holds a grant, nothing to commit *)
  | shs ->
    List.iter (fun sh -> on_shard' t sh (fun sh -> s_confirm sh ~client c)) shs;
    log_commit t c

let abort t ~client c =
  List.iter (fun sh -> on_shard' t sh (fun sh -> s_abort sh ~client c)) (owners t c)

let execute t ~client c =
  match owners t c with
  | [] ->
    Atomic.incr t.foreign_n;
    Telemetry.incr m_foreign;
    true
  | [ sh ] ->
    Telemetry.incr m_routed;
    let ok = on_shard' t sh (fun sh -> s_execute sh ~client c) in
    if ok then log_commit t c;
    ok
  | _ -> (
    match ask t ~client c with
    | Manager.Granted ->
      confirm t ~client c;
      true
    | Manager.Denied | Manager.Busy -> false)

let execute_batch t ~client actions =
  Atomic.incr t.batches_n;
  Telemetry.incr m_batches;
  let n = List.length actions in
  let results = Array.make n false in
  let buckets = Array.make (Array.length t.shards) [] in
  let leftover = ref [] in
  List.iteri
    (fun i c ->
      match owner_indices t c with
      | [] ->
        Atomic.incr t.foreign_n;
        Telemetry.incr m_foreign;
        results.(i) <- true
      | [ si ] ->
        Telemetry.incr m_routed;
        buckets.(si) <- (i, c) :: buckets.(si)
      | _ -> leftover := (i, c) :: !leftover)
    actions;
  (* per-shard subsequences run concurrently; each replica executes its own
     batch in offer order *)
  Array.to_list t.shards
  |> List.mapi (fun si sh ->
         let batch = List.rev buckets.(si) in
         let tid = Telemetry.current_trace () in
         Pool.submit t.spool ~worker:sh.worker (fun () ->
             let run () =
               List.map
                 (fun (i, c) ->
                   let ok = s_execute sh ~client c in
                   if ok then log_commit t c;
                   (i, ok))
                 batch
             in
             if tid = 0 then run () else Telemetry.with_trace tid run))
  |> List.iter (fun p -> List.iter (fun (i, ok) -> results.(i) <- ok) (Pool.await p));
  (* unreachable multi-owner actions, after the parallel phase, offer order *)
  List.iter (fun (i, c) -> results.(i) <- execute t ~client c) (List.rev !leftover);
  Array.to_list results

let explain_denial t c =
  match owners t c with
  | [] -> None  (* foreign actions are always permitted *)
  | shs ->
    List.find_map (fun sh -> on_shard t sh (fun m -> Manager.explain_denial m c)) shs

let permitted t c =
  match owners t c with
  | [] -> true
  | shs -> List.for_all (fun sh -> on_shard t sh (fun m -> Manager.permitted m c)) shs

let is_stuck t =
  Array.exists (fun sh -> on_shard t sh (fun m -> Manager.is_stuck m)) t.shards

let timeout_outstanding t =
  Array.iter (fun sh -> on_shard' t sh s_timeout) t.shards

let subscribe t ~client c =
  match owners t c with
  | [] ->
    (* foreign actions are permanently permitted; deliver the one honest
       notification through shard 0's replica so the inbox machinery is
       uniform *)
    if Array.length t.shards > 0 then
      on_shard' t t.shards.(0) (fun sh -> s_subscribe sh ~client c)
  | shs -> List.iter (fun sh -> on_shard' t sh (fun sh -> s_subscribe sh ~client c)) shs

let unsubscribe t ~client c =
  Array.iter (fun sh -> on_shard' t sh (fun sh -> s_unsubscribe sh ~client c)) t.shards

let drain_notifications t ~client =
  Array.to_list t.shards
  |> List.concat_map (fun sh -> on_shard' t sh (fun sh -> s_drain sh ~client))

let confirmed_log t =
  Prof.Lock.acquire log_site t.log_mutex;
  let l = List.rev t.log in
  Mutex.unlock t.log_mutex;
  l

let shard_logs t =
  Array.to_list t.shards |> List.map (fun sh -> Manager.confirmed_log sh.mgr)

let crash_all t = Array.iter (fun sh -> on_shard t sh Manager.crash) t.shards
let recover_all t = Array.iter (fun sh -> on_shard t sh Manager.recover) t.shards

let add_stats (a : Manager.stats) (b : Manager.stats) : Manager.stats =
  { asks = a.asks + b.asks; grants = a.grants + b.grants;
    denials = a.denials + b.denials; busies = a.busies + b.busies;
    confirms = a.confirms + b.confirms; aborts = a.aborts + b.aborts;
    transitions = a.transitions + b.transitions; foreign = a.foreign + b.foreign;
    informs = a.informs + b.informs; subscribes = a.subscribes + b.subscribes;
    unsubscribes = a.unsubscribes + b.unsubscribes; timeouts = a.timeouts + b.timeouts }

let shard_stats t = Array.to_list t.shards |> List.map (fun sh -> Manager.stats sh.mgr)

let stats t =
  let zero : Manager.stats =
    { asks = 0; grants = 0; denials = 0; busies = 0; confirms = 0; aborts = 0;
      transitions = 0; foreign = 0; informs = 0; subscribes = 0; unsubscribes = 0;
      timeouts = 0 }
  in
  List.fold_left add_stats zero (shard_stats t)

let state_size t =
  Array.to_list t.shards
  |> List.map (fun sh -> on_shard t sh Manager.state_size)
  |> List.fold_left ( + ) 0

let queue_depths t =
  Array.to_list t.shards |> List.map (fun sh -> Pool.queue_depth t.spool sh.worker)

let coordinations t = Atomic.get t.coords_n
let foreign_grants t = Atomic.get t.foreign_n
let batches t = Atomic.get t.batches_n

(* ---- per-shard durability ----------------------------------------- *)

let durable t = Array.exists (fun sh -> sh.dur <> None) t.shards

let snapshot_all t =
  Array.iter
    (fun sh ->
      match sh.dur with
      | Some d -> ignore (on_shard' t sh (fun _ -> Durable.snapshot d))
      | None -> ())
    t.shards

let replayed_total t =
  Array.to_list t.shards
  |> List.map (fun sh -> match sh.dur with Some d -> Durable.replayed d | None -> 0)
  |> List.fold_left ( + ) 0

let close_stores t =
  Array.iter
    (fun sh ->
      match sh.dur with
      | Some d -> ignore (on_shard' t sh (fun _ -> Durable.close d))
      | None -> ())
    t.shards
